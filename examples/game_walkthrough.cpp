/**
 * @file
 * The back-and-forth game, narrated — the paper's Fig. 2 search process.
 *
 * Builds wget twice (reference toolchain vs customized vendor build),
 * runs the game for every query procedure against the stripped target,
 * prints the player/rival trace of the most contested game, and
 * summarizes the partial matching the game builds along the way.
 */
#include <cstdio>

#include "codegen/build.h"
#include "eval/driver.h"
#include "firmware/catalog.h"

using namespace firmup;

int
main()
{
    std::printf("== Back-and-forth game walkthrough ==\n\n");
    eval::Driver driver;

    // Target: feature-customized, differently-optimized, stripped.
    const auto &pkg = firmware::package_by_name("wget");
    const auto source = firmware::generate_package_source(pkg, "1.15");
    codegen::BuildRequest request;
    request.arch = isa::Arch::Arm32;
    request.profile = compiler::vendor_toolchains()[0];  // -O0 vendor
    request.all_features = false;
    request.enabled_features = {};  // opie and ssl disabled
    request.strip = true;
    request.keep_exported = false;
    const loader::Executable target_exe =
        codegen::build_executable(source, request);
    const sim::ExecutableIndex *target_ptr =
        driver.index_target(target_exe);
    FIRMUP_ASSERT(target_ptr != nullptr,
                  "trusted in-process build must lift");
    const sim::ExecutableIndex &target = *target_ptr;

    const eval::Query query = driver.build_query(
        "wget", "ftp_retrieve_glob", "1.15", isa::Arch::Arm32);

    game::GameOptions options;
    options.record_trace = true;

    // Run the game for every procedure; show the most contested one.
    game::GameResult best;
    std::string best_name;
    int one_step = 0, multi_step = 0, lost = 0;
    for (std::size_t i = 0; i < query.index.procs.size(); ++i) {
        const game::GameResult r = game::match_query(
            query.index, static_cast<int>(i), target, options);
        if (!r.matched) {
            ++lost;
        } else if (r.steps > 1) {
            ++multi_step;
        } else {
            ++one_step;
        }
        if (r.steps > best.steps) {
            best = r;
            best_name = query.index.procs[i].name;
        }
    }
    std::printf("games over %zu query procedures: %d one-step, "
                "%d multi-step, %d without a match\n\n",
                query.index.procs.size(), one_step, multi_step, lost);

    std::printf("most contested game: %s (%d steps)\n",
                best_name.c_str(), best.steps);
    for (const std::string &line : best.trace) {
        std::printf("  %s\n", line.c_str());
    }

    const game::GameResult qv_result = game::match_query(
        query.index, query.qv, target, options);
    std::printf("\nvulnerable query ftp_retrieve_glob: %s at 0x%llx "
                "(Sim=%d, %d steps)\n",
                qv_result.matched ? "matched" : "NOT matched",
                static_cast<unsigned long long>(qv_result.target_entry),
                qv_result.sim, qv_result.steps);
    std::printf("partial matching grew to %zu pairs — far from a full "
                "matching of %zu x %zu procedures,\nexactly the paper's "
                "point: match only as much context as the query needs.\n",
                qv_result.q_to_t.size(), query.index.procs.size(),
                target.procs.size());
    return 0;
}
