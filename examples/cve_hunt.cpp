/**
 * @file
 * End-to-end CVE hunt in one firmware blob — the paper's motivating
 * scenario, compressed to a single device:
 *
 *  1. A vendor builds a firmware image: wget (vulnerable version,
 *     custom build config) + dropbear, stripped, packed into a blob with
 *     padding and config payloads.
 *  2. The analyst unpacks the blob binwalk-style, lifts each executable
 *     (sniffing the real ISA past the corrupt header), and searches for
 *     CVE-2014-4877's ftp_retrieve_glob with the back-and-forth game.
 */
#include <cstdio>

#include "codegen/build.h"
#include "eval/driver.h"
#include "firmware/catalog.h"
#include "firmware/image.h"

using namespace firmup;

namespace {

loader::Executable
vendor_build(const std::string &package, const std::string &version,
             const std::set<std::string> &features)
{
    const auto &pkg = firmware::package_by_name(package);
    const auto source = firmware::generate_package_source(pkg, version);
    codegen::BuildRequest request;
    request.arch = isa::Arch::Mips32;
    request.profile = compiler::vendor_toolchains()[1];
    request.all_features = false;
    request.enabled_features = features;
    request.strip = true;
    request.keep_exported = pkg.is_library;
    request.exe_name = package;
    request.link.text_base = 0x10000;
    request.link.data_base = 0x20000000;
    return codegen::build_executable(source, request);
}

}  // namespace

int
main()
{
    std::printf("== CVE hunt in a firmware blob ==\n\n");

    // --- vendor side: build and pack the firmware ---
    firmware::FirmwareImage image;
    image.vendor = "NETGEAR";
    image.device = "NG-R7000";
    image.version = "V1.0.3";
    image.is_latest = true;
    image.executables.push_back(
        vendor_build("wget", "1.15", {"ssl"}));  // --disable-opie
    image.executables.push_back(vendor_build("dropbear", "2012.55", {}));
    // One header lies about the ISA (the wrong-ELFCLASS caveat).
    image.executables[0].declared_arch = isa::Arch::X86;
    image.content_files = {"etc/board.cfg", "www/index.html"};

    Rng rng(7);
    const ByteBuffer blob = firmware::pack_firmware(image, rng);
    std::printf("packed firmware blob: %zu bytes, %zu executables\n",
                blob.size(), image.executables.size());

    // --- analyst side: unpack, lift, hunt ---
    auto unpacked = firmware::unpack_firmware(blob);
    if (!unpacked.ok()) {
        std::printf("unpack failed: %s\n",
                    unpacked.error_message().c_str());
        return 1;
    }
    std::printf("unpacked: vendor=%s device=%s version=%s, "
                "%zu executables, %d damaged members\n\n",
                unpacked.value().image.vendor.c_str(),
                unpacked.value().image.device.c_str(),
                unpacked.value().image.version.c_str(),
                unpacked.value().image.executables.size(),
                unpacked.value().damaged_members);

    eval::Driver driver;
    const auto &cve = firmware::cve_database()[5];  // CVE-2014-4877
    std::printf("hunting %s (%s in %s <= %s)\n\n", cve.cve_id.c_str(),
                cve.procedure.c_str(), cve.package.c_str(),
                eval::latest_vulnerable_version(cve).c_str());

    for (const loader::Executable &exe :
         unpacked.value().image.executables) {
        const sim::ExecutableIndex *target_ptr = driver.index_target(exe);
        if (target_ptr == nullptr) {
            std::printf("%-10s quarantined\n", exe.name.c_str());
            continue;
        }
        const sim::ExecutableIndex &target = *target_ptr;
        std::printf("%-10s declared=%-6s sniffed=%-6s procs=%zu : ",
                    exe.name.c_str(), isa::arch_name(exe.declared_arch),
                    isa::arch_name(target.arch), target.procs.size());
        const eval::Query query = driver.build_query(cve, target.arch);
        const eval::SearchOutcome outcome = driver.search(query, target);
        if (outcome.detected) {
            std::printf("VULNERABLE — %s found at 0x%llx "
                        "(%d shared strands, %d game steps)\n",
                        cve.procedure.c_str(),
                        static_cast<unsigned long long>(
                            outcome.matched_entry),
                        outcome.sim, outcome.steps);
        } else {
            std::printf("no match\n");
        }
    }
    return 0;
}
