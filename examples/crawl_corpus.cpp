/**
 * @file
 * Corpus crawl — the paper's section 5.1 pipeline at example scale:
 * build the vendor corpus, pack every image into a blob, "crawl" the
 * blobs (unpack binwalk-style), index every executable, and print the
 * dataset statistics the paper reports (images → usable executables →
 * procedures), including damaged members and header lies.
 */
#include <cstdio>

#include "eval/driver.h"
#include "firmware/corpus.h"

using namespace firmup;

int
main()
{
    std::printf("== Firmware corpus crawl ==\n\n");
    firmware::CorpusOptions options;
    options.num_devices = 6;  // example scale
    const firmware::Corpus corpus = firmware::build_corpus(options);

    // Vendor side: publish every image as a packed blob.
    std::vector<ByteBuffer> blobs;
    Rng rng(99);
    for (const firmware::FirmwareImage &image : corpus.images) {
        blobs.push_back(firmware::pack_firmware(image, rng));
    }
    std::size_t total_bytes = 0;
    for (const ByteBuffer &blob : blobs) {
        total_bytes += blob.size();
    }
    std::printf("crawled %zu firmware blobs (%zu bytes total)\n",
                blobs.size(), total_bytes);

    // Analyst side: unpack and index everything.
    eval::Driver driver;
    std::size_t executables = 0, procedures = 0, damaged = 0,
                header_lies = 0;
    std::map<std::string, int> per_arch;
    for (const ByteBuffer &blob : blobs) {
        auto unpacked = firmware::unpack_firmware(blob);
        if (!unpacked.ok()) {
            continue;
        }
        damaged += static_cast<std::size_t>(
            unpacked.value().damaged_members);
        for (const loader::Executable &exe :
             unpacked.value().image.executables) {
            const sim::ExecutableIndex *index = driver.index_target(exe);
            if (index == nullptr) {
                continue;  // quarantined; counted in driver.health()
            }
            ++executables;
            procedures += index->procs.size();
            ++per_arch[isa::arch_name(index->arch)];
            header_lies += exe.declared_arch != index->arch ? 1 : 0;
        }
    }
    std::printf("unpacked %zu executables (%zu damaged members "
                "skipped)\n",
                executables, damaged);
    std::printf("indexed %zu procedures total\n", procedures);
    std::printf("headers declaring the wrong ISA (sniffed around): "
                "%zu\n",
                header_lies);
    std::printf("per-architecture executable counts:\n");
    for (const auto &[arch, count] : per_arch) {
        std::printf("  %-8s %d\n", arch.c_str(), count);
    }
    std::printf("\n(the paper's crawl: ~5000 images -> ~2000 usable -> "
                "~200k executables -> ~40M procedures;\nsame pipeline, "
                "example scale)\n");
    return 0;
}
