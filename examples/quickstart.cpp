/**
 * @file
 * Quickstart: the whole FirmUp pipeline on a hand-written procedure.
 *
 *  1. Define a tiny source package (a procedure comparing a value
 *     against the magic 0x1F, like the paper's Fig. 1/3 example).
 *  2. Compile it for MIPS32 with two different toolchains.
 *  3. Lift the binaries back to µIR.
 *  4. Decompose into strands and canonicalize (Fig. 3's three stages:
 *     assembly -> lifted IR -> canonical strand).
 *  5. Compute Sim() across the two compilations.
 */
#include <cstdio>

#include "codegen/build.h"
#include "lang/ast.h"
#include "lifter/cfg.h"
#include "sim/similarity.h"
#include "strand/canon.h"

using namespace firmup;

namespace {

/** int check(int p0) { if (p0 != 31) return g0[2]; return p0 + 1; } */
lang::PackageSource
make_source()
{
    using lang::Expr;
    using lang::Stmt;
    lang::PackageSource pkg;
    pkg.name = "quickstart";
    pkg.version = "1.0";
    pkg.globals = {{"g0", 8}};

    lang::ProcedureAst proc;
    proc.name = "check";
    proc.num_params = 1;
    proc.num_locals = 2;
    std::vector<lang::StmtPtr> then_body;
    then_body.push_back(Stmt::ret(
        Expr::load_global(0, Expr::constant(2))));
    proc.body.push_back(Stmt::if_stmt(
        Expr::bin(lang::BinOp::Ne, Expr::param(0), Expr::constant(0x1f)),
        std::move(then_body), {}));
    proc.body.push_back(Stmt::ret(
        Expr::bin(lang::BinOp::Add, Expr::param(0), Expr::constant(1))));
    pkg.procedures.push_back(std::move(proc));
    return pkg;
}

void
show_build(const char *title, const compiler::ToolchainProfile &profile)
{
    std::printf("---- %s ----\n", title);
    codegen::BuildRequest request;
    request.arch = isa::Arch::Mips32;
    request.profile = profile;
    const loader::Executable exe =
        codegen::build_executable(make_source(), request);

    // Disassembly (what a human sees in the binary).
    const isa::Target &target = isa::target_for(isa::Arch::Mips32);
    std::printf("assembly:\n");
    std::uint64_t addr = exe.entry;
    while (addr < exe.text_addr + exe.text.size()) {
        const std::size_t offset =
            static_cast<std::size_t>(addr - exe.text_addr);
        auto decoded = target.decode(exe.text.data() + offset,
                                     exe.text.size() - offset, addr);
        if (!decoded.ok()) {
            break;
        }
        std::printf("  %06llx: %s\n",
                    static_cast<unsigned long long>(addr),
                    target.disasm(decoded.value().inst).c_str());
        addr += static_cast<std::uint64_t>(decoded.value().size);
    }

    // Lifted µIR (what VEX gives the paper) and canonical strands.
    auto lifted = lifter::lift_executable(exe).take();
    const ir::Procedure &proc = lifted.procs.begin()->second;
    std::printf("\nlifted IR (first block):\n%s",
                ir::to_string(proc.blocks.begin()->second).c_str());

    strand::CanonOptions options;
    options.sections.text_lo = lifted.text_addr;
    options.sections.text_hi = lifted.text_end;
    options.sections.data_lo = lifted.data_addr;
    options.sections.data_hi = lifted.data_end;
    std::printf("\ncanonical strands:\n");
    for (const std::string &s :
         strand::canonical_strings(proc, options)) {
        std::printf("  %s\n", s.c_str());
    }
    std::printf("\n");
}

}  // namespace

int
main()
{
    std::printf("== FirmUp quickstart ==\n\n");
    show_build("gcc-like -O2", compiler::gcc_like_toolchain());
    show_build("vendor toolchain", compiler::vendor_toolchains()[1]);

    // Pairwise similarity across the two compilations.
    auto index_for = [](const compiler::ToolchainProfile &profile) {
        codegen::BuildRequest request;
        request.arch = isa::Arch::Mips32;
        request.profile = profile;
        const auto exe =
            codegen::build_executable(make_source(), request);
        return sim::index_executable(lifter::lift_executable(exe).take());
    };
    const auto a = index_for(compiler::gcc_like_toolchain());
    const auto b = index_for(compiler::vendor_toolchains()[1]);
    std::printf("Sim(check@gcc, check@vendor) = %d "
                "(of %zu / %zu strands)\n",
                sim::sim_score(a.procs[0].repr, b.procs[0].repr),
                a.procs[0].repr.hashes.size(),
                b.procs[0].repr.hashes.size());
    return 0;
}
