/**
 * @file
 * Fig. 8 — "Labeled experiment comparing GitZ with FirmUp".
 *
 * Nine queries (the Fig. 6 five plus the exported-procedure group:
 * snmp_pdu_parse, bftpdutmp_log, exif_entry_get_value,
 * curl_easy_unescape). GitZ is procedure-centric: it ranks all target
 * procedures by globally-weighted strand similarity and its top-1 either
 * hits the labeled procedure or counts as a false positive (the paper
 * folds FN into FP for this figure; we report FirmUp the same way).
 *
 * Shape expected from the paper: GitZ ~34% false positives overall vs
 * ~9.88% for FirmUp.
 */
#include <cstdio>

#include "eval/experiments.h"
#include "eval/report.h"

int
main()
{
    using namespace firmup;

    std::printf("== Fig. 8: FirmUp vs GitZ (labeled) ==\n\n");
    const firmware::Corpus corpus = firmware::build_corpus();
    eval::Driver driver;

    eval::LabeledOptions options;
    options.cve_ids = {"CVE-2013-1944", "CVE-2013-2168", "CVE-2016-8618",
                       "CVE-2011-0762", "CVE-2014-4877", "CVE-2015-5621",
                       "CVE-2009-4593", "CVE-2012-2841", "CVE-2012-0036"};
    options.run_gitz = true;
    const eval::LabeledResult result =
        eval::run_labeled(driver, corpus, options);

    eval::Table table({"Query", "Targets", "FirmUp P", "FirmUp FP+FN",
                       "GitZ P", "GitZ FP"});
    for (const auto &row : result.rows) {
        table.add_row({row.query, std::to_string(row.targets),
                       std::to_string(row.firmup.p),
                       std::to_string(row.firmup.fp + row.firmup.fn),
                       std::to_string(row.gitz.p),
                       std::to_string(row.gitz.fp)});
    }
    std::printf("%s\n", table.render().c_str());

    const eval::Tally fu = result.firmup_total();
    const eval::Tally gz = result.gitz_total();
    std::printf("FirmUp: %d/%d positive, %s false\n", fu.p, fu.total(),
                eval::percent(1.0 - fu.precision()).c_str());
    std::printf("GitZ  : %d/%d positive, %s false\n", gz.p, gz.total(),
                eval::percent(1.0 - gz.precision()).c_str());
    // The paper's top-k remark (Fig. 9 discussion): top-2 recovers about
    // half of GitZ's misses.
    const std::vector<int> topk = eval::gitz_topk_hits(driver, corpus, 4);
    std::printf("\nGitZ top-k accuracy: ");
    for (std::size_t k = 0; k < topk.size(); ++k) {
        std::printf("top-%zu=%d  ", k + 1, topk[k]);
    }
    std::printf("\n");

    std::printf("\npaper reference: GitZ 34%% false positives overall vs "
                "9.88%% for FirmUp;\nshape to check: FirmUp ahead "
                "overall, and GitZ's top-2 recovering roughly half of "
                "its top-1 misses.\n");
    return 0;
}
