/**
 * @file
 * Section 5.2 "Noteworthy findings" — two case studies the paper calls
 * out from its wild hunt:
 *
 *  1. **Deprecated procedures**: searching for curl_easy_unescape in a
 *     firmware shipping an ancient libcurl finds curl_unescape, the
 *     long-deprecated ancestor with a (mutated copy of) the same body.
 *  2. **Version-skew false positives**: the only FPs in the paper's
 *     Table 2 came from matching a wget 1.15 query against wget 1.12
 *     targets. This bench quantifies how similarity decays with version
 *     distance for the vulnerable query procedure.
 */
#include <cstdio>

#include "codegen/build.h"
#include "eval/driver.h"
#include "eval/report.h"
#include "firmware/catalog.h"

using namespace firmup;

namespace {

loader::Executable
vendor_build(const std::string &package, const std::string &version)
{
    const auto &pkg = firmware::package_by_name(package);
    const auto source = firmware::generate_package_source(pkg, version);
    codegen::BuildRequest request;
    request.arch = isa::Arch::Mips32;
    request.profile = compiler::vendor_toolchains()[3];  // sdk-gcc-O2
    request.strip = true;
    request.keep_exported = pkg.is_library;
    request.exe_name = package;
    return codegen::build_executable(source, request);
}

}  // namespace

int
main()
{
    std::printf("== Section 5.2: noteworthy findings ==\n\n");
    eval::Driver driver;

    // ---- 1. deprecated procedure ----
    std::printf("-- deprecated procedures --\n");
    const eval::Query curl_query = driver.build_query(
        "libcurl", "curl_easy_unescape", "7.24.0", isa::Arch::Mips32);
    // A 2014-style firmware shipping a 2006-era libcurl: curl_unescape
    // still exists, curl_easy_unescape does not exist yet... in our
    // catalog both exist at 7.15.4 (ancestor + successor), matching the
    // paper's setup where the deprecated twin is the interesting match.
    const auto ancient = vendor_build("libcurl", "7.15.4");
    const auto *ancient_ptr = driver.index_target(ancient);
    FIRMUP_ASSERT(ancient_ptr != nullptr,
                  "trusted in-process build must lift");
    const auto &ancient_index = *ancient_ptr;
    const eval::SearchOutcome hit =
        driver.match(curl_query, ancient_index);
    std::printf("query curl_easy_unescape vs libcurl 7.15.4: ");
    if (hit.detected) {
        const int idx = ancient_index.find_by_entry(hit.matched_entry);
        const std::string &name =
            ancient_index.procs[static_cast<std::size_t>(idx)].name;
        std::printf("matched '%s' at 0x%llx (Sim=%d)\n",
                    name.empty() ? "<stripped>" : name.c_str(),
                    static_cast<unsigned long long>(hit.matched_entry),
                    hit.sim);
        // The exported symbol survives stripping on libraries — the
        // paper's "supposedly non-stripped sample" observation.
        if (name == "curl_unescape") {
            std::printf("  -> the deprecated ancestor, exactly the "
                        "paper's curl_unescape() finding\n");
        }
    } else {
        std::printf("no match\n");
    }
    // And the modern build no longer has the deprecated twin at all.
    const auto modern = vendor_build("libcurl", "7.50.3");
    std::printf("libcurl 7.15.4 exports curl_unescape: %s; "
                "7.50.3 exports it: %s\n\n",
                ancient.symbol_at(0) != "curl_unescape" &&
                        [&] {
                            for (const auto &s : ancient.symbols) {
                                if (s.name == "curl_unescape") {
                                    return true;
                                }
                            }
                            return false;
                        }()
                    ? "yes"
                    : "no",
                [&] {
                    for (const auto &s : modern.symbols) {
                        if (s.name == "curl_unescape") {
                            return true;
                        }
                    }
                    return false;
                }()
                    ? "yes"
                    : "no");

    // ---- 2. version skew ----
    std::printf("-- version skew (the paper's only FP source) --\n");
    const auto &wget = firmware::package_by_name("wget");
    const eval::Query wget_query = driver.build_query(
        "wget", "ftp_retrieve_glob", "1.15", isa::Arch::Mips32);
    const auto &q_repr =
        wget_query.index.procs[static_cast<std::size_t>(wget_query.qv)]
            .repr;
    eval::Table table({"target version", "Sim with 1.15 query",
                       "share of query strands"});
    for (const std::string &version : wget.versions) {
        const auto target_exe = vendor_build("wget", version);
        const auto *version_ptr = driver.index_target(target_exe);
        FIRMUP_ASSERT(version_ptr != nullptr,
                      "trusted in-process build must lift");
        const auto &target = *version_ptr;
        // Locate the true procedure via an unstripped twin build.
        const eval::Query truth = driver.build_query(
            "wget", "ftp_retrieve_glob", version, isa::Arch::Mips32);
        (void)truth;
        const eval::SearchOutcome outcome =
            driver.match(wget_query, target);
        table.add_row(
            {version, std::to_string(outcome.sim),
             eval::percent(static_cast<double>(outcome.sim) /
                           static_cast<double>(q_repr.hashes.size()))});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("paper reference: 14 FPs, all from 1.15-vs-1.12 version "
                "discrepancies; shape to check:\nsimilarity decays "
                "monotonically-ish with version distance from 1.15.\n");
    return 0;
}
