/**
 * @file
 * Fig. 9 — "Number of procedures correctly matched as a factor of the
 * number of steps in the back-and-forth game", plus the section 5.3
 * iteration ablation ("Without this iterative matching process, the
 * overall precision drops from 90.11% to 67.3%").
 *
 * Shape expected from the paper: a large majority of correct matches in
 * one game step, a long tail out to ~32 steps, and a precision collapse
 * when the game is replaced by single-shot procedure-centric matching.
 */
#include <cstdio>

#include "eval/experiments.h"
#include "eval/report.h"

int
main()
{
    using namespace firmup;

    std::printf("== Fig. 9: correct matches vs game steps ==\n\n");
    const firmware::Corpus corpus = firmware::build_corpus();

    eval::LabeledOptions options;  // all catalog CVEs as queries
    eval::Driver driver;
    const eval::LabeledResult with_game =
        eval::run_labeled(driver, corpus, options);

    eval::Table table({"# game steps needed", "# correct matches"});
    for (const auto &[bucket, count] :
         eval::step_histogram(with_game.game_steps)) {
        table.add_row({bucket, std::to_string(count)});
    }
    std::printf("%s\n", table.render().c_str());

    int multi_step = 0;
    for (int s : with_game.game_steps) {
        multi_step += s > 1 ? 1 : 0;
    }
    std::printf("%zu correct matches; %d required more than one step\n\n",
                with_game.game_steps.size(), multi_step);

    // Ablation: disable the game (procedure-centric top-1 instead).
    eval::Driver no_game_driver;
    no_game_driver.options().use_game = false;
    const eval::LabeledResult without_game =
        eval::run_labeled(no_game_driver, corpus, options);

    const eval::Tally with = with_game.firmup_total();
    const eval::Tally without = without_game.firmup_total();
    std::printf("precision with game   : %s (%d/%d)\n",
                eval::percent(with.precision()).c_str(), with.p,
                with.total());
    std::printf("precision without game: %s (%d/%d)\n",
                eval::percent(without.precision()).c_str(), without.p,
                without.total());
    std::printf("\npaper reference: 493 of 608 matches in one step, tail "
                "to 32 steps; precision 90.11%%\nwith the iterative game "
                "vs 67.3%% without it. Shape to check: most matches in "
                "one step,\nnon-empty multi-step tail, and a clear "
                "precision drop without the game.\n");
    return 0;
}
