/**
 * @file
 * Ablation bench for the design choices DESIGN.md calls out:
 * offset elimination, canonicalizing optimization, name normalization
 * (which subsumes register folding), and the back-and-forth game itself.
 *
 * Each knob is disabled in isolation and the controlled experiment of
 * section 5.3 re-run; the drop against the full configuration quantifies
 * the knob's contribution (the paper reports the game ablation
 * explicitly: 90.11% -> 67.3%).
 */
#include <cstdio>

#include "eval/experiments.h"
#include "eval/report.h"

namespace {

using namespace firmup;

eval::Tally
run_config(const firmware::Corpus &corpus, const char *label,
           void (*tweak)(eval::SearchOptions &))
{
    eval::SearchOptions options;
    tweak(options);
    eval::Driver driver(options);
    eval::LabeledOptions labeled;
    const eval::LabeledResult result =
        eval::run_labeled(driver, corpus, labeled);
    const eval::Tally tally = result.firmup_total();
    std::printf("%-28s P=%-4d FN=%-4d FP=%-4d precision=%s\n", label,
                tally.p, tally.fn, tally.fp,
                eval::percent(tally.precision()).c_str());
    return tally;
}

}  // namespace

int
main()
{
    using namespace firmup;

    std::printf("== Ablations: strand canonicalization & game ==\n\n");
    const firmware::Corpus corpus = firmware::build_corpus();

    run_config(corpus, "full configuration",
               [](eval::SearchOptions &) {});
    run_config(corpus, "no offset elimination",
               [](eval::SearchOptions &o) {
                   o.canon.eliminate_offsets = false;
               });
    run_config(corpus, "no re-optimization",
               [](eval::SearchOptions &o) { o.canon.optimize = false; });
    run_config(corpus, "no name normalization",
               [](eval::SearchOptions &o) {
                   o.canon.normalize_names = false;
               });
    run_config(corpus, "no game (top-1)",
               [](eval::SearchOptions &o) { o.use_game = false; });

    std::printf("\npaper reference: each canonicalization stage is "
                "motivated in section 3.2.1; removing the\ngame drops "
                "precision 90.11%% -> 67.3%% (section 5.3). Shape to "
                "check: every ablation is at\nor below the full "
                "configuration, with offset elimination and "
                "re-optimization mattering most\nacross toolchains.\n");
    return 0;
}
