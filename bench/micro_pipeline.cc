/**
 * @file
 * Microbenchmarks (google-benchmark) for the pipeline's hot stages:
 * compilation, lifting, strand extraction + canonicalization, pairwise
 * Sim, and the full game. These are throughput numbers for the paper's
 * scalability claim (the corpus-scale search must stay static and cheap:
 * the paper's per-CVE wall clock is minutes for ~200k executables).
 */
#include <benchmark/benchmark.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <memory>
#include <thread>

#include "codegen/build.h"
#include "eval/driver.h"
#include "firmware/catalog.h"
#include "game/game.h"
#include "lifter/cfg.h"
#include "sim/persist.h"
#include "strand/canon.h"
#include "support/mmapfile.h"

namespace {

using namespace firmup;

const loader::Executable &
wget_exe()
{
    static const loader::Executable exe = [] {
        const auto &pkg = firmware::package_by_name("wget");
        const auto source =
            firmware::generate_package_source(pkg, "1.15");
        codegen::BuildRequest request;
        request.arch = isa::Arch::Mips32;
        request.profile = compiler::gcc_like_toolchain();
        return codegen::build_executable(source, request);
    }();
    return exe;
}

const lifter::LiftedExecutable &
wget_lifted()
{
    static const lifter::LiftedExecutable lifted =
        lifter::lift_executable(wget_exe()).take();
    return lifted;
}

const sim::ExecutableIndex &
wget_index()
{
    static const sim::ExecutableIndex index =
        sim::index_executable(wget_lifted());
    return index;
}

const sim::ExecutableIndex &
vendor_index()
{
    static const sim::ExecutableIndex index = [] {
        const auto &pkg = firmware::package_by_name("wget");
        const auto source =
            firmware::generate_package_source(pkg, "1.15");
        codegen::BuildRequest request;
        request.arch = isa::Arch::Mips32;
        request.profile = compiler::vendor_toolchains()[1];
        request.strip = true;
        request.keep_exported = false;
        const auto exe = codegen::build_executable(source, request);
        return sim::index_executable(
            lifter::lift_executable(exe).take());
    }();
    return index;
}

void
BM_CompileAndLink(benchmark::State &state)
{
    const auto &pkg = firmware::package_by_name("wget");
    const auto source = firmware::generate_package_source(pkg, "1.15");
    codegen::BuildRequest request;
    request.arch = isa::Arch::Mips32;
    request.profile = compiler::gcc_like_toolchain();
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            codegen::build_executable(source, request));
    }
}
BENCHMARK(BM_CompileAndLink)->Unit(benchmark::kMillisecond);

void
BM_LiftExecutable(benchmark::State &state)
{
    const loader::Executable &exe = wget_exe();
    for (auto _ : state) {
        benchmark::DoNotOptimize(lifter::lift_executable(exe));
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(wget_lifted().procs.size()));
}
BENCHMARK(BM_LiftExecutable)->Unit(benchmark::kMillisecond);

void
BM_StrandExtraction(benchmark::State &state)
{
    const lifter::LiftedExecutable &lifted = wget_lifted();
    strand::CanonOptions options;
    options.sections.text_lo = lifted.text_addr;
    options.sections.text_hi = lifted.text_end;
    options.sections.data_lo = lifted.data_addr;
    options.sections.data_hi = lifted.data_end;
    for (auto _ : state) {
        for (const auto &[entry, proc] : lifted.procs) {
            benchmark::DoNotOptimize(
                strand::represent_procedure(proc, options));
        }
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(lifted.procs.size()));
}
BENCHMARK(BM_StrandExtraction)->Unit(benchmark::kMillisecond);

/**
 * The same extraction through the materializing reference path:
 * decompose into copied strand vectors, build the canonical string,
 * hash it. The delta against BM_StrandExtraction is the streaming +
 * arena-reuse win of the cold path.
 */
void
BM_StrandExtractionStringPath(benchmark::State &state)
{
    const lifter::LiftedExecutable &lifted = wget_lifted();
    strand::CanonOptions options;
    options.sections.text_lo = lifted.text_addr;
    options.sections.text_hi = lifted.text_end;
    options.sections.data_lo = lifted.data_addr;
    options.sections.data_hi = lifted.data_end;
    options.stream_hash = false;
    for (auto _ : state) {
        for (const auto &[entry, proc] : lifted.procs) {
            benchmark::DoNotOptimize(
                strand::represent_procedure(proc, options));
        }
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(lifted.procs.size()));
}
BENCHMARK(BM_StrandExtractionStringPath)->Unit(benchmark::kMillisecond);

/**
 * Streaming extraction against a warm canon memo: after the first
 * iteration every block replays its memoized strand-hash span, so this
 * measures the steady-state cost of indexing repeated content.
 */
void
BM_StrandExtractionMemoWarm(benchmark::State &state)
{
    const lifter::LiftedExecutable &lifted = wget_lifted();
    strand::CanonMemo memo;
    strand::CanonOptions options;
    options.sections.text_lo = lifted.text_addr;
    options.sections.text_hi = lifted.text_end;
    options.sections.data_lo = lifted.data_addr;
    options.sections.data_hi = lifted.data_end;
    options.memo = &memo;
    // Warm the memo so the timed loop is all hits.
    for (const auto &[entry, proc] : lifted.procs) {
        strand::represent_procedure(proc, options);
    }
    for (auto _ : state) {
        for (const auto &[entry, proc] : lifted.procs) {
            benchmark::DoNotOptimize(
                strand::represent_procedure(proc, options));
        }
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(lifted.procs.size()));
}
BENCHMARK(BM_StrandExtractionMemoWarm)->Unit(benchmark::kMillisecond);

void
BM_PairwiseSim(benchmark::State &state)
{
    const auto &q = wget_index();
    const auto &t = vendor_index();
    for (auto _ : state) {
        for (const auto &qp : q.procs) {
            for (const auto &tp : t.procs) {
                benchmark::DoNotOptimize(
                    sim::sim_score(qp.repr, tp.repr));
            }
        }
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(q.procs.size() * t.procs.size()));
}
BENCHMARK(BM_PairwiseSim);

void
BM_PairwiseSimMerge(benchmark::State &state)
{
    // The pre-kernel two-pointer/galloping merge over the same |Q|x|T|
    // grid: the baseline the tiered kernel (BM_PairwiseSim) and the
    // query-amortized probe (BM_QueryProbeScore) are measured against.
    const auto &q = wget_index();
    const auto &t = vendor_index();
    for (auto _ : state) {
        for (const auto &qp : q.procs) {
            for (const auto &tp : t.procs) {
                benchmark::DoNotOptimize(
                    sim::sim_score_merge(qp.repr, tp.repr));
            }
        }
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(q.procs.size() * t.procs.size()));
}
BENCHMARK(BM_PairwiseSimMerge);

void
BM_QueryProbeScore(benchmark::State &state)
{
    // The batch hunt's inner loop shape: build the probe once per query
    // procedure, score every target procedure against it. The items/s
    // ratio to BM_PairwiseSimMerge is the query-amortization win the
    // multi_hunt bench-json entry reports as kernel_speedup.
    const auto &q = wget_index();
    const auto &t = vendor_index();
    for (auto _ : state) {
        for (const auto &qp : q.procs) {
            const sim::QueryProbe probe(qp.repr);
            for (const auto &tp : t.procs) {
                benchmark::DoNotOptimize(probe.score(tp.repr));
            }
        }
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(q.procs.size() * t.procs.size()));
}
BENCHMARK(BM_QueryProbeScore);

void
BM_PostingBestMatch(benchmark::State &state)
{
    // The pruned counterpart of BM_PairwiseSim: one posting-list
    // accumulation per query procedure instead of |Q|x|T| pairwise
    // scores. The items/s ratio between the two is the per-query
    // speedup of the inverted index.
    const auto &q = wget_index();
    const auto &t = vendor_index();
    sim::ScoringStats stats;
    for (auto _ : state) {
        for (const auto &qp : q.procs) {
            benchmark::DoNotOptimize(
                sim::shared_candidates(t, qp.repr, &stats));
        }
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(q.procs.size() * t.procs.size()));
    state.counters["pairs_scored_per_query"] = benchmark::Counter(
        static_cast<double>(stats.pairs_scored) /
        static_cast<double>(state.iterations() * q.procs.size()));
    state.counters["elem_ops_per_query"] = benchmark::Counter(
        static_cast<double>(stats.elem_ops) /
        static_cast<double>(state.iterations() * q.procs.size()));
}
BENCHMARK(BM_PostingBestMatch);

void
BM_SerializeIndexV2(benchmark::State &state)
{
    // Write-back cost of the persistent index cache (FWIX v2 bytes,
    // postings included). Compare against BM_LiftExecutable +
    // BM_StrandExtraction: the serialize/parse pair must be far cheaper
    // than the work it saves for the warm scan to pay off.
    sim::ExecutableIndex index = wget_index();
    index.finalize();
    std::int64_t bytes = 0;
    for (auto _ : state) {
        const ByteBuffer blob = sim::serialize_index(index);
        bytes = static_cast<std::int64_t>(blob.size());
        benchmark::DoNotOptimize(blob.data());
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) * bytes);
}
BENCHMARK(BM_SerializeIndexV2);

void
BM_ParseIndexV2(benchmark::State &state)
{
    // The warm path: deserializing a finalized index (checksum verify +
    // CSR reload + map rebuild) replaces lift+canon+finalize entirely.
    sim::ExecutableIndex index = wget_index();
    index.finalize();
    const ByteBuffer blob = sim::serialize_index(index);
    for (auto _ : state) {
        auto parsed = sim::parse_index(blob);
        benchmark::DoNotOptimize(parsed.ok());
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(blob.size()));
}
BENCHMARK(BM_ParseIndexV2);

void
BM_MmapOpenV5(benchmark::State &state)
{
    // The zero-copy warm path: map a persisted FWIX v5 entry, verify
    // the payload checksum and open the index view over the mapped
    // arenas — no posting/hash vectors materialized. Compare against
    // BM_ParseIndexV2: the checksum pass is common to both, so the gap
    // is what the copying parser spends streaming arenas into vectors.
    if (!sim::open_view_supported()) {
        state.SkipWithError("v5 view unsupported on this host");
        return;
    }
    sim::ExecutableIndex index = wget_index();
    index.finalize();
    const ByteBuffer blob = sim::serialize_index(index);
    const std::string path =
        (std::filesystem::temp_directory_path() / "firmup-bench-v5.fwix")
            .string();
    {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out.write(reinterpret_cast<const char *>(blob.data()),
                  static_cast<std::streamsize>(blob.size()));
    }
    for (auto _ : state) {
        auto mapped = MappedFile::map(path);
        if (!mapped.ok()) {
            state.SkipWithError("mmap failed");
            return;
        }
        auto file = std::make_shared<MappedFile>(std::move(mapped).take());
        auto guard = sim::check_container(file->data(), file->size());
        auto view = sim::open_index_view(file->data(), file->size(),
                                         file, /*checked=*/true);
        benchmark::DoNotOptimize(guard.ok() && view.ok());
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(blob.size()));
    std::error_code cleanup_ec;
    std::filesystem::remove(path, cleanup_ec);
}
BENCHMARK(BM_MmapOpenV5);

void
BM_GameSearch(benchmark::State &state)
{
    const auto &q = wget_index();
    const auto &t = vendor_index();
    const int qv = q.find_by_name("ftp_retrieve_glob");
    for (auto _ : state) {
        benchmark::DoNotOptimize(game::match_query(q, qv, t));
    }
}
BENCHMARK(BM_GameSearch)->Unit(benchmark::kMillisecond);

void
BM_SearchCorpus(benchmark::State &state)
{
    // Full corpus fan-out at N worker threads (Arg). Thread 1 is the
    // serial reference; the hardware-concurrency row shows the
    // parallel_for scaling of eval::Driver::search_corpus.
    static const firmware::Corpus corpus = firmware::build_corpus();
    static const std::vector<eval::CorpusTarget> targets =
        eval::corpus_targets(corpus);
    const auto &cve = firmware::cve_database().front();
    const unsigned threads = static_cast<unsigned>(state.range(0));
    for (auto _ : state) {
        eval::Driver driver;  // fresh caches: times indexing + games
        benchmark::DoNotOptimize(
            driver.search_corpus(cve, targets, threads));
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(targets.size()));
}
BENCHMARK(BM_SearchCorpus)
    ->Arg(1)
    ->Arg(static_cast<int>(
        std::max(2u, std::thread::hardware_concurrency())))
    ->Unit(benchmark::kMillisecond);

void
BM_BatchHunt(benchmark::State &state)
{
    // The batched multi-CVE hunt at N worker threads (Arg): every CVE
    // in the database against the whole corpus through one driver, so
    // each target is indexed once and the (query, target) grid rides
    // the work-stealing scheduler. Compare the per-item rate against
    // BM_SearchCorpus x |CVEs| for the amortization win.
    static const firmware::Corpus corpus = firmware::build_corpus();
    static const std::vector<eval::CorpusTarget> targets =
        eval::corpus_targets(corpus);
    const auto &cves = firmware::cve_database();
    const unsigned threads = static_cast<unsigned>(state.range(0));
    for (auto _ : state) {
        eval::Driver driver;  // fresh caches: times indexing + games
        benchmark::DoNotOptimize(
            driver.search_corpus_batch(cves, targets, threads));
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(targets.size() * cves.size()));
}
BENCHMARK(BM_BatchHunt)
    ->Arg(1)
    ->Arg(static_cast<int>(
        std::max(2u, std::thread::hardware_concurrency())))
    ->Unit(benchmark::kMillisecond);

void
BM_MinHashSketch(benchmark::State &state)
{
    // Per-procedure sketch build cost over a whole executable — the
    // price finalize() pays (cold path only; FWIX v4 ships sketches).
    const sim::ExecutableIndex &index = wget_index();
    std::uint64_t checksum = 0;
    for (auto _ : state) {
        for (const sim::ProcEntry &proc : index.procs) {
            const strand::MinHashSketch sketch = strand::minhash_sketch(
                proc.repr.hash_data(), proc.repr.hash_count());
            checksum += sketch[0];
        }
    }
    benchmark::DoNotOptimize(checksum);
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(index.procs.size()));
}
BENCHMARK(BM_MinHashSketch);

void
BM_LshProbe(benchmark::State &state)
{
    // One LSH candidate probe (band lookups + rare-hash floor + exact
    // rescoring of survivors) per query procedure, against the vendor
    // build — the per-call unit the game's GetBestMatch pays in Lsh
    // mode. Compare against BM_BestMatch-style shared_candidates cost.
    sim::ExecutableIndex q = wget_index();
    sim::ExecutableIndex t = vendor_index();
    q.finalize();
    t.finalize();
    t.build_lsh(16, 4);
    std::uint64_t checksum = 0;
    for (auto _ : state) {
        for (const sim::ProcEntry &proc : q.procs) {
            const std::vector<sim::Candidate> cands =
                sim::lsh_candidates(t, proc.repr);
            checksum += cands.size();
        }
    }
    benchmark::DoNotOptimize(checksum);
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(q.procs.size()));
}
BENCHMARK(BM_LshProbe);

}  // namespace

BENCHMARK_MAIN();
