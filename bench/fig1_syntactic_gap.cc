/**
 * @file
 * Fig. 1 — "Wget ftp_retrieve_glob() vulnerability snippets": the same
 * source procedure compiled by two different toolchains shares (almost)
 * no assembly lines, yet canonical strands recover the similarity.
 *
 * Prints the first basic block of wget's ftp_retrieve_glob under the
 * reference gcc-like toolchain and under a vendor toolchain (both MIPS32,
 * as in the figure), the line-level overlap, and the strand-level
 * similarity that survives.
 */
#include <cstdio>

#include <set>

#include "codegen/build.h"
#include "eval/report.h"
#include "firmware/catalog.h"
#include "isa/mips.h"
#include "lifter/cfg.h"
#include "sim/similarity.h"

namespace {

using namespace firmup;

struct Built
{
    loader::Executable exe;
    lifter::LiftedExecutable lifted;
};

Built
build(const compiler::ToolchainProfile &profile)
{
    const auto &pkg = firmware::package_by_name("wget");
    const auto source = firmware::generate_package_source(pkg, "1.15");
    codegen::BuildRequest request;
    request.arch = isa::Arch::Mips32;
    request.profile = profile;
    Built b{codegen::build_executable(source, request), {}};
    auto lifted = lifter::lift_executable(b.exe);
    b.lifted = std::move(lifted).take();
    return b;
}

std::vector<std::string>
first_block_disasm(const Built &b, int max_insts)
{
    std::uint64_t entry = 0;
    for (const loader::Symbol &sym : b.exe.symbols) {
        if (sym.name == "ftp_retrieve_glob") {
            entry = sym.addr;
        }
    }
    const isa::Target &target = isa::target_for(isa::Arch::Mips32);
    std::vector<std::string> lines;
    std::uint64_t addr = entry;
    // Skip the prologue (sp adjust + register saves): every toolchain
    // emits a near-identical one; the interesting divergence is the body.
    while (true) {
        const std::size_t offset =
            static_cast<std::size_t>(addr - b.exe.text_addr);
        auto decoded = target.decode(b.exe.text.data() + offset,
                                     b.exe.text.size() - offset, addr);
        if (!decoded.ok()) {
            break;
        }
        const auto op =
            static_cast<isa::mips::Op>(decoded.value().inst.op);
        const bool prologue =
            (op == isa::mips::Op::Addiu &&
             decoded.value().inst.rd == isa::mips::Sp) ||
            (op == isa::mips::Op::Sw &&
             decoded.value().inst.rs == isa::mips::Sp);
        if (!prologue) {
            break;
        }
        addr += static_cast<std::uint64_t>(decoded.value().size);
    }
    for (int i = 0; i < max_insts; ++i) {
        const std::size_t offset =
            static_cast<std::size_t>(addr - b.exe.text_addr);
        auto decoded = target.decode(b.exe.text.data() + offset,
                                     b.exe.text.size() - offset, addr);
        if (!decoded.ok()) {
            break;
        }
        lines.push_back(target.disasm(decoded.value().inst));
        addr += static_cast<std::uint64_t>(decoded.value().size);
    }
    return lines;
}

}  // namespace

int
main()
{
    using namespace firmup;

    std::printf("== Fig. 1: the syntactic gap across toolchains ==\n\n");
    const Built query = build(compiler::gcc_like_toolchain());
    const Built vendor = build(compiler::vendor_toolchains()[1]);

    const auto a = first_block_disasm(query, 12);
    const auto b = first_block_disasm(vendor, 12);
    eval::Table table({"(a) gcc-like -O2", "(b) vendor toolchain"});
    for (std::size_t i = 0; i < std::max(a.size(), b.size()); ++i) {
        table.add_row({i < a.size() ? a[i] : "",
                       i < b.size() ? b[i] : ""});
    }
    std::printf("%s\n", table.render().c_str());

    const std::set<std::string> set_a(a.begin(), a.end());
    int shared_lines = 0;
    for (const std::string &line : b) {
        shared_lines += set_a.contains(line) ? 1 : 0;
    }
    std::printf("identical assembly lines in the first %zu/%zu shown: "
                "%d\n",
                a.size(), b.size(), shared_lines);

    // Strand-level similarity of the full procedures.
    const auto qi = sim::index_executable(query.lifted);
    const auto ti = sim::index_executable(vendor.lifted);
    const int q = qi.find_by_name("ftp_retrieve_glob");
    const int t = ti.find_by_name("ftp_retrieve_glob");
    const auto &qr = qi.procs[static_cast<std::size_t>(q)].repr;
    const auto &tr = ti.procs[static_cast<std::size_t>(t)].repr;
    std::printf("canonical strands: query=%zu target=%zu shared=%d\n",
                qr.hashes.size(), tr.hashes.size(),
                sim::sim_score(qr, tr));
    std::printf("\npaper reference: the Fig. 1 snippets share zero "
                "assembly lines yet are the same procedure;\nshape to "
                "check: near-zero shared lines, substantial shared "
                "canonical strands.\n");
    return 0;
}
