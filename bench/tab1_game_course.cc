/**
 * @file
 * Table 1 / Fig. 2 — the course of a back-and-forth game for wget's
 * vulnerable ftp_retrieve_glob(), searched in a customized, stripped
 * vendor build (the paper's NETGEAR firmware stand-in).
 *
 * The target is built with a different toolchain and with the `opie`
 * feature disabled (the paper's `--disable-opie` observation), so naive
 * pairwise matching is contested and the rival forces corrections.
 */
#include <cstdio>

#include "codegen/build.h"
#include "eval/driver.h"
#include "firmware/catalog.h"

int
main()
{
    using namespace firmup;

    std::printf("== Table 1: game course for ftp_retrieve_glob ==\n\n");

    // Query: default full-featured reference build.
    eval::Driver driver;
    eval::Query query = driver.build_query("wget", "ftp_retrieve_glob",
                                           "1.15", isa::Arch::Mips32);

    // Target: vendor-built, feature-customized, stripped wget.
    const auto &pkg = firmware::package_by_name("wget");
    const auto source = firmware::generate_package_source(pkg, "1.15");
    codegen::BuildRequest request;
    request.arch = isa::Arch::Mips32;
    request.profile = compiler::vendor_toolchains()[1];
    request.all_features = false;
    request.enabled_features = {"ssl"};  // --disable-opie
    request.strip = true;
    request.keep_exported = false;
    const loader::Executable target_exe =
        codegen::build_executable(source, request);
    const auto *target_ptr = driver.index_target(target_exe);
    FIRMUP_ASSERT(target_ptr != nullptr,
                  "trusted in-process build must lift");
    const auto &target = *target_ptr;

    game::GameOptions options;
    options.record_trace = true;
    game::GameResult result =
        game::match_query(query.index, query.qv, target, options);

    // The paper's walkthrough shows a contested game. If the vulnerable
    // procedure happens to settle immediately, also show the most
    // contested procedure of the same executable pair.
    game::GameResult showcase = result;
    std::string showcase_name = "ftp_retrieve_glob";
    if (showcase.steps <= 1) {
        for (std::size_t i = 0; i < query.index.procs.size(); ++i) {
            game::GameResult r = game::match_query(
                query.index, static_cast<int>(i), target, options);
            if (r.matched && r.steps > showcase.steps) {
                showcase = r;
                showcase_name = query.index.procs[i].name;
            }
        }
    }
    std::printf("-- game for the vulnerable query ftp_retrieve_glob --\n");
    for (const std::string &line : result.trace) {
        std::printf("  %s\n", line.c_str());
    }
    std::printf("\ngame %s after %d step(s); qv matched to 0x%llx "
                "(Sim=%d)\n",
                result.matched ? "won" : "lost", result.steps,
                static_cast<unsigned long long>(result.target_entry),
                result.sim);
    if (showcase.steps > result.steps) {
        std::printf("\n-- most contested game in this executable pair: "
                    "%s (%d steps) --\n",
                    showcase_name.c_str(), showcase.steps);
        for (const std::string &line : showcase.trace) {
            std::printf("  %s\n", line.c_str());
        }
    }
    std::printf("\npartial matching size: %zu pairs (out of %zu query / "
                "%zu target procedures)\n",
                result.q_to_t.size(), query.index.procs.size(),
                target.procs.size());

    // Verify against ground truth: an identically-configured unstripped
    // build tells us where ftp_retrieve_glob really is.
    codegen::BuildRequest truth_request = request;
    truth_request.strip = false;
    const loader::Executable truth_exe =
        codegen::build_executable(source, truth_request);
    for (const loader::Symbol &sym : truth_exe.symbols) {
        if (sym.name == "ftp_retrieve_glob") {
            std::printf("ground truth: ftp_retrieve_glob is at 0x%x -> "
                        "%s\n",
                        sym.addr,
                        sym.addr == result.target_entry ? "CORRECT"
                                                        : "WRONG");
        }
    }
    std::printf("\npaper reference: Table 1 needs three player moves "
                "before the rival runs out of counters;\nshape to check: "
                "a non-trivial trace ending in the correct match.\n");
    return 0;
}
