/**
 * @file
 * Fig. 5 — call-graph variance around wget's ftp_retrieve_glob() between
 * the query build and a customized vendor build.
 *
 * The paper attributes the variance to firmware customization, compiler
 * inlining and dynamic call targets, and uses it to explain why
 * graph-based techniques (BinDiff) fail. This bench quantifies it: the
 * callee set and call-site counts of the procedure (and the whole
 * executable's call-graph size) under the two builds.
 */
#include <algorithm>
#include <cstdio>
#include <set>
#include <string>

#include "codegen/build.h"
#include "eval/report.h"
#include "firmware/catalog.h"
#include "lifter/cfg.h"

namespace {

using namespace firmup;

struct GraphStats
{
    std::size_t procs = 0;
    std::size_t edges = 0;
    std::set<std::string> glob_callees;  ///< callees of ftp_retrieve_glob
    int glob_callers = 0;
};

GraphStats
analyze(bool vendor_custom)
{
    const auto &pkg = firmware::package_by_name("wget");
    const auto source = firmware::generate_package_source(pkg, "1.15");
    codegen::BuildRequest request;
    request.arch = isa::Arch::Mips32;
    if (vendor_custom) {
        request.profile = compiler::vendor_toolchains()[2];
        request.all_features = false;
        request.enabled_features = {};  // opie AND ssl disabled
    } else {
        request.profile = compiler::gcc_like_toolchain();
    }
    const auto exe = codegen::build_executable(source, request);
    auto lifted = lifter::lift_executable(exe).take();

    GraphStats stats;
    stats.procs = lifted.procs.size();
    std::uint64_t glob_entry = 0;
    for (const auto &[entry, proc] : lifted.procs) {
        if (proc.name == "ftp_retrieve_glob") {
            glob_entry = entry;
        }
    }
    // Restrict the caller count to direct callers (one level above, as
    // in the figure) rather than call sites.
    for (const auto &[entry, proc] : lifted.procs) {
        const auto callees = proc.callees();
        stats.edges += callees.size();
        for (std::uint64_t callee : callees) {
            if (callee == glob_entry) {
                ++stats.glob_callers;
            }
            if (entry == glob_entry) {
                const auto it = lifted.procs.find(callee);
                stats.glob_callees.insert(
                    it != lifted.procs.end() && !it->second.name.empty()
                        ? it->second.name
                        : "sub_" + std::to_string(callee));
            }
        }
    }
    return stats;
}

}  // namespace

int
main()
{
    using namespace firmup;

    std::printf("== Fig. 5: call-graph variance across builds ==\n\n");
    const GraphStats query = analyze(false);
    const GraphStats vendor = analyze(true);

    eval::Table table({"metric", "query build", "vendor build"});
    table.add_row({"procedures", std::to_string(query.procs),
                   std::to_string(vendor.procs)});
    table.add_row({"call edges", std::to_string(query.edges),
                   std::to_string(vendor.edges)});
    table.add_row({"ftp_retrieve_glob callees",
                   std::to_string(query.glob_callees.size()),
                   std::to_string(vendor.glob_callees.size())});
    table.add_row({"ftp_retrieve_glob callers",
                   std::to_string(query.glob_callers),
                   std::to_string(vendor.glob_callers)});
    std::printf("%s\n", table.render().c_str());

    std::size_t shared = 0;
    for (const std::string &name : vendor.glob_callees) {
        shared += query.glob_callees.contains(name) ? 1 : 0;
    }
    std::printf("callee sets of ftp_retrieve_glob share %zu names\n",
                shared);
    std::printf("\npaper reference: \"the variance in call-graph "
                "structure is vast\" even one level around\nthe "
                "procedure; shape to check: different procedure/edge "
                "counts and diverged callee sets.\n");
    return 0;
}
