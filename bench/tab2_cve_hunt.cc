/**
 * @file
 * Table 2 — "Confirmed vulnerable procedures found by FirmUp in publicly
 * available, stripped firmware images".
 *
 * Builds the wild corpus, then hunts every catalog CVE across every
 * executable of every firmware image (stripped targets only, as in the
 * paper). Reports confirmed findings, false positives, affected vendors,
 * latest-firmware findings, and wall-clock time per CVE.
 *
 * Shape expected from the paper: almost all rows with zero FPs, the
 * version-skew-prone wget row allowed to produce the few FPs, a
 * substantial fraction of findings on latest firmware.
 */
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <thread>

#include "eval/experiments.h"
#include "eval/report.h"
#include "support/str.h"

int
main()
{
    using namespace firmup;

    std::printf("== Table 2: CVE hunt over the wild corpus ==\n\n");
    const firmware::Corpus corpus = firmware::build_corpus();
    std::printf("corpus: %zu images, %zu executables, %zu procedures\n\n",
                corpus.images.size(), corpus.executable_count(),
                corpus.procedure_count());

    eval::Driver driver;
    // One-time corpus indexing (section 5.1), parallel like the paper's
    // 72-thread evaluation machine.
    const unsigned threads =
        std::max(2u, std::thread::hardware_concurrency());
    const auto index_start = std::chrono::steady_clock::now();
    const std::size_t indexed = driver.preindex(corpus, threads);
    const double index_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      index_start)
            .count();
    std::printf("indexed %zu distinct executables in %.2fs on %u "
                "threads\n\n",
                indexed, index_seconds, threads);

    const auto rows = eval::run_cve_hunt(driver, corpus, threads);

    eval::Table table({"CVE", "Package", "Procedure", "Confirmed", "FPs",
                       "Missed", "Affected Vendors", "Latest", "Time"});
    int total_confirmed = 0, total_fps = 0, total_latest = 0,
        total_missed = 0, total_skipped = 0;
    for (const auto &row : rows) {
        std::vector<std::string> vendors(row.vendors.begin(),
                                         row.vendors.end());
        table.add_row({row.cve.cve_id, row.cve.package,
                       row.cve.procedure, std::to_string(row.confirmed),
                       std::to_string(row.fps),
                       std::to_string(row.missed), join(vendors, ","),
                       std::to_string(row.latest),
                       strprintf("%.2fs", row.seconds)});
        total_confirmed += row.confirmed;
        total_fps += row.fps;
        total_latest += row.latest;
        total_missed += row.missed;
        total_skipped += row.skipped;
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("totals: %d confirmed vulnerable procedures "
                "(%d in latest firmware), %d false positives, %d missed, "
                "%d quarantined-target scans skipped\n",
                total_confirmed, total_latest, total_fps, total_missed,
                total_skipped);
    std::printf("%s\n", eval::render_health(driver.health()).c_str());
    std::printf("\npaper reference (real-world corpus): 373 confirmed, "
                "147 in latest firmware; FPs only on the\n"
                "version-skewed wget experiment (14). Absolute counts "
                "differ (synthetic corpus); the shape to check:\n"
                "near-zero FPs outside wget, confirmed >> FPs, and a "
                "large latest-firmware share.\n");
    return 0;
}
