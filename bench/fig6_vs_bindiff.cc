/**
 * @file
 * Fig. 6 — "Labeled experiment comparing BinDiff with FirmUp".
 *
 * Controlled experiment over labeled targets (paper section 5.3, group 1:
 * fully stripped copies so neither tool can use names). The five queries
 * are the ones in the figure. BinDiff's accounting follows the paper: an
 * unmatched query procedure counts as a false positive, because the
 * ground truth says it is present.
 *
 * Shape expected from the paper: BinDiff ~69% false results overall vs
 * ~6% for FirmUp; FirmUp wins every row.
 */
#include <cstdio>

#include "eval/experiments.h"
#include "eval/report.h"

int
main()
{
    using namespace firmup;

    std::printf("== Fig. 6: FirmUp vs BinDiff (labeled, stripped) ==\n\n");
    const firmware::Corpus corpus = firmware::build_corpus();
    eval::Driver driver;

    eval::LabeledOptions options;
    options.cve_ids = {"CVE-2013-1944", "CVE-2013-2168", "CVE-2016-8618",
                       "CVE-2011-0762", "CVE-2014-4877"};
    options.run_bindiff = true;
    options.strip_all_names = true;
    const eval::LabeledResult result =
        eval::run_labeled(driver, corpus, options);

    eval::Table table({"Query", "Targets", "FirmUp P", "FirmUp FN",
                       "FirmUp FP", "BinDiff P", "BinDiff FN",
                       "BinDiff FP"});
    for (const auto &row : result.rows) {
        table.add_row({row.query, std::to_string(row.targets),
                       std::to_string(row.firmup.p),
                       std::to_string(row.firmup.fn),
                       std::to_string(row.firmup.fp),
                       std::to_string(row.bindiff.p),
                       std::to_string(row.bindiff.fn),
                       std::to_string(row.bindiff.fp)});
    }
    std::printf("%s\n", table.render().c_str());

    const eval::Tally fu = result.firmup_total();
    const eval::Tally bd = result.bindiff_total();
    std::printf("FirmUp : %d/%d positive (%s), false results %s\n", fu.p,
                fu.total(), eval::percent(fu.precision()).c_str(),
                eval::percent(1.0 - fu.precision()).c_str());
    std::printf("BinDiff: %d/%d positive (%s), false results %s\n", bd.p,
                bd.total(), eval::percent(bd.precision()).c_str(),
                eval::percent(1.0 - bd.precision()).c_str());
    std::printf("\npaper reference: BinDiff 69.3%% false results overall "
                "vs 6%% for FirmUp (96%% positive);\nshape to check: "
                "FirmUp positive rate far above BinDiff on every row.\n");
    return 0;
}
