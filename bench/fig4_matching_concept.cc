/**
 * @file
 * Fig. 4 — procedure-centric vs executable-centric matching on the
 * paper's conceptual example: strands {s1..s5} spread over procedures
 * q1{s1,s2,s3}, q2{s1,s3,s4,s5} and t1{s1,s2,s3,s4,s5}, t2{s2,s3}.
 *
 * Procedure-centric matching pairs q1 with t1 (Sim=3), which is wrong in
 * the global view; the game discovers q2↔t1 (Sim=4) and settles q1↔t2.
 */
#include <cstdio>

#include "baseline/gitz_like.h"
#include "game/game.h"

namespace {

using namespace firmup;

sim::ExecutableIndex
make_index(const char *name,
           std::vector<std::pair<const char *,
                                 std::vector<std::uint64_t>>> procs)
{
    sim::ExecutableIndex index;
    index.name = name;
    std::uint64_t entry = 0x1000;
    for (auto &[proc_name, strands] : procs) {
        sim::ProcEntry pe;
        pe.entry = entry;
        entry += 0x100;
        pe.name = proc_name;
        pe.repr = strand::strand_set(strands);
        index.procs.push_back(std::move(pe));
    }
    index.finalize();
    return index;
}

}  // namespace

int
main()
{
    using namespace firmup;

    std::printf("== Fig. 4: procedure-centric vs executable-centric ==\n\n");
    const auto Q = make_index("Q", {{"q1", {1, 2, 3}},
                                    {"q2", {1, 3, 4, 5}}});
    const auto T = make_index("T", {{"t1", {1, 2, 3, 4, 5}},
                                    {"t2", {2, 3}}});

    const int naive = baseline::gitz_top1(Q, 0, T, nullptr);
    std::printf("procedure-centric: q1 -> %s (Sim=%d)\n",
                T.procs[static_cast<std::size_t>(naive)].name.c_str(),
                sim::sim_score(Q.procs[0].repr,
                               T.procs[static_cast<std::size_t>(
                                   naive)].repr));

    game::GameOptions options;
    options.record_trace = true;
    const auto result = game::match_query(Q, 0, T, options);
    for (const std::string &line : result.trace) {
        std::printf("  %s\n", line.c_str());
    }
    std::printf("executable-centric: q1 -> %s (Sim=%d) after %d steps\n",
                result.matched
                    ? T.procs[static_cast<std::size_t>(
                          result.target_index)].name.c_str()
                    : "<none>",
                result.sim, result.steps);
    std::printf("\npaper reference: the procedure-centric approach picks "
                "t1 for q1 (local maximum);\nthe game frees t1 for q2 and "
                "settles q1 on t2. Shape to check: naive=t1, game=t2.\n");
    return 0;
}
