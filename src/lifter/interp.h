/**
 * @file
 * µIR interpreter — concrete execution of lifted procedures.
 *
 * The reproduction's equivalence oracle: two compilations of the same
 * source procedure, lifted back to µIR, must compute the same result and
 * the same final global-memory state for the same arguments. This is the
 * differential test that pins down the whole compiler/encoder/decoder/
 * lifter chain semantically — if any stage mis-translates an instruction,
 * cross-toolchain executions diverge.
 *
 * (The paper itself never executes firmware code — that is its argument
 * against dynamic approaches, section 6 — but the *reproduction* needs an
 * executable semantics to prove its substrate faithful.)
 */
#pragma once

#include <map>

#include "lifter/cfg.h"

namespace firmup::lifter {

/** Result of a terminated interpretation. */
struct ExecResult
{
    bool ok = false;            ///< false: fuel exhausted or bad state
    std::string error;          ///< diagnostic when !ok
    std::uint32_t value = 0;    ///< ABI return-register value
    std::map<std::uint32_t, std::uint32_t> memory;  ///< final data words
};

/** Interpreter limits. */
struct ExecOptions
{
    std::uint64_t fuel = 200000;  ///< maximum statements to execute
    std::uint32_t stack_top = 0x7fff0000;  ///< initial stack pointer
};

/**
 * Execute the procedure at @p entry of @p lifted with the given
 * arguments (passed per the architecture's ABI). Data-section memory
 * starts zeroed; loads from unwritten addresses read zero. Division by
 * zero yields zero (the same convention the compile-time folders use).
 */
ExecResult execute_procedure(const LiftedExecutable &lifted,
                             std::uint64_t entry,
                             const std::vector<std::uint32_t> &args,
                             const ExecOptions &options = {});

}  // namespace firmup::lifter
