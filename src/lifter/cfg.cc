#include "lifter/cfg.h"

#include <algorithm>
#include <set>
#include <vector>

#include "isa/arm.h"
#include "isa/mips.h"
#include "isa/ppc.h"
#include "isa/x86.h"
#include "support/error.h"
#include "support/trace.h"

namespace firmup::lifter {

namespace {

const trace::Counter c_executables("lift.executables");
const trace::Counter c_procedures("lift.procedures");
const trace::Counter c_blocks("lift.blocks");

/** One decoded instruction with its lifted control-flow class. */
struct DecodedInst
{
    isa::MachInst inst;
    int size = 0;
    Flow flow;
    std::uint64_t call_target = 0;  ///< nonzero for direct calls
    bool is_call = false;
};

/** Decode + classify one instruction (lifting into a throwaway block). */
Result<DecodedInst>
decode_classify(const isa::Target &target, const loader::Executable &exe,
                std::uint64_t addr)
{
    if (addr < exe.text_addr ||
        addr >= exe.text_addr + exe.text.size()) {
        return Result<DecodedInst>::error(ErrorCode::UndecodableInsn,
                                          "address outside text");
    }
    const std::size_t offset =
        static_cast<std::size_t>(addr - exe.text_addr);
    auto decoded = target.decode(exe.text.data() + offset,
                                 exe.text.size() - offset, addr);
    if (!decoded.ok()) {
        return Result<DecodedInst>::error(ErrorCode::UndecodableInsn,
                                          decoded.error_message());
    }
    DecodedInst out;
    out.inst = decoded.value().inst;
    out.size = decoded.value().size;
    ir::Block scratch;
    LiftState state;
    out.flow = lift_inst(target.arch, out.inst, addr, state, scratch);
    for (const ir::Stmt &s : scratch.stmts) {
        if (s.kind == ir::Stmt::Kind::Call) {
            out.is_call = true;
            if (s.a.is_const()) {
                out.call_target = s.a.as_const();
            }
        }
    }
    return out;
}

/** Does @p inst look like the first instruction of a procedure? */
bool
is_prologue(isa::Arch arch, const isa::MachInst &inst)
{
    switch (arch) {
      case isa::Arch::Mips32:
        return static_cast<isa::mips::Op>(inst.op) ==
                   isa::mips::Op::Addiu &&
               inst.rd == isa::mips::Sp && inst.rs == isa::mips::Sp &&
               inst.imm < 0;
      case isa::Arch::Arm32:
        return static_cast<isa::arm::Op>(inst.op) ==
                   isa::arm::Op::SubImm &&
               inst.rd == isa::arm::Sp && inst.rs == isa::arm::Sp &&
               inst.imm > 0;
      case isa::Arch::Ppc32:
        return static_cast<isa::ppc::Op>(inst.op) == isa::ppc::Op::Addi &&
               inst.rd == isa::ppc::R1 && inst.rs == isa::ppc::R1 &&
               inst.imm < 0;
      case isa::Arch::X86:
        return static_cast<isa::x86::Op>(inst.op) == isa::x86::Op::Push &&
               inst.rd == isa::x86::Ebp;
    }
    return false;
}

/** Discovers and lifts one procedure; records call targets. */
class ProcLifter
{
  public:
    ProcLifter(const isa::Target &target, const loader::Executable &exe)
        : target_(target), exe_(exe),
          is_mips_(target.arch == isa::Arch::Mips32)
    {
    }

    /**
     * Lift the procedure at @p entry.
     * @param claimed global set of instruction addresses; extended with
     *        this procedure's instructions.
     * @param call_targets out: direct call targets found.
     */
    Result<ir::Procedure>
    lift(std::uint64_t entry, std::set<std::uint64_t> &claimed,
         std::set<std::uint64_t> &call_targets)
    {
        leaders_ = {entry};
        std::set<std::uint64_t> explored;
        std::vector<std::uint64_t> work{entry};

        // Pass A: discover leaders and instruction runs.
        while (!work.empty()) {
            std::uint64_t addr = work.back();
            work.pop_back();
            if (explored.contains(addr)) {
                continue;
            }
            explored.insert(addr);
            while (true) {
                if (insts_.contains(addr)) {
                    break;  // ran into already-decoded code
                }
                auto di = decode_classify(target_, exe_, addr);
                if (!di.ok()) {
                    // Lifter bail-out (paper 3.1: tools "may still fail
                    // to identify several blocks"); keep what we have.
                    break;
                }
                insts_[addr] = di.value();
                if (di.value().is_call && di.value().call_target != 0) {
                    call_targets.insert(di.value().call_target);
                }
                const std::uint64_t next =
                    addr + static_cast<std::uint64_t>(di.value().size);
                const Flow flow = di.value().flow;
                if (flow.kind == Flow::Kind::Normal) {
                    addr = next;
                    continue;
                }
                // Control transfer: account for the MIPS delay slot.
                std::uint64_t after = next;
                if (is_mips_) {
                    auto slot = decode_classify(target_, exe_, next);
                    if (slot.ok()) {
                        insts_[next] = slot.value();
                        if (slot.value().is_call &&
                            slot.value().call_target != 0) {
                            call_targets.insert(slot.value().call_target);
                        }
                        after = next + static_cast<std::uint64_t>(
                                           slot.value().size);
                    }
                }
                switch (flow.kind) {
                  case Flow::Kind::Branch:
                    leaders_.insert(flow.target);
                    leaders_.insert(after);
                    work.push_back(flow.target);
                    work.push_back(after);
                    break;
                  case Flow::Kind::Jump:
                    leaders_.insert(flow.target);
                    work.push_back(flow.target);
                    break;
                  case Flow::Kind::Ret:
                  case Flow::Kind::Normal:
                    break;
                }
                break;
            }
        }

        // Pass B: build blocks leader-by-leader.
        ir::Procedure proc;
        proc.entry = entry;
        for (std::uint64_t leader : leaders_) {
            if (!insts_.contains(leader)) {
                continue;  // unlifted region (decode failure)
            }
            build_block(proc, leader);
        }
        if (proc.blocks.empty()) {
            return Result<ir::Procedure>::error(
                ErrorCode::LiftBailout, "no decodable block at entry");
        }
        for (const auto &[addr, di] : insts_) {
            claimed.insert(addr);
        }
        return proc;
    }

  private:
    void
    build_block(ir::Procedure &proc, std::uint64_t leader)
    {
        ir::Block block;
        block.addr = leader;
        LiftState state;
        std::uint64_t addr = leader;
        while (true) {
            const auto it = insts_.find(addr);
            if (it == insts_.end()) {
                // Decode hole: end the block conservatively.
                block.end = ir::BlockEndKind::Ret;
                break;
            }
            const DecodedInst &di = it->second;
            const std::uint64_t next =
                addr + static_cast<std::uint64_t>(di.size);
            if (di.flow.kind == Flow::Kind::Normal) {
                lift_inst(target_.arch, di.inst, addr, state, block);
                if (leaders_.contains(next)) {
                    block.end = ir::BlockEndKind::Fallthrough;
                    block.fallthrough = next;
                    break;
                }
                addr = next;
                continue;
            }
            // Control transfer. For MIPS, the delay-slot instruction
            // executes regardless of the branch outcome and (by the
            // toolchain's filling rules) never feeds the branch
            // condition, so lifting it *before* the branch preserves
            // semantics and re-attaches it to this block — the paper's
            // block-boundary fix.
            std::uint64_t after = next;
            if (is_mips_) {
                const auto slot = insts_.find(next);
                if (slot != insts_.end()) {
                    lift_inst(target_.arch, slot->second.inst, next, state,
                              block);
                    after = next + static_cast<std::uint64_t>(
                                       slot->second.size);
                }
            }
            lift_inst(target_.arch, di.inst, addr, state, block);
            switch (di.flow.kind) {
              case Flow::Kind::Branch:
                block.end = ir::BlockEndKind::CondJump;
                block.target = di.flow.target;
                block.fallthrough = after;
                break;
              case Flow::Kind::Jump:
                block.end = ir::BlockEndKind::Jump;
                block.target = di.flow.target;
                break;
              default:
                block.end = ir::BlockEndKind::Ret;
                break;
            }
            break;
        }
        proc.blocks[leader] = std::move(block);
    }

    const isa::Target &target_;
    const loader::Executable &exe_;
    const bool is_mips_;
    std::set<std::uint64_t> leaders_;
    std::map<std::uint64_t, DecodedInst> insts_;
};

}  // namespace

isa::Arch
detect_arch(const loader::Executable &exe)
{
    int best_score = -1;
    isa::Arch best = exe.declared_arch;
    for (isa::Arch arch : isa::kAllArches) {
        const isa::Target &target = isa::target_for(arch);
        std::uint64_t addr = exe.entry;
        int score = 0;
        for (int i = 0; i < 64; ++i) {
            if (addr >= exe.text_addr + exe.text.size()) {
                break;
            }
            const std::size_t offset =
                static_cast<std::size_t>(addr - exe.text_addr);
            auto decoded = target.decode(exe.text.data() + offset,
                                         exe.text.size() - offset, addr);
            if (!decoded.ok()) {
                break;
            }
            ++score;
            addr += static_cast<std::uint64_t>(decoded.value().size);
        }
        // Prefer the declared arch on ties: vendors are usually right.
        if (score > best_score ||
            (score == best_score && arch == exe.declared_arch)) {
            best_score = score;
            best = arch;
        }
    }
    return best;
}

Result<LiftedExecutable>
lift_executable(const loader::Executable &exe, const LiftOptions &options)
{
    const trace::TraceSpan span("lift", exe.name);
    LiftedExecutable out;
    out.name = exe.name;
    out.arch = options.sniff_arch ? detect_arch(exe) : exe.declared_arch;
    out.text_addr = exe.text_addr;
    out.text_end = exe.text_addr + exe.text.size();
    out.data_addr = exe.data_addr;
    out.data_end = exe.data_addr + exe.data.size();
    const isa::Target &target = isa::target_for(out.arch);

    std::set<std::uint64_t> entries;
    std::set<std::uint64_t> claimed;
    std::vector<std::uint64_t> work;
    auto add_entry = [&](std::uint64_t addr) {
        if (addr >= out.text_addr && addr < out.text_end &&
            entries.insert(addr).second) {
            work.push_back(addr);
        }
    };
    add_entry(exe.entry);
    for (const loader::Symbol &sym : exe.symbols) {
        add_entry(sym.addr);
    }

    auto drain = [&] {
        while (!work.empty()) {
            const std::uint64_t entry = work.back();
            work.pop_back();
            if (out.procs.contains(entry)) {
                continue;
            }
            ProcLifter lifter(target, exe);
            std::set<std::uint64_t> call_targets;
            auto proc = lifter.lift(entry, claimed, call_targets);
            if (!proc.ok()) {
                continue;  // undecodable entry (corrupt or data)
            }
            proc.value().name = exe.symbol_at(
                static_cast<std::uint32_t>(entry));
            out.procs[entry] = std::move(proc).take();
            for (std::uint64_t t : call_targets) {
                add_entry(t);
            }
        }
    };
    drain();

    if (options.prologue_scan) {
        // Sweep unclaimed, 4-aligned text for prologue shapes; each hit
        // seeds another discovery round (its callees follow).
        for (std::uint64_t addr = out.text_addr; addr + 4 <= out.text_end;
             addr += 4) {
            if (claimed.contains(addr) || entries.contains(addr)) {
                continue;
            }
            const std::size_t offset =
                static_cast<std::size_t>(addr - out.text_addr);
            auto decoded = target.decode(exe.text.data() + offset,
                                         exe.text.size() - offset, addr);
            if (decoded.ok() &&
                is_prologue(out.arch, decoded.value().inst)) {
                add_entry(addr);
                drain();
            }
        }
    }
    c_executables.add();
    c_procedures.add(out.procs.size());
    if (trace::level() != trace::Level::Off) {
        std::uint64_t blocks = 0;
        for (const auto &[entry, proc] : out.procs) {
            blocks += proc.blocks.size();
        }
        c_blocks.add(blocks);
    }
    return out;
}

}  // namespace firmup::lifter
