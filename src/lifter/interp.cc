#include "lifter/interp.h"

#include "isa/arm.h"
#include "isa/mips.h"
#include "isa/ppc.h"
#include "isa/x86.h"

namespace firmup::lifter {

namespace {

using ir::BinOp;
using ir::Operand;
using ir::Stmt;
using ir::UnOp;

std::uint32_t
eval_bin(BinOp op, std::uint32_t a, std::uint32_t b)
{
    const auto sa = static_cast<std::int32_t>(a);
    const auto sb = static_cast<std::int32_t>(b);
    switch (op) {
      case BinOp::Add: return a + b;
      case BinOp::Sub: return a - b;
      case BinOp::Mul: return a * b;
      case BinOp::DivS:
        return (sb == 0 || (sa == INT32_MIN && sb == -1))
                   ? 0
                   : static_cast<std::uint32_t>(sa / sb);
      case BinOp::DivU: return b == 0 ? 0 : a / b;
      case BinOp::RemS:
        return (sb == 0 || (sa == INT32_MIN && sb == -1))
                   ? 0
                   : static_cast<std::uint32_t>(sa % sb);
      case BinOp::RemU: return b == 0 ? 0 : a % b;
      case BinOp::And: return a & b;
      case BinOp::Or: return a | b;
      case BinOp::Xor: return a ^ b;
      case BinOp::Shl: return a << (b & 31);
      case BinOp::ShrL: return a >> (b & 31);
      case BinOp::ShrA:
        return static_cast<std::uint32_t>(sa >> (b & 31));
      case BinOp::CmpEQ: return a == b;
      case BinOp::CmpNE: return a != b;
      case BinOp::CmpLTS: return sa < sb;
      case BinOp::CmpLTU: return a < b;
      case BinOp::CmpLES: return sa <= sb;
      case BinOp::CmpLEU: return a <= b;
    }
    return 0;
}

/** Whole-machine interpretation state. */
class Machine
{
  public:
    Machine(const LiftedExecutable &lifted, const ExecOptions &options)
        : lifted_(lifted), options_(options), fuel_(options.fuel)
    {
    }

    std::map<ir::RegId, std::uint32_t> regs;
    std::map<std::uint32_t, std::uint32_t> memory;

    std::uint32_t
    load(std::uint32_t addr)
    {
        const auto it = memory.find(addr & ~3u);
        return it != memory.end() ? it->second : 0;
    }

    void
    store(std::uint32_t addr, std::uint32_t value)
    {
        memory[addr & ~3u] = value;
    }

    /** Execute the procedure at @p entry; false on fuel/undecodable. */
    bool
    call(std::uint64_t entry, std::string &error)
    {
        const auto proc_it = lifted_.procs.find(entry);
        if (proc_it == lifted_.procs.end()) {
            error = "call to unknown procedure";
            return false;
        }
        if (++depth_ > 64) {
            --depth_;
            error = "call depth exceeded";
            return false;
        }
        const ir::Procedure &proc = proc_it->second;
        std::uint64_t block_addr = proc.entry;
        while (true) {
            const auto block_it = proc.blocks.find(block_addr);
            if (block_it == proc.blocks.end()) {
                --depth_;
                error = "control reached an unlifted block";
                return false;
            }
            const ir::Block &block = block_it->second;
            std::map<ir::TempId, std::uint32_t> temps;
            auto value = [&temps](const Operand &op) -> std::uint32_t {
                if (op.is_const()) {
                    return op.as_const();
                }
                const auto it = temps.find(op.as_temp());
                return it != temps.end() ? it->second : 0;
            };
            bool taken = false;
            std::uint64_t taken_target = 0;
            for (const Stmt &s : block.stmts) {
                if (fuel_-- == 0) {
                    --depth_;
                    error = "fuel exhausted";
                    return false;
                }
                switch (s.kind) {
                  case Stmt::Kind::Get:
                    temps[s.dst] = regs[s.reg];
                    break;
                  case Stmt::Kind::Put:
                    regs[s.reg] = value(s.a);
                    break;
                  case Stmt::Kind::Bin:
                    temps[s.dst] =
                        eval_bin(s.bin_op, value(s.a), value(s.b));
                    break;
                  case Stmt::Kind::Un:
                    temps[s.dst] = s.un_op == UnOp::Neg
                                       ? 0u - value(s.a)
                                       : ~value(s.a);
                    break;
                  case Stmt::Kind::Load:
                    temps[s.dst] = load(value(s.a));
                    break;
                  case Stmt::Kind::Store:
                    store(value(s.a), value(s.b));
                    break;
                  case Stmt::Kind::Select:
                    temps[s.dst] = value(s.a) != 0 ? value(s.b)
                                                   : value(s.extra);
                    break;
                  case Stmt::Kind::Call: {
                    const std::uint32_t target = value(s.a);
                    // x86 `call` pushes a return address the lifted
                    // statement does not model; emulate it so callee
                    // frames see the cdecl layout, and emulate `ret`'s
                    // pop on the way out.
                    if (lifted_.arch == isa::Arch::X86) {
                        regs[isa::x86::Esp] -= 4;
                        store(regs[isa::x86::Esp], 0xdeadbeef);
                    }
                    if (!call(target, error)) {
                        --depth_;
                        return false;
                    }
                    if (lifted_.arch == isa::Arch::X86) {
                        regs[isa::x86::Esp] += 4;
                    }
                    temps[s.dst] = regs[ret_reg()];
                    break;
                  }
                  case Stmt::Kind::Exit:
                    if (value(s.a) != 0) {
                        taken = true;
                        taken_target = value(s.b);
                    }
                    break;
                }
                if (taken) {
                    break;
                }
            }
            if (taken) {
                block_addr = taken_target;
                continue;
            }
            switch (block.end) {
              case ir::BlockEndKind::Fallthrough:
                block_addr = block.fallthrough;
                break;
              case ir::BlockEndKind::Jump:
                block_addr = block.target;
                break;
              case ir::BlockEndKind::CondJump:
                block_addr = block.fallthrough;  // Exit not taken
                break;
              case ir::BlockEndKind::Ret:
                --depth_;
                return true;
            }
        }
    }

    ir::RegId
    ret_reg() const
    {
        switch (lifted_.arch) {
          case isa::Arch::Mips32: return isa::mips::V0;
          case isa::Arch::Arm32: return isa::arm::R0;
          case isa::Arch::Ppc32: return isa::ppc::R3;
          case isa::Arch::X86: return isa::x86::Eax;
        }
        return 0;
    }

    ir::RegId
    sp_reg() const
    {
        switch (lifted_.arch) {
          case isa::Arch::Mips32: return isa::mips::Sp;
          case isa::Arch::Arm32: return isa::arm::Sp;
          case isa::Arch::Ppc32: return isa::ppc::R1;
          case isa::Arch::X86: return isa::x86::Esp;
        }
        return 0;
    }

  private:
    const LiftedExecutable &lifted_;
    const ExecOptions &options_;
    std::uint64_t fuel_;
    int depth_ = 0;
};

}  // namespace

ExecResult
execute_procedure(const LiftedExecutable &lifted, std::uint64_t entry,
                  const std::vector<std::uint32_t> &args,
                  const ExecOptions &options)
{
    Machine machine(lifted, options);
    machine.regs[machine.sp_reg()] = options.stack_top;

    // Place arguments per the architecture's ABI.
    switch (lifted.arch) {
      case isa::Arch::Mips32:
        for (std::size_t i = 0; i < args.size() && i < 4; ++i) {
            machine.regs[static_cast<ir::RegId>(isa::mips::A0 + i)] =
                args[i];
        }
        break;
      case isa::Arch::Arm32:
        for (std::size_t i = 0; i < args.size() && i < 4; ++i) {
            machine.regs[static_cast<ir::RegId>(isa::arm::R0 + i)] =
                args[i];
        }
        break;
      case isa::Arch::Ppc32:
        for (std::size_t i = 0; i < args.size() && i < 4; ++i) {
            machine.regs[static_cast<ir::RegId>(isa::ppc::R3 + i)] =
                args[i];
        }
        break;
      case isa::Arch::X86: {
        // cdecl: args above a dummy return address.
        std::uint32_t sp = options.stack_top;
        for (std::size_t i = args.size(); i-- > 0;) {
            sp -= 4;
            machine.store(sp, args[i]);
        }
        sp -= 4;
        machine.store(sp, 0xdeadbeef);  // return address slot
        machine.regs[machine.sp_reg()] = sp;
        break;
      }
    }

    ExecResult result;
    std::string error;
    if (!machine.call(entry, error)) {
        result.error = error;
        return result;
    }
    result.ok = true;
    result.value = machine.regs[machine.ret_reg()];
    // Report only data-section memory: stack layouts legitimately differ
    // between compilations.
    for (const auto &[addr, value] : machine.memory) {
        if (addr >= lifted.data_addr && addr < lifted.data_end &&
            value != 0) {
            result.memory[addr - static_cast<std::uint32_t>(
                                     lifted.data_addr)] = value;
        }
    }
    return result;
}

}  // namespace firmup::lifter
