/**
 * @file
 * Executable lifting: architecture sniffing, procedure discovery and CFG
 * recovery for stripped FWELF binaries.
 *
 * This module plays the role IDA Pro plays in the paper ("the parsing and
 * extraction of procedures and BBs from executables", section 3.1),
 * including the robustness caveats the paper lists:
 *  - vendor headers lie about the architecture (wrong ELFCLASS): we sniff
 *    the real ISA by trial-decoding (detect_arch);
 *  - MIPS branch delay slots displace the first instruction of the
 *    following block: the lifter re-attributes slot instructions to the
 *    branch's block;
 *  - procedures are discovered from the entry point, the (optional)
 *    symbol table, call targets, and a prologue scan over text bytes not
 *    claimed by any discovered procedure ("coverage of unaccounted-for
 *    areas in the text section").
 */
#pragma once

#include <map>
#include <string>

#include "ir/uir.h"
#include "lifter/lift.h"
#include "loader/fwelf.h"

namespace firmup::lifter {

/** A fully lifted executable: µIR procedures plus section geometry. */
struct LiftedExecutable
{
    std::string name;
    isa::Arch arch = isa::Arch::Mips32;
    std::uint64_t text_addr = 0;
    std::uint64_t text_end = 0;
    std::uint64_t data_addr = 0;
    std::uint64_t data_end = 0;
    std::map<std::uint64_t, ir::Procedure> procs;  ///< keyed by entry

    /** True when @p value looks like a code or static-data address. */
    bool is_section_address(std::uint64_t value) const
    {
        return (value >= text_addr && value < text_end) ||
               (value >= data_addr && value < data_end);
    }
};

/**
 * Sniff the actual ISA of @p exe by trial-decoding from the entry point,
 * preferring the declared architecture on ties.
 */
isa::Arch detect_arch(const loader::Executable &exe);

/** Options for lift_executable. */
struct LiftOptions
{
    bool sniff_arch = true;     ///< distrust the header's declared arch
    bool prologue_scan = true;  ///< discover never-called procedures
};

/** Lift every discoverable procedure of @p exe. */
Result<LiftedExecutable> lift_executable(const loader::Executable &exe,
                                         const LiftOptions &options = {});

}  // namespace firmup::lifter
