/**
 * @file
 * Instruction lifting: machine instructions → µIR statements.
 *
 * Mirrors the role of VEX in the paper (section 3.1): every lifted
 * instruction exposes the full machine-state effect, including flag
 * side-effects. Flag-setting compares are lifted the way VEX models
 * condition codes — the compare operands are stored into CC_DEP1/CC_DEP2
 * pseudo-registers and the consuming branch/set instruction materializes
 * the actual comparison expression — which lets one canonical form emerge
 * across flag-based (ARM, x86, PPC) and compare-into-register (MIPS)
 * architectures once strands are simplified.
 */
#pragma once

#include "ir/uir.h"
#include "isa/isa.h"

namespace firmup::lifter {

/** Pseudo guest registers shared by all ISAs (above any real register). */
inline constexpr ir::RegId kRegCcDep1 = 64;  ///< last compare, left
inline constexpr ir::RegId kRegCcDep2 = 65;  ///< last compare, right
inline constexpr ir::RegId kRegLr = 66;      ///< PPC link register

/** Control-flow effect of one lifted instruction. */
struct Flow
{
    enum class Kind : std::uint8_t {
        Normal,  ///< falls through
        Branch,  ///< conditional; Exit statement emitted, `target` set
        Jump,    ///< unconditional transfer to `target`
        Ret,     ///< procedure return
    } kind = Kind::Normal;
    std::uint64_t target = 0;

    static Flow normal() { return {}; }
    static Flow branch(std::uint64_t t) { return {Kind::Branch, t}; }
    static Flow jump(std::uint64_t t) { return {Kind::Jump, t}; }
    static Flow ret() { return {Kind::Ret, 0}; }
};

/** Mutable lifting state threaded through one basic block. */
struct LiftState
{
    ir::TempId next_temp = 0;
    bool cmp_unsigned = false;  ///< PPC: was the live compare a cmplw?
};

/**
 * Lift one instruction into @p block.
 *
 * Calls are lifted as in-block Call statements (blocks do not split at
 * calls). Branch targets are absolute addresses.
 */
Flow lift_inst(isa::Arch arch, const isa::MachInst &inst,
               std::uint64_t addr, LiftState &state, ir::Block &block);

}  // namespace firmup::lifter
