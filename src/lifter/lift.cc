#include "lifter/lift.h"

#include "isa/arm.h"
#include "isa/mips.h"
#include "isa/ppc.h"
#include "isa/x86.h"
#include "support/error.h"

namespace firmup::lifter {

using ir::BinOp;
using ir::Operand;
using ir::Stmt;
using ir::TempId;
using ir::UnOp;
using isa::MachInst;

namespace {

/** Statement emission helpers bound to one block + temp counter. */
class Emitter
{
  public:
    Emitter(ir::Block &block, LiftState &state, std::uint64_t addr)
        : block_(block), state_(state), addr_(addr)
    {
    }

    TempId
    fresh()
    {
        return state_.next_temp++;
    }

    void
    push(Stmt s)
    {
        s.insn_addr = addr_;
        block_.stmts.push_back(s);
    }

    /** t = Get(reg) */
    Operand
    get(ir::RegId reg)
    {
        const TempId t = fresh();
        push(Stmt::get(t, reg));
        return Operand::temp(t);
    }

    void
    put(ir::RegId reg, Operand v)
    {
        push(Stmt::put(reg, v));
    }

    Operand
    bin(BinOp op, Operand a, Operand b)
    {
        const TempId t = fresh();
        push(Stmt::bin(t, op, a, b));
        return Operand::temp(t);
    }

    Operand
    un(UnOp op, Operand a)
    {
        const TempId t = fresh();
        push(Stmt::un(t, op, a));
        return Operand::temp(t);
    }

    Operand
    load(Operand address)
    {
        const TempId t = fresh();
        push(Stmt::load(t, address));
        return Operand::temp(t);
    }

    void
    store(Operand address, Operand value)
    {
        push(Stmt::store(address, value));
    }

    Operand
    call(Operand target)
    {
        const TempId t = fresh();
        push(Stmt::call(t, target));
        return Operand::temp(t);
    }

    void
    exit_if(Operand cond, std::uint64_t target)
    {
        push(Stmt::exit(cond, Operand::imm(
                                  static_cast<std::uint32_t>(target))));
    }

    /** Comparison of the recorded CC_DEP operands under `cond`. */
    Operand
    cc_compare(isa::Cond cond)
    {
        const Operand a = get(kRegCcDep1);
        const Operand b = get(kRegCcDep2);
        return bin(cond_op(cond), a, b);
    }

    static BinOp
    cond_op(isa::Cond cond)
    {
        switch (cond) {
          case isa::Cond::EQ: return BinOp::CmpEQ;
          case isa::Cond::NE: return BinOp::CmpNE;
          case isa::Cond::LTS: return BinOp::CmpLTS;
          case isa::Cond::LES: return BinOp::CmpLES;
          case isa::Cond::LTU: return BinOp::CmpLTU;
          case isa::Cond::LEU: return BinOp::CmpLEU;
        }
        return BinOp::CmpEQ;
    }

  private:
    ir::Block &block_;
    LiftState &state_;
    std::uint64_t addr_;
};

Flow
lift_mips(const MachInst &inst, std::uint64_t addr, LiftState &state,
          ir::Block &block)
{
    namespace m = isa::mips;
    Emitter e(block, state, addr);
    const auto op = static_cast<m::Op>(inst.op);
    // $zero reads as constant 0 — resolving it here keeps strands clean.
    auto reg = [&e](isa::MReg r) {
        return r == m::Zero ? Operand::imm(0) : e.get(r);
    };
    auto imm_s = [&inst] {
        return Operand::imm(static_cast<std::uint32_t>(
            static_cast<std::int32_t>(inst.imm)));
    };
    auto imm_u = [&inst] {
        return Operand::imm(static_cast<std::uint32_t>(inst.imm) & 0xffff);
    };

    switch (op) {
      case m::Op::Nop:
        return Flow::normal();
      case m::Op::Lui:
        e.put(inst.rd, Operand::imm(static_cast<std::uint32_t>(inst.imm)
                                    << 16));
        return Flow::normal();
      case m::Op::Ori:
        e.put(inst.rd, e.bin(BinOp::Or, reg(inst.rs), imm_u()));
        return Flow::normal();
      case m::Op::Andi:
        e.put(inst.rd, e.bin(BinOp::And, reg(inst.rs), imm_u()));
        return Flow::normal();
      case m::Op::Xori:
        e.put(inst.rd, e.bin(BinOp::Xor, reg(inst.rs), imm_u()));
        return Flow::normal();
      case m::Op::Addiu:
        e.put(inst.rd, e.bin(BinOp::Add, reg(inst.rs), imm_s()));
        return Flow::normal();
      case m::Op::Slti:
        e.put(inst.rd, e.bin(BinOp::CmpLTS, reg(inst.rs), imm_s()));
        return Flow::normal();
      case m::Op::Sltiu:
        e.put(inst.rd, e.bin(BinOp::CmpLTU, reg(inst.rs), imm_s()));
        return Flow::normal();
      case m::Op::Lw:
        e.put(inst.rd,
              e.load(e.bin(BinOp::Add, reg(inst.rs), imm_s())));
        return Flow::normal();
      case m::Op::Sw:
        e.store(e.bin(BinOp::Add, reg(inst.rs), imm_s()), reg(inst.rd));
        return Flow::normal();
      case m::Op::Sll:
      case m::Op::Srl:
      case m::Op::Sra: {
        const BinOp shift = op == m::Op::Sll    ? BinOp::Shl
                            : op == m::Op::Srl ? BinOp::ShrL
                                               : BinOp::ShrA;
        e.put(inst.rd, e.bin(shift, reg(inst.rs),
                             Operand::imm(static_cast<std::uint32_t>(
                                 inst.imm & 31))));
        return Flow::normal();
      }
      case m::Op::Addu:
      case m::Op::Subu:
      case m::Op::Mul:
      case m::Op::Div:
      case m::Op::Mod:
      case m::Op::Divu:
      case m::Op::And:
      case m::Op::Or:
      case m::Op::Xor:
      case m::Op::Sllv:
      case m::Op::Srlv:
      case m::Op::Srav:
      case m::Op::Slt:
      case m::Op::Sltu: {
        BinOp bop;
        switch (op) {
          case m::Op::Addu: bop = BinOp::Add; break;
          case m::Op::Subu: bop = BinOp::Sub; break;
          case m::Op::Mul: bop = BinOp::Mul; break;
          case m::Op::Div: bop = BinOp::DivS; break;
          case m::Op::Mod: bop = BinOp::RemS; break;
          case m::Op::Divu: bop = BinOp::DivU; break;
          case m::Op::And: bop = BinOp::And; break;
          case m::Op::Or: bop = BinOp::Or; break;
          case m::Op::Xor: bop = BinOp::Xor; break;
          case m::Op::Sllv: bop = BinOp::Shl; break;
          case m::Op::Srlv: bop = BinOp::ShrL; break;
          case m::Op::Srav: bop = BinOp::ShrA; break;
          case m::Op::Slt: bop = BinOp::CmpLTS; break;
          default: bop = BinOp::CmpLTU; break;
        }
        e.put(inst.rd, e.bin(bop, reg(inst.rs), reg(inst.rt)));
        return Flow::normal();
      }
      case m::Op::Beq:
      case m::Op::Bne: {
        const Operand c =
            e.bin(op == m::Op::Beq ? BinOp::CmpEQ : BinOp::CmpNE,
                  reg(inst.rs), reg(inst.rt));
        e.exit_if(c, static_cast<std::uint64_t>(inst.imm));
        return Flow::branch(static_cast<std::uint64_t>(inst.imm));
      }
      case m::Op::J:
        return Flow::jump(static_cast<std::uint64_t>(inst.imm));
      case m::Op::Jal: {
        const Operand result = e.call(Operand::imm(
            static_cast<std::uint32_t>(inst.imm)));
        e.put(m::V0, result);
        return Flow::normal();
      }
      case m::Op::Jalr: {
        const Operand result = e.call(reg(inst.rs));
        e.put(m::V0, result);
        return Flow::normal();
      }
      case m::Op::Jr:
        // `jr $ra` is the return idiom; other targets (not produced by
        // any toolchain here) degrade to a return as well.
        return Flow::ret();
    }
    return Flow::normal();
}

Flow
lift_arm(const MachInst &inst, std::uint64_t addr, LiftState &state,
         ir::Block &block)
{
    namespace a = isa::arm;
    Emitter e(block, state, addr);
    const auto op = static_cast<a::Op>(inst.op);
    auto imm32 = [&inst] {
        return Operand::imm(static_cast<std::uint32_t>(
            static_cast<std::int32_t>(inst.imm)));
    };

    switch (op) {
      case a::Op::Nop:
        return Flow::normal();
      case a::Op::MovReg:
        e.put(inst.rd, e.get(inst.rt));
        return Flow::normal();
      case a::Op::MovImm:
        e.put(inst.rd, imm32());
        return Flow::normal();
      case a::Op::Movw:
        e.put(inst.rd,
              Operand::imm(static_cast<std::uint32_t>(inst.imm) & 0xffff));
        return Flow::normal();
      case a::Op::Movt: {
        const Operand low =
            e.bin(BinOp::And, e.get(inst.rd), Operand::imm(0xffff));
        e.put(inst.rd,
              e.bin(BinOp::Or, low,
                    Operand::imm(static_cast<std::uint32_t>(inst.imm)
                                 << 16)));
        return Flow::normal();
      }
      case a::Op::Add:
      case a::Op::Sub:
      case a::Op::Mul:
      case a::Op::And:
      case a::Op::Orr:
      case a::Op::Eor:
      case a::Op::Lsl:
      case a::Op::Lsr:
      case a::Op::Asr:
      case a::Op::Sdiv:
      case a::Op::Srem: {
        BinOp bop;
        switch (op) {
          case a::Op::Add: bop = BinOp::Add; break;
          case a::Op::Sub: bop = BinOp::Sub; break;
          case a::Op::Mul: bop = BinOp::Mul; break;
          case a::Op::And: bop = BinOp::And; break;
          case a::Op::Orr: bop = BinOp::Or; break;
          case a::Op::Eor: bop = BinOp::Xor; break;
          case a::Op::Lsl: bop = BinOp::Shl; break;
          case a::Op::Lsr: bop = BinOp::ShrL; break;
          case a::Op::Asr: bop = BinOp::ShrA; break;
          case a::Op::Sdiv: bop = BinOp::DivS; break;
          default: bop = BinOp::RemS; break;
        }
        e.put(inst.rd, e.bin(bop, e.get(inst.rs), e.get(inst.rt)));
        return Flow::normal();
      }
      case a::Op::AddImm:
        e.put(inst.rd, e.bin(BinOp::Add, e.get(inst.rs), imm32()));
        return Flow::normal();
      case a::Op::SubImm:
        e.put(inst.rd, e.bin(BinOp::Sub, e.get(inst.rs), imm32()));
        return Flow::normal();
      case a::Op::LslImm:
      case a::Op::LsrImm:
      case a::Op::AsrImm: {
        const BinOp bop = op == a::Op::LslImm   ? BinOp::Shl
                          : op == a::Op::LsrImm ? BinOp::ShrL
                                                : BinOp::ShrA;
        e.put(inst.rd, e.bin(bop, e.get(inst.rs), imm32()));
        return Flow::normal();
      }
      case a::Op::Cmp:
        e.put(kRegCcDep1, e.get(inst.rs));
        e.put(kRegCcDep2, e.get(inst.rt));
        return Flow::normal();
      case a::Op::CmpImm:
        e.put(kRegCcDep1, e.get(inst.rs));
        e.put(kRegCcDep2, imm32());
        return Flow::normal();
      case a::Op::Ldr:
        e.put(inst.rd, e.load(e.bin(BinOp::Add, e.get(inst.rs),
                                    imm32())));
        return Flow::normal();
      case a::Op::Str:
        e.store(e.bin(BinOp::Add, e.get(inst.rs), imm32()),
                e.get(inst.rd));
        return Flow::normal();
      case a::Op::B:
        if (inst.rt == 1) {
            e.exit_if(e.cc_compare(inst.cond),
                      static_cast<std::uint64_t>(inst.imm));
            return Flow::branch(static_cast<std::uint64_t>(inst.imm));
        }
        return Flow::jump(static_cast<std::uint64_t>(inst.imm));
      case a::Op::Bl: {
        const Operand result = e.call(Operand::imm(
            static_cast<std::uint32_t>(inst.imm)));
        e.put(a::R0, result);
        return Flow::normal();
      }
      case a::Op::BxLr:
        return Flow::ret();
      case a::Op::Set:
        e.put(inst.rd, e.cc_compare(inst.cond));
        return Flow::normal();
    }
    return Flow::normal();
}

Flow
lift_ppc(const MachInst &inst, std::uint64_t addr, LiftState &state,
         ir::Block &block)
{
    namespace p = isa::ppc;
    Emitter e(block, state, addr);
    const auto op = static_cast<p::Op>(inst.op);
    auto imm_s = [&inst] {
        return Operand::imm(static_cast<std::uint32_t>(
            static_cast<std::int32_t>(inst.imm)));
    };
    /** Resolve a cr0 condition against the live compare signedness. */
    auto resolve_cond = [&state](isa::Cond cond) {
        if (!state.cmp_unsigned) {
            return cond;
        }
        switch (cond) {
          case isa::Cond::LTS: return isa::Cond::LTU;
          case isa::Cond::LES: return isa::Cond::LEU;
          default: return cond;
        }
    };

    switch (op) {
      case p::Op::Nop:
        return Flow::normal();
      case p::Op::Addi:
        // PPC: RA=0 means literal zero (the li idiom).
        if (inst.rs == 0) {
            e.put(inst.rd, imm_s());
        } else {
            e.put(inst.rd, e.bin(BinOp::Add, e.get(inst.rs), imm_s()));
        }
        return Flow::normal();
      case p::Op::Addis: {
        const Operand shifted = Operand::imm(
            static_cast<std::uint32_t>(inst.imm) << 16);
        if (inst.rs == 0) {
            e.put(inst.rd, shifted);
        } else {
            e.put(inst.rd, e.bin(BinOp::Add, e.get(inst.rs), shifted));
        }
        return Flow::normal();
      }
      case p::Op::Ori:
        e.put(inst.rd,
              e.bin(BinOp::Or, e.get(inst.rs),
                    Operand::imm(static_cast<std::uint32_t>(inst.imm) &
                                 0xffff)));
        return Flow::normal();
      case p::Op::Add:
      case p::Op::Subf:
      case p::Op::Mullw:
      case p::Op::Divw:
      case p::Op::Divwu:
      case p::Op::Modsw:
      case p::Op::And:
      case p::Op::Or:
      case p::Op::Xor:
      case p::Op::Slw:
      case p::Op::Srw:
      case p::Op::Sraw: {
        BinOp bop;
        switch (op) {
          case p::Op::Add: bop = BinOp::Add; break;
          case p::Op::Subf: bop = BinOp::Sub; break;
          case p::Op::Mullw: bop = BinOp::Mul; break;
          case p::Op::Divw: bop = BinOp::DivS; break;
          case p::Op::Divwu: bop = BinOp::DivU; break;
          case p::Op::Modsw: bop = BinOp::RemS; break;
          case p::Op::And: bop = BinOp::And; break;
          case p::Op::Or: bop = BinOp::Or; break;
          case p::Op::Xor: bop = BinOp::Xor; break;
          case p::Op::Slw: bop = BinOp::Shl; break;
          case p::Op::Srw: bop = BinOp::ShrL; break;
          default: bop = BinOp::ShrA; break;
        }
        e.put(inst.rd, e.bin(bop, e.get(inst.rs), e.get(inst.rt)));
        return Flow::normal();
      }
      case p::Op::Cmpw:
      case p::Op::Cmplw:
        e.put(kRegCcDep1, e.get(inst.rs));
        e.put(kRegCcDep2, e.get(inst.rt));
        state.cmp_unsigned = op == p::Op::Cmplw;
        return Flow::normal();
      case p::Op::Cmpwi:
        e.put(kRegCcDep1, e.get(inst.rs));
        e.put(kRegCcDep2, imm_s());
        state.cmp_unsigned = false;
        return Flow::normal();
      case p::Op::Lwz:
        e.put(inst.rd, e.load(e.bin(BinOp::Add, e.get(inst.rs),
                                    imm_s())));
        return Flow::normal();
      case p::Op::Stw:
        e.store(e.bin(BinOp::Add, e.get(inst.rs), imm_s()),
                e.get(inst.rd));
        return Flow::normal();
      case p::Op::B:
        return Flow::jump(static_cast<std::uint64_t>(inst.imm));
      case p::Op::Bl: {
        const Operand result = e.call(Operand::imm(
            static_cast<std::uint32_t>(inst.imm)));
        e.put(p::R3, result);
        return Flow::normal();
      }
      case p::Op::Bc:
        e.exit_if(e.cc_compare(resolve_cond(inst.cond)),
                  static_cast<std::uint64_t>(inst.imm));
        return Flow::branch(static_cast<std::uint64_t>(inst.imm));
      case p::Op::Blr:
        return Flow::ret();
      case p::Op::Mflr:
        e.put(inst.rd, e.get(kRegLr));
        return Flow::normal();
      case p::Op::Mtlr:
        e.put(kRegLr, e.get(inst.rs));
        return Flow::normal();
      case p::Op::Setbc:
        e.put(inst.rd, e.cc_compare(resolve_cond(inst.cond)));
        return Flow::normal();
    }
    return Flow::normal();
}

Flow
lift_x86(const MachInst &inst, std::uint64_t addr, LiftState &state,
         ir::Block &block)
{
    namespace x = isa::x86;
    Emitter e(block, state, addr);
    const auto op = static_cast<x::Op>(inst.op);
    auto imm32 = [&inst] {
        return Operand::imm(static_cast<std::uint32_t>(
            static_cast<std::int32_t>(inst.imm)));
    };
    auto two_op = [&](BinOp bop, Operand rhs) {
        e.put(inst.rd, e.bin(bop, e.get(inst.rd), rhs));
    };

    switch (op) {
      case x::Op::Nop:
        return Flow::normal();
      case x::Op::MovRR:
        e.put(inst.rd, e.get(inst.rt));
        return Flow::normal();
      case x::Op::MovRI:
        e.put(inst.rd, imm32());
        return Flow::normal();
      case x::Op::AddRR: two_op(BinOp::Add, e.get(inst.rt)); break;
      case x::Op::SubRR: two_op(BinOp::Sub, e.get(inst.rt)); break;
      case x::Op::ImulRR: two_op(BinOp::Mul, e.get(inst.rt)); break;
      case x::Op::AndRR: two_op(BinOp::And, e.get(inst.rt)); break;
      case x::Op::OrRR: two_op(BinOp::Or, e.get(inst.rt)); break;
      case x::Op::XorRR: two_op(BinOp::Xor, e.get(inst.rt)); break;
      case x::Op::ShlRR: two_op(BinOp::Shl, e.get(inst.rt)); break;
      case x::Op::SarRR: two_op(BinOp::ShrA, e.get(inst.rt)); break;
      case x::Op::ShrRR: two_op(BinOp::ShrL, e.get(inst.rt)); break;
      case x::Op::IdivRR: two_op(BinOp::DivS, e.get(inst.rt)); break;
      case x::Op::IremRR: two_op(BinOp::RemS, e.get(inst.rt)); break;
      case x::Op::AddRI: two_op(BinOp::Add, imm32()); break;
      case x::Op::SubRI: two_op(BinOp::Sub, imm32()); break;
      case x::Op::ImulRI: two_op(BinOp::Mul, imm32()); break;
      case x::Op::AndRI: two_op(BinOp::And, imm32()); break;
      case x::Op::OrRI: two_op(BinOp::Or, imm32()); break;
      case x::Op::XorRI: two_op(BinOp::Xor, imm32()); break;
      case x::Op::ShlRI: two_op(BinOp::Shl, imm32()); break;
      case x::Op::SarRI: two_op(BinOp::ShrA, imm32()); break;
      case x::Op::ShrRI: two_op(BinOp::ShrL, imm32()); break;
      case x::Op::Neg:
        e.put(inst.rd, e.un(UnOp::Neg, e.get(inst.rd)));
        break;
      case x::Op::Not:
        e.put(inst.rd, e.un(UnOp::Not, e.get(inst.rd)));
        break;
      case x::Op::CmpRR:
        e.put(kRegCcDep1, e.get(inst.rd));
        e.put(kRegCcDep2, e.get(inst.rt));
        break;
      case x::Op::CmpRI:
        e.put(kRegCcDep1, e.get(inst.rd));
        e.put(kRegCcDep2, imm32());
        break;
      case x::Op::Jcc:
        e.exit_if(e.cc_compare(inst.cond),
                  static_cast<std::uint64_t>(inst.imm));
        return Flow::branch(static_cast<std::uint64_t>(inst.imm));
      case x::Op::Jmp:
        return Flow::jump(static_cast<std::uint64_t>(inst.imm));
      case x::Op::Call: {
        const Operand result = e.call(Operand::imm(
            static_cast<std::uint32_t>(inst.imm)));
        e.put(x::Eax, result);
        break;
      }
      case x::Op::Ret:
        return Flow::ret();
      case x::Op::Push: {
        const Operand sp =
            e.bin(BinOp::Sub, e.get(x::Esp), Operand::imm(4));
        e.put(x::Esp, sp);
        e.store(sp, e.get(inst.rd));
        break;
      }
      case x::Op::Pop: {
        const Operand sp = e.get(x::Esp);
        e.put(inst.rd, e.load(sp));
        e.put(x::Esp, e.bin(BinOp::Add, sp, Operand::imm(4)));
        break;
      }
      case x::Op::LoadRM:
        e.put(inst.rd, e.load(e.bin(BinOp::Add, e.get(inst.rs),
                                    imm32())));
        break;
      case x::Op::StoreMR:
        e.store(e.bin(BinOp::Add, e.get(inst.rs), imm32()),
                e.get(inst.rd));
        break;
      case x::Op::Lea:
        e.put(inst.rd, e.bin(BinOp::Add, e.get(inst.rs), imm32()));
        break;
      case x::Op::Setcc:
        e.put(inst.rd, e.cc_compare(inst.cond));
        break;
    }
    return Flow::normal();
}

}  // namespace

Flow
lift_inst(isa::Arch arch, const MachInst &inst, std::uint64_t addr,
          LiftState &state, ir::Block &block)
{
    switch (arch) {
      case isa::Arch::Mips32:
        return lift_mips(inst, addr, state, block);
      case isa::Arch::Arm32:
        return lift_arm(inst, addr, state, block);
      case isa::Arch::Ppc32:
        return lift_ppc(inst, addr, state, block);
      case isa::Arch::X86:
        return lift_x86(inst, addr, state, block);
    }
    FIRMUP_ASSERT(false, "bad arch");
}

}  // namespace firmup::lifter
