/**
 * @file
 * Persistent, content-addressed cache of serialized executable indexes,
 * plus the in-process resident cache layered above it.
 *
 * The paper's evaluation machine indexes its ~200k-executable corpus
 * once and then serves every CVE hunt as pure lookups (section 5.1);
 * this store is that shape for our pipeline. Each entry is one FWIX v5
 * file (sim/persist.h) named by the executable's content key
 * (eval::content_key — name + text bytes, so byte-identical executables
 * re-shipped across firmware versions share one entry, the section 5.2
 * observation). A warm scan loads `search_ready` indexes — procedure
 * strand sets, CSR postings, block summaries and MinHash sketches —
 * straight from disk and skips lift + canonicalize + finalize entirely;
 * entries written by older layouts (e.g. FWIX v4) fail the parse guards
 * as StaleFormat and are transparently re-indexed.
 *
 * Two tiers sit above the disk bytes:
 *
 *  - the **mmap view path**: the v5 flat layout lets load() map an
 *    entry and hand back an ExecutableIndex that *views* the mapped
 *    arenas (open_index_view) after a checksum pass — no vector
 *    materialization. The mapping is pinned by the index's `backing`
 *    and unmapped when the last copy drops it. `use_mmap = false` (the
 *    --no-mmap ablation) or any view-open failure falls back to the
 *    copying parser.
 *  - the **ResidentIndexCache**: a byte-budgeted LRU of deserialized
 *    indexes keyed by content key, shared across scans within one
 *    process, so back-to-back hunts skip even the open+checksum.
 *
 * Robustness contract:
 *  - writes are atomic AND durable: serialize to `<entry>.tmp-<tid>`,
 *    fsync the temp file, rename over the final path, then fsync the
 *    parent directory — a crash at any point leaves either the old
 *    entry, the complete new entry, or nothing (never a torn file, and
 *    never a rename the directory forgot). A rename refused with
 *    cross-device EXDEV is retried through a dir-local copy.
 *  - loads never trust the bytes: any missing, truncated, corrupted or
 *    stale-format file surfaces as a clean Result error (the FWIX
 *    version/layout/checksum guards), which callers treat as a cache
 *    miss and re-lift — never a crash or a silently wrong index.
 */
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "sim/persist.h"
#include "support/error.h"

namespace firmup::sim {

/** One-file-per-content-key FWIX store under a cache directory. */
class IndexCacheStore
{
  public:
    /**
     * Per-load timing attribution for ScanHealth's cache_load split:
     * open (file open + read or mmap), checksum (the container guards),
     * parse (view open or copying parse). `mapped` records which load
     * path actually served the bytes — the view can fall back.
     */
    struct LoadStats
    {
        double open_seconds = 0.0;
        double checksum_seconds = 0.0;
        double parse_seconds = 0.0;
        bool mapped = false;
    };

    /**
     * Bind the store to @p dir, creating it (and parents) when absent.
     * A directory that cannot be created is not fatal here: every
     * subsequent load misses and every store reports IoError.
     */
    explicit IndexCacheStore(std::string dir);

    const std::string &dir() const { return dir_; }

    /** Entry path for @p content_key: `<dir>/<hex-key>.fwix`. */
    std::string path_for(std::uint64_t content_key) const;

    /**
     * Load the entry for @p content_key. With @p use_mmap (and a host
     * where open_view_supported()), the entry is mapped and opened as a
     * zero-copy view whose mapping lives exactly as long as the
     * returned index (or any copy of it); otherwise the bytes are read
     * and parsed into an owning index. Errors: IoError when the entry
     * does not exist or cannot be read; MalformedContainer /
     * TruncatedMember / StaleFormat when it fails the FWIX guards.
     * All of them mean "cache miss" to the caller.
     */
    Result<ExecutableIndex> load(std::uint64_t content_key, bool use_mmap,
                                 LoadStats *stats = nullptr) const;

    /** Copying-parser convenience overload (no mmap, no stats). */
    Result<ExecutableIndex> load(std::uint64_t content_key) const
    {
        return load(content_key, false, nullptr);
    }

    /**
     * Serialize @p index and atomically publish it as the entry for
     * @p content_key (write temp + fsync + rename + fsync parent dir).
     * Safe to call from worker threads. @return bytes written.
     */
    Result<std::size_t> store(std::uint64_t content_key,
                              const ExecutableIndex &index) const;

  private:
    std::string dir_;
};

/**
 * Process-wide LRU of deserialized (or mapped) indexes, keyed by
 * content key, bounded by a byte budget measured with
 * ExecutableIndex::memory_bytes().
 *
 * Shared-ownership pin contract: get() hands out shared_ptrs, and
 * eviction only drops the cache's own reference — an index (and, in
 * view mode, the file mapping behind it) stays fully valid for as long
 * as any caller still holds it, even if it is evicted mid-scan. There
 * is therefore no "in use" bookkeeping and no way for the budget knob
 * to change scan findings: a smaller budget only converts resident hits
 * back into store loads.
 *
 * All methods are thread-safe; the mutex guards only map bookkeeping
 * (never a parse or a map), so contention stays negligible next to the
 * work a miss triggers.
 */
class ResidentIndexCache
{
  public:
    struct Stats
    {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t evictions = 0;
        std::size_t resident_bytes = 0;
        std::size_t entries = 0;
    };

    /** @p budget_bytes 0 disables residency: every get() misses. */
    explicit ResidentIndexCache(std::size_t budget_bytes = 0)
        : budget_bytes_(budget_bytes)
    {
    }

    /** The resident index for @p key, or nullptr (and a miss count). */
    std::shared_ptr<const ExecutableIndex> get(std::uint64_t key);

    /**
     * Insert (or refresh) @p key. Charges index->memory_bytes() against
     * the budget and evicts least-recently-used entries until it fits;
     * an index alone larger than the whole budget is not retained.
     */
    void put(std::uint64_t key,
             std::shared_ptr<const ExecutableIndex> index);

    void set_budget_bytes(std::size_t budget_bytes);
    std::size_t budget_bytes() const;

    /** Drop every entry (outstanding shared_ptrs stay valid). */
    void clear();

    Stats stats() const;

  private:
    struct Entry
    {
        std::shared_ptr<const ExecutableIndex> index;
        std::size_t bytes = 0;
        std::uint64_t tick = 0;  ///< last-touched stamp (LRU order)
    };

    /** Evict LRU entries until resident_bytes_ <= budget_bytes_. */
    void evict_to_budget_locked();

    mutable std::mutex mu_;
    std::unordered_map<std::uint64_t, Entry> entries_;
    std::size_t budget_bytes_ = 0;
    std::size_t resident_bytes_ = 0;
    std::uint64_t tick_ = 0;
    Stats stats_;
};

}  // namespace firmup::sim
