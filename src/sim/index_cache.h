/**
 * @file
 * Persistent, content-addressed cache of serialized executable indexes.
 *
 * The paper's evaluation machine indexes its ~200k-executable corpus
 * once and then serves every CVE hunt as pure lookups (section 5.1);
 * this store is that shape for our pipeline. Each entry is one FWIX v4
 * file (sim/persist.h) named by the executable's content key
 * (eval::content_key — name + text bytes, so byte-identical executables
 * re-shipped across firmware versions share one entry, the section 5.2
 * observation). A warm scan loads `search_ready` indexes — procedure
 * strand sets, CSR postings, block summaries and MinHash sketches —
 * straight from disk and skips lift + canonicalize + finalize entirely;
 * entries written by older layouts (e.g. sketchless v3) fail the parse
 * guards as StaleFormat and are transparently re-indexed.
 *
 * Robustness contract:
 *  - writes are atomic: serialize to `<entry>.tmp-<pid>-<tid>`, then
 *    rename over the final path, so a crashed or concurrent writer can
 *    never leave a torn entry under the content-addressed name;
 *  - loads never trust the bytes: any missing, truncated, corrupted or
 *    stale-format file surfaces as a clean Result error (the FWIX
 *    version/layout/checksum guards), which callers treat as a cache
 *    miss and re-lift — never a crash or a silently wrong index.
 */
#pragma once

#include <string>

#include "sim/persist.h"
#include "support/error.h"

namespace firmup::sim {

/** One-file-per-content-key FWIX store under a cache directory. */
class IndexCacheStore
{
  public:
    /**
     * Bind the store to @p dir, creating it (and parents) when absent.
     * A directory that cannot be created is not fatal here: every
     * subsequent load misses and every store reports IoError.
     */
    explicit IndexCacheStore(std::string dir);

    const std::string &dir() const { return dir_; }

    /** Entry path for @p content_key: `<dir>/<hex-key>.fwix`. */
    std::string path_for(std::uint64_t content_key) const;

    /**
     * Load and parse the entry for @p content_key. Errors: IoError when
     * the entry does not exist or cannot be read; MalformedContainer /
     * TruncatedMember / StaleFormat when it fails the FWIX guards.
     * All of them mean "cache miss" to the caller.
     */
    Result<ExecutableIndex> load(std::uint64_t content_key) const;

    /**
     * Serialize @p index and atomically publish it as the entry for
     * @p content_key (write temp file + rename). Safe to call from
     * worker threads. @return the number of bytes written.
     */
    Result<std::size_t> store(std::uint64_t content_key,
                              const ExecutableIndex &index) const;

  private:
    std::string dir_;
};

}  // namespace firmup::sim
