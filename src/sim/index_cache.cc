#include "sim/index_cache.h"

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <iterator>
#include <system_error>
#include <thread>

#include "support/fsio.h"
#include "support/mmapfile.h"
#include "support/str.h"

namespace firmup::sim {

namespace fs = std::filesystem;

namespace {

double
seconds_since(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
        .count();
}

}  // namespace

IndexCacheStore::IndexCacheStore(std::string dir) : dir_(std::move(dir))
{
    std::error_code ec;
    fs::create_directories(dir_, ec);
    // A failure here is deliberately not fatal: load() will miss and
    // store() will report IoError, so the scan degrades to cold.
}

std::string
IndexCacheStore::path_for(std::uint64_t content_key) const
{
    return strprintf("%s/%016llx.fwix", dir_.c_str(),
                     static_cast<unsigned long long>(content_key));
}

Result<ExecutableIndex>
IndexCacheStore::load(std::uint64_t content_key, bool use_mmap,
                      LoadStats *stats) const
{
    LoadStats local;
    const std::string path = path_for(content_key);
    if (use_mmap && open_view_supported()) {
        auto t0 = std::chrono::steady_clock::now();
        auto mapped = MappedFile::map(path);
        local.open_seconds = seconds_since(t0);
        if (mapped.ok()) {
            auto file =
                std::make_shared<MappedFile>(std::move(mapped).take());
            const std::uint8_t *bytes = file->data();
            const std::size_t size = file->size();
            t0 = std::chrono::steady_clock::now();
            auto guard = check_container(bytes, size);
            local.checksum_seconds = seconds_since(t0);
            if (!guard.ok()) {
                if (stats != nullptr) {
                    *stats = local;
                }
                return Result<ExecutableIndex>::error_from(guard);
            }
            t0 = std::chrono::steady_clock::now();
            auto view = open_index_view(bytes, size, file,
                                        /*checked=*/true);
            local.parse_seconds = seconds_since(t0);
            if (view.ok()) {
                local.mapped = true;
                if (stats != nullptr) {
                    *stats = local;
                }
                return view;
            }
            // A checksum-valid blob the view cannot serve (e.g. one
            // serialized from a never-finalized index): fall through to
            // the copying parser, which either materializes it or
            // produces the authoritative error.
        }
        // Missing file falls through too: the ifstream path issues the
        // canonical "index cache miss" IoError.
    }
    auto t0 = std::chrono::steady_clock::now();
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        if (stats != nullptr) {
            *stats = local;
        }
        return Result<ExecutableIndex>::error(
            ErrorCode::IoError, "index cache miss: " + path);
    }
    ByteBuffer bytes((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    if (in.bad()) {
        if (stats != nullptr) {
            *stats = local;
        }
        return Result<ExecutableIndex>::error(
            ErrorCode::IoError, "index cache read failed: " + path);
    }
    local.open_seconds += seconds_since(t0);
    t0 = std::chrono::steady_clock::now();
    auto guard = check_container(bytes.data(), bytes.size());
    local.checksum_seconds += seconds_since(t0);
    if (!guard.ok()) {
        if (stats != nullptr) {
            *stats = local;
        }
        return Result<ExecutableIndex>::error_from(guard);
    }
    t0 = std::chrono::steady_clock::now();
    auto parsed = parse_index(bytes);
    local.parse_seconds += seconds_since(t0);
    if (stats != nullptr) {
        *stats = local;
    }
    return parsed;
}

Result<std::size_t>
IndexCacheStore::store(std::uint64_t content_key,
                       const ExecutableIndex &index) const
{
    const ByteBuffer bytes = serialize_index(index);
    const std::string path = path_for(content_key);
    // Unique per writer: concurrent stores of the same key each write
    // their own temp file and the last rename wins atomically.
    const std::string tmp = strprintf(
        "%s.tmp-%llu", path.c_str(),
        static_cast<unsigned long long>(std::hash<std::thread::id>{}(
            std::this_thread::get_id())));
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        out.write(reinterpret_cast<const char *>(bytes.data()),
                  static_cast<std::streamsize>(bytes.size()));
        if (!out) {
            std::error_code ec;
            fs::remove(tmp, ec);
            return Result<std::size_t>::error(
                ErrorCode::IoError, "index cache write failed: " + tmp);
        }
    }
    // Durability before publish: the rename is atomic in the namespace,
    // but without an fsync a crash shortly after can leave the *final*
    // path holding zero-length or partial data on some filesystems —
    // exactly the corrupt-entry class the loader then has to quarantine.
    // Sync the temp file so whatever gets renamed into place is the
    // complete blob or nothing.
    if (!fsync_path(tmp)) {
        std::error_code ec;
        fs::remove(tmp, ec);
        return Result<std::size_t>::error(
            ErrorCode::IoError, "index cache fsync failed: " + tmp);
    }
    std::error_code ec;
    fs::rename(tmp, path, ec);
    if (ec == std::errc::cross_device_link) {
        // The temp normally shares the entry's directory, but callers
        // can hand a dir that is itself a mount boundary (overlay /
        // bind setups). Fall back to copying into a fresh dir-local
        // temp and renaming that — same atomicity, one extra copy.
        const std::string local_tmp = tmp + ".x";
        ec.clear();
        fs::copy_file(tmp, local_tmp,
                      fs::copy_options::overwrite_existing, ec);
        if (!ec && !fsync_path(local_tmp)) {
            ec = std::make_error_code(std::errc::io_error);
        }
        if (!ec) {
            fs::rename(local_tmp, path, ec);
        }
        std::error_code ec2;
        fs::remove(tmp, ec2);
        if (ec) {
            fs::remove(local_tmp, ec2);
        }
    }
    if (ec) {
        std::error_code ec2;
        fs::remove(tmp, ec2);
        return Result<std::size_t>::error(
            ErrorCode::IoError,
            "index cache publish failed: " + path + ": " + ec.message());
    }
    // The rename published a directory entry; fsync the directory so a
    // crash cannot roll the namespace back to "no such entry" while the
    // data blocks survive. Best-effort: a store that cannot sync its
    // directory still published a readable entry for this boot.
    fsync_dir(dir_);
    return bytes.size();
}

// ---- ResidentIndexCache ------------------------------------------------

std::shared_ptr<const ExecutableIndex>
ResidentIndexCache::get(std::uint64_t key)
{
    const std::lock_guard<std::mutex> lock(mu_);
    const auto it = entries_.find(key);
    if (it == entries_.end()) {
        ++stats_.misses;
        return nullptr;
    }
    it->second.tick = ++tick_;
    ++stats_.hits;
    return it->second.index;
}

void
ResidentIndexCache::put(std::uint64_t key,
                        std::shared_ptr<const ExecutableIndex> index)
{
    if (index == nullptr) {
        return;
    }
    const std::size_t bytes = index->memory_bytes();
    const std::lock_guard<std::mutex> lock(mu_);
    if (bytes > budget_bytes_) {
        // Never fits (budget 0 lands here too): don't thrash the rest
        // of the cache to make room for something unkeepable.
        return;
    }
    auto &entry = entries_[key];
    resident_bytes_ -= entry.bytes;  // 0 for a fresh entry
    entry.index = std::move(index);
    entry.bytes = bytes;
    entry.tick = ++tick_;
    resident_bytes_ += bytes;
    evict_to_budget_locked();
}

void
ResidentIndexCache::set_budget_bytes(std::size_t budget_bytes)
{
    const std::lock_guard<std::mutex> lock(mu_);
    budget_bytes_ = budget_bytes;
    evict_to_budget_locked();
}

std::size_t
ResidentIndexCache::budget_bytes() const
{
    const std::lock_guard<std::mutex> lock(mu_);
    return budget_bytes_;
}

void
ResidentIndexCache::clear()
{
    const std::lock_guard<std::mutex> lock(mu_);
    entries_.clear();
    resident_bytes_ = 0;
}

ResidentIndexCache::Stats
ResidentIndexCache::stats() const
{
    const std::lock_guard<std::mutex> lock(mu_);
    Stats out = stats_;
    out.resident_bytes = resident_bytes_;
    out.entries = entries_.size();
    return out;
}

void
ResidentIndexCache::evict_to_budget_locked()
{
    // Linear LRU scan per eviction: the cache holds at most a few
    // hundred corpus-sized indexes, so an O(n) victim search is noise
    // next to the load it prevented.
    while (resident_bytes_ > budget_bytes_ && !entries_.empty()) {
        auto victim = entries_.begin();
        for (auto it = std::next(victim); it != entries_.end(); ++it) {
            if (it->second.tick < victim->second.tick) {
                victim = it;
            }
        }
        resident_bytes_ -= victim->second.bytes;
        entries_.erase(victim);
        ++stats_.evictions;
    }
}

}  // namespace firmup::sim
