#include "sim/index_cache.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <system_error>
#include <thread>

#include "support/fsio.h"
#include "support/str.h"

namespace firmup::sim {

namespace fs = std::filesystem;

IndexCacheStore::IndexCacheStore(std::string dir) : dir_(std::move(dir))
{
    std::error_code ec;
    fs::create_directories(dir_, ec);
    // A failure here is deliberately not fatal: load() will miss and
    // store() will report IoError, so the scan degrades to cold.
}

std::string
IndexCacheStore::path_for(std::uint64_t content_key) const
{
    return strprintf("%s/%016llx.fwix", dir_.c_str(),
                     static_cast<unsigned long long>(content_key));
}

Result<ExecutableIndex>
IndexCacheStore::load(std::uint64_t content_key) const
{
    const std::string path = path_for(content_key);
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        return Result<ExecutableIndex>::error(
            ErrorCode::IoError, "index cache miss: " + path);
    }
    ByteBuffer bytes((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    if (in.bad()) {
        return Result<ExecutableIndex>::error(
            ErrorCode::IoError, "index cache read failed: " + path);
    }
    return parse_index(bytes);
}

Result<std::size_t>
IndexCacheStore::store(std::uint64_t content_key,
                       const ExecutableIndex &index) const
{
    const ByteBuffer bytes = serialize_index(index);
    const std::string path = path_for(content_key);
    // Unique per writer: concurrent stores of the same key each write
    // their own temp file and the last rename wins atomically.
    const std::string tmp = strprintf(
        "%s.tmp-%llu", path.c_str(),
        static_cast<unsigned long long>(std::hash<std::thread::id>{}(
            std::this_thread::get_id())));
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        out.write(reinterpret_cast<const char *>(bytes.data()),
                  static_cast<std::streamsize>(bytes.size()));
        if (!out) {
            std::error_code ec;
            fs::remove(tmp, ec);
            return Result<std::size_t>::error(
                ErrorCode::IoError, "index cache write failed: " + tmp);
        }
    }
    // Durability before publish: the rename is atomic in the namespace,
    // but without an fsync a crash shortly after can leave the *final*
    // path holding zero-length or partial data on some filesystems —
    // exactly the corrupt-entry class the loader then has to quarantine.
    // Sync the temp file so whatever gets renamed into place is the
    // complete blob or nothing.
    if (!fsync_path(tmp)) {
        std::error_code ec;
        fs::remove(tmp, ec);
        return Result<std::size_t>::error(
            ErrorCode::IoError, "index cache fsync failed: " + tmp);
    }
    std::error_code ec;
    fs::rename(tmp, path, ec);
    if (ec) {
        std::error_code ec2;
        fs::remove(tmp, ec2);
        return Result<std::size_t>::error(
            ErrorCode::IoError,
            "index cache publish failed: " + path + ": " + ec.message());
    }
    return bytes.size();
}

}  // namespace firmup::sim
