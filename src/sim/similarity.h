/**
 * @file
 * Pairwise procedure similarity (paper section 3.3) and executable
 * indexes.
 *
 * Sim(q, t) = |Strands(q) ∩ Strands(t)| over hashed canonical strands —
 * a plain set intersection with no counts, exactly as the paper defines
 * it. Strand sets are sorted flat vectors, so the intersection is a
 * two-pointer merge (with galloping when the sizes are lopsided) rather
 * than per-hash tree lookups.
 *
 * An ExecutableIndex is the unit both the game and the baselines operate
 * on: every procedure of one executable, represented as strand hash
 * sets, plus — once finalize() has run — the search acceleration
 * structures that make corpus-scale matching cheap: a CSR inverted index
 * (strand hash → posting list of procedure indices) and hashed
 * entry/name lookup maps. Most (q, t) procedure pairs in a corpus share
 * zero strands; the posting lists let GetBestMatch touch only the pairs
 * that share at least one.
 */
#pragma once

#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "lifter/cfg.h"
#include "strand/canon.h"

namespace firmup::sim {

/** One indexed procedure. */
struct ProcEntry
{
    std::uint64_t entry = 0;
    std::string name;  ///< empty when stripped
    strand::ProcedureStrands repr;
};

/** One candidate from the inverted index: a procedure and its exact Sim. */
struct Candidate
{
    int index = -1;  ///< into ExecutableIndex::procs
    int sim = 0;     ///< |shared strands| — exact, not an estimate
};

/** All procedures of one executable, represented for similarity search. */
struct ExecutableIndex
{
    std::string name;
    isa::Arch arch = isa::Arch::Mips32;
    std::vector<ProcEntry> procs;

    /**
     * CSR inverted index, built by finalize(): posting_hashes is the
     * sorted union of all strand hashes; the procedures containing
     * posting_hashes[i] are posting_procs[posting_offsets[i] ..
     * posting_offsets[i+1]), in ascending procedure order. Hand-built
     * indexes that never call finalize() still work — every consumer
     * falls back to a dense scan — but corpus-scale search wants this.
     */
    std::vector<std::uint64_t> posting_hashes;
    std::vector<std::uint32_t> posting_offsets;
    std::vector<std::uint32_t> posting_procs;
    bool search_ready = false;  ///< postings + lookup maps are built

    /** Hashed lookup maps (satellite of the posting build). */
    std::unordered_map<std::uint64_t, int> entry_map;
    std::unordered_map<std::string, int> name_map;

    /**
     * Build the posting lists and lookup maps. Called by
     * index_executable() and parse_index(); call it yourself after
     * assembling an index by hand to get the fast paths.
     */
    void finalize();

    /** Index of the procedure whose entry is @p addr, or -1. */
    int find_by_entry(std::uint64_t addr) const;
    /** Index of the first procedure named @p name, or -1. */
    int find_by_name(const std::string &name) const;
};

/**
 * Build the index of a lifted executable. Canonicalization knobs are
 * taken from @p options; section ranges are filled in from @p lifted and
 * the memo context is pinned to the executable's ISA.
 *
 * @param threads fan procedure canonicalization across this many worker
 *        threads. The result is bit-identical for every thread count:
 *        procedures are written into pre-sized slots, so the merge order
 *        is the deterministic procedure order of @p lifted. Values <= 1
 *        (and small executables) run inline.
 */
ExecutableIndex index_executable(const lifter::LiftedExecutable &lifted,
                                 strand::CanonOptions options = {},
                                 unsigned threads = 1);

/** Sim(q, t): the number of shared canonical strands. */
int sim_score(const strand::ProcedureStrands &q,
              const strand::ProcedureStrands &t);

/** Work accounting for one or more shared_candidates calls. */
struct ScoringStats
{
    /** Pair scores produced: one per procedure whose Sim was computed. */
    std::uint64_t pairs_scored = 0;
    /**
     * Element-level scoring operations: posting-list accumulations plus
     * query-hash probes on the fast path; merge-length (|q|+|t|) per
     * pair on the dense fallback. This is the unit in which the old
     * dense GetBestMatch paid |q|+|t| per pair per call.
     */
    std::uint64_t elem_ops = 0;
};

/**
 * Every procedure of @p T sharing at least one strand with @p q, with
 * its exact Sim, in ascending procedure-index order. Uses the posting
 * lists when built (touching only procedures that share a strand, the
 * VulMatch-style signature pruning); otherwise scores every procedure.
 * @param stats when non-null, accumulates the scoring work performed —
 *        the game's "pairwise scoring operations" metric.
 */
std::vector<Candidate> shared_candidates(
    const ExecutableIndex &T, const strand::ProcedureStrands &q,
    ScoringStats *stats = nullptr);

/**
 * Statistical strand weights trained from a sample of procedures — the
 * "global context" of GitZ: common strands (prologue shapes, trivial
 * moves) carry little evidence, rare strands carry much.
 */
struct GlobalContext
{
    std::map<std::uint64_t, double> weights;
    double default_weight = 1.0;

    double weight_of(std::uint64_t hash) const;
};

/** Train a global context over all procedures in @p sample. */
GlobalContext train_global_context(
    const std::vector<const ExecutableIndex *> &sample);

/** Weighted similarity: sum of weights of shared strands. */
double weighted_sim(const strand::ProcedureStrands &q,
                    const strand::ProcedureStrands &t,
                    const GlobalContext &context);

}  // namespace firmup::sim
