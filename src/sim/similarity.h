/**
 * @file
 * Pairwise procedure similarity (paper section 3.3) and executable
 * indexes.
 *
 * Sim(q, t) = |Strands(q) ∩ Strands(t)| over hashed canonical strands —
 * a plain set intersection with no counts, exactly as the paper defines
 * it. Strand sets are sorted flat vectors, so the intersection is a
 * two-pointer merge (with galloping when the sizes are lopsided) rather
 * than per-hash tree lookups.
 *
 * An ExecutableIndex is the unit both the game and the baselines operate
 * on: every procedure of one executable, represented as strand hash
 * sets, plus — once finalize() has run — the search acceleration
 * structures that make corpus-scale matching cheap: a CSR inverted index
 * (strand hash → posting list of procedure indices) and hashed
 * entry/name lookup maps. Most (q, t) procedure pairs in a corpus share
 * zero strands; the posting lists let GetBestMatch touch only the pairs
 * that share at least one.
 */
#pragma once

#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "lifter/cfg.h"
#include "strand/canon.h"

namespace firmup::sim {

/** One indexed procedure. */
struct ProcEntry
{
    std::uint64_t entry = 0;
    std::string name;  ///< empty when stripped
    strand::ProcedureStrands repr;
};

/** One candidate from the inverted index: a procedure and its exact Sim. */
struct Candidate
{
    int index = -1;  ///< into ExecutableIndex::procs
    int sim = 0;     ///< |shared strands| — exact, not an estimate
};

/**
 * How candidate procedures are retrieved before exact scoring.
 *
 *  - Exact: the CSR posting lists — every procedure sharing at least
 *    one strand hash is scored. Complete by construction; this is the
 *    default and the oracle the LSH path is tested against.
 *  - Lsh: MinHash/LSH prefilter — only procedures whose sketch collides
 *    with the query's in at least one band are scored (exactly, with
 *    the same Sim the posting path computes). Sublinear in corpus
 *    incidences, but may miss low-similarity candidates; recall floors
 *    are property-tested and benchmarked against Exact.
 */
enum class RetrievalMode
{
    Exact,
    Lsh,
};

/**
 * Process-wide retrieval accounting (monotonic, thread-safe), the
 * always-on analogue of the trace counters so ScanHealth can report
 * candidate reduction at any trace level. Drivers snapshot it before a
 * scan and attribute the delta (eval/health.h).
 */
struct RetrievalCounters
{
    std::uint64_t probes_exact = 0;     ///< shared_candidates() calls
    std::uint64_t candidates_exact = 0; ///< procedures they scored
    std::uint64_t probes_lsh = 0;       ///< lsh_candidates() probes
    std::uint64_t candidates_lsh = 0;   ///< procedures they scored
    /**
     * Posting incidences the exact path would have accumulated for the
     * LSH probes — the work the prefilter avoided, measured from the
     * posting lists at probe time (cheap: one lookup per query hash).
     */
    std::uint64_t lsh_exact_work = 0;
    std::uint64_t sketch_micros = 0;    ///< wall time building sketches
};

/** Snapshot of the process-wide retrieval counters. */
RetrievalCounters retrieval_counters();

/** All procedures of one executable, represented for similarity search. */
struct ExecutableIndex
{
    std::string name;
    isa::Arch arch = isa::Arch::Mips32;
    std::vector<ProcEntry> procs;

    /**
     * CSR inverted index, built by finalize(): posting_hashes is the
     * sorted union of all strand hashes; the procedures containing
     * posting_hashes[i] are posting_procs[posting_offsets[i] ..
     * posting_offsets[i+1]), in ascending procedure order. Hand-built
     * indexes that never call finalize() still work — every consumer
     * falls back to a dense scan — but corpus-scale search wants this.
     *
     * Owning mode only: a view-mode index (FWIX v5 mmap load) leaves
     * these empty and points the *_view members into the mapped blob.
     * Consumers go through the posting_*_data()/count() accessors.
     */
    std::vector<std::uint64_t> posting_hashes;
    std::vector<std::uint32_t> posting_offsets;
    std::vector<std::uint32_t> posting_procs;
    bool search_ready = false;  ///< postings + lookup maps are built

    /**
     * Non-owning CSR views over an mmap'ed FWIX v5 blob, pinned alive
     * by `backing`. posting_offsets_view has posting_count_view + 1
     * entries when set.
     */
    const std::uint64_t *posting_hashes_view = nullptr;
    const std::uint32_t *posting_offsets_view = nullptr;
    const std::uint32_t *posting_procs_view = nullptr;
    std::uint32_t posting_count_view = 0;       ///< distinct hashes
    std::uint32_t posting_procs_count_view = 0; ///< total incidences

    /**
     * Keepalive for view mode: holds the MappedFile (or byte buffer)
     * every *_view pointer and every procs[i].repr.hash_view points
     * into. Copying the index shares the mapping; the pages outlive
     * every copy, so resident-cache eviction can never invalidate an
     * in-use view. Null for owning-mode indexes.
     */
    std::shared_ptr<const void> backing;
    std::size_t mapped_bytes = 0;  ///< blob size behind `backing`

    /** Hashed lookup maps (satellite of the posting build). */
    std::unordered_map<std::uint64_t, int> entry_map;
    std::unordered_map<std::string, int> name_map;

    /**
     * LSH banding table over the procedures' MinHash sketches, built on
     * demand by build_lsh() (it is derived data — never persisted; FWIX
     * v4 persists the sketches it is rebuilt from). Band-major CSR:
     * band b's segment is lsh_keys/lsh_procs[lsh_offsets[b] ..
     * lsh_offsets[b+1]), sorted by (band key, procedure) so probes are
     * binary searches and candidate order is deterministic. lsh_bands
     * == 0 means "not built".
     */
    unsigned lsh_bands = 0;
    unsigned lsh_rows = 0;
    std::vector<std::uint64_t> lsh_keys;
    std::vector<std::uint32_t> lsh_procs;
    std::vector<std::uint32_t> lsh_offsets;

    /**
     * Build the posting lists and lookup maps, and backstop-build any
     * missing procedure sketches (index_executable() builds them in its
     * parallel fan-out; hand-assembled and pre-v4 indexes get them
     * here). Called by index_executable() and parse_index(); call it
     * yourself after assembling an index by hand to get the fast paths.
     */
    void finalize();

    /**
     * (Re)build the LSH table with @p bands bands of @p rows sketch
     * words each. Values are clamped so bands * rows <=
     * strand::kSketchSize (bands first: bands in [1, 64], then rows in
     * [1, 64 / bands]). No-op when already built with the same clamped
     * shape. Procedures with empty strand sets are excluded — the
     * exact path never returns them either.
     */
    void build_lsh(unsigned bands, unsigned rows);

    /** True once build_lsh() has run. */
    bool lsh_ready() const { return lsh_bands != 0; }

    /** Index of the procedure whose entry is @p addr, or -1. */
    int find_by_entry(std::uint64_t addr) const;
    /** Index of the first procedure named @p name, or -1. */
    int find_by_name(const std::string &name) const;

    /** True when this index borrows its arenas from a mapped blob. */
    bool view_mode() const { return posting_hashes_view != nullptr; }

    /** Sorted union of strand hashes (owning or view storage). */
    const std::uint64_t *
    posting_hash_data() const
    {
        return posting_hashes_view != nullptr ? posting_hashes_view
                                              : posting_hashes.data();
    }

    std::size_t
    posting_hash_count() const
    {
        return posting_hashes_view != nullptr
                   ? std::size_t{posting_count_view}
                   : posting_hashes.size();
    }

    /** CSR row offsets; posting_hash_count() + 1 entries when built. */
    const std::uint32_t *
    posting_offset_data() const
    {
        return posting_offsets_view != nullptr ? posting_offsets_view
                                               : posting_offsets.data();
    }

    /** CSR column (procedure) indices. */
    const std::uint32_t *
    posting_proc_data() const
    {
        return posting_procs_view != nullptr ? posting_procs_view
                                             : posting_procs.data();
    }

    std::size_t
    posting_proc_count() const
    {
        return posting_procs_view != nullptr
                   ? std::size_t{posting_procs_count_view}
                   : posting_procs.size();
    }

    /**
     * Approximate bytes this index keeps resident — the accounting
     * unit of the ResidentIndexCache byte budget. View mode charges
     * the mapped blob plus the materialized per-procedure entries;
     * owning mode sums the vectors.
     */
    std::size_t memory_bytes() const;
};

/**
 * Build the index of a lifted executable. Canonicalization knobs are
 * taken from @p options; section ranges are filled in from @p lifted and
 * the memo context is pinned to the executable's ISA.
 *
 * @param threads fan procedure canonicalization across this many worker
 *        threads. The result is bit-identical for every thread count:
 *        procedures are written into pre-sized slots, so the merge order
 *        is the deterministic procedure order of @p lifted. Values <= 1
 *        (and small executables) run inline.
 */
ExecutableIndex index_executable(const lifter::LiftedExecutable &lifted,
                                 strand::CanonOptions options = {},
                                 unsigned threads = 1);

/**
 * SIMD instruction set used by the intersection kernel's inner loops.
 * The kernel itself is tiered by pair shape (see sim_score); each tier's
 * inner loop is then dispatched at runtime to the best available
 * instruction set, with Scalar as the portable fallback. Every tier and
 * every instruction set produces bit-identical counts.
 */
enum class SimdTier
{
    Scalar,
    Sse2,
    Neon,
};

/** The active instruction-set tier (set_simd_tier or FIRMUP_SIMD). */
SimdTier simd_tier();

/**
 * Force the instruction-set tier (test/bench seam; the property tests
 * sweep every tier against the std::set reference). Requesting an
 * unavailable tier clamps to Scalar. The FIRMUP_SIMD environment
 * variable ("scalar", "sse2", "neon") sets the initial tier; unset
 * picks the best the binary and CPU support.
 */
void set_simd_tier(SimdTier tier);

/** True when @p tier's instructions are compiled into this binary. */
bool simd_tier_available(SimdTier tier);

/** Stable lowercase name of @p tier ("scalar", "sse2", "neon"). */
const char *simd_tier_name(SimdTier tier);

/**
 * Sim(q, t): the number of shared canonical strands.
 *
 * Tiered intersection kernel over the sorted flat hash vectors:
 *  - summary reject: AND the 256-bit bucket-occupancy bitmaps; a zero
 *    intersection answers 0 without touching the hash vectors;
 *  - lopsided pairs (>= 16x size ratio) gallop from the small side,
 *    with a SIMD equality scan over the final search window;
 *  - comparable pairs run a block merge over the per-word spans of the
 *    summary, skipping spans whose common occupancy bits are zero —
 *    SSE2/NEON all-pairs block compare, branchless scalar fallback.
 * Exact by construction: every tier counts the same intersection the
 * reference merge does (sim_score_merge), bit-identically.
 */
int sim_score(const strand::ProcedureStrands &q,
              const strand::ProcedureStrands &t);

/**
 * Reference merge intersection (the pre-kernel two-pointer/galloping
 * path). Kept callable as the benchmark baseline and the property-test
 * oracle for sim_score.
 */
int sim_score_merge(const strand::ProcedureStrands &q,
                    const strand::ProcedureStrands &t);

/**
 * Query-amortized intersection kernel: build once per query, score many
 * targets. This is the shape every hot caller actually has — one CVE
 * query played against a whole corpus, one query against every
 * procedure of a target executable — and amortizing the query-side
 * build is what a pairwise merge can never do: scoring a target costs
 * one branchless filter pass over its hashes plus an exact probe per
 * surviving candidate, with no data-dependent merge branches at all.
 *
 * Layout (all query-side, built by reset()):
 *  - an 8 KiB bitmap over the low 16 bits of the query's hashes — the
 *    filter pass tests each target hash against it branchlessly and
 *    emits survivors to a candidate buffer (false-positive rate
 *    |q| / 65536, so candidates ~= true matches);
 *  - an 8-slot bucket table keyed by hash bits 16.. for the exact
 *    64-bit verify of each candidate (SIMD across the 8 slots). Bucket
 *    counts are rebuilt with doubled bucket counts on overflow, so the
 *    verify is exact for any input; a pathological query falls back to
 *    the merge kernel.
 *
 * score() is exact — bit-identical to sim_score and sim_score_merge
 * for every input (property-tested) — and thread-safe: concurrent
 * score() calls against one built QueryProbe are safe, which is what
 * lets the batch scheduler share one probe per query across workers.
 */
class QueryProbe
{
public:
    QueryProbe() = default;
    explicit QueryProbe(const strand::ProcedureStrands &q) { reset(q); }

    /** (Re)build the filter + verify tables from @p q. */
    void reset(const strand::ProcedureStrands &q);

    /** Exact |q ∩ t| against the query given to reset(). */
    int score(const strand::ProcedureStrands &t) const;
    /** Same, over a raw sorted unique hash span. */
    int score(const std::uint64_t *t, std::size_t n) const;

    /** Number of hashes in the query this probe was built from. */
    std::size_t query_size() const { return query_size_; }

private:
    std::vector<std::uint64_t> bitmap_;  ///< 1024 words / 64 Ki bits
    std::vector<std::uint64_t> slots_;   ///< buckets x 8 hash slots
    std::vector<std::uint8_t> valid_;    ///< per-bucket slot occupancy
    std::vector<std::uint64_t> fallback_;  ///< sorted query copy (rare)
    std::uint32_t bucket_mask_ = 0;
    std::size_t query_size_ = 0;
};

/** Work accounting for one or more shared_candidates calls. */
struct ScoringStats
{
    /** Pair scores produced: one per procedure whose Sim was computed. */
    std::uint64_t pairs_scored = 0;
    /**
     * Element-level scoring operations: posting-list accumulations plus
     * query-hash probes on the fast path; merge-length (|q|+|t|) per
     * pair on the dense fallback. This is the unit in which the old
     * dense GetBestMatch paid |q|+|t| per pair per call.
     */
    std::uint64_t elem_ops = 0;
};

/**
 * Every procedure of @p T sharing at least one strand with @p q, with
 * its exact Sim, in ascending procedure-index order. Uses the posting
 * lists when built (touching only procedures that share a strand, the
 * VulMatch-style signature pruning); otherwise scores every procedure.
 * @param stats when non-null, accumulates the scoring work performed —
 *        the game's "pairwise scoring operations" metric.
 */
std::vector<Candidate> shared_candidates(
    const ExecutableIndex &T, const strand::ProcedureStrands &q,
    ScoringStats *stats = nullptr);

/**
 * LSH-prefiltered candidates: every procedure of @p T whose sketch
 * collides with @p q's in at least one band, scored exactly (same Sim
 * as shared_candidates) and returned in ascending procedure-index
 * order with zero-Sim collisions dropped. Always a subset of
 * shared_candidates(T, q) with identical Sim values for the procedures
 * it keeps — the exact path is the oracle. Falls back to
 * shared_candidates() when @p T has no LSH table or @p q has no sketch.
 */
std::vector<Candidate> lsh_candidates(const ExecutableIndex &T,
                                      const strand::ProcedureStrands &q,
                                      ScoringStats *stats = nullptr);

/**
 * Statistical strand weights trained from a sample of procedures — the
 * "global context" of GitZ: common strands (prologue shapes, trivial
 * moves) carry little evidence, rare strands carry much.
 */
struct GlobalContext
{
    std::map<std::uint64_t, double> weights;
    double default_weight = 1.0;

    double weight_of(std::uint64_t hash) const;
};

/** Train a global context over all procedures in @p sample. */
GlobalContext train_global_context(
    const std::vector<const ExecutableIndex *> &sample);

/** Weighted similarity: sum of weights of shared strands. */
double weighted_sim(const strand::ProcedureStrands &q,
                    const strand::ProcedureStrands &t,
                    const GlobalContext &context);

}  // namespace firmup::sim
