/**
 * @file
 * Pairwise procedure similarity (paper section 3.3) and executable
 * indexes.
 *
 * Sim(q, t) = |Strands(q) ∩ Strands(t)| over hashed canonical strands —
 * a plain set intersection with no counts, exactly as the paper defines
 * it. An ExecutableIndex is the unit both the game and the baselines
 * operate on: every procedure of one executable, represented as strand
 * hash sets.
 */
#pragma once

#include <map>
#include <string>
#include <vector>

#include "lifter/cfg.h"
#include "strand/canon.h"

namespace firmup::sim {

/** One indexed procedure. */
struct ProcEntry
{
    std::uint64_t entry = 0;
    std::string name;  ///< empty when stripped
    strand::ProcedureStrands repr;
};

/** All procedures of one executable, represented for similarity search. */
struct ExecutableIndex
{
    std::string name;
    isa::Arch arch = isa::Arch::Mips32;
    std::vector<ProcEntry> procs;

    /** Index of the procedure whose entry is @p addr, or -1. */
    int find_by_entry(std::uint64_t addr) const;
    /** Index of the first procedure named @p name, or -1. */
    int find_by_name(const std::string &name) const;
};

/**
 * Build the index of a lifted executable. Canonicalization knobs are
 * taken from @p options; section ranges are filled in from @p lifted.
 */
ExecutableIndex index_executable(const lifter::LiftedExecutable &lifted,
                                 strand::CanonOptions options = {});

/** Sim(q, t): the number of shared canonical strands. */
int sim_score(const strand::ProcedureStrands &q,
              const strand::ProcedureStrands &t);

/**
 * Statistical strand weights trained from a sample of procedures — the
 * "global context" of GitZ: common strands (prologue shapes, trivial
 * moves) carry little evidence, rare strands carry much.
 */
struct GlobalContext
{
    std::map<std::uint64_t, double> weights;
    double default_weight = 1.0;

    double weight_of(std::uint64_t hash) const;
};

/** Train a global context over all procedures in @p sample. */
GlobalContext train_global_context(
    const std::vector<const ExecutableIndex *> &sample);

/** Weighted similarity: sum of weights of shared strands. */
double weighted_sim(const strand::ProcedureStrands &q,
                    const strand::ProcedureStrands &t,
                    const GlobalContext &context);

}  // namespace firmup::sim
