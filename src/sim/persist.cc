#include "sim/persist.h"

#include <cstring>

namespace firmup::sim {

namespace {

constexpr std::uint8_t kMagic[4] = {'F', 'W', 'I', 'X'};
constexpr std::uint16_t kVersion = 1;

void
append_u64_le(ByteBuffer &out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i) {
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
}

std::uint64_t
read_u64_le(const std::uint8_t *p)
{
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i) {
        v = (v << 8) | p[i];
    }
    return v;
}

void
append_string(ByteBuffer &out, const std::string &s)
{
    append_u16_le(out, static_cast<std::uint16_t>(s.size()));
    out.insert(out.end(), s.begin(), s.end());
}

bool
read_string(const std::uint8_t *bytes, std::size_t size, std::size_t &pos,
            std::string &out)
{
    if (pos + 2 > size) {
        return false;
    }
    const std::uint16_t len = read_u16_le(bytes + pos);
    pos += 2;
    if (pos + len > size) {
        return false;
    }
    out.assign(reinterpret_cast<const char *>(bytes + pos), len);
    pos += len;
    return true;
}

}  // namespace

ByteBuffer
serialize_index(const ExecutableIndex &index)
{
    ByteBuffer out;
    for (std::uint8_t byte : kMagic) {
        out.push_back(byte);
    }
    append_u16_le(out, kVersion);
    append_u8(out, static_cast<std::uint8_t>(index.arch));
    append_string(out, index.name);
    append_u32_le(out, static_cast<std::uint32_t>(index.procs.size()));
    for (const ProcEntry &proc : index.procs) {
        append_u64_le(out, proc.entry);
        append_string(out, proc.name);
        append_u32_le(out,
                      static_cast<std::uint32_t>(proc.repr.block_count));
        append_u32_le(out,
                      static_cast<std::uint32_t>(proc.repr.stmt_count));
        append_u32_le(out,
                      static_cast<std::uint32_t>(proc.repr.hashes.size()));
        for (std::uint64_t h : proc.repr.hashes) {
            append_u64_le(out, h);
        }
    }
    return out;
}

Result<ExecutableIndex>
parse_index(const std::uint8_t *bytes, std::size_t size)
{
    std::size_t pos = 0;
    if (size < 7 || std::memcmp(bytes, kMagic, 4) != 0) {
        return Result<ExecutableIndex>::error("fwix: bad magic");
    }
    pos = 4;
    const std::uint16_t version = read_u16_le(bytes + pos);
    pos += 2;
    if (version != kVersion) {
        return Result<ExecutableIndex>::error("fwix: bad version");
    }
    ExecutableIndex index;
    const std::uint8_t arch_byte = bytes[pos++];
    if (arch_byte > static_cast<std::uint8_t>(isa::Arch::X86)) {
        return Result<ExecutableIndex>::error("fwix: bad arch");
    }
    index.arch = static_cast<isa::Arch>(arch_byte);
    if (!read_string(bytes, size, pos, index.name)) {
        return Result<ExecutableIndex>::error("fwix: truncated name");
    }
    if (pos + 4 > size) {
        return Result<ExecutableIndex>::error("fwix: truncated count");
    }
    const std::uint32_t proc_count = read_u32_le(bytes + pos);
    pos += 4;
    for (std::uint32_t i = 0; i < proc_count; ++i) {
        ProcEntry proc;
        if (pos + 8 > size) {
            return Result<ExecutableIndex>::error("fwix: truncated proc");
        }
        proc.entry = read_u64_le(bytes + pos);
        pos += 8;
        if (!read_string(bytes, size, pos, proc.name) ||
            pos + 12 > size) {
            return Result<ExecutableIndex>::error("fwix: truncated proc");
        }
        proc.repr.block_count = read_u32_le(bytes + pos);
        proc.repr.stmt_count = read_u32_le(bytes + pos + 4);
        const std::uint32_t hash_count = read_u32_le(bytes + pos + 8);
        pos += 12;
        if (pos + 8ull * hash_count > size) {
            return Result<ExecutableIndex>::error(
                "fwix: truncated strand hashes");
        }
        proc.repr.hashes.reserve(hash_count);
        for (std::uint32_t h = 0; h < hash_count; ++h) {
            proc.repr.add(read_u64_le(bytes + pos));
            pos += 8;
        }
        proc.repr.finalize();
        index.procs.push_back(std::move(proc));
    }
    index.finalize();
    return index;
}

Result<ExecutableIndex>
parse_index(const ByteBuffer &bytes)
{
    return parse_index(bytes.data(), bytes.size());
}

}  // namespace firmup::sim
