#include "sim/persist.h"

#include <algorithm>
#include <cstring>
#include <string_view>

#include "support/hash.h"

namespace firmup::sim {

namespace {

constexpr std::uint8_t kMagic[4] = {'F', 'W', 'I', 'X'};

/**
 * Header: magic(4) version(2) layout_hash(8) payload_checksum(8).
 * The checksum covers every byte from kHeaderSize to the end.
 */
constexpr std::size_t kHeaderSize = 4 + 2 + 8 + 8;

// u64 little-endian helpers live in support/bytes.h (shared with the
// scan journal); the string framing below stays FWIX-local.
void
append_string(ByteBuffer &out, const std::string &s)
{
    append_u16_le(out, static_cast<std::uint16_t>(s.size()));
    out.insert(out.end(), s.begin(), s.end());
}

bool
read_string(const std::uint8_t *bytes, std::size_t size, std::size_t &pos,
            std::string &out)
{
    if (pos + 2 > size) {
        return false;
    }
    const std::uint16_t len = read_u16_le(bytes + pos);
    pos += 2;
    if (pos + len > size) {
        return false;
    }
    out.assign(reinterpret_cast<const char *>(bytes + pos), len);
    pos += len;
    return true;
}

std::uint64_t
payload_checksum(const std::uint8_t *bytes, std::size_t size)
{
    return fnv1a64(std::string_view(
        reinterpret_cast<const char *>(bytes), size));
}

Result<ExecutableIndex>
malformed(const std::string &what)
{
    return Result<ExecutableIndex>::error(ErrorCode::MalformedContainer,
                                          "fwix: " + what);
}

Result<ExecutableIndex>
truncated(const std::string &what)
{
    return Result<ExecutableIndex>::error(ErrorCode::TruncatedMember,
                                          "fwix: truncated " + what);
}

}  // namespace

std::uint64_t
fwix_layout_hash()
{
    // Descriptor of the byte layout; bump the string whenever any
    // field changes width, order or meaning so old caches read as stale
    // instead of misparsing. The canon(...) tag names the canonical
    // strand byte-format revision: cached hashes are only comparable to
    // freshly computed ones when the canonicalizer that produced them
    // emitted the same byte sequence, so a format change (e.g. the
    // pinned left-to-right emission order of stream-v2; DESIGN.md
    // section 12) must invalidate old caches the same way a layout
    // change does. The sketch tag's mh64/v1 names the MinHash
    // permutation family (strand/sketch.cc salts): new salts would make
    // persisted sketches incomparable to fresh ones, so a salt change
    // must bump that tag even though no field width moves.
    static const std::uint64_t hash = fnv1a64(
        "fwix-v4:hdr(magic4,ver-u16,layout-u64,fnv1a64-payload-u64);"
        "payload(arch-u8,name-str16,procs-u32:"
        "(entry-u64,name-str16,blocks-u32,stmts-u32,hashes-u32xu64,"
        "summary-u8:bits-4xu64,woffs-5xu32,sketch-u8:mh64/v1-64xu64),"
        "ready-u8,posting-hashes-u32xu64,posting-offsets-u32xu32,"
        "posting-procs-u32xu32);canon(stream-v2,lr-names)");
    return hash;
}

ByteBuffer
serialize_index(const ExecutableIndex &index)
{
    ByteBuffer out;
    for (std::uint8_t byte : kMagic) {
        out.push_back(byte);
    }
    append_u16_le(out, kFwixVersion);
    append_u64_le(out, fwix_layout_hash());
    append_u64_le(out, 0);  // checksum backpatched below

    append_u8(out, static_cast<std::uint8_t>(index.arch));
    append_string(out, index.name);
    append_u32_le(out, static_cast<std::uint32_t>(index.procs.size()));
    for (const ProcEntry &proc : index.procs) {
        append_u64_le(out, proc.entry);
        append_string(out, proc.name);
        append_u32_le(out,
                      static_cast<std::uint32_t>(proc.repr.block_count));
        append_u32_le(out,
                      static_cast<std::uint32_t>(proc.repr.stmt_count));
        append_u32_le(out,
                      static_cast<std::uint32_t>(proc.repr.hashes.size()));
        for (std::uint64_t h : proc.repr.hashes) {
            append_u64_le(out, h);
        }
        // Block summary (the tiered kernel's reject/span structure).
        // Stored, not rebuilt at load: the warm path exists to skip
        // recomputation, and the summary is search state like the
        // postings below.
        append_u8(out, proc.repr.summary_built ? 1 : 0);
        if (proc.repr.summary_built) {
            for (std::uint64_t word : proc.repr.bucket_bits) {
                append_u64_le(out, word);
            }
            for (std::uint32_t offset : proc.repr.word_offsets) {
                append_u32_le(out, offset);
            }
        }
        // MinHash sketch (v4): stored so warm loads serve the LSH
        // retrieval path without re-permuting every hash set. Always
        // present for finalized indexes (finalize() backstop-builds).
        append_u8(out, proc.repr.sketch_built ? 1 : 0);
        if (proc.repr.sketch_built) {
            for (std::uint64_t word : proc.repr.sketch) {
                append_u64_le(out, word);
            }
        }
    }
    // Finalized search state: the CSR posting lists. The entry/name maps
    // are not serialized — they are rebuilt in O(procs) at load, which
    // keeps the blob byte-deterministic (unordered_map iteration order
    // is not).
    append_u8(out, index.search_ready ? 1 : 0);
    if (index.search_ready) {
        append_u32_le(out, static_cast<std::uint32_t>(
                               index.posting_hashes.size()));
        for (std::uint64_t h : index.posting_hashes) {
            append_u64_le(out, h);
        }
        append_u32_le(out, static_cast<std::uint32_t>(
                               index.posting_offsets.size()));
        for (std::uint32_t o : index.posting_offsets) {
            append_u32_le(out, o);
        }
        append_u32_le(out, static_cast<std::uint32_t>(
                               index.posting_procs.size()));
        for (std::uint32_t p : index.posting_procs) {
            append_u32_le(out, p);
        }
    }

    const std::uint64_t checksum = payload_checksum(
        out.data() + kHeaderSize, out.size() - kHeaderSize);
    for (int i = 0; i < 8; ++i) {
        out[4 + 2 + 8 + static_cast<std::size_t>(i)] =
            static_cast<std::uint8_t>(checksum >> (8 * i));
    }
    return out;
}

Result<ExecutableIndex>
parse_index(const std::uint8_t *bytes, std::size_t size)
{
    if (size < 6 || std::memcmp(bytes, kMagic, 4) != 0) {
        return malformed("bad magic");
    }
    const std::uint16_t version = read_u16_le(bytes + 4);
    if (version != kFwixVersion) {
        return Result<ExecutableIndex>::error(
            ErrorCode::StaleFormat,
            "fwix: stale format version " + std::to_string(version) +
                " (want " + std::to_string(kFwixVersion) + ")");
    }
    if (size < kHeaderSize) {
        return truncated("header");
    }
    if (read_u64_le(bytes + 6) != fwix_layout_hash()) {
        return Result<ExecutableIndex>::error(
            ErrorCode::StaleFormat, "fwix: stale layout hash");
    }
    if (read_u64_le(bytes + 14) !=
        payload_checksum(bytes + kHeaderSize, size - kHeaderSize)) {
        return malformed("payload checksum mismatch");
    }

    std::size_t pos = kHeaderSize;
    ExecutableIndex index;
    const std::uint8_t arch_byte = bytes[pos++];
    if (arch_byte > static_cast<std::uint8_t>(isa::Arch::X86)) {
        return malformed("bad arch");
    }
    index.arch = static_cast<isa::Arch>(arch_byte);
    if (!read_string(bytes, size, pos, index.name)) {
        return truncated("name");
    }
    if (pos + 4 > size) {
        return truncated("count");
    }
    const std::uint32_t proc_count = read_u32_le(bytes + pos);
    pos += 4;
    for (std::uint32_t i = 0; i < proc_count; ++i) {
        ProcEntry proc;
        if (pos + 8 > size) {
            return truncated("proc");
        }
        proc.entry = read_u64_le(bytes + pos);
        pos += 8;
        if (!read_string(bytes, size, pos, proc.name) ||
            pos + 12 > size) {
            return truncated("proc");
        }
        proc.repr.block_count = read_u32_le(bytes + pos);
        proc.repr.stmt_count = read_u32_le(bytes + pos + 4);
        const std::uint32_t hash_count = read_u32_le(bytes + pos + 8);
        pos += 12;
        if (size - pos < 8ull * hash_count) {
            return truncated("strand hashes");
        }
        proc.repr.hashes.reserve(hash_count);
        bool sorted = true;
        for (std::uint32_t h = 0; h < hash_count; ++h) {
            const std::uint64_t value = read_u64_le(bytes + pos);
            sorted &= proc.repr.hashes.empty() ||
                      proc.repr.hashes.back() < value;
            proc.repr.add(value);
            pos += 8;
        }
        if (!sorted) {
            // Only blobs serialized from hand-built, never-finalized
            // indexes land here (the checksum vouches these are the
            // bytes serialize_index wrote); restore the flat-set
            // invariant for them.
            proc.repr.finalize();
        }
        if (pos + 1 > size) {
            return truncated("summary flag");
        }
        const std::uint8_t summary = bytes[pos++];
        if (summary > 1) {
            return malformed("bad summary flag");
        }
        if (summary == 1) {
            if (size - pos < 4 * 8 + 5 * 4) {
                return truncated("summary");
            }
            for (std::uint64_t &word : proc.repr.bucket_bits) {
                word = read_u64_le(bytes + pos);
                pos += 8;
            }
            std::uint32_t prev = 0;
            for (std::uint32_t &offset : proc.repr.word_offsets) {
                offset = read_u32_le(bytes + pos);
                pos += 4;
                if (offset < prev) {
                    return malformed("unsorted summary offsets");
                }
                prev = offset;
            }
            if (proc.repr.word_offsets.front() != 0 ||
                proc.repr.word_offsets.back() !=
                    proc.repr.hashes.size()) {
                return malformed("inconsistent summary shape");
            }
            proc.repr.summary_built = true;
        }
        if (pos + 1 > size) {
            return truncated("sketch flag");
        }
        const std::uint8_t sketch = bytes[pos++];
        if (sketch > 1) {
            return malformed("bad sketch flag");
        }
        if (sketch == 1) {
            if (size - pos < 8ull * strand::kSketchSize) {
                return truncated("sketch");
            }
            for (std::uint64_t &word : proc.repr.sketch) {
                word = read_u64_le(bytes + pos);
                pos += 8;
            }
            proc.repr.sketch_built = true;
        }
        index.procs.push_back(std::move(proc));
    }

    if (pos + 1 > size) {
        return truncated("search state");
    }
    const std::uint8_t ready = bytes[pos++];
    if (ready > 1) {
        return malformed("bad search-ready flag");
    }
    if (ready == 0) {
        if (pos != size) {
            return malformed("trailing bytes");
        }
        index.finalize();
        return index;
    }

    auto read_u32_count = [&](std::uint32_t &out) {
        if (pos + 4 > size) {
            return false;
        }
        out = read_u32_le(bytes + pos);
        pos += 4;
        return true;
    };
    std::uint32_t hash_count = 0, offset_count = 0, proc_count32 = 0;
    if (!read_u32_count(hash_count) ||
        size - pos < 8ull * hash_count) {
        return truncated("posting hashes");
    }
    index.posting_hashes.reserve(hash_count);
    for (std::uint32_t i = 0; i < hash_count; ++i) {
        index.posting_hashes.push_back(read_u64_le(bytes + pos));
        pos += 8;
    }
    if (!read_u32_count(offset_count) ||
        size - pos < 4ull * offset_count) {
        return truncated("posting offsets");
    }
    index.posting_offsets.reserve(offset_count);
    for (std::uint32_t i = 0; i < offset_count; ++i) {
        index.posting_offsets.push_back(read_u32_le(bytes + pos));
        pos += 4;
    }
    if (!read_u32_count(proc_count32) ||
        size - pos < 4ull * proc_count32) {
        return truncated("posting procs");
    }
    index.posting_procs.reserve(proc_count32);
    for (std::uint32_t i = 0; i < proc_count32; ++i) {
        index.posting_procs.push_back(read_u32_le(bytes + pos));
        pos += 4;
    }
    if (pos != size) {
        return malformed("trailing bytes");
    }

    // Structural validation of the CSR triple: a checksum-clean blob can
    // still only come from serialize_index, but an inconsistent inverted
    // index must never be handed to the search fast paths.
    if (index.posting_offsets.size() !=
            index.posting_hashes.size() + 1 ||
        index.posting_offsets.front() != 0 ||
        index.posting_offsets.back() != index.posting_procs.size()) {
        return malformed("inconsistent posting shape");
    }
    for (std::size_t i = 1; i < index.posting_offsets.size(); ++i) {
        if (index.posting_offsets[i] < index.posting_offsets[i - 1]) {
            return malformed("unsorted posting offsets");
        }
    }
    for (std::size_t i = 1; i < index.posting_hashes.size(); ++i) {
        if (index.posting_hashes[i] <= index.posting_hashes[i - 1]) {
            return malformed("unsorted posting hashes");
        }
    }
    for (const std::uint32_t p : index.posting_procs) {
        if (p >= index.procs.size()) {
            return malformed("posting proc out of range");
        }
    }

    // Rebuild the lookup maps (first occurrence wins, exactly as
    // finalize() does) without re-sorting the incidences — this is the
    // cheap O(procs) tail of finalize(), not the expensive CSR build.
    index.entry_map.reserve(index.procs.size());
    index.name_map.reserve(index.procs.size());
    for (std::size_t i = 0; i < index.procs.size(); ++i) {
        index.entry_map.emplace(index.procs[i].entry,
                                static_cast<int>(i));
        index.name_map.emplace(index.procs[i].name,
                               static_cast<int>(i));
    }
    index.search_ready = true;
    return index;
}

Result<ExecutableIndex>
parse_index(const ByteBuffer &bytes)
{
    return parse_index(bytes.data(), bytes.size());
}

}  // namespace firmup::sim
