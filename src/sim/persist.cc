#include "sim/persist.h"

#include <algorithm>
#include <cstring>
#include <string_view>

#include "support/hash.h"

namespace firmup::sim {

namespace {

constexpr std::uint8_t kMagic[4] = {'F', 'W', 'I', 'X'};

/**
 * Header: magic(4) version(2) layout_hash(8) payload_checksum(8).
 * The checksum covers every byte from kHeaderSize to the end —
 * including the 2 alignment pad bytes before the directory.
 */
constexpr std::size_t kHeaderSize = 4 + 2 + 8 + 8;

/** The fixed offset directory starts 8-aligned, after 2 pad bytes. */
constexpr std::size_t kDirOffset = 24;

/** Directory field offsets (absolute; all u64 unless noted). */
constexpr std::size_t kDirTotalSize = kDirOffset + 0;
constexpr std::size_t kDirArch = kDirOffset + 8;       // u8
constexpr std::size_t kDirFlags = kDirOffset + 9;      // u8 (bit0 ready)
constexpr std::size_t kDirPad = kDirOffset + 10;       // u16, zero
constexpr std::size_t kDirProcCount = kDirOffset + 12; // u32
constexpr std::size_t kDirNameOff = kDirOffset + 16;
constexpr std::size_t kDirNameLen = kDirOffset + 24;
constexpr std::size_t kDirNamesOff = kDirOffset + 32;
constexpr std::size_t kDirNamesLen = kDirOffset + 40;
constexpr std::size_t kDirProcTableOff = kDirOffset + 48;
constexpr std::size_t kDirHashesOff = kDirOffset + 56;
constexpr std::size_t kDirHashesCount = kDirOffset + 64;
constexpr std::size_t kDirSketchOff = kDirOffset + 72;
constexpr std::size_t kDirSketchCount = kDirOffset + 80;
constexpr std::size_t kDirPhOff = kDirOffset + 88;
constexpr std::size_t kDirPhCount = kDirOffset + 96;
constexpr std::size_t kDirPoOff = kDirOffset + 104;
constexpr std::size_t kDirPoCount = kDirOffset + 112;
constexpr std::size_t kDirPpOff = kDirOffset + 120;
constexpr std::size_t kDirPpCount = kDirOffset + 128;
constexpr std::size_t kDirEnd = kDirOffset + 136;

/** Packed per-procedure record in the proc table (byte offsets). */
constexpr std::size_t kProcRecSize = 104;
constexpr std::size_t kProcEntry = 0;      // u64
constexpr std::size_t kProcHashOff = 8;    // u64, absolute, 8-aligned
constexpr std::size_t kProcHashCount = 16; // u32
constexpr std::size_t kProcNameOff = 20;   // u32, into names arena
constexpr std::size_t kProcNameLen = 24;   // u32
constexpr std::size_t kProcBlocks = 28;    // u32
constexpr std::size_t kProcStmts = 32;     // u32
constexpr std::size_t kProcFlags = 36;     // u32: bit0 summary, bit1 sketch
constexpr std::size_t kProcSketchIdx = 40; // u32
constexpr std::size_t kProcPad0 = 44;      // u32, zero
constexpr std::size_t kProcBucketBits = 48;  // 4 x u64
constexpr std::size_t kProcWordOffsets = 80; // 5 x u32
constexpr std::size_t kProcPad1 = 100;       // u32, zero

constexpr std::uint32_t kProcFlagSummary = 1u << 0;
constexpr std::uint32_t kProcFlagSketch = 1u << 1;
constexpr std::uint32_t kProcFlagsKnown = kProcFlagSummary | kProcFlagSketch;

constexpr std::uint8_t kDirFlagReady = 1u << 0;

std::uint64_t
payload_checksum(const std::uint8_t *bytes, std::size_t size)
{
    // content_hash64, not fnv1a64: the checksum pass is the dominant
    // cost of a warm mmap open (the view fixups are near-free), and
    // byte-serial FNV runs at ~1 byte/cycle. Host-local like the rest
    // of the store — a blob checked on a host of the other endianness
    // mismatches and degrades to a miss, never a wrong index.
    return content_hash64(std::string_view(
        reinterpret_cast<const char *>(bytes), size));
}

Result<ExecutableIndex>
malformed(const std::string &what)
{
    return Result<ExecutableIndex>::error(ErrorCode::MalformedContainer,
                                          "fwix: " + what);
}

Result<ExecutableIndex>
truncated(const std::string &what)
{
    return Result<ExecutableIndex>::error(ErrorCode::TruncatedMember,
                                          "fwix: truncated " + what);
}

/** Backpatch a u64 little-endian at a fixed position. */
void
poke_u64(ByteBuffer &out, std::size_t at, std::uint64_t value)
{
    for (int i = 0; i < 8; ++i) {
        out[at + static_cast<std::size_t>(i)] =
            static_cast<std::uint8_t>(value >> (8 * i));
    }
}

void
poke_u32(ByteBuffer &out, std::size_t at, std::uint32_t value)
{
    for (int i = 0; i < 4; ++i) {
        out[at + static_cast<std::size_t>(i)] =
            static_cast<std::uint8_t>(value >> (8 * i));
    }
}

/** Append zero bytes until out.size() is a multiple of @p align. */
void
pad_to(ByteBuffer &out, std::size_t align)
{
    while (out.size() % align != 0) {
        out.push_back(0);
    }
}

/**
 * The decoded v5 directory, bounds- and alignment-validated against the
 * blob size. Every offset is absolute; every count is in elements.
 */
struct Directory
{
    isa::Arch arch = isa::Arch::Mips32;
    bool ready = false;
    std::uint32_t proc_count = 0;
    std::uint64_t name_off = 0, name_len = 0;
    std::uint64_t names_off = 0, names_len = 0;
    std::uint64_t proc_table_off = 0;
    std::uint64_t hashes_off = 0, hashes_count = 0;
    std::uint64_t sketch_off = 0, sketch_count = 0;
    std::uint64_t ph_off = 0, ph_count = 0;
    std::uint64_t po_off = 0, po_count = 0;
    std::uint64_t pp_off = 0, pp_count = 0;
};

/**
 * Decode + validate the directory. Memory-safety contract: on success,
 * every arena [off, off + count * elem) lies within [kDirEnd, size) with
 * the alignment its element type needs, so arena pointers handed out by
 * the view path can never read out of bounds.
 */
Result<ExecutableIndex>
read_directory(const std::uint8_t *bytes, std::size_t size, Directory &dir,
               bool *ok)
{
    *ok = false;
    if (size < kDirEnd) {
        return truncated("directory");
    }
    if (read_u64_le(bytes + kDirTotalSize) != size) {
        return malformed("total size mismatch");
    }
    if (read_u16_le(bytes + kHeaderSize) != 0 ||
        read_u16_le(bytes + kDirPad) != 0) {
        return malformed("bad padding");
    }
    const std::uint8_t arch_byte = bytes[kDirArch];
    if (arch_byte > static_cast<std::uint8_t>(isa::Arch::X86)) {
        return malformed("bad arch");
    }
    dir.arch = static_cast<isa::Arch>(arch_byte);
    const std::uint8_t flags = bytes[kDirFlags];
    if ((flags & ~kDirFlagReady) != 0) {
        return malformed("bad header flags");
    }
    dir.ready = (flags & kDirFlagReady) != 0;
    dir.proc_count = read_u32_le(bytes + kDirProcCount);
    dir.name_off = read_u64_le(bytes + kDirNameOff);
    dir.name_len = read_u64_le(bytes + kDirNameLen);
    dir.names_off = read_u64_le(bytes + kDirNamesOff);
    dir.names_len = read_u64_le(bytes + kDirNamesLen);
    dir.proc_table_off = read_u64_le(bytes + kDirProcTableOff);
    dir.hashes_off = read_u64_le(bytes + kDirHashesOff);
    dir.hashes_count = read_u64_le(bytes + kDirHashesCount);
    dir.sketch_off = read_u64_le(bytes + kDirSketchOff);
    dir.sketch_count = read_u64_le(bytes + kDirSketchCount);
    dir.ph_off = read_u64_le(bytes + kDirPhOff);
    dir.ph_count = read_u64_le(bytes + kDirPhCount);
    dir.po_off = read_u64_le(bytes + kDirPoOff);
    dir.po_count = read_u64_le(bytes + kDirPoCount);
    dir.pp_off = read_u64_le(bytes + kDirPpOff);
    dir.pp_count = read_u64_le(bytes + kDirPpCount);

    // Overflow-safe "arena fits": off within the blob, aligned, and
    // count * elem representable within the remaining bytes.
    const auto arena_ok = [size](std::uint64_t off, std::uint64_t count,
                                 std::uint64_t elem, std::uint64_t align) {
        if (off < kDirEnd || off > size) {
            return false;
        }
        if ((off & (align - 1)) != 0) {
            return false;
        }
        return elem == 0 || count <= (size - off) / elem;
    };
    if (!arena_ok(dir.name_off, dir.name_len, 1, 1) ||
        !arena_ok(dir.names_off, dir.names_len, 1, 1)) {
        return truncated("name arena");
    }
    if (!arena_ok(dir.proc_table_off, dir.proc_count, kProcRecSize, 8)) {
        return truncated("proc table");
    }
    if (!arena_ok(dir.hashes_off, dir.hashes_count, 8, 8)) {
        return truncated("hash arena");
    }
    if (!arena_ok(dir.sketch_off, dir.sketch_count,
                  8 * strand::kSketchSize, 8)) {
        return truncated("sketch arena");
    }
    if (!arena_ok(dir.ph_off, dir.ph_count, 8, 8) ||
        !arena_ok(dir.po_off, dir.po_count, 4, 4) ||
        !arena_ok(dir.pp_off, dir.pp_count, 4, 4)) {
        return truncated("posting arena");
    }
    if (dir.ready) {
        if (dir.po_count != dir.ph_count + 1) {
            return malformed("inconsistent posting shape");
        }
    } else if (dir.ph_count != 0 || dir.po_count != 0 ||
               dir.pp_count != 0) {
        return malformed("posting state without ready flag");
    }
    *ok = true;
    return malformed("unreachable");  // discarded when *ok
}

/** One decoded proc-table record, validated against the directory. */
struct ProcRec
{
    std::uint64_t entry = 0;
    std::uint64_t hash_off = 0;
    std::uint32_t hash_count = 0;
    std::uint32_t name_off = 0;
    std::uint32_t name_len = 0;
    std::uint32_t block_count = 0;
    std::uint32_t stmt_count = 0;
    bool summary = false;
    bool sketch = false;
    std::uint32_t sketch_idx = 0;
    std::array<std::uint64_t, 4> bucket_bits{};
    std::array<std::uint32_t, 5> word_offsets{};
};

Result<ExecutableIndex>
read_proc_rec(const std::uint8_t *bytes, const Directory &dir,
              std::uint32_t i, ProcRec &rec, bool *ok)
{
    *ok = false;
    const std::uint8_t *p =
        bytes + dir.proc_table_off +
        static_cast<std::size_t>(i) * kProcRecSize;
    rec.entry = read_u64_le(p + kProcEntry);
    rec.hash_off = read_u64_le(p + kProcHashOff);
    rec.hash_count = read_u32_le(p + kProcHashCount);
    rec.name_off = read_u32_le(p + kProcNameOff);
    rec.name_len = read_u32_le(p + kProcNameLen);
    rec.block_count = read_u32_le(p + kProcBlocks);
    rec.stmt_count = read_u32_le(p + kProcStmts);
    const std::uint32_t flags = read_u32_le(p + kProcFlags);
    if ((flags & ~kProcFlagsKnown) != 0) {
        return malformed("bad proc flags");
    }
    rec.summary = (flags & kProcFlagSummary) != 0;
    rec.sketch = (flags & kProcFlagSketch) != 0;
    rec.sketch_idx = read_u32_le(p + kProcSketchIdx);
    if (read_u32_le(p + kProcPad0) != 0 ||
        read_u32_le(p + kProcPad1) != 0) {
        return malformed("bad proc padding");
    }
    // Hash span: absolute, 8-aligned, wholly inside the hash arena.
    if (rec.hash_off < dir.hashes_off ||
        (rec.hash_off & 7) != 0 ||
        (rec.hash_off - dir.hashes_off) / 8 + rec.hash_count >
            dir.hashes_count) {
        return truncated("proc hash span");
    }
    // Name span: relative, wholly inside the names arena.
    if (rec.name_off > dir.names_len ||
        rec.name_len > dir.names_len - rec.name_off) {
        return truncated("proc name span");
    }
    if (rec.sketch) {
        if (rec.sketch_idx >= dir.sketch_count) {
            return truncated("proc sketch index");
        }
    } else if (rec.sketch_idx != 0) {
        return malformed("sketch index without sketch");
    }
    for (unsigned w = 0; w < 4; ++w) {
        rec.bucket_bits[w] = read_u64_le(p + kProcBucketBits + 8 * w);
    }
    std::uint32_t prev = 0;
    for (unsigned w = 0; w < 5; ++w) {
        rec.word_offsets[w] = read_u32_le(p + kProcWordOffsets + 4 * w);
        if (rec.word_offsets[w] < prev) {
            return malformed("unsorted summary offsets");
        }
        prev = rec.word_offsets[w];
    }
    if (rec.summary) {
        if (rec.word_offsets.front() != 0 ||
            rec.word_offsets.back() != rec.hash_count) {
            return malformed("inconsistent summary shape");
        }
    } else {
        for (const std::uint32_t o : rec.word_offsets) {
            if (o != 0) {
                return malformed("summary offsets without summary");
            }
        }
        for (const std::uint64_t w : rec.bucket_bits) {
            if (w != 0) {
                return malformed("summary bits without summary");
            }
        }
    }
    *ok = true;
    return malformed("unreachable");  // discarded when *ok
}

/**
 * CSR posting safety scan, shared by both load paths: offsets start at
 * 0, never decrease, end exactly at pp_count, and every procedure index
 * is in range. These bound every downstream posting walk (e.g. the
 * per-procedure accumulators in shared_candidates), so they are
 * mandatory even on the zero-copy path. Strict ascending order of the
 * posting *hashes* is a semantic property the checksum vouches for; the
 * copying parser re-checks it (it is touching every byte anyway), the
 * view path does not.
 */
bool
postings_safe(const std::uint8_t *bytes, const Directory &dir)
{
    if (!dir.ready) {
        return true;
    }
    const std::uint8_t *po = bytes + dir.po_off;
    std::uint32_t prev = 0;
    for (std::uint64_t i = 0; i < dir.po_count; ++i) {
        const std::uint32_t o = read_u32_le(po + 4 * i);
        if (o < prev) {
            return false;
        }
        prev = o;
    }
    if (read_u32_le(po) != 0 ||
        read_u32_le(po + 4 * (dir.po_count - 1)) != dir.pp_count) {
        return false;
    }
    const std::uint8_t *pp = bytes + dir.pp_off;
    for (std::uint64_t i = 0; i < dir.pp_count; ++i) {
        if (read_u32_le(pp + 4 * i) >= dir.proc_count) {
            return false;
        }
    }
    return true;
}

/** Rebuild the O(procs) lookup maps (first occurrence wins). */
void
rebuild_maps(ExecutableIndex &index)
{
    index.entry_map.reserve(index.procs.size());
    index.name_map.reserve(index.procs.size());
    for (std::size_t i = 0; i < index.procs.size(); ++i) {
        index.entry_map.emplace(index.procs[i].entry,
                                static_cast<int>(i));
        index.name_map.emplace(index.procs[i].name,
                               static_cast<int>(i));
    }
}

}  // namespace

std::uint64_t
fwix_layout_hash()
{
    // Descriptor of the byte layout; bump the string whenever any
    // field changes width, order or meaning so old caches read as stale
    // instead of misparsing. The canon(...) tag names the canonical
    // strand byte-format revision: cached hashes are only comparable to
    // freshly computed ones when the canonicalizer that produced them
    // emitted the same byte sequence, so a format change (e.g. the
    // pinned left-to-right emission order of stream-v2; DESIGN.md
    // section 12) must invalidate old caches the same way a layout
    // change does. The sketch tag's mh64/v1 names the MinHash
    // permutation family (strand/sketch.cc salts): new salts would make
    // persisted sketches incomparable to fresh ones, so a salt change
    // must bump that tag even though no field width moves.
    static const std::uint64_t hash = fnv1a64(
        "fwix-v5:hdr(magic4,ver-u16,layout-u64,ch64lane-payload-u64,"
        "pad-u16);dir@24(total-u64,arch-u8,flags-u8,pad-u16,procs-u32,"
        "name-u64x2,names-u64x2,ptab-u64,hashes-u64x2,"
        "sketch-u64x2:mh64/v1-64xu64,ph-u64x2,po-u64x2,pp-u64x2);"
        "prec104(entry-u64,hoff-u64,hcnt-u32,noff-u32,nlen-u32,"
        "blocks-u32,stmts-u32,flags-u32,sidx-u32,pad-u32,bits-4xu64,"
        "woffs-5xu32,pad-u32);canon(stream-v2,lr-names)");
    return hash;
}

ByteBuffer
serialize_index(const ExecutableIndex &index)
{
    ByteBuffer out;
    for (std::uint8_t byte : kMagic) {
        out.push_back(byte);
    }
    append_u16_le(out, kFwixVersion);
    append_u64_le(out, fwix_layout_hash());
    append_u64_le(out, 0);  // checksum backpatched below
    append_u16_le(out, 0);  // pad so the directory starts 8-aligned

    // Zeroed directory; every field is backpatched once the arena
    // offsets are known.
    out.resize(kDirEnd, 0);
    out[kDirArch] = static_cast<std::uint8_t>(index.arch);
    out[kDirFlags] = index.search_ready ? kDirFlagReady : 0;
    poke_u32(out, kDirProcCount,
             static_cast<std::uint32_t>(index.procs.size()));

    // Arena 1: executable name.
    poke_u64(out, kDirNameOff, out.size());
    poke_u64(out, kDirNameLen, index.name.size());
    out.insert(out.end(), index.name.begin(), index.name.end());

    // Arena 2: concatenated procedure names (per-proc u32 spans).
    pad_to(out, 8);
    const std::size_t names_off = out.size();
    std::vector<std::uint32_t> proc_name_offs(index.procs.size());
    for (std::size_t i = 0; i < index.procs.size(); ++i) {
        proc_name_offs[i] =
            static_cast<std::uint32_t>(out.size() - names_off);
        out.insert(out.end(), index.procs[i].name.begin(),
                   index.procs[i].name.end());
    }
    poke_u64(out, kDirNamesOff, names_off);
    poke_u64(out, kDirNamesLen, out.size() - names_off);

    // Arena 3: the packed proc table (hash offsets backpatched after
    // the hash arena is laid out).
    pad_to(out, 8);
    const std::size_t proc_table_off = out.size();
    poke_u64(out, kDirProcTableOff, proc_table_off);
    out.resize(proc_table_off + index.procs.size() * kProcRecSize, 0);

    // Arena 4: every procedure's hashes, concatenated.
    const std::size_t hashes_off = out.size();  // 8-aligned: table end
    std::uint64_t sketch_slots = 0;
    for (std::size_t i = 0; i < index.procs.size(); ++i) {
        const ProcEntry &proc = index.procs[i];
        const std::size_t rec = proc_table_off + i * kProcRecSize;
        poke_u64(out, rec + kProcEntry, proc.entry);
        poke_u64(out, rec + kProcHashOff, out.size());
        poke_u32(out, rec + kProcHashCount,
                 static_cast<std::uint32_t>(proc.repr.hash_count()));
        poke_u32(out, rec + kProcNameOff, proc_name_offs[i]);
        poke_u32(out, rec + kProcNameLen,
                 static_cast<std::uint32_t>(proc.name.size()));
        poke_u32(out, rec + kProcBlocks,
                 static_cast<std::uint32_t>(proc.repr.block_count));
        poke_u32(out, rec + kProcStmts,
                 static_cast<std::uint32_t>(proc.repr.stmt_count));
        std::uint32_t flags = 0;
        if (proc.repr.summary_built) {
            flags |= kProcFlagSummary;
            for (unsigned w = 0; w < 4; ++w) {
                poke_u64(out, rec + kProcBucketBits + 8 * w,
                         proc.repr.bucket_bits[w]);
            }
            for (unsigned w = 0; w < 5; ++w) {
                poke_u32(out, rec + kProcWordOffsets + 4 * w,
                         proc.repr.word_offsets[w]);
            }
        }
        if (proc.repr.sketch_built) {
            flags |= kProcFlagSketch;
            poke_u32(out, rec + kProcSketchIdx,
                     static_cast<std::uint32_t>(sketch_slots++));
        }
        poke_u32(out, rec + kProcFlags, flags);
        const std::uint64_t *hashes = proc.repr.hash_data();
        for (std::size_t h = 0; h < proc.repr.hash_count(); ++h) {
            append_u64_le(out, hashes[h]);
        }
    }
    poke_u64(out, kDirHashesOff, hashes_off);
    poke_u64(out, kDirHashesCount, (out.size() - hashes_off) / 8);

    // Arena 5: MinHash sketches, one 64-word block per sketch_built
    // procedure, in procedure order (= sketch_idx order).
    const std::size_t sketch_off = out.size();
    for (const ProcEntry &proc : index.procs) {
        if (!proc.repr.sketch_built) {
            continue;
        }
        for (std::uint64_t word : proc.repr.sketch) {
            append_u64_le(out, word);
        }
    }
    poke_u64(out, kDirSketchOff, sketch_off);
    poke_u64(out, kDirSketchCount, sketch_slots);

    // Arenas 6-8: the CSR posting triple. The entry/name maps are not
    // serialized — they are rebuilt in O(procs) at load, which keeps
    // the blob byte-deterministic (unordered_map iteration order is
    // not).
    poke_u64(out, kDirPhOff, out.size());
    if (index.search_ready) {
        poke_u64(out, kDirPhCount, index.posting_hash_count());
        const std::uint64_t *ph = index.posting_hash_data();
        for (std::size_t i = 0; i < index.posting_hash_count(); ++i) {
            append_u64_le(out, ph[i]);
        }
        poke_u64(out, kDirPoOff, out.size());
        poke_u64(out, kDirPoCount, index.posting_hash_count() + 1);
        const std::uint32_t *po = index.posting_offset_data();
        for (std::size_t i = 0; i <= index.posting_hash_count(); ++i) {
            append_u32_le(out, po[i]);
        }
        poke_u64(out, kDirPpOff, out.size());
        poke_u64(out, kDirPpCount, index.posting_proc_count());
        const std::uint32_t *pp = index.posting_proc_data();
        for (std::size_t i = 0; i < index.posting_proc_count(); ++i) {
            append_u32_le(out, pp[i]);
        }
    } else {
        poke_u64(out, kDirPoOff, out.size());
        poke_u64(out, kDirPpOff, out.size());
    }

    poke_u64(out, kDirTotalSize, out.size());
    const std::uint64_t checksum = payload_checksum(
        out.data() + kHeaderSize, out.size() - kHeaderSize);
    poke_u64(out, 4 + 2 + 8, checksum);
    return out;
}

Result<bool>
check_container(const std::uint8_t *bytes, std::size_t size)
{
    if (size < 6 || std::memcmp(bytes, kMagic, 4) != 0) {
        return Result<bool>::error(ErrorCode::MalformedContainer,
                                   "fwix: bad magic");
    }
    const std::uint16_t version = read_u16_le(bytes + 4);
    if (version != kFwixVersion) {
        return Result<bool>::error(
            ErrorCode::StaleFormat,
            "fwix: stale format version " + std::to_string(version) +
                " (want " + std::to_string(kFwixVersion) + ")");
    }
    if (size < kHeaderSize) {
        return Result<bool>::error(ErrorCode::TruncatedMember,
                                   "fwix: truncated header");
    }
    if (read_u64_le(bytes + 6) != fwix_layout_hash()) {
        return Result<bool>::error(ErrorCode::StaleFormat,
                                   "fwix: stale layout hash");
    }
    if (read_u64_le(bytes + 14) !=
        payload_checksum(bytes + kHeaderSize, size - kHeaderSize)) {
        return Result<bool>::error(ErrorCode::MalformedContainer,
                                   "fwix: payload checksum mismatch");
    }
    return true;
}

Result<ExecutableIndex>
parse_index(const std::uint8_t *bytes, std::size_t size)
{
    auto checked = check_container(bytes, size);
    if (!checked.ok()) {
        return Result<ExecutableIndex>::error_from(checked);
    }
    Directory dir;
    bool dir_ok = false;
    auto dir_err = read_directory(bytes, size, dir, &dir_ok);
    if (!dir_ok) {
        return dir_err;
    }

    ExecutableIndex index;
    index.arch = dir.arch;
    index.name.assign(
        reinterpret_cast<const char *>(bytes + dir.name_off),
        dir.name_len);
    index.procs.reserve(dir.proc_count);
    for (std::uint32_t i = 0; i < dir.proc_count; ++i) {
        ProcRec rec;
        bool rec_ok = false;
        auto rec_err = read_proc_rec(bytes, dir, i, rec, &rec_ok);
        if (!rec_ok) {
            return rec_err;
        }
        ProcEntry proc;
        proc.entry = rec.entry;
        proc.name.assign(reinterpret_cast<const char *>(
                             bytes + dir.names_off + rec.name_off),
                         rec.name_len);
        proc.repr.block_count = rec.block_count;
        proc.repr.stmt_count = rec.stmt_count;
        proc.repr.hashes.reserve(rec.hash_count);
        bool sorted = true;
        for (std::uint32_t h = 0; h < rec.hash_count; ++h) {
            const std::uint64_t value =
                read_u64_le(bytes + rec.hash_off + 8ull * h);
            sorted &= proc.repr.hashes.empty() ||
                      proc.repr.hashes.back() < value;
            proc.repr.add(value);
        }
        if (!sorted) {
            // Only blobs serialized from hand-built, never-finalized
            // indexes land here (the checksum vouches these are the
            // bytes serialize_index wrote); restore the flat-set
            // invariant for them.
            proc.repr.finalize();
        }
        if (rec.summary) {
            proc.repr.bucket_bits = rec.bucket_bits;
            proc.repr.word_offsets = rec.word_offsets;
            proc.repr.summary_built = true;
        }
        if (rec.sketch) {
            const std::uint8_t *sk =
                bytes + dir.sketch_off +
                8ull * strand::kSketchSize * rec.sketch_idx;
            for (unsigned w = 0; w < strand::kSketchSize; ++w) {
                proc.repr.sketch[w] = read_u64_le(sk + 8 * w);
            }
            proc.repr.sketch_built = true;
        }
        index.procs.push_back(std::move(proc));
    }

    if (!dir.ready) {
        index.finalize();
        return index;
    }
    if (!postings_safe(bytes, dir)) {
        return malformed("inconsistent posting shape");
    }
    index.posting_hashes.reserve(dir.ph_count);
    for (std::uint64_t i = 0; i < dir.ph_count; ++i) {
        index.posting_hashes.push_back(
            read_u64_le(bytes + dir.ph_off + 8 * i));
    }
    // Semantic re-check the view path skips: the posting hash union is
    // strictly ascending. The copying parser touches every byte anyway,
    // so it keeps the v2-era strictness.
    for (std::size_t i = 1; i < index.posting_hashes.size(); ++i) {
        if (index.posting_hashes[i] <= index.posting_hashes[i - 1]) {
            return malformed("unsorted posting hashes");
        }
    }
    index.posting_offsets.reserve(dir.po_count);
    for (std::uint64_t i = 0; i < dir.po_count; ++i) {
        index.posting_offsets.push_back(
            read_u32_le(bytes + dir.po_off + 4 * i));
    }
    index.posting_procs.reserve(dir.pp_count);
    for (std::uint64_t i = 0; i < dir.pp_count; ++i) {
        index.posting_procs.push_back(
            read_u32_le(bytes + dir.pp_off + 4 * i));
    }
    rebuild_maps(index);
    index.search_ready = true;
    return index;
}

Result<ExecutableIndex>
parse_index(const ByteBuffer &bytes)
{
    return parse_index(bytes.data(), bytes.size());
}

bool
open_view_supported()
{
#if defined(__BYTE_ORDER__) && defined(__ORDER_LITTLE_ENDIAN__)
    return __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__;
#else
    return false;
#endif
}

Result<ExecutableIndex>
open_index_view(const std::uint8_t *bytes, std::size_t size,
                std::shared_ptr<const void> backing, bool checked)
{
    if (!open_view_supported()) {
        return malformed("view unsupported on this host");
    }
    if (!checked) {
        auto guard = check_container(bytes, size);
        if (!guard.ok()) {
            return Result<ExecutableIndex>::error_from(guard);
        }
    }
    Directory dir;
    bool dir_ok = false;
    auto dir_err = read_directory(bytes, size, dir, &dir_ok);
    if (!dir_ok) {
        return dir_err;
    }
    if (!dir.ready) {
        // A non-finalized blob needs finalize(), which builds vectors;
        // callers fall back to the copying parser.
        return malformed("view requires a search-ready blob");
    }
    if (!postings_safe(bytes, dir)) {
        return malformed("inconsistent posting shape");
    }

    ExecutableIndex index;
    index.arch = dir.arch;
    index.name.assign(
        reinterpret_cast<const char *>(bytes + dir.name_off),
        dir.name_len);
    index.procs.reserve(dir.proc_count);
    for (std::uint32_t i = 0; i < dir.proc_count; ++i) {
        ProcRec rec;
        bool rec_ok = false;
        auto rec_err = read_proc_rec(bytes, dir, i, rec, &rec_ok);
        if (!rec_ok) {
            return rec_err;
        }
        ProcEntry proc;
        proc.entry = rec.entry;
        proc.name.assign(reinterpret_cast<const char *>(
                             bytes + dir.names_off + rec.name_off),
                         rec.name_len);
        proc.repr.hash_view = reinterpret_cast<const std::uint64_t *>(
            bytes + rec.hash_off);
        proc.repr.hash_view_count = rec.hash_count;
        proc.repr.block_count = rec.block_count;
        proc.repr.stmt_count = rec.stmt_count;
        if (rec.summary) {
            proc.repr.bucket_bits = rec.bucket_bits;
            proc.repr.word_offsets = rec.word_offsets;
            proc.repr.summary_built = true;
        }
        if (rec.sketch) {
            const std::uint8_t *sk =
                bytes + dir.sketch_off +
                8ull * strand::kSketchSize * rec.sketch_idx;
            std::memcpy(proc.repr.sketch.data(), sk,
                        8 * strand::kSketchSize);
            proc.repr.sketch_built = true;
        }
        index.procs.push_back(std::move(proc));
    }
    index.posting_hashes_view =
        reinterpret_cast<const std::uint64_t *>(bytes + dir.ph_off);
    index.posting_offsets_view =
        reinterpret_cast<const std::uint32_t *>(bytes + dir.po_off);
    index.posting_procs_view =
        reinterpret_cast<const std::uint32_t *>(bytes + dir.pp_off);
    index.posting_count_view = static_cast<std::uint32_t>(dir.ph_count);
    index.posting_procs_count_view =
        static_cast<std::uint32_t>(dir.pp_count);
    rebuild_maps(index);
    index.search_ready = true;
    index.backing = std::move(backing);
    index.mapped_bytes = size;
    return index;
}

}  // namespace firmup::sim
