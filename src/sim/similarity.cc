#include "sim/similarity.h"

#include <algorithm>
#include <cmath>

namespace firmup::sim {

int
ExecutableIndex::find_by_entry(std::uint64_t addr) const
{
    for (std::size_t i = 0; i < procs.size(); ++i) {
        if (procs[i].entry == addr) {
            return static_cast<int>(i);
        }
    }
    return -1;
}

int
ExecutableIndex::find_by_name(const std::string &proc_name) const
{
    for (std::size_t i = 0; i < procs.size(); ++i) {
        if (procs[i].name == proc_name) {
            return static_cast<int>(i);
        }
    }
    return -1;
}

ExecutableIndex
index_executable(const lifter::LiftedExecutable &lifted,
                 strand::CanonOptions options)
{
    options.sections.text_lo = lifted.text_addr;
    options.sections.text_hi = lifted.text_end;
    options.sections.data_lo = lifted.data_addr;
    options.sections.data_hi = lifted.data_end;

    ExecutableIndex index;
    index.name = lifted.name;
    index.arch = lifted.arch;
    index.procs.reserve(lifted.procs.size());
    for (const auto &[entry, proc] : lifted.procs) {
        ProcEntry pe;
        pe.entry = entry;
        pe.name = proc.name;
        pe.repr = strand::represent_procedure(proc, options);
        index.procs.push_back(std::move(pe));
    }
    return index;
}

int
sim_score(const strand::ProcedureStrands &q,
          const strand::ProcedureStrands &t)
{
    // Iterate the smaller set against the larger.
    const auto &small = q.hashes.size() <= t.hashes.size() ? q : t;
    const auto &large = q.hashes.size() <= t.hashes.size() ? t : q;
    int shared = 0;
    for (std::uint64_t h : small.hashes) {
        shared += large.hashes.contains(h) ? 1 : 0;
    }
    return shared;
}

double
GlobalContext::weight_of(std::uint64_t hash) const
{
    const auto it = weights.find(hash);
    return it != weights.end() ? it->second : default_weight;
}

GlobalContext
train_global_context(const std::vector<const ExecutableIndex *> &sample)
{
    GlobalContext context;
    std::map<std::uint64_t, int> counts;
    int total_procs = 0;
    for (const ExecutableIndex *index : sample) {
        for (const ProcEntry &proc : index->procs) {
            ++total_procs;
            for (std::uint64_t h : proc.repr.hashes) {
                ++counts[h];
            }
        }
    }
    if (total_procs == 0) {
        return context;
    }
    // -log document frequency, as in statistical significance weighting:
    // a strand appearing in every procedure carries no evidence.
    for (const auto &[hash, count] : counts) {
        const double df =
            static_cast<double>(count) / static_cast<double>(total_procs);
        context.weights[hash] = std::max(0.05, -std::log(df));
    }
    // Unseen strands are maximally surprising.
    context.default_weight = -std::log(0.5 / total_procs);
    return context;
}

double
weighted_sim(const strand::ProcedureStrands &q,
             const strand::ProcedureStrands &t,
             const GlobalContext &context)
{
    const auto &small = q.hashes.size() <= t.hashes.size() ? q : t;
    const auto &large = q.hashes.size() <= t.hashes.size() ? t : q;
    double score = 0.0;
    for (std::uint64_t h : small.hashes) {
        if (large.hashes.contains(h)) {
            score += context.weight_of(h);
        }
    }
    return score;
}

}  // namespace firmup::sim
