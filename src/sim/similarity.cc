#include "sim/similarity.h"

#include <algorithm>
#include <cmath>

#include "support/threadpool.h"
#include "support/trace.h"

namespace firmup::sim {

namespace {

const trace::Counter c_finalize_calls("index.finalize_calls");
const trace::Counter c_posting_hashes("index.posting_hashes");
const trace::Counter c_posting_incidences("index.posting_incidences");
const trace::Counter c_indexed_procs("index.procedures");

/**
 * First position in [first, last) not less than @p key, found by
 * exponential (galloping) probing followed by a bounded binary search.
 * Beats std::lower_bound when the answer is near the front — which it
 * is when intersecting a small sorted set against a huge one.
 */
const std::uint64_t *
gallop_lower_bound(const std::uint64_t *first, const std::uint64_t *last,
                   std::uint64_t key)
{
    const std::size_t n = static_cast<std::size_t>(last - first);
    std::size_t bound = 1;
    while (bound < n && first[bound] < key) {
        bound <<= 1;
    }
    return std::lower_bound(first + (bound >> 1),
                            first + std::min(bound + 1, n), key);
}

/**
 * Visit every hash shared by two flat strand sets, in ascending hash
 * order (the order matters: weighted_sim must accumulate bit-identically
 * no matter which side is smaller). Linear two-pointer merge for
 * comparable sizes, galloping from the smaller side when lopsided.
 */
template <typename OnShared>
void
for_each_shared(const std::vector<std::uint64_t> &a,
                const std::vector<std::uint64_t> &b, OnShared &&on)
{
    const std::vector<std::uint64_t> *small = &a;
    const std::vector<std::uint64_t> *large = &b;
    if (small->size() > large->size()) {
        std::swap(small, large);
    }
    if (small->empty()) {
        return;
    }
    const std::uint64_t *s = small->data();
    const std::uint64_t *se = s + small->size();
    const std::uint64_t *l = large->data();
    const std::uint64_t *le = l + large->size();
    constexpr std::size_t kGallopRatio = 16;
    if (large->size() / small->size() >= kGallopRatio) {
        for (; s != se && l != le; ++s) {
            l = gallop_lower_bound(l, le, *s);
            if (l != le && *l == *s) {
                on(*s);
                ++l;
            }
        }
        return;
    }
    while (s != se && l != le) {
        if (*s < *l) {
            ++s;
        } else if (*l < *s) {
            ++l;
        } else {
            on(*s);
            ++s;
            ++l;
        }
    }
}

}  // namespace

void
ExecutableIndex::finalize()
{
    entry_map.clear();
    name_map.clear();
    entry_map.reserve(procs.size());
    name_map.reserve(procs.size());
    std::size_t total_hashes = 0;
    for (std::size_t i = 0; i < procs.size(); ++i) {
        // First occurrence wins, matching the linear-scan semantics.
        entry_map.emplace(procs[i].entry, static_cast<int>(i));
        name_map.emplace(procs[i].name, static_cast<int>(i));
        total_hashes += procs[i].repr.hashes.size();
    }
    // CSR inverted index: one (hash, proc) incidence per strand, sorted
    // by hash then procedure so every posting list is ascending.
    std::vector<std::pair<std::uint64_t, std::uint32_t>> incidences;
    incidences.reserve(total_hashes);
    for (std::size_t i = 0; i < procs.size(); ++i) {
        for (std::uint64_t h : procs[i].repr.hashes) {
            incidences.emplace_back(h, static_cast<std::uint32_t>(i));
        }
    }
    std::sort(incidences.begin(), incidences.end());
    posting_hashes.clear();
    posting_offsets.clear();
    posting_procs.clear();
    posting_procs.reserve(incidences.size());
    for (const auto &[hash, proc] : incidences) {
        if (posting_hashes.empty() || posting_hashes.back() != hash) {
            posting_hashes.push_back(hash);
            posting_offsets.push_back(
                static_cast<std::uint32_t>(posting_procs.size()));
        }
        posting_procs.push_back(proc);
    }
    posting_offsets.push_back(
        static_cast<std::uint32_t>(posting_procs.size()));
    search_ready = true;
    c_finalize_calls.add();
    c_posting_hashes.add(posting_hashes.size());
    c_posting_incidences.add(posting_procs.size());
    c_indexed_procs.add(procs.size());
}

int
ExecutableIndex::find_by_entry(std::uint64_t addr) const
{
    if (search_ready) {
        const auto it = entry_map.find(addr);
        return it != entry_map.end() ? it->second : -1;
    }
    for (std::size_t i = 0; i < procs.size(); ++i) {
        if (procs[i].entry == addr) {
            return static_cast<int>(i);
        }
    }
    return -1;
}

int
ExecutableIndex::find_by_name(const std::string &proc_name) const
{
    if (search_ready) {
        const auto it = name_map.find(proc_name);
        return it != name_map.end() ? it->second : -1;
    }
    for (std::size_t i = 0; i < procs.size(); ++i) {
        if (procs[i].name == proc_name) {
            return static_cast<int>(i);
        }
    }
    return -1;
}

ExecutableIndex
index_executable(const lifter::LiftedExecutable &lifted,
                 strand::CanonOptions options, unsigned threads)
{
    const trace::TraceSpan span("index", lifted.name);
    options.sections.text_lo = lifted.text_addr;
    options.sections.text_hi = lifted.text_end;
    options.sections.data_lo = lifted.data_addr;
    options.sections.data_hi = lifted.data_end;
    // Memo entries never cross ISAs, even though µIR statements alone
    // already determine the canonical form (see CanonOptions).
    options.memo_context = static_cast<std::uint64_t>(lifted.arch);

    ExecutableIndex index;
    index.name = lifted.name;
    index.arch = lifted.arch;
    index.procs.resize(lifted.procs.size());
    std::vector<const ir::Procedure *> order;
    order.reserve(lifted.procs.size());
    for (const auto &[entry, proc] : lifted.procs) {
        const std::size_t slot = order.size();
        order.push_back(&proc);
        index.procs[slot].entry = entry;
        index.procs[slot].name = proc.name;
    }
    const auto represent_slot = [&](std::size_t slot) {
        index.procs[slot].repr =
            strand::represent_procedure(*order[slot], options);
    };
    // Procedures are independent units of work; each writes only its
    // own pre-sized slot, so any schedule yields the same index. Small
    // executables (fuzz mutants, single-proc fixtures) stay inline —
    // a pool costs more than it saves there.
    constexpr std::size_t kParallelThreshold = 4;
    if (threads > 1 && order.size() >= kParallelThreshold) {
        ThreadPool::parallel_for(threads, order.size(), represent_slot);
    } else {
        for (std::size_t slot = 0; slot < order.size(); ++slot) {
            represent_slot(slot);
        }
    }
    index.finalize();
    return index;
}

int
sim_score(const strand::ProcedureStrands &q,
          const strand::ProcedureStrands &t)
{
    int shared = 0;
    for_each_shared(q.hashes, t.hashes,
                    [&shared](std::uint64_t) { ++shared; });
    return shared;
}

std::vector<Candidate>
shared_candidates(const ExecutableIndex &T,
                  const strand::ProcedureStrands &q,
                  ScoringStats *stats)
{
    std::vector<Candidate> out;
    if (T.procs.empty() || q.hashes.empty()) {
        return out;
    }
    ScoringStats local;
    if (!T.search_ready) {
        // Dense fallback for hand-assembled indexes: score every pair.
        for (std::size_t i = 0; i < T.procs.size(); ++i) {
            const int s = sim_score(q, T.procs[i].repr);
            ++local.pairs_scored;
            local.elem_ops +=
                q.hashes.size() + T.procs[i].repr.hashes.size();
            if (s > 0) {
                out.push_back({static_cast<int>(i), s});
            }
        }
        if (stats != nullptr) {
            stats->pairs_scored += local.pairs_scored;
            stats->elem_ops += local.elem_ops;
        }
        return out;
    }
    // Accumulate shared counts over the posting lists of q's strands:
    // only procedures sharing at least one strand are ever touched.
    std::vector<int> counts(T.procs.size(), 0);
    std::vector<std::uint32_t> touched;
    const std::uint64_t *base = T.posting_hashes.data();
    const std::uint64_t *ph = base;
    const std::uint64_t *pe = base + T.posting_hashes.size();
    for (std::uint64_t h : q.hashes) {
        ++local.elem_ops;  // one probe per query hash
        ph = gallop_lower_bound(ph, pe, h);
        if (ph == pe) {
            break;
        }
        if (*ph != h) {
            continue;
        }
        const std::size_t row = static_cast<std::size_t>(ph - base);
        const std::uint32_t lo = T.posting_offsets[row];
        const std::uint32_t hi = T.posting_offsets[row + 1];
        for (std::uint32_t j = lo; j < hi; ++j) {
            const std::uint32_t proc = T.posting_procs[j];
            ++local.elem_ops;  // one accumulation per incidence
            if (counts[proc]++ == 0) {
                touched.push_back(proc);
                ++local.pairs_scored;
            }
        }
    }
    std::sort(touched.begin(), touched.end());
    out.reserve(touched.size());
    for (std::uint32_t proc : touched) {
        out.push_back({static_cast<int>(proc), counts[proc]});
    }
    if (stats != nullptr) {
        stats->pairs_scored += local.pairs_scored;
        stats->elem_ops += local.elem_ops;
    }
    return out;
}

double
GlobalContext::weight_of(std::uint64_t hash) const
{
    const auto it = weights.find(hash);
    return it != weights.end() ? it->second : default_weight;
}

GlobalContext
train_global_context(const std::vector<const ExecutableIndex *> &sample)
{
    GlobalContext context;
    std::map<std::uint64_t, int> counts;
    int total_procs = 0;
    for (const ExecutableIndex *index : sample) {
        for (const ProcEntry &proc : index->procs) {
            ++total_procs;
            for (std::uint64_t h : proc.repr.hashes) {
                ++counts[h];
            }
        }
    }
    if (total_procs == 0) {
        return context;
    }
    // -log document frequency, as in statistical significance weighting:
    // a strand appearing in every procedure carries no evidence.
    for (const auto &[hash, count] : counts) {
        const double df =
            static_cast<double>(count) / static_cast<double>(total_procs);
        context.weights[hash] = std::max(0.05, -std::log(df));
    }
    // Unseen strands are maximally surprising.
    context.default_weight = -std::log(0.5 / total_procs);
    return context;
}

double
weighted_sim(const strand::ProcedureStrands &q,
             const strand::ProcedureStrands &t,
             const GlobalContext &context)
{
    double score = 0.0;
    for_each_shared(q.hashes, t.hashes, [&](std::uint64_t h) {
        score += context.weight_of(h);
    });
    return score;
}

}  // namespace firmup::sim
