#include "sim/similarity.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <cstring>

#if defined(__SSE2__)
#include <emmintrin.h>
#endif
#if defined(__aarch64__) || defined(__ARM_NEON)
#include <arm_neon.h>
#endif

#include "support/threadpool.h"
#include "support/trace.h"

namespace firmup::sim {

namespace {

const trace::Counter c_finalize_calls("index.finalize_calls");
const trace::Counter c_posting_hashes("index.posting_hashes");
const trace::Counter c_posting_incidences("index.posting_incidences");
const trace::Counter c_indexed_procs("index.procedures");
const trace::Counter c_cand_exact("retrieval.candidates_exact");
const trace::Counter c_cand_lsh("retrieval.candidates_lsh");
const trace::Counter c_lsh_probes("retrieval.lsh_probes");
const trace::Counter c_sketch_micros("retrieval.sketch_micros");

/**
 * Always-on retrieval accounting (the trace counters above are gated on
 * the trace level; ScanHealth needs these regardless). Relaxed atomics:
 * monotonic totals, no ordering required.
 */
struct RetrievalAtomics
{
    std::atomic<std::uint64_t> probes_exact{0};
    std::atomic<std::uint64_t> candidates_exact{0};
    std::atomic<std::uint64_t> probes_lsh{0};
    std::atomic<std::uint64_t> candidates_lsh{0};
    std::atomic<std::uint64_t> lsh_exact_work{0};
    std::atomic<std::uint64_t> sketch_micros{0};
};

RetrievalAtomics g_retrieval;

/** Build @p repr's MinHash sketch, charging the wall time spent. */
void
build_sketch_timed(strand::ProcedureStrands &repr)
{
    const auto t0 = std::chrono::steady_clock::now();
    repr.build_sketch();
    const auto micros =
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - t0)
            .count();
    g_retrieval.sketch_micros.fetch_add(
        static_cast<std::uint64_t>(micros), std::memory_order_relaxed);
    c_sketch_micros.add(static_cast<std::uint64_t>(micros));
}

/**
 * First position in [first, last) not less than @p key, found by
 * exponential (galloping) probing followed by a bounded binary search.
 * Beats std::lower_bound when the answer is near the front — which it
 * is when intersecting a small sorted set against a huge one.
 */
const std::uint64_t *
gallop_lower_bound(const std::uint64_t *first, const std::uint64_t *last,
                   std::uint64_t key)
{
    const std::size_t n = static_cast<std::size_t>(last - first);
    std::size_t bound = 1;
    while (bound < n && first[bound] < key) {
        bound <<= 1;
    }
    return std::lower_bound(first + (bound >> 1),
                            first + std::min(bound + 1, n), key);
}

/**
 * Visit every hash shared by two flat strand sets, in ascending hash
 * order (the order matters: weighted_sim must accumulate bit-identically
 * no matter which side is smaller). Linear two-pointer merge for
 * comparable sizes, galloping from the smaller side when lopsided.
 */
template <typename OnShared>
void
for_each_shared(const std::uint64_t *a, std::size_t an,
                const std::uint64_t *b, std::size_t bn, OnShared &&on)
{
    const std::uint64_t *sp = a;
    std::size_t sn = an;
    const std::uint64_t *lp = b;
    std::size_t ln = bn;
    if (sn > ln) {
        std::swap(sp, lp);
        std::swap(sn, ln);
    }
    if (sn == 0) {
        return;
    }
    const std::uint64_t *s = sp;
    const std::uint64_t *se = s + sn;
    const std::uint64_t *l = lp;
    const std::uint64_t *le = l + ln;
    constexpr std::size_t kGallopRatio = 16;
    if (ln / sn >= kGallopRatio) {
        for (; s != se && l != le; ++s) {
            l = gallop_lower_bound(l, le, *s);
            if (l != le && *l == *s) {
                on(*s);
                ++l;
            }
        }
        return;
    }
    while (s != se && l != le) {
        if (*s < *l) {
            ++s;
        } else if (*l < *s) {
            ++l;
        } else {
            on(*s);
            ++s;
            ++l;
        }
    }
}

// ---- tiered intersection kernel ----------------------------------------
//
// Counting-only intersection (sim_score) does not need the ascending
// visit order for_each_shared guarantees, which frees the inner loops to
// use branchless and SIMD block compares. Every path below counts the
// exact set intersection; the property tests sweep all of them against
// the std::set reference and against sim_score_merge.

constexpr std::size_t kGallopRatio = 16;
/** Galloping binary searches stop at this window and scan it linearly. */
constexpr std::size_t kProbeWindow = 8;

#if defined(__SSE2__)
/** 64-bit lane equality out of SSE2 (cmpeq_epi64 needs SSE4.1). */
inline __m128i
eq_epi64_sse2(__m128i a, __m128i b)
{
    const __m128i eq32 = _mm_cmpeq_epi32(a, b);
    return _mm_and_si128(
        eq32, _mm_shuffle_epi32(eq32, _MM_SHUFFLE(2, 3, 0, 1)));
}
#endif

int
merge_count_scalar(const std::uint64_t *a, const std::uint64_t *ae,
                   const std::uint64_t *b, const std::uint64_t *be)
{
    // Branchless two-pointer merge: the three-way compare of the classic
    // merge mispredicts on random sets; conditional increments do not.
    int shared = 0;
    while (a < ae && b < be) {
        const std::uint64_t x = *a;
        const std::uint64_t y = *b;
        shared += x == y;
        a += x <= y;
        b += y <= x;
    }
    return shared;
}

#if defined(__SSE2__)
int
merge_count_sse2(const std::uint64_t *a, const std::uint64_t *ae,
                 const std::uint64_t *b, const std::uint64_t *be)
{
    // 2x2 block merge: compare all four (a, b) pairings of two-element
    // blocks at once, then advance whichever block's maximum is not
    // larger. Unique sorted inputs mean each element matches at most
    // once across the whole sweep, so per-lane indicators sum exactly.
    int shared = 0;
    while (ae - a >= 2 && be - b >= 2) {
        const __m128i va =
            _mm_loadu_si128(reinterpret_cast<const __m128i *>(a));
        const __m128i vb =
            _mm_loadu_si128(reinterpret_cast<const __m128i *>(b));
        const __m128i vb_swap =
            _mm_shuffle_epi32(vb, _MM_SHUFFLE(1, 0, 3, 2));
        const __m128i hit = _mm_or_si128(eq_epi64_sse2(va, vb),
                                         eq_epi64_sse2(va, vb_swap));
        const int mask = _mm_movemask_epi8(hit);
        shared += ((mask & 0x00ff) != 0) + ((mask & 0xff00) != 0);
        const std::uint64_t amax = a[1];
        const std::uint64_t bmax = b[1];
        a += amax <= bmax ? 2 : 0;
        b += bmax <= amax ? 2 : 0;
    }
    return shared + merge_count_scalar(a, ae, b, be);
}
#endif

#if defined(__aarch64__) || defined(__ARM_NEON)
int
merge_count_neon(const std::uint64_t *a, const std::uint64_t *ae,
                 const std::uint64_t *b, const std::uint64_t *be)
{
    int shared = 0;
    while (ae - a >= 2 && be - b >= 2) {
        const uint64x2_t va = vld1q_u64(a);
        const uint64x2_t vb = vld1q_u64(b);
        const uint64x2_t vb_swap = vextq_u64(vb, vb, 1);
        const uint64x2_t hit =
            vorrq_u64(vceqq_u64(va, vb), vceqq_u64(va, vb_swap));
        shared += static_cast<int>(vgetq_lane_u64(hit, 0) & 1) +
                  static_cast<int>(vgetq_lane_u64(hit, 1) & 1);
        const std::uint64_t amax = a[1];
        const std::uint64_t bmax = b[1];
        a += amax <= bmax ? 2 : 0;
        b += bmax <= amax ? 2 : 0;
    }
    return shared + merge_count_scalar(a, ae, b, be);
}
#endif

int
merge_count(const std::uint64_t *a, const std::uint64_t *ae,
            const std::uint64_t *b, const std::uint64_t *be, SimdTier tier)
{
#if defined(__SSE2__)
    if (tier == SimdTier::Sse2) {
        return merge_count_sse2(a, ae, b, be);
    }
#endif
#if defined(__aarch64__) || defined(__ARM_NEON)
    if (tier == SimdTier::Neon) {
        return merge_count_neon(a, ae, b, be);
    }
#endif
    (void)tier;
    return merge_count_scalar(a, ae, b, be);
}

/** Is @p key among the @p n elements at @p p? (final gallop window) */
bool
window_contains(const std::uint64_t *p, std::size_t n, std::uint64_t key,
                SimdTier tier)
{
#if defined(__SSE2__)
    if (tier == SimdTier::Sse2) {
        const __m128i k =
            _mm_set1_epi64x(static_cast<long long>(key));
        __m128i acc = _mm_setzero_si128();
        std::size_t i = 0;
        for (; i + 2 <= n; i += 2) {
            const __m128i v = _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(p + i));
            acc = _mm_or_si128(acc, eq_epi64_sse2(v, k));
        }
        bool found = _mm_movemask_epi8(acc) != 0;
        if (i < n) {
            found |= p[i] == key;
        }
        return found;
    }
#endif
#if defined(__aarch64__) || defined(__ARM_NEON)
    if (tier == SimdTier::Neon) {
        const uint64x2_t k = vdupq_n_u64(key);
        uint64x2_t acc = vdupq_n_u64(0);
        std::size_t i = 0;
        for (; i + 2 <= n; i += 2) {
            acc = vorrq_u64(acc, vceqq_u64(vld1q_u64(p + i), k));
        }
        bool found =
            (vgetq_lane_u64(acc, 0) | vgetq_lane_u64(acc, 1)) != 0;
        if (i < n) {
            found |= p[i] == key;
        }
        return found;
    }
#endif
    (void)tier;
    bool found = false;
    for (std::size_t i = 0; i < n; ++i) {
        found |= p[i] == key;
    }
    return found;
}

/**
 * Lopsided intersection: gallop each small-side key into the large side,
 * bounding the binary search at kProbeWindow elements and scanning the
 * window with the tier's equality compare (the last few unpredictable
 * binary-search branches cost more than a vector sweep).
 */
int
gallop_count(const std::uint64_t *s, const std::uint64_t *se,
             const std::uint64_t *l, const std::uint64_t *le,
             SimdTier tier)
{
    int shared = 0;
    for (; s != se && l != le; ++s) {
        const std::uint64_t key = *s;
        const std::size_t n = static_cast<std::size_t>(le - l);
        std::size_t bound = 1;
        while (bound < n && l[bound] < key) {
            bound <<= 1;
        }
        // Invariant: any occurrence of key lies in [lo, hi).
        std::size_t lo = bound >> 1;
        std::size_t hi = std::min(bound + 1, n);
        bool found = false;
        while (hi - lo > kProbeWindow) {
            const std::size_t mid = lo + (hi - lo) / 2;
            if (l[mid] < key) {
                lo = mid + 1;
            } else if (l[mid] > key) {
                hi = mid;
            } else {
                found = true;
                break;
            }
        }
        if (!found) {
            found = window_contains(l + lo, hi - lo, key, tier);
        }
        shared += found ? 1 : 0;
        l += lo;  // monotone: everything below lo is < key < next key
    }
    return shared;
}

bool
tier_compiled_in(SimdTier tier)
{
    switch (tier) {
    case SimdTier::Scalar:
        return true;
    case SimdTier::Sse2:
#if defined(__SSE2__)
        return true;
#else
        return false;
#endif
    case SimdTier::Neon:
#if defined(__aarch64__) || defined(__ARM_NEON)
        return true;
#else
        return false;
#endif
    }
    return false;
}

SimdTier
detect_tier()
{
    // FIRMUP_SIMD pins the instruction-set tier for ops and the
    // determinism sweeps; unset picks the best this binary carries.
    if (const char *env = std::getenv("FIRMUP_SIMD")) {
        if (std::strcmp(env, "scalar") == 0) {
            return SimdTier::Scalar;
        }
        if (std::strcmp(env, "sse2") == 0 &&
            tier_compiled_in(SimdTier::Sse2)) {
            return SimdTier::Sse2;
        }
        if (std::strcmp(env, "neon") == 0 &&
            tier_compiled_in(SimdTier::Neon)) {
            return SimdTier::Neon;
        }
    }
    if (tier_compiled_in(SimdTier::Sse2)) {
        return SimdTier::Sse2;
    }
    if (tier_compiled_in(SimdTier::Neon)) {
        return SimdTier::Neon;
    }
    return SimdTier::Scalar;
}

std::atomic<SimdTier> &
tier_state()
{
    static std::atomic<SimdTier> tier{detect_tier()};
    return tier;
}

}  // namespace

SimdTier
simd_tier()
{
    return tier_state().load(std::memory_order_relaxed);
}

void
set_simd_tier(SimdTier tier)
{
    if (!tier_compiled_in(tier)) {
        tier = SimdTier::Scalar;
    }
    tier_state().store(tier, std::memory_order_relaxed);
}

bool
simd_tier_available(SimdTier tier)
{
    return tier_compiled_in(tier);
}

const char *
simd_tier_name(SimdTier tier)
{
    switch (tier) {
    case SimdTier::Scalar:
        return "scalar";
    case SimdTier::Sse2:
        return "sse2";
    case SimdTier::Neon:
        return "neon";
    }
    return "scalar";
}

void
ExecutableIndex::finalize()
{
    entry_map.clear();
    name_map.clear();
    entry_map.reserve(procs.size());
    name_map.reserve(procs.size());
    std::size_t total_hashes = 0;
    for (std::size_t i = 0; i < procs.size(); ++i) {
        // First occurrence wins, matching the linear-scan semantics.
        entry_map.emplace(procs[i].entry, static_cast<int>(i));
        name_map.emplace(procs[i].name, static_cast<int>(i));
        total_hashes += procs[i].repr.hash_count();
    }
    // CSR inverted index: one (hash, proc) incidence per strand, sorted
    // by hash then procedure so every posting list is ascending.
    std::vector<std::pair<std::uint64_t, std::uint32_t>> incidences;
    incidences.reserve(total_hashes);
    for (std::size_t i = 0; i < procs.size(); ++i) {
        const std::uint64_t *h = procs[i].repr.hash_data();
        const std::uint64_t *he = h + procs[i].repr.hash_count();
        for (; h != he; ++h) {
            incidences.emplace_back(*h, static_cast<std::uint32_t>(i));
        }
    }
    std::sort(incidences.begin(), incidences.end());
    // finalize() rebuilds owning posting vectors; if this index started
    // as a blob view, the rebuilt vectors supersede the mapped arrays.
    posting_hashes_view = nullptr;
    posting_offsets_view = nullptr;
    posting_procs_view = nullptr;
    posting_count_view = 0;
    posting_procs_count_view = 0;
    posting_hashes.clear();
    posting_offsets.clear();
    posting_procs.clear();
    posting_procs.reserve(incidences.size());
    for (const auto &[hash, proc] : incidences) {
        if (posting_hashes.empty() || posting_hashes.back() != hash) {
            posting_hashes.push_back(hash);
            posting_offsets.push_back(
                static_cast<std::uint32_t>(posting_procs.size()));
        }
        posting_procs.push_back(proc);
    }
    posting_offsets.push_back(
        static_cast<std::uint32_t>(posting_procs.size()));
    search_ready = true;
    // Backstop for sketches the indexing fan-out (or a FWIX v4 load)
    // did not already provide, so every finalized index can serve the
    // LSH retrieval path.
    for (ProcEntry &proc : procs) {
        if (!proc.repr.sketch_built) {
            build_sketch_timed(proc.repr);
        }
    }
    c_finalize_calls.add();
    c_posting_hashes.add(posting_hashes.size());
    c_posting_incidences.add(posting_procs.size());
    c_indexed_procs.add(procs.size());
}

void
ExecutableIndex::build_lsh(unsigned bands, unsigned rows)
{
    bands = std::min<unsigned>(std::max(bands, 1u),
                               static_cast<unsigned>(strand::kSketchSize));
    rows = std::min<unsigned>(
        std::max(rows, 1u),
        static_cast<unsigned>(strand::kSketchSize) / bands);
    if (lsh_bands == bands && lsh_rows == rows) {
        return;
    }
    lsh_keys.clear();
    lsh_procs.clear();
    lsh_offsets.clear();
    lsh_offsets.reserve(bands + 1);
    std::vector<std::pair<std::uint64_t, std::uint32_t>> segment;
    for (unsigned b = 0; b < bands; ++b) {
        lsh_offsets.push_back(static_cast<std::uint32_t>(lsh_keys.size()));
        segment.clear();
        for (std::size_t i = 0; i < procs.size(); ++i) {
            const strand::ProcedureStrands &repr = procs[i].repr;
            if (!repr.sketch_built || repr.hash_empty()) {
                continue;
            }
            segment.emplace_back(strand::band_key(repr.sketch, b, rows),
                                 static_cast<std::uint32_t>(i));
        }
        std::sort(segment.begin(), segment.end());
        for (const auto &[key, proc] : segment) {
            lsh_keys.push_back(key);
            lsh_procs.push_back(proc);
        }
    }
    lsh_offsets.push_back(static_cast<std::uint32_t>(lsh_keys.size()));
    lsh_bands = bands;
    lsh_rows = rows;
}

int
ExecutableIndex::find_by_entry(std::uint64_t addr) const
{
    if (search_ready) {
        const auto it = entry_map.find(addr);
        return it != entry_map.end() ? it->second : -1;
    }
    for (std::size_t i = 0; i < procs.size(); ++i) {
        if (procs[i].entry == addr) {
            return static_cast<int>(i);
        }
    }
    return -1;
}

int
ExecutableIndex::find_by_name(const std::string &proc_name) const
{
    if (search_ready) {
        const auto it = name_map.find(proc_name);
        return it != name_map.end() ? it->second : -1;
    }
    for (std::size_t i = 0; i < procs.size(); ++i) {
        if (procs[i].name == proc_name) {
            return static_cast<int>(i);
        }
    }
    return -1;
}

std::size_t
ExecutableIndex::memory_bytes() const
{
    // Approximate accounting for the resident-cache byte budget: the
    // big arenas plus the per-procedure fixed state. Map/table overhead
    // is deliberately ignored — the budget is a ballast figure, not an
    // allocator audit.
    std::size_t bytes = sizeof(*this);
    bytes += name.size();
    for (const ProcEntry &proc : procs) {
        bytes += sizeof(ProcEntry);
        bytes += proc.name.size();
        bytes += proc.repr.hashes.size() * sizeof(std::uint64_t);
    }
    // A view-mode index charges the whole mapped blob; its owning
    // vectors are empty, so the two terms never double-count (and a
    // mixed state — a view later finalize()d — charges both, which is
    // exactly what it holds).
    bytes += mapped_bytes;
    bytes += posting_hashes.size() * sizeof(std::uint64_t);
    bytes += posting_offsets.size() * sizeof(std::uint32_t);
    bytes += posting_procs.size() * sizeof(std::uint32_t);
    bytes += lsh_keys.size() * sizeof(std::uint64_t);
    bytes += lsh_procs.size() * sizeof(std::uint32_t);
    bytes += lsh_offsets.size() * sizeof(std::uint32_t);
    // entry_map / name_map: one entry per procedure each, roughly.
    bytes += procs.size() * 2 * sizeof(std::uint64_t) * 2;
    return bytes;
}

ExecutableIndex
index_executable(const lifter::LiftedExecutable &lifted,
                 strand::CanonOptions options, unsigned threads)
{
    const trace::TraceSpan span("index", lifted.name);
    options.sections.text_lo = lifted.text_addr;
    options.sections.text_hi = lifted.text_end;
    options.sections.data_lo = lifted.data_addr;
    options.sections.data_hi = lifted.data_end;
    // Memo entries never cross ISAs, even though µIR statements alone
    // already determine the canonical form (see CanonOptions).
    options.memo_context = static_cast<std::uint64_t>(lifted.arch);

    ExecutableIndex index;
    index.name = lifted.name;
    index.arch = lifted.arch;
    index.procs.resize(lifted.procs.size());
    std::vector<const ir::Procedure *> order;
    order.reserve(lifted.procs.size());
    for (const auto &[entry, proc] : lifted.procs) {
        const std::size_t slot = order.size();
        order.push_back(&proc);
        index.procs[slot].entry = entry;
        index.procs[slot].name = proc.name;
    }
    const auto represent_slot = [&](std::size_t slot) {
        index.procs[slot].repr =
            strand::represent_procedure(*order[slot], options);
        // Sketch here, not in finalize(): this closure is what the
        // ThreadPool fans out, so sketching rides the same parallelism
        // as canonicalization.
        build_sketch_timed(index.procs[slot].repr);
    };
    // Procedures are independent units of work; each writes only its
    // own pre-sized slot, so any schedule yields the same index. Small
    // executables (fuzz mutants, single-proc fixtures) stay inline —
    // a pool costs more than it saves there.
    constexpr std::size_t kParallelThreshold = 4;
    if (threads > 1 && order.size() >= kParallelThreshold) {
        ThreadPool::parallel_for(threads, order.size(), represent_slot);
    } else {
        for (std::size_t slot = 0; slot < order.size(); ++slot) {
            represent_slot(slot);
        }
    }
    index.finalize();
    return index;
}

int
sim_score(const strand::ProcedureStrands &q,
          const strand::ProcedureStrands &t)
{
    if (q.hash_empty() || t.hash_empty()) {
        return 0;
    }
    const SimdTier tier = simd_tier();
    const strand::ProcedureStrands *small = &q;
    const strand::ProcedureStrands *large = &t;
    if (small->hash_count() > large->hash_count()) {
        std::swap(small, large);
    }
    const bool lopsided =
        large->hash_count() / small->hash_count() >= kGallopRatio;
    if (q.summary_built && t.summary_built) {
        const std::uint64_t common[4] = {
            q.bucket_bits[0] & t.bucket_bits[0],
            q.bucket_bits[1] & t.bucket_bits[1],
            q.bucket_bits[2] & t.bucket_bits[2],
            q.bucket_bits[3] & t.bucket_bits[3],
        };
        if ((common[0] | common[1] | common[2] | common[3]) == 0) {
            return 0;  // disjoint bucket occupancy: exact zero
        }
        if (lopsided) {
            return gallop_count(
                small->hash_data(),
                small->hash_data() + small->hash_count(),
                large->hash_data(),
                large->hash_data() + large->hash_count(), tier);
        }
        // Comparable sizes: merge the matching per-word spans, skipping
        // whole spans whose common occupancy is zero.
        int shared = 0;
        for (unsigned w = 0; w < 4; ++w) {
            if (common[w] == 0) {
                continue;
            }
            shared += merge_count(
                q.hash_data() + q.word_offsets[w],
                q.hash_data() + q.word_offsets[w + 1],
                t.hash_data() + t.word_offsets[w],
                t.hash_data() + t.word_offsets[w + 1], tier);
        }
        return shared;
    }
    // Hand-assembled sets without summaries: same kernels, full spans.
    if (lopsided) {
        return gallop_count(small->hash_data(),
                            small->hash_data() + small->hash_count(),
                            large->hash_data(),
                            large->hash_data() + large->hash_count(),
                            tier);
    }
    return merge_count(q.hash_data(),
                       q.hash_data() + q.hash_count(),
                       t.hash_data(), t.hash_data() + t.hash_count(),
                       tier);
}

int
sim_score_merge(const strand::ProcedureStrands &q,
                const strand::ProcedureStrands &t)
{
    int shared = 0;
    for_each_shared(q.hash_data(), q.hash_count(), t.hash_data(),
                    t.hash_count(), [&shared](std::uint64_t) { ++shared; });
    return shared;
}

// ---- query-amortized probe kernel --------------------------------------

namespace {

/** Buckets stop doubling here; beyond it the probe falls back to merge. */
constexpr std::uint32_t kMaxBuckets = 1u << 15;

/**
 * Exact membership of @p h in its 8-slot bucket. Empty slots hold zero
 * and are masked off by @p valid, so a zero-valued hash can never
 * produce a phantom match.
 */
inline int
bucket_contains(const std::uint64_t *slots, std::uint8_t valid,
                std::uint64_t h, SimdTier tier)
{
#if defined(__SSE2__)
    if (tier == SimdTier::Sse2) {
        const __m128i key = _mm_set1_epi64x(static_cast<long long>(h));
        const __m128i *s = reinterpret_cast<const __m128i *>(slots);
        const __m128i e0 = eq_epi64_sse2(_mm_loadu_si128(s + 0), key);
        const __m128i e1 = eq_epi64_sse2(_mm_loadu_si128(s + 1), key);
        const __m128i e2 = eq_epi64_sse2(_mm_loadu_si128(s + 2), key);
        const __m128i e3 = eq_epi64_sse2(_mm_loadu_si128(s + 3), key);
        const int hits =
            _mm_movemask_pd(_mm_castsi128_pd(e0)) |
            (_mm_movemask_pd(_mm_castsi128_pd(e1)) << 2) |
            (_mm_movemask_pd(_mm_castsi128_pd(e2)) << 4) |
            (_mm_movemask_pd(_mm_castsi128_pd(e3)) << 6);
        return (hits & valid) != 0 ? 1 : 0;
    }
#endif
#if defined(__aarch64__) || defined(__ARM_NEON)
    if (tier == SimdTier::Neon) {
        const uint64x2_t key = vdupq_n_u64(h);
        const uint64x2_t e0 = vceqq_u64(vld1q_u64(slots + 0), key);
        const uint64x2_t e1 = vceqq_u64(vld1q_u64(slots + 2), key);
        const uint64x2_t e2 = vceqq_u64(vld1q_u64(slots + 4), key);
        const uint64x2_t e3 = vceqq_u64(vld1q_u64(slots + 6), key);
        const int hits =
            static_cast<int>(vgetq_lane_u64(e0, 0) & 1) |
            static_cast<int>(vgetq_lane_u64(e0, 1) & 2) |
            static_cast<int>((vgetq_lane_u64(e1, 0) & 1) << 2) |
            static_cast<int>((vgetq_lane_u64(e1, 1) & 2) << 2) |
            static_cast<int>((vgetq_lane_u64(e2, 0) & 1) << 4) |
            static_cast<int>((vgetq_lane_u64(e2, 1) & 2) << 4) |
            static_cast<int>((vgetq_lane_u64(e3, 0) & 1) << 6) |
            static_cast<int>((vgetq_lane_u64(e3, 1) & 2) << 6);
        return (hits & valid) != 0 ? 1 : 0;
    }
#endif
    (void)tier;
    int found = 0;
    for (unsigned s = 0; s < 8; ++s) {
        found |= ((valid >> s) & 1) & (slots[s] == h ? 1 : 0);
    }
    return found;
}

/**
 * Filter pass: test every target hash against the query bitmap,
 * appending survivors to @p cand branchlessly (store-then-advance; a
 * mispredicting per-element branch would cost more than the dead
 * stores). Returns the candidate count.
 */
std::size_t
probe_filter(const std::uint64_t *bm, const std::uint64_t *p,
             std::size_t n, std::uint64_t *cand)
{
    std::size_t c = 0;
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const std::uint64_t h0 = p[i];
        const std::uint64_t h1 = p[i + 1];
        const std::uint64_t h2 = p[i + 2];
        const std::uint64_t h3 = p[i + 3];
        const std::uint32_t x0 = h0 & 0xffff;
        const std::uint32_t x1 = h1 & 0xffff;
        const std::uint32_t x2 = h2 & 0xffff;
        const std::uint32_t x3 = h3 & 0xffff;
        const std::uint64_t b0 = (bm[x0 >> 6] >> (x0 & 63)) & 1;
        const std::uint64_t b1 = (bm[x1 >> 6] >> (x1 & 63)) & 1;
        const std::uint64_t b2 = (bm[x2 >> 6] >> (x2 & 63)) & 1;
        const std::uint64_t b3 = (bm[x3 >> 6] >> (x3 & 63)) & 1;
        cand[c] = h0;
        c += b0;
        cand[c] = h1;
        c += b1;
        cand[c] = h2;
        c += b2;
        cand[c] = h3;
        c += b3;
    }
    for (; i < n; ++i) {
        const std::uint64_t h = p[i];
        const std::uint32_t x = h & 0xffff;
        cand[c] = h;
        c += (bm[x >> 6] >> (x & 63)) & 1;
    }
    return c;
}

#if defined(__x86_64__) || defined(__i386__)
/**
 * Same filter, compiled with BMI2 so the variable bit-test shifts are
 * single-uop shrx instead of the two-uop flag-merging shr %cl.
 */
__attribute__((target("bmi2"))) std::size_t
probe_filter_bmi2(const std::uint64_t *bm, const std::uint64_t *p,
                  std::size_t n, std::uint64_t *cand)
{
    std::size_t c = 0;
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const std::uint64_t h0 = p[i];
        const std::uint64_t h1 = p[i + 1];
        const std::uint64_t h2 = p[i + 2];
        const std::uint64_t h3 = p[i + 3];
        const std::uint32_t x0 = h0 & 0xffff;
        const std::uint32_t x1 = h1 & 0xffff;
        const std::uint32_t x2 = h2 & 0xffff;
        const std::uint32_t x3 = h3 & 0xffff;
        const std::uint64_t b0 = (bm[x0 >> 6] >> (x0 & 63)) & 1;
        const std::uint64_t b1 = (bm[x1 >> 6] >> (x1 & 63)) & 1;
        const std::uint64_t b2 = (bm[x2 >> 6] >> (x2 & 63)) & 1;
        const std::uint64_t b3 = (bm[x3 >> 6] >> (x3 & 63)) & 1;
        cand[c] = h0;
        c += b0;
        cand[c] = h1;
        c += b1;
        cand[c] = h2;
        c += b2;
        cand[c] = h3;
        c += b3;
    }
    for (; i < n; ++i) {
        const std::uint64_t h = p[i];
        const std::uint32_t x = h & 0xffff;
        cand[c] = h;
        c += (bm[x >> 6] >> (x & 63)) & 1;
    }
    return c;
}

bool
have_bmi2()
{
    static const bool have = __builtin_cpu_supports("bmi2");
    return have;
}
#endif

std::size_t
run_probe_filter(const std::uint64_t *bm, const std::uint64_t *p,
                 std::size_t n, std::uint64_t *cand)
{
#if defined(__x86_64__) || defined(__i386__)
    if (have_bmi2()) {
        return probe_filter_bmi2(bm, p, n, cand);
    }
#endif
    return probe_filter(bm, p, n, cand);
}

}  // namespace

void
QueryProbe::reset(const strand::ProcedureStrands &q)
{
    const std::uint64_t *qh = q.hash_data();
    const std::size_t nq = q.hash_count();
    query_size_ = nq;
    fallback_.clear();
    bitmap_.assign(1024, 0);
    std::uint32_t nbuckets = 16;
    while (nbuckets * 4 < nq && nbuckets < kMaxBuckets) {
        nbuckets <<= 1;
    }
    for (;;) {
        bucket_mask_ = nbuckets - 1;
        slots_.assign(static_cast<std::size_t>(nbuckets) * 8, 0);
        valid_.assign(nbuckets, 0);
        bool overflow = false;
        for (std::size_t i = 0; i < nq; ++i) {
            const std::uint64_t h = qh[i];
            const std::uint32_t b =
                static_cast<std::uint32_t>(h >> 16) & bucket_mask_;
            const unsigned c = static_cast<unsigned>(
                __builtin_popcount(valid_[b]));
            if (c >= 8) {
                overflow = true;
                break;
            }
            slots_[static_cast<std::size_t>(b) * 8 + c] = h;
            valid_[b] = static_cast<std::uint8_t>(valid_[b] | (1u << c));
        }
        if (!overflow) {
            break;
        }
        if (nbuckets >= kMaxBuckets) {
            // > 8 query hashes sharing bits 16..30: adversarial input.
            // Keep a sorted copy and let score() take the merge path.
            fallback_.assign(qh, qh + nq);
            break;
        }
        nbuckets <<= 1;
    }
    for (std::size_t i = 0; i < nq; ++i) {
        const std::uint32_t idx =
            static_cast<std::uint32_t>(qh[i] & 0xffff);
        bitmap_[idx >> 6] |= 1ull << (idx & 63);
    }
}

int
QueryProbe::score(const std::uint64_t *t, std::size_t n) const
{
    if (n == 0 || query_size_ == 0) {
        return 0;
    }
    if (!fallback_.empty()) {
        const SimdTier tier = simd_tier();
        if (n / fallback_.size() >= kGallopRatio ||
            fallback_.size() / n >= kGallopRatio) {
            const bool query_small = fallback_.size() <= n;
            const std::uint64_t *s =
                query_small ? fallback_.data() : t;
            const std::uint64_t *se =
                query_small ? fallback_.data() + fallback_.size() : t + n;
            const std::uint64_t *l =
                query_small ? t : fallback_.data();
            const std::uint64_t *le =
                query_small ? t + n : fallback_.data() + fallback_.size();
            return gallop_count(s, se, l, le, tier);
        }
        return merge_count(fallback_.data(),
                           fallback_.data() + fallback_.size(), t, t + n,
                           tier);
    }
    // The candidate buffer is per-thread so one built probe can be
    // scored concurrently from many workers.
    static thread_local std::vector<std::uint64_t> cand;
    if (cand.size() < n) {
        cand.resize(n);
    }
    const std::size_t c =
        run_probe_filter(bitmap_.data(), t, n, cand.data());
    const SimdTier tier = simd_tier();
    int shared = 0;
    for (std::size_t k = 0; k < c; ++k) {
        const std::uint64_t h = cand[k];
        const std::uint32_t b =
            static_cast<std::uint32_t>(h >> 16) & bucket_mask_;
        shared += bucket_contains(
            slots_.data() + static_cast<std::size_t>(b) * 8, valid_[b], h,
            tier);
    }
    return shared;
}

int
QueryProbe::score(const strand::ProcedureStrands &t) const
{
    return score(t.hash_data(), t.hash_count());
}

std::vector<Candidate>
shared_candidates(const ExecutableIndex &T,
                  const strand::ProcedureStrands &q,
                  ScoringStats *stats)
{
    std::vector<Candidate> out;
    if (T.procs.empty() || q.hash_empty()) {
        return out;
    }
    ScoringStats local;
    if (!T.search_ready) {
        // Dense fallback for hand-assembled indexes: one query against
        // every procedure — the query-amortized probe's home turf.
        const QueryProbe probe(q);
        for (std::size_t i = 0; i < T.procs.size(); ++i) {
            const int s = probe.score(T.procs[i].repr);
            ++local.pairs_scored;
            local.elem_ops +=
                q.hash_count() + T.procs[i].repr.hash_count();
            if (s > 0) {
                out.push_back({static_cast<int>(i), s});
            }
        }
        if (stats != nullptr) {
            stats->pairs_scored += local.pairs_scored;
            stats->elem_ops += local.elem_ops;
        }
        g_retrieval.probes_exact.fetch_add(1, std::memory_order_relaxed);
        g_retrieval.candidates_exact.fetch_add(
            local.pairs_scored, std::memory_order_relaxed);
        c_cand_exact.add(local.pairs_scored);
        return out;
    }
    // Accumulate shared counts over the posting lists of q's strands:
    // only procedures sharing at least one strand are ever touched.
    std::vector<int> counts(T.procs.size(), 0);
    std::vector<std::uint32_t> touched;
    const std::uint64_t *base = T.posting_hash_data();
    const std::uint32_t *offsets = T.posting_offset_data();
    const std::uint32_t *plist = T.posting_proc_data();
    const std::uint64_t *ph = base;
    const std::uint64_t *pe = base + T.posting_hash_count();
    const std::uint64_t *qh = q.hash_data();
    const std::uint64_t *qe = qh + q.hash_count();
    for (; qh != qe; ++qh) {
        const std::uint64_t h = *qh;
        ++local.elem_ops;  // one probe per query hash
        ph = gallop_lower_bound(ph, pe, h);
        if (ph == pe) {
            break;
        }
        if (*ph != h) {
            continue;
        }
        const std::size_t row = static_cast<std::size_t>(ph - base);
        const std::uint32_t lo = offsets[row];
        const std::uint32_t hi = offsets[row + 1];
        for (std::uint32_t j = lo; j < hi; ++j) {
            const std::uint32_t proc = plist[j];
            ++local.elem_ops;  // one accumulation per incidence
            if (counts[proc]++ == 0) {
                touched.push_back(proc);
                ++local.pairs_scored;
            }
        }
    }
    std::sort(touched.begin(), touched.end());
    out.reserve(touched.size());
    for (std::uint32_t proc : touched) {
        out.push_back({static_cast<int>(proc), counts[proc]});
    }
    if (stats != nullptr) {
        stats->pairs_scored += local.pairs_scored;
        stats->elem_ops += local.elem_ops;
    }
    g_retrieval.probes_exact.fetch_add(1, std::memory_order_relaxed);
    g_retrieval.candidates_exact.fetch_add(local.pairs_scored,
                                           std::memory_order_relaxed);
    c_cand_exact.add(local.pairs_scored);
    return out;
}

std::vector<Candidate>
lsh_candidates(const ExecutableIndex &T,
               const strand::ProcedureStrands &q, ScoringStats *stats)
{
    if (!T.lsh_ready() || !q.sketch_built) {
        return shared_candidates(T, q, stats);
    }
    std::vector<Candidate> out;
    if (T.procs.empty() || q.hash_empty()) {
        return out;
    }
    // Band probes: binary-search each band's sorted segment for the
    // query's band key; colliding procedures are the candidate pool.
    std::vector<std::uint32_t> cand;
    for (unsigned b = 0; b < T.lsh_bands; ++b) {
        const std::uint64_t key = strand::band_key(q.sketch, b, T.lsh_rows);
        const auto first = T.lsh_keys.begin() + T.lsh_offsets[b];
        const auto last = T.lsh_keys.begin() + T.lsh_offsets[b + 1];
        for (auto it = std::lower_bound(first, last, key);
             it != last && *it == key; ++it) {
            cand.push_back(T.lsh_procs[static_cast<std::size_t>(
                it - T.lsh_keys.begin())]);
        }
    }
    // Containment floor: MinHash bands model Jaccard similarity, which
    // collapses when a small procedure's strand set is contained in a
    // much larger one (|A∩B|/|A∪B| goes to 0 while Sim = |A∩B| stays
    // high) — exactly the shape of a CVE query inside a statically
    // linked target. The probe therefore always unions in the
    // procedures behind the query's rarest strand hashes: the shortest
    // posting lists are the most selective evidence and the cheapest to
    // scan, so the floor is bounded by kRareProbes short lists. The
    // same row lookup feeds the exact-work audit (the posting
    // incidences an exact probe would have accumulated), one galloping
    // search per query hash.
    std::uint64_t exact_work = 0;
    if (T.search_ready) {
        constexpr std::size_t kRareProbes = 8;
        std::vector<std::pair<std::uint32_t, std::uint32_t>> lists;
        lists.reserve(q.hash_count());
        const std::uint64_t *base = T.posting_hash_data();
        const std::uint32_t *offsets = T.posting_offset_data();
        const std::uint32_t *plist = T.posting_proc_data();
        const std::uint64_t *ph = base;
        const std::uint64_t *pe = base + T.posting_hash_count();
        const std::uint64_t *qh = q.hash_data();
        const std::uint64_t *qe = qh + q.hash_count();
        for (; qh != qe; ++qh) {
            ph = gallop_lower_bound(ph, pe, *qh);
            if (ph == pe) {
                break;
            }
            if (*ph != *qh) {
                continue;
            }
            const auto row = static_cast<std::uint32_t>(ph - base);
            const std::uint32_t len = offsets[row + 1] - offsets[row];
            exact_work += len;
            lists.emplace_back(len, row);
        }
        if (lists.size() > kRareProbes) {
            // (length, row) keys are unique per row, so the selection
            // is deterministic regardless of the iteration above.
            std::partial_sort(lists.begin(),
                              lists.begin() + kRareProbes, lists.end());
            lists.resize(kRareProbes);
        }
        for (const auto &[len, row] : lists) {
            for (std::uint32_t i = offsets[row]; i < offsets[row + 1];
                 ++i) {
                cand.push_back(plist[i]);
            }
        }
    }
    std::sort(cand.begin(), cand.end());
    cand.erase(std::unique(cand.begin(), cand.end()), cand.end());
    // Exact scoring of the survivors: same Sim as the posting path, so
    // the result is a subset of shared_candidates(T, q) by construction.
    ScoringStats local;
    out.reserve(cand.size());
    for (std::uint32_t proc : cand) {
        const strand::ProcedureStrands &t = T.procs[proc].repr;
        const int s = sim_score(q, t);
        ++local.pairs_scored;
        local.elem_ops += q.hash_count() + t.hash_count();
        if (s > 0) {
            out.push_back({static_cast<int>(proc), s});
        }
    }
    if (stats != nullptr) {
        stats->pairs_scored += local.pairs_scored;
        stats->elem_ops += local.elem_ops;
    }
    g_retrieval.probes_lsh.fetch_add(1, std::memory_order_relaxed);
    g_retrieval.candidates_lsh.fetch_add(local.pairs_scored,
                                         std::memory_order_relaxed);
    g_retrieval.lsh_exact_work.fetch_add(exact_work,
                                         std::memory_order_relaxed);
    c_lsh_probes.add();
    c_cand_lsh.add(local.pairs_scored);
    return out;
}

RetrievalCounters
retrieval_counters()
{
    RetrievalCounters out;
    out.probes_exact =
        g_retrieval.probes_exact.load(std::memory_order_relaxed);
    out.candidates_exact =
        g_retrieval.candidates_exact.load(std::memory_order_relaxed);
    out.probes_lsh =
        g_retrieval.probes_lsh.load(std::memory_order_relaxed);
    out.candidates_lsh =
        g_retrieval.candidates_lsh.load(std::memory_order_relaxed);
    out.lsh_exact_work =
        g_retrieval.lsh_exact_work.load(std::memory_order_relaxed);
    out.sketch_micros =
        g_retrieval.sketch_micros.load(std::memory_order_relaxed);
    return out;
}

double
GlobalContext::weight_of(std::uint64_t hash) const
{
    const auto it = weights.find(hash);
    return it != weights.end() ? it->second : default_weight;
}

GlobalContext
train_global_context(const std::vector<const ExecutableIndex *> &sample)
{
    GlobalContext context;
    std::map<std::uint64_t, int> counts;
    int total_procs = 0;
    for (const ExecutableIndex *index : sample) {
        for (const ProcEntry &proc : index->procs) {
            ++total_procs;
            const std::uint64_t *h = proc.repr.hash_data();
            const std::uint64_t *he = h + proc.repr.hash_count();
            for (; h != he; ++h) {
                ++counts[*h];
            }
        }
    }
    if (total_procs == 0) {
        return context;
    }
    // -log document frequency, as in statistical significance weighting:
    // a strand appearing in every procedure carries no evidence.
    for (const auto &[hash, count] : counts) {
        const double df =
            static_cast<double>(count) / static_cast<double>(total_procs);
        context.weights[hash] = std::max(0.05, -std::log(df));
    }
    // Unseen strands are maximally surprising.
    context.default_weight = -std::log(0.5 / total_procs);
    return context;
}

double
weighted_sim(const strand::ProcedureStrands &q,
             const strand::ProcedureStrands &t,
             const GlobalContext &context)
{
    double score = 0.0;
    for_each_shared(q.hash_data(), q.hash_count(), t.hash_data(),
                    t.hash_count(),
                    [&](std::uint64_t h) { score += context.weight_of(h); });
    return score;
}

}  // namespace firmup::sim
