/**
 * @file
 * Serialization of executable indexes.
 *
 * The paper's crawl indexes ~200k executables once and then answers many
 * CVE queries against the stored strand sets (section 5.1: "the
 * procedures were indexed as a set of strands"). This module provides
 * that persistence layer: an ExecutableIndex round-trips through a
 * compact binary format (magic "FWIX"), so a corpus can be lifted and
 * canonicalized once and searched many times.
 *
 * Format history: v2 added the finalized search-acceleration state (the
 * CSR posting lists built by ExecutableIndex::finalize()); v3 added each
 * procedure's block summary; v4 added each procedure's MinHash sketch.
 * Format v5 keeps exactly that information but re-arranges it as a
 * **flat relocatable layout**: a fixed directory of absolute offsets
 * pointing at typed arenas (exe/proc names, a packed procedure table,
 * one hash arena, one sketch arena, the three CSR posting arrays), with
 * every u64 arena 8-byte aligned. Nothing is length-prefixed inline any
 * more — the blob can be consumed two ways:
 *
 *  - open_index_view(): hand an ExecutableIndex *views* into the blob
 *    (procedure hash sets and posting arrays point straight at the
 *    mapped bytes; only the O(procs) fixed-size state — entries, names,
 *    summaries, sketches — is materialized). This is the mmap warm
 *    path: opening an index costs a checksum pass plus O(procs), not a
 *    full re-parse into freshly allocated vectors.
 *  - parse_index(): the classic copying parser (the --no-mmap ablation
 *    baseline and the portability fallback for hosts where the direct
 *    view is unavailable — see open_view_supported()).
 *
 * The LSH banding table is derived data and is rebuilt from the
 * sketches per SearchOptions (its shape is a query-time knob, not index
 * state). The header guards against stale or damaged blobs three ways:
 *
 *  - a format **version** (older blobs are rejected with a distinct
 *    ErrorCode::StaleFormat "stale format" error, never misparsed —
 *    a v4 store self-invalidates into cache misses),
 *  - a **layout hash** — a constant digest of the byte-layout
 *    descriptor, bumped whenever any field changes width or meaning, so
 *    a same-version blob written by an incompatible build is also
 *    rejected as stale,
 *  - a **payload checksum** (FNV-1a over every byte after the header),
 *    so bit flips, splices and truncations inside the payload are
 *    detected instead of producing a silently wrong index.
 *
 * Every failure path returns a clean Result error (MalformedContainer /
 * TruncatedMember / StaleFormat); callers treat any of them as a cache
 * miss and re-lift.
 */
#pragma once

#include <memory>

#include "sim/similarity.h"
#include "support/bytes.h"
#include "support/error.h"

namespace firmup::sim {

/** Current FWIX format version (serialize_index always writes this). */
inline constexpr std::uint16_t kFwixVersion = 5;

/**
 * Digest of the v5 byte-layout descriptor. Serialized into every blob
 * and compared on parse; a mismatch means the blob was written by an
 * incompatible layout and is rejected as ErrorCode::StaleFormat.
 */
std::uint64_t fwix_layout_hash();

/** Serialize @p index into the FWIX v5 binary format. */
ByteBuffer serialize_index(const ExecutableIndex &index);

/**
 * Container-level guards alone: magic, version, layout hash and the
 * full payload checksum. Both consumers run this before touching the
 * payload; it is split out so the load path can attribute checksum time
 * separately from parse/open time (IndexCacheStore::LoadStats).
 */
Result<bool> check_container(const std::uint8_t *bytes, std::size_t size);

/**
 * Parse an FWIX v5 blob into an owning index (every arena copied into
 * vectors). A blob serialized from a finalized index parses straight to
 * `search_ready` (no finalize() re-run); one serialized from a
 * hand-built index is finalized on load. Runs check_container() first.
 */
Result<ExecutableIndex> parse_index(const std::uint8_t *bytes,
                                    std::size_t size);

/** Convenience overload. */
Result<ExecutableIndex> parse_index(const ByteBuffer &bytes);

/**
 * True when this host can serve FWIX v5 views directly over mapped
 * bytes (little-endian byte order — the arenas are reinterpreted as
 * u64/u32 arrays in place). On other hosts open_index_view() fails and
 * callers fall back to parse_index().
 */
bool open_view_supported();

/**
 * Open a zero-copy *view* of an FWIX v5 blob: the returned index's
 * procedure hash sets and CSR posting arrays point into @p bytes, and
 * @p backing is retained on the index to pin those bytes alive for as
 * long as any copy of the index (or of its procedures) exists.
 *
 * Validation contract: all container guards (check_container, run
 * here unless the caller already did — see @p checked) plus every
 * memory-safety invariant — arena bounds and alignment, posting offset
 * monotonicity and endpoints, posting procedure indices in range,
 * summary shape. Semantic invariants vouched for by the checksum (hash
 * sortedness inside an arena) are not re-scanned; that O(payload) work
 * is exactly what the view path exists to skip.
 *
 * Only `search_ready` blobs are viewable (a non-finalized blob needs
 * finalize(), which mutates — callers fall back to parse_index()).
 */
Result<ExecutableIndex> open_index_view(
    const std::uint8_t *bytes, std::size_t size,
    std::shared_ptr<const void> backing, bool checked = false);

}  // namespace firmup::sim
