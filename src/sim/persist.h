/**
 * @file
 * Serialization of executable indexes.
 *
 * The paper's crawl indexes ~200k executables once and then answers many
 * CVE queries against the stored strand sets (section 5.1: "the
 * procedures were indexed as a set of strands"). This module provides
 * that persistence layer: an ExecutableIndex round-trips through a
 * compact binary format (magic "FWIX"), so a corpus can be lifted and
 * canonicalized once and searched many times.
 */
#pragma once

#include "sim/similarity.h"
#include "support/bytes.h"
#include "support/error.h"

namespace firmup::sim {

/** Serialize @p index into the FWIX binary format. */
ByteBuffer serialize_index(const ExecutableIndex &index);

/** Parse an FWIX blob back into an index. */
Result<ExecutableIndex> parse_index(const std::uint8_t *bytes,
                                    std::size_t size);

/** Convenience overload. */
Result<ExecutableIndex> parse_index(const ByteBuffer &bytes);

}  // namespace firmup::sim
