/**
 * @file
 * Serialization of executable indexes.
 *
 * The paper's crawl indexes ~200k executables once and then answers many
 * CVE queries against the stored strand sets (section 5.1: "the
 * procedures were indexed as a set of strands"). This module provides
 * that persistence layer: an ExecutableIndex round-trips through a
 * compact binary format (magic "FWIX"), so a corpus can be lifted and
 * canonicalized once and searched many times.
 *
 * Format v2 additionally carries the finalized search-acceleration
 * state — the CSR posting lists built by ExecutableIndex::finalize() —
 * so a loaded index is `search_ready` without re-running finalize(),
 * which is what makes warm corpus scans (sim::IndexCacheStore) skip the
 * entire lift+canon+finalize phase. Format v3 stores each procedure's
 * block summary (strand::ProcedureStrands::bucket_bits/word_offsets)
 * alongside its hashes: without it, warm-loaded indexes silently lost
 * the tiered intersection kernel's summary reject and fell back to the
 * merge path — the summary is as much search state as the postings
 * are. Format v4 adds each procedure's MinHash sketch
 * (strand::ProcedureStrands::sketch) right after its summary, so warm
 * scans serve the LSH retrieval prefilter without recomputing sketches;
 * the LSH banding table itself is derived data and is rebuilt from the
 * sketches per SearchOptions (its shape is a query-time knob, not index
 * state). The header guards against stale or damaged blobs three ways:
 *
 *  - a format **version** (v1 blobs are rejected with a distinct
 *    ErrorCode::StaleFormat "stale format" error, never misparsed),
 *  - a **layout hash** — a constant digest of the byte-layout
 *    descriptor, bumped whenever any field changes width or meaning, so
 *    a same-version blob written by an incompatible build is also
 *    rejected as stale,
 *  - a **payload checksum** (FNV-1a over every byte after the header),
 *    so bit flips, splices and truncations inside the payload are
 *    detected instead of producing a silently wrong index.
 *
 * Every failure path returns a clean Result error (MalformedContainer /
 * TruncatedMember / StaleFormat); callers treat any of them as a cache
 * miss and re-lift.
 */
#pragma once

#include "sim/similarity.h"
#include "support/bytes.h"
#include "support/error.h"

namespace firmup::sim {

/** Current FWIX format version (serialize_index always writes this). */
inline constexpr std::uint16_t kFwixVersion = 4;

/**
 * Digest of the v4 byte-layout descriptor. Serialized into every blob
 * and compared on parse; a mismatch means the blob was written by an
 * incompatible layout and is rejected as ErrorCode::StaleFormat.
 */
std::uint64_t fwix_layout_hash();

/** Serialize @p index into the FWIX v4 binary format. */
ByteBuffer serialize_index(const ExecutableIndex &index);

/**
 * Parse an FWIX blob back into an index. A blob serialized from a
 * finalized index parses straight to `search_ready` (no finalize()
 * re-run); one serialized from a hand-built index is finalized on load.
 */
Result<ExecutableIndex> parse_index(const std::uint8_t *bytes,
                                    std::size_t size);

/** Convenience overload. */
Result<ExecutableIndex> parse_index(const ByteBuffer &bytes);

}  // namespace firmup::sim
