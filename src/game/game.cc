#include "game/game.h"

#include <algorithm>
#include <chrono>

#include "support/str.h"
#include "support/trace.h"

namespace firmup::game {

namespace {

// Registry-backed mirrors of the per-game GameResult accounting: the
// corpus-wide totals every scan accumulates, readable via one
// MetricsRegistry snapshot instead of threading sums by hand. Flushed
// once per game (not per iteration) to keep the enabled path cheap.
const trace::Counter c_games("game.games");
const trace::Counter c_steps("game.steps");
const trace::Counter c_pairs_scored("game.pairs_scored");
const trace::Counter c_pairs_pruned("game.pairs_pruned");
const trace::Counter c_elem_ops("game.scoring_elem_ops");
const trace::Counter c_rival_turns("game.rival_turns");
const trace::Counter c_deadline_samples("game.deadline_samples");
const trace::Counter c_matched("game.matched");
const trace::Counter c_unresolved("game.unresolved");
const trace::Histogram h_steps("game.steps_per_game");

/** A procedure reference: which executable, which index. */
struct Ref
{
    bool in_q = true;
    int index = -1;

    bool operator==(const Ref &) const = default;
    auto operator<=>(const Ref &) const = default;
};

/**
 * Player state for one game. All bookkeeping is flat, sized to the two
 * executables: match arrays (-1 = unmatched), unmatchable byte arrays,
 * and a per-game memo of candidate lists. Candidate lists come from the
 * target's inverted index and never change during a game — only the
 * exclusion state does — so GetBestMatch is a cheap re-argmax over a
 * cached list instead of a full rescore of the other side.
 */
class Game
{
  public:
    Game(const sim::ExecutableIndex &Q, const sim::ExecutableIndex &T,
         const GameOptions &options)
        : q_(Q), t_(T), opt_(options),
          match_q_(Q.procs.size(), -1), match_t_(T.procs.size(), -1),
          unmatchable_q_(Q.procs.size(), 0),
          unmatchable_t_(T.procs.size(), 0),
          cand_q_(Q.procs.size()), cand_t_(T.procs.size()),
          cand_ready_q_(Q.procs.size(), 0),
          cand_ready_t_(T.procs.size(), 0)
    {
        for (const sim::ProcEntry &p : Q.procs) {
            total_hashes_q_ += p.repr.hash_count();
        }
        for (const sim::ProcEntry &p : T.procs) {
            total_hashes_t_ += p.repr.hash_count();
        }
    }

    GameResult
    run(int qv_index)
    {
        GameResult result;
        const Ref qv{true, qv_index};
        std::vector<Ref> stack{qv};
        auto name_of = [this](const Ref &r) {
            const auto &procs = r.in_q ? q_.procs : t_.procs;
            const auto &p = procs[static_cast<std::size_t>(r.index)];
            if (!p.name.empty()) {
                return p.name;
            }
            return "sub_" + to_hex(p.entry);
        };
        auto note = [&result, this](const std::string &line) {
            if (opt_.record_trace) {
                result.trace.push_back(line);
            }
        };

        const bool deadline_set = opt_.max_seconds > 0.0;
        const auto deadline =
            std::chrono::steady_clock::now() +
            std::chrono::duration_cast<
                std::chrono::steady_clock::duration>(
                std::chrono::duration<double>(
                    deadline_set ? opt_.max_seconds : 0.0));
        std::uint64_t loop_iter = 0;
        while (!stack.empty()) {
            if (result.steps >= opt_.max_steps) {
                result.ending = GameEnding::Unresolved;
                note("budget: step limit reached, game unresolved");
                break;
            }
            // The clock syscall would dominate a cheap step; sample it
            // every 64 iterations (and always on the first, so a
            // pre-expired deadline still ends the game at step 0). The
            // cancel token shares the sample point: polling an atomic is
            // cheap, but checking it on every step would still pay a
            // cache-line load inside the hottest loop.
            if ((deadline_set || opt_.cancel != nullptr) &&
                (loop_iter++ & 63) == 0) {
                if (opt_.cancel != nullptr && opt_.cancel->requested()) {
                    result.ending = GameEnding::Unresolved;
                    result.cancelled = true;
                    note("cancel: shutdown requested, game unresolved");
                    break;
                }
                if (deadline_set) {
                    ++deadline_samples_;
                    if (std::chrono::steady_clock::now() >= deadline) {
                        result.ending = GameEnding::Unresolved;
                        result.deadline_expired = true;
                        note("budget: deadline reached, game unresolved");
                        break;
                    }
                }
            }
            const Ref m = stack.back();
            if (is_matched(m)) {
                stack.pop_back();
                continue;
            }
            ++result.steps;

            int forward_sim = 0;
            const int forward = best_match(m, forward_sim);
            if (forward < 0 || forward_sim < opt_.min_sim) {
                // No usable candidate: qv loses outright, other
                // procedures are simply set aside.
                if (m == qv) {
                    break;
                }
                mark_unmatchable(m);
                stack.pop_back();
                continue;
            }
            const Ref fwd{!m.in_q, forward};

            int back_sim = 0;
            const int back = best_match(fwd, back_sim);
            if (opt_.record_trace) {
                note(strprintf(
                    "player: matches %s with %s (Sim=%d)",
                    name_of(m).c_str(), name_of(fwd).c_str(),
                    forward_sim));
            }
            // Eq. 1 lets the rival counter with any pick at least as
            // good (>=), so ties are contested; the deterministic
            // best_match tie-break keeps the game finite.
            const bool consistent = back == m.index;
            if (consistent) {
                note("rival: no better pick for " + name_of(fwd) +
                     "; pair accepted");
                record(m, fwd);
                if (m == qv || fwd == qv) {
                    result.matched = true;
                    result.ending = GameEnding::Matched;
                    const int t_index = m == qv ? forward : m.index;
                    result.target_index = t_index;
                    result.target_entry =
                        t_.procs[static_cast<std::size_t>(t_index)].entry;
                    result.sim = forward_sim;
                    break;
                }
                stack.pop_back();
                if (matched_count_ >= opt_.max_matches) {
                    // Heuristic cut-off (paper's third condition).
                    result.ending = GameEnding::Unresolved;
                    break;
                }
                continue;
            }
            // Rival found a strictly better owner for `forward`; push the
            // contested procedures and retry from the top of the stack.
            const Ref bck{m.in_q, back};
            ++rival_turns_;
            note(strprintf("rival: counters with %s (Sim=%d > %d)",
                           name_of(bck).c_str(), back_sim, forward_sim));
            bool pushed = false;
            for (const Ref &r : {fwd, bck}) {
                if (!is_matched(r) &&
                    std::find(stack.begin(), stack.end(), r) ==
                        stack.end()) {
                    stack.push_back(r);
                    pushed = true;
                }
            }
            if (!pushed) {
                break;  // fixed state: the game cannot make progress
            }
        }

        for (std::size_t qi = 0; qi < match_q_.size(); ++qi) {
            if (match_q_[qi] >= 0) {
                result.q_to_t.emplace(static_cast<int>(qi), match_q_[qi]);
            }
        }
        result.pairs_scored = stats_.pairs_scored;
        result.pairs_pruned = pairs_pruned_;
        result.scoring_elem_ops = stats_.elem_ops;
        result.dense_elem_ops = dense_elem_ops_;
        // One registry flush per game: the hot loop only bumps plain
        // locals, so the Level::Off cost of a game is this single check.
        if (trace::level() != trace::Level::Off) {
            c_games.add();
            c_steps.add(static_cast<std::uint64_t>(result.steps));
            c_pairs_scored.add(result.pairs_scored);
            c_pairs_pruned.add(result.pairs_pruned);
            c_elem_ops.add(result.scoring_elem_ops);
            c_rival_turns.add(rival_turns_);
            c_deadline_samples.add(deadline_samples_);
            if (result.matched) {
                c_matched.add();
            }
            if (result.ending == GameEnding::Unresolved) {
                c_unresolved.add();
            }
            h_steps.observe(static_cast<std::uint64_t>(result.steps));
        }
        return result;
    }

  private:
    const strand::ProcedureStrands &
    repr(const Ref &r) const
    {
        const auto &procs = r.in_q ? q_.procs : t_.procs;
        return procs[static_cast<std::size_t>(r.index)].repr;
    }

    bool
    is_matched(const Ref &r) const
    {
        const auto &matched = r.in_q ? match_q_ : match_t_;
        return matched[static_cast<std::size_t>(r.index)] >= 0;
    }

    void
    mark_unmatchable(const Ref &r)
    {
        auto &unmatchable = r.in_q ? unmatchable_q_ : unmatchable_t_;
        unmatchable[static_cast<std::size_t>(r.index)] = 1;
    }

    /**
     * Candidate list of @p m against the other executable, computed at
     * most once per game (exclusion state changes between calls, the raw
     * Sim counts never do).
     */
    const std::vector<sim::Candidate> &
    candidates_of(const Ref &m)
    {
        auto &memo = m.in_q ? cand_q_ : cand_t_;
        auto &ready = m.in_q ? cand_ready_q_ : cand_ready_t_;
        const std::size_t i = static_cast<std::size_t>(m.index);
        if (!ready[i]) {
            const sim::ExecutableIndex &other = m.in_q ? t_ : q_;
            memo[i] = opt_.retrieval == sim::RetrievalMode::Lsh
                          ? sim::lsh_candidates(other, repr(m), &stats_)
                          : sim::shared_candidates(other, repr(m),
                                                   &stats_);
            ready[i] = 1;
        }
        return memo[i];
    }

    /**
     * GetBestMatch: the highest-Sim procedure on the other side that is
     * not already matched. Ties break to the lowest index. Procedures
     * sharing zero strands are never touched; when every candidate is
     * excluded, the dense semantics are preserved by falling back to the
     * lowest eligible index with Sim 0.
     */
    int
    best_match(const Ref &m, int &best_sim)
    {
        const auto &others = m.in_q ? t_.procs : q_.procs;
        const auto &match_other = m.in_q ? match_t_ : match_q_;
        const auto &unmatchable_other =
            m.in_q ? unmatchable_t_ : unmatchable_q_;
        const auto &ready = m.in_q ? cand_ready_q_ : cand_ready_t_;
        const bool fresh = !ready[static_cast<std::size_t>(m.index)];
        const std::vector<sim::Candidate> &cands = candidates_of(m);
        // Dense GetBestMatch rescored every procedure on every call —
        // a full (|m|+|other|)-element merge per pair; this path pays
        // only for candidates, and only on a memo miss.
        pairs_pruned_ += others.size() - (fresh ? cands.size() : 0);
        dense_elem_ops_ +=
            others.size() * repr(m).hash_count() +
            (m.in_q ? total_hashes_t_ : total_hashes_q_);
        best_sim = -1;
        int best = -1;
        for (const sim::Candidate &c : cands) {
            const std::size_t i = static_cast<std::size_t>(c.index);
            if (match_other[i] >= 0 || unmatchable_other[i]) {
                continue;
            }
            if (c.sim > best_sim) {
                best_sim = c.sim;
                best = c.index;
            }
        }
        if (best >= 0) {
            return best;
        }
        for (std::size_t i = 0; i < others.size(); ++i) {
            if (match_other[i] < 0 && !unmatchable_other[i]) {
                best_sim = 0;
                return static_cast<int>(i);
            }
        }
        best_sim = -1;
        return -1;
    }

    void
    record(const Ref &m, const Ref &other)
    {
        const int qi = m.in_q ? m.index : other.index;
        const int ti = m.in_q ? other.index : m.index;
        match_q_[static_cast<std::size_t>(qi)] = ti;
        match_t_[static_cast<std::size_t>(ti)] = qi;
        ++matched_count_;
    }

    const sim::ExecutableIndex &q_;
    const sim::ExecutableIndex &t_;
    const GameOptions &opt_;
    std::vector<int> match_q_;  ///< Q index -> T index, -1 = unmatched
    std::vector<int> match_t_;  ///< T index -> Q index, -1 = unmatched
    std::vector<std::uint8_t> unmatchable_q_;
    std::vector<std::uint8_t> unmatchable_t_;
    std::vector<std::vector<sim::Candidate>> cand_q_;  ///< memo: Q vs T
    std::vector<std::vector<sim::Candidate>> cand_t_;  ///< memo: T vs Q
    std::vector<std::uint8_t> cand_ready_q_;
    std::vector<std::uint8_t> cand_ready_t_;
    std::size_t matched_count_ = 0;
    std::size_t total_hashes_q_ = 0;  ///< Σ strand-set sizes, Q side
    std::size_t total_hashes_t_ = 0;  ///< Σ strand-set sizes, T side
    sim::ScoringStats stats_;         ///< actual scoring work
    std::uint64_t pairs_pruned_ = 0;
    std::uint64_t dense_elem_ops_ = 0;  ///< what dense would have paid
    std::uint64_t rival_turns_ = 0;      ///< back-and-forth counters
    std::uint64_t deadline_samples_ = 0; ///< deadline clock reads
};

}  // namespace

GameResult
match_query(const sim::ExecutableIndex &Q, int qv_index,
            const sim::ExecutableIndex &T, const GameOptions &options)
{
    const trace::TraceSpan span("game", T.name);
    Game game(Q, T, options);
    return game.run(qv_index);
}

}  // namespace firmup::game
