#include "game/game.h"

#include <algorithm>
#include <chrono>
#include <set>

#include "support/str.h"

namespace firmup::game {

namespace {

/** A procedure reference: which executable, which index. */
struct Ref
{
    bool in_q = true;
    int index = -1;

    bool operator==(const Ref &) const = default;
    auto operator<=>(const Ref &) const = default;
};

/** Player state for one game. */
class Game
{
  public:
    Game(const sim::ExecutableIndex &Q, const sim::ExecutableIndex &T,
         const GameOptions &options)
        : q_(Q), t_(T), opt_(options)
    {
    }

    GameResult
    run(int qv_index)
    {
        GameResult result;
        const Ref qv{true, qv_index};
        std::vector<Ref> stack{qv};
        auto name_of = [this](const Ref &r) {
            const auto &procs = r.in_q ? q_.procs : t_.procs;
            const auto &p = procs[static_cast<std::size_t>(r.index)];
            if (!p.name.empty()) {
                return p.name;
            }
            return "sub_" + to_hex(p.entry);
        };
        auto note = [&result, this](const std::string &line) {
            if (opt_.record_trace) {
                result.trace.push_back(line);
            }
        };

        const bool deadline_set = opt_.max_seconds > 0.0;
        const auto deadline =
            std::chrono::steady_clock::now() +
            std::chrono::duration_cast<
                std::chrono::steady_clock::duration>(
                std::chrono::duration<double>(
                    deadline_set ? opt_.max_seconds : 0.0));
        while (!stack.empty()) {
            if (result.steps >= opt_.max_steps) {
                result.ending = GameEnding::Unresolved;
                note("budget: step limit reached, game unresolved");
                break;
            }
            if (deadline_set &&
                std::chrono::steady_clock::now() >= deadline) {
                result.ending = GameEnding::Unresolved;
                note("budget: deadline reached, game unresolved");
                break;
            }
            const Ref m = stack.back();
            if (is_matched(m)) {
                stack.pop_back();
                continue;
            }
            ++result.steps;

            int forward_sim = 0;
            const int forward = best_match(m, forward_sim);
            if (forward < 0 || forward_sim < opt_.min_sim) {
                // No usable candidate: qv loses outright, other
                // procedures are simply set aside.
                if (m == qv) {
                    break;
                }
                unmatchable_.insert(m);
                stack.pop_back();
                continue;
            }
            const Ref fwd{!m.in_q, forward};

            int back_sim = 0;
            const int back = best_match(fwd, back_sim);
            if (opt_.record_trace) {
                note(strprintf(
                    "player: matches %s with %s (Sim=%d)",
                    name_of(m).c_str(), name_of(fwd).c_str(),
                    forward_sim));
            }
            // Eq. 1 lets the rival counter with any pick at least as
            // good (>=), so ties are contested; the deterministic
            // best_match tie-break keeps the game finite.
            const bool consistent = back == m.index;
            if (consistent) {
                note("rival: no better pick for " + name_of(fwd) +
                     "; pair accepted");
                record(m, fwd);
                if (m == qv || fwd == qv) {
                    result.matched = true;
                    result.ending = GameEnding::Matched;
                    const int t_index = m == qv ? forward : m.index;
                    result.target_index = t_index;
                    result.target_entry =
                        t_.procs[static_cast<std::size_t>(t_index)].entry;
                    result.sim = forward_sim;
                    break;
                }
                stack.pop_back();
                if (matches_q_.size() >= opt_.max_matches) {
                    // Heuristic cut-off (paper's third condition).
                    result.ending = GameEnding::Unresolved;
                    break;
                }
                continue;
            }
            // Rival found a strictly better owner for `forward`; push the
            // contested procedures and retry from the top of the stack.
            const Ref bck{m.in_q, back};
            note(strprintf("rival: counters with %s (Sim=%d > %d)",
                           name_of(bck).c_str(), back_sim, forward_sim));
            bool pushed = false;
            for (const Ref &r : {fwd, bck}) {
                if (!is_matched(r) &&
                    std::find(stack.begin(), stack.end(), r) ==
                        stack.end()) {
                    stack.push_back(r);
                    pushed = true;
                }
            }
            if (!pushed) {
                break;  // fixed state: the game cannot make progress
            }
        }

        result.q_to_t = matches_q_;
        return result;
    }

  private:
    const strand::ProcedureStrands &
    repr(const Ref &r) const
    {
        const auto &procs = r.in_q ? q_.procs : t_.procs;
        return procs[static_cast<std::size_t>(r.index)].repr;
    }

    int
    sim_of(const Ref &m, int other_index) const
    {
        const Ref other{!m.in_q, other_index};
        return sim::sim_score(repr(m), repr(other));
    }

    bool
    is_matched(const Ref &r) const
    {
        const auto &matched = r.in_q ? matches_q_ : matches_t_;
        return matched.contains(r.index);
    }

    /**
     * GetBestMatch: the highest-Sim procedure on the other side that is
     * not already matched. Ties break to the lowest index.
     */
    int
    best_match(const Ref &m, int &best_sim) const
    {
        const auto &others = m.in_q ? t_.procs : q_.procs;
        const auto &matched_other = m.in_q ? matches_t_ : matches_q_;
        best_sim = -1;
        int best = -1;
        for (std::size_t i = 0; i < others.size(); ++i) {
            const int index = static_cast<int>(i);
            if (matched_other.contains(index) ||
                unmatchable_.contains(Ref{!m.in_q, index})) {
                continue;
            }
            const int s = sim::sim_score(repr(m), others[i].repr);
            if (s > best_sim) {
                best_sim = s;
                best = index;
            }
        }
        return best;
    }

    void
    record(const Ref &m, const Ref &other)
    {
        const int qi = m.in_q ? m.index : other.index;
        const int ti = m.in_q ? other.index : m.index;
        matches_q_[qi] = ti;
        matches_t_[ti] = qi;
    }

    const sim::ExecutableIndex &q_;
    const sim::ExecutableIndex &t_;
    const GameOptions &opt_;
    std::map<int, int> matches_q_;  ///< Q index -> T index
    std::map<int, int> matches_t_;  ///< T index -> Q index
    std::set<Ref> unmatchable_;
};

}  // namespace

GameResult
match_query(const sim::ExecutableIndex &Q, int qv_index,
            const sim::ExecutableIndex &T, const GameOptions &options)
{
    Game game(Q, T, options);
    return game.run(qv_index);
}

}  // namespace firmup::game
