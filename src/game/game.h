/**
 * @file
 * Binary similarity as a back-and-forth game — Algorithm 2 of the paper.
 *
 * The player tries to match the query procedure qv ∈ Q with a procedure
 * of the target executable T; the rival counters by exhibiting a better
 * match for the player's pick. The implementation is the player's winning
 * strategy: a stack of procedures to match, where a procedure is settled
 * only when the best match of its best match is itself (forward/backward
 * consistency), building the partial matching of Eq. 1 without ever
 * requiring a full matching of the two executables.
 *
 * Termination (GameDidntEnd in the paper):
 *   - qv acquires a match            → success;
 *   - the stack reaches a fixed state → failure (no consistent match);
 *   - too many matches or steps       → heuristic cut-off.
 */
#pragma once

#include <map>
#include <string>
#include <vector>

#include "sim/similarity.h"
#include "support/cancel.h"

namespace firmup::game {

/**
 * Game budgets and cut-off heuristics (the paper's third ending
 * condition, GameDidntEnd). Every budget ends the game with a graceful
 * `Unresolved` outcome rather than unbounded iteration — a corpus scan
 * must never hang on one pathological executable pair.
 */
struct GameOptions
{
    int max_steps = 512;        ///< step budget; always enforced
    std::size_t max_matches = 128;  ///< partial-matching size budget
    /** Wall-clock budget in seconds; 0 disables the deadline. */
    double max_seconds = 0.0;
    int min_sim = 1;  ///< below this, a pair shares nothing usable
    bool record_trace = false;  ///< narrate moves (Table 1 style)
    /**
     * Candidate retrieval for GetBestMatch. Exact (default) scores
     * every procedure sharing a strand hash with the probe; Lsh scores
     * only MinHash-band collisions (sim::lsh_candidates) and silently
     * falls back to Exact for any side without an LSH table or sketch,
     * so a hand-built index never breaks. The game logic itself —
     * consistency, budgets, tie-breaks — is retrieval-agnostic.
     */
    sim::RetrievalMode retrieval = sim::RetrievalMode::Exact;
    /**
     * Cooperative cancellation: polled at the same 64-iteration sample
     * point as the wall-clock deadline, so a SIGTERM'd scan drains each
     * in-flight game within a bounded number of cheap steps instead of
     * running it to completion. A cancelled game ends Unresolved with
     * GameResult::cancelled set.
     */
    const CancelToken *cancel = nullptr;
};

/** How a game ended. */
enum class GameEnding : std::uint8_t {
    Matched,     ///< qv acquired a consistent match
    NoMatch,     ///< fixed state: no consistent match exists
    Unresolved,  ///< a step/match/deadline budget expired first
};

/** Outcome of one query-vs-executable game. */
struct GameResult
{
    bool matched = false;
    GameEnding ending = GameEnding::NoMatch;
    /** The game was cut short by GameOptions::cancel, not a budget. */
    bool cancelled = false;
    /**
     * Unresolved specifically because the wall-clock deadline expired —
     * the only Unresolved cause that is machine-load-dependent rather
     * than deterministic, and therefore the only one worth retrying
     * (the driver's transient-failure policy keys off this).
     */
    bool deadline_expired = false;
    int target_index = -1;       ///< index into T.procs when matched
    std::uint64_t target_entry = 0;
    int sim = 0;                 ///< Sim(qv, match)
    int steps = 0;               ///< loop iterations (Fig. 9 metric)
    /**
     * Pairwise similarity scores actually computed: one per candidate
     * pair on a candidate-list memo miss (lists are memoized per game).
     */
    std::uint64_t pairs_scored = 0;
    /**
     * Pair scores a dense GetBestMatch (rescoring every procedure on
     * every call) would have computed but this game skipped, via the
     * inverted index's zero-share pruning and the per-game memo.
     * pairs_scored + pairs_pruned is the dense-equivalent pair count.
     */
    std::uint64_t pairs_pruned = 0;
    /**
     * Element-level scoring operations actually performed (posting
     * accumulations + query-hash probes; see sim::ScoringStats).
     */
    std::uint64_t scoring_elem_ops = 0;
    /**
     * Element ops a dense GetBestMatch would have spent: a full
     * (|m|+|other|) merge per procedure per call. The ratio
     * dense_elem_ops / scoring_elem_ops is the measured saving of
     * posting-list pruning + per-game memoization.
     */
    std::uint64_t dense_elem_ops = 0;
    /** The partial matching built along the way: Q index ↔ T index. */
    std::map<int, int> q_to_t;
    /** Player/rival narration when GameOptions::record_trace is set. */
    std::vector<std::string> trace;
};

/**
 * Run the game matching @p qv_index (into Q.procs) against T.
 */
GameResult match_query(const sim::ExecutableIndex &Q, int qv_index,
                       const sim::ExecutableIndex &T,
                       const GameOptions &options = {});

}  // namespace firmup::game
