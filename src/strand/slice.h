/**
 * @file
 * Basic-block decomposition into strands — Algorithm 1 of the paper.
 *
 * A strand is the backward data-flow slice of one "outward facing"
 * statement in a basic block: starting from the last uncovered statement,
 * every earlier statement that defines a variable the slice reads is
 * pulled in, until the slice's inputs are only values that existed before
 * the block. Every statement of the block ends up covered by exactly one
 * strand as a slice *tail* (it may appear in several strands as a
 * dependency).
 *
 * Two implementations share that algorithm:
 *
 *  - decompose_block() — the reference form: materializes each strand as
 *    a vector of copied statements. Simple, allocation-heavy; kept as
 *    the debug/ablation baseline and for callers that want standalone
 *    strands.
 *  - StrandSlicer — the cold-path form: slices into reusable index
 *    spans over the block's statement array, with epoch-stamped flat
 *    liveness state instead of per-statement set insertions. Zero
 *    statement copies, zero steady-state allocations, and an early exit
 *    when a slice's read set drains. Produces exactly the same strands
 *    in the same order (property-tested against decompose_block).
 */
#pragma once

#include <set>
#include <vector>

#include "ir/uir.h"

namespace firmup::strand {

/** A strand: statements in original block order; the last is the root. */
using Strand = std::vector<ir::Stmt>;

/**
 * Decompose @p block into strands (Alg. 1).
 *
 * Temporaries are SSA within the block (a µIR guarantee); guest registers
 * may be redefined, so the def-use chaining walks backwards and stops at
 * the most recent definition, exactly as the algorithm's WSet/RSet
 * formulation does.
 */
std::vector<Strand> decompose_block(const ir::Block &block);

/**
 * Reusable, allocation-free strand slicer.
 *
 * decompose() fills an internal pool of statement indexes; strand @c s
 * is the ascending index sequence [indexes(s), indexes(s) + size(s)),
 * referring into the decomposed block's `stmts` array. The pool and all
 * scratch state are reused across calls — steady-state slicing of a
 * whole procedure allocates nothing.
 */
class StrandSlicer
{
  public:
    /** Slice @p block; results stay valid until the next decompose(). */
    void decompose(const ir::Block &block);

    /** Number of strands in the last decomposed block. */
    std::size_t strand_count() const { return spans_.size(); }

    /** Statement-index span of strand @p s, ascending block order. */
    const std::uint32_t *
    indexes(std::size_t s) const
    {
        return pool_.data() + spans_[s].offset;
    }

    /** Number of statements in strand @p s. */
    std::size_t
    size(std::size_t s) const
    {
        return spans_[s].length;
    }

  private:
    struct Span
    {
        std::uint32_t offset = 0;
        std::uint32_t length = 0;
    };

    /** Mark @p v live; no-op when already live this strand. */
    void mark_read(const ir::Var &v);
    /** Unmark @p v; no-op when not live this strand. */
    void unmark_write(const ir::Var &v);
    bool is_live(const ir::Var &v) const;
    void begin_strand();

    std::vector<Span> spans_;
    std::vector<std::uint32_t> pool_;

    // Scratch, reused across blocks.
    std::vector<std::uint8_t> covered_;
    std::vector<std::uint32_t> members_;  ///< descending, per strand

    /**
     * Liveness of the slice's read set, epoch-stamped per strand:
     * live iff stamp == epoch_. Erase resets the stamp to 0 (never a
     * valid epoch). Temps beyond the dense window — only possible on
     * malformed input — spill to an ordered set.
     */
    static constexpr std::size_t kDenseTempCap = std::size_t{1} << 16;
    std::uint32_t epoch_ = 0;
    std::size_t live_count_ = 0;  ///< live vars; 0 ends the backward walk
    std::vector<std::uint32_t> temp_stamp_;
    std::vector<std::uint32_t> reg_stamp_;
    std::set<ir::TempId> temp_overflow_;
};

}  // namespace firmup::strand
