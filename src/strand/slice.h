/**
 * @file
 * Basic-block decomposition into strands — Algorithm 1 of the paper.
 *
 * A strand is the backward data-flow slice of one "outward facing"
 * statement in a basic block: starting from the last uncovered statement,
 * every earlier statement that defines a variable the slice reads is
 * pulled in, until the slice's inputs are only values that existed before
 * the block. Every statement of the block ends up covered by exactly one
 * strand as a slice *tail* (it may appear in several strands as a
 * dependency).
 */
#pragma once

#include <vector>

#include "ir/uir.h"

namespace firmup::strand {

/** A strand: statements in original block order; the last is the root. */
using Strand = std::vector<ir::Stmt>;

/**
 * Decompose @p block into strands (Alg. 1).
 *
 * Temporaries are SSA within the block (a µIR guarantee); guest registers
 * may be redefined, so the def-use chaining walks backwards and stops at
 * the most recent definition, exactly as the algorithm's WSet/RSet
 * formulation does.
 */
std::vector<Strand> decompose_block(const ir::Block &block);

}  // namespace firmup::strand
