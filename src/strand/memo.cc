#include "strand/memo.h"

#include "support/hash.h"
#include "support/trace.h"

namespace firmup::strand {

namespace {

const trace::Counter c_memo_hits("canon.memo_hits");
const trace::Counter c_memo_misses("canon.memo_misses");

std::uint64_t
options_digest(const CanonOptions &options)
{
    std::uint64_t h = hash_combine(0x46574d43 /* 'FWMC' */,
                                   options.sections.text_lo);
    h = hash_combine(h, options.sections.text_hi);
    h = hash_combine(h, options.sections.data_lo);
    h = hash_combine(h, options.sections.data_hi);
    h = hash_combine(h, (options.eliminate_offsets ? 1u : 0u) |
                            (options.optimize ? 2u : 0u) |
                            (options.normalize_names ? 4u : 0u));
    return hash_combine(h, options.memo_context);
}

}  // namespace

CanonMemo::Key
block_memo_key(const ir::Block &block, const CanonOptions &options)
{
    const std::uint64_t base = options_digest(options);
    // Two digests with unrelated seeds and unrelated mixing (a
    // hash_combine chain and an FNV-style multiply chain over mixed
    // words) so a collision requires both to collide at once.
    std::uint64_t hi = mix64(base ^ 0x9e3779b97f4a7c15ull);
    std::uint64_t lo = mix64(base + 0x517cc1b727220a95ull);
    const auto fold = [&hi, &lo](std::uint64_t v) {
        hi = hash_combine(hi, v);
        lo = (lo ^ mix64(v)) * kFnv1a64Prime;
    };
    fold(block.stmts.size());
    for (const ir::Stmt &s : block.stmts) {
        // Everything canonicalization can read, except insn_addr.
        fold(static_cast<std::uint64_t>(s.kind) |
             (static_cast<std::uint64_t>(s.bin_op) << 8) |
             (static_cast<std::uint64_t>(s.un_op) << 16) |
             (static_cast<std::uint64_t>(s.a.kind) << 24) |
             (static_cast<std::uint64_t>(s.b.kind) << 32) |
             (static_cast<std::uint64_t>(s.extra.kind) << 40));
        fold(static_cast<std::uint64_t>(s.dst) |
             (static_cast<std::uint64_t>(s.reg) << 32));
        fold(s.a.value);
        fold(s.b.value);
        fold(s.extra.value);
    }
    return {hi, lo};
}

const std::vector<std::uint64_t> *
CanonMemo::find(const Key &key)
{
    Shard &shard = shard_of(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.entries.find(key);
    if (it == shard.entries.end()) {
        return nullptr;
    }
    hits_.fetch_add(1, std::memory_order_relaxed);
    c_memo_hits.add();
    // Node-based map: the mapped vector is immutable after insertion
    // and its address survives rehashing, so returning it unlocked is
    // safe.
    return &it->second;
}

const std::vector<std::uint64_t> *
CanonMemo::publish(const Key &key, std::vector<std::uint64_t> hashes)
{
    Shard &shard = shard_of(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    const auto [it, inserted] =
        shard.entries.try_emplace(key, std::move(hashes));
    if (inserted) {
        misses_.fetch_add(1, std::memory_order_relaxed);
        c_memo_misses.add();
    } else {
        // Lost the compute race: the winner's span is identical (the
        // key pins the content); count the duplicate work as a hit so
        // totals stay schedule-independent.
        hits_.fetch_add(1, std::memory_order_relaxed);
        c_memo_hits.add();
    }
    return &it->second;
}

CanonMemo::Stats
CanonMemo::stats() const
{
    return {hits_.load(std::memory_order_relaxed),
            misses_.load(std::memory_order_relaxed)};
}

std::size_t
CanonMemo::size() const
{
    std::size_t total = 0;
    for (const Shard &shard : shards_) {
        std::lock_guard<std::mutex> lock(shard.mutex);
        total += shard.entries.size();
    }
    return total;
}

void
CanonMemo::clear()
{
    for (Shard &shard : shards_) {
        std::lock_guard<std::mutex> lock(shard.mutex);
        shard.entries.clear();
    }
    hits_.store(0, std::memory_order_relaxed);
    misses_.store(0, std::memory_order_relaxed);
}

}  // namespace firmup::strand
