/**
 * @file
 * MinHash sketches over strand-hash sets (retrieval prefilter).
 *
 * A procedure's strand set can be large; comparing a query against every
 * procedure that shares even one strand hash is the linear term left in
 * corpus retrieval. A MinHash sketch compresses the set into
 * kSketchSize = 64 words: slot i holds the minimum of a seeded
 * permutation pi_i applied to every hash in the set. Two sets' sketches
 * agree on slot i with probability equal to their Jaccard similarity,
 * so agreeing slots estimate set resemblance and banded slot groups
 * (sim/similarity.h's LSH table) turn "resemblance above a threshold"
 * into a hash-table probe.
 *
 * Every permutation is the splitmix64 finalizer (support/hash.h mix64 —
 * a bijection on 64-bit words) applied after XOR with a fixed,
 * compile-time salt, so sketches are bit-identical across runs,
 * platforms and thread counts; the persisted FWIX v4 layout depends on
 * this stability (a salt change must bump the layout descriptor).
 */
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace firmup::strand {

/** Number of MinHash permutations (sketch words) per procedure. */
inline constexpr std::size_t kSketchSize = 64;

/** Slot value of the empty set: no hash ever permutes to ~0 minimum. */
inline constexpr std::uint64_t kSketchEmptySlot = ~std::uint64_t{0};

/** One procedure's MinHash sketch (slot i = min over pi_i(hashes)). */
using MinHashSketch = std::array<std::uint64_t, kSketchSize>;

/**
 * Sketch of the hash set @p hashes[0..count). Order- and
 * duplicate-insensitive; the empty set yields all-kSketchEmptySlot.
 */
MinHashSketch minhash_sketch(const std::uint64_t *hashes,
                             std::size_t count);

/** Fraction of agreeing slots — the Jaccard-similarity estimate. */
double sketch_similarity(const MinHashSketch &a, const MinHashSketch &b);

/**
 * LSH band key: a 64-bit digest of @p rows consecutive sketch words
 * starting at slot @p band * @p rows, salted with the band index so
 * equal row runs in different bands never alias. Requires
 * (band + 1) * rows <= kSketchSize.
 */
std::uint64_t band_key(const MinHashSketch &sketch, unsigned band,
                       unsigned rows);

}  // namespace firmup::strand
