#include "strand/slice.h"

#include <algorithm>
#include <set>

namespace firmup::strand {

namespace {

/**
 * Allocation-free forms of ir::read_set / ir::write_set: invoke @p fn
 * for each variable instead of materializing a vector. Must mirror the
 * uir.cc switch exactly — the slicer's equivalence to decompose_block
 * depends on it (and is property-tested).
 */
template <typename Fn>
void
for_each_read(const ir::Stmt &s, Fn &&fn)
{
    const auto operand = [&fn](const ir::Operand &op) {
        if (op.kind == ir::Operand::Kind::Temp) {
            fn(ir::Var::temp(op.as_temp()));
        }
    };
    switch (s.kind) {
      case ir::Stmt::Kind::Get:
        fn(ir::Var::reg(s.reg));
        break;
      case ir::Stmt::Kind::Put:
        operand(s.a);
        break;
      case ir::Stmt::Kind::Bin:
      case ir::Stmt::Kind::Store:
      case ir::Stmt::Kind::Exit:
        operand(s.a);
        operand(s.b);
        break;
      case ir::Stmt::Kind::Un:
      case ir::Stmt::Kind::Load:
      case ir::Stmt::Kind::Call:
        operand(s.a);
        break;
      case ir::Stmt::Kind::Select:
        operand(s.a);
        operand(s.b);
        operand(s.extra);
        break;
    }
}

template <typename Fn>
void
for_each_write(const ir::Stmt &s, Fn &&fn)
{
    if (s.defines_temp()) {
        fn(ir::Var::temp(s.dst));
    }
    if (s.kind == ir::Stmt::Kind::Put) {
        fn(ir::Var::reg(s.reg));
    }
}

}  // namespace

std::vector<Strand>
decompose_block(const ir::Block &block)
{
    const auto &bb = block.stmts;
    std::vector<Strand> strands;
    std::set<std::size_t> indexes;
    for (std::size_t i = 0; i < bb.size(); ++i) {
        indexes.insert(i);
    }

    while (!indexes.empty()) {
        const std::size_t top = *indexes.rbegin();
        indexes.erase(top);

        std::vector<std::size_t> member_indexes{top};
        std::set<ir::Var> svars;
        for (const ir::Var &v : ir::read_set(bb[top])) {
            svars.insert(v);
        }
        for (std::size_t i = top; i-- > 0;) {
            bool writes_needed = false;
            for (const ir::Var &v : ir::write_set(bb[i])) {
                writes_needed |= svars.contains(v);
            }
            if (!writes_needed) {
                continue;
            }
            member_indexes.push_back(i);
            // Registers are not SSA within a block: the *nearest* earlier
            // definition satisfies the use, so stop tracking the defined
            // variables and start tracking this statement's reads.
            for (const ir::Var &v : ir::write_set(bb[i])) {
                svars.erase(v);
            }
            for (const ir::Var &v : ir::read_set(bb[i])) {
                svars.insert(v);
            }
            indexes.erase(i);
        }

        std::sort(member_indexes.begin(), member_indexes.end());
        Strand strand;
        strand.reserve(member_indexes.size());
        for (std::size_t i : member_indexes) {
            strand.push_back(bb[i]);
        }
        strands.push_back(std::move(strand));
    }
    return strands;
}

void
StrandSlicer::begin_strand()
{
    if (++epoch_ == 0) {
        std::fill(temp_stamp_.begin(), temp_stamp_.end(), 0u);
        std::fill(reg_stamp_.begin(), reg_stamp_.end(), 0u);
        epoch_ = 1;
    }
    if (!temp_overflow_.empty()) {
        temp_overflow_.clear();
    }
    live_count_ = 0;
}

bool
StrandSlicer::is_live(const ir::Var &v) const
{
    if (v.kind == ir::Var::Kind::Reg) {
        return v.id < reg_stamp_.size() && reg_stamp_[v.id] == epoch_;
    }
    if (v.id >= kDenseTempCap) {
        return temp_overflow_.contains(v.id);
    }
    return v.id < temp_stamp_.size() && temp_stamp_[v.id] == epoch_;
}

void
StrandSlicer::mark_read(const ir::Var &v)
{
    if (v.kind == ir::Var::Kind::Reg) {
        if (v.id >= reg_stamp_.size()) {
            reg_stamp_.resize(v.id + 1, 0u);
        }
        if (reg_stamp_[v.id] != epoch_) {
            reg_stamp_[v.id] = epoch_;
            ++live_count_;
        }
        return;
    }
    if (v.id >= kDenseTempCap) {
        if (temp_overflow_.insert(v.id).second) {
            ++live_count_;
        }
        return;
    }
    if (v.id >= temp_stamp_.size()) {
        temp_stamp_.resize(v.id + 1, 0u);
    }
    if (temp_stamp_[v.id] != epoch_) {
        temp_stamp_[v.id] = epoch_;
        ++live_count_;
    }
}

void
StrandSlicer::unmark_write(const ir::Var &v)
{
    if (v.kind == ir::Var::Kind::Reg) {
        if (v.id < reg_stamp_.size() && reg_stamp_[v.id] == epoch_) {
            reg_stamp_[v.id] = 0;
            --live_count_;
        }
        return;
    }
    if (v.id >= kDenseTempCap) {
        if (temp_overflow_.erase(v.id) != 0) {
            --live_count_;
        }
        return;
    }
    if (v.id < temp_stamp_.size() && temp_stamp_[v.id] == epoch_) {
        temp_stamp_[v.id] = 0;
        --live_count_;
    }
}

void
StrandSlicer::decompose(const ir::Block &block)
{
    const auto &bb = block.stmts;
    spans_.clear();
    pool_.clear();
    covered_.assign(bb.size(), 0);

    // Outer loop: descending over uncovered statements — identical to
    // the reference's "largest remaining index" selection.
    for (std::size_t top = bb.size(); top-- > 0;) {
        if (covered_[top] != 0) {
            continue;
        }
        begin_strand();
        members_.clear();
        members_.push_back(static_cast<std::uint32_t>(top));
        covered_[top] = 1;
        for_each_read(bb[top], [this](const ir::Var &v) { mark_read(v); });

        // Backward walk. When the live read set drains, no remaining
        // statement can satisfy a use — the reference would scan on,
        // matching nothing; skipping that scan changes no output.
        for (std::size_t i = top; live_count_ != 0 && i-- > 0;) {
            bool writes_needed = false;
            for_each_write(bb[i], [this, &writes_needed](
                                      const ir::Var &v) {
                writes_needed |= is_live(v);
            });
            if (!writes_needed) {
                continue;
            }
            members_.push_back(static_cast<std::uint32_t>(i));
            covered_[i] = 1;
            // Registers are not SSA within a block: the *nearest*
            // earlier definition satisfies the use, so stop tracking
            // the defined variables and start tracking this
            // statement's reads.
            for_each_write(bb[i],
                           [this](const ir::Var &v) { unmark_write(v); });
            for_each_read(bb[i],
                          [this](const ir::Var &v) { mark_read(v); });
        }

        // members_ is strictly descending; emit it reversed to get the
        // ascending block order the strand contract requires.
        Span span;
        span.offset = static_cast<std::uint32_t>(pool_.size());
        span.length = static_cast<std::uint32_t>(members_.size());
        for (std::size_t k = members_.size(); k-- > 0;) {
            pool_.push_back(members_[k]);
        }
        spans_.push_back(span);
    }
}

}  // namespace firmup::strand
