#include "strand/slice.h"

#include <algorithm>
#include <set>

namespace firmup::strand {

std::vector<Strand>
decompose_block(const ir::Block &block)
{
    const auto &bb = block.stmts;
    std::vector<Strand> strands;
    std::set<std::size_t> indexes;
    for (std::size_t i = 0; i < bb.size(); ++i) {
        indexes.insert(i);
    }

    while (!indexes.empty()) {
        const std::size_t top = *indexes.rbegin();
        indexes.erase(top);

        std::vector<std::size_t> member_indexes{top};
        std::set<ir::Var> svars;
        for (const ir::Var &v : ir::read_set(bb[top])) {
            svars.insert(v);
        }
        for (std::size_t i = top; i-- > 0;) {
            bool writes_needed = false;
            for (const ir::Var &v : ir::write_set(bb[i])) {
                writes_needed |= svars.contains(v);
            }
            if (!writes_needed) {
                continue;
            }
            member_indexes.push_back(i);
            // Registers are not SSA within a block: the *nearest* earlier
            // definition satisfies the use, so stop tracking the defined
            // variables and start tracking this statement's reads.
            for (const ir::Var &v : ir::write_set(bb[i])) {
                svars.erase(v);
            }
            for (const ir::Var &v : ir::read_set(bb[i])) {
                svars.insert(v);
            }
            indexes.erase(i);
        }

        std::sort(member_indexes.begin(), member_indexes.end());
        Strand strand;
        strand.reserve(member_indexes.size());
        for (std::size_t i : member_indexes) {
            strand.push_back(bb[i]);
        }
        strands.push_back(std::move(strand));
    }
    return strands;
}

}  // namespace firmup::strand
