/**
 * @file
 * Strand canonicalization (paper section 3.2.1).
 *
 * Transforms a sliced strand into a canonical string so that semantically
 * equivalent fragments from different compilations — and different ISAs —
 * become syntactically equal. The pipeline applies exactly the steps the
 * paper lists:
 *
 *  1. **Offset elimination** — constants that point into the text or data
 *     sections (jump targets, static-data addresses) are replaced by
 *     anonymous offset tokens; stack/struct displacement constants are
 *     kept, as they describe the data the procedure manipulates.
 *  2. **Register folding** — registers read before written become the
 *     strand's inputs; the value computed by the strand's root statement
 *     is its output ("return value").
 *  3. **Compiler optimization** — symbolic re-optimization standing in
 *     for LLVM `opt`: constant folding and propagation, expression
 *     simplification, instruction combining (compare/flag idioms folded
 *     to a single comparison), common subexpression elimination (via hash
 *     consing) and dead code elimination (implicit: only the root's
 *     dataflow is printed).
 *  4. **Variable name normalization** — inputs and offsets are renamed by
 *     order of appearance in the canonical print (reg0, reg1, ..., off0).
 *
 * Each step can be disabled independently for the ablation benchmarks.
 *
 * The canonical form is a byte sequence with a pinned, explicitly
 * left-to-right emission order (DESIGN.md section 12): hashing streams
 * exactly those bytes into the FNV-1a state without materializing the
 * string, and `canonical_strand` renders the same bytes for debugging.
 */
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "ir/uir.h"
#include "strand/sketch.h"
#include "strand/slice.h"

namespace firmup::strand {

class CanonMemo;

/** Section geometry used by offset elimination. */
struct SectionRanges
{
    std::uint64_t text_lo = 0, text_hi = 0;
    std::uint64_t data_lo = 0, data_hi = 0;

    bool
    contains(std::uint64_t value) const
    {
        return (value >= text_lo && value < text_hi) ||
               (value >= data_lo && value < data_hi);
    }
};

/** Canonicalization configuration (all knobs default to the paper's). */
struct CanonOptions
{
    SectionRanges sections;
    bool eliminate_offsets = true;
    bool optimize = true;
    bool normalize_names = true;
    /**
     * Hash strands by streaming the canonical byte sequence straight
     * into the FNV-1a state (default). false builds the canonical
     * string first and hashes it — the debug/ablation reference path.
     * Both produce the same hash for every strand (property-tested).
     */
    bool stream_hash = true;
    /**
     * Optional cross-executable block memo (see strand/memo.h). When
     * set, represent_procedure() reuses the memoized strand-hash span
     * of any block already canonicalized under equivalent options.
     * Never part of hash identity: memo-on and memo-off produce
     * bit-identical representations.
     */
    CanonMemo *memo = nullptr;
    /**
     * Extra disambiguation folded into memo keys — the indexers put
     * the ISA here. Semantically redundant (µIR statements plus the
     * knobs above fully determine the canonical form), but kept in the
     * key so sharing across architectures is conservative by
     * construction. Ignored when `memo` is null.
     */
    std::uint64_t memo_context = 0;
};

/** Canonical string form of one strand. */
std::string canonical_strand(const Strand &strand,
                             const CanonOptions &options);

/** 64-bit hash of the canonical form. */
std::uint64_t strand_hash(const Strand &strand,
                          const CanonOptions &options);

/**
 * A procedure represented as its set of hashed canonical strands.
 *
 * The set is stored flat — a sorted, deduplicated vector — so that
 * Sim(q, t) is a cache-friendly merge intersection instead of per-hash
 * tree lookups. Mutate via add() and restore the invariant with
 * finalize(); represent_procedure() and the index loaders do this for
 * you.
 */
struct ProcedureStrands
{
    /**
     * Sorted, unique strand hashes (flat set; see finalize()). Owning
     * mode only: a view-mode set (FWIX v5 mmap load) leaves this empty
     * and points `hash_view` into the mapped blob instead. All readers
     * must go through hash_data()/hash_count(), which dispatch to
     * whichever storage is live; mutation (add/finalize) is an
     * owning-mode operation.
     */
    std::vector<std::uint64_t> hashes;

    /**
     * Non-owning view of the hash set (sorted, unique), borrowed from
     * an mmap'ed FWIX v5 arena. Lifetime is pinned by the owning
     * ExecutableIndex's `backing` handle, never by this struct.
     */
    const std::uint64_t *hash_view = nullptr;
    std::uint32_t hash_view_count = 0;

    std::size_t block_count = 0;
    std::size_t stmt_count = 0;

    /**
     * Block summary for the tiered intersection kernel
     * (sim::sim_score): the sorted hash vector is implicitly
     * partitioned into 256 buckets by each hash's top byte.
     * `bucket_bits` is the 256-bit bucket-occupancy bitmap (bit b of
     * word b/64 set iff some hash has top byte b) and `word_offsets`
     * delimits the contiguous run of hashes whose top byte falls in
     * bucket word w: [word_offsets[w], word_offsets[w+1]). ANDing two
     * procedures' occupancy words rejects zero-overlap pairs without
     * touching the hash vectors, and word spans whose common bits are
     * zero are skipped wholesale. Built by finalize(); hand-assembled
     * sets that never finalize() have no summary and take the merge
     * fallback.
     */
    std::array<std::uint64_t, 4> bucket_bits{};
    std::array<std::uint32_t, 5> word_offsets{};
    bool summary_built = false;

    /**
     * MinHash sketch of the hash set (strand/sketch.h) for the LSH
     * retrieval prefilter. Not maintained by finalize(): the sim layer
     * builds it (sim::ExecutableIndex::finalize() and the parallel
     * indexing fan-out) so pure canonicalization never pays for it, and
     * FWIX v4 persists it next to the block summary. A set without
     * `sketch_built` simply takes the exact posting path.
     */
    MinHashSketch sketch{};
    bool sketch_built = false;

    /** Append a hash; the set is unordered until finalize() runs. */
    void add(std::uint64_t h) { hashes.push_back(h); }

    /** Sort + deduplicate — restores the flat-set invariant. */
    void finalize();

    /**
     * (Re)build bucket_bits/word_offsets from the hashes. Requires the
     * flat-set invariant; finalize() calls it for you.
     */
    void build_summary();

    /**
     * (Re)build the MinHash sketch from the hashes. Order- and
     * duplicate-insensitive, so it is valid before or after finalize().
     */
    void build_sketch();

    /** Membership by binary search (requires the flat-set invariant). */
    bool contains(std::uint64_t h) const;

    /** First element of the live hash storage (owning or view). */
    const std::uint64_t *
    hash_data() const
    {
        return hash_view != nullptr ? hash_view : hashes.data();
    }

    /** Element count of the live hash storage (owning or view). */
    std::size_t
    hash_count() const
    {
        return hash_view != nullptr ? std::size_t{hash_view_count}
                                    : hashes.size();
    }

    bool hash_empty() const { return hash_count() == 0; }

    std::size_t size() const { return hash_count(); }
};

/** Flat strand set from arbitrary, possibly duplicated hashes. */
ProcedureStrands strand_set(std::vector<std::uint64_t> hashes);

/** Decompose, canonicalize and hash every block of @p proc (section 3.3). */
ProcedureStrands represent_procedure(const ir::Procedure &proc,
                                     const CanonOptions &options);

/** All canonical strand strings of @p proc (debugging, Fig. 3 demo). */
std::vector<std::string> canonical_strings(const ir::Procedure &proc,
                                           const CanonOptions &options);

}  // namespace firmup::strand
