#include "strand/sketch.h"

#include "strand/canon.h"
#include "support/hash.h"

namespace firmup::strand {
namespace {

/**
 * Per-permutation salts: the splitmix64 stream from a fixed seed. The
 * values are pinned by the seed and the stream constants, never by the
 * build — changing either silently reshuffles every persisted sketch,
 * which is why sim/persist.cc folds "mh64/v1" into the FWIX layout
 * descriptor.
 */
std::array<std::uint64_t, kSketchSize>
make_salts()
{
    std::array<std::uint64_t, kSketchSize> salts{};
    std::uint64_t state = 0x4669726d55703864ull;  // "FirmUp8d"
    for (std::size_t i = 0; i < kSketchSize; ++i) {
        state += 0x9e3779b97f4a7c15ull;
        salts[i] = mix64(state);
    }
    return salts;
}

const std::array<std::uint64_t, kSketchSize> kSalts = make_salts();

}  // namespace

MinHashSketch
minhash_sketch(const std::uint64_t *hashes, std::size_t count)
{
    MinHashSketch sketch;
    sketch.fill(kSketchEmptySlot);
    for (std::size_t h = 0; h < count; ++h) {
        const std::uint64_t hash = hashes[h];
        for (std::size_t i = 0; i < kSketchSize; ++i) {
            const std::uint64_t permuted = mix64(hash ^ kSalts[i]);
            if (permuted < sketch[i]) {
                sketch[i] = permuted;
            }
        }
    }
    return sketch;
}

double
sketch_similarity(const MinHashSketch &a, const MinHashSketch &b)
{
    std::size_t agree = 0;
    for (std::size_t i = 0; i < kSketchSize; ++i) {
        agree += a[i] == b[i] ? 1 : 0;
    }
    return static_cast<double>(agree) /
           static_cast<double>(kSketchSize);
}

void
ProcedureStrands::build_sketch()
{
    sketch = minhash_sketch(hash_data(), hash_count());
    sketch_built = true;
}

std::uint64_t
band_key(const MinHashSketch &sketch, unsigned band, unsigned rows)
{
    std::uint64_t key = hash_combine(kFnv1a64Seed, band);
    const std::size_t base = static_cast<std::size_t>(band) * rows;
    for (unsigned r = 0; r < rows; ++r) {
        key = hash_combine(key, sketch[base + r]);
    }
    return key;
}

}  // namespace firmup::strand
