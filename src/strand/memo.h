/**
 * @file
 * CanonMemo — a cross-executable canonicalization memo.
 *
 * Firmware corpora are dominated by reuse: images from the same vendor
 * ship the same packages, and different builds share whole basic blocks
 * byte-for-byte. Canonicalizing a block is pure — its strand hashes are
 * fully determined by the block's statements and the CanonOptions — so
 * the driver shares one thread-safe memo across every executable of a
 * scan: a basic block seen anywhere before is represented by replaying
 * its memoized strand-hash span instead of re-slicing and re-hashing.
 *
 * The key is a 128-bit digest over (canon options, memo context, block
 * statement content). The options — section geometry and the three
 * ablation knobs — MUST be part of the key: offset elimination depends
 * on the per-executable section ranges, so the same statements
 * canonicalize differently under different geometry. Instruction
 * addresses are deliberately excluded; canonicalization never reads
 * them, which is exactly what makes relocated copies of a block share
 * one entry. Collisions at 128 bits are negligible, preserving the hard
 * invariant that memo-on and memo-off scans are bit-identical.
 *
 * Accounting is schedule-independent: a lookup that finds a completed
 * entry is a hit; a computation that wins the insert race is a miss; a
 * computation that loses the race counts as a hit (the winner's span is
 * used). For any interleaving, a key with n occurrences contributes
 * exactly 1 miss and n-1 hits, so the canon.memo_* counters are
 * invariant across worker-thread counts.
 */
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "ir/uir.h"
#include "strand/canon.h"

namespace firmup::strand {

/** Thread-safe sharded memo: block content key -> strand-hash span. */
class CanonMemo
{
  public:
    /** 128-bit content key (two independently-seeded digests). */
    struct Key
    {
        std::uint64_t hi = 0;
        std::uint64_t lo = 0;

        bool operator==(const Key &) const = default;
    };

    struct Stats
    {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
    };

    /**
     * The memoized strand hashes for @p key, or nullptr. A non-null
     * return counts one hit; a null return counts nothing — the caller
     * computes and publish()es, and the accounting happens there.
     * The returned span is immutable and stable for the memo's lifetime
     * (or until clear()).
     */
    const std::vector<std::uint64_t> *find(const Key &key);

    /**
     * Publish the hashes computed for @p key and return the canonical
     * stored span. Counts one miss when this call inserted the entry;
     * one hit when a concurrent computation won the race (the winner's
     * identical span is returned and @p hashes is discarded).
     */
    const std::vector<std::uint64_t> *publish(
        const Key &key, std::vector<std::uint64_t> hashes);

    /** Schedule-independent hit/miss totals (see file comment). */
    Stats stats() const;

    /** Number of memoized blocks. */
    std::size_t size() const;

    /**
     * Drop every entry and zero the stats. Not safe concurrently with
     * find()/publish() callers holding returned spans.
     */
    void clear();

  private:
    struct KeyHash
    {
        std::size_t operator()(const Key &k) const
        {
            return static_cast<std::size_t>(k.lo);
        }
    };

    struct Shard
    {
        mutable std::mutex mutex;
        std::unordered_map<Key, std::vector<std::uint64_t>, KeyHash>
            entries;
    };

    static constexpr std::size_t kShards = 64;

    Shard &shard_of(const Key &key) { return shards_[key.hi % kShards]; }

    std::array<Shard, kShards> shards_;
    std::atomic<std::uint64_t> hits_{0};
    std::atomic<std::uint64_t> misses_{0};
};

/**
 * Derive the memo key of @p block under @p options: both 64-bit halves
 * chain over the options digest (section ranges, ablation knobs,
 * memo_context) and every statement's content fields — kind, dst, reg,
 * operators, operand kinds and values — excluding insn_addr.
 */
CanonMemo::Key block_memo_key(const ir::Block &block,
                              const CanonOptions &options);

}  // namespace firmup::strand
