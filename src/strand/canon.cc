#include "strand/canon.h"

#include <algorithm>
#include <map>
#include <string_view>

#include "strand/memo.h"
#include "support/error.h"
#include "support/hash.h"
#include "support/trace.h"

namespace firmup::strand {

namespace {

const trace::Counter c_procedures("canon.procedures");
const trace::Counter c_strands("canon.strands_extracted");
const trace::Counter c_passes("canon.passes_applied");

}  // namespace

using ir::BinOp;
using ir::Operand;
using ir::Stmt;
using ir::UnOp;

namespace {

/** Expression node in the canonicalization arena. */
struct Expr
{
    enum class Kind : std::uint8_t {
        Const, Input, Offset, Load, Bin, Un, Select, Call,
    };
    Kind kind;
    std::uint32_t cval = 0;   ///< Const payload
    ir::RegId reg = 0;        ///< Input origin register
    std::uint64_t raw = 0;    ///< Offset original value
    BinOp bin = BinOp::Add;
    UnOp un = UnOp::Neg;
    int a = -1, b = -1, c = -1;
    std::uint64_t shash = 0;  ///< structural, allocation-independent
};

std::uint32_t
eval_binop(BinOp op, std::uint32_t a, std::uint32_t b)
{
    const auto sa = static_cast<std::int32_t>(a);
    const auto sb = static_cast<std::int32_t>(b);
    switch (op) {
      case BinOp::Add: return a + b;
      case BinOp::Sub: return a - b;
      case BinOp::Mul: return a * b;
      case BinOp::DivS:
        return (sb == 0 || (sa == INT32_MIN && sb == -1))
                   ? 0 : static_cast<std::uint32_t>(sa / sb);
      case BinOp::DivU: return b == 0 ? 0 : a / b;
      case BinOp::RemS:
        return (sb == 0 || (sa == INT32_MIN && sb == -1))
                   ? 0 : static_cast<std::uint32_t>(sa % sb);
      case BinOp::RemU: return b == 0 ? 0 : a % b;
      case BinOp::And: return a & b;
      case BinOp::Or: return a | b;
      case BinOp::Xor: return a ^ b;
      case BinOp::Shl: return a << (b & 31);
      case BinOp::ShrL: return a >> (b & 31);
      case BinOp::ShrA:
        return static_cast<std::uint32_t>(sa >> (b & 31));
      case BinOp::CmpEQ: return a == b;
      case BinOp::CmpNE: return a != b;
      case BinOp::CmpLTS: return sa < sb;
      case BinOp::CmpLTU: return a < b;
      case BinOp::CmpLES: return sa <= sb;
      case BinOp::CmpLEU: return a <= b;
    }
    return 0;
}

/**
 * Arena + smart constructors implementing the simplification rules.
 * The arena is reused across all strands of a procedure: reset()
 * truncates it without releasing capacity, so steady-state
 * canonicalization allocates nothing.
 */
class Builder
{
  public:
    explicit Builder(const CanonOptions &options) : opt_(options) {}

    const Expr &at(int i) const { return arena_[static_cast<size_t>(i)]; }

    /** Truncate the arena, keeping its capacity for the next strand. */
    void reset() { arena_.clear(); }

    int
    constant(std::uint32_t value)
    {
        if (opt_.eliminate_offsets && opt_.sections.contains(value)) {
            Expr e{Expr::Kind::Offset};
            e.raw = value;
            e.shash = mix64(0x0FF5E7);  // all offsets structurally equal
            return add(e);
        }
        Expr e{Expr::Kind::Const};
        e.cval = value;
        e.shash = hash_combine(1, value);
        return add(e);
    }

    int
    input(ir::RegId reg)
    {
        Expr e{Expr::Kind::Input};
        e.reg = reg;
        // Inputs hash identically so that register allocation cannot
        // perturb commutative operand ordering.
        e.shash = mix64(0x1A9F7);
        return add(e);
    }

    int
    load(int addr)
    {
        Expr e{Expr::Kind::Load};
        e.a = addr;
        e.shash = hash_combine(mix64(3), at(addr).shash);
        return add(e);
    }

    int
    call(int target)
    {
        Expr e{Expr::Kind::Call};
        e.a = target;
        e.shash = hash_combine(mix64(4), at(target).shash);
        return add(e);
    }

    int
    select(int cond, int t, int f)
    {
        Expr e{Expr::Kind::Select};
        e.a = cond;
        e.b = t;
        e.c = f;
        e.shash = hash_combine(
            hash_combine(mix64(5), at(cond).shash),
            hash_combine(at(t).shash, at(f).shash));
        return add(e);
    }

    int
    unop(UnOp op, int a)
    {
        if (opt_.optimize) {
            const Expr &ea = at(a);
            if (ea.kind == Expr::Kind::Const) {
                return constant(op == UnOp::Neg ? 0u - ea.cval : ~ea.cval);
            }
            // neg(neg(x)) = x, not(not(x)) = x
            if (ea.kind == Expr::Kind::Un && ea.un == op) {
                return ea.a;
            }
        }
        Expr e{Expr::Kind::Un};
        e.un = op;
        e.a = a;
        e.shash = hash_combine(mix64(10 + static_cast<int>(op)),
                               at(a).shash);
        return add(e);
    }

    int
    binop(BinOp op, int a, int b)
    {
        if (!opt_.optimize) {
            return raw_bin(op, a, b);
        }
        // Constant folding.
        if (is_const(a) && is_const(b)) {
            return constant(eval_binop(op, cval(a), cval(b)));
        }
        // Normalize subtraction-by-constant into addition.
        if (op == BinOp::Sub && is_const(b)) {
            return binop(BinOp::Add, a, constant(0u - cval(b)));
        }
        // Constant to the right for commutative operators.
        if (ir::is_commutative(op) && is_const(a) && !is_const(b)) {
            std::swap(a, b);
        }
        // Reassociate (x + c1) + c2. Copy the child indexes out first:
        // the nested constant() may grow the arena and invalidate any
        // reference into it while the argument list is evaluated.
        if (op == BinOp::Add && is_const(b)) {
            const Expr &ea = at(a);
            if (ea.kind == Expr::Kind::Bin && ea.bin == BinOp::Add &&
                is_const(ea.b)) {
                const int x = ea.a;
                const std::uint32_t folded = cval(ea.b) + cval(b);
                return binop(BinOp::Add, x, constant(folded));
            }
        }
        // Identities with a constant rhs.
        if (is_const(b)) {
            const std::uint32_t c = cval(b);
            switch (op) {
              case BinOp::Add:
              case BinOp::Sub:
              case BinOp::Or:
              case BinOp::Xor:
              case BinOp::Shl:
              case BinOp::ShrL:
              case BinOp::ShrA:
                if (c == 0) {
                    return a;
                }
                break;
              case BinOp::Mul:
                if (c == 0) {
                    return constant(0);
                }
                if (c == 1) {
                    return a;
                }
                // Strength-reduction normal form: one toolchain emits a
                // multiply, another a shift; converge on the shift.
                if ((c & (c - 1)) == 0) {
                    std::uint32_t log2 = 0;
                    while ((1u << log2) < c) {
                        ++log2;
                    }
                    return binop(BinOp::Shl, a, constant(log2));
                }
                break;
              case BinOp::And:
                if (c == 0) {
                    return constant(0);
                }
                if (c == 0xffffffffu) {
                    return a;
                }
                break;
              default:
                break;
            }
            // Instruction-combining rules for compare idioms:
            //   sltiu r, x, 1      ->  x == 0
            //   xori  r, cmp, 1    ->  !cmp
            //   andi  r, cmp, 1    ->  cmp
            if (op == BinOp::CmpLTU && c == 1) {
                return binop(BinOp::CmpEQ, a, constant(0));
            }
            if (op == BinOp::Xor && c == 1 && is_cmp(a)) {
                return negate(a);
            }
            if (op == BinOp::And && c == 1 && is_cmp(a)) {
                return a;
            }
            if ((op == BinOp::CmpEQ || op == BinOp::CmpNE) && c == 0) {
                //   cmp == 0  ->  !cmp ;  cmp != 0  ->  cmp
                if (is_cmp(a)) {
                    return op == BinOp::CmpNE ? a : negate(a);
                }
                //   (x ^ y) == 0  ->  x == y   (MIPS seq idiom)
                const Expr &ea = at(a);
                if (ea.kind == Expr::Kind::Bin && ea.bin == BinOp::Xor) {
                    return binop(op, ea.a, ea.b);
                }
            }
        }
        //   sltu r, 0, x  ->  x != 0
        if (op == BinOp::CmpLTU && is_const(a) && cval(a) == 0) {
            return binop(BinOp::CmpNE, b, constant(0));
        }
        // x - x, x ^ x, x & x, x | x with identical subtrees.
        if (a == b || at(a).shash == at(b).shash) {
            if (structurally_equal(a, b)) {
                switch (op) {
                  case BinOp::Sub:
                  case BinOp::Xor:
                    // Only safe when both sides are the *same value*,
                    // which equal structure over shared inputs implies.
                    if (a == b) {
                        return constant(0);
                    }
                    break;
                  case BinOp::And:
                  case BinOp::Or:
                    if (a == b) {
                        return a;
                    }
                    break;
                  default:
                    break;
                }
            }
        }
        // Canonical operand order for commutative operators: constants
        // stay rightmost; everything else sorts by structural hash.
        if (ir::is_commutative(op)) {
            if (is_const(a) && !is_const(b)) {
                std::swap(a, b);
            } else if (!is_const(a) && !is_const(b) &&
                       at(a).shash > at(b).shash) {
                std::swap(a, b);
            }
        }
        return raw_bin(op, a, b);
    }

    /** Logical negation of a comparison node. */
    int
    negate(int cmp)
    {
        const Expr &e = at(cmp);
        FIRMUP_ASSERT(is_cmp(cmp), "negate of non-compare");
        switch (e.bin) {
          case BinOp::CmpEQ: return raw_bin(BinOp::CmpNE, e.a, e.b);
          case BinOp::CmpNE: return raw_bin(BinOp::CmpEQ, e.a, e.b);
          case BinOp::CmpLTS: return raw_bin(BinOp::CmpLES, e.b, e.a);
          case BinOp::CmpLES: return raw_bin(BinOp::CmpLTS, e.b, e.a);
          case BinOp::CmpLTU: return raw_bin(BinOp::CmpLEU, e.b, e.a);
          default: return raw_bin(BinOp::CmpLTU, e.b, e.a);
        }
    }

    bool
    is_cmp(int i) const
    {
        const Expr &e = at(i);
        return e.kind == Expr::Kind::Bin && ir::is_comparison(e.bin);
    }

  private:
    int
    add(const Expr &e)
    {
        arena_.push_back(e);
        return static_cast<int>(arena_.size()) - 1;
    }

    int
    raw_bin(BinOp op, int a, int b)
    {
        Expr e{Expr::Kind::Bin};
        e.bin = op;
        e.a = a;
        e.b = b;
        const std::uint64_t ha = at(a).shash;
        const std::uint64_t hb = at(b).shash;
        const std::uint64_t hop = mix64(100 + static_cast<int>(op));
        e.shash = ir::is_commutative(op)
                      ? hash_combine(hop, ha + hb)
                      : hash_combine(hash_combine(hop, ha), hb);
        return add(e);
    }

    bool is_const(int i) const { return at(i).kind == Expr::Kind::Const; }
    std::uint32_t cval(int i) const { return at(i).cval; }

    /** Deep structural equality (identity of Input regs matters here). */
    bool
    structurally_equal(int x, int y) const
    {
        if (x == y) {
            return true;
        }
        const Expr &ex = at(x);
        const Expr &ey = at(y);
        if (ex.kind != ey.kind || ex.cval != ey.cval ||
            ex.reg != ey.reg || ex.bin != ey.bin || ex.un != ey.un) {
            return false;
        }
        auto eq_child = [this](int cx, int cy) {
            if ((cx < 0) != (cy < 0)) {
                return false;
            }
            return cx < 0 || structurally_equal(cx, cy);
        };
        return eq_child(ex.a, ey.a) && eq_child(ex.b, ey.b) &&
               eq_child(ex.c, ey.c);
    }

    const CanonOptions &opt_;
    std::vector<Expr> arena_;
};

/**
 * Symbolic evaluation environment over one strand.
 *
 * The temp/register environments are dense epoch-stamped arrays, not
 * std::maps: begin_strand() bumps the epoch, which invalidates every
 * slot in O(1) — no per-strand clearing, no tree allocations. Temp ids
 * beyond the dense window (only possible on malformed input) spill to
 * an ordered map.
 */
class StrandEval
{
  public:
    explicit StrandEval(Builder &builder) : b_(builder) {}

    /** Invalidate all bindings; O(1) except after epoch wraparound. */
    void
    begin_strand()
    {
        if (++epoch_ == 0) {
            std::fill(temp_epoch_.begin(), temp_epoch_.end(), 0u);
            std::fill(reg_epoch_.begin(), reg_epoch_.end(), 0u);
            std::fill(input_epoch_.begin(), input_epoch_.end(), 0u);
            epoch_ = 1;
        }
        if (!temp_overflow_.empty()) {
            temp_overflow_.clear();
        }
    }

    int
    operand(const Operand &op)
    {
        switch (op.kind) {
          case Operand::Kind::Temp: {
            // A temp defined by a statement outside the slice can only
            // happen on malformed input; treat it as an opaque input.
            const int node = temp_node(op.as_temp());
            return node >= 0 ? node : b_.input(0xffff);
          }
          case Operand::Kind::Const:
            return b_.constant(op.as_const());
          case Operand::Kind::None:
            return b_.constant(0);
        }
        return b_.constant(0);
    }

    /** Node bound to @p t this strand, or -1. */
    int
    temp_node(ir::TempId t) const
    {
        if (t < temp_epoch_.size()) {
            return temp_epoch_[t] == epoch_
                       ? temp_value_[t]
                       : -1;
        }
        if (t >= kDenseTempCap) {
            const auto it = temp_overflow_.find(t);
            return it != temp_overflow_.end() ? it->second : -1;
        }
        return -1;
    }

    int
    reg_value(ir::RegId reg)
    {
        ensure_reg(reg);
        if (reg_epoch_[reg] == epoch_) {
            return reg_value_[reg];
        }
        if (input_epoch_[reg] == epoch_) {
            return input_value_[reg];
        }
        const int node = b_.input(reg);
        input_epoch_[reg] = epoch_;
        input_value_[reg] = node;
        return node;
    }

    /** Evaluate one statement. */
    void
    eval(const Stmt &s)
    {
        switch (s.kind) {
          case Stmt::Kind::Get:
            set_temp(s.dst, reg_value(s.reg));
            break;
          case Stmt::Kind::Put: {
            const int v = operand(s.a);
            ensure_reg(s.reg);
            reg_epoch_[s.reg] = epoch_;
            reg_value_[s.reg] = v;
            break;
          }
          case Stmt::Kind::Bin: {
            const int a = operand(s.a);
            const int b = operand(s.b);
            set_temp(s.dst, b_.binop(s.bin_op, a, b));
            break;
          }
          case Stmt::Kind::Un:
            set_temp(s.dst, b_.unop(s.un_op, operand(s.a)));
            break;
          case Stmt::Kind::Load:
            set_temp(s.dst, b_.load(operand(s.a)));
            break;
          case Stmt::Kind::Select: {
            const int cond = operand(s.a);
            const int t = operand(s.b);
            const int f = operand(s.extra);
            set_temp(s.dst, b_.select(cond, t, f));
            break;
          }
          case Stmt::Kind::Call:
            set_temp(s.dst, b_.call(operand(s.a)));
            break;
          case Stmt::Kind::Store:
          case Stmt::Kind::Exit:
            break;  // effects; handled at the root
        }
    }

  private:
    /**
     * Dense window for temp ids. Real blocks use small consecutive
     * ids; a hostile 32-bit dst beyond the cap lands in the overflow
     * map instead of forcing a gigabyte resize.
     */
    static constexpr std::size_t kDenseTempCap = std::size_t{1} << 16;

    void
    set_temp(ir::TempId t, int node)
    {
        if (t >= kDenseTempCap) {
            temp_overflow_[t] = node;
            return;
        }
        if (t >= temp_epoch_.size()) {
            temp_epoch_.resize(t + 1, 0u);
            temp_value_.resize(t + 1, -1);
        }
        temp_epoch_[t] = epoch_;
        temp_value_[t] = node;
    }

    void
    ensure_reg(ir::RegId reg)
    {
        if (reg >= reg_epoch_.size()) {
            reg_epoch_.resize(reg + 1, 0u);
            reg_value_.resize(reg + 1, -1);
            input_epoch_.resize(reg + 1, 0u);
            input_value_.resize(reg + 1, -1);
        }
    }

    Builder &b_;
    std::uint32_t epoch_ = 0;
    std::vector<std::uint32_t> temp_epoch_;
    std::vector<int> temp_value_;
    std::map<ir::TempId, int> temp_overflow_;
    std::vector<std::uint32_t> reg_epoch_;
    std::vector<int> reg_value_;
    std::vector<std::uint32_t> input_epoch_;
    std::vector<int> input_value_;
};

/**
 * Appearance-order name table for normalized inputs/offsets, reused
 * across strands. The per-strand name count is tiny, so first-seen
 * lookup is a linear scan over a flat vector.
 */
class NameTable
{
  public:
    void
    reset()
    {
        inputs_.clear();
        offsets_.clear();
    }

    std::size_t
    input_name(ir::RegId reg)
    {
        for (std::size_t i = 0; i < inputs_.size(); ++i) {
            if (inputs_[i] == reg) {
                return i;
            }
        }
        inputs_.push_back(reg);
        return inputs_.size() - 1;
    }

    std::size_t
    offset_name(std::uint64_t raw)
    {
        for (std::size_t i = 0; i < offsets_.size(); ++i) {
            if (offsets_[i] == raw) {
                return i;
            }
        }
        offsets_.push_back(raw);
        return offsets_.size() - 1;
    }

  private:
    std::vector<ir::RegId> inputs_;
    std::vector<std::uint64_t> offsets_;
};

/** Streams canonical bytes straight into an FNV-1a state. */
struct HashSink
{
    std::uint64_t state = kFnv1a64Seed;

    void append(std::string_view s) { state = fnv1a64_update(state, s); }
    void append(char c) { state = fnv1a64_update(state, c); }
};

/** Accumulates the canonical bytes as a string (debug/ablation path). */
struct StringSink
{
    std::string out;

    void append(std::string_view s) { out.append(s); }
    void append(char c) { out.push_back(c); }
};

/** Decimal digits of @p v, no allocation. */
template <typename Sink>
void
append_dec(Sink &sink, std::uint64_t v)
{
    char buf[20];
    char *p = buf + sizeof(buf);
    do {
        *--p = static_cast<char>('0' + v % 10);
        v /= 10;
    } while (v != 0);
    sink.append(std::string_view(p, static_cast<std::size_t>(
                                        buf + sizeof(buf) - p)));
}

/** Lowercase hex digits of @p v without the 0x prefix (matches %llx). */
template <typename Sink>
void
append_hex(Sink &sink, std::uint64_t v)
{
    static constexpr char kDigits[] = "0123456789abcdef";
    char buf[16];
    char *p = buf + sizeof(buf);
    do {
        *--p = kDigits[v & 15];
        v >>= 4;
    } while (v != 0);
    sink.append(std::string_view(p, static_cast<std::size_t>(
                                        buf + sizeof(buf) - p)));
}

/**
 * Emits an expression tree with appearance-order name normalization.
 *
 * Every token is appended in an explicitly sequenced left-to-right
 * order — the canonical byte format contract (DESIGN.md section 12).
 * This is what makes the streamed hash equal the hash of the printed
 * string, and the name numbering independent of the compiler's
 * argument-evaluation order.
 */
template <typename Sink>
class Emitter
{
  public:
    Emitter(const Builder &builder, const CanonOptions &options,
            NameTable &names, Sink &sink)
        : b_(builder), opt_(options), names_(names), sink_(sink)
    {
    }

    void
    print(int i)
    {
        const Expr &e = b_.at(i);
        switch (e.kind) {
          case Expr::Kind::Const:
            sink_.append("0x");
            append_hex(sink_, e.cval);
            return;
          case Expr::Kind::Input:
            if (!opt_.normalize_names) {
                sink_.append('r');
                append_dec(sink_, e.reg);
                return;
            }
            sink_.append("reg");
            append_dec(sink_, names_.input_name(e.reg));
            return;
          case Expr::Kind::Offset:
            if (!opt_.normalize_names) {
                sink_.append("0x");
                append_hex(sink_, e.raw);
                return;
            }
            sink_.append("off");
            append_dec(sink_, names_.offset_name(e.raw));
            return;
          case Expr::Kind::Load:
            sink_.append("load(");
            print(e.a);
            sink_.append(')');
            return;
          case Expr::Kind::Call:
            sink_.append("call(");
            print(e.a);
            sink_.append(')');
            return;
          case Expr::Kind::Select:
            sink_.append("ite(");
            print(e.a);
            sink_.append(", ");
            print(e.b);
            sink_.append(", ");
            print(e.c);
            sink_.append(')');
            return;
          case Expr::Kind::Un:
            sink_.append(std::string_view(ir::unop_name(e.un)));
            sink_.append('(');
            print(e.a);
            sink_.append(')');
            return;
          case Expr::Kind::Bin:
            sink_.append(std::string_view(ir::binop_name(e.bin)));
            sink_.append('(');
            print(e.a);
            sink_.append(", ");
            print(e.b);
            sink_.append(')');
            return;
        }
        sink_.append('?');
    }

  private:
    const Builder &b_;
    const CanonOptions &opt_;
    NameTable &names_;
    Sink &sink_;
};

/**
 * Reusable per-procedure canonicalization state: one arena, one
 * evaluator, one name table, one slicer, shared by every strand.
 * begin_strand() resets the per-strand pieces in O(1) (amortized)
 * without freeing memory.
 */
struct Workspace
{
    Builder builder;
    StrandEval eval;
    NameTable names;
    StrandSlicer slicer;

    explicit Workspace(const CanonOptions &options)
        : builder(options), eval(builder)
    {
    }

    void
    begin_strand()
    {
        builder.reset();
        eval.begin_strand();
        names.reset();
    }
};

/**
 * Lightweight strand view over a block's statement array: the slicer's
 * index span stands in for a materialized std::vector<Stmt>. Duck-typed
 * against Strand for the emit templates.
 */
struct IndexedStrand
{
    const std::vector<Stmt> &stmts;
    const std::uint32_t *idx;
    std::size_t count;

    std::size_t size() const { return count; }
    bool empty() const { return count == 0; }
    const Stmt &operator[](std::size_t k) const { return stmts[idx[k]]; }
    const Stmt &back() const { return stmts[idx[count - 1]]; }
};

/**
 * Canonicalize @p strand into @p sink. Root handling mirrors the
 * paper's register folding: a Put root under name normalization prints
 * as the strand's return value. Operand evaluation and printing are
 * explicitly sequenced left to right.
 */
template <typename Sink, typename StrandLike>
void
emit_strand(Workspace &ws, const StrandLike &strand,
            const CanonOptions &options, Sink &sink)
{
    ws.begin_strand();
    for (std::size_t i = 0; i + 1 < strand.size(); ++i) {
        ws.eval.eval(strand[i]);
    }
    const Stmt &root = strand.back();
    Emitter<Sink> emit(ws.builder, options, ws.names, sink);
    switch (root.kind) {
      case Stmt::Kind::Put: {
        const int v = ws.eval.operand(root.a);
        if (options.normalize_names) {
            // Register folding: the stored-to register is anonymized;
            // the computed value is the strand's return value.
            sink.append("ret ");
            emit.print(v);
            return;
        }
        sink.append("put r");
        append_dec(sink, root.reg);
        sink.append(", ");
        emit.print(v);
        return;
      }
      case Stmt::Kind::Store: {
        const int addr = ws.eval.operand(root.a);
        const int value = ws.eval.operand(root.b);
        sink.append("store(");
        emit.print(addr);
        sink.append(", ");
        emit.print(value);
        sink.append(')');
        return;
      }
      case Stmt::Kind::Exit: {
        const int cond = ws.eval.operand(root.a);
        const int target = ws.eval.operand(root.b);
        sink.append("exit(");
        emit.print(cond);
        sink.append(") -> ");
        emit.print(target);
        return;
      }
      case Stmt::Kind::Call: {
        const int target = ws.eval.operand(root.a);
        sink.append("call(");
        emit.print(target);
        sink.append(')');
        return;
      }
      default: {
        // A value-producing statement nothing in the block consumes.
        ws.eval.eval(root);
        const int bound = ws.eval.temp_node(root.dst);
        const int v =
            bound >= 0 ? bound : ws.eval.operand(Operand::none());
        sink.append("val ");
        emit.print(v);
        return;
      }
    }
}

/** Hash one strand through the configured path (streaming or string). */
template <typename StrandLike>
std::uint64_t
hash_strand(Workspace &ws, const StrandLike &strand,
            const CanonOptions &options)
{
    if (strand.empty()) {
        return kFnv1a64Seed;  // == fnv1a64("")
    }
    if (options.stream_hash) {
        HashSink sink;
        emit_strand(ws, strand, options, sink);
        return sink.state;
    }
    StringSink sink;
    emit_strand(ws, strand, options, sink);
    return fnv1a64(sink.out);
}

}  // namespace

std::string
canonical_strand(const Strand &strand, const CanonOptions &options)
{
    if (strand.empty()) {
        return "";
    }
    Workspace ws(options);
    StringSink sink;
    emit_strand(ws, strand, options, sink);
    return std::move(sink.out);
}

std::uint64_t
strand_hash(const Strand &strand, const CanonOptions &options)
{
    Workspace ws(options);
    return hash_strand(ws, strand, options);
}

void
ProcedureStrands::finalize()
{
    std::sort(hashes.begin(), hashes.end());
    hashes.erase(std::unique(hashes.begin(), hashes.end()),
                 hashes.end());
    build_summary();
}

void
ProcedureStrands::build_summary()
{
    bucket_bits = {};
    // Sorted hashes are contiguous by top byte, so each of the four
    // 64-bucket words covers one contiguous span of the vector.
    std::size_t i = 0;
    for (unsigned w = 0; w < 4; ++w) {
        word_offsets[w] = static_cast<std::uint32_t>(i);
        while (i < hashes.size() && (hashes[i] >> 62) == w) {
            bucket_bits[w] |= std::uint64_t{1}
                              << ((hashes[i] >> 56) & 63);
            ++i;
        }
    }
    word_offsets[4] = static_cast<std::uint32_t>(hashes.size());
    summary_built = true;
}

bool
ProcedureStrands::contains(std::uint64_t h) const
{
    const std::uint64_t *data = hash_data();
    return std::binary_search(data, data + hash_count(), h);
}

ProcedureStrands
strand_set(std::vector<std::uint64_t> hashes)
{
    ProcedureStrands out;
    out.hashes = std::move(hashes);
    out.finalize();
    return out;
}

ProcedureStrands
represent_procedure(const ir::Procedure &proc, const CanonOptions &options)
{
    ProcedureStrands out;
    out.block_count = proc.blocks.size();
    Workspace ws(options);
    // Slice + canonicalize + hash one block into @p dst. The streaming
    // path slices into reusable index spans and hashes without
    // materializing anything; stream_hash=false is the reference
    // pipeline — materialized strands, canonical strings, then
    // fnv1a64 — kept bit-compatible for the ablation benchmarks.
    const auto hash_block_into = [&ws, &options](
                                     const ir::Block &block,
                                     std::vector<std::uint64_t> &dst) {
        if (options.stream_hash) {
            ws.slicer.decompose(block);
            for (std::size_t s = 0; s < ws.slicer.strand_count(); ++s) {
                const IndexedStrand view{block.stmts,
                                         ws.slicer.indexes(s),
                                         ws.slicer.size(s)};
                dst.push_back(hash_strand(ws, view, options));
            }
            return;
        }
        for (const Strand &strand : decompose_block(block)) {
            dst.push_back(hash_strand(ws, strand, options));
        }
    };
    std::vector<std::uint64_t> scratch;
    std::uint64_t strands = 0;
    for (const auto &[addr, block] : proc.blocks) {
        out.stmt_count += block.stmts.size();
        if (options.memo != nullptr) {
            const CanonMemo::Key key = block_memo_key(block, options);
            const std::vector<std::uint64_t> *span =
                options.memo->find(key);
            if (span == nullptr) {
                scratch.clear();
                hash_block_into(block, scratch);
                span = options.memo->publish(key, scratch);
            }
            out.hashes.insert(out.hashes.end(), span->begin(),
                              span->end());
            strands += span->size();
            continue;
        }
        const std::size_t before = out.hashes.size();
        hash_block_into(block, out.hashes);
        strands += out.hashes.size() - before;
    }
    out.finalize();
    c_procedures.add();
    // Strand/pass accounting counts represented strands — on a memo hit
    // that is the memoized span's length, so the totals equal a memo-off
    // run's and stay invariant across worker-thread counts.
    c_strands.add(strands);
    // Each strand runs the enabled canonicalization passes (offset
    // elimination, symbolic re-optimization, name normalization).
    const std::uint64_t enabled_passes =
        (options.eliminate_offsets ? 1u : 0u) +
        (options.optimize ? 1u : 0u) + (options.normalize_names ? 1u : 0u);
    c_passes.add(strands * enabled_passes);
    return out;
}

std::vector<std::string>
canonical_strings(const ir::Procedure &proc, const CanonOptions &options)
{
    std::vector<std::string> out;
    Workspace ws(options);
    for (const auto &[addr, block] : proc.blocks) {
        for (const Strand &strand : decompose_block(block)) {
            if (strand.empty()) {
                out.emplace_back();
                continue;
            }
            StringSink sink;
            emit_strand(ws, strand, options, sink);
            out.push_back(std::move(sink.out));
        }
    }
    return out;
}

}  // namespace firmup::strand
