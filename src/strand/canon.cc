#include "strand/canon.h"

#include <algorithm>
#include <map>

#include "support/error.h"
#include "support/hash.h"
#include "support/str.h"
#include "support/trace.h"

namespace firmup::strand {

namespace {

const trace::Counter c_procedures("canon.procedures");
const trace::Counter c_strands("canon.strands_extracted");
const trace::Counter c_passes("canon.passes_applied");

}  // namespace

using ir::BinOp;
using ir::Operand;
using ir::Stmt;
using ir::UnOp;

namespace {

/** Expression node in the canonicalization arena. */
struct Expr
{
    enum class Kind : std::uint8_t {
        Const, Input, Offset, Load, Bin, Un, Select, Call,
    };
    Kind kind;
    std::uint32_t cval = 0;   ///< Const payload
    ir::RegId reg = 0;        ///< Input origin register
    std::uint64_t raw = 0;    ///< Offset original value
    BinOp bin = BinOp::Add;
    UnOp un = UnOp::Neg;
    int a = -1, b = -1, c = -1;
    std::uint64_t shash = 0;  ///< structural, allocation-independent
};

std::uint32_t
eval_binop(BinOp op, std::uint32_t a, std::uint32_t b)
{
    const auto sa = static_cast<std::int32_t>(a);
    const auto sb = static_cast<std::int32_t>(b);
    switch (op) {
      case BinOp::Add: return a + b;
      case BinOp::Sub: return a - b;
      case BinOp::Mul: return a * b;
      case BinOp::DivS:
        return (sb == 0 || (sa == INT32_MIN && sb == -1))
                   ? 0 : static_cast<std::uint32_t>(sa / sb);
      case BinOp::DivU: return b == 0 ? 0 : a / b;
      case BinOp::RemS:
        return (sb == 0 || (sa == INT32_MIN && sb == -1))
                   ? 0 : static_cast<std::uint32_t>(sa % sb);
      case BinOp::RemU: return b == 0 ? 0 : a % b;
      case BinOp::And: return a & b;
      case BinOp::Or: return a | b;
      case BinOp::Xor: return a ^ b;
      case BinOp::Shl: return a << (b & 31);
      case BinOp::ShrL: return a >> (b & 31);
      case BinOp::ShrA:
        return static_cast<std::uint32_t>(sa >> (b & 31));
      case BinOp::CmpEQ: return a == b;
      case BinOp::CmpNE: return a != b;
      case BinOp::CmpLTS: return sa < sb;
      case BinOp::CmpLTU: return a < b;
      case BinOp::CmpLES: return sa <= sb;
      case BinOp::CmpLEU: return a <= b;
    }
    return 0;
}

/** Arena + smart constructors implementing the simplification rules. */
class Builder
{
  public:
    explicit Builder(const CanonOptions &options) : opt_(options) {}

    const Expr &at(int i) const { return arena_[static_cast<size_t>(i)]; }

    int
    constant(std::uint32_t value)
    {
        if (opt_.eliminate_offsets && opt_.sections.contains(value)) {
            Expr e{Expr::Kind::Offset};
            e.raw = value;
            e.shash = mix64(0x0FF5E7);  // all offsets structurally equal
            return add(e);
        }
        Expr e{Expr::Kind::Const};
        e.cval = value;
        e.shash = hash_combine(1, value);
        return add(e);
    }

    int
    input(ir::RegId reg)
    {
        Expr e{Expr::Kind::Input};
        e.reg = reg;
        // Inputs hash identically so that register allocation cannot
        // perturb commutative operand ordering.
        e.shash = mix64(0x1A9F7);
        return add(e);
    }

    int
    load(int addr)
    {
        Expr e{Expr::Kind::Load};
        e.a = addr;
        e.shash = hash_combine(mix64(3), at(addr).shash);
        return add(e);
    }

    int
    call(int target)
    {
        Expr e{Expr::Kind::Call};
        e.a = target;
        e.shash = hash_combine(mix64(4), at(target).shash);
        return add(e);
    }

    int
    select(int cond, int t, int f)
    {
        Expr e{Expr::Kind::Select};
        e.a = cond;
        e.b = t;
        e.c = f;
        e.shash = hash_combine(
            hash_combine(mix64(5), at(cond).shash),
            hash_combine(at(t).shash, at(f).shash));
        return add(e);
    }

    int
    unop(UnOp op, int a)
    {
        if (opt_.optimize) {
            const Expr &ea = at(a);
            if (ea.kind == Expr::Kind::Const) {
                return constant(op == UnOp::Neg ? 0u - ea.cval : ~ea.cval);
            }
            // neg(neg(x)) = x, not(not(x)) = x
            if (ea.kind == Expr::Kind::Un && ea.un == op) {
                return ea.a;
            }
        }
        Expr e{Expr::Kind::Un};
        e.un = op;
        e.a = a;
        e.shash = hash_combine(mix64(10 + static_cast<int>(op)),
                               at(a).shash);
        return add(e);
    }

    int
    binop(BinOp op, int a, int b)
    {
        if (!opt_.optimize) {
            return raw_bin(op, a, b);
        }
        // Constant folding.
        if (is_const(a) && is_const(b)) {
            return constant(eval_binop(op, cval(a), cval(b)));
        }
        // Normalize subtraction-by-constant into addition.
        if (op == BinOp::Sub && is_const(b)) {
            return binop(BinOp::Add, a, constant(0u - cval(b)));
        }
        // Constant to the right for commutative operators.
        if (ir::is_commutative(op) && is_const(a) && !is_const(b)) {
            std::swap(a, b);
        }
        // Reassociate (x + c1) + c2. Copy the child indexes out first:
        // the nested constant() may grow the arena and invalidate any
        // reference into it while the argument list is evaluated.
        if (op == BinOp::Add && is_const(b)) {
            const Expr &ea = at(a);
            if (ea.kind == Expr::Kind::Bin && ea.bin == BinOp::Add &&
                is_const(ea.b)) {
                const int x = ea.a;
                const std::uint32_t folded = cval(ea.b) + cval(b);
                return binop(BinOp::Add, x, constant(folded));
            }
        }
        // Identities with a constant rhs.
        if (is_const(b)) {
            const std::uint32_t c = cval(b);
            switch (op) {
              case BinOp::Add:
              case BinOp::Sub:
              case BinOp::Or:
              case BinOp::Xor:
              case BinOp::Shl:
              case BinOp::ShrL:
              case BinOp::ShrA:
                if (c == 0) {
                    return a;
                }
                break;
              case BinOp::Mul:
                if (c == 0) {
                    return constant(0);
                }
                if (c == 1) {
                    return a;
                }
                // Strength-reduction normal form: one toolchain emits a
                // multiply, another a shift; converge on the shift.
                if ((c & (c - 1)) == 0) {
                    std::uint32_t log2 = 0;
                    while ((1u << log2) < c) {
                        ++log2;
                    }
                    return binop(BinOp::Shl, a, constant(log2));
                }
                break;
              case BinOp::And:
                if (c == 0) {
                    return constant(0);
                }
                if (c == 0xffffffffu) {
                    return a;
                }
                break;
              default:
                break;
            }
            // Instruction-combining rules for compare idioms:
            //   sltiu r, x, 1      ->  x == 0
            //   xori  r, cmp, 1    ->  !cmp
            //   andi  r, cmp, 1    ->  cmp
            if (op == BinOp::CmpLTU && c == 1) {
                return binop(BinOp::CmpEQ, a, constant(0));
            }
            if (op == BinOp::Xor && c == 1 && is_cmp(a)) {
                return negate(a);
            }
            if (op == BinOp::And && c == 1 && is_cmp(a)) {
                return a;
            }
            if ((op == BinOp::CmpEQ || op == BinOp::CmpNE) && c == 0) {
                //   cmp == 0  ->  !cmp ;  cmp != 0  ->  cmp
                if (is_cmp(a)) {
                    return op == BinOp::CmpNE ? a : negate(a);
                }
                //   (x ^ y) == 0  ->  x == y   (MIPS seq idiom)
                const Expr &ea = at(a);
                if (ea.kind == Expr::Kind::Bin && ea.bin == BinOp::Xor) {
                    return binop(op, ea.a, ea.b);
                }
            }
        }
        //   sltu r, 0, x  ->  x != 0
        if (op == BinOp::CmpLTU && is_const(a) && cval(a) == 0) {
            return binop(BinOp::CmpNE, b, constant(0));
        }
        // x - x, x ^ x, x & x, x | x with identical subtrees.
        if (a == b || at(a).shash == at(b).shash) {
            if (structurally_equal(a, b)) {
                switch (op) {
                  case BinOp::Sub:
                  case BinOp::Xor:
                    // Only safe when both sides are the *same value*,
                    // which equal structure over shared inputs implies.
                    if (a == b) {
                        return constant(0);
                    }
                    break;
                  case BinOp::And:
                  case BinOp::Or:
                    if (a == b) {
                        return a;
                    }
                    break;
                  default:
                    break;
                }
            }
        }
        // Canonical operand order for commutative operators: constants
        // stay rightmost; everything else sorts by structural hash.
        if (ir::is_commutative(op)) {
            if (is_const(a) && !is_const(b)) {
                std::swap(a, b);
            } else if (!is_const(a) && !is_const(b) &&
                       at(a).shash > at(b).shash) {
                std::swap(a, b);
            }
        }
        return raw_bin(op, a, b);
    }

    /** Logical negation of a comparison node. */
    int
    negate(int cmp)
    {
        const Expr &e = at(cmp);
        FIRMUP_ASSERT(is_cmp(cmp), "negate of non-compare");
        switch (e.bin) {
          case BinOp::CmpEQ: return raw_bin(BinOp::CmpNE, e.a, e.b);
          case BinOp::CmpNE: return raw_bin(BinOp::CmpEQ, e.a, e.b);
          case BinOp::CmpLTS: return raw_bin(BinOp::CmpLES, e.b, e.a);
          case BinOp::CmpLES: return raw_bin(BinOp::CmpLTS, e.b, e.a);
          case BinOp::CmpLTU: return raw_bin(BinOp::CmpLEU, e.b, e.a);
          default: return raw_bin(BinOp::CmpLTU, e.b, e.a);
        }
    }

    bool
    is_cmp(int i) const
    {
        const Expr &e = at(i);
        return e.kind == Expr::Kind::Bin && ir::is_comparison(e.bin);
    }

  private:
    int
    add(const Expr &e)
    {
        arena_.push_back(e);
        return static_cast<int>(arena_.size()) - 1;
    }

    int
    raw_bin(BinOp op, int a, int b)
    {
        Expr e{Expr::Kind::Bin};
        e.bin = op;
        e.a = a;
        e.b = b;
        const std::uint64_t ha = at(a).shash;
        const std::uint64_t hb = at(b).shash;
        const std::uint64_t hop = mix64(100 + static_cast<int>(op));
        e.shash = ir::is_commutative(op)
                      ? hash_combine(hop, ha + hb)
                      : hash_combine(hash_combine(hop, ha), hb);
        return add(e);
    }

    bool is_const(int i) const { return at(i).kind == Expr::Kind::Const; }
    std::uint32_t cval(int i) const { return at(i).cval; }

    /** Deep structural equality (identity of Input regs matters here). */
    bool
    structurally_equal(int x, int y) const
    {
        if (x == y) {
            return true;
        }
        const Expr &ex = at(x);
        const Expr &ey = at(y);
        if (ex.kind != ey.kind || ex.cval != ey.cval ||
            ex.reg != ey.reg || ex.bin != ey.bin || ex.un != ey.un) {
            return false;
        }
        auto eq_child = [this](int cx, int cy) {
            if ((cx < 0) != (cy < 0)) {
                return false;
            }
            return cx < 0 || structurally_equal(cx, cy);
        };
        return eq_child(ex.a, ey.a) && eq_child(ex.b, ey.b) &&
               eq_child(ex.c, ey.c);
    }

    const CanonOptions &opt_;
    std::vector<Expr> arena_;
};

/** Prints an expression with appearance-order name normalization. */
class Printer
{
  public:
    Printer(const Builder &builder, const CanonOptions &options)
        : b_(builder), opt_(options)
    {
    }

    std::string
    print(int i)
    {
        const Expr &e = b_.at(i);
        switch (e.kind) {
          case Expr::Kind::Const:
            return "0x" + to_hex(e.cval);
          case Expr::Kind::Input: {
            if (!opt_.normalize_names) {
                return "r" + std::to_string(e.reg);
            }
            auto [it, fresh] =
                input_names_.try_emplace(e.reg, input_names_.size());
            (void)fresh;
            return "reg" + std::to_string(it->second);
          }
          case Expr::Kind::Offset: {
            if (!opt_.normalize_names) {
                return "0x" + to_hex(e.raw);
            }
            auto [it, fresh] =
                offset_names_.try_emplace(e.raw, offset_names_.size());
            (void)fresh;
            return "off" + std::to_string(it->second);
          }
          case Expr::Kind::Load:
            return "load(" + print(e.a) + ")";
          case Expr::Kind::Call:
            return "call(" + print(e.a) + ")";
          case Expr::Kind::Select:
            return "ite(" + print(e.a) + ", " + print(e.b) + ", " +
                   print(e.c) + ")";
          case Expr::Kind::Un:
            return std::string(ir::unop_name(e.un)) + "(" + print(e.a) +
                   ")";
          case Expr::Kind::Bin:
            return std::string(ir::binop_name(e.bin)) + "(" + print(e.a) +
                   ", " + print(e.b) + ")";
        }
        return "?";
    }

  private:
    const Builder &b_;
    const CanonOptions &opt_;
    std::map<ir::RegId, std::size_t> input_names_;
    std::map<std::uint64_t, std::size_t> offset_names_;
};

/** Symbolic evaluation environment over one strand. */
class StrandEval
{
  public:
    StrandEval(Builder &builder) : b_(builder) {}

    int
    operand(const Operand &op)
    {
        switch (op.kind) {
          case Operand::Kind::Temp: {
            const auto it = temps_.find(op.as_temp());
            // A temp defined by a statement outside the slice can only
            // happen on malformed input; treat it as an opaque input.
            return it != temps_.end() ? it->second : b_.input(0xffff);
          }
          case Operand::Kind::Const:
            return b_.constant(op.as_const());
          case Operand::Kind::None:
            return b_.constant(0);
        }
        return b_.constant(0);
    }

    int
    reg_value(ir::RegId reg)
    {
        const auto it = regs_.find(reg);
        if (it != regs_.end()) {
            return it->second;
        }
        const auto memo = input_memo_.find(reg);
        if (memo != input_memo_.end()) {
            return memo->second;
        }
        const int node = b_.input(reg);
        input_memo_[reg] = node;
        return node;
    }

    /** Evaluate one statement; returns true if it was the root effect. */
    void
    eval(const Stmt &s)
    {
        switch (s.kind) {
          case Stmt::Kind::Get:
            temps_[s.dst] = reg_value(s.reg);
            break;
          case Stmt::Kind::Put:
            regs_[s.reg] = operand(s.a);
            break;
          case Stmt::Kind::Bin:
            temps_[s.dst] = b_.binop(s.bin_op, operand(s.a),
                                     operand(s.b));
            break;
          case Stmt::Kind::Un:
            temps_[s.dst] = b_.unop(s.un_op, operand(s.a));
            break;
          case Stmt::Kind::Load:
            temps_[s.dst] = b_.load(operand(s.a));
            break;
          case Stmt::Kind::Select:
            temps_[s.dst] = b_.select(operand(s.a), operand(s.b),
                                      operand(s.extra));
            break;
          case Stmt::Kind::Call:
            temps_[s.dst] = b_.call(operand(s.a));
            break;
          case Stmt::Kind::Store:
          case Stmt::Kind::Exit:
            break;  // effects; handled at the root
        }
    }

    std::map<ir::TempId, int> temps_;
    std::map<ir::RegId, int> regs_;
    std::map<ir::RegId, int> input_memo_;
    Builder &b_;
};

}  // namespace

std::string
canonical_strand(const Strand &strand, const CanonOptions &options)
{
    if (strand.empty()) {
        return "";
    }
    Builder builder(options);
    StrandEval eval(builder);
    for (std::size_t i = 0; i + 1 < strand.size(); ++i) {
        eval.eval(strand[i]);
    }
    const Stmt &root = strand.back();
    Printer printer(builder, options);
    switch (root.kind) {
      case Stmt::Kind::Put: {
        const int v = eval.operand(root.a);
        if (options.normalize_names) {
            // Register folding: the stored-to register is anonymized;
            // the computed value is the strand's return value.
            return "ret " + printer.print(v);
        }
        return "put r" + std::to_string(root.reg) + ", " +
               printer.print(v);
      }
      case Stmt::Kind::Store:
        return "store(" + printer.print(eval.operand(root.a)) + ", " +
               printer.print(eval.operand(root.b)) + ")";
      case Stmt::Kind::Exit:
        return "exit(" + printer.print(eval.operand(root.a)) + ") -> " +
               printer.print(eval.operand(root.b));
      case Stmt::Kind::Call:
        return "call(" + printer.print(eval.operand(root.a)) + ")";
      default: {
        // A value-producing statement nothing in the block consumes.
        eval.eval(root);
        const auto it = eval.temps_.find(root.dst);
        const int v = it != eval.temps_.end()
                          ? it->second
                          : eval.operand(Operand::none());
        return "val " + printer.print(v);
      }
    }
}

std::uint64_t
strand_hash(const Strand &strand, const CanonOptions &options)
{
    return fnv1a64(canonical_strand(strand, options));
}

void
ProcedureStrands::finalize()
{
    std::sort(hashes.begin(), hashes.end());
    hashes.erase(std::unique(hashes.begin(), hashes.end()),
                 hashes.end());
}

bool
ProcedureStrands::contains(std::uint64_t h) const
{
    return std::binary_search(hashes.begin(), hashes.end(), h);
}

ProcedureStrands
strand_set(std::vector<std::uint64_t> hashes)
{
    ProcedureStrands out;
    out.hashes = std::move(hashes);
    out.finalize();
    return out;
}

ProcedureStrands
represent_procedure(const ir::Procedure &proc, const CanonOptions &options)
{
    ProcedureStrands out;
    out.block_count = proc.blocks.size();
    std::uint64_t strands = 0;
    for (const auto &[addr, block] : proc.blocks) {
        out.stmt_count += block.stmts.size();
        for (const Strand &strand : decompose_block(block)) {
            out.add(strand_hash(strand, options));
            ++strands;
        }
    }
    out.finalize();
    c_procedures.add();
    c_strands.add(strands);
    // Each strand runs the enabled canonicalization passes (offset
    // elimination, symbolic re-optimization, name normalization).
    const std::uint64_t enabled_passes =
        (options.eliminate_offsets ? 1u : 0u) +
        (options.optimize ? 1u : 0u) + (options.normalize_names ? 1u : 0u);
    c_passes.add(strands * enabled_passes);
    return out;
}

std::vector<std::string>
canonical_strings(const ir::Procedure &proc, const CanonOptions &options)
{
    std::vector<std::string> out;
    for (const auto &[addr, block] : proc.blocks) {
        for (const Strand &strand : decompose_block(block)) {
            out.push_back(canonical_strand(strand, options));
        }
    }
    return out;
}

}  // namespace firmup::strand
