/**
 * @file
 * Toolchain profiles — the "unique build tool chains" of the paper.
 *
 * Each vendor in the firmware corpus builds with its own profile; the
 * query side uses the gcc-like default ("gcc 5.2 at -O2", section 5.1).
 * A profile bundles optimizer configuration and code-generation policies;
 * two profiles applied to the same source produce the syntactic divergence
 * of Fig. 1 while preserving semantics.
 */
#pragma once

#include <string>
#include <vector>

namespace firmup::compiler {

/** One simulated compiler/toolchain configuration. */
struct ToolchainProfile
{
    std::string name;

    // ---- optimizer configuration ----
    int opt_level = 2;            ///< 0, 1 or 2
    bool use_cse = true;          ///< common subexpression elimination
    bool strength_reduce = true;  ///< mul-by-power-of-two => shift
    bool swap_commutative = false;///< prefer reversed operand order
    int inline_threshold = 8;     ///< max callee insts to inline (O2 only)
    bool rotate_loops = false;    ///< bottom-test loop rotation (O2)

    // ---- code generation configuration ----
    bool locals_descending = false;  ///< frame slot layout direction
    int extra_frame_pad = 0;         ///< extra bytes in every frame
    bool callee_saved_first = false; ///< register allocation preference
    bool mips_fill_delay_slot = false; ///< fill branch delay slots (vs NOP)
    bool mips_pic_calls = false;       ///< PIC-style calls: la $t9 + jalr $t9
    bool materialize_full_const = false; ///< always use hi/lo pairs
    bool reverse_block_layout = false;   ///< alternative block placement
};

/** The query-side reference toolchain ("gcc 5.2 -O2"). */
ToolchainProfile gcc_like_toolchain();

/** Vendor toolchains used when building firmware corpora. */
std::vector<ToolchainProfile> vendor_toolchains();

/** Look up a profile by name in {gcc_like} ∪ vendor_toolchains(). */
ToolchainProfile toolchain_by_name(const std::string &name);

}  // namespace firmup::compiler
