#include "compiler/lower.h"

#include <algorithm>
#include <map>

#include "support/error.h"

namespace firmup::compiler {

namespace {

/** Per-procedure lowering context. */
class ProcLowering
{
  public:
    ProcLowering(const lang::ProcedureAst &ast,
                 const std::map<std::string, int> &proc_index,
                 const std::vector<int> &global_words)
        : ast_(ast), proc_index_(proc_index), global_words_(global_words)
    {
        proc_.name = ast.name;
        proc_.num_params = ast.num_params;
        proc_.exported = ast.exported;
        // vregs [0, num_params) are parameters; locals follow.
        local_base_ = static_cast<VReg>(ast.num_params);
        proc_.next_vreg = local_base_ + static_cast<VReg>(ast.num_locals);
        new_block();
    }

    MProc
    run()
    {
        // Locals read before first write must be defined. They are
        // initialized from global state (as real procedures read config
        // and context structures), which keeps their values opaque to
        // the optimizer — a constant initializer would let -O2 fold away
        // entire control-flow regions and make different optimization
        // levels of the same source structurally unrecognizable.
        for (int i = 0; i < ast_.num_locals; ++i) {
            const VReg dst = local_base_ + static_cast<VReg>(i);
            if (global_words_.empty()) {
                emit(MInst::make_const(dst, 0));
                continue;
            }
            const int g = i % static_cast<int>(global_words_.size());
            const int word =
                i % std::max(1, global_words_[static_cast<std::size_t>(
                                    g)]);
            const VReg base = proc_.fresh();
            emit(MInst::gaddr(base, g));
            const VReg addr = proc_.fresh();
            emit(MInst::bin(addr, MOp::Add, base,
                            MVal::immediate(4 * word)));
            emit(MInst::load(dst, addr));
        }
        const bool terminated = lower_body(ast_.body);
        if (!terminated) {
            // Implicit `return 0` for bodies without a trailing return.
            const VReg zero = proc_.fresh();
            emit(MInst::make_const(zero, 0));
            terminate(MTerm::ret(zero));
        }
        return std::move(proc_);
    }

  private:
    int
    new_block()
    {
        const int id = static_cast<int>(proc_.blocks.size());
        MBlock b;
        b.id = id;
        proc_.blocks.push_back(std::move(b));
        cur_ = id;
        return id;
    }

    MBlock &cur() { return proc_.blocks[static_cast<std::size_t>(cur_)]; }

    void emit(MInst inst) { cur().insts.push_back(std::move(inst)); }

    void
    terminate(MTerm term)
    {
        cur().term = term;
        terminated_ = true;
    }

    /** Lower an expression, returning the vreg holding its value. */
    VReg
    lower_expr(const lang::Expr &e)
    {
        switch (e.kind) {
          case lang::Expr::Kind::Const: {
            const VReg r = proc_.fresh();
            emit(MInst::make_const(r, e.value));
            return r;
          }
          case lang::Expr::Kind::Param:
            FIRMUP_ASSERT(e.index < ast_.num_params, "bad param index");
            return static_cast<VReg>(e.index);
          case lang::Expr::Kind::Local:
            FIRMUP_ASSERT(e.index < ast_.num_locals, "bad local index");
            return local_base_ + static_cast<VReg>(e.index);
          case lang::Expr::Kind::LoadGlobal: {
            const VReg addr = lower_global_addr(e.index, *e.a);
            const VReg r = proc_.fresh();
            emit(MInst::load(r, addr));
            return r;
          }
          case lang::Expr::Kind::Bin:
            return lower_bin(e);
          case lang::Expr::Kind::Call:
            return lower_call(e);
        }
        FIRMUP_ASSERT(false, "unreachable expr kind");
    }

    /** Compute &global[index_expr] (word-indexed). */
    VReg
    lower_global_addr(int global_index, const lang::Expr &index_expr)
    {
        const VReg base = proc_.fresh();
        emit(MInst::gaddr(base, global_index));
        const VReg idx = lower_expr(index_expr);
        const VReg off = proc_.fresh();
        emit(MInst::bin(off, MOp::Shl, idx, MVal::immediate(2)));
        const VReg addr = proc_.fresh();
        emit(MInst::bin(addr, MOp::Add, base, MVal::vreg(off)));
        return addr;
    }

    VReg
    lower_bin(const lang::Expr &e)
    {
        using L = lang::BinOp;
        // Gt/Ge canonicalize to Lt/Le with swapped operands here, so MIR
        // (and everything downstream) only sees the canonical quartet.
        const bool swapped = e.op == L::Gt || e.op == L::Ge;
        const VReg a = lower_expr(swapped ? *e.b : *e.a);
        const VReg b = lower_expr(swapped ? *e.a : *e.b);
        MOp op;
        switch (e.op) {
          case L::Add: op = MOp::Add; break;
          case L::Sub: op = MOp::Sub; break;
          case L::Mul: op = MOp::Mul; break;
          case L::Div: op = MOp::DivS; break;
          case L::Rem: op = MOp::RemS; break;
          case L::And: op = MOp::And; break;
          case L::Or: op = MOp::Or; break;
          case L::Xor: op = MOp::Xor; break;
          case L::Shl: op = MOp::Shl; break;
          case L::Shr: op = MOp::ShrA; break;
          case L::Eq: op = MOp::CmpEQ; break;
          case L::Ne: op = MOp::CmpNE; break;
          case L::Lt:
          case L::Gt: op = MOp::CmpLTS; break;
          case L::Le:
          case L::Ge: op = MOp::CmpLES; break;
          default:
            FIRMUP_ASSERT(false, "unhandled source binop");
        }
        const VReg r = proc_.fresh();
        emit(MInst::bin(r, op, a, MVal::vreg(b)));
        return r;
    }

    VReg
    lower_call(const lang::Expr &e)
    {
        std::vector<VReg> args;
        args.reserve(e.args.size());
        for (const lang::ExprPtr &arg : e.args) {
            args.push_back(lower_expr(*arg));
        }
        const VReg r = proc_.fresh();
        const auto it = proc_index_.find(e.callee);
        if (it == proc_index_.end()) {
            // Callee excluded by the build configuration: the call site is
            // compiled out (the --disable-opie effect).
            emit(MInst::make_const(r, 0));
        } else {
            emit(MInst::call(r, it->second, std::move(args)));
        }
        return r;
    }

    /**
     * Lower a statement list into the current block chain.
     * @return true when the body ended in a Return (block terminated).
     */
    bool
    lower_body(const std::vector<lang::StmtPtr> &body)
    {
        for (const lang::StmtPtr &s : body) {
            if (lower_stmt(*s)) {
                return true;  // statements after a return are dead
            }
        }
        return false;
    }

    /** @return true when the statement terminated the current block. */
    bool
    lower_stmt(const lang::Stmt &s)
    {
        switch (s.kind) {
          case lang::Stmt::Kind::AssignLocal: {
            const VReg rhs = lower_expr(*s.expr);
            emit(MInst::copy(local_base_ + static_cast<VReg>(s.index),
                             rhs));
            return false;
          }
          case lang::Stmt::Kind::StoreGlobal: {
            const VReg addr = lower_global_addr(s.index, *s.addr);
            const VReg val = lower_expr(*s.expr);
            emit(MInst::store(addr, val));
            return false;
          }
          case lang::Stmt::Kind::If: {
            const VReg cond = lower_expr(*s.cond);
            const int cond_block = cur_;
            const int then_block = new_block();
            const bool then_done = lower_body(s.then_body);
            const int then_end = cur_;

            int else_block = -1;
            int else_end = -1;
            bool else_done = false;
            if (!s.else_body.empty()) {
                else_block = new_block();
                else_done = lower_body(s.else_body);
                else_end = cur_;
            }
            const int join = new_block();

            proc_.blocks[static_cast<std::size_t>(cond_block)].term =
                MTerm::branch(cond, then_block,
                              else_block >= 0 ? else_block : join);
            if (!then_done) {
                proc_.blocks[static_cast<std::size_t>(then_end)].term =
                    MTerm::jump(join);
            }
            if (else_block >= 0 && !else_done) {
                proc_.blocks[static_cast<std::size_t>(else_end)].term =
                    MTerm::jump(join);
            }
            cur_ = join;
            return false;
          }
          case lang::Stmt::Kind::While: {
            const int pre_block = cur_;
            const int head = new_block();
            proc_.blocks[static_cast<std::size_t>(pre_block)].term =
                MTerm::jump(head);
            const VReg cond = lower_expr(*s.cond);
            const int head_end = cur_;

            const int body_block = new_block();
            const bool body_done = lower_body(s.else_body);
            const int body_end = cur_;

            const int exit = new_block();
            proc_.blocks[static_cast<std::size_t>(head_end)].term =
                MTerm::branch(cond, body_block, exit);
            if (!body_done) {
                proc_.blocks[static_cast<std::size_t>(body_end)].term =
                    MTerm::jump(head);
            }
            cur_ = exit;
            return false;
          }
          case lang::Stmt::Kind::Return: {
            const VReg v = lower_expr(*s.expr);
            terminate(MTerm::ret(v));
            return true;
          }
          case lang::Stmt::Kind::ExprStmt:
            lower_expr(*s.expr);
            return false;
        }
        return false;
    }

    const lang::ProcedureAst &ast_;
    const std::map<std::string, int> &proc_index_;
    const std::vector<int> &global_words_;
    MProc proc_;
    VReg local_base_ = 0;
    int cur_ = 0;
    bool terminated_ = false;
};

}  // namespace

MModule
lower_package(const lang::PackageSource &source,
              const std::set<std::string> &enabled_features)
{
    MModule module;
    module.name = source.name;
    for (const lang::GlobalVar &g : source.globals) {
        module.global_words.push_back(g.words);
    }

    // Select the procedures present in this build.
    std::vector<const lang::ProcedureAst *> included;
    std::map<std::string, int> proc_index;
    for (const lang::ProcedureAst &p : source.procedures) {
        if (!p.feature.empty() && !enabled_features.contains(p.feature)) {
            continue;
        }
        proc_index[p.name] = static_cast<int>(included.size());
        included.push_back(&p);
    }

    for (const lang::ProcedureAst *p : included) {
        ProcLowering lowering(*p, proc_index, module.global_words);
        module.procs.push_back(lowering.run());
    }
    return module;
}

MModule
lower_package(const lang::PackageSource &source)
{
    std::set<std::string> all;
    for (const lang::ProcedureAst &p : source.procedures) {
        if (!p.feature.empty()) {
            all.insert(p.feature);
        }
    }
    return lower_package(source, all);
}

}  // namespace firmup::compiler
