#include "compiler/toolchain.h"

#include "support/error.h"

namespace firmup::compiler {

ToolchainProfile
gcc_like_toolchain()
{
    ToolchainProfile p;
    p.name = "gcc-5.2-O2";
    p.opt_level = 2;
    p.use_cse = true;
    p.strength_reduce = true;
    p.inline_threshold = 8;
    p.rotate_loops = true;
    return p;
}

std::vector<ToolchainProfile>
vendor_toolchains()
{
    std::vector<ToolchainProfile> out;

    {
        // A conservative vendor build: low optimization, memory-heavy code.
        ToolchainProfile p;
        p.name = "vendor-cc-O0";
        p.opt_level = 0;
        p.use_cse = false;
        p.strength_reduce = false;
        p.inline_threshold = 0;
        p.locals_descending = true;
        p.extra_frame_pad = 8;
        p.materialize_full_const = true;
        out.push_back(p);
    }
    {
        // Mid-level vendor build with different layout policies.
        ToolchainProfile p;
        p.name = "vendor-cc-O1";
        p.opt_level = 1;
        p.use_cse = false;
        p.strength_reduce = true;
        p.inline_threshold = 0;
        p.swap_commutative = true;
        p.callee_saved_first = true;
        p.mips_fill_delay_slot = true;
        p.mips_pic_calls = true;  // NETGEAR-style MIPS builds (Fig. 1a)
        out.push_back(p);
    }
    {
        // Aggressive vendor build: heavy inlining, reordered layout.
        ToolchainProfile p;
        p.name = "vendor-cc-O2";
        p.opt_level = 2;
        p.use_cse = true;
        p.strength_reduce = true;
        p.inline_threshold = 16;
        p.rotate_loops = true;
        p.swap_commutative = true;
        p.reverse_block_layout = true;
        p.locals_descending = true;
        p.mips_fill_delay_slot = true;
        out.push_back(p);
    }
    {
        // An SDK-like toolchain close to the reference but not identical.
        ToolchainProfile p;
        p.name = "sdk-gcc-O2";
        p.opt_level = 2;
        p.use_cse = true;
        p.strength_reduce = true;
        p.inline_threshold = 4;
        p.extra_frame_pad = 4;
        p.callee_saved_first = true;
        out.push_back(p);
    }
    return out;
}

ToolchainProfile
toolchain_by_name(const std::string &name)
{
    if (ToolchainProfile p = gcc_like_toolchain(); p.name == name) {
        return p;
    }
    for (const ToolchainProfile &p : vendor_toolchains()) {
        if (p.name == name) {
            return p;
        }
    }
    FIRMUP_ASSERT(false, "unknown toolchain profile: " + name);
}

}  // namespace firmup::compiler
