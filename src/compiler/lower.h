/**
 * @file
 * AST → MIR lowering.
 *
 * Lowering selects the set of procedures present in a build (feature gates
 * model the paper's `--disable-opie`-style configuration differences) and
 * produces an MModule. Calls to procedures excluded by the build
 * configuration are *dropped* — replaced by a constant-zero result — which
 * is what produces the call-graph variance of Fig. 5 and the "domino
 * effect" described in section 2.2.
 */
#pragma once

#include <set>
#include <string>

#include "compiler/mir.h"
#include "lang/ast.h"

namespace firmup::compiler {

/**
 * Lower @p source to MIR.
 *
 * Procedures whose feature gate is non-empty and not in
 * @p enabled_features are omitted from the module.
 */
MModule lower_package(const lang::PackageSource &source,
                      const std::set<std::string> &enabled_features);

/** Lower with every feature enabled. */
MModule lower_package(const lang::PackageSource &source);

}  // namespace firmup::compiler
