#include "compiler/mir.h"

#include "support/str.h"

namespace firmup::compiler {

bool
mop_is_compare(MOp op)
{
    switch (op) {
      case MOp::CmpEQ:
      case MOp::CmpNE:
      case MOp::CmpLTS:
      case MOp::CmpLES:
      case MOp::CmpLTU:
      case MOp::CmpLEU:
        return true;
      default:
        return false;
    }
}

bool
mop_is_commutative(MOp op)
{
    switch (op) {
      case MOp::Add:
      case MOp::Mul:
      case MOp::And:
      case MOp::Or:
      case MOp::Xor:
      case MOp::CmpEQ:
      case MOp::CmpNE:
        return true;
      default:
        return false;
    }
}

const char *
mop_name(MOp op)
{
    switch (op) {
      case MOp::Add: return "add";
      case MOp::Sub: return "sub";
      case MOp::Mul: return "mul";
      case MOp::DivS: return "sdiv";
      case MOp::RemS: return "srem";
      case MOp::And: return "and";
      case MOp::Or: return "or";
      case MOp::Xor: return "xor";
      case MOp::Shl: return "shl";
      case MOp::ShrA: return "ashr";
      case MOp::ShrL: return "lshr";
      case MOp::CmpEQ: return "cmpeq";
      case MOp::CmpNE: return "cmpne";
      case MOp::CmpLTS: return "cmplts";
      case MOp::CmpLES: return "cmples";
      case MOp::CmpLTU: return "cmpltu";
      case MOp::CmpLEU: return "cmpleu";
    }
    return "?";
}

MInst
MInst::make_const(VReg dst, std::int32_t imm)
{
    MInst i;
    i.kind = Kind::Const;
    i.dst = dst;
    i.imm = imm;
    return i;
}

MInst
MInst::copy(VReg dst, VReg src)
{
    MInst i;
    i.kind = Kind::Copy;
    i.dst = dst;
    i.a = src;
    return i;
}

MInst
MInst::bin(VReg dst, MOp op, VReg a, MVal b)
{
    MInst i;
    i.kind = Kind::Bin;
    i.dst = dst;
    i.op = op;
    i.a = a;
    i.b = b;
    return i;
}

MInst
MInst::gaddr(VReg dst, int global_index)
{
    MInst i;
    i.kind = Kind::GAddr;
    i.dst = dst;
    i.global_index = global_index;
    return i;
}

MInst
MInst::load(VReg dst, VReg addr)
{
    MInst i;
    i.kind = Kind::Load;
    i.dst = dst;
    i.a = addr;
    return i;
}

MInst
MInst::store(VReg addr, VReg value)
{
    MInst i;
    i.kind = Kind::Store;
    i.a = addr;
    i.b = MVal::vreg(value);
    return i;
}

MInst
MInst::call(VReg dst, int callee, std::vector<VReg> args)
{
    MInst i;
    i.kind = Kind::Call;
    i.dst = dst;
    i.callee = callee;
    i.args = std::move(args);
    return i;
}

MTerm
MTerm::jump(int target)
{
    MTerm t;
    t.kind = Kind::Jump;
    t.target = target;
    return t;
}

MTerm
MTerm::branch(VReg cond, int target, int fallthrough)
{
    MTerm t;
    t.kind = Kind::Branch;
    t.cond = cond;
    t.target = target;
    t.fallthrough = fallthrough;
    return t;
}

MTerm
MTerm::ret(VReg value)
{
    MTerm t;
    t.kind = Kind::Ret;
    t.ret_reg = value;
    return t;
}

MBlock *
MProc::block_by_id(int id)
{
    for (MBlock &b : blocks) {
        if (b.id == id) {
            return &b;
        }
    }
    return nullptr;
}

const MBlock *
MProc::block_by_id(int id) const
{
    return const_cast<MProc *>(this)->block_by_id(id);
}

std::size_t
MProc::inst_count() const
{
    std::size_t n = 0;
    for (const MBlock &b : blocks) {
        n += b.insts.size();
    }
    return n;
}

int
MModule::find_proc(const std::string &proc_name) const
{
    for (std::size_t i = 0; i < procs.size(); ++i) {
        if (procs[i].name == proc_name) {
            return static_cast<int>(i);
        }
    }
    return -1;
}

namespace {

std::string
mval_str(const MVal &v)
{
    return v.is_vreg() ? "%" + std::to_string(v.reg)
                       : std::to_string(v.imm);
}

}  // namespace

std::string
to_string(const MInst &inst)
{
    const std::string d = "%" + std::to_string(inst.dst);
    switch (inst.kind) {
      case MInst::Kind::Const:
        return d + " = const " + std::to_string(inst.imm);
      case MInst::Kind::Copy:
        return d + " = %" + std::to_string(inst.a);
      case MInst::Kind::Bin:
        return d + " = " + mop_name(inst.op) + " %" +
               std::to_string(inst.a) + ", " + mval_str(inst.b);
      case MInst::Kind::GAddr:
        return d + " = gaddr g" + std::to_string(inst.global_index);
      case MInst::Kind::Load:
        return d + " = load %" + std::to_string(inst.a);
      case MInst::Kind::Store:
        return "store %" + std::to_string(inst.a) + ", " + mval_str(inst.b);
      case MInst::Kind::Call: {
        std::string out = d + " = call @" + std::to_string(inst.callee) +
                          "(";
        for (std::size_t i = 0; i < inst.args.size(); ++i) {
            if (i > 0) {
                out += ", ";
            }
            out += "%" + std::to_string(inst.args[i]);
        }
        return out + ")";
      }
    }
    return "?";
}

std::string
to_string(const MProc &proc)
{
    std::string out = "proc " + proc.name + "(" +
                      std::to_string(proc.num_params) + " params)\n";
    for (const MBlock &b : proc.blocks) {
        out += "bb" + std::to_string(b.id) + ":\n";
        for (const MInst &inst : b.insts) {
            out += "  " + to_string(inst) + "\n";
        }
        switch (b.term.kind) {
          case MTerm::Kind::Jump:
            out += "  jump bb" + std::to_string(b.term.target) + "\n";
            break;
          case MTerm::Kind::Branch:
            out += "  br %" + std::to_string(b.term.cond) + ", bb" +
                   std::to_string(b.term.target) + ", bb" +
                   std::to_string(b.term.fallthrough) + "\n";
            break;
          case MTerm::Kind::Ret:
            out += "  ret %" + std::to_string(b.term.ret_reg) + "\n";
            break;
        }
    }
    return out;
}

}  // namespace firmup::compiler
