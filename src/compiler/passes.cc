#include "compiler/passes.h"

#include <algorithm>
#include <map>
#include <optional>
#include <set>

#include "support/error.h"

namespace firmup::compiler {

namespace {

/** Evaluate a folded binary operation. Divide-by-zero folds to 0. */
std::int32_t
eval_binop(MOp op, std::int32_t a, std::int32_t b)
{
    const auto ua = static_cast<std::uint32_t>(a);
    const auto ub = static_cast<std::uint32_t>(b);
    switch (op) {
      case MOp::Add: return static_cast<std::int32_t>(ua + ub);
      case MOp::Sub: return static_cast<std::int32_t>(ua - ub);
      case MOp::Mul: return static_cast<std::int32_t>(ua * ub);
      case MOp::DivS:
        if (b == 0 || (a == INT32_MIN && b == -1)) {
            return 0;
        }
        return a / b;
      case MOp::RemS:
        if (b == 0 || (a == INT32_MIN && b == -1)) {
            return 0;
        }
        return a % b;
      case MOp::And: return static_cast<std::int32_t>(ua & ub);
      case MOp::Or: return static_cast<std::int32_t>(ua | ub);
      case MOp::Xor: return static_cast<std::int32_t>(ua ^ ub);
      case MOp::Shl: return static_cast<std::int32_t>(ua << (ub & 31));
      case MOp::ShrA: return a >> (ub & 31);
      case MOp::ShrL: return static_cast<std::int32_t>(ua >> (ub & 31));
      case MOp::CmpEQ: return a == b;
      case MOp::CmpNE: return a != b;
      case MOp::CmpLTS: return a < b;
      case MOp::CmpLES: return a <= b;
      case MOp::CmpLTU: return ua < ub;
      case MOp::CmpLEU: return ua <= ub;
    }
    return 0;
}

bool
is_power_of_two(std::int32_t v)
{
    return v > 0 && (static_cast<std::uint32_t>(v) &
                     (static_cast<std::uint32_t>(v) - 1)) == 0;
}

int
log2_of(std::int32_t v)
{
    int n = 0;
    while ((1 << n) < v) {
        ++n;
    }
    return n;
}

/** Uses of vregs in an instruction, for liveness. */
template <typename Fn>
void
for_each_use(const MInst &inst, Fn fn)
{
    switch (inst.kind) {
      case MInst::Kind::Const:
      case MInst::Kind::GAddr:
        break;
      case MInst::Kind::Copy:
      case MInst::Kind::Load:
        fn(inst.a);
        break;
      case MInst::Kind::Bin:
      case MInst::Kind::Store:
        fn(inst.a);
        if (inst.b.is_vreg()) {
            fn(inst.b.reg);
        }
        break;
      case MInst::Kind::Call:
        for (VReg arg : inst.args) {
            fn(arg);
        }
        break;
    }
}

}  // namespace

void
fold_constants(MProc &proc, bool strength_reduce)
{
    for (MBlock &block : proc.blocks) {
        std::map<VReg, std::int32_t> known;
        for (MInst &inst : block.insts) {
            // Resolve vreg operands that are known constants.
            if (inst.kind == MInst::Kind::Copy) {
                if (auto it = known.find(inst.a); it != known.end()) {
                    inst = MInst::make_const(inst.dst, it->second);
                }
            } else if (inst.kind == MInst::Kind::Bin) {
                if (inst.b.is_vreg()) {
                    if (auto it = known.find(inst.b.reg);
                        it != known.end()) {
                        inst.b = MVal::immediate(it->second);
                    }
                }
                const auto a_known = known.find(inst.a);
                if (a_known != known.end() && inst.b.is_imm()) {
                    inst = MInst::make_const(
                        inst.dst,
                        eval_binop(inst.op, a_known->second, inst.b.imm));
                } else if (inst.b.is_imm()) {
                    // Algebraic identities on a constant rhs.
                    const std::int32_t c = inst.b.imm;
                    switch (inst.op) {
                      case MOp::Add:
                      case MOp::Sub:
                      case MOp::Or:
                      case MOp::Xor:
                      case MOp::Shl:
                      case MOp::ShrA:
                      case MOp::ShrL:
                        if (c == 0) {
                            inst = MInst::copy(inst.dst, inst.a);
                        }
                        break;
                      case MOp::Mul:
                        if (c == 0) {
                            inst = MInst::make_const(inst.dst, 0);
                        } else if (c == 1) {
                            inst = MInst::copy(inst.dst, inst.a);
                        } else if (strength_reduce && is_power_of_two(c)) {
                            inst.op = MOp::Shl;
                            inst.b = MVal::immediate(log2_of(c));
                        }
                        break;
                      case MOp::And:
                        if (c == 0) {
                            inst = MInst::make_const(inst.dst, 0);
                        } else if (c == -1) {
                            inst = MInst::copy(inst.dst, inst.a);
                        }
                        break;
                      default:
                        break;
                    }
                }
            }
            // Update known-constant facts.
            if (inst.has_dst()) {
                known.erase(inst.dst);
                if (inst.kind == MInst::Kind::Const) {
                    known[inst.dst] = inst.imm;
                }
            }
        }
    }
}

void
propagate_copies(MProc &proc)
{
    for (MBlock &block : proc.blocks) {
        std::map<VReg, VReg> alias;  // dst -> original source
        auto resolve = [&alias](VReg r) {
            auto it = alias.find(r);
            return it != alias.end() ? it->second : r;
        };
        for (MInst &inst : block.insts) {
            // Rewrite uses through the alias map.
            switch (inst.kind) {
              case MInst::Kind::Copy:
              case MInst::Kind::Load:
                inst.a = resolve(inst.a);
                break;
              case MInst::Kind::Bin:
              case MInst::Kind::Store:
                inst.a = resolve(inst.a);
                if (inst.b.is_vreg()) {
                    inst.b = MVal::vreg(resolve(inst.b.reg));
                }
                break;
              case MInst::Kind::Call:
                for (VReg &arg : inst.args) {
                    arg = resolve(arg);
                }
                break;
              default:
                break;
            }
            if (inst.has_dst()) {
                // A redefinition invalidates aliases in both directions.
                alias.erase(inst.dst);
                for (auto it = alias.begin(); it != alias.end();) {
                    it = it->second == inst.dst ? alias.erase(it)
                                                : std::next(it);
                }
                if (inst.kind == MInst::Kind::Copy &&
                    inst.a != inst.dst) {
                    alias[inst.dst] = inst.a;
                }
            }
        }
        // Terminator uses are only safe to rewrite with aliases that
        // survived to the end of the block.
        if (block.term.kind == MTerm::Kind::Branch) {
            block.term.cond = resolve(block.term.cond);
        } else if (block.term.kind == MTerm::Kind::Ret) {
            block.term.ret_reg = resolve(block.term.ret_reg);
        }
    }
}

void
eliminate_common_subexpressions(MProc &proc)
{
    for (MBlock &block : proc.blocks) {
        // Version counters invalidate expressions whose inputs changed.
        std::map<VReg, int> version;
        auto ver = [&version](VReg r) {
            auto it = version.find(r);
            return it != version.end() ? it->second : 0;
        };
        struct Key
        {
            MInst::Kind kind;
            MOp op;
            VReg a;
            int a_ver;
            bool b_is_vreg;
            VReg b_reg;
            int b_ver;
            std::int32_t imm;
            int global_index;
            auto operator<=>(const Key &) const = default;
        };
        std::map<Key, VReg> available;
        int load_barrier = 0;  // stores/calls invalidate loads

        for (MInst &inst : block.insts) {
            std::optional<Key> key;
            switch (inst.kind) {
              case MInst::Kind::Bin:
                key = Key{inst.kind, inst.op, inst.a, ver(inst.a),
                          inst.b.is_vreg(),
                          inst.b.is_vreg() ? inst.b.reg : 0,
                          inst.b.is_vreg() ? ver(inst.b.reg) : 0,
                          inst.b.is_imm() ? inst.b.imm : 0, -1};
                break;
              case MInst::Kind::GAddr:
                key = Key{inst.kind, MOp::Add, 0, 0, false, 0, 0, 0,
                          inst.global_index};
                break;
              case MInst::Kind::Load:
                key = Key{inst.kind, MOp::Add, inst.a, ver(inst.a), false,
                          0, load_barrier, 0, -1};
                break;
              default:
                break;
            }
            if (inst.kind == MInst::Kind::Store ||
                inst.kind == MInst::Kind::Call) {
                ++load_barrier;
            }
            bool reused = false;
            if (key) {
                auto it = available.find(*key);
                if (it != available.end()) {
                    inst = MInst::copy(inst.dst, it->second);
                    reused = true;
                }
            }
            if (inst.has_dst()) {
                version[inst.dst] = ver(inst.dst) + 1;
                // Drop expressions whose cached dst was overwritten...
                for (auto it = available.begin(); it != available.end();) {
                    it = it->second == inst.dst ? available.erase(it)
                                                : std::next(it);
                }
                // ...then publish the freshly computed expression.
                if (key && !reused) {
                    available[*key] = inst.dst;
                }
            }
        }
    }
}

void
eliminate_dead_code(MProc &proc)
{
    const std::size_t n_vregs = proc.next_vreg;
    std::map<int, std::size_t> block_pos;
    for (std::size_t i = 0; i < proc.blocks.size(); ++i) {
        block_pos[proc.blocks[i].id] = i;
    }

    // Iterative backward liveness to a fixed point.
    std::vector<std::vector<bool>> live_in(
        proc.blocks.size(), std::vector<bool>(n_vregs, false));
    bool changed = true;
    while (changed) {
        changed = false;
        for (std::size_t bi = proc.blocks.size(); bi-- > 0;) {
            const MBlock &block = proc.blocks[bi];
            std::vector<bool> live(n_vregs, false);
            // live-out = union of successor live-ins.
            auto absorb = [&](int succ_id) {
                const auto it = block_pos.find(succ_id);
                if (it == block_pos.end()) {
                    return;
                }
                const auto &succ_live = live_in[it->second];
                for (std::size_t v = 0; v < n_vregs; ++v) {
                    if (succ_live[v]) {
                        live[v] = true;
                    }
                }
            };
            switch (block.term.kind) {
              case MTerm::Kind::Jump:
                absorb(block.term.target);
                break;
              case MTerm::Kind::Branch:
                absorb(block.term.target);
                absorb(block.term.fallthrough);
                if (block.term.cond < n_vregs) {
                    live[block.term.cond] = true;
                }
                break;
              case MTerm::Kind::Ret:
                if (block.term.ret_reg < n_vregs) {
                    live[block.term.ret_reg] = true;
                }
                break;
            }
            for (std::size_t ii = block.insts.size(); ii-- > 0;) {
                const MInst &inst = block.insts[ii];
                if (inst.has_dst() && inst.dst < n_vregs) {
                    live[inst.dst] = false;
                }
                for_each_use(inst, [&live, n_vregs](VReg r) {
                    if (r < n_vregs) {
                        live[r] = true;
                    }
                });
            }
            if (live != live_in[bi]) {
                live_in[bi] = std::move(live);
                changed = true;
            }
        }
    }

    // Second pass: delete instructions whose result is dead at that point.
    for (std::size_t bi = 0; bi < proc.blocks.size(); ++bi) {
        MBlock &block = proc.blocks[bi];
        std::vector<bool> live(n_vregs, false);
        auto absorb = [&](int succ_id) {
            const auto it = block_pos.find(succ_id);
            if (it == block_pos.end()) {
                return;
            }
            const auto &succ_live = live_in[it->second];
            for (std::size_t v = 0; v < n_vregs; ++v) {
                if (succ_live[v]) {
                    live[v] = true;
                }
            }
        };
        switch (block.term.kind) {
          case MTerm::Kind::Jump:
            absorb(block.term.target);
            break;
          case MTerm::Kind::Branch:
            absorb(block.term.target);
            absorb(block.term.fallthrough);
            live[block.term.cond] = true;
            break;
          case MTerm::Kind::Ret:
            live[block.term.ret_reg] = true;
            break;
        }
        std::vector<MInst> kept;
        kept.reserve(block.insts.size());
        for (std::size_t ii = block.insts.size(); ii-- > 0;) {
            MInst &inst = block.insts[ii];
            const bool needed = inst.has_side_effects() ||
                                (inst.has_dst() && live[inst.dst]);
            if (!needed) {
                continue;
            }
            if (inst.has_dst()) {
                live[inst.dst] = false;
            }
            for_each_use(inst, [&live](VReg r) { live[r] = true; });
            kept.push_back(std::move(inst));
        }
        std::reverse(kept.begin(), kept.end());
        block.insts = std::move(kept);
    }
}

void
simplify_branches(MProc &proc)
{
    for (MBlock &block : proc.blocks) {
        if (block.term.kind != MTerm::Kind::Branch) {
            continue;
        }
        // Find the last in-block definition of the condition.
        std::optional<std::int32_t> value;
        for (const MInst &inst : block.insts) {
            if (inst.has_dst() && inst.dst == block.term.cond) {
                if (inst.kind == MInst::Kind::Const) {
                    value = inst.imm;
                } else {
                    value.reset();
                }
            }
        }
        if (value) {
            block.term = MTerm::jump(*value != 0 ? block.term.target
                                                 : block.term.fallthrough);
        }
    }
}

void
remove_unreachable_blocks(MProc &proc)
{
    std::set<int> reachable;
    std::vector<int> work{proc.blocks.empty() ? 0 : proc.blocks[0].id};
    while (!work.empty()) {
        const int id = work.back();
        work.pop_back();
        if (!reachable.insert(id).second) {
            continue;
        }
        const MBlock *b = proc.block_by_id(id);
        if (b == nullptr) {
            continue;
        }
        switch (b->term.kind) {
          case MTerm::Kind::Jump:
            work.push_back(b->term.target);
            break;
          case MTerm::Kind::Branch:
            work.push_back(b->term.target);
            work.push_back(b->term.fallthrough);
            break;
          case MTerm::Kind::Ret:
            break;
        }
    }
    std::erase_if(proc.blocks, [&reachable](const MBlock &b) {
        return !reachable.contains(b.id);
    });
}

void
merge_blocks(MProc &proc)
{
    bool changed = true;
    while (changed) {
        changed = false;
        // Count predecessors (and detect self-loops).
        std::map<int, int> preds;
        for (const MBlock &b : proc.blocks) {
            switch (b.term.kind) {
              case MTerm::Kind::Jump:
                ++preds[b.term.target];
                break;
              case MTerm::Kind::Branch:
                ++preds[b.term.target];
                ++preds[b.term.fallthrough];
                break;
              case MTerm::Kind::Ret:
                break;
            }
        }
        // Bypass empty forwarding blocks (B: jump C, B has no insts).
        std::map<int, int> forward;
        for (const MBlock &b : proc.blocks) {
            if (b.insts.empty() && b.term.kind == MTerm::Kind::Jump &&
                b.term.target != b.id) {
                forward[b.id] = b.term.target;
            }
        }
        auto resolve = [&forward](int id) {
            std::set<int> seen;
            while (forward.contains(id) && seen.insert(id).second) {
                id = forward[id];
            }
            return id;
        };
        for (MBlock &b : proc.blocks) {
            switch (b.term.kind) {
              case MTerm::Kind::Jump: {
                const int t = resolve(b.term.target);
                changed |= t != b.term.target;
                b.term.target = t;
                break;
              }
              case MTerm::Kind::Branch: {
                const int t = resolve(b.term.target);
                const int f = resolve(b.term.fallthrough);
                changed |= t != b.term.target ||
                           f != b.term.fallthrough;
                b.term.target = t;
                b.term.fallthrough = f;
                break;
              }
              case MTerm::Kind::Ret:
                break;
            }
        }
        remove_unreachable_blocks(proc);
        // Fuse B -> C when C is B's unique successor and B its unique
        // predecessor.
        preds.clear();
        for (const MBlock &b : proc.blocks) {
            switch (b.term.kind) {
              case MTerm::Kind::Jump:
                ++preds[b.term.target];
                break;
              case MTerm::Kind::Branch:
                ++preds[b.term.target];
                ++preds[b.term.fallthrough];
                break;
              case MTerm::Kind::Ret:
                break;
            }
        }
        for (MBlock &b : proc.blocks) {
            if (b.term.kind != MTerm::Kind::Jump ||
                b.term.target == b.id ||
                preds[b.term.target] != 1 ||
                b.term.target == proc.blocks.front().id) {
                continue;
            }
            MBlock *succ = proc.block_by_id(b.term.target);
            if (succ == nullptr) {
                continue;
            }
            b.insts.insert(b.insts.end(), succ->insts.begin(),
                           succ->insts.end());
            b.term = succ->term;
            succ->insts.clear();
            succ->term = MTerm::jump(succ->id);  // now unreachable
            changed = true;
            break;  // restart: pred counts are stale
        }
        remove_unreachable_blocks(proc);
    }
}

int
rotate_loops(MProc &proc)
{
    // Find while-shaped heads: H ends in Branch, some block jumps back
    // to H (backedge), and H's condition computation is side-effect
    // free. Rotation duplicates H into a guard block G; entry edges are
    // retargeted to G, backedges keep testing at H — the bottom-tested
    // form compilers emit at -O2.
    // Collect candidate head ids first; mutation below invalidates
    // iterators and shifts layout positions.
    std::vector<int> heads;
    int max_id = 0;
    for (const MBlock &b : proc.blocks) {
        max_id = std::max(max_id, b.id);
        if (b.term.kind != MTerm::Kind::Branch ||
            b.id == proc.blocks.front().id) {
            continue;
        }
        bool pure = true;
        for (const MInst &inst : b.insts) {
            pure &= !inst.has_side_effects();
        }
        if (!pure) {
            continue;
        }
        bool has_backedge = false;
        bool has_entry_edge = false;
        for (const MBlock &p : proc.blocks) {
            const bool reaches =
                (p.term.kind == MTerm::Kind::Jump &&
                 p.term.target == b.id) ||
                (p.term.kind == MTerm::Kind::Branch &&
                 (p.term.target == b.id || p.term.fallthrough == b.id));
            if (!reaches) {
                continue;
            }
            // Lowering assigns ids in source order: a predecessor with a
            // higher id is the loop body's backedge.
            if (p.id > b.id) {
                has_backedge = true;
            } else {
                has_entry_edge = true;
            }
        }
        if (has_backedge && has_entry_edge) {
            heads.push_back(b.id);
        }
    }

    int rotated = 0;
    for (int head_id : heads) {
        std::size_t head_pos = proc.blocks.size();
        for (std::size_t i = 0; i < proc.blocks.size(); ++i) {
            if (proc.blocks[i].id == head_id) {
                head_pos = i;
                break;
            }
        }
        if (head_pos == proc.blocks.size()) {
            continue;
        }
        MBlock guard;
        guard.id = ++max_id;
        guard.insts = proc.blocks[head_pos].insts;
        guard.term = proc.blocks[head_pos].term;
        // Retarget entry edges (lower-id predecessors) to the guard;
        // backedges and later blocks keep testing at the original head.
        for (MBlock &b : proc.blocks) {
            if (b.id >= head_id) {
                continue;
            }
            if (b.term.kind == MTerm::Kind::Jump &&
                b.term.target == head_id) {
                b.term.target = guard.id;
            } else if (b.term.kind == MTerm::Kind::Branch) {
                if (b.term.target == head_id) {
                    b.term.target = guard.id;
                }
                if (b.term.fallthrough == head_id) {
                    b.term.fallthrough = guard.id;
                }
            }
        }
        proc.blocks.insert(
            proc.blocks.begin() + static_cast<std::ptrdiff_t>(head_pos),
            std::move(guard));
        ++rotated;
    }
    return rotated;
}

void
swap_commutative_operands(MProc &proc)
{
    for (MBlock &block : proc.blocks) {
        for (MInst &inst : block.insts) {
            if (inst.kind == MInst::Kind::Bin &&
                mop_is_commutative(inst.op) && inst.b.is_vreg()) {
                std::swap(inst.a, inst.b.reg);
            }
        }
    }
}

void
reorder_blocks(MProc &proc, bool reverse)
{
    if (reverse && proc.blocks.size() > 2) {
        std::reverse(proc.blocks.begin() + 1, proc.blocks.end());
    }
}

int
inline_small_procs(MModule &module, int threshold)
{
    if (threshold <= 0) {
        return 0;
    }
    // Identify inlinable callees: a single block, no calls, ending in Ret.
    std::vector<bool> inlinable(module.procs.size(), false);
    for (std::size_t i = 0; i < module.procs.size(); ++i) {
        const MProc &p = module.procs[i];
        if (p.blocks.size() != 1 ||
            p.blocks[0].term.kind != MTerm::Kind::Ret ||
            p.inst_count() > static_cast<std::size_t>(threshold)) {
            continue;
        }
        bool has_call = false;
        for (const MInst &inst : p.blocks[0].insts) {
            has_call |= inst.kind == MInst::Kind::Call;
        }
        inlinable[i] = !has_call;
    }

    int inlined = 0;
    for (MProc &proc : module.procs) {
        for (MBlock &block : proc.blocks) {
            std::vector<MInst> out;
            for (MInst &inst : block.insts) {
                const bool can_inline =
                    inst.kind == MInst::Kind::Call && inst.callee >= 0 &&
                    static_cast<std::size_t>(inst.callee) <
                        module.procs.size() &&
                    inlinable[static_cast<std::size_t>(inst.callee)] &&
                    module.procs[static_cast<std::size_t>(inst.callee)]
                            .name != proc.name;
                if (!can_inline) {
                    out.push_back(std::move(inst));
                    continue;
                }
                const MProc &callee =
                    module.procs[static_cast<std::size_t>(inst.callee)];
                // Remap callee vregs into the caller's vreg space.
                std::map<VReg, VReg> remap;
                for (int a = 0; a < callee.num_params; ++a) {
                    remap[static_cast<VReg>(a)] =
                        static_cast<std::size_t>(a) < inst.args.size()
                            ? inst.args[static_cast<std::size_t>(a)]
                            : inst.args.empty() ? 0 : inst.args[0];
                }
                auto map_vreg = [&](VReg r) {
                    auto it = remap.find(r);
                    if (it != remap.end()) {
                        return it->second;
                    }
                    const VReg fresh = proc.fresh();
                    remap[r] = fresh;
                    return fresh;
                };
                for (const MInst &ci : callee.blocks[0].insts) {
                    MInst copy = ci;
                    // dst must map to a *fresh* name even when it shadows
                    // a parameter, so map uses first, then define dst.
                    switch (copy.kind) {
                      case MInst::Kind::Copy:
                      case MInst::Kind::Load:
                        copy.a = map_vreg(copy.a);
                        break;
                      case MInst::Kind::Bin:
                      case MInst::Kind::Store:
                        copy.a = map_vreg(copy.a);
                        if (copy.b.is_vreg()) {
                            copy.b = MVal::vreg(map_vreg(copy.b.reg));
                        }
                        break;
                      case MInst::Kind::Call:
                        for (VReg &arg : copy.args) {
                            arg = map_vreg(arg);
                        }
                        break;
                      default:
                        break;
                    }
                    if (copy.has_dst()) {
                        const VReg fresh = proc.fresh();
                        remap[copy.dst] = fresh;
                        copy.dst = fresh;
                    }
                    out.push_back(std::move(copy));
                }
                out.push_back(MInst::copy(
                    inst.dst, map_vreg(callee.blocks[0].term.ret_reg)));
                ++inlined;
            }
            block.insts = std::move(out);
        }
    }
    return inlined;
}

void
optimize_module(MModule &module, const ToolchainProfile &profile)
{
    if (profile.opt_level >= 2) {
        inline_small_procs(module, profile.inline_threshold);
    }
    for (MProc &proc : module.procs) {
        remove_unreachable_blocks(proc);
        if (profile.opt_level >= 1) {
            for (int round = 0; round < 2; ++round) {
                fold_constants(proc, profile.strength_reduce);
                propagate_copies(proc);
                if (profile.use_cse && profile.opt_level >= 2) {
                    eliminate_common_subexpressions(proc);
                    propagate_copies(proc);
                }
                simplify_branches(proc);
                remove_unreachable_blocks(proc);
                eliminate_dead_code(proc);
            }
            merge_blocks(proc);
        }
        if (profile.opt_level >= 2 && profile.rotate_loops) {
            rotate_loops(proc);
        }
        if (profile.swap_commutative) {
            swap_commutative_operands(proc);
        }
        reorder_blocks(proc, profile.reverse_block_layout);
    }
}

}  // namespace firmup::compiler
