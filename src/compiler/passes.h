/**
 * @file
 * MIR optimization passes.
 *
 * The pass list mirrors what the paper attributes to "the full-blown
 * modern optimizer" it borrows from LLVM (section 3.2.1): expression
 * simplification, constant folding and propagation, instruction combining,
 * common subexpression elimination and dead code elimination — plus
 * inlining and layout policies, which are the main sources of structural
 * divergence between toolchains.
 *
 * All passes preserve observable semantics; which ones run, and with which
 * policies, is decided by the ToolchainProfile.
 */
#pragma once

#include "compiler/mir.h"
#include "compiler/toolchain.h"

namespace firmup::compiler {

/** Block-local constant folding + algebraic simplification. */
void fold_constants(MProc &proc, bool strength_reduce);

/** Block-local copy propagation. */
void propagate_copies(MProc &proc);

/** Block-local common subexpression elimination. */
void eliminate_common_subexpressions(MProc &proc);

/** Global liveness-based dead code elimination. */
void eliminate_dead_code(MProc &proc);

/** Rewrite branches whose condition is a block-local constant. */
void simplify_branches(MProc &proc);

/** Drop blocks unreachable from the entry. */
void remove_unreachable_blocks(MProc &proc);

/**
 * Merge straight-line block chains: empty forwarding blocks are bypassed
 * and a block whose only successor has no other predecessor is fused with
 * it. Changes the CFG shape between optimization levels the way real
 * compilers do.
 */
void merge_blocks(MProc &proc);

/**
 * Loop rotation: a while-style loop head is duplicated into a guard
 * block, producing the classic bottom-tested shape. Skipped for heads
 * with side effects (calls/stores in the condition).
 * @return number of loops rotated.
 */
int rotate_loops(MProc &proc);

/** Swap operand order of commutative operations (divergence knob). */
void swap_commutative_operands(MProc &proc);

/** Reorder non-entry blocks (layout divergence knob). */
void reorder_blocks(MProc &proc, bool reverse);

/**
 * Inline small single-block, call-free callees into their call sites.
 * @return number of call sites inlined.
 */
int inline_small_procs(MModule &module, int threshold);

/** Run the profile's configured pipeline over the whole module. */
void optimize_module(MModule &module, const ToolchainProfile &profile);

}  // namespace firmup::compiler
