/**
 * @file
 * MIR — the compiler's mid-level IR (three-address code over virtual
 * registers, CFG of blocks).
 *
 * This is the substrate for the "different compilations of the same source"
 * phenomenon (paper Fig. 1): one MIR module can be optimized at different
 * levels, re-ordered, inlined, and code-generated to four ISAs under
 * different toolchain profiles. It is intentionally separate from µIR
 * (src/ir), which is the *lifted* representation — the compiler and the
 * analyzer must not share data structures, or the reproduction would be
 * circular.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace firmup::compiler {

/** Virtual register id. vregs [0, num_params) hold incoming arguments. */
using VReg = std::uint32_t;

/** MIR binary operators (all 32-bit). */
enum class MOp : std::uint8_t {
    Add, Sub, Mul, DivS, RemS,
    And, Or, Xor, Shl, ShrA, ShrL,
    CmpEQ, CmpNE, CmpLTS, CmpLES, CmpLTU, CmpLEU,
};

/** True for the CmpXX operators. */
bool mop_is_compare(MOp op);
/** True when operand order does not affect the result. */
bool mop_is_commutative(MOp op);
/** Printable mnemonic. */
const char *mop_name(MOp op);

/** Right-hand operand: virtual register or immediate. */
struct MVal
{
    enum class Kind : std::uint8_t { VReg, Imm } kind = Kind::Imm;
    std::uint32_t reg = 0;
    std::int32_t imm = 0;

    static MVal vreg(VReg r) { return {Kind::VReg, r, 0}; }
    static MVal immediate(std::int32_t v) { return {Kind::Imm, 0, v}; }

    bool is_vreg() const { return kind == Kind::VReg; }
    bool is_imm() const { return kind == Kind::Imm; }

    bool operator==(const MVal &) const = default;
};

/** One MIR instruction. */
struct MInst
{
    enum class Kind : std::uint8_t {
        Const,   ///< dst = imm
        Copy,    ///< dst = a
        Bin,     ///< dst = a `op` b
        GAddr,   ///< dst = &global[global_index]
        Load,    ///< dst = mem32[a]
        Store,   ///< mem32[a] = b (b must be a vreg)
        Call,    ///< dst = call callee(args...) ; callee < 0 => removed
    };

    Kind kind;
    VReg dst = 0;
    MOp op = MOp::Add;
    VReg a = 0;
    MVal b;
    std::int32_t imm = 0;     ///< Const payload
    int global_index = -1;    ///< GAddr target
    int callee = -1;          ///< Call target (module procedure index)
    std::vector<VReg> args;

    static MInst make_const(VReg dst, std::int32_t imm);
    static MInst copy(VReg dst, VReg src);
    static MInst bin(VReg dst, MOp op, VReg a, MVal b);
    static MInst gaddr(VReg dst, int global_index);
    static MInst load(VReg dst, VReg addr);
    static MInst store(VReg addr, VReg value);
    static MInst call(VReg dst, int callee, std::vector<VReg> args);

    /** True for kinds that define dst. */
    bool has_dst() const { return kind != Kind::Store; }
    /** True for instructions that must not be dead-code eliminated. */
    bool has_side_effects() const
    {
        return kind == Kind::Store || kind == Kind::Call;
    }
};

/** Block terminator. */
struct MTerm
{
    enum class Kind : std::uint8_t { Jump, Branch, Ret } kind = Kind::Ret;
    VReg cond = 0;       ///< Branch condition (nonzero = taken)
    int target = 0;      ///< Jump target / Branch taken target (block id)
    int fallthrough = 0; ///< Branch not-taken target (block id)
    VReg ret_reg = 0;    ///< Ret value

    static MTerm jump(int target);
    static MTerm branch(VReg cond, int target, int fallthrough);
    static MTerm ret(VReg value);
};

/** A MIR basic block. */
struct MBlock
{
    int id = 0;
    std::vector<MInst> insts;
    MTerm term;
};

/** A MIR procedure. Block 0 is the entry. */
struct MProc
{
    std::string name;
    int num_params = 0;
    bool exported = false;
    VReg next_vreg = 0;   ///< first unused vreg id
    std::vector<MBlock> blocks;

    VReg fresh() { return next_vreg++; }

    /** Block lookup by id; blocks are stored in layout order. */
    MBlock *block_by_id(int id);
    const MBlock *block_by_id(int id) const;

    std::size_t inst_count() const;
};

/** A compiled module: procedures plus global word-array sizes. */
struct MModule
{
    std::string name;
    std::vector<MProc> procs;
    std::vector<int> global_words;  ///< size of each global, in 32-bit words

    int find_proc(const std::string &name) const;
};

/** Render for debugging. */
std::string to_string(const MInst &inst);
std::string to_string(const MProc &proc);

}  // namespace firmup::compiler
