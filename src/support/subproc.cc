#include "support/subproc.h"

#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include "support/str.h"

namespace firmup {

Result<ChildProcess>
spawn_child(const std::string &binary,
            const std::vector<std::string> &args)
{
    int fds[2] = {-1, -1};
    if (::pipe(fds) != 0) {
        return Result<ChildProcess>::error(
            ErrorCode::IoError,
            std::string("pipe: ") + std::strerror(errno));
    }
    // Parent side: non-blocking (the coordinator polls many workers)
    // and close-on-exec (later siblings must not inherit it, or EOF on
    // a dead worker would be masked by the copy they hold).
    ::fcntl(fds[0], F_SETFL, O_NONBLOCK);
    ::fcntl(fds[0], F_SETFD, FD_CLOEXEC);

    const pid_t pid = ::fork();
    if (pid < 0) {
        ::close(fds[0]);
        ::close(fds[1]);
        return Result<ChildProcess>::error(
            ErrorCode::IoError,
            std::string("fork: ") + std::strerror(errno));
    }
    if (pid == 0) {
        // Child: stdout becomes the frame pipe; stderr passes through.
        ::close(fds[0]);
        if (::dup2(fds[1], STDOUT_FILENO) < 0) {
            ::_exit(127);
        }
        ::close(fds[1]);
        std::vector<char *> argv;
        argv.reserve(args.size() + 2);
        argv.push_back(const_cast<char *>(binary.c_str()));
        for (const std::string &arg : args) {
            argv.push_back(const_cast<char *>(arg.c_str()));
        }
        argv.push_back(nullptr);
        ::execv(binary.c_str(), argv.data());
        // exec failed: report on the surviving stderr and die without
        // running any parent-owned atexit handlers.
        const std::string message =
            "execv " + binary + ": " + std::strerror(errno) + "\n";
        (void)!::write(STDERR_FILENO, message.data(), message.size());
        ::_exit(127);
    }
    ::close(fds[1]);
    ChildProcess child;
    child.pid = pid;
    child.out_fd = fds[0];
    return child;
}

int
wait_child(pid_t pid)
{
    if (pid <= 0) {
        return -1;
    }
    int status = 0;
    pid_t reaped;
    do {
        reaped = ::waitpid(pid, &status, 0);
    } while (reaped < 0 && errno == EINTR);
    return reaped == pid ? status : -1;
}

void
kill_child(pid_t pid)
{
    if (pid > 0) {
        ::kill(pid, SIGKILL);
    }
}

bool
exited_cleanly(int status)
{
    return status >= 0 && WIFEXITED(status) && WEXITSTATUS(status) == 0;
}

std::string
describe_status(int status)
{
    if (status < 0) {
        return "wait-error";
    }
    if (WIFEXITED(status)) {
        return strprintf("exit %d", WEXITSTATUS(status));
    }
    if (WIFSIGNALED(status)) {
        return strprintf("signal %d", WTERMSIG(status));
    }
    return strprintf("status %d", status);
}

void
close_fd(int fd)
{
    if (fd >= 0) {
        int rc;
        do {
            rc = ::close(fd);
        } while (rc < 0 && errno == EINTR);
    }
}

bool
write_frame(int fd, std::string_view payload)
{
    const std::uint32_t size = static_cast<std::uint32_t>(payload.size());
    char header[4];
    header[0] = static_cast<char>(size & 0xff);
    header[1] = static_cast<char>((size >> 8) & 0xff);
    header[2] = static_cast<char>((size >> 16) & 0xff);
    header[3] = static_cast<char>((size >> 24) & 0xff);
    // One contiguous buffer per frame: the pipe write is atomic up to
    // PIPE_BUF, and beyond that the loop below keeps the stream whole
    // as long as writers are serialized.
    std::string frame;
    frame.reserve(sizeof(header) + payload.size());
    frame.append(header, sizeof(header));
    frame.append(payload);
    std::size_t written = 0;
    while (written < frame.size()) {
        const ssize_t n =
            ::write(fd, frame.data() + written, frame.size() - written);
        if (n < 0) {
            if (errno == EINTR) {
                continue;
            }
            return false;
        }
        written += static_cast<std::size_t>(n);
    }
    return true;
}

int
FrameReader::feed(int fd)
{
    char chunk[65536];
    bool any = false;
    for (;;) {
        const ssize_t n = ::read(fd, chunk, sizeof(chunk));
        if (n > 0) {
            buffer_.append(chunk, static_cast<std::size_t>(n));
            any = true;
            continue;
        }
        if (n == 0) {
            return -1;  // EOF
        }
        if (errno == EINTR) {
            continue;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
            return any ? 1 : 0;
        }
        return -1;
    }
}

bool
FrameReader::next(std::string *payload)
{
    if (corrupt_ || buffer_.size() - pos_ < 4) {
        return false;
    }
    const unsigned char *p =
        reinterpret_cast<const unsigned char *>(buffer_.data() + pos_);
    const std::uint32_t size =
        static_cast<std::uint32_t>(p[0]) |
        (static_cast<std::uint32_t>(p[1]) << 8) |
        (static_cast<std::uint32_t>(p[2]) << 16) |
        (static_cast<std::uint32_t>(p[3]) << 24);
    if (size > kMaxFrameBytes) {
        corrupt_ = true;
        return false;
    }
    if (buffer_.size() - pos_ < 4 + static_cast<std::size_t>(size)) {
        return false;
    }
    payload->assign(buffer_, pos_ + 4, size);
    pos_ += 4 + static_cast<std::size_t>(size);
    // Compact once the consumed prefix dominates, so a long stream does
    // not grow the buffer without bound.
    if (pos_ > (1u << 20) && pos_ > buffer_.size() / 2) {
        buffer_.erase(0, pos_);
        pos_ = 0;
    }
    return true;
}

}  // namespace firmup
