#include "support/cancel.h"

#include <csignal>
#include <cstdlib>

namespace firmup {

CancelToken &
CancelToken::process()
{
    static CancelToken token;
    return token;
}

namespace {

// Signals delivered so far; lock-free so the handler stays
// async-signal-safe. The second delivery bypasses the graceful drain.
std::atomic<int> g_signals_seen{0};

extern "C" void
cancel_signal_handler(int /*signum*/)
{
    if (g_signals_seen.fetch_add(1, std::memory_order_relaxed) > 0) {
        std::_Exit(130);
    }
    CancelToken::process().request();
}

}  // namespace

void
install_cancel_signal_handlers()
{
    std::signal(SIGINT, cancel_signal_handler);
    std::signal(SIGTERM, cancel_signal_handler);
}

}  // namespace firmup
