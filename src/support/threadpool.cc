#include "support/threadpool.h"

#include <algorithm>
#include <utility>

namespace firmup {

ThreadPool::ThreadPool(unsigned num_threads)
{
    const unsigned n = std::max(1u, num_threads);
    threads_.reserve(n);
    for (unsigned i = 0; i < n; ++i) {
        threads_.emplace_back([this] { worker(); });
    }
}

ThreadPool::~ThreadPool()
{
    {
        std::unique_lock<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    work_available_.notify_all();
    for (std::thread &t : threads_) {
        t.join();
    }
}

void
ThreadPool::submit(std::function<void()> task)
{
    {
        std::unique_lock<std::mutex> lock(mutex_);
        queue_.push(std::move(task));
    }
    work_available_.notify_one();
}

void
ThreadPool::wait_idle()
{
    std::exception_ptr error;
    {
        std::unique_lock<std::mutex> lock(mutex_);
        idle_.wait(lock,
                   [this] { return queue_.empty() && in_flight_ == 0; });
        error = std::exchange(first_error_, nullptr);
    }
    if (error) {
        std::rethrow_exception(error);
    }
}

void
ThreadPool::worker()
{
    while (true) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            work_available_.wait(
                lock, [this] { return stopping_ || !queue_.empty(); });
            if (queue_.empty()) {
                return;  // stopping and drained
            }
            task = std::move(queue_.front());
            queue_.pop();
            ++in_flight_;
        }
        try {
            task();
        } catch (...) {
            cancelled_.store(true);
            std::unique_lock<std::mutex> lock(mutex_);
            if (!first_error_) {
                first_error_ = std::current_exception();
            }
        }
        {
            std::unique_lock<std::mutex> lock(mutex_);
            --in_flight_;
            if (queue_.empty() && in_flight_ == 0) {
                idle_.notify_all();
            }
        }
    }
}

void
ThreadPool::parallel_for(unsigned num_threads, std::size_t count,
                         const std::function<void(std::size_t)> &fn)
{
    if (count == 0) {
        return;
    }
    ThreadPool pool(num_threads);
    std::atomic<std::size_t> next{0};
    for (std::size_t t = 0; t < std::max<std::size_t>(1, num_threads);
         ++t) {
        pool.submit([&pool, &next, count, &fn] {
            // After a sibling throws, abandon the remaining indices so
            // the caller sees the failure promptly instead of paying for
            // the rest of the sweep.
            while (!pool.cancelled()) {
                const std::size_t i = next.fetch_add(1);
                if (i >= count) {
                    return;
                }
                fn(i);
            }
        });
    }
    pool.wait_idle();
}

}  // namespace firmup
