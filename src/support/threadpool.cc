#include "support/threadpool.h"

#include <algorithm>
#include <deque>
#include <utility>

#include "support/trace.h"

namespace firmup {

namespace {

const trace::Counter c_tasks_queued("threadpool.tasks_queued");
const trace::Counter c_tasks_run("threadpool.tasks_run");
const trace::Counter c_pools("threadpool.pools_created");
const trace::Histogram h_idle_ns("threadpool.worker_idle_ns");

const trace::Counter c_ws_runs("worksteal.runs");
const trace::Counter c_ws_chunks("worksteal.chunks_dealt");
const trace::Counter c_ws_steals("worksteal.steals");

}  // namespace

ThreadPool::ThreadPool(unsigned num_threads)
{
    c_pools.add();
    const unsigned n = std::max(1u, num_threads);
    threads_.reserve(n);
    for (unsigned i = 0; i < n; ++i) {
        threads_.emplace_back([this] { worker(); });
    }
}

ThreadPool::~ThreadPool()
{
    {
        std::unique_lock<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    work_available_.notify_all();
    for (std::thread &t : threads_) {
        t.join();
    }
}

void
ThreadPool::submit(std::function<void()> task)
{
    c_tasks_queued.add();
    {
        std::unique_lock<std::mutex> lock(mutex_);
        queue_.push(std::move(task));
    }
    work_available_.notify_one();
}

void
ThreadPool::wait_idle()
{
    std::exception_ptr error;
    {
        std::unique_lock<std::mutex> lock(mutex_);
        idle_.wait(lock,
                   [this] { return queue_.empty() && in_flight_ == 0; });
        error = std::exchange(first_error_, nullptr);
    }
    if (error) {
        std::rethrow_exception(error);
    }
}

void
ThreadPool::worker()
{
    while (true) {
        std::function<void()> task;
        // Idle accounting: wall time from "ready for work" to "got a
        // task" (or shutdown), observed per wait when metrics are on.
        const bool metered = trace::level() != trace::Level::Off;
        const std::uint64_t idle_start = metered ? trace::wall_ns() : 0;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            work_available_.wait(
                lock, [this] { return stopping_ || !queue_.empty(); });
            if (metered) {
                h_idle_ns.observe(trace::wall_ns() - idle_start);
            }
            if (queue_.empty()) {
                return;  // stopping and drained
            }
            task = std::move(queue_.front());
            queue_.pop();
            ++in_flight_;
        }
        try {
            task();
            c_tasks_run.add();
        } catch (...) {
            cancelled_.store(true);
            std::unique_lock<std::mutex> lock(mutex_);
            if (!first_error_) {
                first_error_ = std::current_exception();
            }
        }
        {
            std::unique_lock<std::mutex> lock(mutex_);
            --in_flight_;
            if (queue_.empty() && in_flight_ == 0) {
                idle_.notify_all();
            }
        }
    }
}

void
ThreadPool::parallel_for(unsigned num_threads, std::size_t count,
                         const std::function<void(std::size_t)> &fn)
{
    if (count == 0) {
        return;
    }
    ThreadPool pool(num_threads);
    std::atomic<std::size_t> next{0};
    for (std::size_t t = 0; t < std::max<std::size_t>(1, num_threads);
         ++t) {
        pool.submit([&pool, &next, count, &fn] {
            // After a sibling throws, abandon the remaining indices so
            // the caller sees the failure promptly instead of paying for
            // the rest of the sweep.
            while (!pool.cancelled()) {
                const std::size_t i = next.fetch_add(1);
                if (i >= count) {
                    return;
                }
                fn(i);
            }
        });
    }
    pool.wait_idle();
}

std::size_t
WorkStealingScheduler::chunk_for(std::size_t count, unsigned threads)
{
    const std::size_t n = std::max(1u, threads);
    return std::clamp<std::size_t>(count / (n * 8), 1, 64);
}

void
WorkStealingScheduler::run(unsigned threads, std::size_t count,
                           const std::function<void(std::size_t)> &fn)
{
    if (count == 0) {
        return;
    }
    const unsigned n =
        static_cast<unsigned>(std::min<std::size_t>(
            std::max(1u, threads), count));
    if (n == 1) {
        // Exact serial semantics, no thread machinery: this is the path
        // the 1-worker determinism runs compare everything against.
        for (std::size_t i = 0; i < count; ++i) {
            fn(i);
        }
        return;
    }
    c_ws_runs.add();

    struct Range
    {
        std::size_t begin = 0;
        std::size_t end = 0;
    };
    struct WorkerDeque
    {
        std::mutex mutex;
        std::deque<Range> ranges;
    };
    // Constructed in place and never reallocated (mutex is immovable).
    std::vector<WorkerDeque> deques(n);

    // Deal contiguous chunks round-robin. Contiguity is load-bearing for
    // callers that order items target-major; round-robin spreads the
    // initial ranges so stealing is the exception, not the steady state.
    const std::size_t chunk = chunk_for(count, n);
    std::size_t begin = 0;
    unsigned next_worker = 0;
    std::size_t dealt = 0;
    while (begin < count) {
        const std::size_t end = std::min(begin + chunk, count);
        deques[next_worker].ranges.push_back({begin, end});
        begin = end;
        next_worker = (next_worker + 1) % n;
        ++dealt;
    }
    c_ws_chunks.add(dealt);

    std::atomic<bool> cancelled{false};
    std::mutex error_mutex;
    std::exception_ptr first_error;

    auto worker = [&](unsigned self) {
        try {
            while (!cancelled.load(std::memory_order_relaxed)) {
                Range range;
                bool got = false;
                {
                    std::lock_guard<std::mutex> lock(deques[self].mutex);
                    if (!deques[self].ranges.empty()) {
                        range = deques[self].ranges.back();
                        deques[self].ranges.pop_back();
                        got = true;
                    }
                }
                for (unsigned step = 1; !got && step < n; ++step) {
                    WorkerDeque &victim = deques[(self + step) % n];
                    std::lock_guard<std::mutex> lock(victim.mutex);
                    if (!victim.ranges.empty()) {
                        range = victim.ranges.front();
                        victim.ranges.pop_front();
                        got = true;
                        c_ws_steals.add();
                    }
                }
                if (!got) {
                    return;  // every deque drained; in-flight chunks
                             // spawn no new work, so this is final
                }
                for (std::size_t i = range.begin; i < range.end; ++i) {
                    if (cancelled.load(std::memory_order_relaxed)) {
                        return;
                    }
                    fn(i);
                }
            }
        } catch (...) {
            cancelled.store(true);
            std::lock_guard<std::mutex> lock(error_mutex);
            if (!first_error) {
                first_error = std::current_exception();
            }
        }
    };

    std::vector<std::thread> workers;
    workers.reserve(n - 1);
    for (unsigned i = 1; i < n; ++i) {
        workers.emplace_back(worker, i);
    }
    worker(0);  // the calling thread is worker 0
    for (std::thread &t : workers) {
        t.join();
    }
    if (first_error) {
        std::rethrow_exception(first_error);
    }
}

}  // namespace firmup
