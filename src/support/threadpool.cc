#include "support/threadpool.h"

#include <algorithm>
#include <utility>

#include "support/trace.h"

namespace firmup {

namespace {

const trace::Counter c_tasks_queued("threadpool.tasks_queued");
const trace::Counter c_tasks_run("threadpool.tasks_run");
const trace::Counter c_pools("threadpool.pools_created");
const trace::Histogram h_idle_ns("threadpool.worker_idle_ns");

}  // namespace

ThreadPool::ThreadPool(unsigned num_threads)
{
    c_pools.add();
    const unsigned n = std::max(1u, num_threads);
    threads_.reserve(n);
    for (unsigned i = 0; i < n; ++i) {
        threads_.emplace_back([this] { worker(); });
    }
}

ThreadPool::~ThreadPool()
{
    {
        std::unique_lock<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    work_available_.notify_all();
    for (std::thread &t : threads_) {
        t.join();
    }
}

void
ThreadPool::submit(std::function<void()> task)
{
    c_tasks_queued.add();
    {
        std::unique_lock<std::mutex> lock(mutex_);
        queue_.push(std::move(task));
    }
    work_available_.notify_one();
}

void
ThreadPool::wait_idle()
{
    std::exception_ptr error;
    {
        std::unique_lock<std::mutex> lock(mutex_);
        idle_.wait(lock,
                   [this] { return queue_.empty() && in_flight_ == 0; });
        error = std::exchange(first_error_, nullptr);
    }
    if (error) {
        std::rethrow_exception(error);
    }
}

void
ThreadPool::worker()
{
    while (true) {
        std::function<void()> task;
        // Idle accounting: wall time from "ready for work" to "got a
        // task" (or shutdown), observed per wait when metrics are on.
        const bool metered = trace::level() != trace::Level::Off;
        const std::uint64_t idle_start = metered ? trace::wall_ns() : 0;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            work_available_.wait(
                lock, [this] { return stopping_ || !queue_.empty(); });
            if (metered) {
                h_idle_ns.observe(trace::wall_ns() - idle_start);
            }
            if (queue_.empty()) {
                return;  // stopping and drained
            }
            task = std::move(queue_.front());
            queue_.pop();
            ++in_flight_;
        }
        try {
            task();
            c_tasks_run.add();
        } catch (...) {
            cancelled_.store(true);
            std::unique_lock<std::mutex> lock(mutex_);
            if (!first_error_) {
                first_error_ = std::current_exception();
            }
        }
        {
            std::unique_lock<std::mutex> lock(mutex_);
            --in_flight_;
            if (queue_.empty() && in_flight_ == 0) {
                idle_.notify_all();
            }
        }
    }
}

void
ThreadPool::parallel_for(unsigned num_threads, std::size_t count,
                         const std::function<void(std::size_t)> &fn)
{
    if (count == 0) {
        return;
    }
    ThreadPool pool(num_threads);
    std::atomic<std::size_t> next{0};
    for (std::size_t t = 0; t < std::max<std::size_t>(1, num_threads);
         ++t) {
        pool.submit([&pool, &next, count, &fn] {
            // After a sibling throws, abandon the remaining indices so
            // the caller sees the failure promptly instead of paying for
            // the rest of the sweep.
            while (!pool.cancelled()) {
                const std::size_t i = next.fetch_add(1);
                if (i >= count) {
                    return;
                }
                fn(i);
            }
        });
    }
    pool.wait_idle();
}

}  // namespace firmup
