#include "support/error.h"

namespace firmup {

void
assert_fail(const char *expr, const char *file, int line,
            const std::string &message)
{
    std::fprintf(stderr, "firmup: assertion `%s` failed at %s:%d: %s\n",
                 expr, file, line, message.c_str());
    std::abort();
}

}  // namespace firmup
