#include "support/error.h"

namespace firmup {

const char *
error_code_name(ErrorCode code)
{
    switch (code) {
      case ErrorCode::Unknown:
        return "unknown";
      case ErrorCode::MalformedContainer:
        return "malformed-container";
      case ErrorCode::TruncatedMember:
        return "truncated-member";
      case ErrorCode::UndecodableInsn:
        return "undecodable-insn";
      case ErrorCode::LiftBailout:
        return "lift-bailout";
      case ErrorCode::BudgetExhausted:
        return "budget-exhausted";
      case ErrorCode::MissingProcedure:
        return "missing-procedure";
      case ErrorCode::IoError:
        return "io-error";
      case ErrorCode::StaleFormat:
        return "stale-format";
    }
    return "invalid";
}

bool
error_code_transient(ErrorCode code)
{
    switch (code) {
      case ErrorCode::IoError:
      case ErrorCode::BudgetExhausted:
        return true;
      case ErrorCode::Unknown:
      case ErrorCode::MalformedContainer:
      case ErrorCode::TruncatedMember:
      case ErrorCode::UndecodableInsn:
      case ErrorCode::LiftBailout:
      case ErrorCode::MissingProcedure:
      case ErrorCode::StaleFormat:
        return false;
    }
    return false;
}

void
assert_fail(const char *expr, const char *file, int line,
            const std::string &message)
{
    std::fprintf(stderr, "firmup: assertion `%s` failed at %s:%d: %s\n",
                 expr, file, line, message.c_str());
    std::abort();
}

}  // namespace firmup
