/**
 * @file
 * Cooperative cancellation for long-running corpus scans.
 *
 * A corpus scan is hours of work at paper scale (section 5.1); an
 * operator must be able to stop one without losing the targets already
 * scanned. CancelToken is the primitive: a single atomic flag that
 * workers poll at cheap, well-defined points (between pipeline stages,
 * before each target, and at the game's existing deadline sample every
 * 64 iterations) and that a SIGINT/SIGTERM handler can set
 * async-signal-safely. Cancellation is always *cooperative*: nothing is
 * killed mid-write, in-flight work drains to a consistent state, the
 * scan journal is flushed, and the partial health report is rendered
 * with a `cancelled` marker.
 */
#pragma once

#include <atomic>

namespace firmup {

/** A sticky, thread-safe (and signal-safe) cancellation flag. */
class CancelToken
{
  public:
    /** Request cancellation. Safe from any thread or signal handler. */
    void
    request()
    {
        requested_.store(true, std::memory_order_relaxed);
    }

    /** True once cancellation has been requested (relaxed load). */
    bool
    requested() const
    {
        return requested_.load(std::memory_order_relaxed);
    }

    /** Clear the flag (test setup / between CLI commands). */
    void
    reset()
    {
        requested_.store(false, std::memory_order_relaxed);
    }

    /**
     * The process-wide token the signal handlers set. Long-lived CLI
     * commands point SearchOptions::cancel at this.
     */
    static CancelToken &process();

  private:
    std::atomic<bool> requested_{false};
};

/**
 * Install SIGINT/SIGTERM handlers that request cancellation on
 * CancelToken::process(). The first signal starts a graceful drain; a
 * second signal hard-exits with status 130 (the impatient-operator
 * escape hatch). Idempotent.
 */
void install_cancel_signal_handlers();

}  // namespace firmup
