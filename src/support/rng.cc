#include "support/rng.h"

#include <cassert>

#include "support/hash.h"

namespace firmup {

namespace {

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed)
{
    // splitmix64 expansion; guarantees a non-zero state for xoshiro.
    std::uint64_t x = seed;
    for (auto &lane : s_) {
        x += 0x9e3779b97f4a7c15ull;
        lane = mix64(x);
    }
}

Rng
Rng::from_label(std::string_view label)
{
    return Rng(fnv1a64(label));
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

std::int64_t
Rng::range(std::int64_t lo, std::int64_t hi)
{
    assert(lo <= hi);
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    if (span == 0) {  // full 64-bit range
        return static_cast<std::int64_t>(next());
    }
    return lo + static_cast<std::int64_t>(next() % span);
}

std::size_t
Rng::index(std::size_t n)
{
    assert(n > 0);
    return static_cast<std::size_t>(next() % n);
}

bool
Rng::chance(std::uint32_t num, std::uint32_t den)
{
    assert(den > 0);
    return next() % den < num;
}

Rng
Rng::fork(std::string_view label)
{
    return Rng(hash_combine(next(), fnv1a64(label)));
}

}  // namespace firmup
