#include "support/trace.h"

#include <bit>
#include <chrono>
#include <ctime>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "support/error.h"
#include "support/str.h"

namespace firmup::trace {

namespace {

// Fixed per-kind capacities: shards are flat atomic arrays, so metric
// ids must be dense and bounded. The namespace is hand-curated; these
// are far above what the pipeline registers.
constexpr int kMaxCounters = 128;
constexpr int kMaxGauges = 32;
constexpr int kMaxHistograms = 32;
constexpr std::size_t kDefaultRingCapacity = 16384;

std::uint64_t
clock_ns(clockid_t clock)
{
    timespec ts{};
    clock_gettime(clock, &ts);
    return static_cast<std::uint64_t>(ts.tv_sec) * 1000000000ull +
           static_cast<std::uint64_t>(ts.tv_nsec);
}

/** One histogram in one shard; single writer, racy-read on snapshot. */
struct HistCell
{
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sum{0};
    std::atomic<std::uint64_t> max{0};
    std::array<std::atomic<std::uint64_t>, 64> buckets{};
};

std::atomic<std::uint64_t> g_next_registry_uid{1};

}  // namespace

void
set_level(Level level)
{
    detail::g_level.store(static_cast<int>(level),
                          std::memory_order_relaxed);
}

std::uint64_t
wall_ns()
{
    static const std::uint64_t epoch = clock_ns(CLOCK_MONOTONIC);
    return clock_ns(CLOCK_MONOTONIC) - epoch;
}

std::uint64_t
thread_cpu_ns()
{
    return clock_ns(CLOCK_THREAD_CPUTIME_ID);
}

std::uint64_t
process_cpu_ns()
{
    return clock_ns(CLOCK_PROCESS_CPUTIME_ID);
}

std::uint64_t
Snapshot::counter(const std::string &name) const
{
    const auto it = counters.find(name);
    return it != counters.end() ? it->second : 0;
}

/** Per-(registry, thread) storage; owned by the registry. */
struct Shard
{
    std::array<std::atomic<std::uint64_t>, kMaxCounters> counters{};
    std::array<HistCell, kMaxHistograms> hists{};

    // The event ring is not on the metrics hot path; a per-shard mutex
    // (contended only by snapshot/export) keeps wrap-around simple.
    std::mutex ring_mutex;
    std::vector<TraceEvent> ring;
    std::size_t ring_capacity = kDefaultRingCapacity;
    std::size_t ring_next = 0;       ///< next overwrite slot when full
    std::uint64_t ring_recorded = 0; ///< events ever recorded
    std::uint64_t ring_dropped = 0;  ///< overwritten (ring was full)
    int tid = 0;
};

struct MetricsRegistry::Impl
{
    std::uint64_t uid = g_next_registry_uid.fetch_add(1);
    std::mutex mutex;  ///< guards names, shard list, ring capacity
    std::vector<std::string> counter_names;
    std::vector<std::string> gauge_names;
    std::vector<std::string> hist_names;
    std::unordered_map<std::string, int> counter_ids;
    std::unordered_map<std::string, int> gauge_ids;
    std::unordered_map<std::string, int> hist_ids;
    std::array<std::atomic<std::int64_t>, kMaxGauges> gauges{};
    std::vector<std::unique_ptr<Shard>> shards;
    std::size_t ring_capacity = kDefaultRingCapacity;
};

namespace {

/**
 * Thread-local shard lookup: one entry per registry this thread has
 * touched (normally exactly one — the global registry). The uid guards
 * against a test registry being destroyed and another allocated at the
 * same address.
 */
struct TlEntry
{
    std::uint64_t uid = 0;
    MetricsRegistry::Impl *impl = nullptr;
    Shard *shard = nullptr;
};

thread_local std::vector<TlEntry> tl_shards;

Shard &
local_shard(MetricsRegistry::Impl &impl)
{
    for (const TlEntry &entry : tl_shards) {
        if (entry.impl == &impl && entry.uid == impl.uid) {
            return *entry.shard;
        }
    }
    std::unique_lock<std::mutex> lock(impl.mutex);
    auto shard = std::make_unique<Shard>();
    shard->tid = static_cast<int>(impl.shards.size());
    shard->ring_capacity = impl.ring_capacity;
    Shard *raw = shard.get();
    impl.shards.push_back(std::move(shard));
    lock.unlock();
    tl_shards.push_back({impl.uid, &impl, raw});
    return *raw;
}

}  // namespace

MetricsRegistry::MetricsRegistry() : impl_(new Impl) {}

MetricsRegistry::~MetricsRegistry()
{
    delete impl_;
}

MetricsRegistry &
MetricsRegistry::global()
{
    // Leaked: per-thread shard caches and static Counter handles must
    // never observe a destroyed registry, whatever the exit order.
    static MetricsRegistry *registry = new MetricsRegistry;
    return *registry;
}

namespace {

int
register_in(std::unordered_map<std::string, int> &ids,
            std::vector<std::string> &names, const std::string &name,
            int capacity, const char *kind)
{
    const auto it = ids.find(name);
    if (it != ids.end()) {
        return it->second;
    }
    FIRMUP_ASSERT(static_cast<int>(names.size()) < capacity,
                  std::string("trace: too many ") + kind + " metrics");
    const int id = static_cast<int>(names.size());
    names.push_back(name);
    ids.emplace(name, id);
    return id;
}

}  // namespace

int
MetricsRegistry::register_counter(const std::string &name)
{
    std::unique_lock<std::mutex> lock(impl_->mutex);
    return register_in(impl_->counter_ids, impl_->counter_names, name,
                       kMaxCounters, "counter");
}

int
MetricsRegistry::register_gauge(const std::string &name)
{
    std::unique_lock<std::mutex> lock(impl_->mutex);
    return register_in(impl_->gauge_ids, impl_->gauge_names, name,
                       kMaxGauges, "gauge");
}

int
MetricsRegistry::register_histogram(const std::string &name)
{
    std::unique_lock<std::mutex> lock(impl_->mutex);
    return register_in(impl_->hist_ids, impl_->hist_names, name,
                       kMaxHistograms, "histogram");
}

void
MetricsRegistry::counter_add(int id, std::uint64_t delta)
{
    local_shard(*impl_).counters[static_cast<std::size_t>(id)].fetch_add(
        delta, std::memory_order_relaxed);
}

void
MetricsRegistry::gauge_set(int id, std::int64_t value)
{
    impl_->gauges[static_cast<std::size_t>(id)].store(
        value, std::memory_order_relaxed);
}

void
MetricsRegistry::histogram_observe(int id, std::uint64_t value)
{
    HistCell &cell =
        local_shard(*impl_).hists[static_cast<std::size_t>(id)];
    // Single writer per shard: plain relaxed read-modify-write is safe.
    cell.count.fetch_add(1, std::memory_order_relaxed);
    cell.sum.fetch_add(value, std::memory_order_relaxed);
    if (value > cell.max.load(std::memory_order_relaxed)) {
        cell.max.store(value, std::memory_order_relaxed);
    }
    const std::size_t bucket = std::min<std::size_t>(
        static_cast<std::size_t>(std::bit_width(value)), 63);
    cell.buckets[bucket].fetch_add(1, std::memory_order_relaxed);
}

void
MetricsRegistry::record_event(TraceEvent event)
{
    Shard &shard = local_shard(*impl_);
    event.tid = shard.tid;
    std::unique_lock<std::mutex> lock(shard.ring_mutex);
    ++shard.ring_recorded;
    if (shard.ring.size() < shard.ring_capacity) {
        shard.ring.push_back(std::move(event));
        return;
    }
    if (shard.ring.empty()) {
        ++shard.ring_dropped;  // capacity 0: record nothing
        return;
    }
    shard.ring[shard.ring_next] = std::move(event);
    shard.ring_next = (shard.ring_next + 1) % shard.ring.size();
    ++shard.ring_dropped;
}

int
MetricsRegistry::thread_id()
{
    return local_shard(*impl_).tid;
}

Snapshot
MetricsRegistry::snapshot() const
{
    Snapshot snap;
    std::unique_lock<std::mutex> lock(impl_->mutex);
    for (std::size_t c = 0; c < impl_->counter_names.size(); ++c) {
        std::uint64_t total = 0;
        for (const auto &shard : impl_->shards) {
            total += shard->counters[c].load(std::memory_order_relaxed);
        }
        snap.counters.emplace(impl_->counter_names[c], total);
    }
    for (std::size_t g = 0; g < impl_->gauge_names.size(); ++g) {
        snap.gauges.emplace(
            impl_->gauge_names[g],
            impl_->gauges[g].load(std::memory_order_relaxed));
    }
    for (std::size_t h = 0; h < impl_->hist_names.size(); ++h) {
        HistogramSnapshot merged;
        for (const auto &shard : impl_->shards) {
            const HistCell &cell = shard->hists[h];
            merged.count += cell.count.load(std::memory_order_relaxed);
            merged.sum += cell.sum.load(std::memory_order_relaxed);
            merged.max = std::max(
                merged.max, cell.max.load(std::memory_order_relaxed));
            for (std::size_t b = 0; b < merged.buckets.size(); ++b) {
                merged.buckets[b] +=
                    cell.buckets[b].load(std::memory_order_relaxed);
            }
        }
        snap.histograms.emplace(impl_->hist_names[h], merged);
    }
    for (const auto &shard : impl_->shards) {
        std::unique_lock<std::mutex> ring_lock(shard->ring_mutex);
        snap.events_recorded += shard->ring_recorded;
        snap.events_dropped += shard->ring_dropped;
    }
    return snap;
}

std::vector<TraceEvent>
MetricsRegistry::events() const
{
    std::vector<TraceEvent> out;
    std::unique_lock<std::mutex> lock(impl_->mutex);
    for (const auto &shard : impl_->shards) {
        std::unique_lock<std::mutex> ring_lock(shard->ring_mutex);
        if (shard->ring.size() < shard->ring_capacity) {
            out.insert(out.end(), shard->ring.begin(),
                       shard->ring.end());
            continue;
        }
        // Full ring: oldest event sits at the next overwrite slot.
        out.insert(out.end(),
                   shard->ring.begin() +
                       static_cast<std::ptrdiff_t>(shard->ring_next),
                   shard->ring.end());
        out.insert(out.end(), shard->ring.begin(),
                   shard->ring.begin() +
                       static_cast<std::ptrdiff_t>(shard->ring_next));
    }
    return out;
}

void
MetricsRegistry::reset()
{
    std::unique_lock<std::mutex> lock(impl_->mutex);
    for (auto &gauge : impl_->gauges) {
        gauge.store(0, std::memory_order_relaxed);
    }
    for (const auto &shard : impl_->shards) {
        for (auto &counter : shard->counters) {
            counter.store(0, std::memory_order_relaxed);
        }
        for (auto &cell : shard->hists) {
            cell.count.store(0, std::memory_order_relaxed);
            cell.sum.store(0, std::memory_order_relaxed);
            cell.max.store(0, std::memory_order_relaxed);
            for (auto &bucket : cell.buckets) {
                bucket.store(0, std::memory_order_relaxed);
            }
        }
        std::unique_lock<std::mutex> ring_lock(shard->ring_mutex);
        shard->ring.clear();
        shard->ring_next = 0;
        shard->ring_recorded = 0;
        shard->ring_dropped = 0;
    }
}

void
MetricsRegistry::set_ring_capacity(std::size_t events_per_thread)
{
    std::unique_lock<std::mutex> lock(impl_->mutex);
    impl_->ring_capacity = events_per_thread;
}

namespace {

void
append_json_escaped(std::string &out, std::string_view s)
{
    for (const char ch : s) {
        switch (ch) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(ch) < 0x20) {
                out += strprintf(
                    "\\u%04x", static_cast<unsigned>(
                                   static_cast<unsigned char>(ch)));
            } else {
                out += ch;
            }
        }
    }
}

}  // namespace

std::string
chrome_trace_json(const std::vector<TraceEvent> &events)
{
    std::string out = "{\"traceEvents\":[";
    bool first = true;
    for (const TraceEvent &event : events) {
        if (!first) {
            out += ",";
        }
        first = false;
        out += "\n{\"name\":\"";
        append_json_escaped(out, event.name);
        out += strprintf(
            "\",\"cat\":\"firmup\",\"ph\":\"X\",\"ts\":%.3f,"
            "\"dur\":%.3f,\"pid\":1,\"tid\":%d,\"args\":{",
            static_cast<double>(event.start_ns) / 1000.0,
            static_cast<double>(event.dur_ns) / 1000.0, event.tid);
        if (!event.tag.empty()) {
            out += "\"tag\":\"";
            append_json_escaped(out, event.tag);
            out += "\",";
        }
        out += strprintf("\"cpu_us\":%.3f}}",
                         static_cast<double>(event.cpu_ns) / 1000.0);
    }
    out += "\n],\"displayTimeUnit\":\"ms\"}\n";
    return out;
}

std::string
chrome_trace_json()
{
    return chrome_trace_json(MetricsRegistry::global().events());
}

std::string
stats_json(const Snapshot &snapshot)
{
    std::string out = "{\n  \"counters\": {";
    bool first = true;
    for (const auto &[name, value] : snapshot.counters) {
        out += first ? "\n" : ",\n";
        first = false;
        out += "    \"";
        append_json_escaped(out, name);
        out += strprintf("\": %llu",
                         static_cast<unsigned long long>(value));
    }
    out += "\n  },\n  \"gauges\": {";
    first = true;
    for (const auto &[name, value] : snapshot.gauges) {
        out += first ? "\n" : ",\n";
        first = false;
        out += "    \"";
        append_json_escaped(out, name);
        out += strprintf("\": %lld", static_cast<long long>(value));
    }
    out += "\n  },\n  \"histograms\": {";
    first = true;
    for (const auto &[name, hist] : snapshot.histograms) {
        out += first ? "\n" : ",\n";
        first = false;
        out += "    \"";
        append_json_escaped(out, name);
        const double avg =
            hist.count == 0 ? 0.0
                            : static_cast<double>(hist.sum) /
                                  static_cast<double>(hist.count);
        out += strprintf(
            "\": {\"count\": %llu, \"sum\": %llu, \"avg\": %.3f, "
            "\"max\": %llu}",
            static_cast<unsigned long long>(hist.count),
            static_cast<unsigned long long>(hist.sum), avg,
            static_cast<unsigned long long>(hist.max));
    }
    out += strprintf(
        "\n  },\n  \"events\": {\"recorded\": %llu, \"dropped\": "
        "%llu}\n}\n",
        static_cast<unsigned long long>(snapshot.events_recorded),
        static_cast<unsigned long long>(snapshot.events_dropped));
    return out;
}

std::string
stats_json()
{
    return stats_json(MetricsRegistry::global().snapshot());
}

}  // namespace firmup::trace
