/**
 * @file
 * Hashing primitives used throughout FirmUp.
 *
 * Canonical strands are compared as 64-bit hashes of their printed form
 * (paper section 3.3: "we keep the procedure representation as a set of
 * hashed strands"). All hashing is deterministic across runs and platforms
 * so corpus indexes can be persisted and experiments are reproducible.
 */
#pragma once

#include <cstdint>
#include <string_view>

namespace firmup {

/** FNV-1a 64-bit offset basis: the hash state of the empty string. */
inline constexpr std::uint64_t kFnv1a64Seed = 0xcbf29ce484222325ull;
/** FNV-1a 64-bit prime. */
inline constexpr std::uint64_t kFnv1a64Prime = 0x100000001b3ull;

/**
 * Fold @p bytes into a running FNV-1a state — the streaming form of
 * fnv1a64(). Start from kFnv1a64Seed; feeding the same bytes in any
 * chunking yields the same digest as one fnv1a64() call.
 */
inline std::uint64_t
fnv1a64_update(std::uint64_t state, std::string_view bytes)
{
    for (unsigned char c : bytes) {
        state ^= c;
        state *= kFnv1a64Prime;
    }
    return state;
}

/** Fold a single byte into a running FNV-1a state. */
inline std::uint64_t
fnv1a64_update(std::uint64_t state, char byte)
{
    return (state ^ static_cast<unsigned char>(byte)) * kFnv1a64Prime;
}

/** FNV-1a 64-bit hash of a byte string. Deterministic and seedless. */
std::uint64_t fnv1a64(std::string_view bytes);

/**
 * Fast 64-bit digest for large buffers (content keys): four
 * independent FNV-style lanes consuming 8 bytes per step, folded
 * through the splitmix64 mixer. Byte-serial fnv1a64 caps near one
 * byte per cycle, which made content keying the bottleneck of
 * fully-resident warm scans; the lanes trade fnv1a64's chunkable
 * streaming form for instruction-level parallelism. Deterministic
 * across runs on a given host; lane words are read in native byte
 * order, so digests are only stable across hosts of one endianness —
 * fine for content keys, which name entries in host-local caches.
 */
std::uint64_t content_hash64(std::string_view bytes);

/** Strong 64-bit finalizer (splitmix64 mixer) for integer keys. */
std::uint64_t mix64(std::uint64_t x);

/**
 * Combine two 64-bit hashes order-dependently.
 * Used to fold structured values (op, operands...) into one digest.
 */
std::uint64_t hash_combine(std::uint64_t seed, std::uint64_t value);

}  // namespace firmup
