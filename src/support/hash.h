/**
 * @file
 * Hashing primitives used throughout FirmUp.
 *
 * Canonical strands are compared as 64-bit hashes of their printed form
 * (paper section 3.3: "we keep the procedure representation as a set of
 * hashed strands"). All hashing is deterministic across runs and platforms
 * so corpus indexes can be persisted and experiments are reproducible.
 */
#pragma once

#include <cstdint>
#include <string_view>

namespace firmup {

/** FNV-1a 64-bit hash of a byte string. Deterministic and seedless. */
std::uint64_t fnv1a64(std::string_view bytes);

/** Strong 64-bit finalizer (splitmix64 mixer) for integer keys. */
std::uint64_t mix64(std::uint64_t x);

/**
 * Combine two 64-bit hashes order-dependently.
 * Used to fold structured values (op, operands...) into one digest.
 */
std::uint64_t hash_combine(std::uint64_t seed, std::uint64_t value);

}  // namespace firmup
