/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Everything synthetic in this repository — source packages, version
 * mutations, vendor build choices, firmware padding — is derived from
 * seeded Rng instances so that every experiment is exactly reproducible.
 * The generator is xoshiro256** seeded via splitmix64.
 */
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

namespace firmup {

/** Deterministic random number generator (xoshiro256**). */
class Rng
{
  public:
    /** Construct from a 64-bit seed, expanded with splitmix64. */
    explicit Rng(std::uint64_t seed);

    /** Construct from a string label (e.g. "wget/ftp_retrieve_glob/v1.15"). */
    static Rng from_label(std::string_view label);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform integer in [lo, hi] inclusive. Requires lo <= hi. */
    std::int64_t range(std::int64_t lo, std::int64_t hi);

    /** Uniform value in [0, n). Requires n > 0. */
    std::size_t index(std::size_t n);

    /** Bernoulli trial: true with probability num/den. */
    bool chance(std::uint32_t num, std::uint32_t den);

    /** Uniformly pick one element of a non-empty vector. */
    template <typename T>
    const T &
    pick(const std::vector<T> &v)
    {
        return v[index(v.size())];
    }

    /** Fisher-Yates shuffle. */
    template <typename T>
    void
    shuffle(std::vector<T> &v)
    {
        for (std::size_t i = v.size(); i > 1; --i) {
            std::swap(v[i - 1], v[index(i)]);
        }
    }

    /** Fork a child generator whose stream is independent of this one. */
    Rng fork(std::string_view label);

  private:
    std::uint64_t s_[4];
};

}  // namespace firmup
