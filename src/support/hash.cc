#include "support/hash.h"

namespace firmup {

std::uint64_t
fnv1a64(std::string_view bytes)
{
    return fnv1a64_update(kFnv1a64Seed, bytes);
}

std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

std::uint64_t
hash_combine(std::uint64_t seed, std::uint64_t value)
{
    return mix64(seed ^ (value + 0x9e3779b97f4a7c15ull + (seed << 6) +
                         (seed >> 2)));
}

}  // namespace firmup
