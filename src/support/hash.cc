#include "support/hash.h"

#include <cstring>

namespace firmup {

std::uint64_t
fnv1a64(std::string_view bytes)
{
    return fnv1a64_update(kFnv1a64Seed, bytes);
}

std::uint64_t
content_hash64(std::string_view bytes)
{
    std::uint64_t lane[4] = {kFnv1a64Seed,
                             kFnv1a64Seed ^ 0x9e3779b97f4a7c15ull,
                             kFnv1a64Seed ^ 0xbf58476d1ce4e5b9ull,
                             kFnv1a64Seed ^ 0x94d049bb133111ebull};
    const char *p = bytes.data();
    std::size_t n = bytes.size();
    while (n >= 32) {
        std::uint64_t w[4];
        std::memcpy(w, p, sizeof(w));
        for (int k = 0; k < 4; ++k) {
            lane[k] = (lane[k] ^ w[k]) * kFnv1a64Prime;
        }
        p += 32;
        n -= 32;
    }
    // Seed the tail state with the length so "" and "\0" differ and a
    // block boundary can't be smuggled across inputs of unequal size.
    std::uint64_t h = mix64(lane[0]) ^ mix64(lane[1]) ^ mix64(lane[2]) ^
                      mix64(lane[3]) ^ mix64(bytes.size());
    while (n >= 8) {
        std::uint64_t w;
        std::memcpy(&w, p, sizeof(w));
        h = (h ^ w) * kFnv1a64Prime;
        p += 8;
        n -= 8;
    }
    std::uint64_t tail = 0;
    for (std::size_t j = 0; j < n; ++j) {
        tail = (tail << 8) |
               static_cast<unsigned char>(p[j]);
    }
    if (n > 0) {
        h = (h ^ tail) * kFnv1a64Prime;
    }
    return mix64(h);
}

std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

std::uint64_t
hash_combine(std::uint64_t seed, std::uint64_t value)
{
    return mix64(seed ^ (value + 0x9e3779b97f4a7c15ull + (seed << 6) +
                         (seed >> 2)));
}

}  // namespace firmup
