/**
 * @file
 * Pipeline-wide tracing & metrics.
 *
 * FirmUp's evaluation story (Tables 1-2, Fig. 9) is a claim about where
 * work goes; this module makes that claim machine-checkable. It provides
 * three always-compiled-in, runtime-gated facilities:
 *
 *  - a process-wide MetricsRegistry of *named* monotonic counters,
 *    gauges and log2-bucketed histograms. Counter/histogram updates go
 *    to lock-free per-thread shards (plain relaxed atomics, one writer
 *    per shard) that are summed on snapshot(), so hot-path increments
 *    never contend;
 *  - scoped TraceSpan RAII timers recording wall *and* thread-CPU time
 *    into per-thread event rings, exportable as Chrome `trace_event`
 *    JSON (load the file in chrome://tracing / Perfetto);
 *  - flat stats-JSON and snapshot rendering for experiment footers.
 *
 * Cost contract: every hook is gated on one relaxed atomic load of the
 * global level. At Level::Off an instrumented build does no clock reads,
 * no allocation, no shard access — `firmup bench-json` records the
 * measured overhead of Level::Full vs Level::Off on the Table-2 game
 * workload as BENCH_micro.json `trace_overhead` (< 2% required).
 */
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace firmup::trace {

/** How much instrumentation is live. */
enum class Level : int {
    Off = 0,      ///< hooks are a relaxed load + branch, nothing else
    Metrics = 1,  ///< counters/gauges/histograms count; no span events
    Full = 2,     ///< metrics + TraceSpan events in the ring buffers
};

namespace detail {
/** The one global gate every hook loads (relaxed). */
inline std::atomic<int> g_level{0};
}  // namespace detail

/** Current instrumentation level (relaxed load; safe anywhere). */
inline Level
level()
{
    return static_cast<Level>(
        detail::g_level.load(std::memory_order_relaxed));
}

/** Set the process-wide instrumentation level. */
void set_level(Level level);

/** Nanoseconds on the steady clock since the process epoch. */
std::uint64_t wall_ns();
/** Nanoseconds of CPU time consumed by the calling thread. */
std::uint64_t thread_cpu_ns();
/** Nanoseconds of CPU time consumed by the whole process. */
std::uint64_t process_cpu_ns();

/** One completed span, as stored in the per-thread event rings. */
struct TraceEvent
{
    const char *name = "";  ///< static span name ("game", "lift", ...)
    std::string tag;        ///< dynamic tag (target name), may be empty
    int tid = 0;            ///< registry-assigned stable thread number
    std::uint64_t start_ns = 0;  ///< wall_ns() at construction
    std::uint64_t dur_ns = 0;    ///< wall duration (end - start >= 0)
    std::uint64_t cpu_ns = 0;    ///< thread-CPU duration of the span
};

/** Merged view of one histogram at snapshot time. */
struct HistogramSnapshot
{
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::uint64_t max = 0;
    /** buckets[i] = observations with bit_width(value) == i. */
    std::array<std::uint64_t, 64> buckets{};
};

/** Point-in-time merge of every shard of a registry. */
struct Snapshot
{
    std::map<std::string, std::uint64_t> counters;
    std::map<std::string, std::int64_t> gauges;
    std::map<std::string, HistogramSnapshot> histograms;
    std::uint64_t events_recorded = 0;
    std::uint64_t events_dropped = 0;

    /** Counter value by name; 0 when never registered/incremented. */
    std::uint64_t counter(const std::string &name) const;
};

/**
 * A registry of named metrics plus the span event rings.
 *
 * The process-wide instance is global(); tests may construct private
 * registries and drive them through the id-based interface. Shards are
 * created lazily per (registry, thread) and owned by the registry, so
 * counts survive thread exit; a registry must outlive every thread that
 * touched it.
 */
class MetricsRegistry
{
  public:
    MetricsRegistry();
    ~MetricsRegistry();

    MetricsRegistry(const MetricsRegistry &) = delete;
    MetricsRegistry &operator=(const MetricsRegistry &) = delete;

    /** The process-wide registry (leaked singleton, never destroyed). */
    static MetricsRegistry &global();

    /**
     * Register a metric; idempotent per name, returns a dense id.
     * Aborts when a fixed per-kind capacity is exhausted (the metric
     * namespace is a small, hand-curated set).
     */
    int register_counter(const std::string &name);
    int register_gauge(const std::string &name);
    int register_histogram(const std::string &name);

    /** Hot-path updates (callers gate on level() themselves). */
    void counter_add(int id, std::uint64_t delta);
    void gauge_set(int id, std::int64_t value);
    void histogram_observe(int id, std::uint64_t value);

    /** Append a completed span to the calling thread's event ring. */
    void record_event(TraceEvent event);

    /** Stable small integer identifying the calling thread's shard. */
    int thread_id();

    /** Merge every shard into a consistent-enough point-in-time view. */
    Snapshot snapshot() const;

    /** All ring events, oldest first per thread. */
    std::vector<TraceEvent> events() const;

    /** Zero all counters/gauges/histograms and drop all events. */
    void reset();

    /**
     * Ring capacity per thread (default 16384 events). Takes effect for
     * shards created afterwards; call before enabling tracing.
     */
    void set_ring_capacity(std::size_t events_per_thread);

    struct Impl;  ///< public so the shard helpers in trace.cc see it

  private:
    Impl *impl_;  ///< leaked by global(), owned otherwise
};

/**
 * A named monotonic counter bound to the global registry. Construct as
 * a file-scope/static object next to the code it instruments; add() is
 * a no-op below Level::Metrics.
 */
class Counter
{
  public:
    explicit Counter(const std::string &name)
        : id_(MetricsRegistry::global().register_counter(name))
    {
    }

    void
    add(std::uint64_t delta = 1) const
    {
        if (level() == Level::Off) {
            return;
        }
        MetricsRegistry::global().counter_add(id_, delta);
    }

  private:
    int id_;
};

/** A named gauge (last value wins) bound to the global registry. */
class Gauge
{
  public:
    explicit Gauge(const std::string &name)
        : id_(MetricsRegistry::global().register_gauge(name))
    {
    }

    void
    set(std::int64_t value) const
    {
        if (level() == Level::Off) {
            return;
        }
        MetricsRegistry::global().gauge_set(id_, value);
    }

  private:
    int id_;
};

/** A named log2-bucket histogram bound to the global registry. */
class Histogram
{
  public:
    explicit Histogram(const std::string &name)
        : id_(MetricsRegistry::global().register_histogram(name))
    {
    }

    void
    observe(std::uint64_t value) const
    {
        if (level() == Level::Off) {
            return;
        }
        MetricsRegistry::global().histogram_observe(id_, value);
    }

  private:
    int id_;
};

/**
 * RAII span: records one TraceEvent (wall + thread-CPU duration) into
 * the global registry on destruction. @p name must be a static string;
 * @p tag is only copied when tracing is at Level::Full, so passing
 * `exe.name` costs nothing when disabled.
 */
class TraceSpan
{
  public:
    explicit TraceSpan(const char *name, std::string_view tag = {})
    {
        if (level() != Level::Full) {
            return;
        }
        active_ = true;
        name_ = name;
        tag_ = tag;
        start_ns_ = wall_ns();
        cpu_start_ns_ = thread_cpu_ns();
    }

    ~TraceSpan()
    {
        if (!active_) {
            return;
        }
        TraceEvent event;
        event.name = name_;
        event.tag = std::move(tag_);
        event.start_ns = start_ns_;
        event.dur_ns = wall_ns() - start_ns_;
        event.cpu_ns = thread_cpu_ns() - cpu_start_ns_;
        MetricsRegistry::global().record_event(std::move(event));
    }

    TraceSpan(const TraceSpan &) = delete;
    TraceSpan &operator=(const TraceSpan &) = delete;

  private:
    bool active_ = false;
    const char *name_ = "";
    std::string tag_;
    std::uint64_t start_ns_ = 0;
    std::uint64_t cpu_start_ns_ = 0;
};

/**
 * Chrome `trace_event` JSON of @p events: one complete ("ph":"X") event
 * per span, microsecond timestamps, pid 1, tid = shard id. Loads in
 * chrome://tracing and Perfetto.
 */
std::string chrome_trace_json(const std::vector<TraceEvent> &events);

/** chrome_trace_json over the global registry's rings. */
std::string chrome_trace_json();

/** Flat, sorted stats JSON of @p snapshot (counters/gauges/histograms). */
std::string stats_json(const Snapshot &snapshot);

/** stats_json over a fresh snapshot of the global registry. */
std::string stats_json();

}  // namespace firmup::trace
