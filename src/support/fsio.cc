#include "support/fsio.h"

#include <fcntl.h>
#include <unistd.h>

namespace firmup {

bool
fsync_path(const std::string &path)
{
    const int fd = ::open(path.c_str(), O_WRONLY);
    if (fd < 0) {
        return false;
    }
    const bool ok = ::fsync(fd) == 0;
    ::close(fd);
    return ok;
}

bool
fsync_dir(const std::string &dir)
{
#ifdef O_DIRECTORY
    const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
#else
    const int fd = ::open(dir.c_str(), O_RDONLY);
#endif
    if (fd < 0) {
        return false;
    }
    const bool ok = ::fsync(fd) == 0;
    ::close(fd);
    return ok;
}

bool
fsync_stream(std::FILE *stream)
{
    if (stream == nullptr || std::fflush(stream) != 0) {
        return false;
    }
    return ::fsync(fileno(stream)) == 0;
}

}  // namespace firmup
