#pragma once
/**
 * POSIX child-process plumbing for the shard-scan coordinator
 * (eval/shard.h): fork/exec of a worker binary with its stdout captured
 * on a non-blocking pipe, u32-LE length-prefixed frame I/O over that
 * pipe, and incremental frame reassembly on the reading side.
 *
 * The frame layer is deliberately dumb — a length and opaque payload
 * bytes. What the payloads mean (the NDJSON shard protocol) lives with
 * the coordinator; this file only guarantees that a frame written
 * atomically on one end pops out whole, or not at all, on the other.
 */

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include <sys/types.h>

#include "support/error.h"

namespace firmup {

/** A spawned child with its stdout captured on a pipe. */
struct ChildProcess
{
    pid_t pid = -1;
    int out_fd = -1;  ///< read end of the child's stdout (non-blocking)
};

/**
 * fork/exec @p binary with @p args (argv[0] is set to @p binary). The
 * child's stdout feeds the returned pipe; stderr passes through to the
 * parent's so worker diagnostics stay visible. The read end is
 * non-blocking and close-on-exec. The caller owns both halves: reap the
 * pid with wait_child() and close the fd with close_fd().
 */
Result<ChildProcess> spawn_child(const std::string &binary,
                                 const std::vector<std::string> &args);

/** Blocking waitpid; returns the raw wait status (-1 on error). */
int wait_child(pid_t pid);

/** SIGKILL @p pid (no-op for pid <= 0). */
void kill_child(pid_t pid);

/** True when the raw wait @p status is a clean exit with code 0. */
bool exited_cleanly(int status);

/** Human-readable "exit N" / "signal N" for a raw wait status. */
std::string describe_status(int status);

/** close() tolerant of -1 and EINTR. */
void close_fd(int fd);

/**
 * Write one length-prefixed frame (u32 LE payload size, then the
 * payload bytes) to @p fd, looping over partial writes and EINTR.
 * Serializing concurrent writers is the caller's job — interleaved
 * frames on one stream are unrecoverable garbage.
 */
bool write_frame(int fd, std::string_view payload);

/**
 * Incremental reassembly of length-prefixed frames from a non-blocking
 * fd: feed() slurps whatever is readable, next() pops complete frames.
 * Partial frames stay buffered across feeds, so a frame split by pipe
 * backpressure is reassembled transparently.
 */
class FrameReader
{
  public:
    /** Frames larger than this are protocol corruption, not data. */
    static constexpr std::size_t kMaxFrameBytes = 16u << 20;

    /**
     * Read the currently-available bytes from @p fd. Returns +1 when
     * bytes arrived, 0 when the read would block, -1 on EOF or error.
     */
    int feed(int fd);

    /**
     * Pop the next complete frame into @p payload. Returns false when
     * no complete frame is buffered (or the stream is corrupt — see
     * corrupt()).
     */
    bool next(std::string *payload);

    /** Set once a frame header exceeds kMaxFrameBytes. */
    bool corrupt() const { return corrupt_; }

    /** Bytes buffered but not yet consumed as frames (diagnostics). */
    std::size_t pending_bytes() const { return buffer_.size() - pos_; }

  private:
    std::string buffer_;
    std::size_t pos_ = 0;
    bool corrupt_ = false;
};

}  // namespace firmup
