/**
 * @file
 * A minimal fixed-size thread pool for data-parallel corpus work.
 *
 * The paper's evaluation machine runs 72 threads with bounded per-thread
 * memory (section 5.1); the corpus-indexing phase here is embarrassingly
 * parallel (one executable per task, no shared state until the merge), so
 * a plain worker pool with a shared queue suffices.
 */
#pragma once

#include <condition_variable>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace firmup {

/** Fixed-size worker pool; destruction joins after draining the queue. */
class ThreadPool
{
  public:
    /** Spawn @p num_threads workers (minimum 1). */
    explicit ThreadPool(unsigned num_threads);

    /** Drains outstanding work, then joins all workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue a task. */
    void submit(std::function<void()> task);

    /** Block until every submitted task has finished. */
    void wait_idle();

    /**
     * Run @p fn(i) for i in [0, count) across the pool and wait.
     * @p fn must be safe to call concurrently for distinct i.
     */
    static void parallel_for(unsigned num_threads, std::size_t count,
                             const std::function<void(std::size_t)> &fn);

  private:
    void worker();

    std::vector<std::thread> threads_;
    std::mutex mutex_;
    std::condition_variable work_available_;
    std::condition_variable idle_;
    std::queue<std::function<void()>> queue_;
    std::size_t in_flight_ = 0;
    bool stopping_ = false;
};

}  // namespace firmup
