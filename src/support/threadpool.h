/**
 * @file
 * A minimal fixed-size thread pool for data-parallel corpus work.
 *
 * The paper's evaluation machine runs 72 threads with bounded per-thread
 * memory (section 5.1); the corpus-indexing phase here is embarrassingly
 * parallel (one executable per task, no shared state until the merge), so
 * a plain worker pool with a shared queue suffices.
 *
 * A task that throws does not terminate the process: the first exception
 * is captured and rethrown from wait_idle() (and therefore from
 * parallel_for) on the submitting thread; the pool is marked cancelled so
 * cooperative loops can stop early. An exception never retrieved before
 * destruction is dropped — destructors must not throw.
 */
#pragma once

#include <atomic>
#include <condition_variable>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace firmup {

/** Fixed-size worker pool; destruction joins after draining the queue. */
class ThreadPool
{
  public:
    /** Spawn @p num_threads workers (minimum 1). */
    explicit ThreadPool(unsigned num_threads);

    /** Drains outstanding work, then joins all workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue a task. */
    void submit(std::function<void()> task);

    /**
     * Block until every submitted task has finished. If any task threw,
     * rethrows the first captured exception (once).
     */
    void wait_idle();

    /** True once a task has thrown; long-running tasks should yield. */
    bool cancelled() const { return cancelled_.load(); }

    /**
     * Run @p fn(i) for i in [0, count) across the pool and wait.
     * @p fn must be safe to call concurrently for distinct i. If any
     * invocation throws, remaining indices are abandoned and the first
     * exception is rethrown on the calling thread.
     */
    static void parallel_for(unsigned num_threads, std::size_t count,
                             const std::function<void(std::size_t)> &fn);

  private:
    void worker();

    std::vector<std::thread> threads_;
    std::mutex mutex_;
    std::condition_variable work_available_;
    std::condition_variable idle_;
    std::queue<std::function<void()>> queue_;
    std::size_t in_flight_ = 0;
    bool stopping_ = false;
    std::exception_ptr first_error_;
    std::atomic<bool> cancelled_{false};
};

/**
 * Work-stealing range scheduler for heterogeneous per-item work.
 *
 * parallel_for above hands out indices one at a time through a shared
 * atomic — fine when each task is a whole executable to lift, but a
 * batched multi-CVE hunt fans out (query, target) *game* items that are
 * individually tiny once the index caches are warm, and a per-item
 * shared counter (let alone per-item task submission) drowns them in
 * scheduling overhead. Here the index range is pre-split into contiguous
 * chunks dealt round-robin across per-worker deques: each worker pops
 * its own deque LIFO (newest chunk, warmest data) and, when empty,
 * steals the *oldest* chunk from a victim FIFO — the classic
 * owner-LIFO/thief-FIFO discipline that keeps stolen work as far as
 * possible from what the owner is about to touch. Contiguous chunks are
 * what lets the driver order items target-major: every query's game
 * against one target runs back-to-back on one worker while that
 * target's index is hot.
 *
 * Exception semantics match parallel_for: the first thrown exception
 * cancels the sweep (remaining items are abandoned, in-chunk items
 * included) and is rethrown on the calling thread. fn must be safe to
 * call concurrently for distinct indices. Which worker runs which index
 * is non-deterministic; callers get determinism by writing disjoint
 * per-index slots and merging single-threaded, exactly as with
 * parallel_for.
 */
class WorkStealingScheduler
{
  public:
    /**
     * Chunk size for @p count items on @p threads workers:
     * count / (threads * 8), clamped to [1, 64] — about eight chunks
     * per worker so stealing can rebalance a skewed tail, capped so one
     * stolen chunk never holds a core's whole share hostage.
     */
    static std::size_t chunk_for(std::size_t count, unsigned threads);

    /**
     * Run @p fn(i) for i in [0, count) across @p threads workers
     * (minimum 1; the calling thread participates) and wait. If any
     * invocation throws, the first exception is rethrown here.
     */
    static void run(unsigned threads, std::size_t count,
                    const std::function<void(std::size_t)> &fn);
};

}  // namespace firmup
