/**
 * @file
 * Read-only memory-mapped files for the zero-copy index load path.
 *
 * The FWIX v5 container (sim/persist.h) is a flat relocatable blob:
 * every arena is addressed by offset, so an entry can be served
 * straight from the page cache — map it, checksum it, hand out views —
 * instead of being streamed through a parser into freshly allocated
 * vectors. MappedFile is the RAII half of that path: it owns one
 * PROT_READ / MAP_PRIVATE mapping and unmaps on destruction, so an
 * ExecutableIndex view can pin the bytes alive with a
 * shared_ptr<MappedFile> and eviction can never pull pages out from
 * under an in-flight scan.
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "support/error.h"

namespace firmup {

/** One read-only mapping of a whole file (move-only RAII). */
class MappedFile
{
  public:
    MappedFile() = default;
    ~MappedFile();

    MappedFile(MappedFile &&other) noexcept;
    MappedFile &operator=(MappedFile &&other) noexcept;
    MappedFile(const MappedFile &) = delete;
    MappedFile &operator=(const MappedFile &) = delete;

    /**
     * Map @p path read-only. A zero-length file maps successfully with
     * data() == nullptr and size() == 0 (callers' bounds checks reject
     * it like any other truncated container). Errors: IoError when the
     * file cannot be opened, stat'ed or mapped.
     */
    static Result<MappedFile> map(const std::string &path);

    const std::uint8_t *data() const { return data_; }
    std::size_t size() const { return size_; }

  private:
    const std::uint8_t *data_ = nullptr;
    std::size_t size_ = 0;
};

}  // namespace firmup
