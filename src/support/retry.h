/**
 * @file
 * Bounded retry-with-backoff for transient pipeline failures.
 *
 * The ErrorCode taxonomy splits into *permanent* failures — the input
 * itself is bad (malformed container, undecodable bytes, lift bailout,
 * stale format) and will fail identically forever — and *transient*
 * ones, where a retry can legitimately succeed: IoError (a flaky NFS
 * read, a full disk that drained) and BudgetExhausted when the budget
 * was a wall-clock deadline on a loaded machine. Quarantining a target
 * over a transient hiccup silently shrinks coverage, so the driver
 * retries those a bounded number of times with exponential backoff
 * before giving up; error_code_transient() is the single source of
 * truth for the split (documented in DESIGN.md §13).
 */
#pragma once

#include <chrono>
#include <thread>

#include "support/cancel.h"
#include "support/error.h"

namespace firmup {

/** Retry knobs; the zero default disables retrying entirely. */
struct RetryPolicy
{
    int max_retries = 0;            ///< extra attempts after the first
    double backoff_seconds = 0.0;   ///< sleep before the first retry
    double backoff_factor = 2.0;    ///< multiplier per further retry
};

/**
 * Run @p attempt (returning Result<T>) until it succeeds, fails with a
 * permanent ErrorCode, exhausts @p policy.max_retries, or @p cancel is
 * requested. Sleeps the (exponentially growing) backoff between
 * attempts. @p retries_out, when non-null, receives the number of
 * retries actually performed — the accounting ScanHealth surfaces.
 */
template <typename Attempt>
auto
retry_transient(const RetryPolicy &policy, const CancelToken *cancel,
                Attempt &&attempt, int *retries_out = nullptr)
    -> decltype(attempt())
{
    auto result = attempt();
    int retries = 0;
    double backoff = policy.backoff_seconds;
    while (!result.ok() && retries < policy.max_retries &&
           error_code_transient(result.error_code()) &&
           !(cancel != nullptr && cancel->requested())) {
        if (backoff > 0.0) {
            std::this_thread::sleep_for(
                std::chrono::duration<double>(backoff));
        }
        backoff *= policy.backoff_factor;
        ++retries;
        result = attempt();
    }
    if (retries_out != nullptr) {
        *retries_out = retries;
    }
    return result;
}

}  // namespace firmup
