#include "support/mmapfile.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace firmup {

MappedFile::~MappedFile()
{
    if (data_ != nullptr) {
        ::munmap(const_cast<std::uint8_t *>(data_), size_);
    }
}

MappedFile::MappedFile(MappedFile &&other) noexcept
    : data_(std::exchange(other.data_, nullptr)),
      size_(std::exchange(other.size_, 0))
{
}

MappedFile &
MappedFile::operator=(MappedFile &&other) noexcept
{
    if (this != &other) {
        if (data_ != nullptr) {
            ::munmap(const_cast<std::uint8_t *>(data_), size_);
        }
        data_ = std::exchange(other.data_, nullptr);
        size_ = std::exchange(other.size_, 0);
    }
    return *this;
}

Result<MappedFile>
MappedFile::map(const std::string &path)
{
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
        return Result<MappedFile>::error(
            ErrorCode::IoError,
            "cannot open " + path + ": " + std::strerror(errno));
    }
    struct stat st{};
    if (::fstat(fd, &st) != 0) {
        const int err = errno;
        ::close(fd);
        return Result<MappedFile>::error(
            ErrorCode::IoError,
            "cannot stat " + path + ": " + std::strerror(err));
    }
    MappedFile out;
    out.size_ = static_cast<std::size_t>(st.st_size);
    if (out.size_ == 0) {
        // mmap(len=0) is EINVAL; an empty file is a valid (empty) view.
        ::close(fd);
        return out;
    }
    void *addr =
        ::mmap(nullptr, out.size_, PROT_READ, MAP_PRIVATE, fd, 0);
    // The mapping holds its own reference to the file; the fd is not
    // needed past this point either way.
    const int err = errno;
    ::close(fd);
    if (addr == MAP_FAILED) {
        return Result<MappedFile>::error(
            ErrorCode::IoError,
            "cannot map " + path + ": " + std::strerror(err));
    }
    out.data_ = static_cast<const std::uint8_t *>(addr);
    return out;
}

}  // namespace firmup
