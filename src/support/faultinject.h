/**
 * @file
 * Deterministic fault injection for packed firmware blobs.
 *
 * Real vendor firmware is routinely truncated, repacked or partially
 * corrupt (the paper's crawl lost ~3000 images to unpack failures,
 * section 5.1). The mutators here reproduce those damage classes on a
 * packed byte buffer so the unpack→lift→index→match pipeline can be
 * driven over thousands of hostile inputs and proven abort-free
 * (tests/test_faultinject.cc, `firmup fuzz-unpack`).
 *
 * Everything is driven by a seeded Rng: the same (blob, seed) pair always
 * produces the same mutant, so a crash found by the harness is a one-line
 * reproduction. The library is byte-level and container-agnostic; the
 * magic token used by structure-aware mutators is a parameter (defaulting
 * to the FWELF member magic) so support/ stays below loader/ in the
 * layering.
 */
#pragma once

#include "support/bytes.h"
#include "support/rng.h"

namespace firmup::fault {

/** One damage class applied to a packed blob. */
enum class Mutation : std::uint8_t {
    Truncate,        ///< cut the blob at a random offset
    BitFlip,         ///< flip 1..N random bits anywhere
    SpliceGarbage,   ///< insert a run of random bytes at a random offset
    DuplicateMagic,  ///< insert a stray copy of the member magic token
    ZeroLengthName,  ///< zero a member's name-length bracket
    DropHeader,      ///< overwrite part of the leading image header
};

/** Number of distinct Mutation values. */
inline constexpr std::size_t kMutationCount =
    static_cast<std::size_t>(Mutation::DropHeader) + 1;

/** Stable human-readable name, e.g. "bit-flip". */
const char *mutation_name(Mutation kind);

/** Mutator knobs. */
struct InjectOptions
{
    /** Member magic token for structure-aware mutators (FWELF "FWEX"). */
    ByteBuffer magic = {'F', 'W', 'E', 'X'};
    std::size_t max_garbage = 64;  ///< SpliceGarbage run length cap
    int max_bit_flips = 16;        ///< BitFlip count cap
    int max_mutations = 3;         ///< mutations per mutate() call
};

/** Apply one specific mutation; deterministic given the Rng state. */
ByteBuffer apply_mutation(const ByteBuffer &blob, Mutation kind, Rng &rng,
                          const InjectOptions &options = {});

/**
 * Apply 1..max_mutations randomly chosen mutations in sequence — the
 * harness entry point. Deterministic given the Rng state.
 */
ByteBuffer mutate(const ByteBuffer &blob, Rng &rng,
                  const InjectOptions &options = {});

}  // namespace firmup::fault
