#include "support/faultinject.h"

#include <algorithm>

namespace firmup::fault {

namespace {

/** Offsets of @p token occurrences in @p blob. */
std::vector<std::size_t>
find_token(const ByteBuffer &blob, const ByteBuffer &token)
{
    std::vector<std::size_t> hits;
    if (token.empty() || blob.size() < token.size()) {
        return hits;
    }
    for (std::size_t i = 0; i + token.size() <= blob.size(); ++i) {
        if (std::equal(token.begin(), token.end(), blob.begin() + i)) {
            hits.push_back(i);
        }
    }
    return hits;
}

ByteBuffer
truncate(const ByteBuffer &blob, Rng &rng)
{
    ByteBuffer out = blob;
    out.resize(rng.index(blob.size() + 1));
    return out;
}

ByteBuffer
bit_flip(const ByteBuffer &blob, Rng &rng, const InjectOptions &options)
{
    ByteBuffer out = blob;
    if (out.empty()) {
        return out;
    }
    const int flips =
        1 + static_cast<int>(rng.index(static_cast<std::size_t>(
                std::max(1, options.max_bit_flips))));
    for (int i = 0; i < flips; ++i) {
        out[rng.index(out.size())] ^=
            static_cast<std::uint8_t>(1u << rng.index(8));
    }
    return out;
}

ByteBuffer
splice_garbage(const ByteBuffer &blob, Rng &rng,
               const InjectOptions &options)
{
    ByteBuffer out;
    const std::size_t at = rng.index(blob.size() + 1);
    const std::size_t n = 1 + rng.index(std::max<std::size_t>(
                                  1, options.max_garbage));
    out.reserve(blob.size() + n);
    out.insert(out.end(), blob.begin(),
               blob.begin() + static_cast<std::ptrdiff_t>(at));
    for (std::size_t i = 0; i < n; ++i) {
        out.push_back(static_cast<std::uint8_t>(rng.index(256)));
    }
    out.insert(out.end(),
               blob.begin() + static_cast<std::ptrdiff_t>(at),
               blob.end());
    return out;
}

ByteBuffer
duplicate_magic(const ByteBuffer &blob, Rng &rng,
                const InjectOptions &options)
{
    ByteBuffer out = blob;
    const std::size_t at = rng.index(out.size() + 1);
    out.insert(out.begin() + static_cast<std::ptrdiff_t>(at),
               options.magic.begin(), options.magic.end());
    return out;
}

ByteBuffer
zero_length_name(const ByteBuffer &blob, Rng &rng,
                 const InjectOptions &options)
{
    // The FWIMG member header brackets the name with two length copies:
    // [u16 len][name][u16 len][u32 size][magic...]. Zeroing the copy
    // just before the size field desynchronizes the bracket check.
    ByteBuffer out = blob;
    const auto hits = find_token(out, options.magic);
    if (hits.empty()) {
        return out;
    }
    const std::size_t magic_at = hits[rng.index(hits.size())];
    if (magic_at >= 6) {
        out[magic_at - 6] = 0;
        out[magic_at - 5] = 0;
    }
    return out;
}

ByteBuffer
drop_header(const ByteBuffer &blob, Rng &rng)
{
    ByteBuffer out = blob;
    // Clobber a short prefix run: image magic and/or the vendor strings.
    const std::size_t n = std::min<std::size_t>(out.size(),
                                                1 + rng.index(16));
    for (std::size_t i = 0; i < n; ++i) {
        out[i] = static_cast<std::uint8_t>(rng.index(256));
    }
    return out;
}

}  // namespace

const char *
mutation_name(Mutation kind)
{
    switch (kind) {
      case Mutation::Truncate:
        return "truncate";
      case Mutation::BitFlip:
        return "bit-flip";
      case Mutation::SpliceGarbage:
        return "splice-garbage";
      case Mutation::DuplicateMagic:
        return "duplicate-magic";
      case Mutation::ZeroLengthName:
        return "zero-length-name";
      case Mutation::DropHeader:
        return "drop-header";
    }
    return "invalid";
}

ByteBuffer
apply_mutation(const ByteBuffer &blob, Mutation kind, Rng &rng,
               const InjectOptions &options)
{
    if (blob.empty()) {
        return blob;
    }
    switch (kind) {
      case Mutation::Truncate:
        return truncate(blob, rng);
      case Mutation::BitFlip:
        return bit_flip(blob, rng, options);
      case Mutation::SpliceGarbage:
        return splice_garbage(blob, rng, options);
      case Mutation::DuplicateMagic:
        return duplicate_magic(blob, rng, options);
      case Mutation::ZeroLengthName:
        return zero_length_name(blob, rng, options);
      case Mutation::DropHeader:
        return drop_header(blob, rng);
    }
    return blob;
}

ByteBuffer
mutate(const ByteBuffer &blob, Rng &rng, const InjectOptions &options)
{
    ByteBuffer out = blob;
    const int rounds =
        1 + static_cast<int>(rng.index(static_cast<std::size_t>(
                std::max(1, options.max_mutations))));
    for (int i = 0; i < rounds; ++i) {
        const auto kind =
            static_cast<Mutation>(rng.index(kMutationCount));
        out = apply_mutation(out, kind, rng, options);
    }
    return out;
}

}  // namespace firmup::fault
