/**
 * @file
 * Error handling primitives.
 *
 * Recoverable failures (malformed containers, undecodable instructions,
 * lifter bail-outs) are reported through Result<T>; programming errors are
 * reported through FIRMUP_ASSERT which aborts. This mirrors the gem5
 * fatal()/panic() split: user-input problems return errors, internal
 * invariant violations abort.
 */
#pragma once

#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <utility>

namespace firmup {

/** Value-or-error-message return type for recoverable failures. */
template <typename T>
class Result
{
  public:
    /* implicit */ Result(T value) : value_(std::move(value)) {}

    /** Construct a failed result carrying a diagnostic message. */
    static Result
    error(std::string message)
    {
        Result r;
        r.error_ = std::move(message);
        return r;
    }

    bool ok() const { return value_.has_value(); }
    explicit operator bool() const { return ok(); }

    /** Access the value; requires ok(). */
    const T &value() const & { assert(ok()); return *value_; }
    T &value() & { assert(ok()); return *value_; }
    T &&take() && { assert(ok()); return std::move(*value_); }

    /** Diagnostic message; requires !ok(). */
    const std::string &error_message() const { assert(!ok()); return error_; }

  private:
    Result() = default;
    std::optional<T> value_;
    std::string error_;
};

[[noreturn]] void assert_fail(const char *expr, const char *file, int line,
                              const std::string &message);

}  // namespace firmup

/** Abort with a message when an internal invariant is violated. */
#define FIRMUP_ASSERT(expr, message)                                       \
    do {                                                                   \
        if (!(expr)) {                                                     \
            ::firmup::assert_fail(#expr, __FILE__, __LINE__, (message));   \
        }                                                                  \
    } while (0)
