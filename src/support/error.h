/**
 * @file
 * Error handling primitives.
 *
 * Recoverable failures (malformed containers, undecodable instructions,
 * lifter bail-outs) are reported through Result<T>; programming errors are
 * reported through FIRMUP_ASSERT which aborts. This mirrors the gem5
 * fatal()/panic() split: user-input problems return errors, internal
 * invariant violations abort.
 *
 * Every Result error carries an ErrorCode so that corpus-scale pipelines
 * can aggregate failures into a histogram (eval::ScanHealth) instead of
 * collapsing everything into opaque strings. The taxonomy is deliberately
 * coarse: each code names a *stage* of the untrusted-input pipeline, not
 * an individual defect.
 */
#pragma once

#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <utility>

namespace firmup {

/**
 * Failure taxonomy for untrusted-input paths. Codes are stable values so
 * histograms serialize deterministically.
 */
enum class ErrorCode : std::uint8_t {
    Unknown = 0,            ///< legacy / uncategorized failure
    MalformedContainer,     ///< blob or member header fails validation
    TruncatedMember,        ///< declared size overruns the available bytes
    UndecodableInsn,        ///< machine bytes decode on no supported ISA
    LiftBailout,            ///< lifter gave up (no liftable procedure)
    BudgetExhausted,        ///< step/deadline budget hit before an answer
    MissingProcedure,       ///< expected procedure absent from an index
    IoError,                ///< file could not be read or written
    StaleFormat,            ///< persisted blob from an older format/layout
};

/** Stable human-readable name, e.g. "truncated-member". */
const char *error_code_name(ErrorCode code);

/**
 * Retry taxonomy: true for failures that can legitimately succeed on a
 * retry (IoError — a flaky mount, a transiently full disk — and
 * BudgetExhausted, whose wall-clock form depends on machine load).
 * Everything else is a property of the input bytes and will fail
 * identically forever; retrying it only burns budget.
 */
bool error_code_transient(ErrorCode code);

/** Number of distinct ErrorCode values (for dense histograms). */
inline constexpr std::size_t kErrorCodeCount =
    static_cast<std::size_t>(ErrorCode::StaleFormat) + 1;

/** Value-or-error-message return type for recoverable failures. */
template <typename T>
class Result
{
  public:
    /* implicit */ Result(T value) : value_(std::move(value)) {}

    /** Construct a failed result carrying a diagnostic message. */
    static Result
    error(std::string message)
    {
        return error(ErrorCode::Unknown, std::move(message));
    }

    /** Construct a failed result with a taxonomy code. */
    static Result
    error(ErrorCode code, std::string message)
    {
        Result r;
        r.code_ = code;
        r.error_ = std::move(message);
        return r;
    }

    /** Re-wrap another Result's failure, preserving its code. */
    template <typename U>
    static Result
    error_from(const Result<U> &other)
    {
        return error(other.error_code(), other.error_message());
    }

    bool ok() const { return value_.has_value(); }
    explicit operator bool() const { return ok(); }

    /** Access the value; requires ok(). */
    const T &value() const & { assert(ok()); return *value_; }
    T &value() & { assert(ok()); return *value_; }
    T &&take() && { assert(ok()); return std::move(*value_); }

    /** Diagnostic message; requires !ok(). */
    const std::string &error_message() const { assert(!ok()); return error_; }

    /** Taxonomy code; requires !ok(). */
    ErrorCode error_code() const { assert(!ok()); return code_; }

  private:
    Result() = default;
    std::optional<T> value_;
    std::string error_;
    ErrorCode code_ = ErrorCode::Unknown;
};

[[noreturn]] void assert_fail(const char *expr, const char *file, int line,
                              const std::string &message);

}  // namespace firmup

/** Abort with a message when an internal invariant is violated. */
#define FIRMUP_ASSERT(expr, message)                                       \
    do {                                                                   \
        if (!(expr)) {                                                     \
            ::firmup::assert_fail(#expr, __FILE__, __LINE__, (message));   \
        }                                                                  \
    } while (0)
