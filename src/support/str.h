/**
 * @file
 * Small string utilities shared across modules.
 */
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace firmup {

/** Join elements of @p parts with @p sep. */
std::string join(const std::vector<std::string> &parts, std::string_view sep);

/** Hexadecimal rendering of a value, zero-padded to @p width digits. */
std::string to_hex(std::uint64_t value, int width = 0);

/** Printf-style formatting into a std::string. */
std::string strprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** True if @p s starts with @p prefix. */
bool starts_with(std::string_view s, std::string_view prefix);

/** Split @p s on @p sep (single character); keeps empty fields. */
std::vector<std::string> split(std::string_view s, char sep);

}  // namespace firmup
