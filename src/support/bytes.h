/**
 * @file
 * Endian-aware byte buffer helpers used by encoders, decoders and the
 * FWELF container.
 */
#pragma once

#include <cstdint>
#include <vector>

namespace firmup {

using ByteBuffer = std::vector<std::uint8_t>;

inline void
append_u8(ByteBuffer &buf, std::uint8_t v)
{
    buf.push_back(v);
}

inline void
append_u16_le(ByteBuffer &buf, std::uint16_t v)
{
    buf.push_back(static_cast<std::uint8_t>(v));
    buf.push_back(static_cast<std::uint8_t>(v >> 8));
}

inline void
append_u32_le(ByteBuffer &buf, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i) {
        buf.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
}

inline void
append_u64_le(ByteBuffer &buf, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i) {
        buf.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
}

inline void
append_u32_be(ByteBuffer &buf, std::uint32_t v)
{
    for (int i = 3; i >= 0; --i) {
        buf.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
}

inline std::uint16_t
read_u16_le(const std::uint8_t *p)
{
    return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

inline std::uint32_t
read_u32_le(const std::uint8_t *p)
{
    return static_cast<std::uint32_t>(p[0]) |
           (static_cast<std::uint32_t>(p[1]) << 8) |
           (static_cast<std::uint32_t>(p[2]) << 16) |
           (static_cast<std::uint32_t>(p[3]) << 24);
}

inline std::uint64_t
read_u64_le(const std::uint8_t *p)
{
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i) {
        v = (v << 8) | p[i];
    }
    return v;
}

inline std::uint32_t
read_u32_be(const std::uint8_t *p)
{
    return (static_cast<std::uint32_t>(p[0]) << 24) |
           (static_cast<std::uint32_t>(p[1]) << 16) |
           (static_cast<std::uint32_t>(p[2]) << 8) |
           static_cast<std::uint32_t>(p[3]);
}

}  // namespace firmup
