#include "support/str.h"

#include <cstdarg>
#include <cstdio>

namespace firmup {

std::string
join(const std::vector<std::string> &parts, std::string_view sep)
{
    std::string out;
    for (std::size_t i = 0; i < parts.size(); ++i) {
        if (i > 0) {
            out += sep;
        }
        out += parts[i];
    }
    return out;
}

std::string
to_hex(std::uint64_t value, int width)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%0*llx", width,
                  static_cast<unsigned long long>(value));
    return buf;
}

std::string
strprintf(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    va_list ap2;
    va_copy(ap2, ap);
    const int n = std::vsnprintf(nullptr, 0, fmt, ap);
    va_end(ap);
    std::string out(static_cast<std::size_t>(n), '\0');
    std::vsnprintf(out.data(), out.size() + 1, fmt, ap2);
    va_end(ap2);
    return out;
}

bool
starts_with(std::string_view s, std::string_view prefix)
{
    return s.size() >= prefix.size() &&
           s.substr(0, prefix.size()) == prefix;
}

std::vector<std::string>
split(std::string_view s, char sep)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    for (std::size_t i = 0; i <= s.size(); ++i) {
        if (i == s.size() || s[i] == sep) {
            out.emplace_back(s.substr(start, i - start));
            start = i + 1;
        }
    }
    return out;
}

}  // namespace firmup
