/**
 * @file
 * Durability helpers for crash-safe persistence.
 *
 * The atomic write-via-rename idiom (IndexCacheStore, ScanJournal) is
 * only crash-safe when the temp file's *contents* reach stable storage
 * before the rename publishes its name: without the fsync, a power loss
 * after the rename but before writeback can leave a fully-published
 * entry whose payload is a hole. These helpers are the missing half of
 * that idiom.
 */
#pragma once

#include <cstdio>
#include <string>

namespace firmup {

/**
 * Flush @p path's written contents to stable storage (POSIX fsync).
 * Returns false when the file cannot be opened or synced; callers on
 * the publish path should treat that as a failed write.
 */
bool fsync_path(const std::string &path);

/**
 * Flush @p dir's directory entries to stable storage. The rename that
 * publishes an atomic write is itself just a dirent update: without
 * syncing the parent directory a crash after the rename can forget the
 * published *name* even though the file contents are durable.
 */
bool fsync_dir(const std::string &dir);

/** fsync an already-open stdio stream (fflush + fsync of its fd). */
bool fsync_stream(std::FILE *stream);

}  // namespace firmup
