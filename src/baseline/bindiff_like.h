/**
 * @file
 * BinDiff-like baseline: whole-binary, graph-structural matching.
 *
 * Models the ingredients the paper attributes to BinDiff (section 5.3 and
 * [zynamics manual]): procedure names when available (BinDiff "attributes
 * great importance to the procedure name when it exists"), control-flow-
 * graph shape (block/edge counts and a degree-sequence hash, standing in
 * for the MD-index), and call-graph propagation from already-matched
 * pairs. It never looks at instruction semantics — which is exactly the
 * weakness Fig. 7 of the paper demonstrates: structurally similar but
 * semantically unrelated CFGs are matched.
 */
#pragma once

#include <map>
#include <string>
#include <vector>

#include "lifter/cfg.h"

namespace firmup::baseline {

/** Structural features of one procedure. */
struct GraphFeatures
{
    std::uint64_t entry = 0;
    std::string name;
    int blocks = 0;
    int edges = 0;
    int calls = 0;
    int insts = 0;                 ///< lifted statement count
    std::uint64_t shape_hash = 0;  ///< degree-sequence hash (MD-index-ish)
    std::vector<std::uint64_t> callees;  ///< call targets (entries)
};

/** Whole-binary structural index. */
struct GraphIndex
{
    std::string name;
    std::vector<GraphFeatures> procs;
    std::map<std::uint64_t, int> by_entry;
};

/** Extract structural features from a lifted executable. */
GraphIndex graph_index(const lifter::LiftedExecutable &lifted);

/**
 * Produce a (partial) matching between the procedures of Q and T,
 * BinDiff style: names first, unique exact shapes next, call-graph
 * propagation, then greedy nearest-shape for the remainder.
 * @return map from Q procedure index to T procedure index.
 */
std::map<int, int> bindiff_match(const GraphIndex &Q, const GraphIndex &T);

}  // namespace firmup::baseline
