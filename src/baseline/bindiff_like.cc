#include "baseline/bindiff_like.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "support/hash.h"

namespace firmup::baseline {

namespace {

std::uint64_t
degree_sequence_hash(const ir::Procedure &proc)
{
    // In/out degree pairs, sorted: a compiler-insensitive shape
    // signature in the spirit of the MD-index.
    std::map<std::uint64_t, int> in_degree;
    for (const auto &[addr, block] : proc.blocks) {
        for (std::uint64_t succ : block.successors()) {
            ++in_degree[succ];
        }
    }
    std::vector<std::pair<int, int>> degrees;
    for (const auto &[addr, block] : proc.blocks) {
        degrees.emplace_back(in_degree[addr],
                             static_cast<int>(block.successors().size()));
    }
    std::sort(degrees.begin(), degrees.end());
    std::uint64_t h = 0x9e3779b97f4a7c15ull;
    for (const auto &[in, out] : degrees) {
        h = hash_combine(h, static_cast<std::uint64_t>(in) * 64 +
                                static_cast<std::uint64_t>(out));
    }
    return h;
}

/** Structural distance between two feature vectors (lower = closer). */
double
shape_distance(const GraphFeatures &a, const GraphFeatures &b)
{
    const auto rel = [](int x, int y) {
        const double denom = std::max(1, std::max(x, y));
        return std::abs(x - y) / denom;
    };
    double d = rel(a.blocks, b.blocks) + rel(a.edges, b.edges) +
               rel(a.calls, b.calls) + 0.5 * rel(a.insts, b.insts);
    if (a.shape_hash == b.shape_hash) {
        d -= 1.0;  // identical CFG shape is strong evidence for BinDiff
    }
    return d;
}

}  // namespace

GraphIndex
graph_index(const lifter::LiftedExecutable &lifted)
{
    GraphIndex index;
    index.name = lifted.name;
    for (const auto &[entry, proc] : lifted.procs) {
        GraphFeatures f;
        f.entry = entry;
        f.name = proc.name;
        f.blocks = static_cast<int>(proc.blocks.size());
        f.insts = static_cast<int>(proc.stmt_count());
        for (const auto &[addr, block] : proc.blocks) {
            f.edges += static_cast<int>(block.successors().size());
        }
        f.callees = proc.callees();
        f.calls = static_cast<int>(f.callees.size());
        f.shape_hash = degree_sequence_hash(proc);
        index.by_entry[entry] = static_cast<int>(index.procs.size());
        index.procs.push_back(std::move(f));
    }
    return index;
}

std::map<int, int>
bindiff_match(const GraphIndex &Q, const GraphIndex &T)
{
    std::map<int, int> q_to_t;
    std::set<int> used_t;
    auto take = [&](int qi, int ti) {
        q_to_t[qi] = ti;
        used_t.insert(ti);
    };

    // Phase 1: symbol names (dominant when present).
    std::map<std::string, std::vector<int>> t_names;
    for (std::size_t i = 0; i < T.procs.size(); ++i) {
        if (!T.procs[i].name.empty()) {
            t_names[T.procs[i].name].push_back(static_cast<int>(i));
        }
    }
    for (std::size_t i = 0; i < Q.procs.size(); ++i) {
        const auto &name = Q.procs[i].name;
        if (name.empty()) {
            continue;
        }
        const auto it = t_names.find(name);
        if (it != t_names.end() && it->second.size() == 1 &&
            !used_t.contains(it->second[0])) {
            take(static_cast<int>(i), it->second[0]);
        }
    }

    // Phase 2: unique exact structural signatures.
    using Sig = std::tuple<int, int, int, std::uint64_t>;
    auto sig_of = [](const GraphFeatures &f) {
        return Sig{f.blocks, f.edges, f.calls, f.shape_hash};
    };
    std::map<Sig, std::vector<int>> q_sigs, t_sigs;
    for (std::size_t i = 0; i < Q.procs.size(); ++i) {
        if (!q_to_t.contains(static_cast<int>(i))) {
            q_sigs[sig_of(Q.procs[i])].push_back(static_cast<int>(i));
        }
    }
    for (std::size_t i = 0; i < T.procs.size(); ++i) {
        if (!used_t.contains(static_cast<int>(i))) {
            t_sigs[sig_of(T.procs[i])].push_back(static_cast<int>(i));
        }
    }
    for (const auto &[sig, qs] : q_sigs) {
        const auto it = t_sigs.find(sig);
        if (qs.size() == 1 && it != t_sigs.end() &&
            it->second.size() == 1 && !used_t.contains(it->second[0])) {
            take(qs[0], it->second[0]);
        }
    }

    // Phase 3: call-graph propagation from matched pairs. When a matched
    // pair has the same callee count, pair up the k-th callees whose
    // shapes are compatible.
    bool progress = true;
    while (progress) {
        progress = false;
        for (const auto &[qi, ti] : std::map<int, int>(q_to_t)) {
            const auto &qf = Q.procs[static_cast<std::size_t>(qi)];
            const auto &tf = T.procs[static_cast<std::size_t>(ti)];
            if (qf.callees.size() != tf.callees.size()) {
                continue;
            }
            for (std::size_t k = 0; k < qf.callees.size(); ++k) {
                const auto q_it = Q.by_entry.find(qf.callees[k]);
                const auto t_it = T.by_entry.find(tf.callees[k]);
                if (q_it == Q.by_entry.end() ||
                    t_it == T.by_entry.end()) {
                    continue;
                }
                const int cq = q_it->second;
                const int ct = t_it->second;
                if (q_to_t.contains(cq) || used_t.contains(ct)) {
                    continue;
                }
                if (shape_distance(
                        Q.procs[static_cast<std::size_t>(cq)],
                        T.procs[static_cast<std::size_t>(ct)]) < 0.8) {
                    take(cq, ct);
                    progress = true;
                }
            }
        }
    }

    // Phase 4: greedy nearest-shape for the remainder.
    struct Pair
    {
        double distance;
        int qi;
        int ti;
        bool operator<(const Pair &other) const
        {
            return std::tie(distance, qi, ti) <
                   std::tie(other.distance, other.qi, other.ti);
        }
    };
    std::vector<Pair> pairs;
    for (std::size_t i = 0; i < Q.procs.size(); ++i) {
        if (q_to_t.contains(static_cast<int>(i))) {
            continue;
        }
        for (std::size_t j = 0; j < T.procs.size(); ++j) {
            if (used_t.contains(static_cast<int>(j))) {
                continue;
            }
            const double d = shape_distance(Q.procs[i], T.procs[j]);
            if (d < 0.6) {  // similarity threshold
                pairs.push_back(Pair{d, static_cast<int>(i),
                                     static_cast<int>(j)});
            }
        }
    }
    std::sort(pairs.begin(), pairs.end());
    for (const Pair &p : pairs) {
        if (!q_to_t.contains(p.qi) && !used_t.contains(p.ti)) {
            take(p.qi, p.ti);
        }
    }
    return q_to_t;
}

}  // namespace firmup::baseline
