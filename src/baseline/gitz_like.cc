#include "baseline/gitz_like.h"

#include <algorithm>

namespace firmup::baseline {

std::vector<RankedMatch>
gitz_rank(const sim::ExecutableIndex &Q, int qv_index,
          const sim::ExecutableIndex &T,
          const sim::GlobalContext *context)
{
    const auto &query = Q.procs[static_cast<std::size_t>(qv_index)].repr;
    // Procedures sharing no strand score exactly 0 either way, so only
    // the inverted-index candidates need scoring; everything else stays
    // at 0 in index order (preserved by the stable sort below).
    std::vector<RankedMatch> ranked(T.procs.size());
    for (std::size_t i = 0; i < T.procs.size(); ++i) {
        ranked[i].target_index = static_cast<int>(i);
    }
    for (const sim::Candidate &c : sim::shared_candidates(T, query)) {
        const std::size_t i = static_cast<std::size_t>(c.index);
        ranked[i].score =
            context != nullptr
                ? sim::weighted_sim(query, T.procs[i].repr, *context)
                : static_cast<double>(c.sim);
    }
    std::stable_sort(ranked.begin(), ranked.end(),
                     [](const RankedMatch &a, const RankedMatch &b) {
                         return a.score > b.score;
                     });
    return ranked;
}

int
gitz_top1(const sim::ExecutableIndex &Q, int qv_index,
          const sim::ExecutableIndex &T,
          const sim::GlobalContext *context)
{
    const auto ranked = gitz_rank(Q, qv_index, T, context);
    return ranked.empty() ? -1 : ranked.front().target_index;
}

}  // namespace firmup::baseline
