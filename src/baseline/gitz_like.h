/**
 * @file
 * GitZ-like baseline: procedure-centric strand similarity search.
 *
 * GitZ [David et al., PLDI'17] compares a query procedure against a pool
 * of target procedures "while disregarding the origin executable"
 * (paper section 5.3): it ranks all candidates by statistically-weighted
 * shared-strand counts and returns the top-k list. It shares the strand
 * substrate with FirmUp — the difference under test is precisely the
 * absence of executable-level context.
 */
#pragma once

#include <vector>

#include "sim/similarity.h"

namespace firmup::baseline {

/** One ranked candidate. */
struct RankedMatch
{
    int target_index = -1;
    double score = 0.0;
};

/**
 * Rank all procedures of @p T against query @p qv_index of @p Q by
 * (optionally weighted) strand similarity, best first.
 * @param context when non-null, scores are weighted by strand rarity
 *        (GitZ's trained "global context"); otherwise raw Sim is used.
 */
std::vector<RankedMatch> gitz_rank(const sim::ExecutableIndex &Q,
                                   int qv_index,
                                   const sim::ExecutableIndex &T,
                                   const sim::GlobalContext *context);

/** Top-1 convenience wrapper; -1 when T is empty. */
int gitz_top1(const sim::ExecutableIndex &Q, int qv_index,
              const sim::ExecutableIndex &T,
              const sim::GlobalContext *context);

}  // namespace firmup::baseline
