/**
 * @file
 * MIPS32 target: real MIPS-I encodings (plus MIPS32r6 div/mod), stored
 * big-endian, with architectural branch delay slots.
 *
 * Operand convention in MachInst (our convention, independent of the bit
 * layout, which follows the real ISA):
 *  - three-register ops:  rd = rs OP rt
 *  - immediate ops:       rd = rs OP imm   (rt in the encoding)
 *  - shifts by immediate: rd = rs OP imm   (shamt in the encoding)
 *  - Lw/Sw:               rd <-> mem[rs + imm]
 *  - Beq/Bne:             compare rs, rt; `imm` holds the ABSOLUTE target
 *  - J/Jal:               `imm` holds the absolute target
 *  - Jr/Jalr:             target register in rs
 *
 * The delay slot is a property of the *machine*, not the encoding: every
 * branch/jump is followed by one instruction that executes regardless of
 * the branch outcome. The code generator emits either a Nop or a hoisted
 * preceding instruction there (toolchain knob `mips_fill_delay_slot`), and
 * the lifter re-attributes the slot instruction to the branch's block —
 * the exact caveat discussed in the paper, section 3.1.
 */
#pragma once

#include "isa/isa.h"

namespace firmup::isa::mips {

/** MIPS architectural registers. */
enum Reg : MReg {
    Zero = 0, At = 1, V0 = 2, V1 = 3,
    A0 = 4, A1 = 5, A2 = 6, A3 = 7,
    T0 = 8, T1 = 9, T2 = 10, T3 = 11, T4 = 12, T5 = 13, T6 = 14, T7 = 15,
    S0 = 16, S1 = 17, S2 = 18, S3 = 19, S4 = 20, S5 = 21, S6 = 22, S7 = 23,
    T8 = 24, T9 = 25, K0 = 26, K1 = 27,
    Gp = 28, Sp = 29, Fp = 30, Ra = 31,
};

/** Opcodes (values are internal; encodings follow the real ISA). */
enum class Op : std::uint16_t {
    Nop,
    // I-type
    Lui, Ori, Addiu, Slti, Sltiu, Andi, Xori, Lw, Sw, Beq, Bne,
    // R-type
    Addu, Subu, Mul, Div, Mod, Divu, And, Or, Xor,
    Sllv, Srlv, Srav, Slt, Sltu,
    // shift-by-immediate
    Sll, Srl, Sra,
    // jumps
    J, Jal, Jr, Jalr,
};

/** Fixed instruction width. */
inline constexpr int kInstBytes = 4;

const AbiInfo &abi();
int inst_size(const MachInst &inst);
void encode(const MachInst &inst, std::uint64_t addr, ByteBuffer &out);
Result<Decoded> decode(const std::uint8_t *p, std::size_t avail,
                       std::uint64_t addr);
std::string disasm(const MachInst &inst);
const char *reg_name(MReg reg);

/** Convenience constructors used by the code generator. */
MachInst make_rrr(Op op, MReg rd, MReg rs, MReg rt);
MachInst make_ri(Op op, MReg rd, MReg rs, std::int32_t imm);
MachInst make_nop();

/** True for instructions with an architectural delay slot. */
bool has_delay_slot(Op op);

}  // namespace firmup::isa::mips
