#include "isa/isa.h"

#include "isa/arm.h"
#include "isa/mips.h"
#include "isa/ppc.h"
#include "isa/x86.h"

namespace firmup::isa {

const char *
arch_name(Arch arch)
{
    switch (arch) {
      case Arch::Mips32: return "mips32";
      case Arch::Arm32: return "arm32";
      case Arch::Ppc32: return "ppc32";
      case Arch::X86: return "x86";
    }
    return "?";
}

bool
arch_is_big_endian(Arch arch)
{
    return arch == Arch::Mips32 || arch == Arch::Ppc32;
}

const char *
cond_name(Cond cond)
{
    switch (cond) {
      case Cond::EQ: return "eq";
      case Cond::NE: return "ne";
      case Cond::LTS: return "lt";
      case Cond::LES: return "le";
      case Cond::LTU: return "lo";
      case Cond::LEU: return "ls";
    }
    return "?";
}

const Target &
target_for(Arch arch)
{
    static const Target mips_target{Arch::Mips32, &mips::abi(),
                                    mips::inst_size, mips::encode,
                                    mips::decode, mips::disasm,
                                    mips::reg_name};
    static const Target arm_target{Arch::Arm32, &arm::abi(),
                                   arm::inst_size, arm::encode,
                                   arm::decode, arm::disasm,
                                   arm::reg_name};
    static const Target ppc_target{Arch::Ppc32, &ppc::abi(),
                                   ppc::inst_size, ppc::encode,
                                   ppc::decode, ppc::disasm,
                                   ppc::reg_name};
    static const Target x86_target{Arch::X86, &x86::abi(),
                                   x86::inst_size, x86::encode,
                                   x86::decode, x86::disasm,
                                   x86::reg_name};
    switch (arch) {
      case Arch::Mips32: return mips_target;
      case Arch::Arm32: return arm_target;
      case Arch::Ppc32: return ppc_target;
      case Arch::X86: return x86_target;
    }
    FIRMUP_ASSERT(false, "bad arch");
}

}  // namespace firmup::isa
