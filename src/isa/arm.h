/**
 * @file
 * ARM32-like target: little-endian, fixed 32-bit words, a 4-bit condition
 * field, and NZCV-style flags set by explicit compare instructions.
 *
 * The bit layout is a simplified ARM-flavored encoding we define ourselves
 * (documented below); semantics follow ARM idioms: cmp sets the flags,
 * conditional branches and the set<cond> instruction read them, movw/movt
 * build 32-bit constants, bl links into lr, bx lr returns. Deviations from
 * commercial ARM (no barrel shifter operands, conditional execution only
 * on branches/set, a set<cond> instruction standing in for conditional
 * mov) are irrelevant to the reproduction: assembler and disassembler
 * in this repository agree on the language.
 *
 * Word layout: cond[31:28] | op[27:20] | rd[19:16] | rn[15:12] | opnd[11:0]
 *   - register forms: rm in opnd[3:0]
 *   - immediate forms: signed 12-bit immediate in opnd
 *   - movw/movt: imm16 in bits [15:0]
 *   - b/bl: signed 20-bit word offset (relative to the next instruction)
 *
 * MachInst convention: rd = destination, rs = rn, rt = rm, imm as above
 * (branch targets are absolute in `imm`).
 */
#pragma once

#include "isa/isa.h"

namespace firmup::isa::arm {

/** ARM registers (r11 and r12 are reserved as scratch by the backend). */
enum Reg : MReg {
    R0 = 0, R1, R2, R3, R4, R5, R6, R7, R8, R9, R10, R11, R12,
    Sp = 13, Lr = 14, Pc = 15,
};

/** Opcodes. */
enum class Op : std::uint16_t {
    Nop,
    MovReg, MovImm, Movw, Movt,
    Add, AddImm, Sub, SubImm, Mul,
    And, Orr, Eor,
    Lsl, Lsr, Asr, LslImm, LsrImm, AsrImm,
    Sdiv, Srem,
    Cmp, CmpImm,
    Ldr, Str,
    B,       ///< conditional/unconditional branch (cond field)
    Bl, BxLr,
    Set,     ///< rd = (flags satisfy cond) ? 1 : 0
};

inline constexpr int kInstBytes = 4;

const AbiInfo &abi();
int inst_size(const MachInst &inst);
void encode(const MachInst &inst, std::uint64_t addr, ByteBuffer &out);
Result<Decoded> decode(const std::uint8_t *p, std::size_t avail,
                       std::uint64_t addr);
std::string disasm(const MachInst &inst);
const char *reg_name(MReg reg);

}  // namespace firmup::isa::arm
