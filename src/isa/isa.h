/**
 * @file
 * Common definitions shared by the four target ISAs.
 *
 * The paper's corpus spans "MIPS32, ARM32, PPC32, and Intel-x86"
 * (section 1, Main contributions). We implement all four as simplified but
 * genuinely distinct machine languages: MIPS32 uses real MIPS-I/R6
 * encodings with branch delay slots; PPC32 is big-endian with a condition
 * register; ARM32 is little-endian with NZCV-style flags and a condition
 * field; x86 is little-endian, variable-length, two-operand with EFLAGS.
 * Deviations from the commercial ISAs (documented per header) do not matter
 * for the reproduction: both the assembler and the disassembler in this
 * repository speak the same language, and the binary-search problem is
 * unchanged.
 *
 * All ISAs share the MachInst carrier struct; the meaning of its operand
 * fields is per-ISA (each ISA header documents its usage).
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/bytes.h"
#include "support/error.h"

namespace firmup::isa {

/** Target architecture. */
enum class Arch : std::uint8_t { Mips32, Arm32, Ppc32, X86 };

/** Human-readable architecture name. */
const char *arch_name(Arch arch);

/** Instruction/data byte order of the architecture. */
bool arch_is_big_endian(Arch arch);

/** All architectures, in a fixed order (for sweeps and tests). */
inline constexpr Arch kAllArches[] = {Arch::Mips32, Arch::Arm32,
                                      Arch::Ppc32, Arch::X86};

/**
 * Comparison condition, always read as `a <cond> b` over the two values
 * that were most recently compared. Greater-than forms are canonicalized
 * by the compiler into swapped less-than forms, so six conditions suffice.
 */
enum class Cond : std::uint8_t { EQ, NE, LTS, LES, LTU, LEU };

/** Printable condition mnemonic suffix (eq, ne, lt, ...). */
const char *cond_name(Cond cond);

/** Machine register number (per-ISA numbering). */
using MReg = std::uint8_t;

/**
 * A decoded/encodable machine instruction.
 *
 * `op` holds a per-ISA opcode enum value. Operand field meaning is
 * ISA-specific; the symbolic `ref` fields carry unresolved references
 * emitted by the code generator and patched by the linker:
 *  - Block:     imm becomes the address of a block label (branch target)
 *  - Proc:      imm becomes the entry address of a module procedure
 *  - GlobalHi/GlobalLo: upper/lower half of a data-section address
 *  - GlobalAbs: full 32-bit data-section address
 */
struct MachInst
{
    enum class Ref : std::uint8_t {
        None, Block, Proc, ProcHi, ProcLo, GlobalHi, GlobalLo, GlobalAbs,
    };

    std::uint16_t op = 0;
    MReg rd = 0;
    MReg rs = 0;
    MReg rt = 0;
    Cond cond = Cond::EQ;
    std::int64_t imm = 0;

    Ref ref = Ref::None;
    int ref_index = 0;        ///< block id / proc index / global index
    std::int32_t ref_offset = 0;  ///< byte offset added to a global address
};

/** ABI description used by the code generator and the lifters. */
struct AbiInfo
{
    std::vector<MReg> arg_regs;   ///< argument registers (empty: stack args)
    MReg ret_reg = 0;             ///< return-value register
    MReg sp_reg = 0;              ///< stack pointer
    MReg fp_reg = 0;              ///< frame pointer (x86 only; else == sp)
    bool has_link_reg = false;
    MReg link_reg = 0;            ///< return-address register when present
    std::vector<MReg> caller_saved;  ///< allocatable, clobbered by calls
    std::vector<MReg> callee_saved;  ///< allocatable, preserved by calls
    MReg scratch0 = 0;            ///< reserved for spill/selection sequences
    MReg scratch1 = 0;
};

/** Result of decoding one instruction. */
struct Decoded
{
    MachInst inst;
    int size = 0;  ///< bytes consumed
};

/**
 * Per-ISA function table. One instance per architecture; obtained from
 * target_for(). Plain function pointers keep the table trivially copyable
 * and make the ISA boundary explicit.
 */
struct Target
{
    Arch arch;
    const AbiInfo *abi;

    /** Byte size the instruction will encode to (pre-layout). */
    int (*inst_size)(const MachInst &inst);

    /**
     * Append the encoding of @p inst (located at address @p addr, needed
     * for pc-relative fields) to @p out. Refs must be resolved.
     */
    void (*encode)(const MachInst &inst, std::uint64_t addr,
                   ByteBuffer &out);

    /**
     * Decode one instruction at @p p (with @p avail bytes remaining),
     * located at guest address @p addr. Branch/call targets come back as
     * absolute addresses in `imm`.
     */
    Result<Decoded> (*decode)(const std::uint8_t *p, std::size_t avail,
                              std::uint64_t addr);

    /** Render assembly text (for examples and debugging). */
    std::string (*disasm)(const MachInst &inst);

    /** Register name for assembly rendering. */
    const char *(*reg_name)(MReg reg);
};

/** The function table for @p arch. */
const Target &target_for(Arch arch);

}  // namespace firmup::isa
