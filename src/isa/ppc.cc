#include "isa/ppc.h"

#include "support/str.h"

namespace firmup::isa::ppc {

namespace {

constexpr std::uint32_t kNopWord = 24u << 26;  // ori r0, r0, 0

// cr0 bit indexes.
constexpr std::uint32_t kCrLt = 0;
constexpr std::uint32_t kCrGt = 1;
constexpr std::uint32_t kCrEq = 2;

/**
 * Map Cond to (BI, branch-if-true). Signed/unsigned share bit patterns;
 * the preceding cmpw vs cmplw decides signedness (the lifter tracks it).
 */
void
cond_to_bits(Cond cond, std::uint32_t &bi, bool &if_true)
{
    switch (cond) {
      case Cond::EQ: bi = kCrEq; if_true = true; break;
      case Cond::NE: bi = kCrEq; if_true = false; break;
      case Cond::LTS:
      case Cond::LTU: bi = kCrLt; if_true = true; break;
      case Cond::LES:
      case Cond::LEU: bi = kCrGt; if_true = false; break;
    }
}

/** Reverse mapping; always yields the signed variant. */
bool
cond_from_bits(std::uint32_t bi, bool if_true, Cond &out)
{
    if (bi == kCrEq) {
        out = if_true ? Cond::EQ : Cond::NE;
        return true;
    }
    if (bi == kCrLt && if_true) {
        out = Cond::LTS;
        return true;
    }
    if (bi == kCrGt && !if_true) {
        out = Cond::LES;
        return true;
    }
    return false;
}

struct XoSpec
{
    Op op;
    std::uint32_t xo;
    enum class Form { DestRt, DestRa, Cmp } form;
};

constexpr XoSpec kXoSpecs[] = {
    {Op::Add, 266, XoSpec::Form::DestRt},
    {Op::Subf, 40, XoSpec::Form::DestRt},
    {Op::Mullw, 235, XoSpec::Form::DestRt},
    {Op::Divw, 491, XoSpec::Form::DestRt},
    {Op::Divwu, 459, XoSpec::Form::DestRt},
    {Op::Modsw, 779, XoSpec::Form::DestRt},
    {Op::And, 28, XoSpec::Form::DestRa},
    {Op::Or, 444, XoSpec::Form::DestRa},
    {Op::Xor, 316, XoSpec::Form::DestRa},
    {Op::Slw, 24, XoSpec::Form::DestRa},
    {Op::Srw, 536, XoSpec::Form::DestRa},
    {Op::Sraw, 792, XoSpec::Form::DestRa},
    {Op::Cmpw, 0, XoSpec::Form::Cmp},
    {Op::Cmplw, 32, XoSpec::Form::Cmp},
};

std::uint32_t
word_xo(std::uint32_t rt, std::uint32_t ra, std::uint32_t rb,
        std::uint32_t xo)
{
    return (31u << 26) | (rt << 21) | (ra << 16) | (rb << 11) | (xo << 1);
}

std::uint32_t
word_d(std::uint32_t opcd, std::uint32_t rt, std::uint32_t ra,
       std::uint32_t imm16)
{
    return (opcd << 26) | (rt << 21) | (ra << 16) | (imm16 & 0xffff);
}

}  // namespace

const AbiInfo &
abi()
{
    static const AbiInfo info = [] {
        AbiInfo a;
        a.arg_regs = {R3, R4, R5, R6};
        a.ret_reg = R3;
        a.sp_reg = R1;
        a.fp_reg = R1;
        a.has_link_reg = true;
        a.link_reg = 0;  // LR is a special register, not a GPR
        a.caller_saved = {R7, R8, R9, R10};
        a.callee_saved = {R14, R15, R16, R17, R18, R19, R20, R21};
        a.scratch0 = R11;
        a.scratch1 = R12;
        return a;
    }();
    return info;
}

int
inst_size(const MachInst &)
{
    return kInstBytes;
}

void
encode(const MachInst &inst, std::uint64_t addr, ByteBuffer &out)
{
    const auto op = static_cast<Op>(inst.op);
    std::uint32_t word = 0;
    switch (op) {
      case Op::Nop:
        word = kNopWord;
        break;
      case Op::Addi:
        word = word_d(14, inst.rd, inst.rs,
                      static_cast<std::uint32_t>(inst.imm));
        break;
      case Op::Addis:
        word = word_d(15, inst.rd, inst.rs,
                      static_cast<std::uint32_t>(inst.imm));
        break;
      case Op::Ori:
        // ori rA, rS, uimm — dest in the ra field.
        word = word_d(24, inst.rs, inst.rd,
                      static_cast<std::uint32_t>(inst.imm));
        break;
      case Op::Cmpwi:
        word = word_d(11, 0, inst.rs,
                      static_cast<std::uint32_t>(inst.imm));
        break;
      case Op::Lwz:
        word = word_d(32, inst.rd, inst.rs,
                      static_cast<std::uint32_t>(inst.imm));
        break;
      case Op::Stw:
        word = word_d(36, inst.rd, inst.rs,
                      static_cast<std::uint32_t>(inst.imm));
        break;
      case Op::B:
      case Op::Bl: {
        const auto delta =
            (inst.imm - static_cast<std::int64_t>(addr)) >> 2;
        word = (18u << 26) |
               ((static_cast<std::uint32_t>(delta) & 0xffffff) << 2) |
               (op == Op::Bl ? 1u : 0u);
        break;
      }
      case Op::Bc: {
        std::uint32_t bi = 0;
        bool if_true = true;
        cond_to_bits(inst.cond, bi, if_true);
        const std::uint32_t bo = if_true ? 12 : 4;
        const auto delta =
            (inst.imm - static_cast<std::int64_t>(addr)) >> 2;
        word = (16u << 26) | (bo << 21) | (bi << 16) |
               ((static_cast<std::uint32_t>(delta) & 0x3fff) << 2);
        break;
      }
      case Op::Blr:
        word = (19u << 26) | (20u << 21) | (16u << 1);
        break;
      case Op::Mflr:
        word = word_xo(inst.rd, 8, 0, 339);
        break;
      case Op::Mtlr:
        word = word_xo(inst.rs, 8, 0, 467);
        break;
      case Op::Setbc: {
        std::uint32_t bi = 0;
        bool if_true = true;
        cond_to_bits(inst.cond, bi, if_true);
        word = word_xo(inst.rd, bi, if_true ? 0 : 1, 384);
        break;
      }
      default:
        for (const auto &spec : kXoSpecs) {
            if (spec.op != op) {
                continue;
            }
            switch (spec.form) {
              case XoSpec::Form::DestRt:
                if (op == Op::Subf) {
                    // subf rt, ra, rb computes rb - ra; ours is rs - rt.
                    word = word_xo(inst.rd, inst.rt, inst.rs, spec.xo);
                } else {
                    word = word_xo(inst.rd, inst.rs, inst.rt, spec.xo);
                }
                break;
              case XoSpec::Form::DestRa:
                // logical: ra = rs OP rb; dest goes to the ra field.
                word = word_xo(inst.rs, inst.rd, inst.rt, spec.xo);
                break;
              case XoSpec::Form::Cmp:
                word = word_xo(0, inst.rs, inst.rt, spec.xo);
                break;
            }
            append_u32_be(out, word);
            return;
        }
        FIRMUP_ASSERT(false, "unencodable PPC op");
    }
    append_u32_be(out, word);
}

Result<Decoded>
decode(const std::uint8_t *p, std::size_t avail, std::uint64_t addr)
{
    if (avail < 4) {
        return Result<Decoded>::error("ppc: truncated instruction");
    }
    const std::uint32_t word = read_u32_be(p);
    MachInst inst;
    const std::uint32_t opcd = word >> 26;
    const auto rt = static_cast<MReg>((word >> 21) & 31);
    const auto ra = static_cast<MReg>((word >> 16) & 31);
    const auto rb = static_cast<MReg>((word >> 11) & 31);
    const auto simm = static_cast<std::int16_t>(word & 0xffff);

    if (word == kNopWord) {
        inst.op = static_cast<std::uint16_t>(Op::Nop);
        return Decoded{inst, 4};
    }
    switch (opcd) {
      case 14:
      case 15:
        inst.op = static_cast<std::uint16_t>(opcd == 14 ? Op::Addi
                                                        : Op::Addis);
        inst.rd = rt;
        inst.rs = ra;
        inst.imm = simm;
        return Decoded{inst, 4};
      case 24:
        inst.op = static_cast<std::uint16_t>(Op::Ori);
        inst.rd = ra;
        inst.rs = rt;
        inst.imm = word & 0xffff;
        return Decoded{inst, 4};
      case 11:
        inst.op = static_cast<std::uint16_t>(Op::Cmpwi);
        inst.rs = ra;
        inst.imm = simm;
        return Decoded{inst, 4};
      case 32:
      case 36:
        inst.op = static_cast<std::uint16_t>(opcd == 32 ? Op::Lwz
                                                        : Op::Stw);
        inst.rd = rt;
        inst.rs = ra;
        inst.imm = simm;
        return Decoded{inst, 4};
      case 18: {
        inst.op = static_cast<std::uint16_t>((word & 1) != 0 ? Op::Bl
                                                             : Op::B);
        const auto li =
            static_cast<std::int32_t>((word & 0x03fffffc) << 6) >> 6;
        inst.imm = static_cast<std::int64_t>(addr) + li;
        return Decoded{inst, 4};
      }
      case 16: {
        inst.op = static_cast<std::uint16_t>(Op::Bc);
        const std::uint32_t bo = (word >> 21) & 31;
        const std::uint32_t bi = (word >> 16) & 31;
        const bool if_true = bo == 12;
        if (!if_true && bo != 4) {
            return Result<Decoded>::error("ppc: unsupported BO");
        }
        if (!cond_from_bits(bi, if_true, inst.cond)) {
            return Result<Decoded>::error("ppc: unsupported BI");
        }
        const auto bd =
            static_cast<std::int32_t>((word & 0xfffc) << 16) >> 16;
        inst.imm = static_cast<std::int64_t>(addr) + bd;
        return Decoded{inst, 4};
      }
      case 19:
        if (((word >> 1) & 0x3ff) == 16 && ((word >> 21) & 31) == 20) {
            inst.op = static_cast<std::uint16_t>(Op::Blr);
            return Decoded{inst, 4};
        }
        return Result<Decoded>::error("ppc: unsupported opcd-19 form");
      case 31: {
        const std::uint32_t xo = (word >> 1) & 0x3ff;
        if (xo == 339 && ra == 8) {
            inst.op = static_cast<std::uint16_t>(Op::Mflr);
            inst.rd = rt;
            return Decoded{inst, 4};
        }
        if (xo == 467 && ra == 8) {
            inst.op = static_cast<std::uint16_t>(Op::Mtlr);
            inst.rs = rt;
            return Decoded{inst, 4};
        }
        if (xo == 384) {
            inst.op = static_cast<std::uint16_t>(Op::Setbc);
            inst.rd = rt;
            if (!cond_from_bits(ra, rb == 0, inst.cond)) {
                return Result<Decoded>::error("ppc: bad setbc BI");
            }
            return Decoded{inst, 4};
        }
        for (const auto &spec : kXoSpecs) {
            if (spec.xo != xo) {
                continue;
            }
            inst.op = static_cast<std::uint16_t>(spec.op);
            switch (spec.form) {
              case XoSpec::Form::DestRt:
                if (spec.op == Op::Subf) {
                    inst.rd = rt;
                    inst.rs = rb;
                    inst.rt = ra;
                } else {
                    inst.rd = rt;
                    inst.rs = ra;
                    inst.rt = rb;
                }
                break;
              case XoSpec::Form::DestRa:
                inst.rd = ra;
                inst.rs = rt;
                inst.rt = rb;
                break;
              case XoSpec::Form::Cmp:
                inst.rs = ra;
                inst.rt = rb;
                break;
            }
            return Decoded{inst, 4};
        }
        return Result<Decoded>::error("ppc: unknown xo " +
                                      std::to_string(xo));
      }
      default:
        return Result<Decoded>::error("ppc: unknown opcd " +
                                      std::to_string(opcd));
    }
}

const char *
reg_name(MReg reg)
{
    static const char *names[32] = {
        "r0", "r1", "r2", "r3", "r4", "r5", "r6", "r7",
        "r8", "r9", "r10", "r11", "r12", "r13", "r14", "r15",
        "r16", "r17", "r18", "r19", "r20", "r21", "r22", "r23",
        "r24", "r25", "r26", "r27", "r28", "r29", "r30", "r31",
    };
    return reg < 32 ? names[reg] : "?";
}

std::string
disasm(const MachInst &inst)
{
    const auto op = static_cast<Op>(inst.op);
    const char *rd = reg_name(inst.rd);
    const char *rs = reg_name(inst.rs);
    const char *rt = reg_name(inst.rt);
    const long long imm = inst.imm;
    switch (op) {
      case Op::Nop: return "nop";
      case Op::Addi: return strprintf("addi %s, %s, %lld", rd, rs, imm);
      case Op::Addis: return strprintf("addis %s, %s, %lld", rd, rs, imm);
      case Op::Ori: return strprintf("ori %s, %s, 0x%llx", rd, rs, imm);
      case Op::Add: return strprintf("add %s, %s, %s", rd, rs, rt);
      case Op::Subf: return strprintf("subf %s, %s, %s", rd, rt, rs);
      case Op::Mullw: return strprintf("mullw %s, %s, %s", rd, rs, rt);
      case Op::Divw: return strprintf("divw %s, %s, %s", rd, rs, rt);
      case Op::Divwu: return strprintf("divwu %s, %s, %s", rd, rs, rt);
      case Op::Modsw: return strprintf("modsw %s, %s, %s", rd, rs, rt);
      case Op::And: return strprintf("and %s, %s, %s", rd, rs, rt);
      case Op::Or:
        if (inst.rs == inst.rt) {
            return strprintf("mr %s, %s", rd, rs);
        }
        return strprintf("or %s, %s, %s", rd, rs, rt);
      case Op::Xor: return strprintf("xor %s, %s, %s", rd, rs, rt);
      case Op::Slw: return strprintf("slw %s, %s, %s", rd, rs, rt);
      case Op::Srw: return strprintf("srw %s, %s, %s", rd, rs, rt);
      case Op::Sraw: return strprintf("sraw %s, %s, %s", rd, rs, rt);
      case Op::Cmpw: return strprintf("cmpw %s, %s", rs, rt);
      case Op::Cmpwi: return strprintf("cmpwi %s, %lld", rs, imm);
      case Op::Cmplw: return strprintf("cmplw %s, %s", rs, rt);
      case Op::Lwz: return strprintf("lwz %s, %lld(%s)", rd, imm, rs);
      case Op::Stw: return strprintf("stw %s, %lld(%s)", rd, imm, rs);
      case Op::B: return strprintf("b 0x%llx", imm);
      case Op::Bl: return strprintf("bl 0x%llx", imm);
      case Op::Bc:
        return strprintf("b%s 0x%llx", cond_name(inst.cond), imm);
      case Op::Blr: return "blr";
      case Op::Mflr: return strprintf("mflr %s", rd);
      case Op::Mtlr: return strprintf("mtlr %s", rs);
      case Op::Setbc:
        return strprintf("setbc %s, %s", rd, cond_name(inst.cond));
    }
    return "?";
}

}  // namespace firmup::isa::ppc
