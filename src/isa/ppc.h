/**
 * @file
 * PPC32 target: big-endian, fixed 32-bit words, condition register cr0,
 * link register accessed via mflr/mtlr, bc conditional branches.
 *
 * Encodings follow the real PowerPC forms for the supported subset
 * (D-form, X/XO-form, I/B-form); `setbc` borrows the ISA 3.1 instruction
 * of the same name so compare results can be materialized into a GPR.
 * `mods` uses the ISA 3.0 `modsw` extended opcode.
 *
 * MachInst convention:
 *  - XO-form ALU:  rd = rs OP rt        (subf computes rt - rs per ISA,
 *                                        handled by the backend)
 *  - D-form:       rd = rs OP imm
 *  - Lwz/Stw:      rd <-> mem[rs + imm]
 *  - Cmpw/Cmplw:   compare rs with rt into cr0
 *  - Bc:           cond in `cond`, absolute target in `imm`
 *  - B/Bl:         absolute target in `imm`
 *  - Setbc:        rd = cr0 satisfies `cond` ? 1 : 0
 */
#pragma once

#include "isa/isa.h"

namespace firmup::isa::ppc {

/** General-purpose registers r0..r31; r1 is the stack pointer. */
enum Reg : MReg {
    R0 = 0, R1 = 1, R2 = 2, R3 = 3, R4 = 4, R5 = 5, R6 = 6, R7 = 7,
    R8 = 8, R9 = 9, R10 = 10, R11 = 11, R12 = 12, R13 = 13, R14 = 14,
    R15 = 15, R16 = 16, R17 = 17, R18 = 18, R19 = 19, R20 = 20, R21 = 21,
    R22 = 22, R23 = 23, R24 = 24, R25 = 25, R26 = 26, R27 = 27, R28 = 28,
    R29 = 29, R30 = 30, R31 = 31,
};

/** Opcodes. */
enum class Op : std::uint16_t {
    Nop,
    Addi, Addis, Ori,
    Add, Subf, Mullw, Divw, Divwu, Modsw,
    And, Or, Xor, Slw, Srw, Sraw,
    Cmpw, Cmpwi, Cmplw,
    Lwz, Stw,
    B, Bl, Bc, Blr,
    Mflr, Mtlr,
    Setbc,
};

inline constexpr int kInstBytes = 4;

const AbiInfo &abi();
int inst_size(const MachInst &inst);
void encode(const MachInst &inst, std::uint64_t addr, ByteBuffer &out);
Result<Decoded> decode(const std::uint8_t *p, std::size_t avail,
                       std::uint64_t addr);
std::string disasm(const MachInst &inst);
const char *reg_name(MReg reg);

}  // namespace firmup::isa::ppc
