#include "isa/arm.h"

#include "support/str.h"

namespace firmup::isa::arm {

namespace {

constexpr std::uint32_t kCondAl = 14;

/** Our Cond enum <-> ARM condition-field values. */
std::uint32_t
cond_field(Cond cond)
{
    switch (cond) {
      case Cond::EQ: return 0;
      case Cond::NE: return 1;
      case Cond::LTU: return 3;   // CC/LO
      case Cond::LEU: return 9;   // LS
      case Cond::LTS: return 11;  // LT
      case Cond::LES: return 13;  // LE
    }
    return kCondAl;
}

bool
cond_from_field(std::uint32_t field, Cond &out)
{
    switch (field) {
      case 0: out = Cond::EQ; return true;
      case 1: out = Cond::NE; return true;
      case 3: out = Cond::LTU; return true;
      case 9: out = Cond::LEU; return true;
      case 11: out = Cond::LTS; return true;
      case 13: out = Cond::LES; return true;
      default: return false;
    }
}

constexpr std::uint16_t kMaxOp = static_cast<std::uint16_t>(Op::Set);

const char *kRegNames[16] = {
    "r0", "r1", "r2", "r3", "r4", "r5", "r6", "r7",
    "r8", "r9", "r10", "r11", "r12", "sp", "lr", "pc",
};

bool
is_reg_form(Op op)
{
    switch (op) {
      case Op::Add:
      case Op::Sub:
      case Op::Mul:
      case Op::And:
      case Op::Orr:
      case Op::Eor:
      case Op::Lsl:
      case Op::Lsr:
      case Op::Asr:
      case Op::Sdiv:
      case Op::Srem:
        return true;
      default:
        return false;
    }
}

bool
is_imm12_form(Op op)
{
    switch (op) {
      case Op::MovImm:
      case Op::AddImm:
      case Op::SubImm:
      case Op::LslImm:
      case Op::LsrImm:
      case Op::AsrImm:
      case Op::CmpImm:
      case Op::Ldr:
      case Op::Str:
        return true;
      default:
        return false;
    }
}

}  // namespace

const AbiInfo &
abi()
{
    static const AbiInfo info = [] {
        AbiInfo a;
        a.arg_regs = {R0, R1, R2, R3};
        a.ret_reg = R0;
        a.sp_reg = Sp;
        a.fp_reg = Sp;
        a.has_link_reg = true;
        a.link_reg = Lr;
        a.caller_saved = {};  // r0-r3 are args; r12 is scratch
        a.callee_saved = {R4, R5, R6, R7, R8, R9, R10};
        a.scratch0 = R11;
        a.scratch1 = R12;
        return a;
    }();
    return info;
}

int
inst_size(const MachInst &)
{
    return kInstBytes;
}

void
encode(const MachInst &inst, std::uint64_t addr, ByteBuffer &out)
{
    const auto op = static_cast<Op>(inst.op);
    std::uint32_t cond = kCondAl;
    std::uint32_t opnd = 0;
    std::uint32_t rd = inst.rd & 15;
    std::uint32_t rn = inst.rs & 15;

    switch (op) {
      case Op::B:
      case Op::Bl: {
        // Unconditional B uses AL; conditional B encodes Cond.
        if (op == Op::B && inst.rt == 1) {  // rt==1 marks "conditional"
            cond = cond_field(inst.cond);
        }
        const auto delta =
            (inst.imm - (static_cast<std::int64_t>(addr) + 4)) >> 2;
        // Signed 20-bit word offset (the op field occupies [27:20]).
        const std::uint32_t word =
            (cond << 28) | (static_cast<std::uint32_t>(op) << 20) |
            (static_cast<std::uint32_t>(delta) & 0xfffff);
        append_u32_le(out, word);
        return;
      }
      case Op::Set:
        cond = cond_field(inst.cond);
        break;
      case Op::Movw:
      case Op::Movt:
        opnd = static_cast<std::uint32_t>(inst.imm) & 0xffff;
        // imm16 occupies [15:0]; rn field is its upper nibble.
        rn = (opnd >> 12) & 15;
        opnd &= 0xfff;
        break;
      default:
        if (is_reg_form(op) || op == Op::MovReg || op == Op::Cmp) {
            opnd = inst.rt & 15;
            if (op == Op::Cmp) {
                rn = inst.rs & 15;
                rd = 0;
            }
        } else if (is_imm12_form(op)) {
            opnd = static_cast<std::uint32_t>(inst.imm) & 0xfff;
        }
        break;
    }
    const std::uint32_t word = (cond << 28) |
                               (static_cast<std::uint32_t>(op) << 20) |
                               (rd << 16) | (rn << 12) | opnd;
    append_u32_le(out, word);
}

Result<Decoded>
decode(const std::uint8_t *p, std::size_t avail, std::uint64_t addr)
{
    if (avail < 4) {
        return Result<Decoded>::error("arm: truncated instruction");
    }
    const std::uint32_t word = read_u32_le(p);
    const std::uint32_t cond = word >> 28;
    const std::uint32_t op_field = (word >> 20) & 0xff;
    if (op_field > kMaxOp) {
        return Result<Decoded>::error("arm: unknown opcode " +
                                      std::to_string(op_field));
    }
    const auto op = static_cast<Op>(op_field);
    MachInst inst;
    inst.op = static_cast<std::uint16_t>(op_field);
    const auto rd = static_cast<MReg>((word >> 16) & 15);
    const auto rn = static_cast<MReg>((word >> 12) & 15);
    const std::uint32_t opnd = word & 0xfff;

    switch (op) {
      case Op::B:
      case Op::Bl: {
        auto delta =
            static_cast<std::int32_t>((word & 0xfffff) << 12) >> 12;
        inst.imm = static_cast<std::int64_t>(addr) + 4 +
                   (static_cast<std::int64_t>(delta) << 2);
        if (op == Op::B && cond != kCondAl) {
            if (!cond_from_field(cond, inst.cond)) {
                return Result<Decoded>::error("arm: bad condition");
            }
            inst.rt = 1;  // conditional marker
        }
        return Decoded{inst, 4};
      }
      case Op::Set:
        if (!cond_from_field(cond, inst.cond)) {
            return Result<Decoded>::error("arm: bad set condition");
        }
        inst.rd = rd;
        return Decoded{inst, 4};
      case Op::Movw:
      case Op::Movt:
        inst.rd = rd;
        inst.imm = ((word >> 12) & 15) << 12 | opnd;
        return Decoded{inst, 4};
      default:
        if (cond != kCondAl) {
            return Result<Decoded>::error("arm: unexpected condition");
        }
        inst.rd = rd;
        inst.rs = rn;
        if (is_reg_form(op) || op == Op::MovReg || op == Op::Cmp) {
            inst.rt = static_cast<MReg>(opnd & 15);
        } else if (is_imm12_form(op)) {
            inst.imm = static_cast<std::int32_t>(opnd << 20) >> 20;
        }
        if (op == Op::Cmp) {
            inst.rd = 0;
        }
        return Decoded{inst, 4};
    }
}

const char *
reg_name(MReg reg)
{
    return reg < 16 ? kRegNames[reg] : "?";
}

std::string
disasm(const MachInst &inst)
{
    const auto op = static_cast<Op>(inst.op);
    const char *rd = reg_name(inst.rd);
    const char *rn = reg_name(inst.rs);
    const char *rm = reg_name(inst.rt);
    const long long imm = inst.imm;
    switch (op) {
      case Op::Nop: return "nop";
      case Op::MovReg: return strprintf("mov %s, %s", rd, rm);
      case Op::MovImm: return strprintf("mov %s, #%lld", rd, imm);
      case Op::Movw: return strprintf("movw %s, #0x%llx", rd, imm);
      case Op::Movt: return strprintf("movt %s, #0x%llx", rd, imm);
      case Op::Add: return strprintf("add %s, %s, %s", rd, rn, rm);
      case Op::AddImm: return strprintf("add %s, %s, #%lld", rd, rn, imm);
      case Op::Sub: return strprintf("sub %s, %s, %s", rd, rn, rm);
      case Op::SubImm: return strprintf("sub %s, %s, #%lld", rd, rn, imm);
      case Op::Mul: return strprintf("mul %s, %s, %s", rd, rn, rm);
      case Op::And: return strprintf("and %s, %s, %s", rd, rn, rm);
      case Op::Orr: return strprintf("orr %s, %s, %s", rd, rn, rm);
      case Op::Eor: return strprintf("eor %s, %s, %s", rd, rn, rm);
      case Op::Lsl: return strprintf("lsl %s, %s, %s", rd, rn, rm);
      case Op::Lsr: return strprintf("lsr %s, %s, %s", rd, rn, rm);
      case Op::Asr: return strprintf("asr %s, %s, %s", rd, rn, rm);
      case Op::LslImm: return strprintf("lsl %s, %s, #%lld", rd, rn, imm);
      case Op::LsrImm: return strprintf("lsr %s, %s, #%lld", rd, rn, imm);
      case Op::AsrImm: return strprintf("asr %s, %s, #%lld", rd, rn, imm);
      case Op::Sdiv: return strprintf("sdiv %s, %s, %s", rd, rn, rm);
      case Op::Srem: return strprintf("srem %s, %s, %s", rd, rn, rm);
      case Op::Cmp: return strprintf("cmp %s, %s", rn, rm);
      case Op::CmpImm: return strprintf("cmp %s, #%lld", rn, imm);
      case Op::Ldr: return strprintf("ldr %s, [%s, #%lld]", rd, rn, imm);
      case Op::Str: return strprintf("str %s, [%s, #%lld]", rd, rn, imm);
      case Op::B:
        return inst.rt == 1
                   ? strprintf("b%s 0x%llx", cond_name(inst.cond), imm)
                   : strprintf("b 0x%llx", imm);
      case Op::Bl: return strprintf("bl 0x%llx", imm);
      case Op::BxLr: return "bx lr";
      case Op::Set:
        return strprintf("set%s %s", cond_name(inst.cond), rd);
    }
    return "?";
}

}  // namespace firmup::isa::arm
