#include "isa/mips.h"

#include "support/str.h"

namespace firmup::isa::mips {

namespace {

constexpr std::uint32_t kOpSpecial = 0x00;
constexpr std::uint32_t kOpSpecial2 = 0x1c;

struct RSpec
{
    Op op;
    std::uint32_t opcode;  ///< major opcode
    std::uint32_t funct;
    std::uint32_t shamt;   ///< fixed shamt discriminator (R6 div/mod)
};

// Three-register ALU operations, bit layout per the real ISA.
constexpr RSpec kRSpecs[] = {
    {Op::Addu, kOpSpecial, 0x21, 0},
    {Op::Subu, kOpSpecial, 0x23, 0},
    {Op::And, kOpSpecial, 0x24, 0},
    {Op::Or, kOpSpecial, 0x25, 0},
    {Op::Xor, kOpSpecial, 0x26, 0},
    {Op::Slt, kOpSpecial, 0x2a, 0},
    {Op::Sltu, kOpSpecial, 0x2b, 0},
    {Op::Sllv, kOpSpecial, 0x04, 0},
    {Op::Srlv, kOpSpecial, 0x06, 0},
    {Op::Srav, kOpSpecial, 0x07, 0},
    {Op::Mul, kOpSpecial2, 0x02, 0},
    {Op::Div, kOpSpecial, 0x1a, 2},   // MIPS32r6 DIV
    {Op::Mod, kOpSpecial, 0x1a, 3},   // MIPS32r6 MOD
    {Op::Divu, kOpSpecial, 0x1b, 2},  // MIPS32r6 DIVU
};

struct ISpec
{
    Op op;
    std::uint32_t opcode;
};

constexpr ISpec kISpecs[] = {
    {Op::Addiu, 0x09}, {Op::Slti, 0x0a}, {Op::Sltiu, 0x0b},
    {Op::Andi, 0x0c}, {Op::Ori, 0x0d}, {Op::Xori, 0x0e},
    {Op::Lui, 0x0f}, {Op::Lw, 0x23}, {Op::Sw, 0x2b},
    {Op::Beq, 0x04}, {Op::Bne, 0x05},
};

constexpr struct { Op op; std::uint32_t funct; } kShiftSpecs[] = {
    {Op::Sll, 0x00}, {Op::Srl, 0x02}, {Op::Sra, 0x03},
};

const char *kRegNames[32] = {
    "zero", "at", "v0", "v1", "a0", "a1", "a2", "a3",
    "t0", "t1", "t2", "t3", "t4", "t5", "t6", "t7",
    "s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7",
    "t8", "t9", "k0", "k1", "gp", "sp", "fp", "ra",
};

std::uint32_t
r_word(std::uint32_t opcode, std::uint32_t rs, std::uint32_t rt,
       std::uint32_t rd, std::uint32_t shamt, std::uint32_t funct)
{
    return (opcode << 26) | (rs << 21) | (rt << 16) | (rd << 11) |
           (shamt << 6) | funct;
}

std::uint32_t
i_word(std::uint32_t opcode, std::uint32_t rs, std::uint32_t rt,
       std::uint32_t imm16)
{
    return (opcode << 26) | (rs << 21) | (rt << 16) | (imm16 & 0xffff);
}

}  // namespace

const AbiInfo &
abi()
{
    static const AbiInfo info = [] {
        AbiInfo a;
        a.arg_regs = {A0, A1, A2, A3};
        a.ret_reg = V0;
        a.sp_reg = Sp;
        a.fp_reg = Sp;
        a.has_link_reg = true;
        a.link_reg = Ra;
        // $t9 is reserved as the PIC call-target register.
        a.caller_saved = {T0, T1, T2, T3, T4, T5, T6, T7, T8};
        a.callee_saved = {S0, S1, S2, S3, S4, S5, S6, S7};
        a.scratch0 = At;
        a.scratch1 = V1;
        return a;
    }();
    return info;
}

int
inst_size(const MachInst &)
{
    return kInstBytes;
}

bool
has_delay_slot(Op op)
{
    switch (op) {
      case Op::Beq:
      case Op::Bne:
      case Op::J:
      case Op::Jal:
      case Op::Jr:
      case Op::Jalr:
        return true;
      default:
        return false;
    }
}

void
encode(const MachInst &inst, std::uint64_t addr, ByteBuffer &out)
{
    const auto op = static_cast<Op>(inst.op);
    std::uint32_t word = 0;
    switch (op) {
      case Op::Nop:
        word = 0;
        break;
      case Op::Sll:
      case Op::Srl:
      case Op::Sra: {
        std::uint32_t funct = 0;
        for (const auto &spec : kShiftSpecs) {
            if (spec.op == op) {
                funct = spec.funct;
            }
        }
        // sll rd, rt, shamt — value register lives in the rt field.
        word = r_word(kOpSpecial, 0, inst.rs, inst.rd,
                      static_cast<std::uint32_t>(inst.imm) & 31, funct);
        break;
      }
      case Op::Sllv:
      case Op::Srlv:
      case Op::Srav: {
        std::uint32_t funct = 0;
        for (const auto &spec : kRSpecs) {
            if (spec.op == op) {
                funct = spec.funct;
            }
        }
        // sllv rd, rt, rs — value in rt field, amount in rs field; our
        // convention is rd = rs(value) OP rt(amount).
        word = r_word(kOpSpecial, inst.rt, inst.rs, inst.rd, 0, funct);
        break;
      }
      case Op::J:
      case Op::Jal:
        word = ((op == Op::J ? 0x02u : 0x03u) << 26) |
               ((static_cast<std::uint32_t>(inst.imm) >> 2) & 0x3ffffff);
        break;
      case Op::Jr:
        word = r_word(kOpSpecial, inst.rs, 0, 0, 0, 0x08);
        break;
      case Op::Jalr:
        word = r_word(kOpSpecial, inst.rs, 0, Ra, 0, 0x09);
        break;
      case Op::Beq:
      case Op::Bne: {
        const auto target = static_cast<std::int64_t>(inst.imm);
        const auto delta = (target - (static_cast<std::int64_t>(addr) + 4))
                           >> 2;
        word = i_word(op == Op::Beq ? 0x04 : 0x05, inst.rs, inst.rt,
                      static_cast<std::uint32_t>(delta));
        break;
      }
      case Op::Lui:
        word = i_word(0x0f, 0, inst.rd,
                      static_cast<std::uint32_t>(inst.imm));
        break;
      case Op::Lw:
      case Op::Sw:
        // lw rt, imm(rs) — data register in the rt field.
        word = i_word(op == Op::Lw ? 0x23 : 0x2b, inst.rs, inst.rd,
                      static_cast<std::uint32_t>(inst.imm));
        break;
      default: {
        for (const auto &spec : kRSpecs) {
            if (spec.op == op) {
                word = r_word(spec.opcode, inst.rs, inst.rt, inst.rd,
                              spec.shamt, spec.funct);
                append_u32_be(out, word);
                return;
            }
        }
        for (const auto &spec : kISpecs) {
            if (spec.op == op) {
                // op rt, rs, imm — destination in the rt field.
                word = i_word(spec.opcode, inst.rs, inst.rd,
                              static_cast<std::uint32_t>(inst.imm));
                append_u32_be(out, word);
                return;
            }
        }
        FIRMUP_ASSERT(false, "unencodable MIPS op");
      }
    }
    append_u32_be(out, word);
}

Result<Decoded>
decode(const std::uint8_t *p, std::size_t avail, std::uint64_t addr)
{
    if (avail < 4) {
        return Result<Decoded>::error("mips: truncated instruction");
    }
    const std::uint32_t word = read_u32_be(p);
    MachInst inst;
    const std::uint32_t opcode = word >> 26;
    const auto rs = static_cast<MReg>((word >> 21) & 31);
    const auto rt = static_cast<MReg>((word >> 16) & 31);
    const auto rd = static_cast<MReg>((word >> 11) & 31);
    const std::uint32_t shamt = (word >> 6) & 31;
    const std::uint32_t funct = word & 0x3f;
    const auto simm16 = static_cast<std::int16_t>(word & 0xffff);

    if (word == 0) {
        inst.op = static_cast<std::uint16_t>(Op::Nop);
        return Decoded{inst, 4};
    }
    if (opcode == kOpSpecial || opcode == kOpSpecial2) {
        if (opcode == kOpSpecial && funct == 0x08) {
            inst.op = static_cast<std::uint16_t>(Op::Jr);
            inst.rs = rs;
            return Decoded{inst, 4};
        }
        if (opcode == kOpSpecial && funct == 0x09) {
            inst.op = static_cast<std::uint16_t>(Op::Jalr);
            inst.rs = rs;
            inst.rd = rd;
            return Decoded{inst, 4};
        }
        for (const auto &spec : kShiftSpecs) {
            if (opcode == kOpSpecial && funct == spec.funct && rs == 0 &&
                !(spec.op == Op::Sll && word == 0)) {
                inst.op = static_cast<std::uint16_t>(spec.op);
                inst.rd = rd;
                inst.rs = rt;  // value register
                inst.imm = shamt;
                return Decoded{inst, 4};
            }
        }
        for (const auto &spec : kRSpecs) {
            if (opcode == spec.opcode && funct == spec.funct &&
                (spec.funct != 0x1a && spec.funct != 0x1b
                     ? true : shamt == spec.shamt)) {
                inst.op = static_cast<std::uint16_t>(spec.op);
                if (spec.op == Op::Sllv || spec.op == Op::Srlv ||
                    spec.op == Op::Srav) {
                    inst.rd = rd;
                    inst.rs = rt;  // value
                    inst.rt = rs;  // amount
                } else {
                    inst.rd = rd;
                    inst.rs = rs;
                    inst.rt = rt;
                }
                return Decoded{inst, 4};
            }
        }
        return Result<Decoded>::error("mips: unknown SPECIAL funct " +
                                      std::to_string(funct));
    }
    if (opcode == 0x02 || opcode == 0x03) {
        inst.op = static_cast<std::uint16_t>(opcode == 0x02 ? Op::J
                                                            : Op::Jal);
        inst.imm = static_cast<std::int64_t>(
            ((addr + 4) & 0xf0000000ull) | ((word & 0x3ffffff) << 2));
        return Decoded{inst, 4};
    }
    for (const auto &spec : kISpecs) {
        if (opcode != spec.opcode) {
            continue;
        }
        inst.op = static_cast<std::uint16_t>(spec.op);
        switch (spec.op) {
          case Op::Beq:
          case Op::Bne:
            inst.rs = rs;
            inst.rt = rt;
            inst.imm = static_cast<std::int64_t>(addr) + 4 +
                       (static_cast<std::int64_t>(simm16) << 2);
            break;
          case Op::Lui:
            inst.rd = rt;
            inst.imm = word & 0xffff;
            break;
          case Op::Andi:
          case Op::Ori:
          case Op::Xori:
            inst.rd = rt;
            inst.rs = rs;
            inst.imm = word & 0xffff;  // zero-extended
            break;
          default:
            inst.rd = rt;
            inst.rs = rs;
            inst.imm = simm16;
            break;
        }
        return Decoded{inst, 4};
    }
    return Result<Decoded>::error("mips: unknown opcode " +
                                  std::to_string(opcode));
}

const char *
reg_name(MReg reg)
{
    return reg < 32 ? kRegNames[reg] : "?";
}

std::string
disasm(const MachInst &inst)
{
    const auto op = static_cast<Op>(inst.op);
    const char *rd = reg_name(inst.rd);
    const char *rs = reg_name(inst.rs);
    const char *rt = reg_name(inst.rt);
    const long long imm = inst.imm;
    switch (op) {
      case Op::Nop: return "nop";
      case Op::Lui: return strprintf("lui $%s, 0x%llx", rd, imm);
      case Op::Ori: return strprintf("ori $%s, $%s, 0x%llx", rd, rs, imm);
      case Op::Addiu: return strprintf("addiu $%s, $%s, %lld", rd, rs, imm);
      case Op::Slti: return strprintf("slti $%s, $%s, %lld", rd, rs, imm);
      case Op::Sltiu:
        return strprintf("sltiu $%s, $%s, %lld", rd, rs, imm);
      case Op::Andi: return strprintf("andi $%s, $%s, 0x%llx", rd, rs, imm);
      case Op::Xori: return strprintf("xori $%s, $%s, 0x%llx", rd, rs, imm);
      case Op::Lw: return strprintf("lw $%s, %lld($%s)", rd, imm, rs);
      case Op::Sw: return strprintf("sw $%s, %lld($%s)", rd, imm, rs);
      case Op::Beq:
        return strprintf("beq $%s, $%s, 0x%llx", rs, rt, imm);
      case Op::Bne:
        return strprintf("bne $%s, $%s, 0x%llx", rs, rt, imm);
      case Op::Sll: return strprintf("sll $%s, $%s, %lld", rd, rs, imm);
      case Op::Srl: return strprintf("srl $%s, $%s, %lld", rd, rs, imm);
      case Op::Sra: return strprintf("sra $%s, $%s, %lld", rd, rs, imm);
      case Op::J: return strprintf("j 0x%llx", imm);
      case Op::Jal: return strprintf("jal 0x%llx", imm);
      case Op::Jr: return strprintf("jr $%s", rs);
      case Op::Jalr: return strprintf("jalr $%s", rs);
      case Op::Addu: return strprintf("addu $%s, $%s, $%s", rd, rs, rt);
      case Op::Subu: return strprintf("subu $%s, $%s, $%s", rd, rs, rt);
      case Op::Mul: return strprintf("mul $%s, $%s, $%s", rd, rs, rt);
      case Op::Div: return strprintf("div $%s, $%s, $%s", rd, rs, rt);
      case Op::Mod: return strprintf("mod $%s, $%s, $%s", rd, rs, rt);
      case Op::Divu: return strprintf("divu $%s, $%s, $%s", rd, rs, rt);
      case Op::And: return strprintf("and $%s, $%s, $%s", rd, rs, rt);
      case Op::Or: return strprintf("or $%s, $%s, $%s", rd, rs, rt);
      case Op::Xor: return strprintf("xor $%s, $%s, $%s", rd, rs, rt);
      case Op::Sllv: return strprintf("sllv $%s, $%s, $%s", rd, rs, rt);
      case Op::Srlv: return strprintf("srlv $%s, $%s, $%s", rd, rs, rt);
      case Op::Srav: return strprintf("srav $%s, $%s, $%s", rd, rs, rt);
      case Op::Slt: return strprintf("slt $%s, $%s, $%s", rd, rs, rt);
      case Op::Sltu: return strprintf("sltu $%s, $%s, $%s", rd, rs, rt);
    }
    return "?";
}

MachInst
make_rrr(Op op, MReg rd, MReg rs, MReg rt)
{
    MachInst inst;
    inst.op = static_cast<std::uint16_t>(op);
    inst.rd = rd;
    inst.rs = rs;
    inst.rt = rt;
    return inst;
}

MachInst
make_ri(Op op, MReg rd, MReg rs, std::int32_t imm)
{
    MachInst inst;
    inst.op = static_cast<std::uint16_t>(op);
    inst.rd = rd;
    inst.rs = rs;
    inst.imm = imm;
    return inst;
}

MachInst
make_nop()
{
    MachInst inst;
    inst.op = static_cast<std::uint16_t>(Op::Nop);
    return inst;
}

}  // namespace firmup::isa::mips
