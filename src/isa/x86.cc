#include "isa/x86.h"

#include "support/str.h"

namespace firmup::isa::x86 {

namespace {

/**
 * Byte-level opcode assignments. Jcc occupies 0x30..0x35 (one per Cond).
 */
struct Spec
{
    Op op;
    std::uint8_t opcode;
    bool has_mod;   ///< register byte follows
    bool has_imm;   ///< 32-bit immediate follows
};

constexpr Spec kSpecs[] = {
    {Op::MovRR, 0x01, true, false},
    {Op::MovRI, 0x02, true, true},
    {Op::AddRR, 0x03, true, false},
    {Op::SubRR, 0x04, true, false},
    {Op::ImulRR, 0x05, true, false},
    {Op::AndRR, 0x06, true, false},
    {Op::OrRR, 0x07, true, false},
    {Op::XorRR, 0x08, true, false},
    {Op::ShlRR, 0x09, true, false},
    {Op::SarRR, 0x0a, true, false},
    {Op::ShrRR, 0x0b, true, false},
    {Op::IdivRR, 0x0c, true, false},
    {Op::IremRR, 0x0d, true, false},
    {Op::Neg, 0x0e, true, false},
    {Op::Not, 0x0f, true, false},
    {Op::AddRI, 0x10, true, true},
    {Op::SubRI, 0x11, true, true},
    {Op::AndRI, 0x12, true, true},
    {Op::OrRI, 0x13, true, true},
    {Op::XorRI, 0x14, true, true},
    {Op::ImulRI, 0x15, true, true},
    {Op::ShlRI, 0x16, true, true},
    {Op::SarRI, 0x17, true, true},
    {Op::ShrRI, 0x18, true, true},
    {Op::CmpRR, 0x20, true, false},
    {Op::CmpRI, 0x21, true, true},
    // Jcc: 0x30 + static_cast<int>(cond), no mod byte, rel32.
    {Op::Jmp, 0x3f, false, true},
    {Op::Call, 0x40, false, true},
    {Op::Ret, 0x41, false, false},
    {Op::Push, 0x42, true, false},
    {Op::Pop, 0x43, true, false},
    {Op::LoadRM, 0x44, true, true},
    {Op::StoreMR, 0x45, true, true},
    {Op::Lea, 0x46, true, true},
    {Op::Setcc, 0x47, true, false},
    {Op::Nop, 0x50, false, false},
};

const Spec *
spec_for(Op op)
{
    for (const Spec &s : kSpecs) {
        if (s.op == op) {
            return &s;
        }
    }
    return nullptr;
}

const Spec *
spec_for_opcode(std::uint8_t opcode)
{
    for (const Spec &s : kSpecs) {
        if (s.opcode == opcode) {
            return &s;
        }
    }
    return nullptr;
}

bool
is_pc_relative(Op op)
{
    return op == Op::Jcc || op == Op::Jmp || op == Op::Call;
}

const char *kRegNames[8] = {
    "eax", "ecx", "edx", "ebx", "esp", "ebp", "esi", "edi",
};

}  // namespace

const AbiInfo &
abi()
{
    static const AbiInfo info = [] {
        AbiInfo a;
        a.arg_regs = {};  // stack-passed (cdecl)
        a.ret_reg = Eax;
        a.sp_reg = Esp;
        a.fp_reg = Ebp;
        a.has_link_reg = false;
        a.caller_saved = {Edx};
        a.callee_saved = {Ebx, Esi, Edi};
        a.scratch0 = Eax;
        a.scratch1 = Ecx;
        return a;
    }();
    return info;
}

int
inst_size(const MachInst &inst)
{
    const auto op = static_cast<Op>(inst.op);
    if (op == Op::Jcc) {
        return 5;
    }
    const Spec *spec = spec_for(op);
    FIRMUP_ASSERT(spec != nullptr, "x86: unknown op");
    return 1 + (spec->has_mod ? 1 : 0) + (spec->has_imm ? 4 : 0);
}

void
encode(const MachInst &inst, std::uint64_t addr, ByteBuffer &out)
{
    const auto op = static_cast<Op>(inst.op);
    if (op == Op::Jcc) {
        append_u8(out, static_cast<std::uint8_t>(
                           0x30 + static_cast<int>(inst.cond)));
        const auto rel = inst.imm - (static_cast<std::int64_t>(addr) + 5);
        append_u32_le(out, static_cast<std::uint32_t>(rel));
        return;
    }
    const Spec *spec = spec_for(op);
    FIRMUP_ASSERT(spec != nullptr, "x86: unknown op");
    append_u8(out, spec->opcode);
    if (spec->has_mod) {
        std::uint8_t mod = static_cast<std::uint8_t>((inst.rd & 15) << 4);
        if (op == Op::Setcc) {
            mod |= static_cast<std::uint8_t>(inst.cond) & 15;
        } else if (op == Op::LoadRM || op == Op::StoreMR ||
                   op == Op::Lea) {
            mod |= inst.rs & 15;
        } else {
            mod |= inst.rt & 15;
        }
        append_u8(out, mod);
    }
    if (spec->has_imm) {
        std::int64_t value = inst.imm;
        if (is_pc_relative(op)) {
            value -= static_cast<std::int64_t>(addr) + inst_size(inst);
        }
        append_u32_le(out, static_cast<std::uint32_t>(value));
    }
}

Result<Decoded>
decode(const std::uint8_t *p, std::size_t avail, std::uint64_t addr)
{
    if (avail < 1) {
        return Result<Decoded>::error("x86: empty input");
    }
    const std::uint8_t opcode = p[0];
    MachInst inst;

    if (opcode >= 0x30 && opcode <= 0x35) {
        if (avail < 5) {
            return Result<Decoded>::error("x86: truncated jcc");
        }
        inst.op = static_cast<std::uint16_t>(Op::Jcc);
        inst.cond = static_cast<Cond>(opcode - 0x30);
        const auto rel = static_cast<std::int32_t>(read_u32_le(p + 1));
        inst.imm = static_cast<std::int64_t>(addr) + 5 + rel;
        return Decoded{inst, 5};
    }
    const Spec *spec = spec_for_opcode(opcode);
    if (spec == nullptr) {
        return Result<Decoded>::error("x86: unknown opcode " +
                                      std::to_string(opcode));
    }
    const int size = 1 + (spec->has_mod ? 1 : 0) + (spec->has_imm ? 4 : 0);
    if (avail < static_cast<std::size_t>(size)) {
        return Result<Decoded>::error("x86: truncated instruction");
    }
    inst.op = static_cast<std::uint16_t>(spec->op);
    int offset = 1;
    if (spec->has_mod) {
        const std::uint8_t mod = p[offset++];
        inst.rd = static_cast<MReg>(mod >> 4);
        const auto low = static_cast<std::uint8_t>(mod & 15);
        if (spec->op == Op::Setcc) {
            if (low > static_cast<std::uint8_t>(Cond::LEU)) {
                return Result<Decoded>::error("x86: bad setcc cond");
            }
            inst.cond = static_cast<Cond>(low);
        } else if (spec->op == Op::LoadRM || spec->op == Op::StoreMR ||
                   spec->op == Op::Lea) {
            inst.rs = low;
        } else {
            inst.rt = low;
        }
        if (inst.rd > 7 || inst.rs > 7 || inst.rt > 7) {
            return Result<Decoded>::error("x86: bad register");
        }
    }
    if (spec->has_imm) {
        const auto raw = static_cast<std::int32_t>(read_u32_le(p + offset));
        if (is_pc_relative(spec->op)) {
            inst.imm = static_cast<std::int64_t>(addr) + size + raw;
        } else {
            inst.imm = raw;
        }
    }
    return Decoded{inst, size};
}

const char *
reg_name(MReg reg)
{
    return reg < 8 ? kRegNames[reg] : "?";
}

std::string
disasm(const MachInst &inst)
{
    const auto op = static_cast<Op>(inst.op);
    const char *rd = reg_name(inst.rd);
    const char *rs = reg_name(inst.rs);
    const char *rt = reg_name(inst.rt);
    const long long imm = inst.imm;
    switch (op) {
      case Op::MovRR: return strprintf("mov %s, %s", rd, rt);
      case Op::MovRI: return strprintf("mov %s, %lld", rd, imm);
      case Op::AddRR: return strprintf("add %s, %s", rd, rt);
      case Op::SubRR: return strprintf("sub %s, %s", rd, rt);
      case Op::ImulRR: return strprintf("imul %s, %s", rd, rt);
      case Op::AndRR: return strprintf("and %s, %s", rd, rt);
      case Op::OrRR: return strprintf("or %s, %s", rd, rt);
      case Op::XorRR: return strprintf("xor %s, %s", rd, rt);
      case Op::ShlRR: return strprintf("shl %s, %s", rd, rt);
      case Op::SarRR: return strprintf("sar %s, %s", rd, rt);
      case Op::ShrRR: return strprintf("shr %s, %s", rd, rt);
      case Op::IdivRR: return strprintf("idiv %s, %s", rd, rt);
      case Op::IremRR: return strprintf("irem %s, %s", rd, rt);
      case Op::AddRI: return strprintf("add %s, %lld", rd, imm);
      case Op::SubRI: return strprintf("sub %s, %lld", rd, imm);
      case Op::AndRI: return strprintf("and %s, %lld", rd, imm);
      case Op::OrRI: return strprintf("or %s, %lld", rd, imm);
      case Op::XorRI: return strprintf("xor %s, %lld", rd, imm);
      case Op::ImulRI: return strprintf("imul %s, %lld", rd, imm);
      case Op::ShlRI: return strprintf("shl %s, %lld", rd, imm);
      case Op::SarRI: return strprintf("sar %s, %lld", rd, imm);
      case Op::ShrRI: return strprintf("shr %s, %lld", rd, imm);
      case Op::CmpRR: return strprintf("cmp %s, %s", rd, rt);
      case Op::CmpRI: return strprintf("cmp %s, %lld", rd, imm);
      case Op::Jcc:
        return strprintf("j%s 0x%llx", cond_name(inst.cond), imm);
      case Op::Jmp: return strprintf("jmp 0x%llx", imm);
      case Op::Call: return strprintf("call 0x%llx", imm);
      case Op::Ret: return "ret";
      case Op::Push: return strprintf("push %s", rd);
      case Op::Pop: return strprintf("pop %s", rd);
      case Op::LoadRM:
        return strprintf("mov %s, [%s%+lld]", rd, rs, imm);
      case Op::StoreMR:
        return strprintf("mov [%s%+lld], %s", rs, imm, rd);
      case Op::Lea: return strprintf("lea %s, [%s%+lld]", rd, rs, imm);
      case Op::Setcc:
        return strprintf("set%s %s", cond_name(inst.cond), rd);
      case Op::Neg: return strprintf("neg %s", rd);
      case Op::Not: return strprintf("not %s", rd);
      case Op::Nop: return "nop";
    }
    return "?";
}

}  // namespace firmup::isa::x86
