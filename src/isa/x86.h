/**
 * @file
 * x86-like target: little-endian, variable-length (1-6 bytes), two-operand
 * destructive ALU operations, EFLAGS set by cmp and consumed by jcc/setcc,
 * stack-passed arguments (cdecl-style), push/pop and an ebp frame.
 *
 * The byte-level encoding is our own compact scheme (opcode byte, optional
 * mod byte with two register nibbles, optional 32-bit immediate), because
 * the full commercial x86 encoding adds nothing to the reproduction: what
 * matters is that this target is variable-length, two-operand, and
 * flag-based, so its code looks nothing like the three RISC targets.
 *
 * MachInst convention:
 *  - two-operand ALU:  rd OP= rt         (rd is both source and dest)
 *  - MovRI:            rd = imm32
 *  - CmpRR/CmpRI:      compare rd with rt/imm
 *  - Jcc:              cond + absolute target in `imm`
 *  - LoadRM:           rd = mem[rs + imm]
 *  - StoreMR:          mem[rs + imm] = rd
 *  - Lea:              rd = rs + imm
 *  - Setcc:            rd = (flags satisfy cond) ? 1 : 0
 */
#pragma once

#include "isa/isa.h"

namespace firmup::isa::x86 {

/** Registers. */
enum Reg : MReg {
    Eax = 0, Ecx = 1, Edx = 2, Ebx = 3,
    Esp = 4, Ebp = 5, Esi = 6, Edi = 7,
};

/** Opcodes. */
enum class Op : std::uint16_t {
    MovRR, MovRI,
    AddRR, SubRR, ImulRR, AndRR, OrRR, XorRR, ShlRR, SarRR, ShrRR,
    IdivRR, IremRR,
    AddRI, SubRI, AndRI, OrRI, XorRI, ImulRI, ShlRI, SarRI, ShrRI,
    CmpRR, CmpRI,
    Jcc, Jmp, Call, Ret,
    Push, Pop,
    LoadRM, StoreMR, Lea,
    Setcc, Neg, Not, Nop,
};

const AbiInfo &abi();
int inst_size(const MachInst &inst);
void encode(const MachInst &inst, std::uint64_t addr, ByteBuffer &out);
Result<Decoded> decode(const std::uint8_t *p, std::size_t avail,
                       std::uint64_t addr);
std::string disasm(const MachInst &inst);
const char *reg_name(MReg reg);

}  // namespace firmup::isa::x86
