/**
 * @file
 * FWELF — the executable container used throughout the corpus.
 *
 * Plays the role ELF plays in the paper: it carries the text and data
 * sections, the entry point, and an optional symbol table that stripping
 * removes (exported symbols may survive stripping, exactly like dynamic
 * symbols of shared libraries — the paper's section 5.3 "exported
 * procedures" group relies on this).
 *
 * The container also reproduces the paper's header-corruption caveat
 * (section 3.1: corrupt ELF headers / wrong ELFCLASS): the header carries
 * a *declared* architecture which vendors sometimes get wrong; consumers
 * must treat it as a hint and sniff the real ISA from the bytes (the
 * lifter implements this probing).
 *
 * Layout (all little-endian, independent of target endianness):
 *   magic "FWEX" | version u16 | declared_arch u8 | flags u8
 *   entry u32 | text_addr u32 | text_size u32 | data_addr u32
 *   data_size u32 | sym_count u32
 *   symbols: { addr u32, exported u8, name_len u16, name bytes }*
 *   text bytes | data bytes
 */
#pragma once

#include <string>
#include <vector>

#include "isa/isa.h"
#include "support/bytes.h"
#include "support/error.h"

namespace firmup::loader {

/** A symbol-table entry (procedure name and entry address). */
struct Symbol
{
    std::uint32_t addr = 0;
    bool exported = false;
    std::string name;
};

/** A parsed (or to-be-written) executable. */
struct Executable
{
    std::string name;              ///< file name within the firmware image
    isa::Arch arch = isa::Arch::Mips32;      ///< actual ISA of the bytes
    isa::Arch declared_arch = isa::Arch::Mips32;  ///< header claim
    bool stripped = false;
    std::uint32_t entry = 0;
    std::uint32_t text_addr = 0;
    std::uint32_t data_addr = 0;
    ByteBuffer text;
    ByteBuffer data;
    std::vector<Symbol> symbols;

    /** True when @p addr falls inside the text section. */
    bool in_text(std::uint64_t addr) const
    {
        return addr >= text_addr && addr < text_addr + text.size();
    }
    /** True when @p addr falls inside the data section. */
    bool in_data(std::uint64_t addr) const
    {
        return addr >= data_addr && addr < data_addr + data.size();
    }

    /** Symbol name at @p addr, or "" when absent. */
    std::string symbol_at(std::uint32_t addr) const;
};

/** FWELF magic bytes. */
inline constexpr std::uint8_t kMagic[4] = {'F', 'W', 'E', 'X'};

/** Serialize @p exe. The written header declares `declared_arch`. */
ByteBuffer write_fwelf(const Executable &exe);

/**
 * Parse an FWELF image. `arch` is initialized from the header's declared
 * arch — callers that care about correctness must sniff (see
 * lifter::detect_arch) because vendor headers lie.
 */
Result<Executable> parse_fwelf(const std::uint8_t *bytes, std::size_t size);

/** Convenience overload. */
Result<Executable> parse_fwelf(const ByteBuffer &bytes);

/**
 * Remove symbols. When @p keep_exported is true, exported symbols survive
 * (shared-library style); otherwise the table is emptied.
 */
void strip_executable(Executable &exe, bool keep_exported);

}  // namespace firmup::loader
