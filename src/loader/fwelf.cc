#include "loader/fwelf.h"

#include <algorithm>
#include <cstring>

namespace firmup::loader {

namespace {

constexpr std::uint16_t kVersion = 1;
constexpr std::uint8_t kFlagStripped = 0x01;

}  // namespace

std::string
Executable::symbol_at(std::uint32_t addr) const
{
    for (const Symbol &sym : symbols) {
        if (sym.addr == addr) {
            return sym.name;
        }
    }
    return "";
}

ByteBuffer
write_fwelf(const Executable &exe)
{
    ByteBuffer out;
    for (std::uint8_t byte : kMagic) {
        out.push_back(byte);
    }
    append_u16_le(out, kVersion);
    append_u8(out, static_cast<std::uint8_t>(exe.declared_arch));
    append_u8(out, exe.stripped ? kFlagStripped : 0);
    append_u32_le(out, exe.entry);
    append_u32_le(out, exe.text_addr);
    append_u32_le(out, static_cast<std::uint32_t>(exe.text.size()));
    append_u32_le(out, exe.data_addr);
    append_u32_le(out, static_cast<std::uint32_t>(exe.data.size()));
    append_u32_le(out, static_cast<std::uint32_t>(exe.symbols.size()));
    for (const Symbol &sym : exe.symbols) {
        append_u32_le(out, sym.addr);
        append_u8(out, sym.exported ? 1 : 0);
        append_u16_le(out, static_cast<std::uint16_t>(sym.name.size()));
        out.insert(out.end(), sym.name.begin(), sym.name.end());
    }
    out.insert(out.end(), exe.text.begin(), exe.text.end());
    out.insert(out.end(), exe.data.begin(), exe.data.end());
    return out;
}

Result<Executable>
parse_fwelf(const std::uint8_t *bytes, std::size_t size)
{
    constexpr std::size_t kHeaderSize = 4 + 2 + 1 + 1 + 4 * 6;
    if (size < kHeaderSize) {
        return Result<Executable>::error(
            ErrorCode::TruncatedMember, "fwelf: too small");
    }
    if (std::memcmp(bytes, kMagic, 4) != 0) {
        return Result<Executable>::error(
            ErrorCode::MalformedContainer, "fwelf: bad magic");
    }
    const std::uint16_t version = read_u16_le(bytes + 4);
    if (version != kVersion) {
        return Result<Executable>::error(
            ErrorCode::MalformedContainer,
            "fwelf: unsupported version");
    }
    Executable exe;
    const std::uint8_t arch_byte = bytes[6];
    if (arch_byte > static_cast<std::uint8_t>(isa::Arch::X86)) {
        return Result<Executable>::error(
            ErrorCode::MalformedContainer, "fwelf: bad arch byte");
    }
    exe.declared_arch = static_cast<isa::Arch>(arch_byte);
    exe.arch = exe.declared_arch;
    exe.stripped = (bytes[7] & kFlagStripped) != 0;
    exe.entry = read_u32_le(bytes + 8);
    exe.text_addr = read_u32_le(bytes + 12);
    const std::uint32_t text_size = read_u32_le(bytes + 16);
    exe.data_addr = read_u32_le(bytes + 20);
    const std::uint32_t data_size = read_u32_le(bytes + 24);
    const std::uint32_t sym_count = read_u32_le(bytes + 28);

    std::size_t pos = kHeaderSize;
    for (std::uint32_t i = 0; i < sym_count; ++i) {
        if (pos + 7 > size) {
            return Result<Executable>::error(
                ErrorCode::TruncatedMember,
                "fwelf: truncated symtab");
        }
        Symbol sym;
        sym.addr = read_u32_le(bytes + pos);
        sym.exported = bytes[pos + 4] != 0;
        const std::uint16_t name_len = read_u16_le(bytes + pos + 5);
        pos += 7;
        if (pos + name_len > size) {
            return Result<Executable>::error(
                ErrorCode::TruncatedMember,
                "fwelf: truncated sym name");
        }
        sym.name.assign(reinterpret_cast<const char *>(bytes + pos),
                        name_len);
        pos += name_len;
        exe.symbols.push_back(std::move(sym));
    }
    if (pos + text_size + data_size > size) {
        return Result<Executable>::error(
            ErrorCode::TruncatedMember, "fwelf: truncated sections");
    }
    exe.text.assign(bytes + pos, bytes + pos + text_size);
    pos += text_size;
    exe.data.assign(bytes + pos, bytes + pos + data_size);
    return exe;
}

Result<Executable>
parse_fwelf(const ByteBuffer &bytes)
{
    return parse_fwelf(bytes.data(), bytes.size());
}

void
strip_executable(Executable &exe, bool keep_exported)
{
    if (keep_exported) {
        std::erase_if(exe.symbols,
                      [](const Symbol &sym) { return !sym.exported; });
    } else {
        exe.symbols.clear();
    }
    exe.stripped = true;
}

}  // namespace firmup::loader
