#include "lang/generate.h"

#include <functional>

#include "support/error.h"

namespace firmup::lang {

namespace {

/** Recursive generator holding shared state for one procedure. */
class ProcGen
{
  public:
    ProcGen(Rng &rng, const GenOptions &options)
        : rng_(rng), opt_(options)
    {
    }

    ProcedureAst
    run(const std::string &name)
    {
        ProcedureAst p;
        p.name = name;
        p.num_params = opt_.num_params;
        num_locals_ = opt_.force_num_locals > 0
                          ? opt_.force_num_locals
                          : static_cast<int>(rng_.range(2, 5));
        p.num_locals = num_locals_;

        const int n = static_cast<int>(
            rng_.range(opt_.min_stmts, opt_.max_stmts));
        for (int i = 0; i < n; ++i) {
            // Real procedures branch: force a guard and a loop into
            // every body so no procedure degenerates to straight-line
            // code whose strands are dominated by frame traffic.
            if (i == 1) {
                p.body.push_back(gen_if(0));
            } else if (i == n / 2 + 1) {
                p.body.push_back(opt_.allow_loops ? gen_while(0)
                                                  : gen_if(0));
            } else if (i == n / 3 + 1 && opt_.num_globals > 0) {
                // A distinctive global store: stores survive dead-code
                // elimination and carry procedure-specific value chains.
                p.body.push_back(Stmt::store_global(
                    static_cast<int>(rng_.index(opt_.num_globals)),
                    gen_index_expr(), gen_expr(0)));
            } else {
                p.body.push_back(gen_stmt(0));
            }
        }
        // Return a combination of the locals so the state threaded
        // through the body stays live under optimization — real
        // procedures rarely compute values nobody consumes.
        ExprPtr result = gen_expr(1);
        for (int v = 0; v < num_locals_; ++v) {
            result = Expr::bin(v % 2 == 0 ? BinOp::Add : BinOp::Xor,
                               std::move(result), Expr::local(v));
        }
        p.body.push_back(Stmt::ret(std::move(result)));
        return p;
    }

  private:
    ExprPtr
    gen_leaf()
    {
        switch (rng_.index(4)) {
          case 0:
            // Half the constants come from the package's shared
            // vocabulary; the rest are distinctive magic numbers (like
            // 0x1F in the paper's Fig. 1 snippet), occasionally large to
            // exercise hi/lo materialization sequences.
            if (opt_.const_pool != nullptr && !opt_.const_pool->empty() &&
                rng_.chance(1, 2)) {
                return Expr::constant(rng_.pick(*opt_.const_pool));
            }
            if (rng_.chance(1, 5)) {
                return Expr::constant(static_cast<std::int32_t>(
                    rng_.range(0x10000, 0x100000)));
            }
            return Expr::constant(
                static_cast<std::int32_t>(rng_.range(-64, 4096)));
          case 1:
            if (opt_.num_params > 0) {
                return Expr::param(
                    static_cast<int>(rng_.index(opt_.num_params)));
            }
            [[fallthrough]];
          case 2:
            return Expr::local(static_cast<int>(rng_.index(num_locals_)));
          default:
            if (opt_.num_globals > 0) {
                return Expr::load_global(
                    static_cast<int>(rng_.index(opt_.num_globals)),
                    gen_index_expr());
            }
            return Expr::local(static_cast<int>(rng_.index(num_locals_)));
        }
    }

    /** Small non-negative index expression for global array accesses. */
    ExprPtr
    gen_index_expr()
    {
        if (rng_.chance(1, 2)) {
            return Expr::constant(
                static_cast<std::int32_t>(rng_.range(0, 7)));
        }
        return Expr::bin(BinOp::And,
                         Expr::local(static_cast<int>(
                             rng_.index(num_locals_))),
                         Expr::constant(7));
    }

    BinOp
    gen_arith_op()
    {
        static constexpr BinOp ops[] = {
            BinOp::Add, BinOp::Sub, BinOp::Mul, BinOp::And, BinOp::Or,
            BinOp::Xor, BinOp::Shl, BinOp::Shr, BinOp::Add, BinOp::Sub,
        };
        return ops[rng_.index(std::size(ops))];
    }

    BinOp
    gen_cmp_op()
    {
        static constexpr BinOp ops[] = {
            BinOp::Eq, BinOp::Ne, BinOp::Lt, BinOp::Le, BinOp::Gt,
            BinOp::Ge,
        };
        return ops[rng_.index(std::size(ops))];
    }

    ExprPtr
    gen_expr(int depth)
    {
        if (depth >= opt_.max_expr_depth || rng_.chance(1, 3)) {
            return gen_leaf();
        }
        if (!opt_.callable.empty() && rng_.chance(1, 6)) {
            const Callee &callee = rng_.pick(opt_.callable);
            std::vector<ExprPtr> args;
            for (int i = 0; i < callee.num_params; ++i) {
                args.push_back(gen_expr(depth + 1));
            }
            return Expr::call(callee.name, std::move(args));
        }
        return Expr::bin(gen_arith_op(), gen_expr(depth + 1),
                         gen_expr(depth + 1));
    }

    ExprPtr
    gen_cond()
    {
        return Expr::bin(gen_cmp_op(), gen_expr(1), gen_expr(2));
    }

    std::vector<StmtPtr>
    gen_body(int depth, int min_stmts, int max_stmts)
    {
        std::vector<StmtPtr> body;
        const int n = static_cast<int>(rng_.range(min_stmts, max_stmts));
        for (int i = 0; i < n; ++i) {
            body.push_back(gen_stmt(depth));
        }
        return body;
    }

    StmtPtr
    gen_stmt(int depth)
    {
        if (depth == 0 && opt_.idiom_pool != nullptr &&
            !opt_.idiom_pool->empty() &&
            rng_.chance(opt_.idiom_percent, 100)) {
            return rng_.pick(*opt_.idiom_pool)->clone();
        }
        const bool allow_nesting = depth < opt_.max_depth;
        switch (rng_.index(allow_nesting ? 6 : 4)) {
          case 0: {
            // Accumulator-style update keeps dataflow chains alive
            // across the body (v = v OP expr).
            const int v = static_cast<int>(rng_.index(num_locals_));
            return Stmt::assign_local(
                v, Expr::bin(gen_arith_op(), Expr::local(v),
                             gen_expr(1)));
          }
          case 1:
            return Stmt::assign_local(
                static_cast<int>(rng_.index(num_locals_)), gen_expr(0));
          case 2:
            if (opt_.num_globals > 0) {
                return Stmt::store_global(
                    static_cast<int>(rng_.index(opt_.num_globals)),
                    gen_index_expr(), gen_expr(1));
            }
            [[fallthrough]];
          case 3:
            if (!opt_.callable.empty()) {
                const Callee &callee = rng_.pick(opt_.callable);
                std::vector<ExprPtr> args;
                for (int i = 0; i < callee.num_params; ++i) {
                    args.push_back(gen_expr(1));
                }
                return Stmt::expr_stmt(
                    Expr::call(callee.name, std::move(args)));
            }
            return Stmt::assign_local(
                static_cast<int>(rng_.index(num_locals_)), gen_expr(0));
          case 4:
            return gen_if(depth);
          default:
            return opt_.allow_loops ? gen_while(depth) : gen_if(depth);
        }
    }

    StmtPtr
    gen_if(int depth)
    {
        std::vector<StmtPtr> else_body;
        if (rng_.chance(1, 3)) {
            else_body = gen_body(depth + 1, 1, 3);
        }
        return Stmt::if_stmt(gen_cond(), gen_body(depth + 1, 1, 4),
                             std::move(else_body));
    }

    StmtPtr
    gen_while(int depth)
    {
        // Canonical bounded loop: while (v < K) { ...; v = v + 1; }
        const int v = static_cast<int>(rng_.index(num_locals_));
        const auto bound = static_cast<std::int32_t>(rng_.range(2, 64));
        std::vector<StmtPtr> body = gen_body(depth + 1, 1, 3);
        body.push_back(Stmt::assign_local(
            v, Expr::bin(BinOp::Add, Expr::local(v), Expr::constant(1))));
        return Stmt::while_stmt(
            Expr::bin(BinOp::Lt, Expr::local(v), Expr::constant(bound)),
            std::move(body));
    }

    Rng &rng_;
    const GenOptions &opt_;
    int num_locals_ = 2;
};

/** Collect mutable pointers to all statements, recursively. */
void
collect_stmts(std::vector<StmtPtr> &body, std::vector<Stmt *> &out)
{
    for (StmtPtr &s : body) {
        out.push_back(s.get());
        collect_stmts(s->then_body, out);
        collect_stmts(s->else_body, out);
    }
}

/** Collect mutable pointers to all expressions in a statement subtree. */
void
collect_exprs(Expr *e, std::vector<Expr *> &out)
{
    if (e == nullptr) {
        return;
    }
    out.push_back(e);
    collect_exprs(e->a.get(), out);
    collect_exprs(e->b.get(), out);
    for (ExprPtr &arg : e->args) {
        collect_exprs(arg.get(), out);
    }
}

void
collect_all_exprs(std::vector<StmtPtr> &body, std::vector<Expr *> &out)
{
    std::vector<Stmt *> stmts;
    collect_stmts(body, stmts);
    for (Stmt *s : stmts) {
        collect_exprs(s->expr.get(), out);
        collect_exprs(s->cond.get(), out);
        collect_exprs(s->addr.get(), out);
    }
}

}  // namespace

ProcedureAst
generate_procedure(Rng &rng, const std::string &name,
                   const GenOptions &options)
{
    ProcGen gen(rng, options);
    return gen.run(name);
}

void
mutate_procedure(Rng &rng, ProcedureAst &proc, int count)
{
    for (int round = 0; round < count; ++round) {
        std::vector<Expr *> exprs;
        collect_all_exprs(proc.body, exprs);
        switch (rng.index(5)) {
          case 0: {  // tweak a constant
            std::vector<Expr *> consts;
            for (Expr *e : exprs) {
                if (e->kind == Expr::Kind::Const) {
                    consts.push_back(e);
                }
            }
            if (!consts.empty()) {
                Expr *e = rng.pick(consts);
                e->value += static_cast<std::int32_t>(rng.range(1, 9));
            }
            break;
          }
          case 1: {  // swap an arithmetic operator
            std::vector<Expr *> bins;
            for (Expr *e : exprs) {
                if (e->kind == Expr::Kind::Bin) {
                    bins.push_back(e);
                }
            }
            if (!bins.empty()) {
                Expr *e = rng.pick(bins);
                static constexpr BinOp swaps[] = {
                    BinOp::Add, BinOp::Sub, BinOp::Xor, BinOp::Or,
                };
                e->op = swaps[rng.index(std::size(swaps))];
            }
            break;
          }
          case 2: {  // insert a fresh assignment at top level
            const int local = proc.num_locals > 0
                ? static_cast<int>(rng.index(proc.num_locals)) : 0;
            auto rhs = Expr::bin(
                BinOp::Add, Expr::local(local),
                Expr::constant(static_cast<std::int32_t>(
                    rng.range(1, 255))));
            const std::size_t at = rng.index(proc.body.size());
            proc.body.insert(
                proc.body.begin() + static_cast<std::ptrdiff_t>(at),
                Stmt::assign_local(local, std::move(rhs)));
            break;
          }
          case 3: {  // delete a non-Return top-level statement
            std::vector<std::size_t> candidates;
            for (std::size_t i = 0; i < proc.body.size(); ++i) {
                if (proc.body[i]->kind != Stmt::Kind::Return) {
                    candidates.push_back(i);
                }
            }
            if (candidates.size() > 2) {
                proc.body.erase(
                    proc.body.begin() +
                    static_cast<std::ptrdiff_t>(rng.pick(candidates)));
            }
            break;
          }
          default: {  // wrap a top-level statement in a guard
            std::vector<std::size_t> candidates;
            for (std::size_t i = 0; i < proc.body.size(); ++i) {
                if (proc.body[i]->kind != Stmt::Kind::Return) {
                    candidates.push_back(i);
                }
            }
            if (!candidates.empty()) {
                const std::size_t at = rng.pick(candidates);
                auto cond = Expr::bin(
                    BinOp::Ne,
                    Expr::local(proc.num_locals > 0
                                ? static_cast<int>(
                                      rng.index(proc.num_locals)) : 0),
                    Expr::constant(static_cast<std::int32_t>(
                        rng.range(0, 16))));
                std::vector<StmtPtr> then_body;
                then_body.push_back(std::move(proc.body[at]));
                proc.body[at] = Stmt::if_stmt(std::move(cond),
                                              std::move(then_body), {});
            }
            break;
          }
        }
    }
}

namespace {

std::size_t
count_body(const std::vector<StmtPtr> &body)
{
    std::size_t n = 0;
    for (const StmtPtr &s : body) {
        n += 1 + count_body(s->then_body) + count_body(s->else_body);
    }
    return n;
}

}  // namespace

std::size_t
stmt_count(const ProcedureAst &proc)
{
    return count_body(proc.body);
}

std::vector<StmtPtr>
generate_idiom_pool(Rng &rng, int count, int num_globals)
{
    GenOptions options;
    options.num_params = 0;
    options.num_globals = num_globals;
    options.force_num_locals = 2;  // every procedure has >= 2 locals
    options.max_depth = 1;
    options.min_stmts = count;
    options.max_stmts = count;
    ProcedureAst pool_proc = generate_procedure(rng, "__pool", options);
    pool_proc.body.pop_back();  // drop the synthetic return
    return std::move(pool_proc.body);
}

}  // namespace firmup::lang
