/**
 * @file
 * Deterministic synthetic-procedure generation and version mutation.
 *
 * Procedure bodies are grown from a seeded Rng: given the same seed and
 * options, generation is bit-reproducible. Each generated procedure embeds
 * distinctive magic constants and shapes drawn from its own stream, so two
 * different procedures share few strands while two compilations of the same
 * procedure share many — the property the whole evaluation rests on.
 *
 * Version skew (wget 1.12 vs 1.15 in the paper, section 5.2) is modeled by
 * mutate_procedure(): small seeded edits — constant tweaks, operator swaps,
 * statement insertion/deletion, guard wrapping — applied cumulatively from
 * one version to the next.
 */
#pragma once

#include <string>
#include <vector>

#include "lang/ast.h"
#include "support/rng.h"

namespace firmup::lang {

/** A callable procedure visible to the generator (name and arity). */
struct Callee
{
    std::string name;
    int num_params = 0;
};

/** Knobs controlling procedure generation. */
struct GenOptions
{
    int num_params = 2;
    int min_stmts = 7;        ///< top-level statements
    int max_stmts = 18;
    int max_depth = 3;        ///< statement nesting
    int max_expr_depth = 3;
    int num_globals = 4;      ///< size of the referencable global pool
    int force_num_locals = 0; ///< fixed local count (0 = seeded choice)
    /**
     * Allow while loops. Generated loop bodies may reassign their own
     * counter, so termination is not guaranteed — differential-execution
     * tests disable loops to keep every run finite.
     */
    bool allow_loops = true;
    std::vector<Callee> callable;  ///< procedures call expressions may target
    /**
     * Shared idiom pool: statement templates reused across the
     * procedures of one package, the way real codebases repeat logging,
     * string and buffer-handling patterns. Cloned statements make
     * same-package procedures partially similar — the collision source
     * that the back-and-forth game exists to disambiguate.
     */
    const std::vector<StmtPtr> *idiom_pool = nullptr;
    std::uint32_t idiom_percent = 0;  ///< chance per top-level statement
    /**
     * Shared constant pool (buffer sizes, flag masks, error codes...):
     * real packages reuse a small vocabulary of constants, which makes
     * strands collide across procedures in a structured way.
     */
    const std::vector<std::int32_t> *const_pool = nullptr;
};

/**
 * Generate @p count statements over 2 locals / no params, suitable as a
 * package-wide idiom pool.
 */
std::vector<StmtPtr> generate_idiom_pool(Rng &rng, int count,
                                         int num_globals);

/** Generate a procedure body from @p rng. Deterministic in (rng, options). */
ProcedureAst generate_procedure(Rng &rng, const std::string &name,
                                const GenOptions &options);

/**
 * Apply @p count seeded mutations to @p proc in place.
 * Mutations preserve well-formedness (arities, indexes) but deliberately
 * change semantics, the way source patches between versions do.
 */
void mutate_procedure(Rng &rng, ProcedureAst &proc, int count);

/** Count AST statements (recursively) — used by tests and size heuristics. */
std::size_t stmt_count(const ProcedureAst &proc);

}  // namespace firmup::lang
