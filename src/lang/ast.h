/**
 * @file
 * Source-language AST for the synthetic package corpus.
 *
 * The paper evaluates on real C packages (wget, vsftpd, libcurl, ...)
 * compiled by unknown vendor toolchains. We reproduce that environment with
 * a small C-like language: 32-bit integers, global word arrays, procedures
 * with parameters/locals, structured control flow, and calls. Procedures are
 * generated deterministically from seeds (see generate.h) so that the same
 * "source" can be compiled by different toolchain profiles to different
 * ISAs, giving ground-truth similarity labels.
 */
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace firmup::lang {

/** Binary operators of the source language. */
enum class BinOp : std::uint8_t {
    Add, Sub, Mul, Div, Rem,
    And, Or, Xor, Shl, Shr,
    Eq, Ne, Lt, Le, Gt, Ge,   ///< signed comparisons, yield 0/1
};

/** Name of a source-level operator (for pretty-printing). */
const char *binop_token(BinOp op);

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

/** An expression node. */
struct Expr
{
    enum class Kind : std::uint8_t {
        Const,       ///< 32-bit literal (`value`)
        Param,       ///< procedure parameter (`index`)
        Local,       ///< local variable (`index`)
        LoadGlobal,  ///< global_array[`index`][ a ]
        Bin,         ///< a `op` b
        Call,        ///< callee_name(args...)
    };

    Kind kind;
    std::int32_t value = 0;   ///< Const literal
    int index = 0;            ///< Param/Local/LoadGlobal index
    BinOp op = BinOp::Add;
    ExprPtr a, b;             ///< operands (Bin), index expr (LoadGlobal)
    std::string callee;       ///< Call target (resolved by the compiler)
    std::vector<ExprPtr> args;

    static ExprPtr constant(std::int32_t v);
    static ExprPtr param(int index);
    static ExprPtr local(int index);
    static ExprPtr load_global(int global_index, ExprPtr at);
    static ExprPtr bin(BinOp op, ExprPtr a, ExprPtr b);
    static ExprPtr call(std::string callee, std::vector<ExprPtr> args);

    /** Deep copy. */
    ExprPtr clone() const;
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

/** A statement node. */
struct Stmt
{
    enum class Kind : std::uint8_t {
        AssignLocal,   ///< local[`index`] = expr
        StoreGlobal,   ///< global[`index`][ a ] = expr
        If,            ///< if (cond) then_body else else_body
        While,         ///< while (cond) body
        Return,        ///< return expr
        ExprStmt,      ///< expr; (call evaluated for effect)
    };

    Kind kind;
    int index = 0;
    ExprPtr expr;             ///< rhs / return value / bare expression
    ExprPtr cond;             ///< If/While condition
    ExprPtr addr;             ///< StoreGlobal index expression
    std::vector<StmtPtr> then_body;
    std::vector<StmtPtr> else_body;  ///< also While body

    static StmtPtr assign_local(int index, ExprPtr rhs);
    static StmtPtr store_global(int global_index, ExprPtr at, ExprPtr rhs);
    static StmtPtr if_stmt(ExprPtr cond, std::vector<StmtPtr> then_body,
                           std::vector<StmtPtr> else_body);
    static StmtPtr while_stmt(ExprPtr cond, std::vector<StmtPtr> body);
    static StmtPtr ret(ExprPtr value);
    static StmtPtr expr_stmt(ExprPtr e);

    /** Deep copy. */
    StmtPtr clone() const;
};

/** A procedure definition. */
struct ProcedureAst
{
    std::string name;
    int num_params = 0;
    int num_locals = 0;
    bool exported = false;    ///< exported symbols survive stripping
    std::string feature;      ///< build-config feature gate; "" = core
    std::vector<StmtPtr> body;

    ProcedureAst() = default;
    ProcedureAst(ProcedureAst &&) = default;
    ProcedureAst &operator=(ProcedureAst &&) = default;

    /** Deep copy (AST mutation for version skew needs value semantics). */
    ProcedureAst clone() const;
};

/** A global word-array variable. */
struct GlobalVar
{
    std::string name;
    int words = 1;
};

/** A package: a compilation unit of procedures plus globals. */
struct PackageSource
{
    std::string name;
    std::string version;
    std::vector<GlobalVar> globals;
    std::vector<ProcedureAst> procedures;

    /** Find a procedure by name; nullptr when absent. */
    const ProcedureAst *find(const std::string &name) const;
    ProcedureAst *find(const std::string &name);
};

/** Render an expression as C-like text. */
std::string to_string(const Expr &e);
/** Render a statement (indented by @p depth). */
std::string to_string(const Stmt &s, int depth = 0);
/** Render a whole procedure. */
std::string to_string(const ProcedureAst &p);

}  // namespace firmup::lang
