#include "lang/ast.h"

#include "support/str.h"

namespace firmup::lang {

const char *
binop_token(BinOp op)
{
    switch (op) {
      case BinOp::Add: return "+";
      case BinOp::Sub: return "-";
      case BinOp::Mul: return "*";
      case BinOp::Div: return "/";
      case BinOp::Rem: return "%";
      case BinOp::And: return "&";
      case BinOp::Or: return "|";
      case BinOp::Xor: return "^";
      case BinOp::Shl: return "<<";
      case BinOp::Shr: return ">>";
      case BinOp::Eq: return "==";
      case BinOp::Ne: return "!=";
      case BinOp::Lt: return "<";
      case BinOp::Le: return "<=";
      case BinOp::Gt: return ">";
      case BinOp::Ge: return ">=";
    }
    return "?";
}

ExprPtr
Expr::constant(std::int32_t v)
{
    auto e = std::make_unique<Expr>();
    e->kind = Kind::Const;
    e->value = v;
    return e;
}

ExprPtr
Expr::param(int index)
{
    auto e = std::make_unique<Expr>();
    e->kind = Kind::Param;
    e->index = index;
    return e;
}

ExprPtr
Expr::local(int index)
{
    auto e = std::make_unique<Expr>();
    e->kind = Kind::Local;
    e->index = index;
    return e;
}

ExprPtr
Expr::load_global(int global_index, ExprPtr at)
{
    auto e = std::make_unique<Expr>();
    e->kind = Kind::LoadGlobal;
    e->index = global_index;
    e->a = std::move(at);
    return e;
}

ExprPtr
Expr::bin(BinOp op, ExprPtr a, ExprPtr b)
{
    auto e = std::make_unique<Expr>();
    e->kind = Kind::Bin;
    e->op = op;
    e->a = std::move(a);
    e->b = std::move(b);
    return e;
}

ExprPtr
Expr::call(std::string callee, std::vector<ExprPtr> args)
{
    auto e = std::make_unique<Expr>();
    e->kind = Kind::Call;
    e->callee = std::move(callee);
    e->args = std::move(args);
    return e;
}

ExprPtr
Expr::clone() const
{
    auto e = std::make_unique<Expr>();
    e->kind = kind;
    e->value = value;
    e->index = index;
    e->op = op;
    e->callee = callee;
    if (a) {
        e->a = a->clone();
    }
    if (b) {
        e->b = b->clone();
    }
    for (const ExprPtr &arg : args) {
        e->args.push_back(arg->clone());
    }
    return e;
}

namespace {

std::vector<StmtPtr>
clone_body(const std::vector<StmtPtr> &body)
{
    std::vector<StmtPtr> out;
    out.reserve(body.size());
    for (const StmtPtr &s : body) {
        out.push_back(s->clone());
    }
    return out;
}

}  // namespace

StmtPtr
Stmt::assign_local(int index, ExprPtr rhs)
{
    auto s = std::make_unique<Stmt>();
    s->kind = Kind::AssignLocal;
    s->index = index;
    s->expr = std::move(rhs);
    return s;
}

StmtPtr
Stmt::store_global(int global_index, ExprPtr at, ExprPtr rhs)
{
    auto s = std::make_unique<Stmt>();
    s->kind = Kind::StoreGlobal;
    s->index = global_index;
    s->addr = std::move(at);
    s->expr = std::move(rhs);
    return s;
}

StmtPtr
Stmt::if_stmt(ExprPtr cond, std::vector<StmtPtr> then_body,
              std::vector<StmtPtr> else_body)
{
    auto s = std::make_unique<Stmt>();
    s->kind = Kind::If;
    s->cond = std::move(cond);
    s->then_body = std::move(then_body);
    s->else_body = std::move(else_body);
    return s;
}

StmtPtr
Stmt::while_stmt(ExprPtr cond, std::vector<StmtPtr> body)
{
    auto s = std::make_unique<Stmt>();
    s->kind = Kind::While;
    s->cond = std::move(cond);
    s->else_body = std::move(body);
    return s;
}

StmtPtr
Stmt::ret(ExprPtr value)
{
    auto s = std::make_unique<Stmt>();
    s->kind = Kind::Return;
    s->expr = std::move(value);
    return s;
}

StmtPtr
Stmt::expr_stmt(ExprPtr e)
{
    auto s = std::make_unique<Stmt>();
    s->kind = Kind::ExprStmt;
    s->expr = std::move(e);
    return s;
}

StmtPtr
Stmt::clone() const
{
    auto s = std::make_unique<Stmt>();
    s->kind = kind;
    s->index = index;
    if (expr) {
        s->expr = expr->clone();
    }
    if (cond) {
        s->cond = cond->clone();
    }
    if (addr) {
        s->addr = addr->clone();
    }
    s->then_body = clone_body(then_body);
    s->else_body = clone_body(else_body);
    return s;
}

ProcedureAst
ProcedureAst::clone() const
{
    ProcedureAst p;
    p.name = name;
    p.num_params = num_params;
    p.num_locals = num_locals;
    p.exported = exported;
    p.feature = feature;
    p.body = clone_body(body);
    return p;
}

const ProcedureAst *
PackageSource::find(const std::string &proc_name) const
{
    for (const ProcedureAst &p : procedures) {
        if (p.name == proc_name) {
            return &p;
        }
    }
    return nullptr;
}

ProcedureAst *
PackageSource::find(const std::string &proc_name)
{
    return const_cast<ProcedureAst *>(
        static_cast<const PackageSource *>(this)->find(proc_name));
}

std::string
to_string(const Expr &e)
{
    switch (e.kind) {
      case Expr::Kind::Const:
        return std::to_string(e.value);
      case Expr::Kind::Param:
        return "p" + std::to_string(e.index);
      case Expr::Kind::Local:
        return "v" + std::to_string(e.index);
      case Expr::Kind::LoadGlobal:
        return "g" + std::to_string(e.index) + "[" + to_string(*e.a) + "]";
      case Expr::Kind::Bin:
        return "(" + to_string(*e.a) + " " + binop_token(e.op) + " " +
               to_string(*e.b) + ")";
      case Expr::Kind::Call: {
        std::vector<std::string> parts;
        for (const ExprPtr &arg : e.args) {
            parts.push_back(to_string(*arg));
        }
        return e.callee + "(" + join(parts, ", ") + ")";
      }
    }
    return "?";
}

namespace {

std::string
indent(int depth)
{
    return std::string(static_cast<std::size_t>(depth) * 2, ' ');
}

std::string
body_to_string(const std::vector<StmtPtr> &body, int depth)
{
    std::string out;
    for (const StmtPtr &s : body) {
        out += to_string(*s, depth);
    }
    return out;
}

}  // namespace

std::string
to_string(const Stmt &s, int depth)
{
    const std::string pad = indent(depth);
    switch (s.kind) {
      case Stmt::Kind::AssignLocal:
        return pad + "v" + std::to_string(s.index) + " = " +
               to_string(*s.expr) + ";\n";
      case Stmt::Kind::StoreGlobal:
        return pad + "g" + std::to_string(s.index) + "[" +
               to_string(*s.addr) + "] = " + to_string(*s.expr) + ";\n";
      case Stmt::Kind::If: {
        std::string out = pad + "if (" + to_string(*s.cond) + ") {\n" +
                          body_to_string(s.then_body, depth + 1);
        if (!s.else_body.empty()) {
            out += pad + "} else {\n" + body_to_string(s.else_body,
                                                       depth + 1);
        }
        return out + pad + "}\n";
      }
      case Stmt::Kind::While:
        return pad + "while (" + to_string(*s.cond) + ") {\n" +
               body_to_string(s.else_body, depth + 1) + pad + "}\n";
      case Stmt::Kind::Return:
        return pad + "return " + to_string(*s.expr) + ";\n";
      case Stmt::Kind::ExprStmt:
        return pad + to_string(*s.expr) + ";\n";
    }
    return pad + "?;\n";
}

std::string
to_string(const ProcedureAst &p)
{
    std::string out = "int " + p.name + "(";
    for (int i = 0; i < p.num_params; ++i) {
        if (i > 0) {
            out += ", ";
        }
        out += "int p" + std::to_string(i);
    }
    out += ") {\n";
    out += body_to_string(p.body, 1);
    out += "}\n";
    return out;
}

}  // namespace firmup::lang
