/**
 * @file
 * Code generation: MIR → machine instructions.
 *
 * One Backend subclass per ISA. The shared driver walks MIR in layout
 * order, plumbs values between allocated registers, spill slots and the
 * two reserved scratch registers, fuses compare+branch pairs, folds
 * add-immediate address computations into load/store displacements, and
 * delegates every ISA-specific decision (instruction selection, frames,
 * calling sequences, delay slots) to virtual hooks.
 *
 * Output is a ProcCode: machine instructions with symbolic label/proc/
 * global references; the linker (link.h) lays procedures out and resolves
 * them.
 */
#pragma once

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "codegen/regalloc.h"
#include "compiler/mir.h"
#include "compiler/toolchain.h"
#include "isa/isa.h"

namespace firmup::codegen {

/** Synthetic label id for the shared epilogue. */
inline constexpr int kEpilogueLabel = 1 << 20;

/** Generated machine code for one procedure, pre-linking. */
struct ProcCode
{
    std::string name;
    bool exported = false;
    std::vector<isa::MachInst> insts;
    std::map<int, int> labels;  ///< label id -> instruction index
};

/** A register-or-immediate right operand used by selection hooks. */
struct RVal
{
    bool is_reg = true;
    isa::MReg reg = 0;
    std::int32_t imm = 0;

    static RVal r(isa::MReg reg) { return {true, reg, 0}; }
    static RVal i(std::int32_t imm) { return {false, 0, imm}; }
};

/** ISA-independent code generation driver; subclassed per ISA. */
class Backend
{
  public:
    virtual ~Backend() = default;

    /** Create the backend for @p arch under @p profile. */
    static std::unique_ptr<Backend> create(
        isa::Arch arch, const compiler::ToolchainProfile &profile);

    /** Generate machine code for @p proc. */
    ProcCode generate(const compiler::MProc &proc);

  protected:
    Backend(isa::Arch arch, const compiler::ToolchainProfile &profile);

    // ---- selection hooks (pure ISA policy) ----
    virtual void move(isa::MReg rd, isa::MReg rs) = 0;
    virtual void load_const(isa::MReg rd, std::int32_t imm) = 0;
    virtual void load_global_addr(isa::MReg rd, int global_index,
                                  std::int32_t offset) = 0;
    virtual void bin_rr(compiler::MOp op, isa::MReg rd, isa::MReg a,
                        isa::MReg b) = 0;
    /** Default materializes the immediate into scratch1. */
    virtual void bin_ri(compiler::MOp op, isa::MReg rd, isa::MReg a,
                        std::int32_t imm);
    virtual void cmp_set(isa::Cond cond, isa::MReg rd, isa::MReg a,
                         RVal b) = 0;
    virtual void cmp_branch(isa::Cond cond, isa::MReg a, RVal b,
                            int label) = 0;
    virtual void branch_nonzero(isa::MReg reg, int label) = 0;
    virtual void jump(int label) = 0;
    virtual void load_word(isa::MReg rd, isa::MReg base,
                           std::int32_t disp) = 0;
    virtual void store_word(isa::MReg src, isa::MReg base,
                            std::int32_t disp) = 0;

    // ---- frame & ABI hooks ----
    /** Decide the frame layout; called once, before the prologue. */
    virtual void plan_frame() = 0;
    virtual void emit_prologue() = 0;
    virtual void emit_epilogue() = 0;
    /** Frame location of a spill slot: base register + displacement. */
    virtual void spill_addr(int slot, isa::MReg &base,
                            std::int32_t &disp) const = 0;
    /** Bring parameter @p index into the location of vreg @p v. */
    virtual void param_init(int index, compiler::VReg v);
    /** Emit a complete call: args, transfer, result into inst.dst. */
    virtual void call_sequence(const compiler::MInst &inst);
    /** The call-transfer instruction itself (jal/bl/call). */
    virtual void emit_call_inst(int proc_index) = 0;
    /** Final cleanup after all code is emitted (delay slots on MIPS). */
    virtual void finalize() {}

    // ---- shared plumbing available to subclasses ----
    void emit(const isa::MachInst &inst) { code_.insts.push_back(inst); }
    void bind(int label);
    /** Register currently holding vreg @p v (loads spills into scratch). */
    isa::MReg value_reg(compiler::VReg v, isa::MReg scratch);
    /** Register to compute vreg @p v into (its reg, or scratch). */
    isa::MReg dest_reg(compiler::VReg v, isa::MReg scratch) const;
    /** Flush @p from into v's home if v is spilled / elsewhere. */
    void store_result(compiler::VReg v, isa::MReg from);
    /** Move/load the value of @p v into the specific register @p dst. */
    void load_into(isa::MReg dst, compiler::VReg v);

    const isa::Target &target_;
    const isa::AbiInfo &abi_;
    compiler::ToolchainProfile profile_;

    // Per-procedure state, valid during generate().
    const compiler::MProc *proc_ = nullptr;
    Allocation alloc_;
    ProcCode code_;
    bool has_call_ = false;

  private:
    void emit_inst(const compiler::MInst &inst);
    void emit_terminator(const compiler::MBlock &block, int next_id);
    std::vector<int> count_uses() const;

    std::vector<int> use_count_;
    std::set<const compiler::MInst *> skip_;  ///< fused / folded away
};

}  // namespace firmup::codegen
