/**
 * @file
 * Linear-scan register allocation over MIR virtual registers.
 *
 * Intervals are built from iterative liveness; values live across a call
 * are restricted to callee-saved registers so the backends never need to
 * spill around call sites. Values that do not fit are assigned frame
 * spill slots; the backends rematerialize them through reserved scratch
 * registers.
 *
 * The allocation preference order (caller-saved first vs callee-saved
 * first) is a toolchain knob: it changes register *names* in otherwise
 * identical code, one of the syntactic differences visible in the paper's
 * Fig. 1 that strand canonicalization must dissolve.
 */
#pragma once

#include <vector>

#include "compiler/mir.h"
#include "isa/isa.h"

namespace firmup::codegen {

/** Where a vreg lives at execution time. */
struct Loc
{
    enum class Kind : std::uint8_t { None, Reg, Spill } kind = Kind::None;
    isa::MReg reg = 0;
    int slot = 0;

    bool is_reg() const { return kind == Kind::Reg; }
    bool is_spill() const { return kind == Kind::Spill; }
};

/** Result of register allocation for one procedure. */
struct Allocation
{
    std::vector<Loc> locs;                    ///< indexed by vreg
    std::vector<isa::MReg> used_callee_saved; ///< must be saved/restored
    int num_spill_slots = 0;
};

/** Per-block live-in sets (indexed like proc.blocks, then by vreg). */
std::vector<std::vector<bool>> compute_live_in(const compiler::MProc &proc);

/** Allocate registers for @p proc under @p abi. */
Allocation allocate_registers(const compiler::MProc &proc,
                              const isa::AbiInfo &abi,
                              bool callee_saved_first);

}  // namespace firmup::codegen
