#include "codegen/backend.h"

#include "support/error.h"

namespace firmup::codegen {

using compiler::MBlock;
using compiler::MInst;
using compiler::MOp;
using compiler::MProc;
using compiler::MTerm;
using compiler::VReg;

namespace {

isa::Cond
cond_for(MOp op)
{
    switch (op) {
      case MOp::CmpEQ: return isa::Cond::EQ;
      case MOp::CmpNE: return isa::Cond::NE;
      case MOp::CmpLTS: return isa::Cond::LTS;
      case MOp::CmpLES: return isa::Cond::LES;
      case MOp::CmpLTU: return isa::Cond::LTU;
      case MOp::CmpLEU: return isa::Cond::LEU;
      default:
        FIRMUP_ASSERT(false, "not a compare");
    }
}

template <typename Fn>
void
for_each_use(const MInst &inst, Fn fn)
{
    switch (inst.kind) {
      case MInst::Kind::Const:
      case MInst::Kind::GAddr:
        break;
      case MInst::Kind::Copy:
      case MInst::Kind::Load:
        fn(inst.a);
        break;
      case MInst::Kind::Bin:
      case MInst::Kind::Store:
        fn(inst.a);
        if (inst.b.is_vreg()) {
            fn(inst.b.reg);
        }
        break;
      case MInst::Kind::Call:
        for (VReg arg : inst.args) {
            fn(arg);
        }
        break;
    }
}

}  // namespace

Backend::Backend(isa::Arch arch, const compiler::ToolchainProfile &profile)
    : target_(isa::target_for(arch)), abi_(*target_.abi),
      profile_(profile)
{
}

void
Backend::bind(int label)
{
    code_.labels[label] = static_cast<int>(code_.insts.size());
}

isa::MReg
Backend::value_reg(VReg v, isa::MReg scratch)
{
    const Loc &loc = alloc_.locs[v];
    switch (loc.kind) {
      case Loc::Kind::Reg:
        return loc.reg;
      case Loc::Kind::Spill: {
        isa::MReg base = 0;
        std::int32_t disp = 0;
        spill_addr(loc.slot, base, disp);
        load_word(scratch, base, disp);
        return scratch;
      }
      case Loc::Kind::None:
        // Value never computed (unreachable code paths); any register is
        // as correct as any other.
        return scratch;
    }
    return scratch;
}

isa::MReg
Backend::dest_reg(VReg v, isa::MReg scratch) const
{
    const Loc &loc = alloc_.locs[v];
    return loc.is_reg() ? loc.reg : scratch;
}

void
Backend::store_result(VReg v, isa::MReg from)
{
    const Loc &loc = alloc_.locs[v];
    switch (loc.kind) {
      case Loc::Kind::Reg:
        if (loc.reg != from) {
            move(loc.reg, from);
        }
        break;
      case Loc::Kind::Spill: {
        isa::MReg base = 0;
        std::int32_t disp = 0;
        spill_addr(loc.slot, base, disp);
        store_word(from, base, disp);
        break;
      }
      case Loc::Kind::None:
        break;
    }
}

void
Backend::load_into(isa::MReg dst, VReg v)
{
    const Loc &loc = alloc_.locs[v];
    switch (loc.kind) {
      case Loc::Kind::Reg:
        if (loc.reg != dst) {
            move(dst, loc.reg);
        }
        break;
      case Loc::Kind::Spill: {
        isa::MReg base = 0;
        std::int32_t disp = 0;
        spill_addr(loc.slot, base, disp);
        load_word(dst, base, disp);
        break;
      }
      case Loc::Kind::None:
        load_const(dst, 0);
        break;
    }
}

void
Backend::bin_ri(MOp op, isa::MReg rd, isa::MReg a, std::int32_t imm)
{
    // Fallback: materialize into scratch1 (never holds operand a by the
    // driver's conventions) and use the register form.
    load_const(abi_.scratch1, imm);
    bin_rr(op, rd, a, abi_.scratch1);
}

void
Backend::param_init(int index, VReg v)
{
    FIRMUP_ASSERT(static_cast<std::size_t>(index) < abi_.arg_regs.size(),
                  "too many register parameters");
    store_result(v, abi_.arg_regs[static_cast<std::size_t>(index)]);
}

void
Backend::call_sequence(const MInst &inst)
{
    FIRMUP_ASSERT(inst.args.size() <= abi_.arg_regs.size(),
                  "too many call arguments");
    for (std::size_t i = 0; i < inst.args.size(); ++i) {
        load_into(abi_.arg_regs[i], inst.args[i]);
    }
    emit_call_inst(inst.callee);
    store_result(inst.dst, abi_.ret_reg);
}

std::vector<int>
Backend::count_uses() const
{
    std::vector<int> counts(proc_->next_vreg, 0);
    for (const MBlock &block : proc_->blocks) {
        for (const MInst &inst : block.insts) {
            for_each_use(inst, [&counts](VReg r) { ++counts[r]; });
        }
        if (block.term.kind == MTerm::Kind::Branch) {
            ++counts[block.term.cond];
        } else if (block.term.kind == MTerm::Kind::Ret) {
            ++counts[block.term.ret_reg];
        }
    }
    return counts;
}

ProcCode
Backend::generate(const MProc &proc)
{
    proc_ = &proc;
    code_ = ProcCode{};
    code_.name = proc.name;
    code_.exported = proc.exported;
    skip_.clear();

    alloc_ = allocate_registers(proc, abi_, profile_.callee_saved_first);
    use_count_ = count_uses();
    has_call_ = false;
    for (const MBlock &block : proc.blocks) {
        for (const MInst &inst : block.insts) {
            has_call_ |= inst.kind == MInst::Kind::Call;
        }
    }

    // Pre-pass: identify compare instructions fused into branches and
    // add-immediates folded into load/store displacements.
    for (const MBlock &block : proc.blocks) {
        if (block.term.kind == MTerm::Kind::Branch &&
            !block.insts.empty()) {
            const MInst &last = block.insts.back();
            if (last.kind == MInst::Kind::Bin &&
                compiler::mop_is_compare(last.op) &&
                last.dst == block.term.cond &&
                use_count_[last.dst] == 1) {
                skip_.insert(&last);
            }
        }
        for (std::size_t i = 1; i < block.insts.size(); ++i) {
            const MInst &mem = block.insts[i];
            const MInst &prev = block.insts[i - 1];
            const bool is_mem = mem.kind == MInst::Kind::Load ||
                                mem.kind == MInst::Kind::Store;
            if (is_mem && prev.kind == MInst::Kind::Bin &&
                prev.op == MOp::Add && prev.b.is_imm() &&
                prev.dst == mem.a && use_count_[prev.dst] == 1 &&
                prev.a != prev.dst) {
                skip_.insert(&prev);
            }
        }
    }

    plan_frame();
    emit_prologue();
    for (int i = 0; i < proc.num_params; ++i) {
        const auto v = static_cast<VReg>(i);
        if (v < proc.next_vreg && use_count_[v] > 0) {
            param_init(i, v);
        }
    }

    for (std::size_t bi = 0; bi < proc.blocks.size(); ++bi) {
        const MBlock &block = proc.blocks[bi];
        bind(block.id);
        for (std::size_t ii = 0; ii < block.insts.size(); ++ii) {
            const MInst &inst = block.insts[ii];
            if (skip_.contains(&inst)) {
                continue;
            }
            // Folded addressing: load/store whose address is the skipped
            // add-immediate right before it.
            if ((inst.kind == MInst::Kind::Load ||
                 inst.kind == MInst::Kind::Store) &&
                ii > 0 && skip_.contains(&block.insts[ii - 1]) &&
                block.insts[ii - 1].dst == inst.a) {
                const MInst &addr = block.insts[ii - 1];
                const isa::MReg base = value_reg(addr.a, abi_.scratch0);
                const auto disp = addr.b.imm;
                if (inst.kind == MInst::Kind::Load) {
                    const isa::MReg rd = dest_reg(inst.dst, abi_.scratch0);
                    load_word(rd, base, disp);
                    store_result(inst.dst, rd);
                } else {
                    const isa::MReg val =
                        value_reg(inst.b.reg, abi_.scratch1);
                    store_word(val, base, disp);
                }
                continue;
            }
            emit_inst(inst);
        }
        const int next_id = bi + 1 < proc.blocks.size()
                                ? proc.blocks[bi + 1].id
                                : kEpilogueLabel;
        emit_terminator(block, next_id);
    }
    bind(kEpilogueLabel);
    emit_epilogue();
    finalize();

    proc_ = nullptr;
    return std::move(code_);
}

void
Backend::emit_inst(const MInst &inst)
{
    const isa::MReg s0 = abi_.scratch0;
    const isa::MReg s1 = abi_.scratch1;
    switch (inst.kind) {
      case MInst::Kind::Const: {
        const isa::MReg rd = dest_reg(inst.dst, s0);
        load_const(rd, inst.imm);
        store_result(inst.dst, rd);
        break;
      }
      case MInst::Kind::Copy: {
        const Loc &dst = alloc_.locs[inst.dst];
        if (dst.is_reg()) {
            load_into(dst.reg, inst.a);
        } else {
            const isa::MReg src = value_reg(inst.a, s0);
            store_result(inst.dst, src);
        }
        break;
      }
      case MInst::Kind::Bin: {
        const isa::MReg a = value_reg(inst.a, s0);
        const isa::MReg rd = dest_reg(inst.dst, s0);
        if (compiler::mop_is_compare(inst.op)) {
            const RVal b = inst.b.is_imm()
                               ? RVal::i(inst.b.imm)
                               : RVal::r(value_reg(inst.b.reg, s1));
            cmp_set(cond_for(inst.op), rd, a, b);
        } else if (inst.b.is_imm()) {
            bin_ri(inst.op, rd, a, inst.b.imm);
        } else {
            const isa::MReg b = value_reg(inst.b.reg, s1);
            bin_rr(inst.op, rd, a, b);
        }
        store_result(inst.dst, rd);
        break;
      }
      case MInst::Kind::GAddr: {
        const isa::MReg rd = dest_reg(inst.dst, s0);
        load_global_addr(rd, inst.global_index, 0);
        store_result(inst.dst, rd);
        break;
      }
      case MInst::Kind::Load: {
        const isa::MReg base = value_reg(inst.a, s0);
        const isa::MReg rd = dest_reg(inst.dst, s0);
        load_word(rd, base, 0);
        store_result(inst.dst, rd);
        break;
      }
      case MInst::Kind::Store: {
        const isa::MReg base = value_reg(inst.a, s0);
        const isa::MReg val = value_reg(inst.b.reg, s1);
        store_word(val, base, 0);
        break;
      }
      case MInst::Kind::Call:
        call_sequence(inst);
        break;
    }
}

void
Backend::emit_terminator(const MBlock &block, int next_id)
{
    switch (block.term.kind) {
      case MTerm::Kind::Jump:
        if (block.term.target != next_id) {
            jump(block.term.target);
        }
        break;
      case MTerm::Kind::Branch: {
        const MInst *fused = nullptr;
        if (!block.insts.empty() && skip_.contains(&block.insts.back()) &&
            block.insts.back().kind == MInst::Kind::Bin &&
            compiler::mop_is_compare(block.insts.back().op) &&
            block.insts.back().dst == block.term.cond) {
            fused = &block.insts.back();
        }
        if (fused != nullptr) {
            const isa::MReg a = value_reg(fused->a, abi_.scratch0);
            const RVal b =
                fused->b.is_imm()
                    ? RVal::i(fused->b.imm)
                    : RVal::r(value_reg(fused->b.reg, abi_.scratch1));
            cmp_branch(cond_for(fused->op), a, b, block.term.target);
        } else {
            const isa::MReg cond =
                value_reg(block.term.cond, abi_.scratch0);
            branch_nonzero(cond, block.term.target);
        }
        if (block.term.fallthrough != next_id) {
            jump(block.term.fallthrough);
        }
        break;
      }
      case MTerm::Kind::Ret:
        load_into(abi_.ret_reg, block.term.ret_reg);
        if (next_id != kEpilogueLabel) {
            jump(kEpilogueLabel);
        }
        break;
    }
}

}  // namespace firmup::codegen
