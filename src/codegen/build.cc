#include "codegen/build.h"

#include "codegen/backend.h"

namespace firmup::codegen {

compiler::MModule
compile_to_mir(const lang::PackageSource &source,
               const BuildRequest &request)
{
    compiler::MModule module =
        request.all_features
            ? compiler::lower_package(source)
            : compiler::lower_package(source, request.enabled_features);
    compiler::optimize_module(module, request.profile);
    return module;
}

loader::Executable
build_executable(const lang::PackageSource &source,
                 const BuildRequest &request)
{
    const compiler::MModule module = compile_to_mir(source, request);
    auto backend = Backend::create(request.arch, request.profile);
    std::vector<ProcCode> procs;
    procs.reserve(module.procs.size());
    for (const compiler::MProc &proc : module.procs) {
        procs.push_back(backend->generate(proc));
    }
    loader::Executable exe =
        link_module(procs, module.global_words, request.arch, request.link,
                    request.exe_name.empty() ? source.name
                                             : request.exe_name);
    if (request.strip) {
        loader::strip_executable(exe, request.keep_exported);
    }
    return exe;
}

}  // namespace firmup::codegen
