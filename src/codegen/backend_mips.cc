/**
 * @file
 * MIPS32 backend: load/store RISC selection, $zero-based moves, slt-based
 * compares, jal calls, and architectural branch delay slots (filled with
 * NOPs, or with a hoisted preceding instruction when the toolchain profile
 * enables `mips_fill_delay_slot` — reproducing the block-boundary caveat
 * the paper handles in its lifter).
 */
#include "codegen/backend_mips.h"

#include <algorithm>

#include "isa/mips.h"
#include "support/error.h"

namespace firmup::codegen {

using compiler::MOp;
using isa::MachInst;
using isa::MReg;
namespace m = isa::mips;

namespace {

bool
fits_s16(std::int64_t v)
{
    return v >= -32768 && v <= 32767;
}

bool
fits_u16(std::int64_t v)
{
    return v >= 0 && v <= 0xffff;
}

MachInst
with_ref(MachInst inst, MachInst::Ref ref, int index, std::int32_t off = 0)
{
    inst.ref = ref;
    inst.ref_index = index;
    inst.ref_offset = off;
    return inst;
}

}  // namespace

MipsBackend::MipsBackend(const compiler::ToolchainProfile &profile)
    : Backend(isa::Arch::Mips32, profile)
{
}

void
MipsBackend::plan_frame()
{
    pad_ = profile_.extra_frame_pad;
    slots_bytes_ = 4 * alloc_.num_spill_slots;
    saved_bytes_ =
        4 * static_cast<int>(alloc_.used_callee_saved.size()) +
        (has_call_ ? 4 : 0);
    frame_ = pad_ + slots_bytes_ + saved_bytes_;
    frame_ = (frame_ + 7) & ~7;
}

void
MipsBackend::spill_addr(int slot, MReg &base, std::int32_t &disp) const
{
    base = m::Sp;
    disp = profile_.locals_descending
               ? pad_ + 4 * (alloc_.num_spill_slots - 1 - slot)
               : pad_ + 4 * slot;
}

void
MipsBackend::emit_prologue()
{
    if (frame_ == 0) {
        return;
    }
    emit(m::make_ri(m::Op::Addiu, m::Sp, m::Sp, -frame_));
    int offset = pad_ + slots_bytes_;
    for (MReg reg : alloc_.used_callee_saved) {
        emit(m::make_ri(m::Op::Sw, reg, m::Sp, offset));
        offset += 4;
    }
    if (has_call_) {
        emit(m::make_ri(m::Op::Sw, m::Ra, m::Sp, frame_ - 4));
    }
}

void
MipsBackend::emit_epilogue()
{
    if (frame_ != 0) {
        int offset = pad_ + slots_bytes_;
        for (MReg reg : alloc_.used_callee_saved) {
            emit(m::make_ri(m::Op::Lw, reg, m::Sp, offset));
            offset += 4;
        }
        if (has_call_) {
            emit(m::make_ri(m::Op::Lw, m::Ra, m::Sp, frame_ - 4));
        }
        emit(m::make_ri(m::Op::Addiu, m::Sp, m::Sp, frame_));
    }
    MachInst jr;
    jr.op = static_cast<std::uint16_t>(m::Op::Jr);
    jr.rs = m::Ra;
    emit(jr);
    emit(m::make_nop());
}

void
MipsBackend::move(MReg rd, MReg rs)
{
    emit(m::make_rrr(m::Op::Or, rd, rs, m::Zero));
}

void
MipsBackend::load_const(MReg rd, std::int32_t imm)
{
    if (!profile_.materialize_full_const) {
        if (fits_s16(imm)) {
            emit(m::make_ri(m::Op::Addiu, rd, m::Zero, imm));
            return;
        }
        if (fits_u16(imm)) {
            emit(m::make_ri(m::Op::Ori, rd, m::Zero, imm));
            return;
        }
    }
    const auto u = static_cast<std::uint32_t>(imm);
    emit(m::make_ri(m::Op::Lui, rd, 0,
                    static_cast<std::int32_t>(u >> 16)));
    emit(m::make_ri(m::Op::Ori, rd, rd,
                    static_cast<std::int32_t>(u & 0xffff)));
}

void
MipsBackend::load_global_addr(MReg rd, int global_index, std::int32_t off)
{
    emit(with_ref(m::make_ri(m::Op::Lui, rd, 0, 0),
                  MachInst::Ref::GlobalHi, global_index, off));
    emit(with_ref(m::make_ri(m::Op::Ori, rd, rd, 0),
                  MachInst::Ref::GlobalLo, global_index, off));
}

void
MipsBackend::bin_rr(MOp op, MReg rd, MReg a, MReg b)
{
    m::Op sel;
    switch (op) {
      case MOp::Add: sel = m::Op::Addu; break;
      case MOp::Sub: sel = m::Op::Subu; break;
      case MOp::Mul: sel = m::Op::Mul; break;
      case MOp::DivS: sel = m::Op::Div; break;
      case MOp::RemS: sel = m::Op::Mod; break;
      case MOp::And: sel = m::Op::And; break;
      case MOp::Or: sel = m::Op::Or; break;
      case MOp::Xor: sel = m::Op::Xor; break;
      case MOp::Shl: sel = m::Op::Sllv; break;
      case MOp::ShrA: sel = m::Op::Srav; break;
      case MOp::ShrL: sel = m::Op::Srlv; break;
      default:
        FIRMUP_ASSERT(false, "mips: unexpected binop");
    }
    emit(m::make_rrr(sel, rd, a, b));
}

void
MipsBackend::bin_ri(MOp op, MReg rd, MReg a, std::int32_t imm)
{
    switch (op) {
      case MOp::Add:
        if (fits_s16(imm)) {
            emit(m::make_ri(m::Op::Addiu, rd, a, imm));
            return;
        }
        break;
      case MOp::Sub:
        if (fits_s16(-static_cast<std::int64_t>(imm))) {
            emit(m::make_ri(m::Op::Addiu, rd, a, -imm));
            return;
        }
        break;
      case MOp::And:
        if (fits_u16(imm)) {
            emit(m::make_ri(m::Op::Andi, rd, a, imm));
            return;
        }
        break;
      case MOp::Or:
        if (fits_u16(imm)) {
            emit(m::make_ri(m::Op::Ori, rd, a, imm));
            return;
        }
        break;
      case MOp::Xor:
        if (fits_u16(imm)) {
            emit(m::make_ri(m::Op::Xori, rd, a, imm));
            return;
        }
        break;
      case MOp::Shl:
        emit(m::make_ri(m::Op::Sll, rd, a, imm & 31));
        return;
      case MOp::ShrA:
        emit(m::make_ri(m::Op::Sra, rd, a, imm & 31));
        return;
      case MOp::ShrL:
        emit(m::make_ri(m::Op::Srl, rd, a, imm & 31));
        return;
      default:
        break;
    }
    Backend::bin_ri(op, rd, a, imm);
}

isa::MReg
MipsBackend::rval_reg(const RVal &b, MReg scratch)
{
    if (b.is_reg) {
        return b.reg;
    }
    if (b.imm == 0) {
        return m::Zero;
    }
    load_const(scratch, b.imm);
    return scratch;
}

void
MipsBackend::cmp_set(isa::Cond cond, MReg rd, MReg a, RVal b)
{
    using isa::Cond;
    switch (cond) {
      case Cond::LTS:
      case Cond::LTU:
        if (!b.is_reg && fits_s16(b.imm)) {
            emit(m::make_ri(cond == Cond::LTS ? m::Op::Slti : m::Op::Sltiu,
                            rd, a, b.imm));
        } else {
            emit(m::make_rrr(cond == Cond::LTS ? m::Op::Slt : m::Op::Sltu,
                             rd, a, rval_reg(b, abi_.scratch1)));
        }
        return;
      case Cond::LES:
      case Cond::LEU: {
        // a <= b  <=>  !(b < a)
        const MReg rb = rval_reg(b, abi_.scratch1);
        emit(m::make_rrr(cond == Cond::LES ? m::Op::Slt : m::Op::Sltu,
                         rd, rb, a));
        emit(m::make_ri(m::Op::Xori, rd, rd, 1));
        return;
      }
      case Cond::EQ:
      case Cond::NE: {
        if (!b.is_reg && b.imm == 0) {
            // common x == 0 shape
            if (cond == Cond::EQ) {
                emit(m::make_ri(m::Op::Sltiu, rd, a, 1));
            } else {
                emit(m::make_rrr(m::Op::Sltu, rd, m::Zero, a));
            }
            return;
        }
        if (!b.is_reg && fits_u16(b.imm)) {
            emit(m::make_ri(m::Op::Xori, rd, a, b.imm));
        } else {
            emit(m::make_rrr(m::Op::Xor, rd, a,
                             rval_reg(b, abi_.scratch1)));
        }
        if (cond == isa::Cond::EQ) {
            emit(m::make_ri(m::Op::Sltiu, rd, rd, 1));
        } else {
            emit(m::make_rrr(m::Op::Sltu, rd, m::Zero, rd));
        }
        return;
      }
    }
}

void
MipsBackend::branch_raw(m::Op op, MReg rs, MReg rt, int label)
{
    MachInst inst = m::make_rrr(op, 0, rs, rt);
    inst.ref = MachInst::Ref::Block;
    inst.ref_index = label;
    emit(inst);
    emit(m::make_nop());  // delay slot; possibly filled in finalize()
}

void
MipsBackend::cmp_branch(isa::Cond cond, MReg a, RVal b, int label)
{
    using isa::Cond;
    switch (cond) {
      case Cond::EQ:
        branch_raw(m::Op::Beq, a, rval_reg(b, abi_.scratch1), label);
        return;
      case Cond::NE:
        branch_raw(m::Op::Bne, a, rval_reg(b, abi_.scratch1), label);
        return;
      case Cond::LTS:
      case Cond::LTU:
        if (!b.is_reg && fits_s16(b.imm)) {
            emit(m::make_ri(cond == Cond::LTS ? m::Op::Slti : m::Op::Sltiu,
                            m::At, a, b.imm));
        } else {
            emit(m::make_rrr(cond == Cond::LTS ? m::Op::Slt : m::Op::Sltu,
                             m::At, a, rval_reg(b, abi_.scratch1)));
        }
        branch_raw(m::Op::Bne, m::At, m::Zero, label);
        return;
      case Cond::LES:
      case Cond::LEU: {
        const MReg rb = rval_reg(b, abi_.scratch1);
        emit(m::make_rrr(cond == Cond::LES ? m::Op::Slt : m::Op::Sltu,
                         m::At, rb, a));
        branch_raw(m::Op::Beq, m::At, m::Zero, label);
        return;
      }
    }
}

void
MipsBackend::branch_nonzero(MReg reg, int label)
{
    branch_raw(m::Op::Bne, reg, m::Zero, label);
}

void
MipsBackend::jump(int label)
{
    MachInst inst;
    inst.op = static_cast<std::uint16_t>(m::Op::J);
    inst.ref = MachInst::Ref::Block;
    inst.ref_index = label;
    emit(inst);
    emit(m::make_nop());
}

void
MipsBackend::load_word(MReg rd, MReg base, std::int32_t disp)
{
    emit(m::make_ri(m::Op::Lw, rd, base, disp));
}

void
MipsBackend::store_word(MReg src, MReg base, std::int32_t disp)
{
    emit(m::make_ri(m::Op::Sw, src, base, disp));
}

void
MipsBackend::emit_call_inst(int proc_index)
{
    if (profile_.mips_pic_calls) {
        // PIC idiom (paper Fig. 1a): load the callee address into $t9,
        // then jalr — vendors building position-independent firmware
        // emit calls this way.
        MachInst hi = m::make_ri(m::Op::Lui, m::T9, 0, 0);
        hi.ref = MachInst::Ref::ProcHi;
        hi.ref_index = proc_index;
        emit(hi);
        MachInst lo = m::make_ri(m::Op::Ori, m::T9, m::T9, 0);
        lo.ref = MachInst::Ref::ProcLo;
        lo.ref_index = proc_index;
        emit(lo);
        MachInst jalr;
        jalr.op = static_cast<std::uint16_t>(m::Op::Jalr);
        jalr.rs = m::T9;
        emit(jalr);
        emit(m::make_nop());
        return;
    }
    MachInst inst;
    inst.op = static_cast<std::uint16_t>(m::Op::Jal);
    inst.ref = MachInst::Ref::Proc;
    inst.ref_index = proc_index;
    emit(inst);
    emit(m::make_nop());
}

void
MipsBackend::finalize()
{
    if (!profile_.mips_fill_delay_slot) {
        return;
    }
    // Hoist an eligible instruction from before each branch into its NOP
    // delay slot. Eligibility: the candidate is a plain (non-branch,
    // non-NOP) instruction, is not itself sitting in a delay slot, no
    // label binds to it or to the branch, and the branch does not read
    // the register the candidate writes.
    std::vector<bool> has_label(code_.insts.size() + 1, false);
    for (const auto &[label, index] : code_.labels) {
        has_label[static_cast<std::size_t>(index)] = true;
    }

    auto branch_reads = [](const MachInst &inst) -> std::vector<MReg> {
        switch (static_cast<m::Op>(inst.op)) {
          case m::Op::Beq:
          case m::Op::Bne:
            return {inst.rs, inst.rt};
          case m::Op::Jr:
          case m::Op::Jalr:
            return {inst.rs};
          default:
            return {};
        }
    };
    auto writes_reg = [](const MachInst &inst) -> int {
        switch (static_cast<m::Op>(inst.op)) {
          case m::Op::Sw:
          case m::Op::Nop:
          case m::Op::Beq:
          case m::Op::Bne:
          case m::Op::J:
          case m::Op::Jal:
          case m::Op::Jr:
          case m::Op::Jalr:
            return -1;
          default:
            return inst.rd;
        }
    };

    std::vector<MachInst> out;
    std::vector<int> remap(code_.insts.size() + 1, -1);
    std::size_t i = 0;
    while (i < code_.insts.size()) {
        const MachInst &inst = code_.insts[i];
        const bool is_branch =
            m::has_delay_slot(static_cast<m::Op>(inst.op));
        const bool slot_is_nop =
            is_branch && i + 1 < code_.insts.size() &&
            static_cast<m::Op>(code_.insts[i + 1].op) == m::Op::Nop;
        bool filled = false;
        if (slot_is_nop && !out.empty() && i >= 1 && !has_label[i] &&
            !has_label[i - 1] && remap[i - 1] ==
                static_cast<int>(out.size()) - 1) {
            const MachInst &cand = out.back();
            const auto cand_op = static_cast<m::Op>(cand.op);
            const bool cand_plain =
                cand_op != m::Op::Nop && !m::has_delay_slot(cand_op);
            const bool cand_in_slot =
                i >= 2 && m::has_delay_slot(
                              static_cast<m::Op>(code_.insts[i - 2].op));
            const int w = writes_reg(cand);
            bool conflict = false;
            for (MReg r : branch_reads(inst)) {
                conflict |= w >= 0 && r == w;
            }
            if (cand_plain && !cand_in_slot && !conflict) {
                // [cand, branch, nop] -> [branch, cand]
                const MachInst moved = out.back();
                out.pop_back();
                remap[i] = static_cast<int>(out.size());
                out.push_back(inst);
                remap[i - 1] = static_cast<int>(out.size());
                out.push_back(moved);
                remap[i + 1] = static_cast<int>(out.size());
                i += 2;  // skip the nop
                filled = true;
            }
        }
        if (!filled) {
            remap[i] = static_cast<int>(out.size());
            out.push_back(inst);
            ++i;
        }
    }
    remap[code_.insts.size()] = static_cast<int>(out.size());
    // Remap label targets (none point at moved instructions by
    // construction; end-of-code labels map to the new end).
    for (auto &[label, index] : code_.labels) {
        int target = remap[static_cast<std::size_t>(index)];
        FIRMUP_ASSERT(target >= 0, "delay-slot fill lost a label");
        index = target;
    }
    code_.insts = std::move(out);
}

}  // namespace firmup::codegen
