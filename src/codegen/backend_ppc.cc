#include "codegen/backend_ppc.h"

#include "support/error.h"

namespace firmup::codegen {

using compiler::MOp;
using isa::MachInst;
using isa::MReg;
namespace p32 = isa::ppc;

namespace {

bool
fits_s16(std::int64_t v)
{
    return v >= -32768 && v <= 32767;
}

bool
fits_u16(std::int64_t v)
{
    return v >= 0 && v <= 0xffff;
}

MachInst
make(p32::Op op, MReg rd = 0, MReg rs = 0, MReg rt = 0,
     std::int64_t imm = 0)
{
    MachInst inst;
    inst.op = static_cast<std::uint16_t>(op);
    inst.rd = rd;
    inst.rs = rs;
    inst.rt = rt;
    inst.imm = imm;
    return inst;
}

bool
is_unsigned_cond(isa::Cond cond)
{
    return cond == isa::Cond::LTU || cond == isa::Cond::LEU;
}

}  // namespace

PpcBackend::PpcBackend(const compiler::ToolchainProfile &profile)
    : Backend(isa::Arch::Ppc32, profile)
{
}

void
PpcBackend::plan_frame()
{
    pad_ = profile_.extra_frame_pad;
    slots_bytes_ = 4 * alloc_.num_spill_slots;
    const int saved =
        4 * static_cast<int>(alloc_.used_callee_saved.size()) +
        (has_call_ ? 4 : 0);
    frame_ = pad_ + slots_bytes_ + saved;
    frame_ = (frame_ + 7) & ~7;
}

void
PpcBackend::spill_addr(int slot, MReg &base, std::int32_t &disp) const
{
    base = p32::R1;
    disp = profile_.locals_descending
               ? pad_ + 4 * (alloc_.num_spill_slots - 1 - slot)
               : pad_ + 4 * slot;
}

void
PpcBackend::emit_prologue()
{
    if (frame_ == 0) {
        return;
    }
    emit(make(p32::Op::Addi, p32::R1, p32::R1, 0, -frame_));
    int offset = pad_ + slots_bytes_;
    for (MReg reg : alloc_.used_callee_saved) {
        emit(make(p32::Op::Stw, reg, p32::R1, 0, offset));
        offset += 4;
    }
    if (has_call_) {
        emit(make(p32::Op::Mflr, abi_.scratch0));
        emit(make(p32::Op::Stw, abi_.scratch0, p32::R1, 0, frame_ - 4));
    }
}

void
PpcBackend::emit_epilogue()
{
    if (frame_ != 0) {
        if (has_call_) {
            emit(make(p32::Op::Lwz, abi_.scratch0, p32::R1, 0,
                      frame_ - 4));
            MachInst mtlr = make(p32::Op::Mtlr);
            mtlr.rs = abi_.scratch0;
            emit(mtlr);
        }
        int offset = pad_ + slots_bytes_;
        for (MReg reg : alloc_.used_callee_saved) {
            emit(make(p32::Op::Lwz, reg, p32::R1, 0, offset));
            offset += 4;
        }
        emit(make(p32::Op::Addi, p32::R1, p32::R1, 0, frame_));
    }
    emit(make(p32::Op::Blr));
}

void
PpcBackend::move(MReg rd, MReg rs)
{
    emit(make(p32::Op::Or, rd, rs, rs));  // mr rd, rs
}

void
PpcBackend::load_const(MReg rd, std::int32_t imm)
{
    if (fits_s16(imm) && !profile_.materialize_full_const) {
        emit(make(p32::Op::Addi, rd, 0, 0, imm));  // li
        return;
    }
    const auto u = static_cast<std::uint32_t>(imm);
    emit(make(p32::Op::Addis, rd, 0, 0,
              static_cast<std::int64_t>(u >> 16)));  // lis
    emit(make(p32::Op::Ori, rd, rd, 0,
              static_cast<std::int64_t>(u & 0xffff)));
}

void
PpcBackend::load_global_addr(MReg rd, int global_index, std::int32_t off)
{
    MachInst hi = make(p32::Op::Addis, rd, 0);
    hi.ref = MachInst::Ref::GlobalHi;
    hi.ref_index = global_index;
    hi.ref_offset = off;
    emit(hi);
    MachInst lo = make(p32::Op::Ori, rd, rd);
    lo.ref = MachInst::Ref::GlobalLo;
    lo.ref_index = global_index;
    lo.ref_offset = off;
    emit(lo);
}

void
PpcBackend::bin_rr(MOp op, MReg rd, MReg a, MReg b)
{
    p32::Op sel;
    switch (op) {
      case MOp::Add: sel = p32::Op::Add; break;
      case MOp::Sub: sel = p32::Op::Subf; break;
      case MOp::Mul: sel = p32::Op::Mullw; break;
      case MOp::DivS: sel = p32::Op::Divw; break;
      case MOp::RemS: sel = p32::Op::Modsw; break;
      case MOp::And: sel = p32::Op::And; break;
      case MOp::Or: sel = p32::Op::Or; break;
      case MOp::Xor: sel = p32::Op::Xor; break;
      case MOp::Shl: sel = p32::Op::Slw; break;
      case MOp::ShrA: sel = p32::Op::Sraw; break;
      case MOp::ShrL: sel = p32::Op::Srw; break;
      default:
        FIRMUP_ASSERT(false, "ppc: unexpected binop");
    }
    emit(make(sel, rd, a, b));
}

void
PpcBackend::bin_ri(MOp op, MReg rd, MReg a, std::int32_t imm)
{
    switch (op) {
      case MOp::Add:
        if (fits_s16(imm)) {
            emit(make(p32::Op::Addi, rd, a, 0, imm));
            return;
        }
        break;
      case MOp::Sub:
        if (fits_s16(-static_cast<std::int64_t>(imm))) {
            emit(make(p32::Op::Addi, rd, a, 0, -imm));
            return;
        }
        break;
      case MOp::Or:
        if (fits_u16(imm)) {
            emit(make(p32::Op::Ori, rd, a, 0, imm));
            return;
        }
        break;
      default:
        break;
    }
    Backend::bin_ri(op, rd, a, imm);
}

void
PpcBackend::emit_cmp(isa::Cond cond, MReg a, const RVal &b)
{
    if (is_unsigned_cond(cond)) {
        MReg rb = b.reg;
        if (!b.is_reg) {
            load_const(abi_.scratch1, b.imm);
            rb = abi_.scratch1;
        }
        MachInst cmp = make(p32::Op::Cmplw);
        cmp.rs = a;
        cmp.rt = rb;
        emit(cmp);
        return;
    }
    if (!b.is_reg && fits_s16(b.imm)) {
        MachInst cmp = make(p32::Op::Cmpwi);
        cmp.rs = a;
        cmp.imm = b.imm;
        emit(cmp);
        return;
    }
    MReg rb = b.reg;
    if (!b.is_reg) {
        load_const(abi_.scratch1, b.imm);
        rb = abi_.scratch1;
    }
    MachInst cmp = make(p32::Op::Cmpw);
    cmp.rs = a;
    cmp.rt = rb;
    emit(cmp);
}

void
PpcBackend::cmp_set(isa::Cond cond, MReg rd, MReg a, RVal b)
{
    emit_cmp(cond, a, b);
    MachInst set = make(p32::Op::Setbc, rd);
    set.cond = cond;
    emit(set);
}

void
PpcBackend::cmp_branch(isa::Cond cond, MReg a, RVal b, int label)
{
    emit_cmp(cond, a, b);
    MachInst bc = make(p32::Op::Bc);
    bc.cond = cond;
    bc.ref = MachInst::Ref::Block;
    bc.ref_index = label;
    emit(bc);
}

void
PpcBackend::branch_nonzero(MReg reg, int label)
{
    cmp_branch(isa::Cond::NE, reg, RVal::i(0), label);
}

void
PpcBackend::jump(int label)
{
    MachInst b = make(p32::Op::B);
    b.ref = MachInst::Ref::Block;
    b.ref_index = label;
    emit(b);
}

void
PpcBackend::load_word(MReg rd, MReg base, std::int32_t disp)
{
    emit(make(p32::Op::Lwz, rd, base, 0, disp));
}

void
PpcBackend::store_word(MReg src, MReg base, std::int32_t disp)
{
    emit(make(p32::Op::Stw, src, base, 0, disp));
}

void
PpcBackend::emit_call_inst(int proc_index)
{
    MachInst bl = make(p32::Op::Bl);
    bl.ref = MachInst::Ref::Proc;
    bl.ref_index = proc_index;
    emit(bl);
}

}  // namespace firmup::codegen
