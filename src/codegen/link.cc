#include "codegen/link.h"

#include "support/error.h"

namespace firmup::codegen {

loader::Executable
link_module(const std::vector<ProcCode> &procs,
            const std::vector<int> &global_words, isa::Arch arch,
            const LinkOptions &options, const std::string &exe_name)
{
    const isa::Target &target = isa::target_for(arch);

    // Pass 1: instruction offsets and procedure entry addresses.
    std::vector<std::vector<std::uint32_t>> inst_offsets(procs.size());
    std::vector<std::uint32_t> proc_addrs(procs.size());
    std::uint32_t cursor = options.text_base;
    for (std::size_t pi = 0; pi < procs.size(); ++pi) {
        cursor = (cursor + 3u) & ~3u;  // 4-align procedure entries
        proc_addrs[pi] = cursor;
        inst_offsets[pi].reserve(procs[pi].insts.size() + 1);
        for (const isa::MachInst &inst : procs[pi].insts) {
            inst_offsets[pi].push_back(cursor);
            cursor += static_cast<std::uint32_t>(target.inst_size(inst));
        }
        inst_offsets[pi].push_back(cursor);  // end sentinel
    }

    // Global data layout.
    std::vector<std::uint32_t> global_addrs(global_words.size());
    std::uint32_t data_cursor = options.data_base;
    for (std::size_t gi = 0; gi < global_words.size(); ++gi) {
        global_addrs[gi] = data_cursor;
        data_cursor += 4u * static_cast<std::uint32_t>(global_words[gi]);
    }

    // Pass 2: resolve references and encode.
    ByteBuffer text;
    std::uint32_t addr = options.text_base;
    for (std::size_t pi = 0; pi < procs.size(); ++pi) {
        while (addr < proc_addrs[pi]) {  // inter-procedure padding
            text.push_back(0);
            ++addr;
        }
        for (std::size_t ii = 0; ii < procs[pi].insts.size(); ++ii) {
            isa::MachInst inst = procs[pi].insts[ii];
            switch (inst.ref) {
              case isa::MachInst::Ref::None:
                break;
              case isa::MachInst::Ref::Block: {
                const auto it = procs[pi].labels.find(inst.ref_index);
                FIRMUP_ASSERT(it != procs[pi].labels.end(),
                              "link: unbound label");
                inst.imm = inst_offsets[pi][static_cast<std::size_t>(
                    it->second)];
                break;
              }
              case isa::MachInst::Ref::Proc:
              case isa::MachInst::Ref::ProcHi:
              case isa::MachInst::Ref::ProcLo: {
                FIRMUP_ASSERT(
                    inst.ref_index >= 0 &&
                        static_cast<std::size_t>(inst.ref_index) <
                            procs.size(),
                    "link: bad proc reference");
                const std::uint32_t pa =
                    proc_addrs[static_cast<std::size_t>(inst.ref_index)];
                if (inst.ref == isa::MachInst::Ref::ProcHi) {
                    inst.imm = pa >> 16;
                } else if (inst.ref == isa::MachInst::Ref::ProcLo) {
                    inst.imm = pa & 0xffff;
                } else {
                    inst.imm = pa;
                }
                break;
              }
              case isa::MachInst::Ref::GlobalHi:
              case isa::MachInst::Ref::GlobalLo:
              case isa::MachInst::Ref::GlobalAbs: {
                FIRMUP_ASSERT(
                    inst.ref_index >= 0 &&
                        static_cast<std::size_t>(inst.ref_index) <
                            global_addrs.size(),
                    "link: bad global reference");
                const std::uint32_t ga =
                    global_addrs[static_cast<std::size_t>(
                        inst.ref_index)] +
                    static_cast<std::uint32_t>(inst.ref_offset);
                if (inst.ref == isa::MachInst::Ref::GlobalHi) {
                    inst.imm = ga >> 16;
                } else if (inst.ref == isa::MachInst::Ref::GlobalLo) {
                    inst.imm = ga & 0xffff;
                } else {
                    inst.imm = ga;
                }
                break;
              }
            }
            inst.ref = isa::MachInst::Ref::None;
            const std::size_t before = text.size();
            target.encode(inst, addr, text);
            addr += static_cast<std::uint32_t>(text.size() - before);
            FIRMUP_ASSERT(addr == inst_offsets[pi][ii + 1],
                          "link: size/encode mismatch");
        }
    }

    loader::Executable exe;
    exe.name = exe_name;
    exe.arch = arch;
    exe.declared_arch = arch;
    exe.entry = procs.empty() ? options.text_base : proc_addrs[0];
    exe.text_addr = options.text_base;
    exe.data_addr = options.data_base;
    exe.text = std::move(text);
    exe.data.assign(data_cursor - options.data_base, 0);
    for (std::size_t pi = 0; pi < procs.size(); ++pi) {
        loader::Symbol sym;
        sym.addr = proc_addrs[pi];
        sym.name = procs[pi].name;
        sym.exported = procs[pi].exported;
        exe.symbols.push_back(std::move(sym));
    }
    return exe;
}

}  // namespace firmup::codegen
