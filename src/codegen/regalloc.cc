#include "codegen/regalloc.h"

#include <algorithm>
#include <map>

#include "support/error.h"

namespace firmup::codegen {

using compiler::MBlock;
using compiler::MInst;
using compiler::MProc;
using compiler::MTerm;
using compiler::VReg;

namespace {

template <typename Fn>
void
for_each_use(const MInst &inst, Fn fn)
{
    switch (inst.kind) {
      case MInst::Kind::Const:
      case MInst::Kind::GAddr:
        break;
      case MInst::Kind::Copy:
      case MInst::Kind::Load:
        fn(inst.a);
        break;
      case MInst::Kind::Bin:
      case MInst::Kind::Store:
        fn(inst.a);
        if (inst.b.is_vreg()) {
            fn(inst.b.reg);
        }
        break;
      case MInst::Kind::Call:
        for (VReg arg : inst.args) {
            fn(arg);
        }
        break;
    }
}

struct Interval
{
    VReg vreg = 0;
    int start = 0;
    int end = 0;
    bool crosses_call = false;
    bool used = false;
};

}  // namespace

std::vector<std::vector<bool>>
compute_live_in(const MProc &proc)
{
    const std::size_t n_vregs = proc.next_vreg;
    std::map<int, std::size_t> block_pos;
    for (std::size_t i = 0; i < proc.blocks.size(); ++i) {
        block_pos[proc.blocks[i].id] = i;
    }
    std::vector<std::vector<bool>> live_in(
        proc.blocks.size(), std::vector<bool>(n_vregs, false));
    bool changed = true;
    while (changed) {
        changed = false;
        for (std::size_t bi = proc.blocks.size(); bi-- > 0;) {
            const MBlock &block = proc.blocks[bi];
            std::vector<bool> live(n_vregs, false);
            auto absorb = [&](int succ_id) {
                const auto it = block_pos.find(succ_id);
                if (it == block_pos.end()) {
                    return;
                }
                const auto &succ = live_in[it->second];
                for (std::size_t v = 0; v < n_vregs; ++v) {
                    if (succ[v]) {
                        live[v] = true;
                    }
                }
            };
            switch (block.term.kind) {
              case MTerm::Kind::Jump:
                absorb(block.term.target);
                break;
              case MTerm::Kind::Branch:
                absorb(block.term.target);
                absorb(block.term.fallthrough);
                live[block.term.cond] = true;
                break;
              case MTerm::Kind::Ret:
                live[block.term.ret_reg] = true;
                break;
            }
            for (std::size_t ii = block.insts.size(); ii-- > 0;) {
                const MInst &inst = block.insts[ii];
                if (inst.has_dst()) {
                    live[inst.dst] = false;
                }
                for_each_use(inst, [&live](VReg r) { live[r] = true; });
            }
            if (live != live_in[bi]) {
                live_in[bi] = std::move(live);
                changed = true;
            }
        }
    }
    return live_in;
}

Allocation
allocate_registers(const MProc &proc, const isa::AbiInfo &abi,
                   bool callee_saved_first)
{
    const std::size_t n_vregs = proc.next_vreg;
    Allocation out;
    out.locs.resize(n_vregs);

    const auto live_in = compute_live_in(proc);
    std::map<int, std::size_t> block_pos;
    for (std::size_t i = 0; i < proc.blocks.size(); ++i) {
        block_pos[proc.blocks[i].id] = i;
    }

    // Assign linear positions: each instruction gets one slot, block
    // boundaries get their own positions so cross-block liveness extends
    // intervals to the whole block span.
    std::vector<Interval> ivs(n_vregs);
    for (std::size_t v = 0; v < n_vregs; ++v) {
        ivs[v].vreg = static_cast<VReg>(v);
        ivs[v].start = INT32_MAX;
        ivs[v].end = -1;
    }
    auto touch = [&ivs](VReg v, int pos) {
        ivs[v].used = true;
        ivs[v].start = std::min(ivs[v].start, pos);
        ivs[v].end = std::max(ivs[v].end, pos);
    };

    std::vector<int> call_positions;
    int pos = 0;
    for (std::size_t bi = 0; bi < proc.blocks.size(); ++bi) {
        const MBlock &block = proc.blocks[bi];
        const int block_start = pos++;
        // live-in vregs are live at the block start position.
        for (std::size_t v = 0; v < n_vregs; ++v) {
            if (live_in[bi][v]) {
                touch(static_cast<VReg>(v), block_start);
            }
        }
        for (const MInst &inst : block.insts) {
            for_each_use(inst,
                         [&touch, pos](VReg r) { touch(r, pos); });
            if (inst.has_dst()) {
                touch(inst.dst, pos);
            }
            if (inst.kind == MInst::Kind::Call) {
                call_positions.push_back(pos);
            }
            ++pos;
        }
        const int block_end = pos++;
        // live-out = union of successor live-ins.
        auto absorb = [&](int succ_id) {
            const auto it = block_pos.find(succ_id);
            if (it == block_pos.end()) {
                return;
            }
            for (std::size_t v = 0; v < n_vregs; ++v) {
                if (live_in[it->second][v]) {
                    touch(static_cast<VReg>(v), block_end);
                }
            }
        };
        switch (block.term.kind) {
          case MTerm::Kind::Jump:
            absorb(block.term.target);
            break;
          case MTerm::Kind::Branch:
            absorb(block.term.target);
            absorb(block.term.fallthrough);
            touch(block.term.cond, block_end);
            break;
          case MTerm::Kind::Ret:
            touch(block.term.ret_reg, block_end);
            break;
        }
    }
    // Parameters are live-in to the procedure.
    for (int i = 0; i < proc.num_params; ++i) {
        const auto v = static_cast<VReg>(i);
        if (v < n_vregs && ivs[v].used) {
            ivs[v].start = 0;
        }
    }

    for (Interval &iv : ivs) {
        if (!iv.used) {
            continue;
        }
        for (int cp : call_positions) {
            if (iv.start < cp && iv.end > cp) {
                iv.crosses_call = true;
                break;
            }
        }
    }

    // Linear scan.
    std::vector<Interval> order;
    for (const Interval &iv : ivs) {
        if (iv.used) {
            order.push_back(iv);
        }
    }
    std::sort(order.begin(), order.end(),
              [](const Interval &a, const Interval &b) {
                  return a.start != b.start ? a.start < b.start
                                            : a.vreg < b.vreg;
              });

    std::vector<isa::MReg> free_caller = abi.caller_saved;
    std::vector<isa::MReg> free_callee = abi.callee_saved;
    struct Active
    {
        VReg vreg;
        int end;
        isa::MReg reg;
        bool callee;
    };
    std::vector<Active> active;
    auto release = [&](const Active &a) {
        (a.callee ? free_callee : free_caller).push_back(a.reg);
    };

    for (const Interval &iv : order) {
        std::erase_if(active, [&](const Active &a) {
            if (a.end < iv.start) {
                release(a);
                return true;
            }
            return false;
        });
        isa::MReg reg = 0;
        bool assigned = false;
        bool is_callee = false;
        auto take = [&](std::vector<isa::MReg> &pool, bool callee) {
            if (!assigned && !pool.empty()) {
                reg = pool.front();
                pool.erase(pool.begin());
                assigned = true;
                is_callee = callee;
            }
        };
        if (iv.crosses_call) {
            take(free_callee, true);
        } else if (callee_saved_first) {
            take(free_callee, true);
            take(free_caller, false);
        } else {
            take(free_caller, false);
            take(free_callee, true);
        }
        if (assigned) {
            out.locs[iv.vreg] = Loc{Loc::Kind::Reg, reg, 0};
            active.push_back(Active{iv.vreg, iv.end, reg, is_callee});
            if (is_callee &&
                std::find(out.used_callee_saved.begin(),
                          out.used_callee_saved.end(),
                          reg) == out.used_callee_saved.end()) {
                out.used_callee_saved.push_back(reg);
            }
        } else {
            out.locs[iv.vreg] =
                Loc{Loc::Kind::Spill, 0, out.num_spill_slots++};
        }
    }
    return out;
}

}  // namespace firmup::codegen
