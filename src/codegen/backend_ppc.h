/**
 * @file
 * PPC32 code-generation backend (see backend.h for the driver contract).
 */
#pragma once

#include "codegen/backend.h"
#include "isa/ppc.h"

namespace firmup::codegen {

/** PPC32 instruction selection: cr0 compares, lis/ori constants, mflr. */
class PpcBackend final : public Backend
{
  public:
    explicit PpcBackend(const compiler::ToolchainProfile &profile);

  protected:
    void move(isa::MReg rd, isa::MReg rs) override;
    void load_const(isa::MReg rd, std::int32_t imm) override;
    void load_global_addr(isa::MReg rd, int global_index,
                          std::int32_t offset) override;
    void bin_rr(compiler::MOp op, isa::MReg rd, isa::MReg a,
                isa::MReg b) override;
    void bin_ri(compiler::MOp op, isa::MReg rd, isa::MReg a,
                std::int32_t imm) override;
    void cmp_set(isa::Cond cond, isa::MReg rd, isa::MReg a,
                 RVal b) override;
    void cmp_branch(isa::Cond cond, isa::MReg a, RVal b,
                    int label) override;
    void branch_nonzero(isa::MReg reg, int label) override;
    void jump(int label) override;
    void load_word(isa::MReg rd, isa::MReg base,
                   std::int32_t disp) override;
    void store_word(isa::MReg src, isa::MReg base,
                    std::int32_t disp) override;
    void plan_frame() override;
    void emit_prologue() override;
    void emit_epilogue() override;
    void spill_addr(int slot, isa::MReg &base,
                    std::int32_t &disp) const override;
    void emit_call_inst(int proc_index) override;

  private:
    void emit_cmp(isa::Cond cond, isa::MReg a, const RVal &b);

    int frame_ = 0;
    int pad_ = 0;
    int slots_bytes_ = 0;
};

}  // namespace firmup::codegen
