/**
 * @file
 * Linking: lay out generated procedures in a text section, resolve
 * symbolic references (labels, procedure entries, global addresses),
 * encode to bytes and produce a loader::Executable.
 */
#pragma once

#include <string>
#include <vector>

#include "codegen/backend.h"
#include "loader/fwelf.h"

namespace firmup::codegen {

/** Section placement for a linked executable. */
struct LinkOptions
{
    std::uint32_t text_base = 0x400000;
    std::uint32_t data_base = 0x10000000;
};

/**
 * Link @p procs into an executable image.
 *
 * Procedure 0 becomes the entry point. Every procedure gets a (non-
 * exported unless flagged) symbol; stripping is the caller's decision.
 * @p global_words gives the size of each global data object in 32-bit
 * words, laid out in order at data_base.
 */
loader::Executable link_module(const std::vector<ProcCode> &procs,
                               const std::vector<int> &global_words,
                               isa::Arch arch, const LinkOptions &options,
                               const std::string &exe_name);

}  // namespace firmup::codegen
