/**
 * @file
 * End-to-end build driver: source package → optimized MIR → machine code
 * → linked FWELF executable. This is the "vendor toolchain" a corpus
 * builder invokes; the query side uses it too, with the reference
 * gcc-like profile.
 */
#pragma once

#include <set>
#include <string>

#include "codegen/link.h"
#include "compiler/lower.h"
#include "compiler/passes.h"
#include "compiler/toolchain.h"
#include "lang/ast.h"
#include "loader/fwelf.h"

namespace firmup::codegen {

/** Everything that determines the bits of a built executable. */
struct BuildRequest
{
    isa::Arch arch = isa::Arch::Mips32;
    compiler::ToolchainProfile profile;
    std::set<std::string> enabled_features;  ///< feature-gated procedures
    bool all_features = true;   ///< ignore enabled_features, include all
    bool strip = false;         ///< drop symbols after linking
    bool keep_exported = true;  ///< exported symbols survive stripping
    std::string exe_name;
    LinkOptions link;
};

/** Compile a package to MIR under @p request (features + optimization). */
compiler::MModule compile_to_mir(const lang::PackageSource &source,
                                 const BuildRequest &request);

/** Full pipeline: compile, code-generate, link, optionally strip. */
loader::Executable build_executable(const lang::PackageSource &source,
                                    const BuildRequest &request);

}  // namespace firmup::codegen
