#include "codegen/backend.h"

#include "codegen/backend_arm.h"
#include "codegen/backend_mips.h"
#include "codegen/backend_ppc.h"
#include "codegen/backend_x86.h"
#include "support/error.h"

namespace firmup::codegen {

std::unique_ptr<Backend>
Backend::create(isa::Arch arch, const compiler::ToolchainProfile &profile)
{
    switch (arch) {
      case isa::Arch::Mips32:
        return std::make_unique<MipsBackend>(profile);
      case isa::Arch::Arm32:
        return std::make_unique<ArmBackend>(profile);
      case isa::Arch::Ppc32:
        return std::make_unique<PpcBackend>(profile);
      case isa::Arch::X86:
        return std::make_unique<X86Backend>(profile);
    }
    FIRMUP_ASSERT(false, "bad arch");
}

}  // namespace firmup::codegen
