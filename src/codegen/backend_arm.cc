#include "codegen/backend_arm.h"

#include "support/error.h"

namespace firmup::codegen {

using compiler::MOp;
using isa::MachInst;
using isa::MReg;
namespace a32 = isa::arm;

namespace {

bool
fits_imm12(std::int64_t v)
{
    return v >= -2048 && v <= 2047;
}

MachInst
make(a32::Op op, MReg rd = 0, MReg rn = 0, MReg rm = 0,
     std::int64_t imm = 0)
{
    MachInst inst;
    inst.op = static_cast<std::uint16_t>(op);
    inst.rd = rd;
    inst.rs = rn;
    inst.rt = rm;
    inst.imm = imm;
    return inst;
}

}  // namespace

ArmBackend::ArmBackend(const compiler::ToolchainProfile &profile)
    : Backend(isa::Arch::Arm32, profile)
{
}

void
ArmBackend::plan_frame()
{
    pad_ = profile_.extra_frame_pad;
    slots_bytes_ = 4 * alloc_.num_spill_slots;
    const int saved =
        4 * static_cast<int>(alloc_.used_callee_saved.size()) +
        (has_call_ ? 4 : 0);
    frame_ = pad_ + slots_bytes_ + saved;
    frame_ = (frame_ + 7) & ~7;
}

void
ArmBackend::spill_addr(int slot, MReg &base, std::int32_t &disp) const
{
    base = a32::Sp;
    disp = profile_.locals_descending
               ? pad_ + 4 * (alloc_.num_spill_slots - 1 - slot)
               : pad_ + 4 * slot;
}

void
ArmBackend::emit_prologue()
{
    if (frame_ == 0) {
        return;
    }
    emit(make(a32::Op::SubImm, a32::Sp, a32::Sp, 0, frame_));
    int offset = pad_ + slots_bytes_;
    for (MReg reg : alloc_.used_callee_saved) {
        emit(make(a32::Op::Str, reg, a32::Sp, 0, offset));
        offset += 4;
    }
    if (has_call_) {
        emit(make(a32::Op::Str, a32::Lr, a32::Sp, 0, frame_ - 4));
    }
}

void
ArmBackend::emit_epilogue()
{
    if (frame_ != 0) {
        int offset = pad_ + slots_bytes_;
        for (MReg reg : alloc_.used_callee_saved) {
            emit(make(a32::Op::Ldr, reg, a32::Sp, 0, offset));
            offset += 4;
        }
        if (has_call_) {
            emit(make(a32::Op::Ldr, a32::Lr, a32::Sp, 0, frame_ - 4));
        }
        emit(make(a32::Op::AddImm, a32::Sp, a32::Sp, 0, frame_));
    }
    emit(make(a32::Op::BxLr));
}

void
ArmBackend::move(MReg rd, MReg rs)
{
    emit(make(a32::Op::MovReg, rd, 0, rs));
}

void
ArmBackend::load_const(MReg rd, std::int32_t imm)
{
    if (fits_imm12(imm) && !profile_.materialize_full_const) {
        emit(make(a32::Op::MovImm, rd, 0, 0, imm));
        return;
    }
    const auto u = static_cast<std::uint32_t>(imm);
    emit(make(a32::Op::Movw, rd, 0, 0, u & 0xffff));
    if ((u >> 16) != 0 || profile_.materialize_full_const) {
        emit(make(a32::Op::Movt, rd, 0, 0, u >> 16));
    }
}

void
ArmBackend::load_global_addr(MReg rd, int global_index, std::int32_t off)
{
    MachInst lo = make(a32::Op::Movw, rd);
    lo.ref = MachInst::Ref::GlobalLo;
    lo.ref_index = global_index;
    lo.ref_offset = off;
    emit(lo);
    MachInst hi = make(a32::Op::Movt, rd);
    hi.ref = MachInst::Ref::GlobalHi;
    hi.ref_index = global_index;
    hi.ref_offset = off;
    emit(hi);
}

void
ArmBackend::bin_rr(MOp op, MReg rd, MReg a, MReg b)
{
    a32::Op sel;
    switch (op) {
      case MOp::Add: sel = a32::Op::Add; break;
      case MOp::Sub: sel = a32::Op::Sub; break;
      case MOp::Mul: sel = a32::Op::Mul; break;
      case MOp::DivS: sel = a32::Op::Sdiv; break;
      case MOp::RemS: sel = a32::Op::Srem; break;
      case MOp::And: sel = a32::Op::And; break;
      case MOp::Or: sel = a32::Op::Orr; break;
      case MOp::Xor: sel = a32::Op::Eor; break;
      case MOp::Shl: sel = a32::Op::Lsl; break;
      case MOp::ShrA: sel = a32::Op::Asr; break;
      case MOp::ShrL: sel = a32::Op::Lsr; break;
      default:
        FIRMUP_ASSERT(false, "arm: unexpected binop");
    }
    emit(make(sel, rd, a, b));
}

void
ArmBackend::bin_ri(MOp op, MReg rd, MReg a, std::int32_t imm)
{
    switch (op) {
      case MOp::Add:
        if (fits_imm12(imm)) {
            emit(make(a32::Op::AddImm, rd, a, 0, imm));
            return;
        }
        break;
      case MOp::Sub:
        if (fits_imm12(imm)) {
            emit(make(a32::Op::SubImm, rd, a, 0, imm));
            return;
        }
        break;
      case MOp::Shl:
        emit(make(a32::Op::LslImm, rd, a, 0, imm & 31));
        return;
      case MOp::ShrA:
        emit(make(a32::Op::AsrImm, rd, a, 0, imm & 31));
        return;
      case MOp::ShrL:
        emit(make(a32::Op::LsrImm, rd, a, 0, imm & 31));
        return;
      default:
        break;
    }
    Backend::bin_ri(op, rd, a, imm);
}

void
ArmBackend::emit_cmp(MReg a, const RVal &b)
{
    if (!b.is_reg && fits_imm12(b.imm)) {
        emit(make(a32::Op::CmpImm, 0, a, 0, b.imm));
        return;
    }
    MReg rb = b.reg;
    if (!b.is_reg) {
        load_const(abi_.scratch1, b.imm);
        rb = abi_.scratch1;
    }
    emit(make(a32::Op::Cmp, 0, a, rb));
}

void
ArmBackend::cmp_set(isa::Cond cond, MReg rd, MReg a, RVal b)
{
    emit_cmp(a, b);
    MachInst set = make(a32::Op::Set, rd);
    set.cond = cond;
    emit(set);
}

void
ArmBackend::cmp_branch(isa::Cond cond, MReg a, RVal b, int label)
{
    emit_cmp(a, b);
    MachInst br = make(a32::Op::B);
    br.cond = cond;
    br.rt = 1;  // conditional marker
    br.ref = MachInst::Ref::Block;
    br.ref_index = label;
    emit(br);
}

void
ArmBackend::branch_nonzero(MReg reg, int label)
{
    cmp_branch(isa::Cond::NE, reg, RVal::i(0), label);
}

void
ArmBackend::jump(int label)
{
    MachInst br = make(a32::Op::B);
    br.ref = MachInst::Ref::Block;
    br.ref_index = label;
    emit(br);
}

void
ArmBackend::load_word(MReg rd, MReg base, std::int32_t disp)
{
    emit(make(a32::Op::Ldr, rd, base, 0, disp));
}

void
ArmBackend::store_word(MReg src, MReg base, std::int32_t disp)
{
    emit(make(a32::Op::Str, src, base, 0, disp));
}

void
ArmBackend::emit_call_inst(int proc_index)
{
    MachInst bl = make(a32::Op::Bl);
    bl.ref = MachInst::Ref::Proc;
    bl.ref_index = proc_index;
    emit(bl);
}

}  // namespace firmup::codegen
