/**
 * @file
 * x86 code-generation backend (see backend.h for the driver contract).
 */
#pragma once

#include "codegen/backend.h"
#include "isa/x86.h"

namespace firmup::codegen {

/**
 * x86 selection: two-operand destructive ALU forms, EFLAGS compares,
 * cdecl stack arguments and an ebp frame. The structural distance from
 * the three RISC backends is intentional — it is what the canonical
 * strand representation has to erase.
 */
class X86Backend final : public Backend
{
  public:
    explicit X86Backend(const compiler::ToolchainProfile &profile);

  protected:
    void move(isa::MReg rd, isa::MReg rs) override;
    void load_const(isa::MReg rd, std::int32_t imm) override;
    void load_global_addr(isa::MReg rd, int global_index,
                          std::int32_t offset) override;
    void bin_rr(compiler::MOp op, isa::MReg rd, isa::MReg a,
                isa::MReg b) override;
    void bin_ri(compiler::MOp op, isa::MReg rd, isa::MReg a,
                std::int32_t imm) override;
    void cmp_set(isa::Cond cond, isa::MReg rd, isa::MReg a,
                 RVal b) override;
    void cmp_branch(isa::Cond cond, isa::MReg a, RVal b,
                    int label) override;
    void branch_nonzero(isa::MReg reg, int label) override;
    void jump(int label) override;
    void load_word(isa::MReg rd, isa::MReg base,
                   std::int32_t disp) override;
    void store_word(isa::MReg src, isa::MReg base,
                    std::int32_t disp) override;
    void plan_frame() override;
    void emit_prologue() override;
    void emit_epilogue() override;
    void spill_addr(int slot, isa::MReg &base,
                    std::int32_t &disp) const override;
    void param_init(int index, compiler::VReg v) override;
    void call_sequence(const compiler::MInst &inst) override;
    void emit_call_inst(int proc_index) override;

  private:
    void emit_cmp(isa::MReg a, const RVal &b);

    int sub_bytes_ = 0;  ///< bytes subtracted from esp for spills/pad
};

}  // namespace firmup::codegen
