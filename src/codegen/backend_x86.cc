#include "codegen/backend_x86.h"

#include <algorithm>

#include "support/error.h"

namespace firmup::codegen {

using compiler::MInst;
using compiler::MOp;
using isa::MachInst;
using isa::MReg;
namespace x = isa::x86;

namespace {

MachInst
make(x::Op op, MReg rd = 0, MReg rs = 0, MReg rt = 0, std::int64_t imm = 0)
{
    MachInst inst;
    inst.op = static_cast<std::uint16_t>(op);
    inst.rd = rd;
    inst.rs = rs;
    inst.rt = rt;
    inst.imm = imm;
    return inst;
}

x::Op
rr_op(MOp op)
{
    switch (op) {
      case MOp::Add: return x::Op::AddRR;
      case MOp::Sub: return x::Op::SubRR;
      case MOp::Mul: return x::Op::ImulRR;
      case MOp::DivS: return x::Op::IdivRR;
      case MOp::RemS: return x::Op::IremRR;
      case MOp::And: return x::Op::AndRR;
      case MOp::Or: return x::Op::OrRR;
      case MOp::Xor: return x::Op::XorRR;
      case MOp::Shl: return x::Op::ShlRR;
      case MOp::ShrA: return x::Op::SarRR;
      case MOp::ShrL: return x::Op::ShrRR;
      default:
        FIRMUP_ASSERT(false, "x86: unexpected binop");
    }
}

x::Op
ri_op(MOp op)
{
    switch (op) {
      case MOp::Add: return x::Op::AddRI;
      case MOp::Sub: return x::Op::SubRI;
      case MOp::Mul: return x::Op::ImulRI;
      case MOp::And: return x::Op::AndRI;
      case MOp::Or: return x::Op::OrRI;
      case MOp::Xor: return x::Op::XorRI;
      case MOp::Shl: return x::Op::ShlRI;
      case MOp::ShrA: return x::Op::SarRI;
      case MOp::ShrL: return x::Op::ShrRI;
      default:
        return x::Op::Nop;  // no immediate form (div/rem)
    }
}

}  // namespace

X86Backend::X86Backend(const compiler::ToolchainProfile &profile)
    : Backend(isa::Arch::X86, profile)
{
}

void
X86Backend::plan_frame()
{
    sub_bytes_ = profile_.extra_frame_pad + 4 * alloc_.num_spill_slots;
}

void
X86Backend::spill_addr(int slot, MReg &base, std::int32_t &disp) const
{
    base = x::Ebp;
    disp = profile_.locals_descending
               ? -(profile_.extra_frame_pad +
                   4 * (alloc_.num_spill_slots - slot))
               : -(profile_.extra_frame_pad + 4 * (slot + 1));
}

void
X86Backend::emit_prologue()
{
    emit(make(x::Op::Push, x::Ebp));
    emit(make(x::Op::MovRR, x::Ebp, 0, x::Esp));
    if (sub_bytes_ > 0) {
        emit(make(x::Op::SubRI, x::Esp, 0, 0, sub_bytes_));
    }
    for (MReg reg : alloc_.used_callee_saved) {
        emit(make(x::Op::Push, reg));
    }
}

void
X86Backend::emit_epilogue()
{
    for (auto it = alloc_.used_callee_saved.rbegin();
         it != alloc_.used_callee_saved.rend(); ++it) {
        emit(make(x::Op::Pop, *it));
    }
    if (sub_bytes_ > 0) {
        emit(make(x::Op::AddRI, x::Esp, 0, 0, sub_bytes_));
    }
    emit(make(x::Op::Pop, x::Ebp));
    emit(make(x::Op::Ret));
}

void
X86Backend::param_init(int index, compiler::VReg v)
{
    // cdecl: arg i at [ebp + 8 + 4i].
    const std::int32_t disp = 8 + 4 * index;
    const Loc &loc = alloc_.locs[v];
    if (loc.is_reg()) {
        emit(make(x::Op::LoadRM, loc.reg, x::Ebp, 0, disp));
    } else if (loc.is_spill()) {
        emit(make(x::Op::LoadRM, abi_.scratch0, x::Ebp, 0, disp));
        store_result(v, abi_.scratch0);
    }
}

void
X86Backend::move(MReg rd, MReg rs)
{
    emit(make(x::Op::MovRR, rd, 0, rs));
}

void
X86Backend::load_const(MReg rd, std::int32_t imm)
{
    emit(make(x::Op::MovRI, rd, 0, 0, imm));
}

void
X86Backend::load_global_addr(MReg rd, int global_index, std::int32_t off)
{
    MachInst mov = make(x::Op::MovRI, rd);
    mov.ref = MachInst::Ref::GlobalAbs;
    mov.ref_index = global_index;
    mov.ref_offset = off;
    emit(mov);
}

void
X86Backend::bin_rr(MOp op, MReg rd, MReg a, MReg b)
{
    const x::Op sel = rr_op(op);
    if (rd == a) {
        emit(make(sel, rd, 0, b));
        return;
    }
    FIRMUP_ASSERT(rd != b, "x86: dst aliases rhs");
    emit(make(x::Op::MovRR, rd, 0, a));
    emit(make(sel, rd, 0, b));
}

void
X86Backend::bin_ri(MOp op, MReg rd, MReg a, std::int32_t imm)
{
    const x::Op sel = ri_op(op);
    if (sel == x::Op::Nop) {  // idiv/irem need a register operand
        Backend::bin_ri(op, rd, a, imm);
        return;
    }
    if (rd != a) {
        emit(make(x::Op::MovRR, rd, 0, a));
    }
    emit(make(sel, rd, 0, 0, imm));
}

void
X86Backend::emit_cmp(MReg a, const RVal &b)
{
    if (b.is_reg) {
        emit(make(x::Op::CmpRR, a, 0, b.reg));
    } else {
        emit(make(x::Op::CmpRI, a, 0, 0, b.imm));
    }
}

void
X86Backend::cmp_set(isa::Cond cond, MReg rd, MReg a, RVal b)
{
    emit_cmp(a, b);
    MachInst set = make(x::Op::Setcc, rd);
    set.cond = cond;
    emit(set);
}

void
X86Backend::cmp_branch(isa::Cond cond, MReg a, RVal b, int label)
{
    emit_cmp(a, b);
    MachInst jcc = make(x::Op::Jcc);
    jcc.cond = cond;
    jcc.ref = MachInst::Ref::Block;
    jcc.ref_index = label;
    emit(jcc);
}

void
X86Backend::branch_nonzero(MReg reg, int label)
{
    cmp_branch(isa::Cond::NE, reg, RVal::i(0), label);
}

void
X86Backend::jump(int label)
{
    MachInst jmp = make(x::Op::Jmp);
    jmp.ref = MachInst::Ref::Block;
    jmp.ref_index = label;
    emit(jmp);
}

void
X86Backend::load_word(MReg rd, MReg base, std::int32_t disp)
{
    emit(make(x::Op::LoadRM, rd, base, 0, disp));
}

void
X86Backend::store_word(MReg src, MReg base, std::int32_t disp)
{
    emit(make(x::Op::StoreMR, src, base, 0, disp));
}

void
X86Backend::call_sequence(const MInst &inst)
{
    // cdecl: push arguments right-to-left, caller cleans the stack.
    for (std::size_t i = inst.args.size(); i-- > 0;) {
        const MReg r = value_reg(inst.args[i], abi_.scratch0);
        emit(make(x::Op::Push, r));
    }
    emit_call_inst(inst.callee);
    if (!inst.args.empty()) {
        emit(make(x::Op::AddRI, x::Esp, 0, 0,
                  static_cast<std::int32_t>(4 * inst.args.size())));
    }
    store_result(inst.dst, x::Eax);
}

void
X86Backend::emit_call_inst(int proc_index)
{
    MachInst call = make(x::Op::Call);
    call.ref = MachInst::Ref::Proc;
    call.ref_index = proc_index;
    emit(call);
}

}  // namespace firmup::codegen
