/**
 * @file
 * µIR — the VEX-like intermediate representation produced by the lifters.
 *
 * The paper (section 3.1) lifts machine code to Valgrind's VEX-IR because
 * assembly is "succinct and not expressive": sub-registers alias and flag
 * side-effects are implicit. µIR plays the same role here. Its properties,
 * chosen to match what the strand machinery (section 3.2) relies on:
 *
 *  - Temporaries are in SSA form *within a basic block* (each temp is
 *    assigned exactly once); guest registers carry state across statements
 *    via explicit Get/Put statements.
 *  - All side effects are explicit: a lifted compare instruction Puts every
 *    flag register it defines.
 *  - Calls are ordinary statements (basic blocks do not split at calls,
 *    matching IDA-style block extraction used by the paper; see Fig. 1(a)
 *    where `jalr` appears mid-block).
 *
 * Guest registers are identified by flat RegId values; the mapping to names
 * is per-ISA and irrelevant to canonicalization, which folds registers into
 * normalized procedure inputs anyway.
 */
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace firmup::ir {

/** Flat guest-register identifier (per-ISA numbering, plus pseudo regs). */
using RegId = std::uint16_t;

/** Temporary identifier, SSA within a block. */
using TempId = std::uint32_t;

/** Binary operators. Comparisons yield 0/1 in a 32-bit temp. */
enum class BinOp : std::uint8_t {
    Add, Sub, Mul, DivS, DivU, RemS, RemU,
    And, Or, Xor, Shl, ShrL, ShrA,
    CmpEQ, CmpNE, CmpLTS, CmpLTU, CmpLES, CmpLEU,
};

/** Unary operators. */
enum class UnOp : std::uint8_t { Neg, Not };

/** Name of a binary operator, for printing. */
const char *binop_name(BinOp op);
/** Name of a unary operator, for printing. */
const char *unop_name(UnOp op);

/** True for CmpEQ..CmpLEU. */
bool is_comparison(BinOp op);
/** True for Add/Mul/And/Or/Xor/CmpEQ/CmpNE (operand order irrelevant). */
bool is_commutative(BinOp op);

/** An operand: either a temporary or an immediate constant. */
struct Operand
{
    enum class Kind : std::uint8_t { None, Temp, Const } kind = Kind::None;
    std::uint64_t value = 0;  ///< TempId or 32-bit constant (zero-extended)

    static Operand temp(TempId t) { return {Kind::Temp, t}; }
    static Operand imm(std::uint32_t c) { return {Kind::Const, c}; }
    static Operand none() { return {}; }

    bool is_temp() const { return kind == Kind::Temp; }
    bool is_const() const { return kind == Kind::Const; }
    TempId as_temp() const { return static_cast<TempId>(value); }
    std::uint32_t as_const() const { return static_cast<std::uint32_t>(value); }

    bool operator==(const Operand &) const = default;
};

/**
 * One µIR statement.
 *
 * Statement kinds and their operand usage:
 *  - Get:    dst = guest register `reg`
 *  - Put:    guest register `reg` = a
 *  - Bin:    dst = binop(a, b)
 *  - Un:     dst = unop(a)
 *  - Load:   dst = mem[a]
 *  - Store:  mem[a] = b
 *  - Select: dst = a ? b : c   (c stored in `extra`)
 *  - Call:   dst = call a      (dst models the ABI return register value)
 *  - Exit:   if (a) goto const b   (side exit; `b` is a code address)
 */
struct Stmt
{
    enum class Kind : std::uint8_t {
        Get, Put, Bin, Un, Load, Store, Select, Call, Exit,
    };

    Kind kind;
    TempId dst = 0;          ///< defined temp (Get/Bin/Un/Load/Select/Call)
    RegId reg = 0;           ///< guest register (Get/Put)
    BinOp bin_op = BinOp::Add;
    UnOp un_op = UnOp::Neg;
    Operand a, b;
    Operand extra;           ///< Select's false-arm
    std::uint64_t insn_addr = 0;  ///< address of the originating instruction

    static Stmt get(TempId dst, RegId reg);
    static Stmt put(RegId reg, Operand a);
    static Stmt bin(TempId dst, BinOp op, Operand a, Operand b);
    static Stmt un(TempId dst, UnOp op, Operand a);
    static Stmt load(TempId dst, Operand addr);
    static Stmt store(Operand addr, Operand value);
    static Stmt select(TempId dst, Operand cond, Operand t, Operand f);
    static Stmt call(TempId dst, Operand target);
    static Stmt exit(Operand cond, Operand target);

    /** True for kinds that define `dst`. */
    bool defines_temp() const;
};

/** How a basic block transfers control at its end. */
enum class BlockEndKind : std::uint8_t {
    Fallthrough,  ///< falls into the next block
    Jump,         ///< unconditional jump to `target`
    CondJump,     ///< Exit statement taken => `target`, else fallthrough
    Ret,          ///< procedure return
};

/** A µIR basic block: statements plus structured control-flow exit. */
struct Block
{
    std::uint64_t addr = 0;        ///< guest address of the first instruction
    std::vector<Stmt> stmts;
    BlockEndKind end = BlockEndKind::Fallthrough;
    std::uint64_t target = 0;      ///< jump/branch destination address
    std::uint64_t fallthrough = 0; ///< address of the fallthrough successor

    /** Successor block addresses implied by `end`. */
    std::vector<std::uint64_t> successors() const;
};

/** A lifted procedure: CFG of blocks keyed by address. */
struct Procedure
{
    std::uint64_t entry = 0;
    std::string name;              ///< empty when stripped
    std::map<std::uint64_t, Block> blocks;

    /** Addresses of procedures this one calls with constant targets. */
    std::vector<std::uint64_t> callees() const;

    /** Total statement count across all blocks. */
    std::size_t stmt_count() const;
};

/**
 * A variable for data-flow purposes: a temp or a guest register.
 * Memory is deliberately not modeled as a variable: a Load is an input
 * leaf of its strand and a Store is an outward-facing output, matching
 * the per-block slicing granularity of Alg. 1.
 */
struct Var
{
    enum class Kind : std::uint8_t { Temp, Reg } kind;
    std::uint32_t id;

    static Var temp(TempId t) { return {Kind::Temp, t}; }
    static Var reg(RegId r) { return {Kind::Reg, r}; }

    bool operator==(const Var &) const = default;
    auto operator<=>(const Var &) const = default;
};

/** Variables read (used) by a statement — RSet in Alg. 1. */
std::vector<Var> read_set(const Stmt &s);
/** Variables written (defined) by a statement — WSet in Alg. 1. */
std::vector<Var> write_set(const Stmt &s);

/** Render a statement as text (for debugging and the Fig. 3 example). */
std::string to_string(const Stmt &s);
/** Render a whole block. */
std::string to_string(const Block &b);
/** Render a whole procedure. */
std::string to_string(const Procedure &p);

}  // namespace firmup::ir
