#include "ir/uir.h"

#include "support/error.h"
#include "support/str.h"

namespace firmup::ir {

const char *
binop_name(BinOp op)
{
    switch (op) {
      case BinOp::Add: return "add";
      case BinOp::Sub: return "sub";
      case BinOp::Mul: return "mul";
      case BinOp::DivS: return "sdiv";
      case BinOp::DivU: return "udiv";
      case BinOp::RemS: return "srem";
      case BinOp::RemU: return "urem";
      case BinOp::And: return "and";
      case BinOp::Or: return "or";
      case BinOp::Xor: return "xor";
      case BinOp::Shl: return "shl";
      case BinOp::ShrL: return "lshr";
      case BinOp::ShrA: return "ashr";
      case BinOp::CmpEQ: return "icmp eq";
      case BinOp::CmpNE: return "icmp ne";
      case BinOp::CmpLTS: return "icmp slt";
      case BinOp::CmpLTU: return "icmp ult";
      case BinOp::CmpLES: return "icmp sle";
      case BinOp::CmpLEU: return "icmp ule";
    }
    return "?";
}

const char *
unop_name(UnOp op)
{
    switch (op) {
      case UnOp::Neg: return "neg";
      case UnOp::Not: return "not";
    }
    return "?";
}

bool
is_comparison(BinOp op)
{
    switch (op) {
      case BinOp::CmpEQ:
      case BinOp::CmpNE:
      case BinOp::CmpLTS:
      case BinOp::CmpLTU:
      case BinOp::CmpLES:
      case BinOp::CmpLEU:
        return true;
      default:
        return false;
    }
}

bool
is_commutative(BinOp op)
{
    switch (op) {
      case BinOp::Add:
      case BinOp::Mul:
      case BinOp::And:
      case BinOp::Or:
      case BinOp::Xor:
      case BinOp::CmpEQ:
      case BinOp::CmpNE:
        return true;
      default:
        return false;
    }
}

Stmt
Stmt::get(TempId dst, RegId reg)
{
    Stmt s;
    s.kind = Kind::Get;
    s.dst = dst;
    s.reg = reg;
    return s;
}

Stmt
Stmt::put(RegId reg, Operand a)
{
    Stmt s;
    s.kind = Kind::Put;
    s.reg = reg;
    s.a = a;
    return s;
}

Stmt
Stmt::bin(TempId dst, BinOp op, Operand a, Operand b)
{
    Stmt s;
    s.kind = Kind::Bin;
    s.dst = dst;
    s.bin_op = op;
    s.a = a;
    s.b = b;
    return s;
}

Stmt
Stmt::un(TempId dst, UnOp op, Operand a)
{
    Stmt s;
    s.kind = Kind::Un;
    s.dst = dst;
    s.un_op = op;
    s.a = a;
    return s;
}

Stmt
Stmt::load(TempId dst, Operand addr)
{
    Stmt s;
    s.kind = Kind::Load;
    s.dst = dst;
    s.a = addr;
    return s;
}

Stmt
Stmt::store(Operand addr, Operand value)
{
    Stmt s;
    s.kind = Kind::Store;
    s.a = addr;
    s.b = value;
    return s;
}

Stmt
Stmt::select(TempId dst, Operand cond, Operand t, Operand f)
{
    Stmt s;
    s.kind = Kind::Select;
    s.dst = dst;
    s.a = cond;
    s.b = t;
    s.extra = f;
    return s;
}

Stmt
Stmt::call(TempId dst, Operand target)
{
    Stmt s;
    s.kind = Kind::Call;
    s.dst = dst;
    s.a = target;
    return s;
}

Stmt
Stmt::exit(Operand cond, Operand target)
{
    Stmt s;
    s.kind = Kind::Exit;
    s.a = cond;
    s.b = target;
    return s;
}

bool
Stmt::defines_temp() const
{
    switch (kind) {
      case Kind::Get:
      case Kind::Bin:
      case Kind::Un:
      case Kind::Load:
      case Kind::Select:
      case Kind::Call:
        return true;
      case Kind::Put:
      case Kind::Store:
      case Kind::Exit:
        return false;
    }
    return false;
}

std::vector<std::uint64_t>
Block::successors() const
{
    switch (end) {
      case BlockEndKind::Fallthrough:
        return {fallthrough};
      case BlockEndKind::Jump:
        return {target};
      case BlockEndKind::CondJump:
        return {target, fallthrough};
      case BlockEndKind::Ret:
        return {};
    }
    return {};
}

std::vector<std::uint64_t>
Procedure::callees() const
{
    std::vector<std::uint64_t> out;
    for (const auto &[addr, block] : blocks) {
        for (const Stmt &s : block.stmts) {
            if (s.kind == Stmt::Kind::Call && s.a.is_const()) {
                out.push_back(s.a.as_const());
            }
        }
    }
    return out;
}

std::size_t
Procedure::stmt_count() const
{
    std::size_t n = 0;
    for (const auto &[addr, block] : blocks) {
        n += block.stmts.size();
    }
    return n;
}

namespace {

void
add_operand_reads(const Operand &op, std::vector<Var> &out)
{
    if (op.is_temp()) {
        out.push_back(Var::temp(op.as_temp()));
    }
}

std::string
operand_str(const Operand &op)
{
    switch (op.kind) {
      case Operand::Kind::None:
        return "<none>";
      case Operand::Kind::Temp:
        return "t" + std::to_string(op.as_temp());
      case Operand::Kind::Const:
        return "0x" + to_hex(op.as_const());
    }
    return "?";
}

}  // namespace

std::vector<Var>
read_set(const Stmt &s)
{
    std::vector<Var> out;
    switch (s.kind) {
      case Stmt::Kind::Get:
        out.push_back(Var::reg(s.reg));
        break;
      case Stmt::Kind::Put:
        add_operand_reads(s.a, out);
        break;
      case Stmt::Kind::Bin:
      case Stmt::Kind::Store:
        add_operand_reads(s.a, out);
        add_operand_reads(s.b, out);
        break;
      case Stmt::Kind::Un:
      case Stmt::Kind::Load:
      case Stmt::Kind::Call:
        add_operand_reads(s.a, out);
        break;
      case Stmt::Kind::Select:
        add_operand_reads(s.a, out);
        add_operand_reads(s.b, out);
        add_operand_reads(s.extra, out);
        break;
      case Stmt::Kind::Exit:
        add_operand_reads(s.a, out);
        add_operand_reads(s.b, out);
        break;
    }
    return out;
}

std::vector<Var>
write_set(const Stmt &s)
{
    std::vector<Var> out;
    if (s.defines_temp()) {
        out.push_back(Var::temp(s.dst));
    }
    if (s.kind == Stmt::Kind::Put) {
        out.push_back(Var::reg(s.reg));
    }
    return out;
}

std::string
to_string(const Stmt &s)
{
    const std::string d = "t" + std::to_string(s.dst);
    switch (s.kind) {
      case Stmt::Kind::Get:
        return d + " = Get(r" + std::to_string(s.reg) + ")";
      case Stmt::Kind::Put:
        return "Put(r" + std::to_string(s.reg) + ", " + operand_str(s.a) +
               ")";
      case Stmt::Kind::Bin:
        return d + " = " + binop_name(s.bin_op) + " " + operand_str(s.a) +
               ", " + operand_str(s.b);
      case Stmt::Kind::Un:
        return d + " = " + unop_name(s.un_op) + " " + operand_str(s.a);
      case Stmt::Kind::Load:
        return d + " = Load(" + operand_str(s.a) + ")";
      case Stmt::Kind::Store:
        return "Store(" + operand_str(s.a) + ", " + operand_str(s.b) + ")";
      case Stmt::Kind::Select:
        return d + " = Select(" + operand_str(s.a) + ", " +
               operand_str(s.b) + ", " + operand_str(s.extra) + ")";
      case Stmt::Kind::Call:
        return d + " = Call(" + operand_str(s.a) + ")";
      case Stmt::Kind::Exit:
        return "Exit(" + operand_str(s.a) + ") -> " + operand_str(s.b);
    }
    return "?";
}

std::string
to_string(const Block &b)
{
    std::string out = "block 0x" + to_hex(b.addr) + ":\n";
    for (const Stmt &s : b.stmts) {
        out += "  " + to_string(s) + "\n";
    }
    switch (b.end) {
      case BlockEndKind::Fallthrough:
        out += "  fallthrough 0x" + to_hex(b.fallthrough) + "\n";
        break;
      case BlockEndKind::Jump:
        out += "  jump 0x" + to_hex(b.target) + "\n";
        break;
      case BlockEndKind::CondJump:
        out += "  condjump 0x" + to_hex(b.target) + " / 0x" +
               to_hex(b.fallthrough) + "\n";
        break;
      case BlockEndKind::Ret:
        out += "  ret\n";
        break;
    }
    return out;
}

std::string
to_string(const Procedure &p)
{
    std::string out = "proc";
    if (!p.name.empty()) {
        out += " " + p.name;
    }
    out += " @ 0x" + to_hex(p.entry) + "\n";
    for (const auto &[addr, block] : p.blocks) {
        out += to_string(block);
    }
    return out;
}

}  // namespace firmup::ir
