/**
 * @file
 * The FirmUp search driver — the tool facade tying the stack together.
 *
 * A vulnerability search (the paper's problem definition) takes a CVE
 * record, builds the query executable (the latest vulnerable version of
 * the package, compiled with the reference gcc-like toolchain for the
 * target's ISA, exactly like section 5.1), lifts and indexes the target,
 * and runs the back-and-forth game. A detection is accepted when the
 * game produces a consistent match sharing at least `min_confirm_sim`
 * strands.
 */
#pragma once

#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "baseline/bindiff_like.h"
#include "baseline/gitz_like.h"
#include "eval/health.h"
#include "eval/journal.h"
#include "firmware/catalog.h"
#include "firmware/corpus.h"
#include "game/game.h"
#include "sim/index_cache.h"
#include "sim/similarity.h"
#include "strand/memo.h"
#include "support/cancel.h"

namespace firmup::eval {

/** Search configuration (ablation knobs included). */
struct SearchOptions
{
    int min_confirm_sim = 4;   ///< absolute floor of shared strands
    /**
     * Relative floor: a detection must share at least this fraction of
     * the query procedure's strands. Procedure sizes vary wildly, so an
     * absolute count alone cannot separate true matches from generic-
     * idiom collisions.
     */
    double min_confirm_ratio = 0.5;
    /**
     * Dominance fallback: a lower-overlap match is still accepted when
     * it shares at least `min_margin_ratio` of the query's strands AND
     * dominates the runner-up procedure of the same executable by
     * `margin_factor`. True matches in heavily re-optimized builds have
     * modest absolute overlap but no serious competitor; cross-package
     * noise has many near-equal competitors.
     */
    double min_margin_ratio = 0.18;
    double margin_factor = 2.5;
    bool use_game = true;      ///< false = procedure-centric top-1
    game::GameOptions game;
    /**
     * Candidate retrieval stage (sim::RetrievalMode). Exact (default)
     * is the complete posting-list path and the ablation baseline —
     * bit-identical to every pre-LSH scan. Lsh prefilters candidates
     * through the MinHash banding table: the driver builds each
     * query's and target's LSH table (lsh_bands x lsh_rows) before its
     * games run, and sketches ride the persistent FWIX v4 entries so
     * warm scans never recompute them. Findings may differ from Exact
     * (recall is property-tested and benchmarked, never assumed); the
     * scan fingerprint covers this knob, so a journal written in one
     * mode cannot be resumed into the other.
     */
    sim::RetrievalMode retrieval = sim::RetrievalMode::Exact;
    /**
     * LSH banding shape: bands x rows <= strand::kSketchSize. A pair
     * with Jaccard similarity s collides in at least one band with
     * probability 1-(1-s^r)^b — steep at 16x4 (near-certain above
     * s=0.6, near-zero below s=0.2), which prunes hard; the probe's
     * rare-hash containment floor (sim::lsh_candidates) is what keeps
     * low-Jaccard-but-high-Sim matches reachable, so the bands can
     * afford to be selective.
     */
    unsigned lsh_bands = 16;
    unsigned lsh_rows = 4;
    strand::CanonOptions canon;  ///< section ranges filled per target
    /**
     * Share one cross-executable canonicalization memo (strand/memo.h)
     * across every cold index this driver builds. Firmware corpora
     * re-ship identical basic blocks constantly, so repeat blocks
     * replay their memoized strand hashes instead of re-canonicalizing.
     * Ablation knob: memo-on and memo-off scans are bit-identical.
     */
    bool canon_memo = true;
    /**
     * When non-empty, a persistent content-addressed index cache
     * directory (sim::IndexCacheStore): finalized FWIX v2 indexes are
     * loaded from it before lifting and written back after indexing, so
     * the second scan of an immutable corpus skips lift+canon+finalize
     * entirely. Corrupt or stale entries degrade to misses.
     */
    std::string index_cache_dir;
    /**
     * Serve persistent-store entries through the FWIX v5 mmap view path
     * (zero-copy open: checksum pass + O(procs) materialization) when
     * the host supports it. False is the --no-mmap ablation baseline:
     * the copying parser streams every arena into owning vectors.
     * Findings are bit-identical either way.
     */
    bool mmap_index = true;
    /**
     * Optional process-wide resident index cache (not owned). When set,
     * deserialized/mapped target indexes are published here under their
     * content key and later scans — including scans by *other* Driver
     * instances in the same process — serve them without touching the
     * store. Findings are bit-identical at any budget, including 0.
     */
    sim::ResidentIndexCache *resident_cache = nullptr;
    /**
     * When non-empty, search_corpus keeps an append-only scan journal
     * (eval/journal.h) at this path: each target's outcome is durably
     * recorded as it completes, so a crashed or cancelled scan can be
     * resumed without redoing finished targets.
     */
    std::string journal_path;
    /**
     * Resume from an existing journal at journal_path: already-scanned
     * content keys are replayed (outcomes and health deltas merged
     * bit-identically with a fresh scan) and only the remainder is
     * scanned. Without a journal file this degrades to a fresh scan.
     */
    bool resume = false;
    /**
     * Cooperative cancellation token, polled between pipeline stages
     * and at game-deadline sample points. When it fires, in-flight
     * targets drain, the journal is flushed, and the scan returns a
     * partial result with health().cancelled set. Not owned.
     */
    CancelToken *cancel = nullptr;
    /**
     * Per-target watchdog: wall-clock budget in seconds for one
     * target's game (tightens game.max_seconds when smaller; 0 keeps
     * the game's own budget). A watchdog-expired game is unresolved,
     * retried per the policy below, and counted in
     * health().watchdog_expired.
     */
    double target_budget_seconds = 0.0;
    /**
     * Bounded retry-with-backoff for transient per-target failures
     * (error_code_transient: IoError lifts, watchdog-expired games).
     * Deterministic failures are never retried.
     */
    int max_target_retries = 2;
    double retry_backoff_seconds = 0.05;
    /**
     * Test seam for deterministic interruption: request cancellation on
     * `cancel` after this many journal appends (0 = never). The CI
     * interrupt/resume smoke and the kill-mid-scan property test use it
     * to cut a scan at a reproducible point without racing a signal.
     */
    std::size_t cancel_after_appends = 0;
};

/** A prepared query: indexed executable + the vulnerable procedure. */
struct Query
{
    std::string label;          ///< e.g. "CVE-2014-4877"
    std::string package;
    std::string procedure;
    std::string version;
    sim::ExecutableIndex index;
    int qv = -1;                ///< index of the query procedure
    /**
     * Structural index for the BinDiff baseline. Empty when the query
     * was served from the persistent index store on the hunt path
     * (search_corpus/search_corpus_batch never read it); build_query
     * always fills it, which is what the baseline experiments use.
     */
    baseline::GraphIndex graph;
};

// SearchOutcome lives in eval/journal.h: it is the journal's record
// payload, and the journal must not depend on the driver.

/** One corpus executable addressed for a scan. */
struct CorpusTarget
{
    const loader::Executable *exe = nullptr;
    int image_index = -1;  ///< into Corpus::images; -1 = standalone
};

/** Per-target result of a corpus-wide search. */
struct CorpusOutcome
{
    CorpusTarget target;
    /** False when the executable is quarantined (outcome is empty). */
    bool indexed = false;
    SearchOutcome outcome;
};

/** Flatten every executable of @p corpus into scan targets. */
std::vector<CorpusTarget> corpus_targets(const firmware::Corpus &corpus);

/**
 * Content identity of an executable: name + text bytes. Byte-identical
 * executables re-shipped across firmware versions collapse to one key
 * (paper section 5.2 observation) — this is the cache and quarantine key
 * used throughout the driver.
 */
std::uint64_t content_key(const loader::Executable &exe);

/**
 * Resolve a worker-thread count: non-zero @p threads is returned as-is;
 * 0 means the FIRMUP_THREADS environment override when set, otherwise
 * hardware concurrency (minimum 1). The determinism tests and CI use
 * FIRMUP_THREADS to pin parallelism externally on machines whose core
 * count would otherwise serialize the scan.
 */
unsigned resolve_worker_threads(unsigned threads);

/**
 * Journal scan label of one CVE hunt: (cve id, package, procedure,
 * latest vulnerable version) pins the query identity without building
 * it, so a journal can be opened before any lifting happens.
 */
std::string cve_scan_label(const firmware::CveRecord &cve);

/**
 * Journal scan label of a batched hunt — a batch of one keeps exactly
 * the single-CVE label, so a lone hunt journals identically whichever
 * overload started it. This is the label search_corpus_batch binds its
 * journal to.
 */
std::string batch_scan_label(const std::vector<firmware::CveRecord> &cves);

/**
 * Journal identity: binds a journal to one scan label (CVE id or the
 * joined query identities), the confirm/match mode, and every
 * deterministic matching knob of @p options — so a journal can only be
 * resumed into a scan that would have produced the same per-key
 * outcomes. Wall-clock knobs (watchdog, retries) are deliberately
 * excluded. Exposed at namespace scope so the shard-scan coordinator
 * (eval/shard.h) can seed per-shard journals and the persistent
 * scan-state manifest with exactly the fingerprint the workers'
 * drivers will demand on resume.
 */
std::uint64_t scan_fingerprint(const SearchOptions &options,
                               const std::string &label, bool confirm);

/** Drives lifting, indexing and matching with an index cache. */
class Driver
{
  public:
    explicit Driver(SearchOptions options = {});

    const SearchOptions &options() const { return options_; }
    SearchOptions &options() { return options_; }

    /**
     * Build the query for @p cve, targeting @p arch. The query version
     * is the newest version the CVE still affects (section 5.1).
     */
    Query build_query(const firmware::CveRecord &cve, isa::Arch arch);

    /** Build a query for an arbitrary (package, procedure, version). */
    Query build_query(const std::string &package,
                      const std::string &procedure,
                      const std::string &version, isa::Arch arch);

    /**
     * Lift + index a target executable. Results are cached by content,
     * so byte-identical executables re-shipped across firmware versions
     * are only processed once (paper section 5.2 observation).
     *
     * Untrusted input: returns nullptr when the executable cannot be
     * lifted — the executable is quarantined (recorded in health() with
     * its ErrorCode) and every later call returns nullptr without
     * re-attempting the lift. The scan continues.
     */
    const sim::ExecutableIndex *index_target(
        const loader::Executable &exe);

    /**
     * Structural (BinDiff) index of a target, cached likewise; nullptr
     * when the executable is quarantined.
     */
    const baseline::GraphIndex *graph_target(
        const loader::Executable &exe);

    /**
     * Lift + index every executable of @p corpus across @p threads
     * worker threads, seeding the caches (the paper's one-time corpus
     * indexing phase, section 5.1). Subsequent searches are pure
     * lookups. Unliftable executables are quarantined, not fatal.
     * @return number of distinct executables successfully indexed.
     */
    std::size_t preindex(const firmware::Corpus &corpus,
                         unsigned threads);

    /** Run the FirmUp search (game, or top-1 when use_game is off). */
    SearchOutcome search(const Query &query,
                         const sim::ExecutableIndex &target);

    /**
     * Like search(), but without the detection threshold: the outcome is
     * whatever the matcher produced. This is the controlled-experiment
     * protocol (section 5.3), where targets are known to contain the
     * procedure and the question is only *where* it is; the threshold
     * belongs to the wild hunt, where "is the package even in this
     * executable?" must be answered first.
     */
    SearchOutcome match(const Query &query,
                        const sim::ExecutableIndex &target);

    /**
     * Pure variants of search()/match(): no health mutation, safe to
     * call concurrently from worker threads against the (frozen) caches.
     * Feed the result to note_outcome() on the owning thread to keep the
     * health record identical to the serial path.
     */
    SearchOutcome search_outcome(const Query &query,
                                 const sim::ExecutableIndex &target) const;
    SearchOutcome match_outcome(const Query &query,
                                const sim::ExecutableIndex &target) const;

    /** Fold one outcome's budget/timing accounting into health(). */
    void note_outcome(const SearchOutcome &outcome);

    /**
     * Corpus-scale fan-out for one CVE: a batched hunt of size one (see
     * search_corpus_batch — this is exactly search_corpus_batch({cve})
     * with the single result row unwrapped, so health, journal and
     * findings semantics are the batch core's). @p threads 0 means
     * hardware concurrency (FIRMUP_THREADS honored). @p confirm false
     * runs match() semantics instead of search().
     */
    std::vector<CorpusOutcome> search_corpus(
        const firmware::CveRecord &cve,
        const std::vector<CorpusTarget> &targets, unsigned threads = 0,
        bool confirm = true);

    /** As above with prebuilt per-ISA queries (see build_queries). */
    std::vector<CorpusOutcome> search_corpus(
        const std::map<isa::Arch, Query> &queries,
        const std::vector<CorpusTarget> &targets, unsigned threads = 0,
        bool confirm = true);

    /**
     * Batched multi-CVE hunt — the production shape: hunt a whole CVE
     * list across one corpus in a single pass. Each target executable
     * is indexed exactly once (warm FWIX load or cold lift), per-ISA
     * queries are built once per CVE, and the games fan out over
     * (query, target) work items on a work-stealing scheduler
     * (support/threadpool.h) ordered target-major: every query's game
     * against a target runs back-to-back while that target's index is
     * hot, in contiguous chunks sized to actually fill cores instead of
     * drowning warm-cache games in per-task scheduling overhead.
     *
     * Returns one outcome row per CVE, in CVE order; row q is
     * bit-identical to what search_corpus(cves[q], targets) would have
     * produced with its own fresh caches, at any thread count and any
     * batch split (the batched-hunt determinism test is the bar).
     * Journal records are keyed (content key, query fingerprint), so a
     * killed hunt resumes mid-batch, skipping exactly the completed
     * (query, target) pairs.
     */
    std::vector<std::vector<CorpusOutcome>> search_corpus_batch(
        const std::vector<firmware::CveRecord> &cves,
        const std::vector<CorpusTarget> &targets, unsigned threads = 0,
        bool confirm = true);

    /**
     * Index @p targets (parallel) and build one query per ISA that
     * actually occurs among the indexable ones, in target order —
     * exactly the lazily-built query set of the serial scan loop.
     */
    std::map<isa::Arch, Query> build_queries(
        const firmware::CveRecord &cve,
        const std::vector<CorpusTarget> &targets, unsigned threads = 0);

    /** Degradation record for everything this driver has scanned. */
    const ScanHealth &health() const { return health_; }
    ScanHealth &health() { return health_; }

    /** The scan journal (closed/empty unless journal_path was set). */
    const ScanJournal &journal() const { return journal_; }

  private:
    SearchOptions options_;
    ScanHealth health_;
    /**
     * Per-driver target-index cache. Values are shared_ptr so one
     * deserialized index can simultaneously live here, in the process
     * ResidentIndexCache, and in an in-flight scan — eviction anywhere
     * drops a reference, never the index (or the mmap view behind it).
     */
    std::map<std::uint64_t, std::shared_ptr<const sim::ExecutableIndex>>
        index_cache_;
    std::map<std::uint64_t, baseline::GraphIndex> graph_cache_;
    std::map<std::uint64_t, lifter::LiftedExecutable> lift_cache_;
    /** Content keys of executables that failed to lift. */
    std::set<std::uint64_t> quarantined_;
    /**
     * Content keys already counted in executables_seen/lifted_ok, so an
     * executable served warm from the persistent store and later lifted
     * on demand (e.g. for graph_target) is not double-counted.
     */
    std::set<std::uint64_t> health_counted_;
    /** Lazily-opened persistent store (options_.index_cache_dir). */
    std::unique_ptr<sim::IndexCacheStore> store_;
    bool store_opened_ = false;
    /** Cross-executable canon memo shared by every cold index. */
    strand::CanonMemo canon_memo_;
    /** Memo stats already folded into health_ (see sync_memo_health). */
    strand::CanonMemo::Stats memo_seen_{};
    /**
     * Retrieval counters already folded into health_ (delta-based, like
     * memo_seen_): the sim-level counters are process-wide, so each
     * driver attributes only what changed since its last sync.
     */
    sim::RetrievalCounters retrieval_seen_ = sim::retrieval_counters();
    /** Scan journal (empty/closed when options_.journal_path is unset). */
    ScanJournal journal_;
    bool journal_opened_ = false;
    /**
     * Journal replay: (content key, query fingerprint) → last journaled
     * record for that pair. Quarantine records live under query
     * fingerprint 0 and apply to every query. (query, target) pairs
     * that appear here are served from the journal and skipped by every
     * pipeline stage of a resumed scan.
     */
    std::map<std::pair<std::uint64_t, std::uint64_t>, JournalEntry>
        journal_replay_;

    /** The persistent store, or nullptr when not configured. */
    sim::IndexCacheStore *cache_store();

    /**
     * options_.canon with the shared memo wired in (or not, when the
     * canon_memo ablation knob is off).
     */
    strand::CanonOptions canon_options();

    /** Fold new canon-memo hits/misses into health_ (delta-based). */
    void sync_memo_health();

    /** Fold new retrieval counters into health_ (delta-based). */
    void sync_retrieval_health();

    /**
     * Build @p index's LSH banding table per options_ when retrieval is
     * Lsh (no-op otherwise). Called at every point an index enters the
     * scan — cold build, warm store load, query build — so games only
     * ever see LSH-ready indexes in Lsh mode.
     */
    void prepare_retrieval(sim::ExecutableIndex &index);

    /** Count @p key as a seen + healthy executable, once. */
    void note_healthy(std::uint64_t key);

    /**
     * Per-query record fingerprint: hashes one query's identity label
     * (never 0 — that value is reserved for quarantine records). The
     * journal keys outcome records by (content key, this).
     */
    static std::uint64_t query_fingerprint(const std::string &label);

    /**
     * build_query with the hunt-path fast lane: when @p hunt is true
     * and a persistent store is configured, the finalized query index
     * is served from (or written back to) the store under its recipe
     * key, skipping compile + lift + canonicalize on warm runs. A
     * store-served query has an empty baseline graph — the hunt never
     * reads it. @p hunt false is the full build (public build_query).
     */
    Query build_query_impl(const std::string &package,
                           const std::string &procedure,
                           const std::string &version, isa::Arch arch,
                           bool hunt);

    /**
     * build_queries through build_query_impl's hunt lane — what
     * search_corpus_batch uses, so warm batched hunts pay zero query
     * compilation.
     */
    std::map<isa::Arch, Query> build_hunt_queries(
        const firmware::CveRecord &cve,
        const std::vector<CorpusTarget> &targets, unsigned threads);

    /**
     * The batched fan-out core every search_corpus overload lands on:
     * replay the journaled (query, target) pairs, index the remaining
     * distinct targets once, then run the outstanding games target-major
     * on the work-stealing scheduler and merge accounting
     * single-threaded in (query, target) order — the same order N
     * sequential single-query scans would have produced. The journal
     * must already be open (or absent) when this runs.
     */
    std::vector<std::vector<CorpusOutcome>> run_batch(
        const std::vector<const std::map<isa::Arch, Query> *> &query_sets,
        const std::vector<std::uint64_t> &query_fps,
        const std::vector<CorpusTarget> &targets, unsigned threads,
        bool confirm);

    /**
     * Open (or resume) the journal per options_, once per driver;
     * populates journal_replay_ on resume. A journal failure degrades
     * to a journal-less scan (recorded in the health error histogram) —
     * a journal problem must never cost the scan itself. One exception:
     * resuming a structurally sound journal whose fingerprint binds it
     * to a different scan configuration (e.g. another retrieval mode)
     * sets health_.resume_rejected, and run_batch then refuses to scan
     * — mixing two configurations' findings would be silently wrong.
     */
    void open_journal(const std::string &label, bool confirm);

    /**
     * Append one record (no-op when the journal is closed) and fire the
     * cancel_after_appends test seam. Thread-safe.
     */
    void journal_append(const JournalEntry &entry);

    const lifter::LiftedExecutable *lift_cached(
        const loader::Executable &exe);

    /**
     * Parallel lift+index of distinct, not-yet-cached executables; the
     * cache/health merge runs single-threaded in @p work order. Records
     * the phase wall-clock in health().index_seconds.
     * @return number successfully indexed.
     */
    std::size_t index_many(
        const std::vector<const loader::Executable *> &work,
        unsigned threads);

    /** Dedupe @p targets down to executables the caches have not seen. */
    std::vector<const loader::Executable *> unseen_executables(
        const std::vector<CorpusTarget> &targets) const;
};

/** The newest version of @p package that @p cve still affects. */
std::string latest_vulnerable_version(const firmware::CveRecord &cve);

}  // namespace firmup::eval
