/**
 * @file
 * Plain-text table rendering for the benchmark binaries, plus the
 * coverage footer every experiment prints alongside its accuracy.
 */
#pragma once

#include <string>
#include <vector>

#include "eval/health.h"
#include "support/trace.h"

namespace firmup::eval {

/** Fixed-width ASCII table builder. */
class Table
{
  public:
    explicit Table(std::vector<std::string> headers);

    /** Append one row; must have as many cells as there are headers. */
    void add_row(std::vector<std::string> cells);

    /** Render with aligned columns. */
    std::string render() const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** "12.3%" style formatting. */
std::string percent(double fraction);

/**
 * Multi-line coverage report: the one-line summary plus a per-stage
 * wall/CPU timing table (when any stage ran) and, when anything
 * degraded, an error-code histogram table and the quarantine log.
 * "wall" cells are labeled elapsed vs busy per the ScanHealth field
 * semantics so parallel-scan numbers read unambiguously.
 */
std::string render_health(const ScanHealth &health);

/**
 * As render_health, followed by a work-counter table distilled from a
 * metrics snapshot (pairs scored/pruned, strands extracted, tasks run,
 * ...). Pass trace::MetricsRegistry::global().snapshot() after a scan
 * with tracing at Level::Metrics or above; an empty snapshot adds
 * nothing.
 */
std::string render_health(const ScanHealth &health,
                          const trace::Snapshot &metrics);

/**
 * Per-shard breakdown table for a fleet scan (`firmup shard-scan`):
 * one row per worker shard — blobs assigned, pairs searched vs replayed
 * from the seeded journal, findings, protocol frames, respawns and the
 * shard wall clock. Printed under the merged render_health block so a
 * stalled or churning shard is visible instead of averaged away.
 * Empty input renders nothing.
 */
std::string render_shard_breakdown(const std::vector<ShardSlice> &shards);

}  // namespace firmup::eval
