/**
 * @file
 * Plain-text table rendering for the benchmark binaries.
 */
#pragma once

#include <string>
#include <vector>

namespace firmup::eval {

/** Fixed-width ASCII table builder. */
class Table
{
  public:
    explicit Table(std::vector<std::string> headers);

    /** Append one row; must have as many cells as there are headers. */
    void add_row(std::vector<std::string> cells);

    /** Render with aligned columns. */
    std::string render() const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** "12.3%" style formatting. */
std::string percent(double fraction);

}  // namespace firmup::eval
