/**
 * @file
 * Experiment runners regenerating the paper's tables and figures.
 *
 *  - run_cve_hunt: Table 2 — hunt every catalog CVE across the corpus.
 *  - run_labeled: the controlled experiment of section 5.3 — labeled
 *    targets with ground truth, FirmUp vs BinDiff (Fig. 6) and vs GitZ
 *    (Fig. 8), with game-step accounting (Fig. 9).
 */
#pragma once

#include <set>
#include <string>
#include <vector>

#include "eval/driver.h"
#include "firmware/corpus.h"

namespace firmup::eval {

/** Positive / false-negative / false-positive counts. */
struct Tally
{
    int p = 0;
    int fn = 0;
    int fp = 0;

    int total() const { return p + fn + fp; }
    double precision() const
    {
        return total() == 0 ? 0.0 : static_cast<double>(p) / total();
    }
};

/** One row of Table 2. */
struct CveHuntRow
{
    firmware::CveRecord cve;
    int confirmed = 0;  ///< right procedure, vulnerable version
    int benign = 0;     ///< right procedure, patched version
    int fps = 0;        ///< wrong procedure matched
    int missed = 0;     ///< vulnerable procedure present but not found
    int latest = 0;     ///< confirmed findings in latest-firmware images
    int skipped = 0;    ///< quarantined targets this CVE never scanned
    std::set<std::string> vendors;  ///< vendors with confirmed findings
    double seconds = 0.0;
};

/**
 * Run the Table 2 hunt: every CVE against every corpus executable, via
 * the driver's parallel search_corpus fan-out (@p threads 0 = hardware
 * concurrency; results are identical at any thread count). Quarantined
 * executables are skipped (per-row `skipped`); coverage for the whole
 * scan is in driver.health().
 */
std::vector<CveHuntRow> run_cve_hunt(Driver &driver,
                                     const firmware::Corpus &corpus,
                                     unsigned threads = 0);

/** Per-query outcome of the controlled experiment. */
struct QueryTally
{
    std::string query;  ///< procedure name, as in Fig. 6 / Fig. 8
    Tally firmup;
    Tally bindiff;
    Tally gitz;
    int targets = 0;
};

/** Controlled-experiment configuration. */
struct LabeledOptions
{
    std::vector<std::string> cve_ids;  ///< queries (default: all)
    bool run_bindiff = false;
    bool run_gitz = false;
    /**
     * Strip ALL names from target copies (the paper's group-1 setup;
     * required for a fair BinDiff run). When false, exported names are
     * left in place (group-2 setup).
     */
    bool strip_all_names = true;
    /** FirmUp game fan-out width; 0 = hardware concurrency. */
    unsigned threads = 0;
};

/** Result of the controlled experiment. */
struct LabeledResult
{
    std::vector<QueryTally> rows;
    std::vector<int> game_steps;  ///< per correct FirmUp match (Fig. 9)
    /** Coverage snapshot (driver.health()) taken after the run. */
    ScanHealth health;

    Tally firmup_total() const;
    Tally bindiff_total() const;
    Tally gitz_total() const;
};

/** Run the section 5.3 controlled experiment. */
LabeledResult run_labeled(Driver &driver, const firmware::Corpus &corpus,
                          const LabeledOptions &options);

/** Fig. 9 buckets: 1, 2, 3-4, 5-8, 9-16, 17-32 steps. */
std::vector<std::pair<std::string, int>> step_histogram(
    const std::vector<int> &steps);

/**
 * GitZ top-k accuracy over the labeled set (the paper's Fig. 9
 * discussion: "considering the top-2 results from GitZ will reduce the
 * number of false positives by approximately 50").
 * @return hits[k-1] = targets whose true procedure is in GitZ's top-k.
 */
std::vector<int> gitz_topk_hits(Driver &driver,
                                const firmware::Corpus &corpus,
                                int max_k);

}  // namespace firmup::eval
