/**
 * @file
 * Sharded fleet scans — coordinator/worker scale-out over one corpus.
 *
 * One process stops being enough exactly at FirmUp's target workload:
 * the same BusyBox-descended procedures recurring across thousands of
 * vendor images. `firmup shard-scan` shards a corpus manifest across N
 * worker *processes* (fork/exec of the same binary in a hidden
 * `--worker` mode), each running the existing search_corpus_batch
 * driver against the shared FWIX store with its own resident cache and
 * per-shard FWSJ journal.
 *
 * Discipline, in order of importance:
 *
 *  1. **Shard-count invariance.** The shard function is a pure hash of
 *     the manifest blob path, findings carry their global manifest
 *     coordinates, and the coordinator merges in the fixed
 *     (cve, blob, executable) order — so the merged findings are
 *     bit-identical at any worker count, the same bar the ThreadPool
 *     fan-out already meets for thread counts.
 *  2. **Crash tolerance.** Workers stream length-prefixed NDJSON frames
 *     (support/subproc.h) — findings, quarantines, a ScanHealth
 *     summary, heartbeats — over their stdout pipe. A worker that dies
 *     (EOF without a clean `done`) or stalls past the heartbeat
 *     deadline is SIGKILLed and its shard respawned; the respawn
 *     resumes from the shard's journal, so completed (query, target)
 *     pairs replay instead of re-running.
 *  3. **Incremental rescans.** A persistent scan-state manifest
 *     (`state.fwsj` in the state dir) is an ordinary FWSJ journal bound
 *     to the scan fingerprint — (scan label, confirm mode, canon/
 *     retrieval knobs). The coordinator seeds every per-shard journal
 *     from it before spawning, so unchanged executables (by content
 *     key) replay their prior outcomes with zero lift/canon/search
 *     work; after the fleet drains it rebuilds `state.fwsj` as the
 *     key-sorted last-wins union of every shard journal, which makes
 *     the state itself independent of the worker count that wrote it.
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "eval/driver.h"
#include "eval/health.h"

namespace firmup::eval {

/**
 * Deterministic shard assignment of one manifest entry: a pure hash of
 * the blob path modulo the shard count. Stable under manifest
 * reordering and append (an image keeps its shard as the fleet grows,
 * so per-shard journals stay warm), and shared verbatim by the
 * coordinator and the `--shard-index/--shard-count` escape hatch on
 * plain `firmup search` — an external orchestrator slicing a manifest
 * by the same rule produces exactly the coordinator's shards.
 * @p shard_count 0 is treated as 1.
 */
std::size_t shard_of_path(std::string_view path, std::size_t shard_count);

/** Parsed shard-protocol frame payload: flat JSON, string values. */
using FrameFields = std::map<std::string, std::string>;

/**
 * Encode a flat string->string map as one NDJSON object (sorted key
 * order — frames are part of the deterministic surface).
 */
std::string encode_frame(const FrameFields &fields);

/**
 * Parse one flat NDJSON object produced by encode_frame. Returns false
 * on malformed input (the coordinator treats that as a dead worker, not
 * a crash). Nested objects/arrays are not part of the protocol.
 */
bool decode_frame(std::string_view payload, FrameFields *fields);

/** Serialize every ScanHealth counter/timer into @p fields. */
void health_to_fields(const ScanHealth &health, FrameFields &fields);

/** Inverse of health_to_fields (unknown keys are ignored). */
void health_from_fields(const FrameFields &fields, ScanHealth &health);

/** One detection, addressed by its global manifest coordinates. */
struct FleetFinding
{
    std::size_t cve = 0;   ///< index into ShardScanOptions::cve_ids
    std::size_t blob = 0;  ///< global manifest index of the blob
    std::size_t ord = 0;   ///< executable ordinal within the blob
    std::string exe_name;
    std::uint64_t matched_entry = 0;
    int sim = 0;
    int steps = 0;
};

// ShardSlice — the per-shard health slice — lives in eval/health.h with
// the rest of the coverage accounting; render_shard_breakdown
// (eval/report.h) prints a table of them under the merged health block.

/** What a fleet scan produced, merged in deterministic order. */
struct FleetReport
{
    bool ok = false;
    std::string error;  ///< set when !ok
    /** Sorted by (cve, blob, ord) — the 1-worker report order. */
    std::vector<FleetFinding> findings;
    /** ScanHealth::merge over per-shard healths, in shard order. */
    ScanHealth health;
    std::vector<ShardSlice> shards;
    /** True when a prior state manifest seeded this scan. */
    bool state_reused = false;
    /** Sum of per-shard `searched` — 0 on a fully-incremental rescan. */
    std::size_t targets_searched = 0;
    /** Sum of per-shard `replayed` (the shard.incremental_skips counter). */
    std::size_t incremental_skips = 0;
    std::size_t workers_spawned = 0;
    std::size_t reassignments = 0;
    std::size_t frames_received = 0;
    double wall_seconds = 0.0;
};

/** Coordinator configuration for one fleet scan. */
struct ShardScanOptions
{
    std::vector<std::string> cve_ids;
    /** The corpus manifest; order defines the report order. */
    std::vector<std::string> blob_paths;
    std::size_t workers = 1;
    /** Threads per worker process (0 = auto via FIRMUP_THREADS). */
    unsigned worker_threads = 1;
    bool confirm = true;
    /**
     * Persistent state directory: `state.fwsj` (the incremental scan
     * state) plus the per-shard journals live here. Empty = ephemeral —
     * a temp dir is used and removed, which keeps crash recovery within
     * the run but persists nothing across runs.
     */
    std::string state_dir;
    std::string index_cache_dir;  ///< shared FWIX store ("" = none)
    bool mmap_index = true;
    std::size_t resident_cache_mb = 0;  ///< per-worker resident budget
    sim::RetrievalMode retrieval = sim::RetrievalMode::Exact;
    unsigned lsh_bands = 16;
    unsigned lsh_rows = 4;
    /** Stall deadline: no frame from a worker for this long => respawn. */
    double heartbeat_seconds = 30.0;
    /** Respawns allowed per shard beyond the first spawn. */
    int max_respawns = 2;
    bool quiet = false;  ///< suppress coordinator progress lines
    /**
     * Test seams, applied to the FIRST spawn of shard 0 only (the
     * respawn must survive): after N journal appends the worker either
     * dies with _exit(9) mid-protocol (kill seam) or goes silent without
     * exiting (stall seam — exercises the heartbeat deadline).
     */
    std::size_t kill_first_worker_after = 0;
    bool stall_first_worker = false;
};

/**
 * Run a fleet scan: shard the manifest, seed per-shard journals from
 * the state manifest, spawn/supervise workers (@p worker_binary is
 * re-executed with the hidden `--worker` verb), merge frames in fixed
 * order and rebuild the state manifest. Never throws; failures land in
 * FleetReport::error.
 */
FleetReport run_shard_scan(const std::string &worker_binary,
                           const ShardScanOptions &options);

/** Worker-side configuration (parsed from the hidden CLI verb). */
struct ShardWorkerOptions
{
    std::size_t shard_index = 0;
    std::size_t shard_count = 1;
    unsigned threads = 1;
    bool confirm = true;
    std::vector<std::string> cve_ids;
    /** The FULL manifest — the worker filters by shard_of_path, keeping
     *  global indices intact for the coordinator's merge order. */
    std::vector<std::string> blob_paths;
    std::string journal_path;
    std::string index_cache_dir;
    bool mmap_index = true;
    std::size_t resident_cache_mb = 0;
    sim::RetrievalMode retrieval = sim::RetrievalMode::Exact;
    unsigned lsh_bands = 16;
    unsigned lsh_rows = 4;
    double heartbeat_seconds = 30.0;
    /** Test seams (see ShardScanOptions). */
    std::size_t exit_after_appends = 0;
    bool stall_after_appends = false;
};

/**
 * Worker entry point: scan this shard's slice of the manifest with a
 * resuming driver and stream protocol frames to stdout (fd 1). Exit
 * code 0 covers the no-findings case — "no findings" is an answer, not
 * a failure; non-zero means the shard itself could not run.
 */
int run_shard_worker(const ShardWorkerOptions &options);

}  // namespace firmup::eval
