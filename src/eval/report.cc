#include "eval/report.h"

#include <algorithm>

#include "support/error.h"
#include "support/str.h"

namespace firmup::eval {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
}

void
Table::add_row(std::vector<std::string> cells)
{
    FIRMUP_ASSERT(cells.size() == headers_.size(),
                  "table row width mismatch");
    rows_.push_back(std::move(cells));
}

std::string
Table::render() const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) {
        widths[c] = headers_[c].size();
        for (const auto &row : rows_) {
            widths[c] = std::max(widths[c], row[c].size());
        }
    }
    auto line = [&](const std::vector<std::string> &cells) {
        std::string out = "|";
        for (std::size_t c = 0; c < cells.size(); ++c) {
            out += " " + cells[c] +
                   std::string(widths[c] - cells[c].size(), ' ') + " |";
        }
        return out + "\n";
    };
    std::string out = line(headers_);
    std::string rule = "|";
    for (std::size_t c = 0; c < widths.size(); ++c) {
        rule += std::string(widths[c] + 2, '-') + "|";
    }
    out += rule + "\n";
    for (const auto &row : rows_) {
        out += line(row);
    }
    return out;
}

std::string
percent(double fraction)
{
    return strprintf("%.1f%%", fraction * 100.0);
}

namespace {

/** One row of the stage table; skipped when the stage never ran. */
void
add_stage_row(Table &table, const char *stage, const char *wall_kind,
              double wall_seconds, double cpu_seconds)
{
    if (wall_seconds <= 0.0 && cpu_seconds <= 0.0) {
        return;
    }
    table.add_row({stage, strprintf("%.3f (%s)", wall_seconds, wall_kind),
                   strprintf("%.3f", cpu_seconds)});
}

}  // namespace

std::string
render_health(const ScanHealth &health)
{
    std::string out = health.summary() + "\n";
    if (health.index_seconds + health.game_seconds +
            health.confirm_seconds + health.match_wall_seconds >
        0.0) {
        // Wall semantics differ per stage (see ScanHealth): index and
        // match-phase are elapsed clocks; game/confirm are per-outcome
        // sums, i.e. busy time across workers on a parallel scan.
        Table stages({"stage", "wall s", "cpu s"});
        add_stage_row(stages, "lift+index", "elapsed",
                      health.index_seconds, health.index_cpu_seconds);
        add_stage_row(stages, "games", "busy", health.game_seconds,
                      health.game_cpu_seconds);
        add_stage_row(stages, "confirm", "busy", health.confirm_seconds,
                      health.confirm_cpu_seconds);
        add_stage_row(stages, "match phase", "elapsed",
                      health.match_wall_seconds, 0.0);
        out += stages.render();
    }
    if (health.cache_hits + health.cache_misses > 0) {
        out += strprintf(
            "index cache: %zu hit(s), %zu miss(es), %s hit rate, "
            "%.3fs loading, %llu byte(s) written\n",
            health.cache_hits, health.cache_misses,
            percent(static_cast<double>(health.cache_hits) /
                    static_cast<double>(health.cache_hits +
                                        health.cache_misses))
                .c_str(),
            health.cache_load_seconds,
            static_cast<unsigned long long>(health.cache_write_bytes));
        if (health.cache_open_seconds + health.cache_checksum_seconds +
                health.cache_parse_seconds >
            0.0) {
            out += strprintf(
                "  load split: %.3fs open, %.3fs checksum, %.3fs "
                "parse (%zu mmap view(s))\n",
                health.cache_open_seconds, health.cache_checksum_seconds,
                health.cache_parse_seconds, health.cache_mmap_loads);
        }
    }
    if (health.resident_hits + health.resident_misses > 0) {
        out += strprintf(
            "resident cache: %zu hit(s), %zu miss(es), %s hit rate, "
            "%zu eviction(s)\n",
            health.resident_hits, health.resident_misses,
            percent(static_cast<double>(health.resident_hits) /
                    static_cast<double>(health.resident_hits +
                                        health.resident_misses))
                .c_str(),
            health.resident_evictions);
    }
    if (health.canon_memo_hits + health.canon_memo_misses > 0) {
        out += strprintf(
            "canon memo: %llu hit(s), %llu miss(es), %s of blocks "
            "reused\n",
            static_cast<unsigned long long>(health.canon_memo_hits),
            static_cast<unsigned long long>(health.canon_memo_misses),
            percent(static_cast<double>(health.canon_memo_hits) /
                    static_cast<double>(health.canon_memo_hits +
                                        health.canon_memo_misses))
                .c_str());
    }
    if (health.retrieval_candidates_lsh > 0) {
        out += strprintf(
            "lsh retrieval: %llu probe(s), %llu candidate(s) scored, "
            "%.1fx candidate reduction vs exact, %.3fs sketching\n",
            static_cast<unsigned long long>(health.retrieval_probes_lsh),
            static_cast<unsigned long long>(
                health.retrieval_candidates_lsh),
            static_cast<double>(health.retrieval_lsh_exact_work) /
                static_cast<double>(health.retrieval_candidates_lsh),
            health.sketch_seconds);
    }
    if (health.resume_rejected) {
        out += strprintf("RESUME REJECTED: %s\n",
                         health.resume_reject_reason.c_str());
    }
    bool any_error = false;
    for (std::size_t c = 0; c < kErrorCodeCount; ++c) {
        any_error |= health.errors[c] != 0;
    }
    if (any_error) {
        Table histogram({"error class", "count"});
        for (std::size_t c = 0; c < kErrorCodeCount; ++c) {
            if (health.errors[c] == 0) {
                continue;
            }
            histogram.add_row(
                {error_code_name(static_cast<ErrorCode>(c)),
                 std::to_string(health.errors[c])});
        }
        out += histogram.render();
    }
    for (const QuarantineEntry &entry : health.quarantine_log) {
        out += strprintf("quarantined: %s (%s): %s\n",
                         entry.exe_name.empty()
                             ? "<unnamed>"
                             : entry.exe_name.c_str(),
                         error_code_name(entry.code),
                         entry.message.c_str());
    }
    if (health.quarantined > health.quarantine_log.size()) {
        out += strprintf(
            "... and %zu more quarantined executable(s)\n",
            health.quarantined - health.quarantine_log.size());
    }
    return out;
}

std::string
render_health(const ScanHealth &health, const trace::Snapshot &metrics)
{
    std::string out = render_health(health);
    if (!metrics.counters.empty()) {
        Table work({"metric", "count"});
        for (const auto &[name, value] : metrics.counters) {
            if (value != 0) {
                work.add_row({name, std::to_string(value)});
            }
        }
        out += work.render();
    }
    if (metrics.events_dropped != 0) {
        out += strprintf("trace ring overflow: %llu event(s) dropped\n",
                         static_cast<unsigned long long>(
                             metrics.events_dropped));
    }
    return out;
}

std::string
render_shard_breakdown(const std::vector<ShardSlice> &shards)
{
    if (shards.empty()) {
        return "";
    }
    Table table({"shard", "blobs", "searched", "replayed", "findings",
                 "frames", "respawns", "wall s"});
    for (const ShardSlice &slice : shards) {
        table.add_row({std::to_string(slice.shard),
                       std::to_string(slice.blobs),
                       std::to_string(slice.searched),
                       std::to_string(slice.replayed),
                       std::to_string(slice.findings),
                       std::to_string(slice.frames),
                       std::to_string(slice.respawns),
                       strprintf("%.3f", slice.seconds)});
    }
    return table.render();
}

}  // namespace firmup::eval
