#include "eval/experiments.h"

#include <algorithm>
#include <chrono>
#include <map>

#include "support/error.h"

namespace firmup::eval {

namespace {

/** One target instance for a given CVE query. */
struct Trial
{
    int image_index = -1;
    const loader::Executable *exe = nullptr;
    const firmware::TruthExe *truth = nullptr;
    std::uint32_t truth_entry = 0;  ///< 0 when the procedure is absent
    bool vulnerable = false;
};

/** All corpus executables built from @p cve's package. */
std::vector<Trial>
collect_trials(const firmware::Corpus &corpus,
               const firmware::CveRecord &cve)
{
    const firmware::PackageSpec &pkg =
        firmware::package_by_name(cve.package);
    std::vector<Trial> trials;
    for (std::size_t i = 0; i < corpus.images.size(); ++i) {
        for (const loader::Executable &exe :
             corpus.images[i].executables) {
            const firmware::TruthExe *truth =
                corpus.find_truth(static_cast<int>(i), exe.name);
            if (truth == nullptr || truth->package != cve.package) {
                continue;
            }
            Trial trial;
            trial.image_index = static_cast<int>(i);
            trial.exe = &exe;
            trial.truth = truth;
            trial.truth_entry = truth->entry_of(cve.procedure);
            trial.vulnerable = trial.truth_entry != 0 &&
                               cve.affects(pkg, truth->pkg_version);
            trials.push_back(trial);
        }
    }
    return trials;
}

const firmware::CveRecord &
cve_by_id(const std::string &cve_id)
{
    for (const firmware::CveRecord &cve : firmware::cve_database()) {
        if (cve.cve_id == cve_id) {
            return cve;
        }
    }
    FIRMUP_ASSERT(false, "unknown CVE id: " + cve_id);
}

}  // namespace

std::vector<CveHuntRow>
run_cve_hunt(Driver &driver, const firmware::Corpus &corpus,
             unsigned threads)
{
    std::vector<CveHuntRow> rows;
    // The wild hunt scans *every* executable in every image; the
    // detection threshold rejects executables that do not contain the
    // package at all. The whole CVE list goes through one batched hunt
    // (search_corpus_batch): every target indexes once, and all games
    // against a target run while its index is hot — findings are
    // bit-identical to per-CVE scans (the determinism test's bar).
    const std::vector<CorpusTarget> targets = corpus_targets(corpus);
    const std::vector<firmware::CveRecord> &cves =
        firmware::cve_database();
    const auto start = std::chrono::steady_clock::now();
    const std::vector<std::vector<CorpusOutcome>> grid =
        driver.search_corpus_batch(cves, targets, threads);
    // Per-row wall-clock is no longer separable in a batched hunt;
    // report each CVE's amortized share of the batch wall.
    const double batch_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    for (std::size_t q = 0; q < cves.size(); ++q) {
        const firmware::CveRecord &cve = cves[q];
        CveHuntRow row;
        row.cve = cve;

        const std::vector<CorpusOutcome> &outcomes = grid[q];
        for (const CorpusOutcome &co : outcomes) {
            if (!co.indexed) {
                ++row.skipped;  // quarantined; scan continues
                continue;
            }
            const firmware::FirmwareImage &image =
                corpus.images[static_cast<std::size_t>(
                    co.target.image_index)];
            const SearchOutcome &outcome = co.outcome;

            const firmware::TruthExe *truth = corpus.find_truth(
                co.target.image_index, co.target.exe->name);
            const std::uint32_t truth_entry =
                truth != nullptr && truth->package == cve.package
                    ? truth->entry_of(cve.procedure)
                    : 0;
            const bool vulnerable =
                truth_entry != 0 &&
                cve.affects(firmware::package_by_name(cve.package),
                            truth->pkg_version);
            if (outcome.detected) {
                if (truth_entry != 0 &&
                    outcome.matched_entry == truth_entry) {
                    if (vulnerable) {
                        ++row.confirmed;
                        row.vendors.insert(image.vendor);
                        if (image.is_latest) {
                            ++row.latest;
                        }
                    } else {
                        ++row.benign;
                    }
                } else {
                    ++row.fps;
                }
            } else if (vulnerable) {
                ++row.missed;
            }
        }
        row.seconds = batch_seconds / static_cast<double>(cves.size());
        rows.push_back(std::move(row));
    }
    return rows;
}

Tally
LabeledResult::firmup_total() const
{
    Tally t;
    for (const QueryTally &row : rows) {
        t.p += row.firmup.p;
        t.fn += row.firmup.fn;
        t.fp += row.firmup.fp;
    }
    return t;
}

Tally
LabeledResult::bindiff_total() const
{
    Tally t;
    for (const QueryTally &row : rows) {
        t.p += row.bindiff.p;
        t.fn += row.bindiff.fn;
        t.fp += row.bindiff.fp;
    }
    return t;
}

Tally
LabeledResult::gitz_total() const
{
    Tally t;
    for (const QueryTally &row : rows) {
        t.p += row.gitz.p;
        t.fn += row.gitz.fn;
        t.fp += row.gitz.fp;
    }
    return t;
}

LabeledResult
run_labeled(Driver &driver, const firmware::Corpus &corpus,
            const LabeledOptions &options)
{
    std::vector<std::string> cve_ids = options.cve_ids;
    if (cve_ids.empty()) {
        for (const firmware::CveRecord &cve : firmware::cve_database()) {
            cve_ids.push_back(cve.cve_id);
        }
    }

    LabeledResult result;
    // GitZ global contexts, trained lazily per architecture over the
    // corpus targets of that architecture (section 5.3: "we trained a
    // global context ... for each architecture separately").
    std::map<isa::Arch, sim::GlobalContext> contexts;

    for (const std::string &cve_id : cve_ids) {
        const firmware::CveRecord &cve = cve_by_id(cve_id);
        QueryTally tally;
        tally.query = cve.procedure;

        // The labeled experiment runs on name-less copies so no tool
        // can cheat (the paper's group-1 protocol). Copies must outlive
        // the parallel fan-out, so they live in one stable vector.
        std::vector<Trial> trials;
        for (const Trial &trial : collect_trials(corpus, cve)) {
            if (trial.truth_entry != 0) {
                trials.push_back(trial);
            }
            // else: procedure compiled out of this build
        }
        std::vector<loader::Executable> stripped;
        stripped.reserve(trials.size());
        std::vector<CorpusTarget> targets;
        targets.reserve(trials.size());
        for (const Trial &trial : trials) {
            stripped.push_back(*trial.exe);
            loader::strip_executable(stripped.back(),
                                     !options.strip_all_names);
            targets.push_back({&stripped.back(), trial.image_index});
        }

        // ---- FirmUp (parallel fan-out, no detection threshold) ----
        const std::map<isa::Arch, Query> queries =
            driver.build_queries(cve, targets, options.threads);
        const std::vector<CorpusOutcome> outcomes = driver.search_corpus(
            queries, targets, options.threads, /*confirm=*/false);

        for (std::size_t t = 0; t < trials.size(); ++t) {
            const Trial &trial = trials[t];
            if (!outcomes[t].indexed) {
                continue;  // quarantined; reported via health
            }
            const sim::ExecutableIndex *target =
                driver.index_target(stripped[t]);
            ++tally.targets;
            const Query &query = queries.at(target->arch);

            const SearchOutcome &outcome = outcomes[t].outcome;
            if (!outcome.detected) {
                ++tally.firmup.fn;
            } else if (outcome.matched_entry == trial.truth_entry) {
                ++tally.firmup.p;
                result.game_steps.push_back(outcome.steps);
            } else {
                ++tally.firmup.fp;
            }

            // ---- BinDiff ----
            if (options.run_bindiff) {
                // The lift already succeeded (target != nullptr), so the
                // graph index cannot be quarantined here.
                const baseline::GraphIndex &tgraph =
                    *driver.graph_target(stripped[t]);
                const auto matches =
                    baseline::bindiff_match(query.graph, tgraph);
                const std::uint64_t q_entry =
                    query.index
                        .procs[static_cast<std::size_t>(query.qv)]
                        .entry;
                const auto q_graph_it =
                    query.graph.by_entry.find(q_entry);
                bool matched = false;
                if (q_graph_it != query.graph.by_entry.end()) {
                    const auto m = matches.find(q_graph_it->second);
                    if (m != matches.end()) {
                        matched = true;
                        const std::uint64_t entry =
                            tgraph
                                .procs[static_cast<std::size_t>(
                                    m->second)]
                                .entry;
                        if (entry == trial.truth_entry) {
                            ++tally.bindiff.p;
                        } else {
                            ++tally.bindiff.fp;
                        }
                    }
                }
                if (!matched) {
                    // Paper: "for BinDiff we consider an unmatched
                    // procedure to be a false positive (because we know
                    // it is there)".
                    ++tally.bindiff.fp;
                }
            }

            // ---- GitZ ----
            if (options.run_gitz) {
                auto cit = contexts.find(target->arch);
                if (cit == contexts.end()) {
                    // Train on all corpus executables of this arch.
                    std::vector<const sim::ExecutableIndex *> sample;
                    for (const firmware::FirmwareImage &image :
                         corpus.images) {
                        for (const loader::Executable &exe :
                             image.executables) {
                            const sim::ExecutableIndex *index =
                                driver.index_target(exe);
                            if (index != nullptr &&
                                index->arch == target->arch) {
                                sample.push_back(index);
                            }
                        }
                    }
                    cit = contexts
                              .emplace(target->arch,
                                       sim::train_global_context(sample))
                              .first;
                }
                const int top = baseline::gitz_top1(
                    query.index, query.qv, *target, &cit->second);
                // Fig. 8 folds FN into FP: top-1 is right or it is not.
                if (top >= 0 &&
                    target->procs[static_cast<std::size_t>(top)].entry ==
                        trial.truth_entry) {
                    ++tally.gitz.p;
                } else {
                    ++tally.gitz.fp;
                }
            }
        }
        result.rows.push_back(std::move(tally));
    }
    result.health = driver.health();
    return result;
}

std::vector<int>
gitz_topk_hits(Driver &driver, const firmware::Corpus &corpus, int max_k)
{
    std::vector<int> hits(static_cast<std::size_t>(max_k), 0);
    std::map<isa::Arch, sim::GlobalContext> contexts;
    for (const firmware::CveRecord &cve : firmware::cve_database()) {
        std::map<isa::Arch, Query> queries;
        for (const Trial &trial : collect_trials(corpus, cve)) {
            if (trial.truth_entry == 0) {
                continue;
            }
            loader::Executable stripped = *trial.exe;
            loader::strip_executable(stripped, false);
            const sim::ExecutableIndex *target =
                driver.index_target(stripped);
            if (target == nullptr) {
                continue;  // quarantined; reported via health
            }
            auto qit = queries.find(target->arch);
            if (qit == queries.end()) {
                qit = queries
                          .emplace(target->arch,
                                   driver.build_query(cve, target->arch))
                          .first;
            }
            auto cit = contexts.find(target->arch);
            if (cit == contexts.end()) {
                std::vector<const sim::ExecutableIndex *> sample;
                for (const firmware::FirmwareImage &image :
                     corpus.images) {
                    for (const loader::Executable &exe :
                         image.executables) {
                        const sim::ExecutableIndex *index =
                            driver.index_target(exe);
                        if (index != nullptr &&
                            index->arch == target->arch) {
                            sample.push_back(index);
                        }
                    }
                }
                cit = contexts
                          .emplace(target->arch,
                                   sim::train_global_context(sample))
                          .first;
            }
            const auto ranked = baseline::gitz_rank(
                qit->second.index, qit->second.qv, *target,
                &cit->second);
            for (int k = 0;
                 k < max_k && k < static_cast<int>(ranked.size()); ++k) {
                const auto entry =
                    target->procs[static_cast<std::size_t>(
                        ranked[static_cast<std::size_t>(k)]
                            .target_index)].entry;
                if (entry == trial.truth_entry) {
                    for (int j = k; j < max_k; ++j) {
                        ++hits[static_cast<std::size_t>(j)];
                    }
                    break;
                }
            }
        }
    }
    return hits;
}

std::vector<std::pair<std::string, int>>
step_histogram(const std::vector<int> &steps)
{
    std::vector<std::pair<std::string, int>> buckets = {
        {"1", 0},    {"2", 0},     {"3-4", 0},
        {"5-8", 0},  {"9-16", 0},  {"17-32", 0},
        {">32", 0},
    };
    for (int s : steps) {
        std::size_t b = 0;
        if (s <= 1) {
            b = 0;
        } else if (s == 2) {
            b = 1;
        } else if (s <= 4) {
            b = 2;
        } else if (s <= 8) {
            b = 3;
        } else if (s <= 16) {
            b = 4;
        } else if (s <= 32) {
            b = 5;
        } else {
            b = 6;
        }
        ++buckets[b].second;
    }
    return buckets;
}

}  // namespace firmup::eval
