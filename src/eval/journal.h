/**
 * @file
 * Durable scan journal — crash-safe resumable corpus scans.
 *
 * A corpus scan over thousands of firmware images can run for hours; a
 * crash, OOM-kill or operator SIGTERM must not forfeit the work already
 * done. The journal is an append-only write-ahead log of per-target
 * results keyed by content key (eval::content_key): each target's
 * outcome is appended — checksummed — the moment it completes, and a
 * rerun with `--resume` replays the journal, skips every already-scanned
 * content key, and merges the replayed outcomes with the fresh ones so
 * the final findings and ScanHealth are bit-identical to an
 * uninterrupted scan (the determinism tests are the bar).
 *
 * FWSJ v2 on-disk format (all integers little-endian):
 *
 *   header   magic "FWSJ"(4) | version u16 | layout_hash u64 |
 *            fingerprint u64 | fnv1a64 of the preceding 22 bytes (u64)
 *   record*  payload_len u32 | fnv1a64(payload) u64 | payload bytes
 *
 * The fingerprint binds a journal to one (scan label, deterministic
 * option knobs) pair so a journal written for one CVE or one threshold
 * configuration cannot silently poison a different scan. Since v2 each
 * record additionally carries the fingerprint of the *query* it
 * answers, so a batched multi-CVE hunt journals one record per
 * (query, target) pair and a resume skips exactly the completed pairs
 * — not whole targets — mid-batch. Torn or corrupted tails are NOT
 * fatal: parsing stops at the first bad record and the valid prefix
 * wins — exactly the FWIX persistence philosophy (a cache/journal
 * problem must never be worse than not having one).
 */
#pragma once

#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "support/bytes.h"
#include "support/error.h"

namespace firmup::eval {

/**
 * One search outcome against one target executable. Defined here (not
 * driver.h) because it is the journal's record payload; the driver
 * includes this header.
 */
struct SearchOutcome
{
    bool detected = false;
    std::uint64_t matched_entry = 0;
    int sim = 0;
    int steps = 0;
    /** True when the game expired a budget before reaching an answer. */
    bool unresolved = false;
    /**
     * Unresolved specifically via the wall-clock watchdog — the one
     * load-dependent (hence retryable) unresolved cause.
     */
    bool deadline_expired = false;
    /**
     * The outcome was cut short by cooperative cancellation. Cancelled
     * outcomes are never journaled: they carry no answer, and replaying
     * them would make a resumed scan diverge from a clean one.
     */
    bool cancelled = false;
    /** Watchdog retries this outcome consumed before settling. */
    int retries = 0;
    /** Per-stage wall-clock of this outcome, in seconds. */
    double game_seconds = 0.0;
    double confirm_seconds = 0.0;
    /** Per-stage thread-CPU time of this outcome, in seconds. */
    double game_cpu_seconds = 0.0;
    double confirm_cpu_seconds = 0.0;
};

/**
 * One journal record: either a completed per-target outcome or a
 * quarantine decision. Both are replayed on resume — quarantines too,
 * so a resumed scan re-skips poisoned executables without re-lifting
 * them and reproduces the same health histogram.
 */
struct JournalEntry
{
    std::uint64_t content_key = 0;
    /**
     * Fingerprint of the query this record answers (see the driver's
     * query fingerprinting): a batched hunt writes one outcome record
     * per (content key, query) pair, and resume replays exactly that
     * granularity. Quarantine records carry 0 — a poisoned executable
     * is poisoned for every query.
     */
    std::uint64_t query_fp = 0;
    /** True = quarantine record; false = outcome record. */
    bool quarantined = false;
    /** Outcome records: did the target index (games were played)? */
    bool indexed = false;
    SearchOutcome outcome;  ///< valid when !quarantined
    ErrorCode code = ErrorCode::Unknown;  ///< valid when quarantined
    std::string exe_name;   ///< quarantine diagnostics
    std::string message;    ///< quarantine diagnostics
};

/** What parsing a journal file yielded. */
struct JournalLoad
{
    std::uint64_t fingerprint = 0;
    /** Valid-prefix records, in append order (last record wins per key). */
    std::vector<JournalEntry> entries;
    /** Bytes of the valid prefix, including the header. */
    std::size_t valid_bytes = 0;
    /** Bytes discarded past the valid prefix (torn/corrupt tail). */
    std::uint64_t truncated_bytes = 0;
};

/**
 * Descriptor hash of the FWSJ v2 byte layout; bump the descriptor string
 * in journal.cc whenever any field changes width, order or meaning so
 * old journals read as StaleFormat instead of misparsing.
 */
std::uint64_t journal_layout_hash();

/**
 * Error message of the one StaleFormat cause callers must tell apart:
 * a structurally sound, current-format journal whose fingerprint binds
 * it to a *different* scan configuration. The driver refuses to resume
 * across that boundary (mixing findings from two configurations) while
 * every other journal failure — corruption, stale layout — merely
 * degrades to a journal-less scan.
 */
inline constexpr const char *kJournalFingerprintMismatch =
    "journal: fingerprint mismatch (different scan configuration or "
    "label)";

/**
 * The append-only scan journal. Move-only; append() is thread-safe
 * (worker threads journal outcomes as they complete) and durable — each
 * record is fflush+fsync'd before append() returns, so a crash can tear
 * at most the record being written, which the parser truncates away.
 */
class ScanJournal
{
  public:
    ScanJournal() = default;
    ~ScanJournal() = default;
    ScanJournal(ScanJournal &&) = default;
    ScanJournal &operator=(ScanJournal &&) = default;
    ScanJournal(const ScanJournal &) = delete;
    ScanJournal &operator=(const ScanJournal &) = delete;

    /**
     * Create a fresh journal at @p path (truncating any existing file):
     * the header is written to a temp file, fsync'd, and renamed into
     * place, so a crash during creation leaves either no journal or a
     * complete empty one — never a half header.
     */
    static Result<ScanJournal> create(const std::string &path,
                                      std::uint64_t fingerprint);

    /**
     * Open @p path for resume: parse it (valid prefix wins), truncate
     * the file back to the valid prefix, reopen for appending, and
     * return the replayable entries through @p load. A missing file
     * degrades to create(). Fingerprint or layout mismatch is an error
     * (StaleFormat) — resuming someone else's journal must be loud.
     */
    static Result<ScanJournal> open_resume(const std::string &path,
                                           std::uint64_t fingerprint,
                                           JournalLoad *load);

    /**
     * Parse journal @p bytes. Never throws on corruption: a bad header
     * is MalformedContainer / StaleFormat; a bad record merely ends the
     * valid prefix (reported via JournalLoad::truncated_bytes).
     * @p expected_fingerprint 0 skips the fingerprint check.
     */
    static Result<JournalLoad> parse(const std::uint8_t *bytes,
                                     std::size_t size,
                                     std::uint64_t expected_fingerprint);

    /** Encode the FWSJ header for @p fingerprint (testing seam). */
    static ByteBuffer encode_header(std::uint64_t fingerprint);

    /** Encode one framed record (testing seam). */
    static ByteBuffer encode_record(const JournalEntry &entry);

    /**
     * Append one record, durably. Thread-safe. Returns false on write
     * failure — the scan keeps going; a journal problem costs resume
     * coverage, never the scan itself.
     */
    bool append(const JournalEntry &entry);

    /** Records appended through this handle (not replayed ones). */
    std::size_t appended() const;

    /** Flush + fsync the underlying stream (append already does). */
    void flush();

    bool is_open() const { return file_ != nullptr; }
    const std::string &path() const { return path_; }

  private:
    struct FileCloser
    {
        void operator()(std::FILE *f) const { std::fclose(f); }
    };

    std::string path_;
    std::unique_ptr<std::FILE, FileCloser> file_;
    /** Behind unique_ptr: std::mutex is immovable, ScanJournal is not. */
    std::unique_ptr<std::mutex> mutex_;
    std::size_t appended_ = 0;
};

}  // namespace firmup::eval
