#include "eval/journal.h"

#include <cstring>
#include <filesystem>
#include <fstream>
#include <string_view>

#include "support/fsio.h"
#include "support/hash.h"
#include "support/trace.h"

namespace firmup::eval {

namespace {

namespace fs = std::filesystem;

constexpr std::uint8_t kMagic[4] = {'F', 'W', 'S', 'J'};
constexpr std::uint16_t kJournalVersion = 2;

/**
 * Header: magic(4) version(2) layout_hash(8) fingerprint(8) checksum(8).
 * The checksum covers the preceding 22 bytes, so a torn header write is
 * indistinguishable from garbage and rejected as a whole.
 */
constexpr std::size_t kHeaderSize = 4 + 2 + 8 + 8 + 8;
constexpr std::size_t kChecksummedHeaderBytes = 4 + 2 + 8 + 8;

/** Record frame: payload_len(4) payload_checksum(8). */
constexpr std::size_t kFrameSize = 4 + 8;

/**
 * Hard cap on one record's payload. Real records are tens of bytes; a
 * multi-megabyte declared length is corruption, and bounding it keeps a
 * flipped length byte from stalling the parser on a huge bogus read.
 */
constexpr std::uint32_t kMaxRecordBytes = 1u << 20;

/** Record payload kinds. */
constexpr std::uint8_t kKindOutcome = 1;
constexpr std::uint8_t kKindQuarantine = 2;

/** Outcome flag bits. */
constexpr std::uint8_t kFlagIndexed = 1u << 0;
constexpr std::uint8_t kFlagDetected = 1u << 1;
constexpr std::uint8_t kFlagUnresolved = 1u << 2;
constexpr std::uint8_t kFlagDeadlineExpired = 1u << 3;

trace::Counter c_appends("journal.appends");
trace::Counter c_append_bytes("journal.append_bytes");
trace::Counter c_truncated_bytes("journal.truncated_bytes");

std::uint64_t
checksum_of(const std::uint8_t *bytes, std::size_t size)
{
    return fnv1a64(
        std::string_view(reinterpret_cast<const char *>(bytes), size));
}

void
append_string16(ByteBuffer &out, const std::string &s)
{
    const std::size_t len = std::min<std::size_t>(s.size(), 0xffff);
    append_u16_le(out, static_cast<std::uint16_t>(len));
    out.insert(out.end(), s.begin(),
               s.begin() + static_cast<std::ptrdiff_t>(len));
}

bool
read_string16(const std::uint8_t *bytes, std::size_t size,
              std::size_t &pos, std::string &out)
{
    if (pos + 2 > size) {
        return false;
    }
    const std::uint16_t len = read_u16_le(bytes + pos);
    pos += 2;
    if (pos + len > size) {
        return false;
    }
    out.assign(reinterpret_cast<const char *>(bytes + pos), len);
    pos += len;
    return true;
}

std::uint64_t
double_bits(double v)
{
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(v), "double must be 64-bit");
    std::memcpy(&bits, &v, sizeof(bits));
    return bits;
}

double
bits_double(std::uint64_t bits)
{
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
}

/**
 * Decode one record payload; false = structurally invalid (ends the
 * valid prefix exactly like a checksum mismatch would).
 */
bool
decode_payload(const std::uint8_t *bytes, std::size_t size,
               JournalEntry &entry)
{
    std::size_t pos = 0;
    if (pos + 1 + 8 + 8 > size) {
        return false;
    }
    const std::uint8_t kind = bytes[pos++];
    entry.content_key = read_u64_le(bytes + pos);
    pos += 8;
    entry.query_fp = read_u64_le(bytes + pos);
    pos += 8;
    if (kind == kKindOutcome) {
        entry.quarantined = false;
        if (pos + 1 + 8 + 4 + 4 + 4 + 4 * 8 > size) {
            return false;
        }
        const std::uint8_t flags = bytes[pos++];
        if ((flags & ~(kFlagIndexed | kFlagDetected | kFlagUnresolved |
                       kFlagDeadlineExpired)) != 0) {
            return false;
        }
        entry.indexed = (flags & kFlagIndexed) != 0;
        entry.outcome.detected = (flags & kFlagDetected) != 0;
        entry.outcome.unresolved = (flags & kFlagUnresolved) != 0;
        entry.outcome.deadline_expired =
            (flags & kFlagDeadlineExpired) != 0;
        entry.outcome.matched_entry = read_u64_le(bytes + pos);
        pos += 8;
        entry.outcome.sim =
            static_cast<int>(read_u32_le(bytes + pos));
        entry.outcome.steps =
            static_cast<int>(read_u32_le(bytes + pos + 4));
        entry.outcome.retries =
            static_cast<int>(read_u32_le(bytes + pos + 8));
        pos += 12;
        entry.outcome.game_seconds = bits_double(read_u64_le(bytes + pos));
        entry.outcome.confirm_seconds =
            bits_double(read_u64_le(bytes + pos + 8));
        entry.outcome.game_cpu_seconds =
            bits_double(read_u64_le(bytes + pos + 16));
        entry.outcome.confirm_cpu_seconds =
            bits_double(read_u64_le(bytes + pos + 24));
        pos += 32;
        return pos == size;
    }
    if (kind == kKindQuarantine) {
        entry.quarantined = true;
        entry.indexed = false;
        if (entry.query_fp != 0) {
            return false;  // quarantines are query-independent
        }
        if (pos + 1 > size) {
            return false;
        }
        const std::uint8_t code = bytes[pos++];
        if (code >= kErrorCodeCount) {
            return false;
        }
        entry.code = static_cast<ErrorCode>(code);
        return read_string16(bytes, size, pos, entry.exe_name) &&
               read_string16(bytes, size, pos, entry.message) &&
               pos == size;
    }
    return false;
}

Result<ScanJournal>
journal_io_error(const std::string &what, const std::string &path)
{
    return Result<ScanJournal>::error(
        ErrorCode::IoError, "journal: " + what + ": " + path);
}

}  // namespace

std::uint64_t
journal_layout_hash()
{
    // Descriptor of the v2 byte layout; bump the string whenever any
    // field changes width, order or meaning so old journals read as
    // stale instead of misparsing. v2 adds the per-record query
    // fingerprint (qfp) right after the content key in both kinds, so
    // batched hunts journal per (query, target) pair.
    static const std::uint64_t hash = fnv1a64(
        "fwsj-v2:hdr(magic4,ver-u16,layout-u64,fingerprint-u64,"
        "fnv1a64-hdr-u64);rec(len-u32,fnv1a64-payload-u64,payload);"
        "outcome(kind1,key-u64,qfp-u64,flags-u8,entry-u64,sim-u32,"
        "steps-u32,retries-u32,secs-4xf64bits);"
        "quarantine(kind2,key-u64,qfp-u64=0,code-u8,name-str16,"
        "msg-str16)");
    return hash;
}

ByteBuffer
ScanJournal::encode_header(std::uint64_t fingerprint)
{
    ByteBuffer out;
    for (std::uint8_t byte : kMagic) {
        out.push_back(byte);
    }
    append_u16_le(out, kJournalVersion);
    append_u64_le(out, journal_layout_hash());
    append_u64_le(out, fingerprint);
    append_u64_le(out, checksum_of(out.data(), out.size()));
    FIRMUP_ASSERT(out.size() == kHeaderSize, "journal header size");
    return out;
}

ByteBuffer
ScanJournal::encode_record(const JournalEntry &entry)
{
    ByteBuffer payload;
    if (entry.quarantined) {
        append_u8(payload, kKindQuarantine);
        append_u64_le(payload, entry.content_key);
        append_u64_le(payload, 0);  // quarantines bind to no query
        append_u8(payload, static_cast<std::uint8_t>(entry.code));
        append_string16(payload, entry.exe_name);
        append_string16(payload, entry.message);
    } else {
        append_u8(payload, kKindOutcome);
        append_u64_le(payload, entry.content_key);
        append_u64_le(payload, entry.query_fp);
        std::uint8_t flags = 0;
        flags |= entry.indexed ? kFlagIndexed : 0;
        flags |= entry.outcome.detected ? kFlagDetected : 0;
        flags |= entry.outcome.unresolved ? kFlagUnresolved : 0;
        flags |= entry.outcome.deadline_expired ? kFlagDeadlineExpired : 0;
        append_u8(payload, flags);
        append_u64_le(payload, entry.outcome.matched_entry);
        append_u32_le(payload,
                      static_cast<std::uint32_t>(entry.outcome.sim));
        append_u32_le(payload,
                      static_cast<std::uint32_t>(entry.outcome.steps));
        append_u32_le(payload,
                      static_cast<std::uint32_t>(entry.outcome.retries));
        append_u64_le(payload, double_bits(entry.outcome.game_seconds));
        append_u64_le(payload,
                      double_bits(entry.outcome.confirm_seconds));
        append_u64_le(payload,
                      double_bits(entry.outcome.game_cpu_seconds));
        append_u64_le(payload,
                      double_bits(entry.outcome.confirm_cpu_seconds));
    }
    ByteBuffer out;
    append_u32_le(out, static_cast<std::uint32_t>(payload.size()));
    append_u64_le(out, checksum_of(payload.data(), payload.size()));
    out.insert(out.end(), payload.begin(), payload.end());
    return out;
}

Result<JournalLoad>
ScanJournal::parse(const std::uint8_t *bytes, std::size_t size,
                   std::uint64_t expected_fingerprint)
{
    if (size < 6 || std::memcmp(bytes, kMagic, 4) != 0) {
        return Result<JournalLoad>::error(ErrorCode::MalformedContainer,
                                          "journal: bad magic");
    }
    const std::uint16_t version = read_u16_le(bytes + 4);
    if (version != kJournalVersion) {
        return Result<JournalLoad>::error(
            ErrorCode::StaleFormat,
            "journal: stale version " + std::to_string(version) +
                " (want " + std::to_string(kJournalVersion) + ")");
    }
    if (size < kHeaderSize) {
        return Result<JournalLoad>::error(ErrorCode::MalformedContainer,
                                          "journal: truncated header");
    }
    if (read_u64_le(bytes + 22) !=
        checksum_of(bytes, kChecksummedHeaderBytes)) {
        return Result<JournalLoad>::error(
            ErrorCode::MalformedContainer,
            "journal: header checksum mismatch");
    }
    if (read_u64_le(bytes + 6) != journal_layout_hash()) {
        return Result<JournalLoad>::error(ErrorCode::StaleFormat,
                                          "journal: stale layout hash");
    }
    JournalLoad load;
    load.fingerprint = read_u64_le(bytes + 14);
    if (expected_fingerprint != 0 &&
        load.fingerprint != expected_fingerprint) {
        return Result<JournalLoad>::error(ErrorCode::StaleFormat,
                                          kJournalFingerprintMismatch);
    }

    // Records: the valid prefix wins. Any framing, checksum or payload
    // defect — including a torn final record from a crash mid-append —
    // ends parsing; everything before it is intact by checksum.
    std::size_t pos = kHeaderSize;
    while (pos < size) {
        if (size - pos < kFrameSize) {
            break;  // torn frame
        }
        const std::uint32_t len = read_u32_le(bytes + pos);
        const std::uint64_t want = read_u64_le(bytes + pos + 4);
        if (len > kMaxRecordBytes || size - pos - kFrameSize < len) {
            break;  // corrupt length or torn payload
        }
        const std::uint8_t *payload = bytes + pos + kFrameSize;
        if (checksum_of(payload, len) != want) {
            break;  // payload corruption
        }
        JournalEntry entry;
        if (!decode_payload(payload, len, entry)) {
            break;  // checksum-clean but structurally invalid
        }
        load.entries.push_back(std::move(entry));
        pos += kFrameSize + len;
    }
    load.valid_bytes = pos;
    load.truncated_bytes = size - pos;
    return load;
}

Result<ScanJournal>
ScanJournal::create(const std::string &path, std::uint64_t fingerprint)
{
    // Header via tmp + fsync + rename: a crash leaves no journal or a
    // complete empty one, never a half header that a resume would have
    // to guess about.
    const std::string tmp = path + ".tmp";
    {
        std::FILE *f = std::fopen(tmp.c_str(), "wb");
        if (f == nullptr) {
            return journal_io_error("cannot create", tmp);
        }
        const ByteBuffer header = encode_header(fingerprint);
        const bool wrote =
            std::fwrite(header.data(), 1, header.size(), f) ==
                header.size() &&
            fsync_stream(f);
        std::fclose(f);
        if (!wrote) {
            std::remove(tmp.c_str());
            return journal_io_error("cannot write header", tmp);
        }
    }
    std::error_code ec;
    fs::rename(tmp, path, ec);
    if (ec) {
        std::remove(tmp.c_str());
        return journal_io_error("cannot publish", path);
    }

    ScanJournal journal;
    journal.path_ = path;
    journal.file_.reset(std::fopen(path.c_str(), "ab"));
    if (journal.file_ == nullptr) {
        return journal_io_error("cannot reopen for append", path);
    }
    journal.mutex_ = std::make_unique<std::mutex>();
    return journal;
}

Result<ScanJournal>
ScanJournal::open_resume(const std::string &path,
                         std::uint64_t fingerprint, JournalLoad *load)
{
    std::error_code ec;
    if (!fs::exists(path, ec)) {
        // Nothing to resume from: --resume on a first run degrades to a
        // fresh journal instead of erroring, so scripts can pass the
        // flag unconditionally.
        if (load != nullptr) {
            *load = JournalLoad{};
            load->fingerprint = fingerprint;
        }
        return create(path, fingerprint);
    }

    ByteBuffer bytes;
    {
        std::ifstream in(path, std::ios::binary);
        if (!in) {
            return journal_io_error("cannot read", path);
        }
        in.seekg(0, std::ios::end);
        const std::streamoff end = in.tellg();
        in.seekg(0, std::ios::beg);
        bytes.resize(static_cast<std::size_t>(end));
        if (end > 0 &&
            !in.read(reinterpret_cast<char *>(bytes.data()), end)) {
            return journal_io_error("cannot read", path);
        }
    }

    Result<JournalLoad> parsed =
        parse(bytes.data(), bytes.size(), fingerprint);
    if (!parsed.ok()) {
        return Result<ScanJournal>::error_from(parsed);
    }
    JournalLoad result = std::move(parsed).take();
    if (result.truncated_bytes > 0) {
        // Drop the torn/corrupt tail on disk too, so our appends extend
        // the valid prefix instead of burying garbage mid-file.
        c_truncated_bytes.add(result.truncated_bytes);
        fs::resize_file(path, result.valid_bytes, ec);
        if (ec) {
            return journal_io_error("cannot truncate torn tail", path);
        }
    }

    ScanJournal journal;
    journal.path_ = path;
    journal.file_.reset(std::fopen(path.c_str(), "ab"));
    if (journal.file_ == nullptr) {
        return journal_io_error("cannot reopen for append", path);
    }
    journal.mutex_ = std::make_unique<std::mutex>();
    if (load != nullptr) {
        *load = std::move(result);
    }
    return journal;
}

bool
ScanJournal::append(const JournalEntry &entry)
{
    if (file_ == nullptr) {
        return false;
    }
    const ByteBuffer record = encode_record(entry);
    std::lock_guard<std::mutex> lock(*mutex_);
    // fwrite + fsync per record: one syscall round-trip per target is
    // noise next to the game it just finished, and it is exactly what
    // makes a kill -9 lose at most the record being written.
    if (std::fwrite(record.data(), 1, record.size(), file_.get()) !=
            record.size() ||
        !fsync_stream(file_.get())) {
        return false;
    }
    ++appended_;
    c_appends.add(1);
    c_append_bytes.add(record.size());
    return true;
}

std::size_t
ScanJournal::appended() const
{
    if (mutex_ == nullptr) {
        return 0;
    }
    std::lock_guard<std::mutex> lock(*mutex_);
    return appended_;
}

void
ScanJournal::flush()
{
    if (file_ == nullptr) {
        return;
    }
    std::lock_guard<std::mutex> lock(*mutex_);
    fsync_stream(file_.get());
}

}  // namespace firmup::eval
