/**
 * @file
 * ScanHealth — coverage accounting for fault-tolerant corpus scans.
 *
 * FirmUp's accuracy numbers are meaningless without knowing how much of
 * the corpus was actually analyzed: real vendor blobs are routinely
 * truncated or repacked, and a scan that silently drops members
 * over-reports precision. Every Driver carries a ScanHealth that records
 * what was seen, what lifted, what was quarantined and why (an ErrorCode
 * histogram), so experiments print coverage alongside accuracy.
 */
#pragma once

#include <array>
#include <string>
#include <vector>

#include "firmware/image.h"
#include "support/error.h"

namespace firmup::eval {

/** One quarantined executable: who, and why. */
struct QuarantineEntry
{
    std::string exe_name;
    ErrorCode code = ErrorCode::Unknown;
    std::string message;
};

/** Per-image / per-corpus degradation record. */
struct ScanHealth
{
    std::size_t images_seen = 0;       ///< blobs handed to the unpacker
    std::size_t images_rejected = 0;   ///< blobs the unpacker refused
    std::size_t members_damaged = 0;   ///< members the unpacker skipped
    std::size_t executables_seen = 0;  ///< distinct executables lifted
    std::size_t lifted_ok = 0;
    std::size_t quarantined = 0;       ///< lift/index failures isolated
    std::size_t games_played = 0;      ///< outcomes folded into health
    std::size_t games_unresolved = 0;  ///< budget-exhausted games

    /**
     * Crash-safety / shutdown accounting (zero on an uninterrupted,
     * journal-less scan, so existing goldens are unaffected):
     *
     *  - `cancelled` marks a scan ended by cooperative cancellation
     *    (SIGINT/SIGTERM or a test hook) — its findings are a valid
     *    partial prefix, not a full answer;
     *  - `targets_cancelled` counts targets abandoned by that shutdown
     *    (not scanned, not journaled — a resume redoes them);
     *  - `resumed_targets` counts targets whose outcome was replayed
     *    from a scan journal instead of being recomputed;
     *  - `retries` counts transient-failure retries (lift IoError,
     *    watchdog-expired games) that eventually produced an answer or
     *    exhausted the retry budget;
     *  - `watchdog_expired` counts games whose per-target wall-clock
     *    budget expired (a subset of games_unresolved);
     *  - `journal_truncated_bytes` is the torn/corrupt journal tail
     *    discarded at resume (0 = the journal was clean).
     */
    bool cancelled = false;
    std::size_t targets_cancelled = 0;
    std::size_t resumed_targets = 0;
    std::size_t retries = 0;
    std::size_t watchdog_expired = 0;
    std::uint64_t journal_truncated_bytes = 0;

    /**
     * Persistent index-cache accounting (zero unless the driver runs
     * with an --index-cache store): hits are executables whose finalized
     * index was loaded from disk instead of lifted; misses had to be
     * lifted (absent, corrupt or stale entries all count as misses —
     * corruption degrades, it never fails the scan).
     */
    std::size_t cache_hits = 0;
    std::size_t cache_misses = 0;
    std::uint64_t cache_write_bytes = 0;  ///< FWIX bytes published
    double cache_load_seconds = 0.0;      ///< summed load wall clock

    /**
     * cache_load_seconds split by stage (sim::IndexCacheStore::
     * LoadStats): open (file open + read, or mmap), checksum (the
     * container guards over the payload) and parse (view open or
     * copying parse). The split is what makes the mmap win legible —
     * a v5 view open collapses parse to ~O(procs) while checksum stays.
     * cache_mmap_loads counts loads served by the zero-copy view.
     */
    double cache_open_seconds = 0.0;
    double cache_checksum_seconds = 0.0;
    double cache_parse_seconds = 0.0;
    std::size_t cache_mmap_loads = 0;

    /**
     * Resident in-process index cache accounting (zero unless the scan
     * ran with a ResidentIndexCache wired into SearchOptions): hits are
     * executables whose deserialized index was still resident from an
     * earlier scan in this process — no store I/O, no checksum, no
     * parse. Hits are healthy lifted executables (counted in lifted_ok)
     * but deliberately NOT cache_hits: the disk store was never
     * touched. Evictions are attributed to the scan that caused them.
     */
    std::size_t resident_hits = 0;
    std::size_t resident_misses = 0;
    std::size_t resident_evictions = 0;

    /**
     * Query-recipe store accounting, kept apart from the target-index
     * counters above: a recipe hit serves a compiled query's finalized
     * index without running codegen, so it has no lifted executable
     * behind it (folding it into cache_hits would break the
     * cache_hits <= lifted_ok invariant sane() checks).
     */
    std::size_t query_cache_hits = 0;
    std::size_t query_cache_misses = 0;

    /**
     * Cross-executable canon memo accounting (see strand/memo.h): hits
     * are basic blocks whose strand-hash span was replayed from the
     * memo during cold indexing; misses were canonicalized and
     * published. Zero when the scan ran memo-off or entirely warm from
     * the index cache.
     */
    std::uint64_t canon_memo_hits = 0;
    std::uint64_t canon_memo_misses = 0;

    /**
     * Candidate-retrieval accounting (see sim::RetrievalCounters).
     * Exact probes count the candidate pairs the posting/dense path
     * scored; LSH probes count the pairs the MinHash band table let
     * through plus `retrieval_lsh_exact_work`, the posting-list
     * incidences an exact probe of the same query would have touched —
     * the work the prefilter avoided. sketch_seconds is the wall clock
     * spent building MinHash sketches (cold indexing only; warm FWIX v4
     * loads ship sketches for free).
     */
    std::uint64_t retrieval_probes_exact = 0;
    std::uint64_t retrieval_candidates_exact = 0;
    std::uint64_t retrieval_probes_lsh = 0;
    std::uint64_t retrieval_candidates_lsh = 0;
    std::uint64_t retrieval_lsh_exact_work = 0;
    double sketch_seconds = 0.0;

    /**
     * A `--resume` was refused because the journal on disk was written
     * by a different scan configuration (fingerprint mismatch — e.g.
     * another retrieval mode or threshold set). Unlike a corrupt
     * journal, which merely degrades to a journal-less scan, a
     * fingerprint mismatch means replaying would silently mix findings
     * from two different configurations, so the driver refuses to scan
     * and callers must surface the error.
     */
    bool resume_rejected = false;
    std::string resume_reject_reason;

    /**
     * Per-stage time totals in seconds, wall and CPU recorded
     * separately (and labeled in render_health) so a parallel scan's
     * numbers are unambiguous:
     *
     *  - `index_seconds` is the *elapsed* wall clock of the (parallel)
     *    lift+index phase; `index_cpu_seconds` is the process-CPU time
     *    the phase consumed across all workers.
     *  - `game_seconds`/`confirm_seconds` are per-outcome wall clock
     *    *summed over outcomes* — on a parallel scan that is busy time
     *    across workers, not elapsed time. The matching
     *    `*_cpu_seconds` sums are per-outcome thread-CPU time.
     *  - `match_wall_seconds` is the elapsed wall clock of the
     *    game+confirm fan-out phases of search_corpus (0 for purely
     *    serial search()/match() callers, where `game_seconds` already
     *    is elapsed time).
     */
    double index_seconds = 0.0;
    double index_cpu_seconds = 0.0;
    double game_seconds = 0.0;
    double game_cpu_seconds = 0.0;
    double confirm_seconds = 0.0;
    double confirm_cpu_seconds = 0.0;
    double match_wall_seconds = 0.0;

    /** errors[code] = failures of that class, across all stages. */
    std::array<std::size_t, kErrorCodeCount> errors{};

    /** First quarantined executables (capped at kMaxQuarantineLog). */
    std::vector<QuarantineEntry> quarantine_log;
    static constexpr std::size_t kMaxQuarantineLog = 64;

    /** Count one failure of class @p code in the histogram. */
    void note_error(ErrorCode code);

    /** Record a successfully unpacked blob (damage counters merged). */
    void note_unpack(const firmware::UnpackResult &unpacked);

    /** Record a blob the unpacker rejected outright. */
    void note_unpack_failure(ErrorCode code);

    /** Record one quarantined executable. */
    void note_quarantine(const std::string &exe_name, ErrorCode code,
                         const std::string &message);

    /** Fold another record into this one (corpus-level aggregation). */
    void merge(const ScanHealth &other);

    /**
     * Internal consistency: every lifted executable is either healthy or
     * quarantined, and the histogram covers at least the quarantined +
     * damaged counts. The fault-injection harness asserts this after
     * every mutated image.
     */
    bool sane() const;

    /** One-line coverage summary for scan footers. */
    std::string summary() const;
};

/**
 * Per-shard slice of a fleet scan (eval/shard.h): the coordinator
 * keeps one per worker shard — discrete counters distilled from that
 * shard's frames plus supervision events only the coordinator can see
 * (respawns, wall clock). The fleet-wide ScanHealth is the shard
 * healths merged in shard order; these slices are what
 * render_shard_breakdown (eval/report.h) prints under it so a stalled
 * or churning shard is visible instead of averaged away.
 */
struct ShardSlice
{
    std::size_t shard = 0;
    std::size_t blobs = 0;     ///< manifest entries assigned here
    std::size_t findings = 0;
    std::size_t searched = 0;  ///< (query, target) records newly journaled
    std::size_t replayed = 0;  ///< pairs served from the seeded journal
    std::size_t frames = 0;    ///< protocol frames received
    std::size_t respawns = 0;  ///< reassignments after death/stall
    double seconds = 0.0;      ///< shard wall clock (spawn to done)
};

}  // namespace firmup::eval
