#include "eval/shard.h"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <thread>
#include <utility>

#include <poll.h>
#include <unistd.h>

#include "firmware/image.h"
#include "support/cancel.h"
#include "support/hash.h"
#include "support/str.h"
#include "support/subproc.h"
#include "support/trace.h"

namespace firmup::eval {

namespace {

// Fleet-supervision accounting, mirrored into the FleetReport so scans
// without --stats-json still surface it.
const trace::Counter c_workers_spawned("shard.workers_spawned");
const trace::Counter c_frames_received("shard.frames_received");
const trace::Counter c_reassignments("shard.reassignments");
const trace::Counter c_incremental_skips("shard.incremental_skips");

double
seconds_between(std::chrono::steady_clock::time_point a,
                std::chrono::steady_clock::time_point b)
{
    return std::chrono::duration<double>(b - a).count();
}

void
append_escaped(std::string &out, std::string_view text)
{
    for (const char c : text) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    out += strprintf("\\u%04x",
                                     static_cast<unsigned>(
                                         static_cast<unsigned char>(c)));
                } else {
                    out += c;
                }
        }
    }
}

/** Parse one JSON string literal starting at buf[pos] == '"'. */
bool
parse_string(std::string_view buf, std::size_t &pos, std::string *out)
{
    if (pos >= buf.size() || buf[pos] != '"') {
        return false;
    }
    ++pos;
    out->clear();
    while (pos < buf.size()) {
        const char c = buf[pos++];
        if (c == '"') {
            return true;
        }
        if (c != '\\') {
            *out += c;
            continue;
        }
        if (pos >= buf.size()) {
            return false;
        }
        const char esc = buf[pos++];
        switch (esc) {
            case '"': *out += '"'; break;
            case '\\': *out += '\\'; break;
            case '/': *out += '/'; break;
            case 'n': *out += '\n'; break;
            case 'r': *out += '\r'; break;
            case 't': *out += '\t'; break;
            case 'u': {
                if (pos + 4 > buf.size()) {
                    return false;
                }
                unsigned value = 0;
                for (int k = 0; k < 4; ++k) {
                    const char h = buf[pos++];
                    value <<= 4;
                    if (h >= '0' && h <= '9') {
                        value |= static_cast<unsigned>(h - '0');
                    } else if (h >= 'a' && h <= 'f') {
                        value |= static_cast<unsigned>(h - 'a' + 10);
                    } else if (h >= 'A' && h <= 'F') {
                        value |= static_cast<unsigned>(h - 'A' + 10);
                    } else {
                        return false;
                    }
                }
                // The protocol only escapes control bytes this way.
                *out += static_cast<char>(value & 0xff);
                break;
            }
            default: return false;
        }
    }
    return false;
}

void
skip_spaces(std::string_view buf, std::size_t &pos)
{
    while (pos < buf.size() &&
           (buf[pos] == ' ' || buf[pos] == '\t' || buf[pos] == '\n' ||
            buf[pos] == '\r')) {
        ++pos;
    }
}

std::uint64_t
field_u64(const FrameFields &fields, const char *key)
{
    const auto it = fields.find(key);
    if (it == fields.end()) {
        return 0;
    }
    try {
        return std::stoull(it->second);
    } catch (const std::exception &) {
        return 0;
    }
}

double
field_double(const FrameFields &fields, const char *key)
{
    const auto it = fields.find(key);
    if (it == fields.end()) {
        return 0.0;
    }
    try {
        return std::stod(it->second);
    } catch (const std::exception &) {
        return 0.0;
    }
}

std::string
field_str(const FrameFields &fields, const char *key)
{
    const auto it = fields.find(key);
    return it == fields.end() ? std::string() : it->second;
}

Result<ByteBuffer>
read_file_bytes(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        return Result<ByteBuffer>::error(ErrorCode::IoError,
                                         "cannot open " + path);
    }
    ByteBuffer bytes((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    return bytes;
}

/** Mutex-serialized frame writes — heartbeats race the scan results. */
class FrameWriter
{
  public:
    explicit FrameWriter(int fd) : fd_(fd) {}

    bool
    send(const FrameFields &fields)
    {
        const std::string payload = encode_frame(fields);
        const std::lock_guard<std::mutex> lock(mutex_);
        return write_frame(fd_, payload);
    }

  private:
    int fd_;
    std::mutex mutex_;
};

Result<std::vector<firmware::CveRecord>>
resolve_cves(const std::vector<std::string> &ids)
{
    std::vector<firmware::CveRecord> cves;
    for (const std::string &id : ids) {
        const firmware::CveRecord *found = nullptr;
        for (const firmware::CveRecord &record :
             firmware::cve_database()) {
            if (record.cve_id == id) {
                found = &record;
            }
        }
        if (found == nullptr) {
            return Result<std::vector<firmware::CveRecord>>::error(
                ErrorCode::MissingProcedure, "unknown CVE " + id);
        }
        cves.push_back(*found);
    }
    return cves;
}

}  // namespace

std::size_t
shard_of_path(std::string_view path, std::size_t shard_count)
{
    if (shard_count <= 1) {
        return 0;
    }
    // Domain-prefixed so the shard hash can never collide with the
    // content/recipe key streams sharing fnv1a64 elsewhere.
    const std::uint64_t h =
        fnv1a64_update(fnv1a64("fwshard:"), path);
    return static_cast<std::size_t>(h % shard_count);
}

std::string
encode_frame(const FrameFields &fields)
{
    std::string out = "{";
    bool first = true;
    for (const auto &[key, value] : fields) {
        if (!first) {
            out += ',';
        }
        first = false;
        out += '"';
        append_escaped(out, key);
        out += "\":\"";
        append_escaped(out, value);
        out += '"';
    }
    out += '}';
    return out;
}

bool
decode_frame(std::string_view payload, FrameFields *fields)
{
    fields->clear();
    std::size_t pos = 0;
    skip_spaces(payload, pos);
    if (pos >= payload.size() || payload[pos] != '{') {
        return false;
    }
    ++pos;
    skip_spaces(payload, pos);
    if (pos < payload.size() && payload[pos] == '}') {
        return true;
    }
    std::string key, value;
    for (;;) {
        skip_spaces(payload, pos);
        if (!parse_string(payload, pos, &key)) {
            return false;
        }
        skip_spaces(payload, pos);
        if (pos >= payload.size() || payload[pos] != ':') {
            return false;
        }
        ++pos;
        skip_spaces(payload, pos);
        if (!parse_string(payload, pos, &value)) {
            return false;
        }
        (*fields)[key] = value;
        skip_spaces(payload, pos);
        if (pos >= payload.size()) {
            return false;
        }
        if (payload[pos] == ',') {
            ++pos;
            continue;
        }
        if (payload[pos] == '}') {
            return true;
        }
        return false;
    }
}

// One X-macro list per field type keeps health_to_fields and
// health_from_fields symmetric by construction — a field added to
// ScanHealth joins the protocol by joining exactly one list.
#define FIRMUP_SHARD_HEALTH_COUNT_FIELDS(X)                              \
    X(images_seen)                                                       \
    X(images_rejected)                                                   \
    X(members_damaged)                                                   \
    X(executables_seen)                                                  \
    X(lifted_ok)                                                         \
    X(quarantined)                                                       \
    X(games_played)                                                      \
    X(games_unresolved)                                                  \
    X(targets_cancelled)                                                 \
    X(resumed_targets)                                                   \
    X(retries)                                                           \
    X(watchdog_expired)                                                  \
    X(journal_truncated_bytes)                                           \
    X(cache_hits)                                                        \
    X(cache_misses)                                                      \
    X(cache_write_bytes)                                                 \
    X(cache_mmap_loads)                                                  \
    X(resident_hits)                                                     \
    X(resident_misses)                                                   \
    X(resident_evictions)                                                \
    X(query_cache_hits)                                                  \
    X(query_cache_misses)                                                \
    X(canon_memo_hits)                                                   \
    X(canon_memo_misses)                                                 \
    X(retrieval_probes_exact)                                            \
    X(retrieval_candidates_exact)                                        \
    X(retrieval_probes_lsh)                                              \
    X(retrieval_candidates_lsh)                                          \
    X(retrieval_lsh_exact_work)

#define FIRMUP_SHARD_HEALTH_DOUBLE_FIELDS(X)                             \
    X(cache_load_seconds)                                                \
    X(cache_open_seconds)                                                \
    X(cache_checksum_seconds)                                            \
    X(cache_parse_seconds)                                               \
    X(sketch_seconds)                                                    \
    X(index_seconds)                                                     \
    X(index_cpu_seconds)                                                 \
    X(game_seconds)                                                      \
    X(game_cpu_seconds)                                                  \
    X(confirm_seconds)                                                   \
    X(confirm_cpu_seconds)                                               \
    X(match_wall_seconds)

#define FIRMUP_SHARD_HEALTH_BOOL_FIELDS(X)                               \
    X(cancelled)                                                         \
    X(resume_rejected)

void
health_to_fields(const ScanHealth &health, FrameFields &fields)
{
#define FIRMUP_PUT_COUNT(name)                                           \
    fields[#name] = strprintf(                                           \
        "%llu", static_cast<unsigned long long>(health.name));
    FIRMUP_SHARD_HEALTH_COUNT_FIELDS(FIRMUP_PUT_COUNT)
#undef FIRMUP_PUT_COUNT
#define FIRMUP_PUT_DOUBLE(name)                                          \
    fields[#name] = strprintf("%.17g", health.name);
    FIRMUP_SHARD_HEALTH_DOUBLE_FIELDS(FIRMUP_PUT_DOUBLE)
#undef FIRMUP_PUT_DOUBLE
#define FIRMUP_PUT_BOOL(name) fields[#name] = health.name ? "1" : "0";
    FIRMUP_SHARD_HEALTH_BOOL_FIELDS(FIRMUP_PUT_BOOL)
#undef FIRMUP_PUT_BOOL
    fields["resume_reject_reason"] = health.resume_reject_reason;
    std::string errors;
    for (std::size_t c = 0; c < kErrorCodeCount; ++c) {
        if (c > 0) {
            errors += ',';
        }
        errors += strprintf(
            "%llu", static_cast<unsigned long long>(health.errors[c]));
    }
    fields["errors"] = errors;
}

void
health_from_fields(const FrameFields &fields, ScanHealth &health)
{
#define FIRMUP_GET_COUNT(name)                                           \
    health.name = static_cast<decltype(health.name)>(                    \
        field_u64(fields, #name));
    FIRMUP_SHARD_HEALTH_COUNT_FIELDS(FIRMUP_GET_COUNT)
#undef FIRMUP_GET_COUNT
#define FIRMUP_GET_DOUBLE(name)                                          \
    health.name = field_double(fields, #name);
    FIRMUP_SHARD_HEALTH_DOUBLE_FIELDS(FIRMUP_GET_DOUBLE)
#undef FIRMUP_GET_DOUBLE
#define FIRMUP_GET_BOOL(name)                                            \
    health.name = field_u64(fields, #name) != 0;
    FIRMUP_SHARD_HEALTH_BOOL_FIELDS(FIRMUP_GET_BOOL)
#undef FIRMUP_GET_BOOL
    health.resume_reject_reason = field_str(fields, "resume_reject_reason");
    const std::string errors = field_str(fields, "errors");
    std::size_t start = 0;
    for (std::size_t c = 0; c < kErrorCodeCount; ++c) {
        if (start > errors.size()) {
            break;
        }
        const std::size_t comma = errors.find(',', start);
        const std::size_t stop =
            comma == std::string::npos ? errors.size() : comma;
        try {
            health.errors[c] =
                std::stoull(errors.substr(start, stop - start));
        } catch (const std::exception &) {
            health.errors[c] = 0;
        }
        start = stop + 1;
    }
}

int
run_shard_worker(const ShardWorkerOptions &options)
{
    FrameWriter writer(STDOUT_FILENO);

    auto cves = resolve_cves(options.cve_ids);
    if (!cves.ok()) {
        std::fprintf(stderr, "firmup worker: %s\n",
                     cves.error_message().c_str());
        return 1;
    }
    if (options.shard_count == 0 ||
        options.shard_index >= options.shard_count) {
        std::fprintf(stderr, "firmup worker: shard %zu out of %zu\n",
                     options.shard_index, options.shard_count);
        return 1;
    }

    writer.send({{"type", "hello"},
                 {"shard", std::to_string(options.shard_index)},
                 {"pid", std::to_string(::getpid())}});

    // Heartbeats from a side thread at a quarter of the stall deadline:
    // the scan itself can legitimately go quiet for the whole length of
    // a cold index phase, and the coordinator must be able to tell
    // "busy" from "dead".
    std::atomic<bool> stop_heartbeats{false};
    std::thread heartbeat([&] {
        const double interval =
            std::max(0.05, options.heartbeat_seconds / 4.0);
        std::uint64_t seq = 0;
        auto next = std::chrono::steady_clock::now();
        while (!stop_heartbeats.load(std::memory_order_relaxed)) {
            const auto now = std::chrono::steady_clock::now();
            if (now >= next) {
                writer.send({{"type", "heartbeat"},
                             {"seq", std::to_string(seq++)}});
                next = now + std::chrono::duration_cast<
                                 std::chrono::steady_clock::duration>(
                                 std::chrono::duration<double>(interval));
            }
            std::this_thread::sleep_for(std::chrono::milliseconds(20));
        }
    });
    const auto join_heartbeat = [&] {
        stop_heartbeats.store(true, std::memory_order_relaxed);
        heartbeat.join();
    };

    // Unpack this shard's slice of the manifest. Global blob indices are
    // preserved (image_index and the finding frames both carry them) so
    // the coordinator's merge order is manifest order, not shard order.
    ScanHealth unpack_health;
    std::vector<firmware::UnpackResult> blobs;
    std::vector<std::size_t> blob_index;  // global manifest index
    for (std::size_t g = 0; g < options.blob_paths.size(); ++g) {
        if (shard_of_path(options.blob_paths[g], options.shard_count) !=
            options.shard_index) {
            continue;
        }
        auto bytes = read_file_bytes(options.blob_paths[g]);
        if (!bytes.ok()) {
            std::fprintf(stderr, "firmup worker: %s: %s\n",
                         options.blob_paths[g].c_str(),
                         bytes.error_message().c_str());
            unpack_health.note_unpack_failure(bytes.error_code());
            continue;
        }
        auto unpacked = firmware::unpack_firmware(bytes.value());
        if (!unpacked.ok()) {
            std::fprintf(stderr, "firmup worker: %s: %s\n",
                         options.blob_paths[g].c_str(),
                         unpacked.error_message().c_str());
            unpack_health.note_unpack_failure(unpacked.error_code());
            continue;
        }
        unpack_health.note_unpack(unpacked.value());
        blobs.push_back(std::move(unpacked).take());
        blob_index.push_back(g);
    }
    std::vector<CorpusTarget> targets;
    std::vector<std::pair<std::size_t, std::size_t>> target_pos;
    for (std::size_t b = 0; b < blobs.size(); ++b) {
        const auto &exes = blobs[b].image.executables;
        for (std::size_t ord = 0; ord < exes.size(); ++ord) {
            targets.push_back({&exes[ord],
                               static_cast<int>(blob_index[b])});
            target_pos.emplace_back(blob_index[b], ord);
        }
    }

    SearchOptions sopt;
    sopt.index_cache_dir = options.index_cache_dir;
    sopt.mmap_index = options.mmap_index;
    sopt.retrieval = options.retrieval;
    sopt.lsh_bands = options.lsh_bands;
    sopt.lsh_rows = options.lsh_rows;
    sopt.journal_path = options.journal_path;
    sopt.resume = !options.journal_path.empty();
    sim::ResidentIndexCache resident(options.resident_cache_mb * 1024 *
                                     1024);
    if (options.resident_cache_mb > 0) {
        sopt.resident_cache = &resident;
    }
    CancelToken seam_token;
    if (options.exit_after_appends > 0) {
        sopt.cancel = &seam_token;
        sopt.cancel_after_appends = options.exit_after_appends;
    }

    Driver driver(sopt);
    driver.health().merge(unpack_health);
    const std::vector<std::vector<CorpusOutcome>> grid =
        driver.search_corpus_batch(cves.value(), targets,
                                   options.threads, options.confirm);

    if (options.exit_after_appends > 0 && seam_token.requested()) {
        // Crash/stall test seams: the scan drained cooperatively after N
        // appends, so the journal holds a valid prefix — now die the way
        // a real worker would. The kill seam exits mid-protocol (no
        // done frame, no health); the stall seam goes silent without
        // exiting, which is what the heartbeat deadline exists for.
        join_heartbeat();
        if (options.stall_after_appends) {
            for (;;) {
                std::this_thread::sleep_for(std::chrono::seconds(3600));
            }
        }
        ::_exit(9);
    }

    const ScanHealth &health = driver.health();
    for (std::size_t q = 0; q < grid.size(); ++q) {
        for (std::size_t t = 0; t < grid[q].size(); ++t) {
            const CorpusOutcome &co = grid[q][t];
            if (!co.indexed || !co.outcome.detected) {
                continue;
            }
            writer.send(
                {{"type", "finding"},
                 {"cve", std::to_string(q)},
                 {"blob", std::to_string(target_pos[t].first)},
                 {"ord", std::to_string(target_pos[t].second)},
                 {"exe", co.target.exe->name},
                 {"entry", strprintf("%llu",
                                     static_cast<unsigned long long>(
                                         co.outcome.matched_entry))},
                 {"sim", std::to_string(co.outcome.sim)},
                 {"steps", std::to_string(co.outcome.steps)}});
        }
    }
    for (const QuarantineEntry &entry : health.quarantine_log) {
        writer.send({{"type", "quar"},
                     {"exe", entry.exe_name},
                     {"code", std::to_string(static_cast<int>(entry.code))},
                     {"msg", entry.message}});
    }
    FrameFields health_fields;
    health_to_fields(health, health_fields);
    health_fields["type"] = "health";
    health_fields["appended"] =
        std::to_string(driver.journal().appended());
    writer.send(health_fields);
    writer.send({{"type", "done"},
                 {"ok", health.resume_rejected ? "0" : "1"}});
    join_heartbeat();
    return health.resume_rejected ? 1 : 0;
}

namespace {

/** Coordinator-side book-keeping for one shard's current worker. */
struct ShardRun
{
    std::size_t shard = 0;
    std::size_t blobs = 0;
    pid_t pid = -1;
    int fd = -1;
    FrameReader reader;
    std::chrono::steady_clock::time_point spawned_at;
    std::chrono::steady_clock::time_point last_frame;
    int attempt = 0;
    bool done_frame = false;
    bool committed = false;
    // Buffered until the worker exits cleanly — a dead worker's partial
    // results are discarded wholesale and the respawn re-reports them
    // (the journal replay makes that cheap and bit-identical).
    std::vector<FleetFinding> findings;
    std::vector<QuarantineEntry> quars;
    ScanHealth health;
    bool health_frame = false;
    std::size_t appended = 0;
    ShardSlice slice;
};

std::vector<std::string>
worker_args(const ShardScanOptions &options, std::size_t shard,
            const std::string &journal_path, bool with_seams)
{
    std::vector<std::string> args = {
        "--worker",
        "--shard-index", std::to_string(shard),
        "--shard-count", std::to_string(options.workers),
        "--threads", std::to_string(options.worker_threads),
        "--heartbeat", strprintf("%.3f", options.heartbeat_seconds),
        "--journal", journal_path,
        "--cve-list", join(options.cve_ids, ",")};
    if (!options.index_cache_dir.empty()) {
        args.push_back("--index-cache");
        args.push_back(options.index_cache_dir);
    }
    if (!options.mmap_index) {
        args.push_back("--no-mmap");
    }
    if (options.resident_cache_mb > 0) {
        args.push_back("--resident-cache-mb");
        args.push_back(std::to_string(options.resident_cache_mb));
    }
    if (options.retrieval == sim::RetrievalMode::Lsh) {
        args.push_back("--retrieval");
        args.push_back("lsh");
        args.push_back("--lsh-bands");
        args.push_back(std::to_string(options.lsh_bands));
        args.push_back("--lsh-rows");
        args.push_back(std::to_string(options.lsh_rows));
    }
    if (!options.confirm) {
        args.push_back("--no-confirm");
    }
    if (with_seams && options.kill_first_worker_after > 0) {
        args.push_back("--exit-after");
        args.push_back(std::to_string(options.kill_first_worker_after));
        if (options.stall_first_worker) {
            args.push_back("--stall");
        }
    }
    for (const std::string &path : options.blob_paths) {
        args.push_back(path);
    }
    return args;
}

}  // namespace

FleetReport
run_shard_scan(const std::string &worker_binary,
               const ShardScanOptions &options_in)
{
    FleetReport report;
    const auto fleet_start = std::chrono::steady_clock::now();
    ShardScanOptions options = options_in;
    if (options.workers == 0) {
        options.workers = 1;
    }
    if (options.cve_ids.empty() || options.blob_paths.empty()) {
        report.error = "shard-scan needs at least one CVE and one blob";
        return report;
    }
    auto cves = resolve_cves(options.cve_ids);
    if (!cves.ok()) {
        report.error = cves.error_message();
        return report;
    }

    // The scan identity every per-shard journal (and the state
    // manifest) is bound to: must match what the workers' drivers
    // compute from the flags worker_args() hands them, or every resume
    // would be refused. SearchOptions' deterministic knobs beyond the
    // retrieval block are not exposed on the shard-scan CLI, so the
    // defaults here are the workers' defaults.
    SearchOptions proto;
    proto.retrieval = options.retrieval;
    proto.lsh_bands = options.lsh_bands;
    proto.lsh_rows = options.lsh_rows;
    const std::uint64_t fp = scan_fingerprint(
        proto, batch_scan_label(cves.value()), options.confirm);

    std::string state_dir = options.state_dir;
    const bool ephemeral = state_dir.empty();
    if (ephemeral) {
        state_dir =
            (std::filesystem::temp_directory_path() /
             strprintf("firmup-shard-%d", static_cast<int>(::getpid())))
                .string();
    }
    std::error_code ec;
    std::filesystem::create_directories(state_dir, ec);
    if (ec) {
        report.error = "cannot create state dir " + state_dir + ": " +
                       ec.message();
        return report;
    }
    const auto cleanup_ephemeral = [&] {
        if (ephemeral) {
            std::error_code ignore;
            std::filesystem::remove_all(state_dir, ignore);
        }
    };

    // Prior state: a FWSJ journal under the scan fingerprint. A
    // mismatching or corrupt state file degrades to a fresh full scan —
    // incremental state is an optimization, never a correctness input.
    std::vector<JournalEntry> prior;
    const std::string state_path = state_dir + "/state.fwsj";
    if (std::filesystem::exists(state_path, ec) && !ec) {
        auto bytes = read_file_bytes(state_path);
        if (bytes.ok()) {
            auto load = ScanJournal::parse(bytes.value().data(),
                                           bytes.value().size(), fp);
            if (load.ok()) {
                prior = std::move(load).take().entries;
                report.state_reused = true;
            } else if (!options.quiet) {
                std::fprintf(stderr,
                             "shard-scan: ignoring state %s (%s) — "
                             "running a full scan\n",
                             state_path.c_str(),
                             load.error_message().c_str());
            }
        }
    }

    // Shard the manifest; shards that own no blobs are never spawned.
    std::vector<std::size_t> shard_blobs(options.workers, 0);
    for (const std::string &path : options.blob_paths) {
        ++shard_blobs[shard_of_path(path, options.workers)];
    }

    std::vector<ShardRun> runs;
    for (std::size_t k = 0; k < options.workers; ++k) {
        if (shard_blobs[k] == 0) {
            continue;
        }
        ShardRun run;
        run.shard = k;
        run.blobs = shard_blobs[k];
        run.slice.shard = k;
        run.slice.blobs = shard_blobs[k];
        runs.push_back(std::move(run));
    }

    // Seed every shard journal from the prior state so unchanged
    // (content key, query) pairs replay without lift/canon/search work.
    // Entries are seeded wholesale — content keys don't map to paths
    // without unpacking, and replay simply ignores pairs outside the
    // shard's slice.
    for (ShardRun &run : runs) {
        const std::string journal_path =
            state_dir + strprintf("/shard-%zu.fwsj", run.shard);
        auto journal = ScanJournal::create(journal_path, fp);
        if (!journal.ok()) {
            report.error = "cannot create " + journal_path + ": " +
                           journal.error_message();
            cleanup_ephemeral();
            return report;
        }
        ScanJournal seeded = std::move(journal).take();
        for (const JournalEntry &entry : prior) {
            seeded.append(entry);
        }
        seeded.flush();
    }

    const auto journal_path_of = [&](const ShardRun &run) {
        return state_dir + strprintf("/shard-%zu.fwsj", run.shard);
    };
    const auto spawn = [&](ShardRun &run) -> bool {
        const bool first_of_shard0 = run.shard == runs.front().shard &&
                                     run.attempt == 0;
        auto child = spawn_child(
            worker_binary,
            worker_args(options, run.shard, journal_path_of(run),
                        first_of_shard0));
        if (!child.ok()) {
            report.error = "cannot spawn worker for shard " +
                           std::to_string(run.shard) + ": " +
                           child.error_message();
            return false;
        }
        run.pid = child.value().pid;
        run.fd = child.value().out_fd;
        run.reader = FrameReader();
        run.spawned_at = std::chrono::steady_clock::now();
        run.last_frame = run.spawned_at;
        run.done_frame = false;
        run.health_frame = false;
        run.findings.clear();
        run.quars.clear();
        run.health = ScanHealth();
        run.appended = 0;
        ++run.attempt;
        ++report.workers_spawned;
        c_workers_spawned.add();
        if (!options.quiet) {
            std::fprintf(stderr,
                         "shard-scan: shard %zu -> pid %d (%zu blob(s)%s)\n",
                         run.shard, static_cast<int>(run.pid), run.blobs,
                         run.attempt > 1 ? ", respawned" : "");
        }
        return true;
    };

    const auto dispatch_frame = [&](ShardRun &run,
                                    const std::string &payload) -> bool {
        FrameFields fields;
        if (!decode_frame(payload, &fields)) {
            return false;  // protocol corruption == dead worker
        }
        run.last_frame = std::chrono::steady_clock::now();
        ++run.slice.frames;
        ++report.frames_received;
        c_frames_received.add();
        const std::string type = field_str(fields, "type");
        if (type == "finding") {
            FleetFinding finding;
            finding.cve = static_cast<std::size_t>(
                field_u64(fields, "cve"));
            finding.blob = static_cast<std::size_t>(
                field_u64(fields, "blob"));
            finding.ord = static_cast<std::size_t>(
                field_u64(fields, "ord"));
            finding.exe_name = field_str(fields, "exe");
            finding.matched_entry = field_u64(fields, "entry");
            finding.sim = static_cast<int>(field_u64(fields, "sim"));
            finding.steps = static_cast<int>(field_u64(fields, "steps"));
            run.findings.push_back(std::move(finding));
        } else if (type == "quar") {
            QuarantineEntry entry;
            entry.exe_name = field_str(fields, "exe");
            entry.code = static_cast<ErrorCode>(
                field_u64(fields, "code") % kErrorCodeCount);
            entry.message = field_str(fields, "msg");
            run.quars.push_back(std::move(entry));
        } else if (type == "health") {
            health_from_fields(fields, run.health);
            run.appended = static_cast<std::size_t>(
                field_u64(fields, "appended"));
            run.health_frame = true;
        } else if (type == "done") {
            run.done_frame = field_u64(fields, "ok") != 0;
        }
        // hello/heartbeat only refresh last_frame.
        return true;
    };

    bool failed = false;
    std::size_t active = 0;
    for (ShardRun &run : runs) {
        if (!spawn(run)) {
            failed = true;
            break;
        }
        ++active;
    }

    // Supervision loop: poll every live pipe, drain frames, respawn on
    // death (pipe EOF without a clean done+exit) or stall (no frame
    // past the heartbeat deadline).
    const auto retire = [&](ShardRun &run, bool killed) {
        const int status = wait_child(run.pid);
        close_fd(run.fd);
        run.fd = -1;
        const auto now = std::chrono::steady_clock::now();
        run.slice.seconds += seconds_between(run.spawned_at, now);
        if (!killed && run.done_frame && run.health_frame &&
            exited_cleanly(status)) {
            run.committed = true;
            run.health.quarantine_log = run.quars;
            if (run.health.quarantine_log.size() >
                ScanHealth::kMaxQuarantineLog) {
                run.health.quarantine_log.resize(
                    ScanHealth::kMaxQuarantineLog);
            }
            run.slice.findings = run.findings.size();
            run.slice.searched = run.appended;
            run.slice.replayed = run.health.resumed_targets;
            --active;
            if (!options.quiet) {
                std::fprintf(stderr,
                             "shard-scan: shard %zu done (%zu finding(s), "
                             "%zu searched, %zu replayed)\n",
                             run.shard, run.findings.size(), run.appended,
                             run.health.resumed_targets);
            }
            return;
        }
        // Death or stall: discard this attempt's partial results and
        // reassign the shard to a fresh worker resuming its journal.
        ++run.slice.respawns;
        ++report.reassignments;
        c_reassignments.add();
        if (!options.quiet) {
            std::fprintf(stderr,
                         "shard-scan: shard %zu worker %s (%s) — %s\n",
                         run.shard, killed ? "stalled" : "died",
                         describe_status(status).c_str(),
                         run.attempt <= options.max_respawns
                             ? "reassigning"
                             : "giving up");
        }
        if (run.attempt > options.max_respawns) {
            report.error = strprintf(
                "shard %zu failed %d time(s) — last worker %s", run.shard,
                run.attempt, describe_status(status).c_str());
            failed = true;
            --active;
            return;
        }
        if (!spawn(run)) {
            failed = true;
            --active;
        }
    };

    while (active > 0 && !failed) {
        std::vector<pollfd> fds;
        std::vector<ShardRun *> owners;
        for (ShardRun &run : runs) {
            if (!run.committed && run.fd >= 0) {
                fds.push_back({run.fd, POLLIN, 0});
                owners.push_back(&run);
            }
        }
        if (fds.empty()) {
            break;
        }
        ::poll(fds.data(), static_cast<nfds_t>(fds.size()), 100);
        for (std::size_t i = 0; i < fds.size() && !failed; ++i) {
            ShardRun &run = *owners[i];
            if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) {
                continue;
            }
            const int fed = run.reader.feed(run.fd);
            std::string payload;
            bool protocol_ok = true;
            while (run.reader.next(&payload)) {
                if (!dispatch_frame(run, payload)) {
                    protocol_ok = false;
                    break;
                }
            }
            if (!protocol_ok || run.reader.corrupt()) {
                kill_child(run.pid);
                retire(run, /*killed=*/true);
                continue;
            }
            if (fed < 0) {
                retire(run, /*killed=*/false);
            }
        }
        const auto now = std::chrono::steady_clock::now();
        for (ShardRun &run : runs) {
            if (failed || run.committed || run.fd < 0) {
                continue;
            }
            if (seconds_between(run.last_frame, now) >
                options.heartbeat_seconds) {
                kill_child(run.pid);
                retire(run, /*killed=*/true);
            }
        }
    }
    if (failed) {
        for (ShardRun &run : runs) {
            if (run.fd >= 0 && !run.committed) {
                kill_child(run.pid);
                wait_child(run.pid);
                close_fd(run.fd);
                run.fd = -1;
            }
        }
        cleanup_ephemeral();
        return report;
    }

    // Deterministic merge: health in shard order, findings re-sorted
    // into the global (cve, blob, executable) order — exactly the order
    // a 1-worker fleet (or plain `firmup search`) reports in.
    for (const ShardRun &run : runs) {
        report.health.merge(run.health);
        report.shards.push_back(run.slice);
        report.targets_searched += run.appended;
        report.incremental_skips += run.health.resumed_targets;
        c_incremental_skips.add(run.health.resumed_targets);
        report.findings.insert(report.findings.end(),
                               run.findings.begin(), run.findings.end());
    }
    std::sort(report.findings.begin(), report.findings.end(),
              [](const FleetFinding &a, const FleetFinding &b) {
                  if (a.cve != b.cve) {
                      return a.cve < b.cve;
                  }
                  if (a.blob != b.blob) {
                      return a.blob < b.blob;
                  }
                  return a.ord < b.ord;
              });

    // Rebuild the state manifest as the key-sorted last-wins union of
    // every shard journal: shard-count-independent by construction, and
    // published atomically (tmp + rename) so a crash mid-rebuild leaves
    // the previous state intact.
    std::map<std::pair<std::uint64_t, std::uint64_t>, JournalEntry>
        merged_state;
    for (const ShardRun &run : runs) {
        auto bytes = read_file_bytes(journal_path_of(run));
        if (!bytes.ok()) {
            continue;
        }
        auto load = ScanJournal::parse(bytes.value().data(),
                                       bytes.value().size(), fp);
        if (!load.ok()) {
            continue;
        }
        for (JournalEntry &entry : load.value().entries) {
            merged_state.insert_or_assign(
                {entry.content_key, entry.query_fp}, std::move(entry));
        }
    }
    const std::string state_tmp = state_path + ".tmp";
    auto rebuilt = ScanJournal::create(state_tmp, fp);
    if (rebuilt.ok()) {
        {
            ScanJournal journal = std::move(rebuilt).take();
            for (const auto &[key, entry] : merged_state) {
                journal.append(entry);
            }
            journal.flush();
        }
        std::filesystem::rename(state_tmp, state_path, ec);
        if (ec && !options.quiet) {
            std::fprintf(stderr, "shard-scan: cannot publish %s: %s\n",
                         state_path.c_str(), ec.message().c_str());
        }
    }

    cleanup_ephemeral();
    report.wall_seconds =
        seconds_between(fleet_start, std::chrono::steady_clock::now());
    report.ok = true;
    return report;
}

}  // namespace firmup::eval
