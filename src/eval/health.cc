#include "eval/health.h"

#include <algorithm>
#include <numeric>

#include "support/str.h"

namespace firmup::eval {

void
ScanHealth::note_error(ErrorCode code)
{
    ++errors[static_cast<std::size_t>(code)];
}

void
ScanHealth::note_unpack(const firmware::UnpackResult &unpacked)
{
    ++images_seen;
    members_damaged +=
        static_cast<std::size_t>(unpacked.damaged_members);
    for (std::size_t c = 0; c < kErrorCodeCount; ++c) {
        errors[c] += static_cast<std::size_t>(unpacked.damage[c]);
    }
}

void
ScanHealth::note_unpack_failure(ErrorCode code)
{
    ++images_seen;
    ++images_rejected;
    note_error(code);
}

void
ScanHealth::note_quarantine(const std::string &exe_name, ErrorCode code,
                            const std::string &message)
{
    ++quarantined;
    note_error(code);
    if (quarantine_log.size() < kMaxQuarantineLog) {
        quarantine_log.push_back({exe_name, code, message});
    }
}

void
ScanHealth::merge(const ScanHealth &other)
{
    images_seen += other.images_seen;
    images_rejected += other.images_rejected;
    members_damaged += other.members_damaged;
    executables_seen += other.executables_seen;
    lifted_ok += other.lifted_ok;
    quarantined += other.quarantined;
    games_played += other.games_played;
    games_unresolved += other.games_unresolved;
    cancelled = cancelled || other.cancelled;
    targets_cancelled += other.targets_cancelled;
    resumed_targets += other.resumed_targets;
    retries += other.retries;
    watchdog_expired += other.watchdog_expired;
    journal_truncated_bytes += other.journal_truncated_bytes;
    cache_hits += other.cache_hits;
    cache_misses += other.cache_misses;
    cache_write_bytes += other.cache_write_bytes;
    cache_load_seconds += other.cache_load_seconds;
    cache_open_seconds += other.cache_open_seconds;
    cache_checksum_seconds += other.cache_checksum_seconds;
    cache_parse_seconds += other.cache_parse_seconds;
    cache_mmap_loads += other.cache_mmap_loads;
    resident_hits += other.resident_hits;
    resident_misses += other.resident_misses;
    resident_evictions += other.resident_evictions;
    query_cache_hits += other.query_cache_hits;
    query_cache_misses += other.query_cache_misses;
    canon_memo_hits += other.canon_memo_hits;
    canon_memo_misses += other.canon_memo_misses;
    retrieval_probes_exact += other.retrieval_probes_exact;
    retrieval_candidates_exact += other.retrieval_candidates_exact;
    retrieval_probes_lsh += other.retrieval_probes_lsh;
    retrieval_candidates_lsh += other.retrieval_candidates_lsh;
    retrieval_lsh_exact_work += other.retrieval_lsh_exact_work;
    sketch_seconds += other.sketch_seconds;
    resume_rejected = resume_rejected || other.resume_rejected;
    if (resume_reject_reason.empty()) {
        resume_reject_reason = other.resume_reject_reason;
    }
    index_seconds += other.index_seconds;
    index_cpu_seconds += other.index_cpu_seconds;
    game_seconds += other.game_seconds;
    game_cpu_seconds += other.game_cpu_seconds;
    confirm_seconds += other.confirm_seconds;
    confirm_cpu_seconds += other.confirm_cpu_seconds;
    match_wall_seconds += other.match_wall_seconds;
    for (std::size_t c = 0; c < kErrorCodeCount; ++c) {
        errors[c] += other.errors[c];
    }
    for (const QuarantineEntry &entry : other.quarantine_log) {
        if (quarantine_log.size() >= kMaxQuarantineLog) {
            break;
        }
        quarantine_log.push_back(entry);
    }
}

bool
ScanHealth::sane() const
{
    if (lifted_ok + quarantined != executables_seen) {
        return false;
    }
    if (images_rejected > images_seen) {
        return false;
    }
    if (games_unresolved > games_played) {
        return false;
    }
    // The watchdog is one cause of an unresolved game, never more.
    if (watchdog_expired > games_unresolved) {
        return false;
    }
    // Cancelled targets exist only on a cancelled scan.
    if (targets_cancelled > 0 && !cancelled) {
        return false;
    }
    // A cache hit is a healthy executable served from disk, so it is
    // counted in lifted_ok (the scan's coverage is the same either way).
    // Resident hits are likewise healthy executables (served from the
    // in-process cache); the two tiers are disjoint per executable.
    if (cache_hits > lifted_ok || resident_hits > lifted_ok) {
        return false;
    }
    if (quarantine_log.size() >
        std::min(quarantined, kMaxQuarantineLog)) {
        return false;
    }
    const std::size_t histogram_total =
        std::accumulate(errors.begin(), errors.end(), std::size_t{0});
    // Every rejection, damaged member and quarantine left a histogram
    // mark (unresolved games are counted by the caller, so >=).
    return histogram_total >=
           images_rejected + members_damaged + quarantined;
}

std::string
ScanHealth::summary() const
{
    std::string out = strprintf(
        "scan health: %zu/%zu image(s) unpacked, %zu damaged member(s); "
        "%zu executable(s): %zu lifted, %zu quarantined; "
        "%zu unresolved game(s)",
        images_seen - images_rejected, images_seen, members_damaged,
        executables_seen, lifted_ok, quarantined, games_unresolved);
    if (cancelled) {
        out += strprintf("; CANCELLED (%zu target(s) not scanned)",
                         targets_cancelled);
    }
    if (resumed_targets > 0) {
        out += strprintf("; %zu target(s) resumed from journal",
                         resumed_targets);
    }
    if (journal_truncated_bytes > 0) {
        out += strprintf("; journal tail truncated (%llu byte(s))",
                         static_cast<unsigned long long>(
                             journal_truncated_bytes));
    }
    if (retries > 0) {
        out += strprintf("; %zu transient retry(ies)", retries);
    }
    if (watchdog_expired > 0) {
        out += strprintf("; %zu watchdog-expired game(s)",
                         watchdog_expired);
    }
    if (cache_hits + cache_misses > 0) {
        out += strprintf(
            "; index cache %zu/%zu warm (%.1f%%)", cache_hits,
            cache_hits + cache_misses,
            static_cast<double>(cache_hits) /
                static_cast<double>(cache_hits + cache_misses) * 100.0);
    }
    if (resident_hits + resident_misses > 0) {
        out += strprintf("; resident cache %zu/%zu hot", resident_hits,
                         resident_hits + resident_misses);
        if (resident_evictions > 0) {
            out += strprintf(" (%zu evicted)", resident_evictions);
        }
    }
    if (query_cache_hits + query_cache_misses > 0) {
        out += strprintf("; query recipes %zu/%zu warm",
                         query_cache_hits,
                         query_cache_hits + query_cache_misses);
    }
    if (canon_memo_hits + canon_memo_misses > 0) {
        out += strprintf(
            "; canon memo %llu/%llu block(s) reused (%.1f%%)",
            static_cast<unsigned long long>(canon_memo_hits),
            static_cast<unsigned long long>(canon_memo_hits +
                                            canon_memo_misses),
            static_cast<double>(canon_memo_hits) /
                static_cast<double>(canon_memo_hits + canon_memo_misses) *
                100.0);
    }
    if (retrieval_candidates_lsh > 0) {
        // The reduction an LSH probe bought: exact-equivalent posting
        // incidences over the candidates actually scored (>1 = the
        // prefilter avoided work; ~1 = the bands let everything through).
        const double reduction =
            static_cast<double>(retrieval_lsh_exact_work) /
            static_cast<double>(retrieval_candidates_lsh);
        out += strprintf(
            "; lsh retrieval %llu probe(s), %llu candidate(s), "
            "%.1fx candidate reduction",
            static_cast<unsigned long long>(retrieval_probes_lsh),
            static_cast<unsigned long long>(retrieval_candidates_lsh),
            reduction);
    }
    if (resume_rejected) {
        out += "; RESUME REJECTED (journal fingerprint mismatch)";
    }
    if (index_seconds + game_seconds + confirm_seconds > 0.0) {
        // Wall is elapsed for index, summed-per-outcome for games and
        // confirm (busy time across workers on a parallel scan); the
        // full wall/CPU breakdown is the render_health stage table.
        out += strprintf("; stages: index %.3fs wall, games %.3fs busy, "
                         "confirm %.3fs busy",
                         index_seconds, game_seconds, confirm_seconds);
    }
    bool first = true;
    for (std::size_t c = 0; c < kErrorCodeCount; ++c) {
        if (errors[c] == 0) {
            continue;
        }
        out += first ? " [" : ", ";
        first = false;
        out += strprintf("%s=%zu",
                         error_code_name(static_cast<ErrorCode>(c)),
                         errors[c]);
    }
    if (!first) {
        out += "]";
    }
    return out;
}

}  // namespace firmup::eval
