#include "eval/driver.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <set>
#include <thread>

#include "baseline/gitz_like.h"
#include "codegen/build.h"
#include "support/error.h"
#include "support/hash.h"
#include "support/retry.h"
#include "support/str.h"
#include "support/threadpool.h"
#include "support/trace.h"

namespace firmup::eval {

Driver::Driver(SearchOptions options) : options_(std::move(options)) {}

std::string
latest_vulnerable_version(const firmware::CveRecord &cve)
{
    const firmware::PackageSpec &pkg =
        firmware::package_by_name(cve.package);
    std::string newest;
    for (const std::string &version : pkg.versions) {
        if (cve.affects(pkg, version)) {
            newest = version;  // versions are ordered oldest first
        }
    }
    FIRMUP_ASSERT(!newest.empty(),
                  cve.cve_id + ": no vulnerable version in catalog");
    return newest;
}

namespace {

/**
 * Store key for a query's finalized index: a digest of everything the
 * index is a function of — the rendered package source (name, version,
 * globals, every procedure body), the whole build request (arch,
 * toolchain profile knobs, feature/strip/link settings) and the canon
 * knobs. Queries are compiled from source, so they have no content
 * bytes to address until codegen has run — which is exactly the cost a
 * warm hunt wants to skip; hashing the build recipe instead lets the
 * store serve the index before any compilation happens. The "fwq1:"
 * domain prefix keeps recipe keys disjoint from content keys in the
 * shared store namespace; bump it whenever codegen, the lifter or
 * canonicalization change the index a given recipe produces (source
 * and knob changes re-key automatically).
 */
std::uint64_t
query_recipe_key(const lang::PackageSource &source,
                 const codegen::BuildRequest &request,
                 const strand::CanonOptions &canon)
{
    std::uint64_t key =
        fnv1a64("fwq1:" + source.name + ":" + source.version);
    for (const lang::GlobalVar &global : source.globals) {
        key = hash_combine(key, fnv1a64(global.name));
        key = hash_combine(key, static_cast<std::uint64_t>(global.words));
    }
    for (const lang::ProcedureAst &proc : source.procedures) {
        key = hash_combine(key, fnv1a64(lang::to_string(proc)));
    }
    key = hash_combine(key, fnv1a64(isa::arch_name(request.arch)));
    const compiler::ToolchainProfile &profile = request.profile;
    key = hash_combine(key, fnv1a64(profile.name));
    key = hash_combine(key, static_cast<std::uint64_t>(profile.opt_level));
    key = hash_combine(
        key, static_cast<std::uint64_t>(profile.inline_threshold));
    key = hash_combine(
        key, static_cast<std::uint64_t>(profile.extra_frame_pad));
    std::uint64_t bits = 0;
    for (const bool flag :
         {profile.use_cse, profile.strength_reduce,
          profile.swap_commutative, profile.rotate_loops,
          profile.locals_descending, profile.callee_saved_first,
          profile.mips_fill_delay_slot, profile.mips_pic_calls,
          profile.materialize_full_const, profile.reverse_block_layout,
          request.all_features, request.strip, request.keep_exported,
          canon.eliminate_offsets, canon.optimize,
          canon.normalize_names, canon.stream_hash}) {
        bits = (bits << 1) | (flag ? 1 : 0);
    }
    key = hash_combine(key, bits);
    for (const std::string &feature : request.enabled_features) {
        key = hash_combine(key, fnv1a64(feature));
    }
    key = hash_combine(key, fnv1a64(request.exe_name));
    key = hash_combine(
        key, static_cast<std::uint64_t>(request.link.text_base));
    key = hash_combine(
        key, static_cast<std::uint64_t>(request.link.data_base));
    return key;
}

}  // namespace

std::uint64_t
content_key(const loader::Executable &exe)
{
    // content_hash64 over the text bytes, not fnv1a64: the key is
    // recomputed for every target on every scan, so on a fully-resident
    // pass this hash IS the index stage — see BM_* and the
    // resident_cache bench entry.
    return hash_combine(
        fnv1a64(exe.name),
        content_hash64(std::string_view(
            reinterpret_cast<const char *>(exe.text.data()),
            exe.text.size())));
}

namespace {

// Persistent index-cache accounting; mirrored into ScanHealth so scans
// without --stats-json still surface the hit rate.
const trace::Counter c_cache_hits("cache.hits");
const trace::Counter c_cache_misses("cache.misses");
const trace::Counter c_cache_write_bytes("cache.write_bytes");
const trace::Counter c_cache_load_micros("cache.load_micros");
const trace::Counter c_cache_mmap_loads("cache.mmap_loads");

// Resident in-process cache lane: hits never touch the store, so they
// are deliberately not cache.hits — the CI resident smoke asserts
// cache.hits + cache.misses == resident.misses across passes.
const trace::Counter c_resident_hits("resident.hits");
const trace::Counter c_resident_misses("resident.misses");
const trace::Counter c_resident_evictions("resident.evictions");

// Query-recipe lane (build_query_impl hunt path): kept apart from the
// target-index counters so cache.hits still equals executables served
// from disk.
const trace::Counter c_query_cache_hits("cache.query_hits");
const trace::Counter c_query_cache_misses("cache.query_misses");

// Crash-safety accounting. scan.outcomes fires for replayed targets
// too, so a resumed scan and a clean one-shot report the same value —
// the CI interrupt/resume smoke compares exactly that.
const trace::Counter c_scan_outcomes("scan.outcomes");
const trace::Counter c_resumed_targets("journal.resumed_targets");
const trace::Counter c_cancelled_targets("scan.cancelled_targets");
const trace::Counter c_retries("scan.retries");
const trace::Counter c_watchdog_expired("scan.watchdog_expired");

std::uint64_t
knob_bits(double v)
{
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    return bits;
}

/**
 * Lift an untrusted executable, downgrading degenerate successes: a
 * non-empty text section from which not a single procedure could be
 * recovered is a lift bail-out, not a usable (empty) index.
 */
Result<lifter::LiftedExecutable>
lift_untrusted(const loader::Executable &exe)
{
    auto lifted = lifter::lift_executable(exe);
    if (lifted.ok() && lifted.value().procs.empty() &&
        !exe.text.empty()) {
        return Result<lifter::LiftedExecutable>::error(
            ErrorCode::LiftBailout,
            "no liftable procedure in " +
                std::to_string(exe.text.size()) + " text bytes");
    }
    return lifted;
}

double
seconds_since(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

/** Thread-CPU delta in seconds since @p start_ns. */
double
cpu_seconds_since(std::uint64_t start_ns)
{
    return static_cast<double>(trace::thread_cpu_ns() - start_ns) * 1e-9;
}

/** Fold one store load's stage split into the scan health record. */
void
fold_load_split(ScanHealth &health,
                const sim::IndexCacheStore::LoadStats &stats)
{
    health.cache_open_seconds += stats.open_seconds;
    health.cache_checksum_seconds += stats.checksum_seconds;
    health.cache_parse_seconds += stats.parse_seconds;
    if (stats.mapped) {
        ++health.cache_mmap_loads;
        c_cache_mmap_loads.add();
    }
}

/**
 * Publish a retrieval-ready index to the process resident cache (no-op
 * without one). Returns the evictions this put caused, so the calling
 * scan — not some later reader — is charged for them.
 */
std::size_t
resident_publish(sim::ResidentIndexCache *resident, std::uint64_t key,
                 std::shared_ptr<const sim::ExecutableIndex> index)
{
    if (resident == nullptr) {
        return 0;
    }
    const std::size_t before = resident->stats().evictions;
    resident->put(key, std::move(index));
    const std::size_t evicted = resident->stats().evictions - before;
    if (evicted > 0) {
        c_resident_evictions.add(evicted);
    }
    return evicted;
}

}  // namespace

Query
Driver::build_query(const firmware::CveRecord &cve, isa::Arch arch)
{
    Query query = build_query_impl(cve.package, cve.procedure,
                                   latest_vulnerable_version(cve), arch,
                                   /*hunt=*/false);
    query.label = cve.cve_id;
    return query;
}

Query
Driver::build_query(const std::string &package,
                    const std::string &procedure,
                    const std::string &version, isa::Arch arch)
{
    return build_query_impl(package, procedure, version, arch,
                            /*hunt=*/false);
}

Query
Driver::build_query_impl(const std::string &package,
                         const std::string &procedure,
                         const std::string &version, isa::Arch arch,
                         bool hunt)
{
    const firmware::PackageSpec &pkg = firmware::package_by_name(package);
    const lang::PackageSource source =
        firmware::generate_package_source(pkg, version);

    // Section 5.1: queries are compiled from source with the reference
    // toolchain at its default optimization level, all features on
    // (the researcher's build is a default build).
    codegen::BuildRequest request;
    request.arch = arch;
    request.profile = compiler::gcc_like_toolchain();
    request.exe_name = package + "-query";

    Query query;
    query.label = package + "/" + procedure;
    query.package = package;
    query.procedure = procedure;
    query.version = version;

    // Hunt fast lane: a warm store serves the finalized query index
    // under its recipe key, skipping compile + lift + canonicalize —
    // the FWIX round-trip is bit-faithful (hashes, postings, block
    // summaries), so outcomes are identical to a fresh build. The
    // baseline graph is intentionally not rebuilt here: the hunt path
    // never reads it, and building it would need the lifted executable
    // this lane exists to avoid.
    sim::IndexCacheStore *const store = hunt ? cache_store() : nullptr;
    const std::uint64_t recipe =
        store != nullptr
            ? query_recipe_key(source, request, options_.canon)
            : 0;
    if (store != nullptr) {
        sim::IndexCacheStore::LoadStats load_stats;
        const auto load_start = std::chrono::steady_clock::now();
        auto loaded = store->load(recipe, options_.mmap_index, &load_stats);
        const double load_seconds = seconds_since(load_start);
        health_.cache_load_seconds += load_seconds;
        fold_load_split(health_, load_stats);
        c_cache_load_micros.add(
            static_cast<std::uint64_t>(load_seconds * 1e6));
        if (loaded.ok()) {
            ++health_.query_cache_hits;
            c_query_cache_hits.add();
            query.index = std::move(loaded).take();
            prepare_retrieval(query.index);
            sync_retrieval_health();
            query.qv = query.index.find_by_name(procedure);
            FIRMUP_ASSERT(query.qv >= 0,
                          "query procedure missing: " + procedure);
            return query;
        }
        ++health_.query_cache_misses;
        c_query_cache_misses.add();
    }

    const loader::Executable exe =
        codegen::build_executable(source, request);

    auto lifted = lifter::lift_executable(exe);
    FIRMUP_ASSERT(lifted.ok(), "query lift failed: " +
                                   lifted.error_message());

    query.index = sim::index_executable(lifted.value(), canon_options());
    sync_memo_health();
    prepare_retrieval(query.index);
    sync_retrieval_health();
    query.qv = query.index.find_by_name(procedure);
    FIRMUP_ASSERT(query.qv >= 0,
                  "query procedure missing: " + procedure);
    query.graph = baseline::graph_index(lifted.value());
    if (store != nullptr) {
        if (auto written = store->store(recipe, query.index);
            written.ok()) {
            health_.cache_write_bytes += written.value();
            c_cache_write_bytes.add(written.value());
        }
    }
    return query;
}

unsigned
resolve_worker_threads(unsigned threads)
{
    if (threads != 0) {
        return threads;
    }
    // FIRMUP_THREADS overrides hardware concurrency for threads == 0;
    // the determinism tests use it to pin the worker count externally.
    if (const char *env = std::getenv("FIRMUP_THREADS")) {
        const long parsed = std::strtol(env, nullptr, 10);
        if (parsed > 0) {
            return static_cast<unsigned>(parsed);
        }
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw != 0 ? hw : 1;
}

strand::CanonOptions
Driver::canon_options()
{
    strand::CanonOptions canon = options_.canon;
    canon.memo = options_.canon_memo ? &canon_memo_ : nullptr;
    return canon;
}

void
Driver::sync_memo_health()
{
    const strand::CanonMemo::Stats now = canon_memo_.stats();
    health_.canon_memo_hits += now.hits - memo_seen_.hits;
    health_.canon_memo_misses += now.misses - memo_seen_.misses;
    memo_seen_ = now;
}

void
Driver::sync_retrieval_health()
{
    const sim::RetrievalCounters now = sim::retrieval_counters();
    health_.retrieval_probes_exact +=
        now.probes_exact - retrieval_seen_.probes_exact;
    health_.retrieval_candidates_exact +=
        now.candidates_exact - retrieval_seen_.candidates_exact;
    health_.retrieval_probes_lsh +=
        now.probes_lsh - retrieval_seen_.probes_lsh;
    health_.retrieval_candidates_lsh +=
        now.candidates_lsh - retrieval_seen_.candidates_lsh;
    health_.retrieval_lsh_exact_work +=
        now.lsh_exact_work - retrieval_seen_.lsh_exact_work;
    health_.sketch_seconds +=
        static_cast<double>(now.sketch_micros -
                            retrieval_seen_.sketch_micros) *
        1e-6;
    retrieval_seen_ = now;
}

void
Driver::prepare_retrieval(sim::ExecutableIndex &index)
{
    if (options_.retrieval != sim::RetrievalMode::Lsh) {
        return;
    }
    index.build_lsh(options_.lsh_bands, options_.lsh_rows);
}

sim::IndexCacheStore *
Driver::cache_store()
{
    if (!store_opened_) {
        store_opened_ = true;
        if (!options_.index_cache_dir.empty()) {
            store_ = std::make_unique<sim::IndexCacheStore>(
                options_.index_cache_dir);
        }
    }
    return store_.get();
}

void
Driver::note_healthy(std::uint64_t key)
{
    if (health_counted_.insert(key).second) {
        ++health_.executables_seen;
        ++health_.lifted_ok;
    }
}

const lifter::LiftedExecutable *
Driver::lift_cached(const loader::Executable &exe)
{
    const std::uint64_t key = content_key(exe);
    auto it = lift_cache_.find(key);
    if (it != lift_cache_.end()) {
        return &it->second;
    }
    if (quarantined_.contains(key)) {
        return nullptr;
    }
    auto lifted = lift_untrusted(exe);
    if (!lifted.ok()) {
        if (health_counted_.insert(key).second) {
            ++health_.executables_seen;
        }
        quarantined_.insert(key);
        health_.note_quarantine(exe.name, lifted.error_code(),
                                lifted.error_message());
        return nullptr;
    }
    note_healthy(key);
    return &lift_cache_.emplace(key, std::move(lifted).take())
                .first->second;
}

const sim::ExecutableIndex *
Driver::index_target(const loader::Executable &exe)
{
    const std::uint64_t key = content_key(exe);
    auto it = index_cache_.find(key);
    if (it != index_cache_.end()) {
        // Entries cached by index_many may predate the LSH table (its
        // workers build indexes, the merge loop prepares them); build_lsh
        // is a no-op when the table already has the requested shape.
        // Every pointer in this cache originates from a non-const
        // make_shared, so the cast-back is defined.
        prepare_retrieval(
            *std::const_pointer_cast<sim::ExecutableIndex>(it->second));
        return it->second.get();
    }
    if (quarantined_.contains(key)) {
        return nullptr;
    }
    // Hot path: the index is still resident in this process from an
    // earlier scan — no store I/O, no checksum, no parse. Counted as a
    // resident hit, deliberately not a cache hit (the store was never
    // touched).
    if (sim::ResidentIndexCache *resident = options_.resident_cache) {
        if (auto hot = resident->get(key)) {
            ++health_.resident_hits;
            c_resident_hits.add();
            note_healthy(key);
            prepare_retrieval(
                *std::const_pointer_cast<sim::ExecutableIndex>(hot));
            sync_retrieval_health();
            return index_cache_.emplace(key, std::move(hot))
                .first->second.get();
        }
        ++health_.resident_misses;
        c_resident_misses.add();
    }
    // Warm path: a persisted, already-finalized index skips the whole
    // lift + canonicalize + finalize phase. Any load failure (absent,
    // corrupt, stale) is a miss; the cold path below re-lifts.
    if (sim::IndexCacheStore *store = cache_store()) {
        sim::IndexCacheStore::LoadStats load_stats;
        const auto load_start = std::chrono::steady_clock::now();
        auto loaded = store->load(key, options_.mmap_index, &load_stats);
        const double load_seconds = seconds_since(load_start);
        health_.cache_load_seconds += load_seconds;
        fold_load_split(health_, load_stats);
        c_cache_load_micros.add(
            static_cast<std::uint64_t>(load_seconds * 1e6));
        if (loaded.ok()) {
            ++health_.cache_hits;
            c_cache_hits.add();
            note_healthy(key);
            auto warm = std::make_shared<sim::ExecutableIndex>(
                std::move(loaded).take());
            prepare_retrieval(*warm);
            sync_retrieval_health();
            health_.resident_evictions +=
                resident_publish(options_.resident_cache, key, warm);
            return index_cache_.emplace(key, std::move(warm))
                .first->second.get();
        }
        ++health_.cache_misses;
        c_cache_misses.add();
    }
    const lifter::LiftedExecutable *lifted = lift_cached(exe);
    if (lifted == nullptr) {
        return nullptr;
    }
    auto index = std::make_shared<sim::ExecutableIndex>(
        sim::index_executable(*lifted, canon_options(),
                              resolve_worker_threads(0)));
    sync_memo_health();
    prepare_retrieval(*index);
    sync_retrieval_health();
    if (sim::IndexCacheStore *store = cache_store()) {
        if (auto written = store->store(key, *index); written.ok()) {
            health_.cache_write_bytes += written.value();
            c_cache_write_bytes.add(written.value());
        }
    }
    health_.resident_evictions +=
        resident_publish(options_.resident_cache, key, index);
    return index_cache_.emplace(key, std::move(index))
        .first->second.get();
}

const baseline::GraphIndex *
Driver::graph_target(const loader::Executable &exe)
{
    const lifter::LiftedExecutable *lifted = lift_cached(exe);
    if (lifted == nullptr) {
        return nullptr;
    }
    const std::uint64_t key = content_key(exe);
    auto it = graph_cache_.find(key);
    if (it == graph_cache_.end()) {
        it = graph_cache_.emplace(key, baseline::graph_index(*lifted))
                 .first;
    }
    return &it->second;
}

std::vector<CorpusTarget>
corpus_targets(const firmware::Corpus &corpus)
{
    std::vector<CorpusTarget> targets;
    for (std::size_t i = 0; i < corpus.images.size(); ++i) {
        for (const loader::Executable &exe :
             corpus.images[i].executables) {
            targets.push_back({&exe, static_cast<int>(i)});
        }
    }
    return targets;
}

std::vector<const loader::Executable *>
Driver::unseen_executables(const std::vector<CorpusTarget> &targets) const
{
    std::vector<const loader::Executable *> work;
    std::set<std::uint64_t> seen;
    for (const CorpusTarget &target : targets) {
        const std::uint64_t key = content_key(*target.exe);
        if (seen.insert(key).second && !index_cache_.contains(key) &&
            !quarantined_.contains(key)) {
            work.push_back(target.exe);
        }
    }
    return work;
}

std::size_t
Driver::preindex(const firmware::Corpus &corpus, unsigned threads)
{
    return index_many(unseen_executables(corpus_targets(corpus)),
                      threads);
}

std::size_t
Driver::index_many(const std::vector<const loader::Executable *> &work,
                   unsigned threads)
{
    const auto start = std::chrono::steady_clock::now();
    const std::uint64_t cpu_start = trace::process_cpu_ns();
    // Warm-load / lift + index in parallel with no shared state, merge
    // at the end. Failures stay in their slot; only the merge loop
    // (single-threaded) touches caches, quarantine and health. Workers
    // may touch the persistent store: loads read distinct files, write-
    // backs publish distinct content-keyed entries via atomic rename.
    struct Slot
    {
        bool attempted = false;   ///< false = skipped by cancellation
        bool ok = false;
        bool from_resident = false;  ///< index still hot in-process
        bool resident_miss = false;  ///< resident cache consulted, missed
        bool from_cache = false;  ///< index loaded, lift skipped
        bool cache_miss = false;  ///< store consulted and missed
        ErrorCode code = ErrorCode::Unknown;
        std::string message;
        lifter::LiftedExecutable lifted;
        sim::ExecutableIndex index;
        std::shared_ptr<const sim::ExecutableIndex> resident;
        sim::IndexCacheStore::LoadStats load_stats;
        std::uint64_t write_bytes = 0;
        double load_seconds = 0.0;
        int retries = 0;          ///< transient lift retries consumed
    };
    std::vector<Slot> slots(work.size());
    // keys[i] is written only by worker i (content hashing is O(text
    // bytes), so it belongs in the fan-out, not a serial prologue) and
    // read by the merge loop after the join — never concurrently.
    std::vector<std::uint64_t> keys(work.size());
    // Workers share the driver's thread-safe canon memo through the
    // options copy; each indexes its own executable serially (the
    // parallelism is across executables here).
    const strand::CanonOptions canon = canon_options();
    sim::IndexCacheStore *const store = cache_store();
    sim::ResidentIndexCache *const resident = options_.resident_cache;
    const bool use_mmap = options_.mmap_index;
    const CancelToken *const cancel = options_.cancel;
    const RetryPolicy retry_policy{options_.max_target_retries,
                                   options_.retry_backoff_seconds};
    ThreadPool::parallel_for(
        resolve_worker_threads(threads), work.size(), [&](std::size_t i) {
            // Cancellation point: an unattempted slot leaves no trace —
            // no health accounting, no quarantine — so a resume retries
            // it from scratch exactly like a never-seen target.
            if (cancel != nullptr && cancel->requested()) {
                return;
            }
            slots[i].attempted = true;
            keys[i] = content_key(*work[i]);
            // Resident tier first: a hot index costs one hash lookup —
            // no store I/O, no checksum, no parse. The cache is
            // mutex-guarded, so workers probe it concurrently.
            if (resident != nullptr) {
                if (auto hot = resident->get(keys[i])) {
                    slots[i].ok = true;
                    slots[i].from_resident = true;
                    slots[i].resident = std::move(hot);
                    return;
                }
                slots[i].resident_miss = true;
            }
            if (store != nullptr) {
                const auto load_start =
                    std::chrono::steady_clock::now();
                auto loaded = store->load(keys[i], use_mmap,
                                          &slots[i].load_stats);
                slots[i].load_seconds = seconds_since(load_start);
                if (loaded.ok()) {
                    slots[i].ok = true;
                    slots[i].from_cache = true;
                    slots[i].index = std::move(loaded).take();
                    return;
                }
                slots[i].cache_miss = true;
            }
            auto result = retry_transient(
                retry_policy, cancel,
                [&] { return lift_untrusted(*work[i]); },
                &slots[i].retries);
            if (!result.ok()) {
                slots[i].code = result.error_code();
                slots[i].message = result.error_message();
                return;
            }
            slots[i].ok = true;
            slots[i].lifted = std::move(result).take();
            slots[i].index =
                sim::index_executable(slots[i].lifted, canon);
            if (store != nullptr) {
                if (auto written = store->store(keys[i], slots[i].index);
                    written.ok()) {
                    slots[i].write_bytes = written.value();
                }
            }
        });
    std::size_t indexed = 0;
    for (std::size_t i = 0; i < work.size(); ++i) {
        const loader::Executable &exe = *work[i];
        const std::uint64_t key = keys[i];
        if (!slots[i].attempted) {
            continue;  // cancelled before the worker reached it
        }
        if (slots[i].retries > 0) {
            health_.retries += static_cast<std::size_t>(slots[i].retries);
            c_retries.add(static_cast<std::uint64_t>(slots[i].retries));
        }
        health_.cache_load_seconds += slots[i].load_seconds;
        fold_load_split(health_, slots[i].load_stats);
        if (store != nullptr && !slots[i].from_resident) {
            c_cache_load_micros.add(static_cast<std::uint64_t>(
                slots[i].load_seconds * 1e6));
        }
        if (slots[i].resident_miss) {
            ++health_.resident_misses;
            c_resident_misses.add();
        }
        if (slots[i].from_resident) {
            ++health_.resident_hits;
            c_resident_hits.add();
        } else if (slots[i].from_cache) {
            ++health_.cache_hits;
            c_cache_hits.add();
        } else if (slots[i].cache_miss) {
            ++health_.cache_misses;
            c_cache_misses.add();
        }
        if (slots[i].write_bytes != 0) {
            health_.cache_write_bytes += slots[i].write_bytes;
            c_cache_write_bytes.add(slots[i].write_bytes);
        }
        if (!slots[i].ok) {
            if (health_counted_.insert(key).second) {
                ++health_.executables_seen;
            }
            const bool fresh = quarantined_.insert(key).second;
            health_.note_quarantine(exe.name, slots[i].code,
                                    slots[i].message);
            if (fresh) {
                // Journal the quarantine so a resume re-skips this
                // executable — reproducing the same ErrorCode histogram
                // entry — without re-lifting the poisoned bytes.
                JournalEntry entry;
                entry.content_key = key;
                entry.quarantined = true;
                entry.code = slots[i].code;
                entry.exe_name = exe.name;
                entry.message = slots[i].message;
                journal_append(entry);
            }
            continue;
        }
        note_healthy(key);
        ++indexed;
        if (slots[i].from_resident) {
            // The shared object was prepared by whoever published it;
            // build_lsh is a no-op when the table shape already matches
            // (see index_target). Cast-back is defined: every resident
            // pointer originates from a non-const make_shared below.
            prepare_retrieval(*std::const_pointer_cast<
                              sim::ExecutableIndex>(slots[i].resident));
            index_cache_.emplace(key, std::move(slots[i].resident));
            continue;
        }
        if (!slots[i].from_cache) {
            lift_cache_.emplace(key, std::move(slots[i].lifted));
        }
        auto index = std::make_shared<sim::ExecutableIndex>(
            std::move(slots[i].index));
        prepare_retrieval(*index);
        health_.resident_evictions +=
            resident_publish(resident, key, index);
        index_cache_.emplace(key, std::move(index));
    }
    sync_memo_health();
    sync_retrieval_health();
    health_.index_seconds += seconds_since(start);
    health_.index_cpu_seconds +=
        static_cast<double>(trace::process_cpu_ns() - cpu_start) * 1e-9;
    return indexed;
}

SearchOutcome
Driver::match_outcome(const Query &query,
                      const sim::ExecutableIndex &target) const
{
    SearchOutcome outcome;
    if (target.procs.empty()) {
        return outcome;
    }
    const auto start = std::chrono::steady_clock::now();
    const std::uint64_t cpu_start = trace::thread_cpu_ns();
    if (options_.use_game) {
        const game::GameResult result =
            game::match_query(query.index, query.qv, target,
                              options_.game);
        outcome.steps = result.steps;
        if (result.ending == game::GameEnding::Unresolved) {
            outcome.unresolved = true;
        }
        outcome.cancelled = result.cancelled;
        outcome.deadline_expired = result.deadline_expired;
        if (result.matched) {
            outcome.detected = true;
            outcome.matched_entry = result.target_entry;
            outcome.sim = result.sim;
        }
        outcome.game_seconds = seconds_since(start);
        outcome.game_cpu_seconds = cpu_seconds_since(cpu_start);
        return outcome;
    }
    // Ablation: procedure-centric top-1 (no executable context).
    const int top = baseline::gitz_top1(query.index, query.qv, target,
                                        nullptr);
    if (top >= 0) {
        const auto &proc = target.procs[static_cast<std::size_t>(top)];
        outcome.steps = 1;
        outcome.detected = true;
        outcome.matched_entry = proc.entry;
        outcome.sim = sim::sim_score(
            query.index.procs[static_cast<std::size_t>(query.qv)].repr,
            proc.repr);
    }
    outcome.game_seconds = seconds_since(start);
    outcome.game_cpu_seconds = cpu_seconds_since(cpu_start);
    return outcome;
}

void
Driver::note_outcome(const SearchOutcome &outcome)
{
    ++health_.games_played;
    c_scan_outcomes.add();
    if (outcome.unresolved) {
        ++health_.games_unresolved;
        health_.note_error(ErrorCode::BudgetExhausted);
    }
    if (outcome.deadline_expired) {
        ++health_.watchdog_expired;
        c_watchdog_expired.add();
    }
    if (outcome.retries > 0) {
        health_.retries += static_cast<std::size_t>(outcome.retries);
        c_retries.add(static_cast<std::uint64_t>(outcome.retries));
    }
    health_.game_seconds += outcome.game_seconds;
    health_.game_cpu_seconds += outcome.game_cpu_seconds;
    health_.confirm_seconds += outcome.confirm_seconds;
    health_.confirm_cpu_seconds += outcome.confirm_cpu_seconds;
}

SearchOutcome
Driver::match(const Query &query, const sim::ExecutableIndex &target)
{
    const SearchOutcome outcome = match_outcome(query, target);
    note_outcome(outcome);
    return outcome;
}

SearchOutcome
Driver::search_outcome(const Query &query,
                       const sim::ExecutableIndex &target) const
{
    SearchOutcome outcome = match_outcome(query, target);
    if (!outcome.detected) {
        return outcome;
    }
    const auto confirm_start = std::chrono::steady_clock::now();
    const std::uint64_t confirm_cpu_start = trace::thread_cpu_ns();
    const trace::TraceSpan span("confirm");
    const auto &q_repr =
        query.index.procs[static_cast<std::size_t>(query.qv)].repr;
    const auto q_strands = static_cast<double>(q_repr.hash_count());
    const int ratio_threshold = std::max(
        options_.min_confirm_sim,
        static_cast<int>(options_.min_confirm_ratio * q_strands));
    bool accept = outcome.sim >= ratio_threshold;
    if (!accept &&
        outcome.sim >= std::max(options_.min_confirm_sim,
                                static_cast<int>(
                                    options_.min_margin_ratio *
                                    q_strands))) {
        // Dominance fallback: compare against the runner-up. One query
        // against every procedure of the target is the query-amortized
        // kernel's shape — build the probe once, score each procedure
        // with a branchless filter pass instead of a pairwise merge.
        const sim::QueryProbe probe(q_repr);
        int second = 0;
        for (const sim::ProcEntry &proc : target.procs) {
            if (proc.entry == outcome.matched_entry) {
                continue;
            }
            second = std::max(second, probe.score(proc.repr));
        }
        accept = static_cast<double>(outcome.sim) >=
                 options_.margin_factor * static_cast<double>(second);
    }
    if (!accept) {
        outcome.detected = false;
        outcome.matched_entry = 0;
        outcome.sim = 0;
    }
    outcome.confirm_seconds = seconds_since(confirm_start);
    outcome.confirm_cpu_seconds = cpu_seconds_since(confirm_cpu_start);
    return outcome;
}

SearchOutcome
Driver::search(const Query &query, const sim::ExecutableIndex &target)
{
    const SearchOutcome outcome = search_outcome(query, target);
    note_outcome(outcome);
    return outcome;
}

std::map<isa::Arch, Query>
Driver::build_queries(const firmware::CveRecord &cve,
                      const std::vector<CorpusTarget> &targets,
                      unsigned threads)
{
    index_many(unseen_executables(targets), threads);
    // After indexing, index_target is a pure cache/quarantine lookup, so
    // this lazily builds exactly the query set of the serial scan loop.
    std::map<isa::Arch, Query> queries;
    for (const CorpusTarget &target : targets) {
        // Cancellation point: on a cache miss (e.g. targets index_many
        // skipped after cancellation) index_target cold-lifts serially,
        // so a shutting-down scan must not walk the rest of the corpus
        // here.
        if (options_.cancel != nullptr && options_.cancel->requested()) {
            break;
        }
        const sim::ExecutableIndex *index = index_target(*target.exe);
        if (index != nullptr && !queries.contains(index->arch)) {
            queries.emplace(index->arch, build_query(cve, index->arch));
        }
    }
    return queries;
}

std::map<isa::Arch, Query>
Driver::build_hunt_queries(const firmware::CveRecord &cve,
                           const std::vector<CorpusTarget> &targets,
                           unsigned threads)
{
    index_many(unseen_executables(targets), threads);
    std::map<isa::Arch, Query> queries;
    for (const CorpusTarget &target : targets) {
        if (options_.cancel != nullptr && options_.cancel->requested()) {
            break;
        }
        const sim::ExecutableIndex *index = index_target(*target.exe);
        if (index != nullptr && !queries.contains(index->arch)) {
            Query query = build_query_impl(
                cve.package, cve.procedure, latest_vulnerable_version(cve),
                index->arch, /*hunt=*/true);
            query.label = cve.cve_id;
            queries.emplace(index->arch, std::move(query));
        }
    }
    return queries;
}

std::uint64_t
scan_fingerprint(const SearchOptions &options, const std::string &label,
                 bool confirm)
{
    std::uint64_t fp = fnv1a64("fwsj-scan:" + label);
    fp = hash_combine(fp, confirm ? 1 : 2);
    fp = hash_combine(
        fp, static_cast<std::uint64_t>(options.min_confirm_sim));
    fp = hash_combine(fp, knob_bits(options.min_confirm_ratio));
    fp = hash_combine(fp, knob_bits(options.min_margin_ratio));
    fp = hash_combine(fp, knob_bits(options.margin_factor));
    fp = hash_combine(fp, options.use_game ? 1 : 2);
    fp = hash_combine(
        fp, static_cast<std::uint64_t>(options.game.max_steps));
    fp = hash_combine(
        fp, static_cast<std::uint64_t>(options.game.max_matches));
    fp = hash_combine(
        fp, static_cast<std::uint64_t>(options.game.min_sim));
    // Wall-clock knobs (game.max_seconds, the watchdog, the retry
    // policy) are deliberately excluded: they bound how long a scan may
    // take, not which answer a target deterministically produces.
    //
    // The retrieval knob changes which candidates games see, hence
    // which answers a scan produces — it must split the fingerprint.
    // Folded only in Lsh mode so every exact-mode journal written
    // before the knob existed still resumes.
    if (options.retrieval == sim::RetrievalMode::Lsh) {
        fp = hash_combine(fp, fnv1a64("retrieval:lsh"));
        fp = hash_combine(fp,
                          static_cast<std::uint64_t>(options.lsh_bands));
        fp = hash_combine(fp,
                          static_cast<std::uint64_t>(options.lsh_rows));
    }
    return fp != 0 ? fp : 1;  // 0 means "skip the check" in parse()
}

void
Driver::open_journal(const std::string &label, bool confirm)
{
    if (journal_opened_ || options_.journal_path.empty()) {
        return;
    }
    journal_opened_ = true;
    const std::uint64_t fp = scan_fingerprint(options_, label, confirm);
    if (options_.resume) {
        JournalLoad load;
        auto opened =
            ScanJournal::open_resume(options_.journal_path, fp, &load);
        if (!opened.ok()) {
            if (opened.error_code() == ErrorCode::StaleFormat &&
                opened.error_message() == kJournalFingerprintMismatch) {
                // A structurally sound journal for a *different* scan
                // configuration (e.g. another retrieval mode): silently
                // rescanning under the new knobs while the old journal
                // sits on disk would mix findings from two
                // configurations on the next resume. Refuse the scan;
                // run_batch returns empty and callers surface the error.
                health_.resume_rejected = true;
                health_.resume_reject_reason = opened.error_message();
                health_.note_error(opened.error_code());
                return;
            }
            // Degrade to a journal-less scan: a corrupt, stale-layout
            // or unreadable journal costs resume coverage, never the
            // scan. The error class lands in the histogram so it is
            // visible.
            health_.note_error(opened.error_code());
            return;
        }
        journal_ = std::move(opened).take();
        health_.journal_truncated_bytes += load.truncated_bytes;
        for (JournalEntry &entry : load.entries) {
            // Append order: the last record for a (content key, query
            // fingerprint) pair wins; quarantines live under qfp 0.
            const auto key =
                std::make_pair(entry.content_key, entry.query_fp);
            journal_replay_.insert_or_assign(key, std::move(entry));
        }
        return;
    }
    auto created = ScanJournal::create(options_.journal_path, fp);
    if (!created.ok()) {
        health_.note_error(created.error_code());
        return;
    }
    journal_ = std::move(created).take();
}

void
Driver::journal_append(const JournalEntry &entry)
{
    if (!journal_.is_open()) {
        return;
    }
    journal_.append(entry);
    if (options_.cancel_after_appends > 0 &&
        options_.cancel != nullptr &&
        journal_.appended() >= options_.cancel_after_appends) {
        options_.cancel->request();
    }
}

std::string
cve_scan_label(const firmware::CveRecord &cve)
{
    return strprintf("cve:%s:%s:%s:%s", cve.cve_id.c_str(),
                     cve.package.c_str(), cve.procedure.c_str(),
                     latest_vulnerable_version(cve).c_str());
}

std::string
batch_scan_label(const std::vector<firmware::CveRecord> &cves)
{
    if (cves.size() == 1) {
        return cve_scan_label(cves.front());
    }
    std::string label = "batch";
    for (const firmware::CveRecord &cve : cves) {
        label += ":" + cve_scan_label(cve);
    }
    return label;
}

namespace {

/** Scan label of a prebuilt per-ISA query set. */
std::string
query_set_label(const std::map<isa::Arch, Query> &queries)
{
    std::string label = "queries";
    for (const auto &[arch, query] : queries) {
        label += strprintf(":%d/%s/%s/%s/%s", static_cast<int>(arch),
                           query.label.c_str(), query.package.c_str(),
                           query.procedure.c_str(),
                           query.version.c_str());
    }
    return label;
}

}  // namespace

std::uint64_t
Driver::query_fingerprint(const std::string &label)
{
    const std::uint64_t fp = fnv1a64("fwsj-query:" + label);
    return fp != 0 ? fp : 1;  // 0 is the quarantine sentinel
}

std::vector<CorpusOutcome>
Driver::search_corpus(const firmware::CveRecord &cve,
                      const std::vector<CorpusTarget> &targets,
                      unsigned threads, bool confirm)
{
    std::vector<std::vector<CorpusOutcome>> rows =
        search_corpus_batch({cve}, targets, threads, confirm);
    return std::move(rows.front());
}

std::vector<CorpusOutcome>
Driver::search_corpus(const std::map<isa::Arch, Query> &queries,
                      const std::vector<CorpusTarget> &targets,
                      unsigned threads, bool confirm)
{
    // Direct callers (no CVE) get a journal identity from the query
    // set; when a CVE overload already opened the journal, this is a
    // no-op.
    const std::string label = query_set_label(queries);
    open_journal(label, confirm);
    std::vector<std::vector<CorpusOutcome>> rows =
        run_batch({&queries}, {query_fingerprint(label)}, targets,
                  threads, confirm);
    return std::move(rows.front());
}

std::vector<std::vector<CorpusOutcome>>
Driver::search_corpus_batch(const std::vector<firmware::CveRecord> &cves,
                            const std::vector<CorpusTarget> &targets,
                            unsigned threads, bool confirm)
{
    // The journal identity must exist before any work happens so the
    // pending sets can be carved out before anything lifts the corpus.
    std::vector<std::string> labels;
    labels.reserve(cves.size());
    for (const firmware::CveRecord &cve : cves) {
        labels.push_back(cve_scan_label(cve));
    }
    open_journal(batch_scan_label(cves), confirm);
    if (health_.resume_rejected) {
        // Refused resume (journal fingerprint mismatch): skip even the
        // query builds — run_batch would return the empty grid anyway,
        // and building queries first would waste lifts on a scan that
        // is not going to run.
        std::vector<std::vector<CorpusOutcome>> rows(cves.size());
        for (std::vector<CorpusOutcome> &row : rows) {
            row.resize(targets.size());
            for (std::size_t t = 0; t < targets.size(); ++t) {
                row[t].target = targets[t];
            }
        }
        return rows;
    }

    std::vector<std::uint64_t> query_fps;
    query_fps.reserve(labels.size());
    for (const std::string &label : labels) {
        query_fps.push_back(query_fingerprint(label));
    }

    // Content keys once per batch (hashing every target's text bytes
    // once per CVE would already be a per-query cost).
    std::vector<std::uint64_t> keys(targets.size());
    for (std::size_t t = 0; t < targets.size(); ++t) {
        keys[t] = content_key(*targets[t].exe);
    }

    // Per-CVE queries over that CVE's pending targets — the same
    // carve-out a single-CVE scan performs, so replayed pairs and
    // quarantined keys are never lifted again. The first CVE's
    // build_queries indexes the union of pending targets; the rest are
    // pure cache lookups.
    std::vector<std::map<isa::Arch, Query>> query_sets(cves.size());
    std::vector<const std::map<isa::Arch, Query> *> set_ptrs;
    set_ptrs.reserve(cves.size());
    for (std::size_t q = 0; q < cves.size(); ++q) {
        std::vector<CorpusTarget> pending;
        pending.reserve(targets.size());
        for (std::size_t t = 0; t < targets.size(); ++t) {
            if (journal_replay_.contains({keys[t], 0}) ||
                journal_replay_.contains({keys[t], query_fps[q]})) {
                continue;
            }
            pending.push_back(targets[t]);
        }
        query_sets[q] = build_hunt_queries(cves[q], pending, threads);
        set_ptrs.push_back(&query_sets[q]);
    }
    return run_batch(set_ptrs, query_fps, targets, threads, confirm);
}

std::vector<std::vector<CorpusOutcome>>
Driver::run_batch(
    const std::vector<const std::map<isa::Arch, Query> *> &query_sets,
    const std::vector<std::uint64_t> &query_fps,
    const std::vector<CorpusTarget> &targets, unsigned threads,
    bool confirm)
{
    const std::size_t nq = query_sets.size();
    const std::size_t nt = targets.size();
    const CancelToken *const cancel = options_.cancel;

    std::vector<std::uint64_t> keys(nt);
    for (std::size_t t = 0; t < nt; ++t) {
        keys[t] = content_key(*targets[t].exe);
    }

    std::vector<std::vector<CorpusOutcome>> out(nq);
    std::vector<std::vector<char>> replayed(nq);
    for (std::size_t q = 0; q < nq; ++q) {
        out[q].resize(nt);
        replayed[q].assign(nt, 0);
        for (std::size_t t = 0; t < nt; ++t) {
            out[q][t].target = targets[t];
        }
    }

    if (health_.resume_rejected) {
        // open_journal refused the resume (fingerprint mismatch): no
        // lifting, no games — return the empty grid so callers surface
        // the configuration error without half a scan behind it.
        return out;
    }

    // Replay pass: serve journaled (query, target) pairs before any
    // stage runs, in (query, target) order, with exactly the health
    // accounting a fresh scan of them would have produced — the
    // determinism bar is that a resumed hunt's findings and discrete
    // health match the uninterrupted one. Quarantines (qfp 0) serve
    // every query of the batch.
    for (std::size_t q = 0; q < nq; ++q) {
        for (std::size_t t = 0; t < nt; ++t) {
            const auto quarantine = journal_replay_.find({keys[t], 0});
            if (quarantine != journal_replay_.end()) {
                const JournalEntry &entry = quarantine->second;
                replayed[q][t] = 1;
                if (quarantined_.insert(keys[t]).second) {
                    if (health_counted_.insert(keys[t]).second) {
                        ++health_.executables_seen;
                    }
                    health_.note_quarantine(entry.exe_name, entry.code,
                                            entry.message);
                }
                continue;
            }
            const auto it =
                journal_replay_.find({keys[t], query_fps[q]});
            if (it == journal_replay_.end()) {
                continue;
            }
            replayed[q][t] = 1;
            note_healthy(keys[t]);
            out[q][t].indexed = it->second.indexed;
            out[q][t].outcome = it->second.outcome;
        }
    }

    // A target is still needed when any query's pair was not replayed;
    // fully-served targets must not be lifted (or even store-loaded).
    std::vector<char> needed(nt, 0);
    std::vector<CorpusTarget> pending;
    for (std::size_t t = 0; t < nt; ++t) {
        for (std::size_t q = 0; q < nq; ++q) {
            if (!replayed[q][t]) {
                needed[t] = 1;
                break;
            }
        }
        if (needed[t]) {
            pending.push_back(targets[t]);
        }
    }
    // unseen_executables dedupes by content key and drops cached and
    // quarantined keys (replayed quarantines entered quarantined_
    // above), so each distinct pending executable indexes exactly once.
    index_many(unseen_executables(pending), threads);

    // Resolve targets against the now-complete caches (serial: this
    // still mutates health for executables first seen here).
    std::vector<const sim::ExecutableIndex *> resolved(nt, nullptr);
    std::vector<char> resolve_cancelled(nt, 0);
    for (std::size_t t = 0; t < nt; ++t) {
        if (!needed[t]) {
            continue;
        }
        // Cancellation point: index_target cold-lifts on a cache miss
        // (targets index_many skipped after cancellation), so mark the
        // remainder cancelled instead of lifting through a shutdown.
        if (cancel != nullptr && cancel->requested()) {
            resolve_cancelled[t] = 1;
            for (std::size_t q = 0; q < nq; ++q) {
                if (!replayed[q][t]) {
                    out[q][t].outcome.cancelled = true;
                }
            }
            continue;
        }
        resolved[t] = index_target(*targets[t].exe);
        for (std::size_t q = 0; q < nq; ++q) {
            if (!replayed[q][t]) {
                out[q][t].indexed = resolved[t] != nullptr;
            }
        }
    }

    // Per-target watchdog + shutdown polling for the games; options_
    // stays frozen during the fan-out (workers read it concurrently)
    // and is restored afterwards.
    const game::GameOptions saved_game = options_.game;
    options_.game.cancel = cancel;
    options_.game.retrieval = options_.retrieval;
    if (options_.target_budget_seconds > 0.0 &&
        (options_.game.max_seconds <= 0.0 ||
         options_.target_budget_seconds < options_.game.max_seconds)) {
        options_.game.max_seconds = options_.target_budget_seconds;
    }
    const RetryPolicy retry_policy{options_.max_target_retries,
                                   options_.retry_backoff_seconds};

    // Fan the outstanding games out over (query, target) work items on
    // the work-stealing scheduler, target-major (k = t * nq + q): the
    // scheduler's contiguous chunks then play every query against one
    // target back-to-back while its index is hot, and a target is
    // released before the next one is touched. Workers read the frozen
    // caches and write disjoint slots; the first worker exception
    // propagates out of run().
    const auto match_start = std::chrono::steady_clock::now();
    WorkStealingScheduler::run(
        resolve_worker_threads(threads), nq * nt, [&](std::size_t k) {
            const std::size_t t = k / nq;
            const std::size_t q = k % nq;
            if (replayed[q][t] || resolve_cancelled[t]) {
                return;  // served from the journal / cancelled above
            }
            const sim::ExecutableIndex *target = resolved[t];
            if (target == nullptr) {
                return;  // quarantined
            }
            // Cancellation point: drain, don't start, once shutdown is
            // requested; in-flight games poll the token at their
            // deadline sample points.
            if (cancel != nullptr && cancel->requested()) {
                out[q][t].outcome.cancelled = true;
                return;
            }
            const std::map<isa::Arch, Query> &queries = *query_sets[q];
            const auto qit = queries.find(target->arch);
            if (qit == queries.end()) {
                out[q][t].indexed = false;  // no query for this ISA
                JournalEntry entry;
                entry.content_key = keys[t];
                entry.query_fp = query_fps[q];
                entry.indexed = false;
                journal_append(entry);
                return;
            }
            const trace::TraceSpan span("search_target",
                                        targets[t].exe->name);
            SearchOutcome outcome =
                confirm ? search_outcome(qit->second, *target)
                        : match_outcome(qit->second, *target);
            // Watchdog retry: deadline expiry is the one transient game
            // failure (wall-clock BudgetExhausted depends on machine
            // load, not on the input); redo with backoff while the
            // retry budget lasts. Everything else is deterministic and
            // would fail identically.
            int retries = 0;
            double backoff = retry_policy.backoff_seconds;
            while (outcome.deadline_expired && !outcome.cancelled &&
                   retries < retry_policy.max_retries &&
                   !(cancel != nullptr && cancel->requested())) {
                if (backoff > 0.0) {
                    std::this_thread::sleep_for(
                        std::chrono::duration<double>(backoff));
                }
                backoff *= retry_policy.backoff_factor;
                ++retries;
                outcome = confirm
                              ? search_outcome(qit->second, *target)
                              : match_outcome(qit->second, *target);
            }
            outcome.retries = retries;
            out[q][t].outcome = outcome;
            if (!outcome.cancelled) {
                // Journal the completed pair the moment it finishes;
                // cancelled pairs are never journaled (no answer to
                // replay — the resume redoes them).
                JournalEntry entry;
                entry.content_key = keys[t];
                entry.query_fp = query_fps[q];
                entry.indexed = true;
                entry.outcome = outcome;
                journal_append(entry);
            }
        });
    options_.game = saved_game;
    health_.match_wall_seconds += seconds_since(match_start);

    // Merge the accounting single-threaded, in (query, target) order —
    // the same order N sequential single-query scans would have
    // produced.
    for (std::size_t q = 0; q < nq; ++q) {
        for (std::size_t t = 0; t < nt; ++t) {
            const CorpusOutcome &co = out[q][t];
            if (replayed[q][t]) {
                ++health_.resumed_targets;
                c_resumed_targets.add();
                if (co.indexed) {
                    note_outcome(co.outcome);
                }
                continue;
            }
            if (co.outcome.cancelled) {
                ++health_.targets_cancelled;
                c_cancelled_targets.add();
                continue;
            }
            if (co.indexed) {
                note_outcome(co.outcome);
            }
        }
    }
    if (cancel != nullptr && cancel->requested()) {
        health_.cancelled = true;
    }
    sync_retrieval_health();
    journal_.flush();
    return out;
}

}  // namespace firmup::eval
