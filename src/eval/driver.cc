#include "eval/driver.h"

#include <algorithm>
#include <set>

#include "baseline/gitz_like.h"
#include "codegen/build.h"
#include "support/error.h"
#include "support/hash.h"
#include "support/threadpool.h"

namespace firmup::eval {

Driver::Driver(SearchOptions options) : options_(std::move(options)) {}

std::string
latest_vulnerable_version(const firmware::CveRecord &cve)
{
    const firmware::PackageSpec &pkg =
        firmware::package_by_name(cve.package);
    std::string newest;
    for (const std::string &version : pkg.versions) {
        if (cve.affects(pkg, version)) {
            newest = version;  // versions are ordered oldest first
        }
    }
    FIRMUP_ASSERT(!newest.empty(),
                  cve.cve_id + ": no vulnerable version in catalog");
    return newest;
}

Query
Driver::build_query(const firmware::CveRecord &cve, isa::Arch arch)
{
    Query query = build_query(cve.package, cve.procedure,
                              latest_vulnerable_version(cve), arch);
    query.label = cve.cve_id;
    return query;
}

Query
Driver::build_query(const std::string &package,
                    const std::string &procedure,
                    const std::string &version, isa::Arch arch)
{
    const firmware::PackageSpec &pkg = firmware::package_by_name(package);
    const lang::PackageSource source =
        firmware::generate_package_source(pkg, version);

    // Section 5.1: queries are compiled from source with the reference
    // toolchain at its default optimization level, all features on
    // (the researcher's build is a default build).
    codegen::BuildRequest request;
    request.arch = arch;
    request.profile = compiler::gcc_like_toolchain();
    request.exe_name = package + "-query";
    const loader::Executable exe =
        codegen::build_executable(source, request);

    auto lifted = lifter::lift_executable(exe);
    FIRMUP_ASSERT(lifted.ok(), "query lift failed: " +
                                   lifted.error_message());

    Query query;
    query.label = package + "/" + procedure;
    query.package = package;
    query.procedure = procedure;
    query.version = version;
    query.index = sim::index_executable(lifted.value(), options_.canon);
    query.qv = query.index.find_by_name(procedure);
    FIRMUP_ASSERT(query.qv >= 0,
                  "query procedure missing: " + procedure);
    query.graph = baseline::graph_index(lifted.value());
    return query;
}

const lifter::LiftedExecutable &
Driver::lift_cached(const loader::Executable &exe)
{
    const std::uint64_t key = hash_combine(
        fnv1a64(exe.name),
        fnv1a64(std::string_view(
            reinterpret_cast<const char *>(exe.text.data()),
            exe.text.size())));
    auto it = lift_cache_.find(key);
    if (it == lift_cache_.end()) {
        auto lifted = lifter::lift_executable(exe);
        FIRMUP_ASSERT(lifted.ok(), "target lift failed");
        it = lift_cache_.emplace(key, std::move(lifted).take()).first;
    }
    return it->second;
}

const sim::ExecutableIndex &
Driver::index_target(const loader::Executable &exe)
{
    const lifter::LiftedExecutable &lifted = lift_cached(exe);
    const std::uint64_t key = hash_combine(
        fnv1a64(exe.name),
        fnv1a64(std::string_view(
            reinterpret_cast<const char *>(exe.text.data()),
            exe.text.size())));
    auto it = index_cache_.find(key);
    if (it == index_cache_.end()) {
        it = index_cache_
                 .emplace(key,
                          sim::index_executable(lifted, options_.canon))
                 .first;
    }
    return it->second;
}

const baseline::GraphIndex &
Driver::graph_target(const loader::Executable &exe)
{
    const lifter::LiftedExecutable &lifted = lift_cached(exe);
    const std::uint64_t key = hash_combine(
        fnv1a64(exe.name),
        fnv1a64(std::string_view(
            reinterpret_cast<const char *>(exe.text.data()),
            exe.text.size())));
    auto it = graph_cache_.find(key);
    if (it == graph_cache_.end()) {
        it = graph_cache_.emplace(key, baseline::graph_index(lifted))
                 .first;
    }
    return it->second;
}

std::size_t
Driver::preindex(const firmware::Corpus &corpus, unsigned threads)
{
    // Collect distinct executables by content key.
    std::vector<const loader::Executable *> work;
    std::set<std::uint64_t> seen;
    for (const firmware::FirmwareImage &image : corpus.images) {
        for (const loader::Executable &exe : image.executables) {
            const std::uint64_t key = hash_combine(
                fnv1a64(exe.name),
                fnv1a64(std::string_view(
                    reinterpret_cast<const char *>(exe.text.data()),
                    exe.text.size())));
            if (seen.insert(key).second &&
                !index_cache_.contains(key)) {
                work.push_back(&exe);
            }
        }
    }
    // Lift + index in parallel with no shared state, merge at the end.
    std::vector<lifter::LiftedExecutable> lifted(work.size());
    std::vector<sim::ExecutableIndex> indexes(work.size());
    const strand::CanonOptions canon = options_.canon;
    ThreadPool::parallel_for(
        threads, work.size(), [&](std::size_t i) {
            auto result = lifter::lift_executable(*work[i]);
            FIRMUP_ASSERT(result.ok(), "preindex lift failed");
            lifted[i] = std::move(result).take();
            indexes[i] = sim::index_executable(lifted[i], canon);
        });
    for (std::size_t i = 0; i < work.size(); ++i) {
        const loader::Executable &exe = *work[i];
        const std::uint64_t key = hash_combine(
            fnv1a64(exe.name),
            fnv1a64(std::string_view(
                reinterpret_cast<const char *>(exe.text.data()),
                exe.text.size())));
        lift_cache_.emplace(key, std::move(lifted[i]));
        index_cache_.emplace(key, std::move(indexes[i]));
    }
    return work.size();
}

SearchOutcome
Driver::match(const Query &query,
              const sim::ExecutableIndex &target) const
{
    SearchOutcome outcome;
    if (target.procs.empty()) {
        return outcome;
    }
    if (options_.use_game) {
        const game::GameResult result =
            game::match_query(query.index, query.qv, target,
                              options_.game);
        outcome.steps = result.steps;
        if (result.matched) {
            outcome.detected = true;
            outcome.matched_entry = result.target_entry;
            outcome.sim = result.sim;
        }
        return outcome;
    }
    // Ablation: procedure-centric top-1 (no executable context).
    const int top = baseline::gitz_top1(query.index, query.qv, target,
                                        nullptr);
    if (top >= 0) {
        const auto &proc = target.procs[static_cast<std::size_t>(top)];
        outcome.steps = 1;
        outcome.detected = true;
        outcome.matched_entry = proc.entry;
        outcome.sim = sim::sim_score(
            query.index.procs[static_cast<std::size_t>(query.qv)].repr,
            proc.repr);
    }
    return outcome;
}

SearchOutcome
Driver::search(const Query &query,
               const sim::ExecutableIndex &target) const
{
    SearchOutcome outcome = match(query, target);
    if (!outcome.detected) {
        return outcome;
    }
    const auto &q_repr =
        query.index.procs[static_cast<std::size_t>(query.qv)].repr;
    const auto q_strands = static_cast<double>(q_repr.hashes.size());
    const int ratio_threshold = std::max(
        options_.min_confirm_sim,
        static_cast<int>(options_.min_confirm_ratio * q_strands));
    bool accept = outcome.sim >= ratio_threshold;
    if (!accept &&
        outcome.sim >= std::max(options_.min_confirm_sim,
                                static_cast<int>(
                                    options_.min_margin_ratio *
                                    q_strands))) {
        // Dominance fallback: compare against the runner-up.
        int second = 0;
        for (const sim::ProcEntry &proc : target.procs) {
            if (proc.entry == outcome.matched_entry) {
                continue;
            }
            second = std::max(second, sim::sim_score(q_repr, proc.repr));
        }
        accept = static_cast<double>(outcome.sim) >=
                 options_.margin_factor * static_cast<double>(second);
    }
    if (!accept) {
        outcome.detected = false;
        outcome.matched_entry = 0;
        outcome.sim = 0;
    }
    return outcome;
}

}  // namespace firmup::eval
