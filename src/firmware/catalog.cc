#include "firmware/catalog.h"

#include <algorithm>

#include "lang/generate.h"
#include "support/error.h"
#include "support/rng.h"

namespace firmup::firmware {

namespace {

ProcSpec
core(const char *name)
{
    ProcSpec spec;
    spec.name = name;
    return spec;
}

ProcSpec
exported(const char *name)
{
    ProcSpec spec;
    spec.name = name;
    spec.exported = true;
    return spec;
}

ProcSpec
feature(const char *name, const char *gate)
{
    ProcSpec spec;
    spec.name = name;
    spec.feature = gate;
    return spec;
}

ProcSpec
deprecated(const char *name, const char *removed_in, const char *body_of)
{
    ProcSpec spec;
    spec.name = name;
    spec.exported = true;
    spec.removed_in = removed_in;
    spec.body_of = body_of;
    return spec;
}

std::vector<PackageSpec>
make_catalog()
{
    std::vector<PackageSpec> catalog;

    {
        PackageSpec p;
        p.name = "vsftpd";
        p.versions = {"2.0.5", "2.3.2", "2.3.4", "3.0.2"};
        p.features = {"ssl"};
        p.num_globals = 5;
        p.procedures = {
            core("handle_pasv"),
            core("handle_retr"), core("handle_stor"),
            core("handle_list"), core("handle_dir_common"),
            core("vsf_sysutil_retval_is_error"),
            core("vsf_sysutil_open_file"), core("vsf_sysutil_read"),
            core("vsf_sysutil_write_loop"), core("str_alloc_text"),
            core("str_append_str"), core("str_split_char"),
            core("str_locate_char"), core("str_getline"),
            core("vsf_filename_passes_filter"),
            core("priv_sock_send_cmd"), core("priv_sock_get_result"),
            core("vsf_cmdio_write"), core("vsf_cmdio_get_cmd_and_arg"),
            core("tunable_setting_set"), core("ftp_write_banner"),
            core("process_post_login"), core("init_connection"),
            feature("ssl_init", "ssl"), feature("ssl_read_common", "ssl"),
            feature("ssl_accept", "ssl"),
        };
        catalog.push_back(std::move(p));
    }
    {
        PackageSpec p;
        p.name = "bftpd";
        p.versions = {"1.6", "2.3", "3.8"};
        p.num_globals = 4;
        p.procedures = {
            core("bftpdutmp_init"), core("mystrncpy"),
            core("bftpdutmp_log"),
            core("bftpdutmp_end"), core("command_retr"),
            core("command_stor"), core("command_list"),
            core("command_user"), core("command_pass"),
            core("dirlist_one_file"), core("hidegroups_init"),
            core("login_init"), core("login_check_password"),
            core("bftpd_cwd_chdir"), core("bftpd_cwd_mappath"),
            core("config_getoption"),
            core("config_init"), core("net_send"),
            core("net_recv"), core("handle_sigchld"),
        };
        catalog.push_back(std::move(p));
    }
    {
        PackageSpec p;
        p.name = "libcurl";
        p.versions = {"7.15.4", "7.24.0", "7.36.0", "7.50.3", "7.52.1"};
        p.features = {"cookies", "ssl"};
        p.num_globals = 6;
        p.is_library = true;
        p.procedures = {
            // curl_unescape: the deprecated ancestor of
            // curl_easy_unescape, present only in ancient releases where
            // its successor does not exist yet (paper section 5.2).
            deprecated("curl_unescape", "7.24.0", "curl_easy_unescape"),
            [] {
                ProcSpec spec;
                spec.name = "curl_easy_unescape";
                spec.exported = true;
                spec.introduced_in = "7.24.0";
                return spec;
            }(),
            exported("curl_easy_escape"),
            exported("curl_easy_init"), exported("curl_easy_setopt"),
            exported("curl_easy_perform"), exported("curl_easy_cleanup"),
            exported("curl_slist_append"), exported("curl_getdate"),
            core("tailmatch"), core("alloc_addbyter"),
            core("dprintf_formatf"), core("parse_url"),
            core("parse_hostname"), core("resolve_server"),
            core("conn_connect"), core("readwrite_data"),
            core("multi_runsingle"), core("hash_add"),
            core("hash_fetch"), core("llist_insert_next"),
            core("splay_insert"), core("timeval_subtract"),
            core("base64_encode"), core("strequal_nocase"),
            feature("cookie_add", "cookies"),
            feature("cookie_getlist", "cookies"),
            feature("cookie_cleanup", "cookies"),
            feature("ossl_connect_common", "ssl"),
            feature("ossl_recv", "ssl"),
        };
        catalog.push_back(std::move(p));
    }
    {
        PackageSpec p;
        p.name = "dbus";
        p.versions = {"1.4.1", "1.6.12", "1.8.6"};
        p.num_globals = 4;
        p.is_library = true;
        p.procedures = {
            exported("dbus_message_new"), exported("dbus_message_unref"),
            exported("dbus_connection_open"),
            exported("dbus_connection_send"),
            exported("dbus_signature_validate"),
            core("marshal_write_basic"), core("marshal_read_basic"),
            core("string_append_printf"), core("string_find_blank"),
            core("printf_string_upper_bound"),
            core("auth_handle_input"), core("transport_do_iteration"),
            core("watch_list_add"), core("timeout_list_add"),
            core("hash_table_insert"), core("hash_table_lookup"),
            core("validate_body"), core("header_get_field"),
        };
        catalog.push_back(std::move(p));
    }
    {
        PackageSpec p;
        p.name = "wget";
        p.versions = {"1.12", "1.15", "1.16", "1.18"};
        p.features = {"opie", "ssl"};
        p.num_globals = 6;
        p.procedures = {
            core("getftp"), core("get_ftp"),
            core("url_parse"), core("url_free"), core("url_escape"),
            core("ftp_parse_ls"),
            core("ftp_retrieve_glob"), core("ftp_loop_internal"),
            core("http_loop"), core("gethttp"),
            core("retrieve_url"), core("retr_rate"),
            core("calc_rate"), core("fd_read_body"),
            core("fd_read_line"), core("cookie_header"),
            core("hash_table_get"), core("hash_table_put"),
            core("log_init"), core("logprintf"),
            core("parse_netrc"), core("run_wgetrc"),
            core("convert_links"), core("path_simplify"),
            feature("skey_resp", "opie"),
            feature("ssl_connect_wget", "ssl"),
            feature("ssl_check_certificate", "ssl"),
        };
        catalog.push_back(std::move(p));
    }
    {
        PackageSpec p;
        p.name = "libexif";
        p.versions = {"0.6.19", "0.6.21"};
        p.num_globals = 4;
        p.is_library = true;
        p.procedures = {
            exported("exif_entry_get_value"), exported("exif_entry_new"),
            exported("exif_entry_initialize"), exported("exif_data_new"),
            exported("exif_data_load_data"), exported("exif_data_save_data"),
            exported("exif_content_get_entry"),
            exported("exif_tag_get_name"),
            core("exif_entry_format_value"), core("mnote_data_load"),
            core("convert_utf16"), core("entry_dump_text"),
            core("data_foreach_content"), core("log_backend"),
        };
        catalog.push_back(std::move(p));
    }
    {
        PackageSpec p;
        p.name = "net-snmp";
        p.versions = {"5.4.3", "5.7.2", "5.7.3"};
        p.num_globals = 5;
        p.is_library = true;
        p.procedures = {
            exported("snmp_pdu_create"),
            exported("snmp_open"), exported("snmp_send"),
            exported("snmp_parse_oid"), exported("snmp_var_append"),
            core("asn_parse_int"), core("asn_parse_string"),
            core("asn_parse_header"), core("asn_build_sequence"),
            exported("snmp_pdu_parse"),
            core("usm_process_in_msg"), core("scapi_get_transform"),
            core("container_find"), core("oid_compare"),
            core("mib_find_node"), core("agent_check_packet"),
        };
        catalog.push_back(std::move(p));
    }
    // Corpus filler packages (no tracked CVEs): make firmware images
    // realistically heterogeneous.
    {
        PackageSpec p;
        p.name = "busybox";
        p.versions = {"1.19", "1.24"};
        p.features = {"telnetd", "httpd"};
        p.num_globals = 6;
        p.procedures = {
            core("bb_ask_password"), core("bb_full_write"),
            core("bb_parse_mode"), core("xmalloc_open_read"),
            core("safe_read"), core("safe_write"),
            core("procps_scan"), core("run_shell_applet"),
            core("udhcp_send_packet"), core("udhcp_recv_packet"),
            core("route_main_loop"), core("ifconfig_apply"),
            core("mount_fstab_entry"), core("tar_extract_entry"),
            core("gzip_inflate_block"), core("md5_hash_block"),
            feature("telnetd_main_loop", "telnetd"),
            feature("telnetd_make_session", "telnetd"),
            feature("httpd_handle_request", "httpd"),
            feature("httpd_send_headers", "httpd"),
        };
        catalog.push_back(std::move(p));
    }
    {
        PackageSpec p;
        p.name = "dropbear";
        p.versions = {"2012.55", "2016.74"};
        p.num_globals = 4;
        p.procedures = {
            core("session_loop"), core("recv_msg_userauth_request"),
            core("send_msg_userauth_failure"), core("buf_getstring"),
            core("buf_putstring"), core("buf_getint"),
            core("kex_comb_key"), core("gen_new_keys"),
            core("channel_data_recv"), core("channel_try_send"),
            core("algo_match"), core("sign_key_verify"),
        };
        catalog.push_back(std::move(p));
    }
    {
        PackageSpec p;
        p.name = "miniupnpd";
        p.versions = {"1.8", "2.0"};
        p.num_globals = 4;
        p.procedures = {
            core("upnp_event_process"), core("process_ssdp_request"),
            core("send_ssdp_response"), core("build_soap_body"),
            core("parse_soap_request"), core("add_port_mapping"),
            core("delete_port_mapping"), core("get_nat_rule"),
            core("iptc_init_chain"), core("lease_file_add"),
        };
        catalog.push_back(std::move(p));
    }
    return catalog;
}

}  // namespace

int
PackageSpec::version_index(const std::string &version) const
{
    for (std::size_t i = 0; i < versions.size(); ++i) {
        if (versions[i] == version) {
            return static_cast<int>(i);
        }
    }
    return -1;
}

bool
CveRecord::affects(const PackageSpec &pkg, const std::string &version) const
{
    const int v = pkg.version_index(version);
    const int fixed = pkg.version_index(fixed_version);
    if (v < 0) {
        return false;
    }
    return fixed < 0 || v < fixed;
}

const std::vector<PackageSpec> &
package_catalog()
{
    static const std::vector<PackageSpec> catalog = make_catalog();
    return catalog;
}

const PackageSpec &
package_by_name(const std::string &name)
{
    for (const PackageSpec &p : package_catalog()) {
        if (p.name == name) {
            return p;
        }
    }
    FIRMUP_ASSERT(false, "unknown package: " + name);
}

const std::vector<CveRecord> &
cve_database()
{
    // Table 2 of the paper, plus the two section-5.3 additions.
    static const std::vector<CveRecord> db = {
        {"CVE-2011-0762", "vsftpd", "vsf_filename_passes_filter", "3.0.2",
         "DoS"},
        {"CVE-2009-4593", "bftpd", "bftpdutmp_log", "3.8", "BOF"},
        {"CVE-2012-0036", "libcurl", "curl_easy_unescape", "7.36.0",
         "input validation"},
        {"CVE-2013-1944", "libcurl", "tailmatch", "7.50.3",
         "information disclosure"},
        {"CVE-2013-2168", "dbus", "printf_string_upper_bound", "1.8.6",
         "DoS"},
        {"CVE-2014-4877", "wget", "ftp_retrieve_glob", "1.16",
         "path traversal"},
        {"CVE-2016-8618", "libcurl", "alloc_addbyter", "7.52.1", "BOF"},
        {"CVE-2012-2841", "libexif", "exif_entry_get_value", "0.6.21",
         "BOF"},
        {"CVE-2015-5621", "net-snmp", "snmp_pdu_parse", "5.7.3", "DoS"},
    };
    return db;
}

lang::PackageSource
generate_package_source(const PackageSpec &pkg, const std::string &version)
{
    const int vidx = pkg.version_index(version);
    FIRMUP_ASSERT(vidx >= 0, pkg.name + ": unknown version " + version);

    lang::PackageSource src;
    src.name = pkg.name;
    src.version = version;
    for (int g = 0; g < pkg.num_globals; ++g) {
        Rng grng = Rng::from_label("pkg/" + pkg.name + "/global/" +
                                   std::to_string(g));
        src.globals.push_back(
            {"g" + std::to_string(g),
             static_cast<int>(grng.range(2, 32))});
    }

    // Base bodies: independent of version and of procedure order.
    std::vector<lang::Callee> all_callees;
    for (const ProcSpec &spec : pkg.procedures) {
        Rng sig = Rng::from_label("pkg/" + pkg.name + "/sig/" + spec.name);
        all_callees.push_back(
            {spec.name, static_cast<int>(sig.range(0, 3))});
    }
    // Package-wide idiom pool: shared helper patterns reused across the
    // package's procedures (string handling, logging, buffer walks...).
    Rng pool_rng = Rng::from_label("pkg/" + pkg.name + "/idioms");
    const std::vector<lang::StmtPtr> idiom_pool =
        lang::generate_idiom_pool(pool_rng, 14, pkg.num_globals);

    // The package's constant vocabulary: a few ubiquitous values plus
    // package-specific sizes, masks and error codes.
    std::vector<std::int32_t> const_pool = {0, 1, 4, 8, 16, 255, 1024};
    Rng const_rng = Rng::from_label("pkg/" + pkg.name + "/consts");
    for (int k = 0; k < 12; ++k) {
        const_pool.push_back(
            static_cast<std::int32_t>(const_rng.range(2, 8192)));
    }

    const int version_idx = vidx;
    for (std::size_t i = 0; i < pkg.procedures.size(); ++i) {
        const ProcSpec &spec = pkg.procedures[i];
        if (!spec.removed_in.empty()) {
            const int removed = pkg.version_index(spec.removed_in);
            if (removed >= 0 && version_idx >= removed) {
                continue;  // deprecated and gone by this release
            }
        }
        if (!spec.introduced_in.empty()) {
            const int introduced = pkg.version_index(spec.introduced_in);
            if (introduced >= 0 && version_idx < introduced) {
                continue;  // does not exist yet in this release
            }
        }
        lang::GenOptions options;
        options.num_params = all_callees[i].num_params;
        options.num_globals = pkg.num_globals;
        options.idiom_pool = &idiom_pool;
        options.idiom_percent = 45;
        options.const_pool = &const_pool;
        // Size variance: a share of procedures are much larger. Large
        // procedures soak up shared strands and spuriously attract
        // queries — the paper's prime cause of contested games
        // ("very large procedures that are mistakenly matched with the
        // query due to their size", section 5.3).
        Rng size_rng = Rng::from_label("pkg/" + pkg.name + "/size/" +
                                       spec.name);
        if (size_rng.chance(1, 5)) {
            options.min_stmts = 26;
            options.max_stmts = 44;
        }
        // Callable pool: a seeded subset of the *earlier* procedures,
        // keeping the call graph acyclic and stable across versions.
        Rng pool = Rng::from_label("pkg/" + pkg.name + "/pool/" +
                                   spec.name);
        for (std::size_t j = 0; j < i; ++j) {
            if (pool.chance(1, 3)) {
                options.callable.push_back(all_callees[j]);
            }
        }
        // A deprecated procedure shares its successor's body seed (and
        // arity): the two are ancestor and descendant of the same source.
        const std::string body_name =
            spec.body_of.empty() ? spec.name : spec.body_of;
        if (!spec.body_of.empty()) {
            Rng sig = Rng::from_label("pkg/" + pkg.name + "/sig/" +
                                      body_name);
            options.num_params = static_cast<int>(sig.range(0, 3));
        }
        Rng body = Rng::from_label("pkg/" + pkg.name + "/body/" +
                                   body_name);
        lang::ProcedureAst proc =
            lang::generate_procedure(body, spec.name, options);
        if (!spec.body_of.empty()) {
            // The ancestor has drifted a little from the descendant.
            Rng drift = Rng::from_label("pkg/" + pkg.name + "/ancient/" +
                                        spec.name);
            lang::mutate_procedure(drift, proc, 2);
        }
        proc.exported = spec.exported;
        proc.feature = spec.feature;
        src.procedures.push_back(std::move(proc));
    }

    // Version drift: each release applies a seeded batch of source
    // mutations on top of the previous one.
    for (int v = 1; v <= vidx; ++v) {
        const std::string &release =
            pkg.versions[static_cast<std::size_t>(v)];
        Rng vrng =
            Rng::from_label("pkg/" + pkg.name + "/release/" + release);
        const int touched = static_cast<int>(vrng.range(4, 9));
        for (int k = 0; k < touched; ++k) {
            auto &proc = src.procedures[vrng.index(
                src.procedures.size())];
            lang::mutate_procedure(vrng, proc,
                                   static_cast<int>(vrng.range(1, 4)));
        }
        // Hot code churns: procedures with CVE history are actively
        // maintained, so every release has a coin-flip chance of touching
        // them (this is what made wget 1.12 diverge from 1.15 enough to
        // cause the paper's only false positives).
        for (const CveRecord &cve : cve_database()) {
            if (cve.package == pkg.name && vrng.chance(1, 2)) {
                if (auto *proc = src.find(cve.procedure)) {
                    lang::mutate_procedure(vrng, *proc, 1);
                }
            }
        }
        // Security patches: a release that fixes a CVE definitely edits
        // the vulnerable procedure.
        for (const CveRecord &cve : cve_database()) {
            if (cve.package == pkg.name && cve.fixed_version == release) {
                if (auto *proc = src.find(cve.procedure)) {
                    Rng patch = Rng::from_label("pkg/" + pkg.name +
                                                "/patch/" + cve.cve_id);
                    lang::mutate_procedure(patch, *proc, 3);
                }
            }
        }
    }
    return src;
}

}  // namespace firmup::firmware
