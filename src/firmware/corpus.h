/**
 * @file
 * Corpus builder: simulates the paper's firmware crawl (section 5.1).
 *
 * Devices belong to vendors (NETGEAR, D-Link, ASUS — the vendors whose
 * public repositories the paper crawled); each device has an ISA, a
 * vendor toolchain, a package set with per-device build configuration
 * (feature gates), and a firmware version history. Executables are
 * stripped (libraries keep exported symbols; a few early-release images
 * keep full symbols, reproducing the paper's "non-stripped" labeled
 * group); some headers declare the wrong architecture; later firmware
 * versions re-use byte-identical executables for packages that were not
 * part of the update, exactly as the paper observed.
 *
 * Ground truth (which source procedure lives at which address) is
 * recorded in a sidecar *before* stripping and is used only for scoring —
 * never by the matchers.
 */
#pragma once

#include <set>
#include <string>
#include <vector>

#include "firmware/catalog.h"
#include "firmware/image.h"

namespace firmup::firmware {

/** Ground truth for one procedure of one shipped executable. */
struct TruthProc
{
    std::uint32_t entry = 0;
    std::string source_name;
};

/** Ground truth for one shipped executable. */
struct TruthExe
{
    int image_index = -1;
    std::string exe_name;
    std::string package;
    std::string pkg_version;
    std::set<std::string> enabled_features;
    std::vector<TruthProc> procs;

    /** Entry address of @p proc_name; 0 when absent from this build. */
    std::uint32_t entry_of(const std::string &proc_name) const;
};

/** The whole crawled corpus plus its scoring sidecar. */
struct Corpus
{
    std::vector<FirmwareImage> images;
    std::vector<TruthExe> truth;

    const TruthExe *find_truth(int image_index,
                               const std::string &exe_name) const;
    std::size_t executable_count() const;
    std::size_t procedure_count() const;
};

/** Corpus size/shape knobs. */
struct CorpusOptions
{
    std::uint64_t seed = 2018;
    int num_devices = 18;
    int min_packages = 3;
    int max_packages = 5;
    /** Percent of executables whose header declares the wrong ISA. */
    int corrupt_header_percent = 8;
    /** Percent of non-latest images shipped with full symbols. */
    int unstripped_percent = 12;
    /**
     * Corpus multiplier for retrieval-scaling experiments: the device
     * loop runs num_devices * scale iterations, so scale N clones the
     * catalog into N times the devices, each clone with its own
     * perturbed build decisions (every device forks the corpus RNG
     * under its own index — "device42" — so extra devices draw fresh
     * toolchains, feature gates and version histories). Ground truth is
     * recorded per device exactly as at scale 1, and the first
     * num_devices devices are bit-identical to the scale-1 corpus (the
     * RNG fork names do not change), so findings on the shared prefix
     * are directly comparable.
     */
    int scale = 1;
};

/** Build the corpus deterministically from @p options. */
Corpus build_corpus(const CorpusOptions &options = {});

}  // namespace firmup::firmware
