/**
 * @file
 * The package & CVE catalog driving the synthetic corpus.
 *
 * Mirrors the paper's evaluation subjects (Table 2 and section 5.3):
 * vsftpd, bftpd, libcurl, dbus, wget, plus the exported-procedure group
 * libexif and net-snmp, with the CVE-affected procedures under their real
 * names. Source bodies are synthesized deterministically per package and
 * mutated cumulatively per version, so "wget 1.12" and "wget 1.15" differ
 * the way two real releases do — including the semantic drift that caused
 * the paper's only false positives (section 5.2, "Noteworthy findings").
 */
#pragma once

#include <string>
#include <vector>

#include "lang/ast.h"

namespace firmup::firmware {

/** One procedure slot in a package. */
struct ProcSpec
{
    std::string name;
    bool exported = false;
    std::string feature;  ///< "" = core; else only built when enabled
    /**
     * First version in which the procedure no longer exists ("" = never
     * removed). Models deprecation: the paper found a 2014 firmware still
     * shipping curl_unescape(), deprecated upstream in 2006 (section 5.2,
     * "Deprecated procedures").
     */
    std::string removed_in;
    /** First version in which the procedure exists ("" = since ever). */
    std::string introduced_in;
    /** Ancestor procedure whose body this one descends from ("" = own). */
    std::string body_of;
};

/** A software package: procedures plus an ordered version history. */
struct PackageSpec
{
    std::string name;
    std::vector<std::string> versions;  ///< oldest first
    std::vector<ProcSpec> procedures;
    std::vector<std::string> features;
    int num_globals = 4;
    bool is_library = false;  ///< libraries keep exported symbols

    int version_index(const std::string &version) const;
};

/** A known vulnerability. */
struct CveRecord
{
    std::string cve_id;
    std::string package;
    std::string procedure;
    std::string fixed_version;  ///< first non-vulnerable version
    std::string kind;           ///< DoS, BOF, ...

    /** True when @p version of the package is affected. */
    bool affects(const PackageSpec &pkg, const std::string &version) const;
};

/** All packages available to the corpus builder. */
const std::vector<PackageSpec> &package_catalog();

/** Catalog lookup by name; asserts on unknown packages. */
const PackageSpec &package_by_name(const std::string &name);

/** The CVE database used by the Table 2 experiment. */
const std::vector<CveRecord> &cve_database();

/**
 * Synthesize the source of @p pkg at @p version.
 *
 * The base source is derived from the package name alone; each version
 * applies a seeded batch of mutations on top of the previous one, so
 * consecutive versions are similar and distant versions drift apart.
 */
lang::PackageSource generate_package_source(const PackageSpec &pkg,
                                            const std::string &version);

}  // namespace firmup::firmware
