#include "firmware/corpus.h"

#include <algorithm>

#include "codegen/build.h"
#include "support/error.h"

namespace firmup::firmware {

namespace {

struct VendorProfile
{
    const char *name;
    std::vector<isa::Arch> arch_pool;  ///< weighted by repetition
};

const std::vector<VendorProfile> &
vendors()
{
    static const std::vector<VendorProfile> v = {
        {"NETGEAR",
         {isa::Arch::Mips32, isa::Arch::Mips32, isa::Arch::Arm32}},
        {"D-Link",
         {isa::Arch::Mips32, isa::Arch::Arm32, isa::Arch::Ppc32}},
        {"ASUS", {isa::Arch::Arm32, isa::Arch::Mips32, isa::Arch::X86}},
    };
    return v;
}

/** One device's fixed manufacturing choices. */
struct Device
{
    std::string vendor;
    std::string model;
    isa::Arch arch;
    compiler::ToolchainProfile toolchain;
    std::uint32_t text_base = 0;  ///< vendor-specific load addresses
    std::uint32_t data_base = 0;
    std::vector<std::string> packages;
    std::map<std::string, std::set<std::string>> features;  ///< per pkg
};

Device
make_device(Rng &rng, int index)
{
    Device device;
    const VendorProfile &vendor = rng.pick(vendors());
    device.vendor = vendor.name;
    device.model = std::string(vendor.name).substr(0, 2) + "-R" +
                   std::to_string(1000 + index * 37 +
                                  static_cast<int>(rng.index(900)));
    device.arch = rng.pick(vendor.arch_pool);
    device.toolchain = rng.pick(compiler::vendor_toolchains());
    // Vendors link at their own load addresses; offset elimination is
    // what makes strands comparable across such builds.
    static constexpr std::uint32_t kTextBases[] = {0x400000, 0x10000,
                                                   0x800000, 0x8000};
    static constexpr std::uint32_t kDataBases[] = {0x10000000, 0x20000000,
                                                   0x00c00000, 0x30000000};
    device.text_base = kTextBases[rng.index(std::size(kTextBases))];
    device.data_base = kDataBases[rng.index(std::size(kDataBases))];

    // Pick the package set: routers always carry a web/net stack.
    std::vector<std::string> pool;
    for (const PackageSpec &pkg : package_catalog()) {
        pool.push_back(pkg.name);
    }
    rng.shuffle(pool);
    const std::size_t count = 3 + rng.index(3);
    device.packages.assign(pool.begin(),
                           pool.begin() + static_cast<std::ptrdiff_t>(
                                              std::min(count,
                                                       pool.size())));
    // Build configuration: each optional feature is enabled per-device.
    for (const std::string &name : device.packages) {
        const PackageSpec &pkg = package_by_name(name);
        std::set<std::string> enabled;
        for (const std::string &feature : pkg.features) {
            if (rng.chance(1, 2)) {
                enabled.insert(feature);
            }
        }
        device.features[name] = enabled;
    }
    return device;
}

std::string
exe_name_for(const PackageSpec &pkg)
{
    return pkg.is_library ? pkg.name + ".so" : pkg.name;
}

}  // namespace

std::uint32_t
TruthExe::entry_of(const std::string &proc_name) const
{
    for (const TruthProc &p : procs) {
        if (p.source_name == proc_name) {
            return p.entry;
        }
    }
    return 0;
}

const TruthExe *
Corpus::find_truth(int image_index, const std::string &exe_name) const
{
    for (const TruthExe &t : truth) {
        if (t.image_index == image_index && t.exe_name == exe_name) {
            return &t;
        }
    }
    return nullptr;
}

std::size_t
Corpus::executable_count() const
{
    std::size_t n = 0;
    for (const FirmwareImage &image : images) {
        n += image.executables.size();
    }
    return n;
}

std::size_t
Corpus::procedure_count() const
{
    std::size_t n = 0;
    for (const TruthExe &t : truth) {
        n += t.procs.size();
    }
    return n;
}

Corpus
build_corpus(const CorpusOptions &options)
{
    Corpus corpus;
    Rng rng(options.seed);

    const int devices = options.num_devices * std::max(options.scale, 1);
    for (int d = 0; d < devices; ++d) {
        Rng device_rng = rng.fork("device" + std::to_string(d));
        Device device = make_device(device_rng, d);

        // Two firmware releases per device: an initial one on older
        // package versions and a "latest" that upgrades some packages.
        std::map<std::string, int> version_pick;  // package -> version idx
        for (const std::string &name : device.packages) {
            const PackageSpec &pkg = package_by_name(name);
            // Vendors lag behind upstream: bias towards older versions.
            version_pick[name] = static_cast<int>(
                device_rng.index((pkg.versions.size() + 1) / 2 + 1));
            version_pick[name] = std::min(
                version_pick[name],
                static_cast<int>(pkg.versions.size()) - 1);
        }

        std::map<std::string, loader::Executable> previous_build;
        for (int release = 0; release < 2; ++release) {
            const bool is_latest = release == 1;
            FirmwareImage image;
            image.vendor = device.vendor;
            image.device = device.model;
            image.version = "V1." + std::to_string(release) + "." +
                            std::to_string(device_rng.index(10));
            image.is_latest = is_latest;
            image.content_files = {"etc/" + device.model + ".cfg",
                                   "www/index.html"};

            const int image_index = static_cast<int>(
                corpus.images.size());
            for (const std::string &name : device.packages) {
                const PackageSpec &pkg = package_by_name(name);
                bool upgraded = false;
                if (is_latest && device_rng.chance(1, 2) &&
                    version_pick[name] + 1 <
                        static_cast<int>(pkg.versions.size())) {
                    ++version_pick[name];
                    upgraded = true;
                }
                const std::string &version =
                    pkg.versions[static_cast<std::size_t>(
                        version_pick[name])];

                loader::Executable exe;
                if (is_latest && !upgraded &&
                    previous_build.contains(name)) {
                    // Not part of this update: ship the identical bytes
                    // (the paper's re-used-executable observation).
                    exe = previous_build[name];
                } else {
                    const lang::PackageSource source =
                        generate_package_source(pkg, version);
                    codegen::BuildRequest request;
                    request.arch = device.arch;
                    request.profile = device.toolchain;
                    request.all_features = false;
                    request.enabled_features = device.features[name];
                    request.exe_name = exe_name_for(pkg);
                    request.link.text_base = device.text_base;
                    request.link.data_base = device.data_base;
                    exe = codegen::build_executable(source, request);

                    // Ground truth snapshot before stripping.
                    TruthExe truth;
                    truth.image_index = image_index;
                    truth.exe_name = exe.name;
                    truth.package = pkg.name;
                    truth.pkg_version = version;
                    truth.enabled_features = device.features[name];
                    for (const loader::Symbol &sym : exe.symbols) {
                        truth.procs.push_back(
                            TruthProc{sym.addr, sym.name});
                    }
                    corpus.truth.push_back(std::move(truth));

                    // Stripping policy: libraries keep exported symbols;
                    // a few early releases ship with full symbols.
                    const bool keep_all =
                        !is_latest &&
                        device_rng.chance(
                            static_cast<std::uint32_t>(
                                options.unstripped_percent),
                            100);
                    if (!keep_all) {
                        loader::strip_executable(exe, pkg.is_library);
                    }
                    // Corrupt declared arch on a few executables.
                    if (device_rng.chance(
                            static_cast<std::uint32_t>(
                                options.corrupt_header_percent),
                            100)) {
                        exe.declared_arch =
                            device.arch == isa::Arch::Mips32
                                ? isa::Arch::Arm32
                                : isa::Arch::Mips32;
                    }
                    previous_build[name] = exe;
                }
                // Re-shipped executables share the original's truth.
                if (is_latest && !upgraded) {
                    for (const TruthExe &t : corpus.truth) {
                        if (t.image_index == image_index - 1 &&
                            t.exe_name == exe.name) {
                            TruthExe copy = t;
                            copy.image_index = image_index;
                            corpus.truth.push_back(std::move(copy));
                            break;
                        }
                    }
                }
                image.executables.push_back(std::move(exe));
            }
            corpus.images.push_back(std::move(image));
        }
    }
    return corpus;
}

}  // namespace firmup::firmware
