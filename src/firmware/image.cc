#include "firmware/image.h"

#include <cstring>

#include "support/trace.h"

namespace firmup::firmware {

namespace {

constexpr std::uint8_t kImageMagic[6] = {'F', 'W', 'I', 'M', 'G', '1'};
constexpr std::uint8_t kContentMagic[4] = {'C', 'F', 'G', '0'};

const trace::Counter c_images("unpack.images");
const trace::Counter c_members_walked("unpack.members_walked");
const trace::Counter c_members_damaged("unpack.members_damaged");
const trace::Counter c_content_files("unpack.content_files");

void
append_string(ByteBuffer &out, const std::string &s)
{
    FIRMUP_ASSERT(s.size() <= 0xffff,
                  "pack_firmware: string exceeds u16 length field: " +
                      s.substr(0, 32));
    append_u16_le(out, static_cast<std::uint16_t>(s.size()));
    out.insert(out.end(), s.begin(), s.end());
}

bool
read_string(const ByteBuffer &blob, std::size_t &pos, std::string &out)
{
    if (pos + 2 > blob.size()) {
        return false;
    }
    const std::uint16_t len = read_u16_le(blob.data() + pos);
    pos += 2;
    if (pos + len > blob.size()) {
        return false;
    }
    out.assign(reinterpret_cast<const char *>(blob.data() + pos), len);
    pos += len;
    return true;
}

void
append_garbage(ByteBuffer &out, Rng &rng)
{
    const std::size_t n = rng.index(200);
    for (std::size_t i = 0; i < n; ++i) {
        // Garbage must not accidentally contain the FWEX magic; byte
        // values below 'F' guarantee that.
        out.push_back(static_cast<std::uint8_t>(rng.index('E')));
    }
}

}  // namespace

ByteBuffer
pack_firmware(const FirmwareImage &image, Rng &rng)
{
    ByteBuffer out;
    for (std::uint8_t byte : kImageMagic) {
        out.push_back(byte);
    }
    append_string(out, image.vendor);
    append_string(out, image.device);
    append_string(out, image.version);
    append_u8(out, image.is_latest ? 1 : 0);

    for (const loader::Executable &exe : image.executables) {
        append_garbage(out, rng);
        // Member header: [u16 len][name][u16 len][u32 size][FWELF bytes].
        // The duplicated length makes backward carving from the FWEX
        // magic unambiguous.
        const ByteBuffer payload = loader::write_fwelf(exe);
        FIRMUP_ASSERT(payload.size() <= 0xffffffffull,
                      "pack_firmware: member exceeds u32 size field: " +
                          exe.name);
        append_string(out, exe.name);
        append_u16_le(out, static_cast<std::uint16_t>(exe.name.size()));
        append_u32_le(out, static_cast<std::uint32_t>(payload.size()));
        out.insert(out.end(), payload.begin(), payload.end());
    }
    for (const std::string &content : image.content_files) {
        append_garbage(out, rng);
        for (std::uint8_t byte : kContentMagic) {
            out.push_back(byte);
        }
        append_string(out, content);
    }
    append_garbage(out, rng);
    return out;
}

Result<UnpackResult>
unpack_firmware(const ByteBuffer &blob)
{
    const trace::TraceSpan span("unpack");
    if (blob.size() < sizeof(kImageMagic) ||
        std::memcmp(blob.data(), kImageMagic, sizeof(kImageMagic)) != 0) {
        return Result<UnpackResult>::error(
            ErrorCode::MalformedContainer, "not a firmware image");
    }
    UnpackResult result;
    std::size_t pos = sizeof(kImageMagic);
    if (!read_string(blob, pos, result.image.vendor) ||
        !read_string(blob, pos, result.image.device) ||
        !read_string(blob, pos, result.image.version) ||
        pos >= blob.size()) {
        return Result<UnpackResult>::error(
            ErrorCode::MalformedContainer, "corrupt image header");
    }
    result.image.is_latest = blob[pos++] != 0;

    // binwalk-style carving: scan for the FWEX magic anywhere in the
    // blob; each hit is preceded by the member name + size fields.
    for (std::size_t i = pos; i + 4 <= blob.size(); ++i) {
        if (std::memcmp(blob.data() + i, loader::kMagic, 4) == 0) {
            // Walk back over the size field to recover name and length.
            if (i < 4) {
                continue;
            }
            const std::uint32_t size = read_u32_le(blob.data() + i - 4);
            if (i + size > blob.size()) {
                result.note_damage(ErrorCode::TruncatedMember);
                continue;
            }
            auto exe = loader::parse_fwelf(blob.data() + i, size);
            if (!exe.ok()) {
                result.note_damage(exe.error_code());
                continue;
            }
            // Member name sits before the size field, bracketed by two
            // copies of its length: [len][name][len][size][payload].
            std::string name;
            if (i >= 6) {
                const std::uint16_t name_len =
                    read_u16_le(blob.data() + i - 6);
                const std::size_t header = 6 + 2 +
                    static_cast<std::size_t>(name_len);
                if (i >= header &&
                    read_u16_le(blob.data() + i - header) == name_len) {
                    name.assign(reinterpret_cast<const char *>(
                                    blob.data() + i - 6 - name_len),
                                name_len);
                }
            }
            exe.value().name = name;
            result.image.executables.push_back(std::move(exe).take());
            i += size - 1;
        } else if (std::memcmp(blob.data() + i, kContentMagic, 4) == 0) {
            std::size_t cpos = i + 4;
            std::string content;
            if (read_string(blob, cpos, content)) {
                result.image.content_files.push_back(std::move(content));
                i = cpos - 1;
            }
        }
    }
    c_images.add();
    c_members_walked.add(result.image.executables.size());
    c_members_damaged.add(
        static_cast<std::uint64_t>(result.damaged_members));
    c_content_files.add(result.image.content_files.size());
    return result;
}

}  // namespace firmup::firmware
