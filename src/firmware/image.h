/**
 * @file
 * Firmware image container and binwalk-like unpacker.
 *
 * Vendors ship firmware as opaque blobs: a vendor header, executables,
 * configuration payloads, and stretches of padding/garbage in between.
 * The unpacker does what binwalk does for the paper's crawler (section
 * 5.1): it scans the blob for embedded FWELF magics, carves out each
 * member, and tolerates corrupt or truncated members (the paper's ~3000
 * images that "failed to unpack or consisted only of content" are
 * represented by images whose members all fail to parse).
 */
#pragma once

#include <array>
#include <string>
#include <vector>

#include "loader/fwelf.h"
#include "support/rng.h"

namespace firmup::firmware {

/** A firmware image, unpacked form. */
struct FirmwareImage
{
    std::string vendor;
    std::string device;
    std::string version;
    bool is_latest = false;  ///< newest available firmware for the device
    std::vector<loader::Executable> executables;
    std::vector<std::string> content_files;  ///< config blobs etc.
};

/**
 * Serialize @p image into a vendor blob with seeded padding/garbage.
 * Member names and header strings must fit their u16 length fields and
 * member payloads their u32 size field — pack_firmware asserts rather
 * than silently truncating, so carving stays unambiguous.
 */
ByteBuffer pack_firmware(const FirmwareImage &image, Rng &rng);

/**
 * Carve a firmware blob: scan for FWELF members and the vendor header.
 * Unparsable members are skipped (counted in `damaged_members`, with a
 * per-ErrorCode breakdown in `damage` for ScanHealth reporting).
 */
struct UnpackResult
{
    FirmwareImage image;
    int damaged_members = 0;
    /** damage[code] = members lost to that failure class. */
    std::array<int, kErrorCodeCount> damage{};

    /** Record one damaged member. */
    void
    note_damage(ErrorCode code)
    {
        ++damaged_members;
        ++damage[static_cast<std::size_t>(code)];
    }
};
Result<UnpackResult> unpack_firmware(const ByteBuffer &blob);

}  // namespace firmup::firmware
